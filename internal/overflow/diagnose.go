package overflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/buflen"
	"repro/internal/callgraph"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/ctoken"
	"repro/internal/ctype"
	"repro/internal/dataflow"
	"repro/internal/fault"
)

// Severity grades a finding.
type Severity int

// Severity levels, ordered so the maximum of two can be kept at dedup.
const (
	SevPossible Severity = iota + 1 // intervals overlap the object end
	SevDefinite                     // max access provably exceeds max size
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case SevPossible:
		return "possible"
	case SevDefinite:
		return "definite"
	default:
		return "unknown"
	}
}

// CWEIncomplete marks a degraded finding: not a weakness class but the
// statement that the oracle's budget ran out before it could verify the
// function's accesses. Degraded findings always carry SevPossible — an
// exhausted budget must never read as a clean bill of health.
const CWEIncomplete = 0

// Finding is one statically diagnosed buffer overflow.
type Finding struct {
	// CWE is the classified weakness: 121 (stack overflow), 122 (heap
	// overflow), 124 (underwrite), 126 (over-read), 127 (under-read), or
	// 242 (inherently dangerous function); CWEIncomplete for degraded
	// findings.
	CWE      int
	Severity Severity
	// Function is the name of the function containing the access.
	Function string
	// Object names the overflowed buffer variable when the analysis could
	// resolve the access base to a single symbol ("" otherwise). SLR/STR
	// use it to attach verdicts to their candidate sites.
	Object string
	// Extent is the source range of the offending expression.
	Extent ctoken.Extent
	// Pos is the human-readable location of the extent start.
	Pos ctoken.Position
	// Msg describes the violation in terms of the computed intervals.
	Msg string
	// SuggestedFix names the would-be SLR/STR repair.
	SuggestedFix string
	// Guard, set by the integer-overflow oracle (internal/intflow) for
	// arithmetic and allocation-sink findings, is a suggested
	// IntRepair-style precondition check rendered in C — an annotation
	// only, never applied to the source.
	Guard string
	// Contexts lists interprocedural call chains under which the finding
	// was (re)derived; empty for purely intraprocedural findings.
	Contexts []string
	// Degraded marks a finding emitted because an analysis budget was
	// exhausted, not because an overflow was diagnosed: the function's
	// accesses are unverified and reported at SevPossible.
	Degraded bool
}

// String renders the finding in a compiler-diagnostic style.
func (f Finding) String() string {
	if f.Degraded {
		return fmt.Sprintf("%s: %s analysis degraded in %s: %s (fix: %s)",
			f.Pos, f.Severity, f.Function, f.Msg, f.SuggestedFix)
	}
	return fmt.Sprintf("%s: %s overflow [CWE-%d] in %s: %s (fix: %s)",
		f.Pos, f.Severity, f.CWE, f.Function, f.Msg, f.SuggestedFix)
}

// CWEName returns the short official name of a supported CWE id.
func CWEName(cwe int) string {
	switch cwe {
	case 121:
		return "Stack-based Buffer Overflow"
	case 122:
		return "Heap-based Buffer Overflow"
	case 124:
		return "Buffer Underwrite"
	case 126:
		return "Buffer Over-read"
	case 127:
		return "Buffer Under-read"
	case 190:
		return "Integer Overflow or Wraparound"
	case 191:
		return "Integer Underflow"
	case 242:
		return "Use of Inherently Dangerous Function"
	case 680:
		return "Integer Overflow to Buffer Overflow"
	case CWEIncomplete:
		return "Analysis Incomplete (budget exhausted)"
	default:
		return fmt.Sprintf("CWE-%d", cwe)
	}
}

// safeReplacement maps an unsafe libc routine to the bounded replacement
// SLR would introduce. This mirrors (but must not import) internal/slr.
var safeReplacement = map[string]string{
	"strcpy":   "g_strlcpy",
	"stpcpy":   "g_strlcpy",
	"strcat":   "g_strlcat",
	"strncat":  "g_strlcat",
	"sprintf":  "g_snprintf",
	"vsprintf": "g_vsnprintf",
	"gets":     "fgets",
	"memcpy":   "a size-clamped memcpy",
	"memmove":  "a size-clamped memmove",
	"memset":   "a size-clamped memset",
	"strncpy":  "a size-clamped strncpy",
	"snprintf": "a size-clamped snprintf",
	"fgets":    "a size-clamped fgets",
}

func fixFor(callee string) string {
	if r, ok := safeReplacement[callee]; ok {
		return "replace " + callee + " with " + r + " (SLR)"
	}
	return "guard the access with a bounds check (STR)"
}

// Options configures the analyzer.
type Options struct {
	// ContextDepth bounds how many call edges argument intervals are
	// propagated along from each call-graph root. 0 disables the
	// interprocedural pass.
	ContextDepth int
	// SeedFromBuflen falls back to the symbolic buffer-length analysis
	// (internal/buflen) when the interval analysis does not know an
	// object's size at an access site.
	SeedFromBuflen bool
	// Limits bounds the oracle (DESIGN.md Section 9): the context is
	// polled at solver iterations and between interprocedural contexts;
	// Limits.Steps budgets each per-function interval solve and
	// Limits.Contexts budgets the interprocedural pass. Exhausted
	// budgets degrade — affected functions get a SevPossible
	// CWEIncomplete finding instead of silently passing.
	Limits fault.Limits
	// Memo, when non-nil, retains findings across runs keyed by the
	// dependency hashes the facts provider exposes (FuncHashes). It only
	// takes effect on unbudgeted runs (Limits.Steps and Limits.Contexts
	// both zero) with a hash-providing facts snapshot; otherwise the
	// oracle silently runs from scratch, so memoized and fresh analyses
	// can never disagree about degradation.
	Memo *Memo
	// ExternSeeds holds cross-TU argument facts (project mode): calls
	// observed in other translation units to functions this TU defines.
	// Each seed becomes an extra interprocedural context rooted at the
	// callee, letting the oracle report overflows only provable across
	// file boundaries. Seeds enter the memo signature and the result
	// cache fingerprint via SeedFingerprint.
	ExternSeeds []CallSeed
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{ContextDepth: 2, SeedFromBuflen: true}
}

// Facts is the subset of shared analysis facts the oracle consumes when a
// facts snapshot (internal/analysis) is threaded in: the unit call graph,
// per-function CFGs, and the symbolic buffer-length analyzer. Without a
// provider the oracle derives private copies, as it always has.
type Facts interface {
	CallGraph() *callgraph.Graph
	CFG(fn *cast.FuncDef) *cfg.Graph
	BufLenAnalyzer() *buflen.Analyzer
}

// Analyzer runs the static overflow oracle over one translation unit. It
// is not safe for concurrent use.
type Analyzer struct {
	unit  *cast.TranslationUnit
	opts  Options
	facts Facts

	cg        *callgraph.Graph
	buf       *buflen.Analyzer
	globals   map[int]varState
	globalIDs map[int]bool
	cfgs      map[string]*cfg.Graph
	memo      map[string]*solveEntry
	ready     bool

	// Cross-run memoization (incremental sessions).
	hashes  map[string]string // per-function dependency hashes from the facts provider
	useMemo bool
	optsSig string

	// Fault-containment bookkeeping (DESIGN.md Section 9).
	degradedFns  map[string]bool // functions whose interval solve was cut short
	ctxSpent     int             // interprocedural contexts explored so far
	interprocCut bool            // the context budget stopped propagation
}

type solveEntry struct {
	g   *cfg.Graph
	sol *dataflow.Solution[state]
}

// New creates an analyzer with default options.
func New(unit *cast.TranslationUnit) *Analyzer {
	return NewWithOptions(unit, DefaultOptions())
}

// NewWithOptions creates an analyzer with explicit options.
func NewWithOptions(unit *cast.TranslationUnit, opts Options) *Analyzer {
	return &Analyzer{unit: unit, opts: opts}
}

// NewWithFacts creates an analyzer that reuses shared analysis facts
// instead of rebuilding the call graph, CFGs and buffer-length analysis.
func NewWithFacts(unit *cast.TranslationUnit, opts Options, facts Facts) *Analyzer {
	return &Analyzer{unit: unit, opts: opts, facts: facts}
}

func (a *Analyzer) ensure() {
	if a.ready {
		return
	}
	a.ready = true
	if a.facts != nil {
		a.cg = a.facts.CallGraph()
		a.buf = a.facts.BufLenAnalyzer()
	} else {
		a.cg = callgraph.Build(a.unit)
		a.buf = buflen.NewAnalyzer(a.unit)
	}
	// Cross-run memoization arms only for unbudgeted runs whose facts
	// provider exposes dependency hashes: budget degradation depends on
	// visit order, which a memo hit would skip.
	if a.opts.Memo != nil && a.opts.Limits.Steps == 0 && a.opts.Limits.Contexts == 0 {
		if hp, ok := a.facts.(interface{ FuncHashes() map[string]string }); ok {
			a.hashes = hp.FuncHashes()
			a.useMemo = a.hashes != nil
			a.optsSig = fmt.Sprintf("%d|%t", a.opts.ContextDepth, a.opts.SeedFromBuflen)
			if fp := SeedFingerprint(a.opts.ExternSeeds); fp != "" {
				a.optsSig += "|xtu=" + fp
			}
			if a.useMemo {
				a.opts.Memo.BeginRun()
			}
		}
	}
	a.cfgs = make(map[string]*cfg.Graph)
	a.memo = make(map[string]*solveEntry)
	a.degradedFns = make(map[string]bool)
	a.globals = make(map[int]varState)
	a.globalIDs = make(map[int]bool)
	for _, sym := range a.unit.Symbols {
		if sym == nil || sym.Kind != cast.SymVar || !sym.IsGlobal {
			continue
		}
		a.globalIDs[sym.ID] = true
		if !ctype.IsArray(sym.Type) {
			continue
		}
		vs := topVar()
		if sz := sym.Type.Size(); sz >= 0 {
			vs.size = Const(int64(sz))
		}
		vs.off = Const(0)
		vs.reg = regStack
		a.globals[sym.ID] = vs
	}
}

func (a *Analyzer) cfgFor(fn *cast.FuncDef) *cfg.Graph {
	if a.facts != nil {
		return a.facts.CFG(fn)
	}
	if g, ok := a.cfgs[fn.Name]; ok {
		return g
	}
	g := cfg.Build(fn)
	a.cfgs[fn.Name] = g
	return g
}

// solve runs (or recalls) the interval analysis of fn under the given
// parameter seed.
func (a *Analyzer) solve(fn *cast.FuncDef, seed map[int]varState) (*cfg.Graph, *dataflow.Solution[state]) {
	key := fn.Name + "|" + seedKey(seed)
	if ent, ok := a.memo[key]; ok {
		return ent.g, ent.sol
	}
	g := a.cfgFor(fn)
	countSolve()
	p := &funcProblem{fn: fn, seed: seed, globals: a.globals, globalIDs: a.globalIDs}
	sol := dataflow.SolveForwardLimits[state](g, p, a.opts.Limits)
	if sol.Degraded {
		a.degradedFns[fn.Name] = true
	}
	a.memo[key] = &solveEntry{g: g, sol: sol}
	return g, sol
}

func seedKey(seed map[int]varState) string {
	if len(seed) == 0 {
		return ""
	}
	ids := make([]int, 0, len(seed))
	for id := range seed {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var sb strings.Builder
	for _, id := range ids {
		vs := seed[id]
		fmt.Fprintf(&sb, "%d:%d,%d,%d,%d,%d,%d,%d,%d,%d;", id,
			vs.size.Lo, vs.size.Hi, vs.off.Lo, vs.off.Hi,
			vs.strl.Lo, vs.strl.Hi, vs.val.Lo, vs.val.Hi, vs.reg)
	}
	return sb.String()
}

// Analyze runs the oracle and returns the deduplicated findings in source
// order. Budget-degraded functions contribute a SevPossible CWEIncomplete
// finding each, so an exhausted budget can never read as a clean file.
func (a *Analyzer) Analyze() []Finding {
	a.ensure()
	var all []Finding
	// Pass 1: every function with unknown parameters. Unknown sizes
	// suppress reports, so this pass is quiet exactly where only a caller
	// could make the access concrete.
	for _, fn := range a.unit.Funcs {
		fault.CheckCtx(a.opts.Limits.Ctx)
		var key string
		if a.useMemo {
			if h, ok := a.hashes[fn.Name]; ok {
				key = Pass1Key(a.oracleTag(), a.optsSig, fn.Name, h)
				if fs, ok := a.opts.Memo.Load(key, a.unit.File); ok {
					all = append(all, fs...)
					continue
				}
			}
		}
		g, sol := a.solve(fn, nil)
		fs := a.check(fn, g, sol, nil)
		if key != "" {
			a.opts.Memo.Store(key, fs)
		}
		all = append(all, fs...)
	}
	// Pass 2: propagate argument intervals from the call-graph roots.
	if a.opts.ContextDepth > 0 {
		for _, root := range a.cg.Roots() {
			all = append(all, a.propagate(root, nil, []string{root.Name}, a.opts.ContextDepth)...)
		}
	}
	// Pass 3: externally seeded contexts (cross-TU project mode).
	all = append(all, a.seedFindings()...)
	// Unit.Funcs order keeps degraded findings deterministic.
	for _, fn := range a.unit.Funcs {
		if a.degradedFns[fn.Name] {
			all = append(all, a.degradedFinding(fn))
		}
	}
	return dedup(all)
}

// degradedFinding is the never-silent marker for a function whose
// interval solve was cut short by the step budget.
func (a *Analyzer) degradedFinding(fn *cast.FuncDef) Finding {
	f := Finding{
		CWE:          CWEIncomplete,
		Severity:     SevPossible,
		Function:     fn.Name,
		Degraded:     true,
		Msg:          "interval analysis budget exhausted; memory accesses in this function are unverified",
		SuggestedFix: "raise the solver step budget or audit the function manually",
		Extent:       fn.Extent(),
	}
	if a.unit.File != nil {
		f.Pos = a.unit.File.Position(f.Extent.Pos)
	}
	return f
}

// Degradations describes every budget cut the oracle took, for the
// pipeline's Report.Degraded log.
func (a *Analyzer) Degradations() []string {
	if !a.ready {
		return nil
	}
	var out []string
	for _, fn := range a.unit.Funcs {
		if a.degradedFns[fn.Name] {
			out = append(out, fmt.Sprintf("overflow: interval solve budget exhausted in %s", fn.Name))
		}
	}
	if a.interprocCut {
		out = append(out, fmt.Sprintf(
			"overflow: interprocedural context budget exhausted after %d contexts", a.ctxSpent))
	}
	return out
}

// oracleTag namespaces this oracle's memo keys. The integer-overflow
// oracle (internal/intflow) shares the Memo type via the Finding alias
// and tags its keys "int".
func (a *Analyzer) oracleTag() string { return "ovf" }

// subtreeKey builds the cross-run memo key for one propagation subtree,
// or "" when the context is not memoizable (memo off, no hash for fn, or
// a seed on something other than fn's parameters).
func (a *Analyzer) subtreeKey(fn *cast.FuncDef, seed map[int]varState, chain []string, depth int) string {
	if !a.useMemo {
		return ""
	}
	h, ok := a.hashes[fn.Name]
	if !ok {
		return ""
	}
	return Pass2Key(a.oracleTag(), a.optsSig, h, chain, stableVarSeed(fn, seed), depth)
}

// stableVarSeed renders a parameter seed by parameter position so the
// serialization survives re-parses (symbol IDs do not).
func stableVarSeed(fn *cast.FuncDef, seed map[int]varState) string {
	if len(seed) == 0 {
		return ""
	}
	paramIndex := make(map[int]int, len(fn.Params))
	for i, p := range fn.Params {
		if p.Sym != nil {
			paramIndex[p.Sym.ID] = i
		}
	}
	values := make(map[int]string, len(seed))
	for id, vs := range seed {
		values[id] = fmt.Sprintf("%d,%d,%d,%d,%d,%d,%d,%d,%d",
			vs.size.Lo, vs.size.Hi, vs.off.Lo, vs.off.Hi,
			vs.strl.Lo, vs.strl.Hi, vs.val.Lo, vs.val.Hi, vs.reg)
	}
	return StableSeedKey(paramIndex, values)
}

func (a *Analyzer) propagate(fn *cast.FuncDef, seed map[int]varState, chain []string, depth int) []Finding {
	fault.CheckCtx(a.opts.Limits.Ctx)
	if max := a.opts.Limits.Contexts; max > 0 && a.ctxSpent >= max {
		a.interprocCut = true
		return nil
	}
	// A subtree hit replays this context and everything the recursion
	// below it would derive — fn's dependency hash covers its transitive
	// callees, so a hit proves none of them changed either.
	key := a.subtreeKey(fn, seed, chain, depth)
	if key != "" {
		if out, ok := a.opts.Memo.Load(key, a.unit.File); ok {
			return out
		}
	}
	a.ctxSpent++
	g, sol := a.solve(fn, seed)
	var out []Finding
	if len(chain) > 1 {
		// Pass 1 already checked the empty-seed root context.
		out = a.check(fn, g, sol, chain)
	}
	if depth > 0 {
		for _, e := range a.cg.CallsFrom(fn.Name) {
			if e.Callee == nil || inChain(chain, e.CalleeName) {
				continue
			}
			n := g.NodeContaining(e.Call)
			if n == nil || !sol.Reached[n.ID] {
				continue
			}
			next := a.argSeed(sol.In[n.ID], e)
			sub := append(append([]string(nil), chain...), e.CalleeName)
			out = append(out, a.propagate(e.Callee, next, sub, depth-1)...)
		}
	}
	if key != "" {
		a.opts.Memo.Store(key, out)
	}
	return out
}

func inChain(chain []string, name string) bool {
	for _, c := range chain {
		if c == name {
			return true
		}
	}
	return false
}

// argSeed evaluates the call's arguments under the caller's state at the
// call site and binds the resulting intervals to the callee's parameters.
func (a *Analyzer) argSeed(st state, e callgraph.Edge) map[int]varState {
	seed := make(map[int]varState)
	for i, p := range e.Callee.Params {
		if p.Sym == nil || i >= len(e.Call.Args) {
			break
		}
		arg := e.Call.Args[i]
		switch {
		case isPtrVar(p.Sym):
			if vs, ok := evalPtr(st, arg); ok && !vs.isTop() {
				seed[p.Sym.ID] = vs
			}
		case isIntVar(p.Sym):
			if iv := evalInt(st, arg); !iv.IsTop() {
				vs := topVar()
				vs.val = iv
				seed[p.Sym.ID] = vs
			}
		}
	}
	return seed
}

// --- per-function checking --------------------------------------------------

type checker struct {
	a     *Analyzer
	fn    *cast.FuncDef
	chain []string
	out   []Finding
}

func (a *Analyzer) check(fn *cast.FuncDef, g *cfg.Graph, sol *dataflow.Solution[state], chain []string) []Finding {
	c := &checker{a: a, fn: fn, chain: chain}
	for _, n := range g.Nodes {
		if !sol.Reached[n.ID] {
			continue
		}
		st := sol.In[n.ID]
		switch n.Kind {
		case cfg.KindDecl:
			if n.Decl != nil && n.Decl.Init != nil {
				c.expr(st, n.Decl.Init)
			}
		case cfg.KindStmt:
			switch s := n.Stmt.(type) {
			case *cast.ExprStmt:
				c.expr(st, s.X)
			case *cast.ReturnStmt:
				if s.Result != nil {
					c.expr(st, s.Result)
				}
			}
		case cfg.KindCond, cfg.KindPost:
			if n.Expr != nil {
				c.expr(st, n.Expr)
			}
		}
	}
	return c.out
}

// expr walks one expression tree, checking every memory access against the
// in-state of its program point.
func (c *checker) expr(st state, e cast.Expr) {
	if e == nil {
		return
	}
	switch x := cast.Unparen(e).(type) {
	case *cast.AssignExpr:
		switch l := cast.Unparen(x.LHS).(type) {
		case *cast.IndexExpr:
			c.checkIndex(st, l, true)
			c.expr(st, l.Base)
			c.expr(st, l.Index)
		case *cast.UnaryExpr:
			if l.Op == cast.UnaryDeref {
				c.checkDeref(st, l, true)
				c.expr(st, l.Operand)
			} else {
				c.expr(st, x.LHS)
			}
		default:
			c.expr(st, x.LHS)
		}
		c.expr(st, x.RHS)
	case *cast.IndexExpr:
		c.checkIndex(st, x, false)
		c.expr(st, x.Base)
		c.expr(st, x.Index)
	case *cast.UnaryExpr:
		switch x.Op {
		case cast.UnaryDeref:
			c.checkDeref(st, x, false)
			c.expr(st, x.Operand)
		case cast.UnaryAddrOf:
			// &a[i] computes an address without touching memory; check only
			// the subexpressions of the address computation.
			if inner, ok := cast.Unparen(x.Operand).(*cast.IndexExpr); ok {
				c.expr(st, inner.Base)
				c.expr(st, inner.Index)
			} else {
				c.expr(st, x.Operand)
			}
		default:
			c.expr(st, x.Operand)
		}
	case *cast.PostfixExpr:
		c.expr(st, x.Operand)
	case *cast.BinaryExpr:
		c.expr(st, x.X)
		c.expr(st, x.Y)
	case *cast.CondExpr:
		c.expr(st, x.Cond)
		c.expr(st, x.Then)
		c.expr(st, x.Else)
	case *cast.CastExpr:
		c.expr(st, x.Operand)
	case *cast.CommaExpr:
		c.expr(st, x.X)
		c.expr(st, x.Y)
	case *cast.CallExpr:
		c.checkCall(st, x)
		for _, arg := range x.Args {
			c.expr(st, arg)
		}
	case *cast.MemberExpr:
		c.expr(st, x.Base)
	case *cast.InitListExpr:
		for _, el := range x.Elems {
			c.expr(st, el)
		}
	case *cast.SizeofExpr:
		// sizeof does not evaluate its operand.
	}
}

func (c *checker) checkIndex(st state, x *cast.IndexExpr, write bool) {
	if t := x.Type(); t != nil && ctype.IsArray(t) {
		return // row selection of a multi-dimensional array, not an access
	}
	sym, extra, ok := resolveVar(st, x.Base)
	if !ok {
		return
	}
	vs := st.get(sym.ID)
	scale := elemSize(ctype.Decay(typeOf(cast.Unparen(x.Base))))
	start := vs.off.Add(extra).Add(evalInt(st, x.Index).MulConst(scale))
	c.report(st, x, x.Base, vs, start, start.AddConst(scale), write, false, fixFor(""))
}

func (c *checker) checkDeref(st state, x *cast.UnaryExpr, write bool) {
	sym, extra, ok := resolveVar(st, x.Operand)
	if !ok {
		return
	}
	vs := st.get(sym.ID)
	scale := elemSize(ctype.Decay(typeOf(cast.Unparen(x.Operand))))
	start := vs.off.Add(extra)
	c.report(st, x, x.Operand, vs, start, start.AddConst(scale), write, false, fixFor(""))
}

// checkCall models the write (and for memcpy, read) extents of unsafe
// library routines.
func (c *checker) checkCall(st state, call *cast.CallExpr) {
	name := call.Callee()
	arg := func(i int) cast.Expr { return argAt(call, i) }
	switch name {
	case "gets":
		f := Finding{
			CWE:          242,
			Severity:     SevDefinite,
			Msg:          "gets cannot bound its write",
			SuggestedFix: fixFor("gets"),
		}
		if sym, _, ok := resolveVar(st, arg(0)); ok && sym != nil {
			f.Object = sym.Name
		}
		c.add(f, call)
		return
	case "strcpy", "stpcpy":
		if vs, base, ok := ptrArg(st, arg(0)); ok {
			end := base.Add(strlenOf(st, arg(1))).AddConst(1)
			c.report(st, call, arg(0), vs, base, end, true, true, fixFor(name))
		}
	case "strcat", "strncat":
		if vs, _, ok := ptrArg(st, arg(0)); ok {
			add := strlenOf(st, arg(1))
			if name == "strncat" {
				n := evalInt(st, arg(2))
				if n.Hi < PosInf && (add.Hi >= PosInf || add.Hi > n.Hi) {
					add = Interval{max64(0, min64(add.Lo, n.Lo)), n.Hi}
				}
			}
			end := vs.strl.Add(add).AddConst(1)
			c.report(st, call, arg(0), vs, vs.strl, end, true, true, fixFor(name))
		}
	case "sprintf":
		if vs, base, ok := ptrArg(st, arg(0)); ok {
			end := base.Add(formatLength(st, arg(1), call.Args, 2)).AddConst(1)
			c.report(st, call, arg(0), vs, base, end, true, true, fixFor(name))
		}
	case "vsprintf":
		if vs, base, ok := ptrArg(st, arg(0)); ok {
			end := Range(base.Lo, PosInf)
			c.report(st, call, arg(0), vs, base, end, true, true, fixFor(name))
		}
	case "strncpy", "memset":
		if vs, base, ok := ptrArg(st, arg(0)); ok {
			end := base.Add(evalInt(st, arg(2)).ClampMin(0))
			c.report(st, call, arg(0), vs, base, end, true, true, fixFor(name))
		}
	case "snprintf", "fgets":
		if vs, base, ok := ptrArg(st, arg(0)); ok {
			end := base.Add(evalInt(st, arg(1)).ClampMin(0))
			c.report(st, call, arg(0), vs, base, end, true, true, fixFor(name))
		}
	case "memcpy", "memmove":
		n := evalInt(st, arg(2)).ClampMin(0)
		if vs, base, ok := ptrArg(st, arg(0)); ok {
			c.report(st, call, arg(0), vs, base, base.Add(n), true, true, fixFor(name))
		}
		if vs, base, ok := ptrArg(st, arg(1)); ok {
			c.report(st, call, arg(1), vs, base, base.Add(n), false, true, fixFor(name))
		}
	}
}

// ptrArg resolves a pointer argument to its variable state and absolute
// base offset.
func ptrArg(st state, e cast.Expr) (varState, Interval, bool) {
	sym, extra, ok := resolveVar(st, e)
	if !ok {
		return varState{}, Interval{}, false
	}
	vs := st.get(sym.ID)
	return vs, vs.off.Add(extra), true
}

// report classifies an access of bytes [start, end) against the object's
// size interval and records a finding when it can violate bounds.
func (c *checker) report(st state, site cast.Expr, base cast.Expr, vs varState, start, end Interval, write, viaLib bool, fix string) {
	sz, reg := vs.size, vs.reg
	if sz.Hi >= PosInf && c.a.opts.SeedFromBuflen && base != nil {
		if bsz, fail := c.a.buf.BufferLength(c.fn, base); fail == nil {
			if n, known := bsz.KnownBytes(); known {
				sz = Const(n)
			}
			if bsz.Kind == buflen.SizeHeap {
				reg = regHeap
			}
		}
	}
	sev, under, ok := classify(start, end, sz, viaLib)
	if !ok {
		return
	}
	var cwe int
	var msg string
	switch {
	case under && write:
		cwe = 124
		msg = fmt.Sprintf("write starts at byte %s, before the object", start)
	case under:
		cwe = 127
		msg = fmt.Sprintf("read starts at byte %s, before the object", start)
	case write:
		cwe = 121
		if reg == regHeap {
			cwe = 122
		}
		msg = fmt.Sprintf("write of bytes [%d,%s) exceeds object size %s",
			max64(start.Lo, 0), boundStr(end.Hi), sz)
	default:
		cwe = 126
		msg = fmt.Sprintf("read of bytes [%d,%s) exceeds object size %s",
			max64(start.Lo, 0), boundStr(end.Hi), sz)
	}
	f := Finding{CWE: cwe, Severity: sev, Msg: msg, SuggestedFix: fix}
	if sym, _, ok := resolveVar(st, base); ok && sym != nil {
		f.Object = sym.Name
	}
	c.add(f, site)
}

func boundStr(n int64) string {
	if n >= PosInf {
		return "+inf"
	}
	return fmt.Sprintf("%d", n)
}

// classify applies the severity rules:
//
//	definite — the access provably leaves the object for every size the
//	  object can have (min access start past max size, or max write end
//	  past max size per the lint contract), or lands before it;
//	possible — the access and the out-of-bounds region merely overlap.
//
// Accesses with unbounded start offsets, and accesses to objects of
// unknown size, are skipped: with top intervals every access would be
// flagged, drowning real findings.
func classify(start, end, sz Interval, viaLib bool) (Severity, bool, bool) {
	if start.Lo <= NegInf {
		return 0, false, false
	}
	if start.Hi < 0 {
		return SevDefinite, true, true
	}
	if start.Lo < 0 {
		return SevPossible, true, true
	}
	if sz.Hi >= PosInf || sz.Lo <= NegInf {
		return 0, false, false
	}
	switch {
	case end.Lo > sz.Hi:
		return SevDefinite, false, true
	case end.Hi >= PosInf:
		// Unbounded writes through unsafe library calls (strcpy of an
		// unknown string) are the paper's canonical "possible" overflows;
		// unbounded raw index accesses are almost always widening noise.
		if viaLib {
			return SevPossible, false, true
		}
		return 0, false, false
	case end.Hi > sz.Hi:
		return SevDefinite, false, true
	case end.Hi > sz.Lo:
		return SevPossible, false, true
	}
	return 0, false, false
}

func (c *checker) add(f Finding, site cast.Expr) {
	f.Function = c.fn.Name
	f.Extent = site.Extent()
	if c.a.unit.File != nil {
		f.Pos = c.a.unit.File.Position(f.Extent.Pos)
	}
	if len(c.chain) > 1 {
		f.Contexts = []string{strings.Join(c.chain, " -> ")}
	}
	c.out = append(c.out, f)
}

// dedup merges findings that name the same extent and CWE, keeping the
// maximum severity and the union of contexts, and sorts by position.
func dedup(all []Finding) []Finding {
	type key struct {
		pos, end ctoken.Pos
		cwe      int
	}
	idx := make(map[key]int)
	var out []Finding
	for _, f := range all {
		k := key{f.Extent.Pos, f.Extent.End, f.CWE}
		if i, ok := idx[k]; ok {
			if f.Severity > out[i].Severity {
				out[i].Severity = f.Severity
				out[i].Msg = f.Msg
			}
			for _, ctx := range f.Contexts {
				if !inChain(out[i].Contexts, ctx) {
					out[i].Contexts = append(out[i].Contexts, ctx)
				}
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Extent.Pos != out[j].Extent.Pos {
			return out[i].Extent.Pos < out[j].Extent.Pos
		}
		return out[i].CWE < out[j].CWE
	})
	return out
}

// Analyze is the package-level convenience entry point: run the oracle
// with default options.
func Analyze(unit *cast.TranslationUnit) []Finding {
	return New(unit).Analyze()
}
