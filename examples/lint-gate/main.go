// Lint gate: use the static overflow oracle as a CI check.
//
// The interprocedural interval analysis behind `cfix -lint` flags buffer
// overflows without executing or transforming the program. This example
// runs cfix.Analyze over the LibTIFF 3.8.2 tiff2pdf miniature (the
// paper's CVE-2006-2193 case study) and asserts that the CVE site — the
// sprintf of "\%.3o" into a five-byte buffer — is statically flagged as
// a definite CWE-121 stack overflow, the signal a CI gate would turn
// into a failing build (cfix -lint exits 3 on it).
//
//	go run ./examples/lint-gate
package main

import (
	"fmt"
	"os"

	"repro/internal/corpus"
	"repro/pkg/cfix"
)

func main() {
	findings, err := cfix.Analyze("tiff2pdf.c", corpus.LibtiffCVESource)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint-gate: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("static oracle: %d finding(s)\n", len(findings))
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}

	var cve *cfix.Finding
	for i := range findings {
		f := &findings[i]
		if f.CWE == 121 && f.Severity == cfix.SevDefinite {
			cve = f
			break
		}
	}
	if cve == nil {
		fmt.Fprintln(os.Stderr, "lint-gate: CVE site not flagged CWE-121 definite")
		os.Exit(1)
	}

	fmt.Printf("\nCI gate: %s (%s) in %s — definite, build would fail (exit 3)\n",
		cfix.CWEName(cve.CWE), "CWE-121", cve.Function)
	fmt.Printf("suggested repair: %s\n", cve.SuggestedFix)
}
