package dataflow

import (
	"testing"

	"repro/internal/cfg"
	"repro/internal/cparse"
	"repro/internal/typecheck"
)

// iv is a toy interval lattice over one integer variable, used to exercise
// the generic solver. bot is the unreached element.
type iv struct {
	lo, hi int64
	bot    bool
}

const ivInf = int64(1) << 62

// ivProblem tracks the single local through decls ([0,0]) and increment
// statements ([lo+1,hi+1]). It counts Widen and FlowEdge invocations so
// tests can assert the hooks fire.
type ivProblem struct {
	widenCalls int
	edgeCalls  int
}

func (p *ivProblem) Bottom() iv { return iv{bot: true} }
func (p *ivProblem) Entry() iv  { return iv{lo: 0, hi: 0} }

func (p *ivProblem) Join(a, b iv) iv {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	out := a
	if b.lo < out.lo {
		out.lo = b.lo
	}
	if b.hi > out.hi {
		out.hi = b.hi
	}
	return out
}

func (p *ivProblem) Widen(prev, next iv) iv {
	p.widenCalls++
	if prev.bot {
		return next
	}
	out := p.Join(prev, next)
	if out.lo < prev.lo {
		out.lo = -ivInf
	}
	if out.hi > prev.hi {
		out.hi = ivInf
	}
	return out
}

func (p *ivProblem) Equal(a, b iv) bool { return a == b }

func (p *ivProblem) Transfer(n *cfg.Node, in iv) iv {
	if in.bot {
		return in
	}
	switch n.Kind {
	case cfg.KindDecl:
		return iv{lo: 0, hi: 0}
	case cfg.KindStmt:
		// The only statements in the fixtures are "i = i + 1;".
		out := in
		if out.lo > -ivInf {
			out.lo++
		}
		if out.hi < ivInf {
			out.hi++
		}
		return out
	}
	return in
}

func (p *ivProblem) FlowEdge(from, to *cfg.Node, state iv) iv {
	p.edgeCalls++
	return state
}

// buildGraph parses src and returns the CFG of its first function.
func buildGraph(t *testing.T, src string) *cfg.Graph {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typecheck.Check(tu)
	return cfg.Build(tu.Funcs[0])
}

// TestSolveForwardWidensAtLoopHead runs the interval problem over a while
// loop. Without widening the increment would ratchet the interval forever;
// the solver must invoke Widen at the loop head and stabilize with an
// infinite upper bound there.
func TestSolveForwardWidensAtLoopHead(t *testing.T) {
	g := buildGraph(t, `
void f(void) {
	int i = 0;
	while (i < 10) {
		i = i + 1;
	}
}
`)
	p := &ivProblem{}
	sol := SolveForward[iv](g, p)

	if p.widenCalls == 0 {
		t.Fatal("Widen hook never invoked on a loop")
	}
	if !sol.Reached[g.Exit.ID] {
		t.Fatal("exit not reached")
	}
	// Find the loop head (the condition node).
	var cond *cfg.Node
	for _, n := range g.Nodes {
		if n.Kind == cfg.KindCond {
			cond = n
		}
	}
	if cond == nil {
		t.Fatal("no condition node in while-loop CFG")
	}
	in := sol.In[cond.ID]
	if in.bot {
		t.Fatal("loop head unreached")
	}
	if in.lo != 0 {
		t.Fatalf("loop head lo = %d, want 0", in.lo)
	}
	if in.hi != ivInf {
		t.Fatalf("loop head hi = %d, want widened to +inf (%d)", in.hi, ivInf)
	}
}

// TestSolveForwardJoinsAtMerge checks the branch merge: one arm increments,
// the other does not, so the state after the if must be the join [0,1].
// Widen must never fire on acyclic code.
func TestSolveForwardJoinsAtMerge(t *testing.T) {
	g := buildGraph(t, `
void f(void) {
	int i = 0;
	if (i < 5) {
		i = i + 1;
	}
}
`)
	p := &ivProblem{}
	sol := SolveForward[iv](g, p)

	if p.widenCalls != 0 {
		t.Fatalf("Widen fired %d times on acyclic code", p.widenCalls)
	}
	if p.edgeCalls == 0 {
		t.Fatal("FlowEdge hook never invoked")
	}
	got := sol.In[g.Exit.ID]
	if got.bot {
		t.Fatal("exit unreached")
	}
	if got.lo != 0 || got.hi != 1 {
		t.Fatalf("exit state = [%d,%d], want [0,1]", got.lo, got.hi)
	}
}
