// Package slr implements the SAFE LIBRARY REPLACEMENT transformation
// (Sections II-A and III-B): unsafe C library calls are replaced with safe,
// size-bounded alternatives, with the destination-buffer size computed by
// Algorithm 1 (internal/buflen).
package slr

// Alternative describes one safe replacement option for an unsafe
// function, as catalogued in Table I of the paper.
type Alternative struct {
	Name      string
	Library   string // providing library
	Signature string // prototype as documented
}

// CatalogEntry is one row of Table I.
type CatalogEntry struct {
	Unsafe       string
	UnsafeProto  string
	Alternatives []Alternative
}

// TableI is the unsafe-function catalogue of the paper (Table I): the
// unsafe functions and the safer alternatives proposed by researchers and
// standards bodies. The transformation itself uses the glib-style
// alternatives (see _replacements) because they are syntactically closest
// to the originals, keeping per-instance changes minimal (Section II-A3).
var TableI = []CatalogEntry{
	{
		Unsafe:      "strcpy",
		UnsafeProto: "char *strcpy(char *dst, const char *src);",
		Alternatives: []Alternative{
			{Name: "g_strlcpy", Library: "glib", Signature: "gsize g_strlcpy(gchar *dst, const gchar *src, gsize dst_size);"},
			{Name: "astrcpy", Library: "libmib", Signature: "char *astrcpy(char **dst_address, const char *src);"},
			{Name: "strcpy_s", Library: "ISO/IEC TR 24731 / SafeCRT", Signature: "errno_t strcpy_s(char *dst, rsize_t dst_size, const char *src);"},
			{Name: "StringCchCopy", Library: "StrSafe", Signature: "HRESULT StringCchCopy(LPTSTR dst, size_t dst_size, LPCTSTR src);"},
			{Name: "safestr_copy", Library: "Safestr", Signature: "safestr_t safestr_copy(safestr_t *dst, safestr_t src);"},
		},
	},
	{
		Unsafe:      "strncpy",
		UnsafeProto: "char *strncpy(char *dst, const char *src, size_t num);",
		Alternatives: []Alternative{
			{Name: "g_strlcpy", Library: "glib", Signature: "gsize g_strlcpy(gchar *dst, const gchar *src, gsize dst_size);"},
			{Name: "astrn0cpy", Library: "libmib", Signature: "char *astrn0cpy(char **dst_address, const char *src, size_t num);"},
			{Name: "strncpy_s", Library: "ISO/IEC TR 24731", Signature: "errno_t strncpy_s(char *dst, rsize_t dst_size, const char *src, rsize_t num);"},
			{Name: "StringCchCopyN", Library: "StrSafe", Signature: "HRESULT StringCchCopyN(LPTSTR dst, size_t dst_size, LPCTSTR src, size_t num);"},
			{Name: "safestr_ncopy", Library: "Safestr", Signature: "safestr_t safestr_ncopy(safestr_t *dst, safestr_t src, size_t num);"},
		},
	},
	{
		Unsafe:      "strcat",
		UnsafeProto: "char *strcat(char *dst, const char *src);",
		Alternatives: []Alternative{
			{Name: "g_strlcat", Library: "glib", Signature: "gsize g_strlcat(gchar *dst, const gchar *src, gsize dst_size);"},
			{Name: "strcat_s", Library: "ISO/IEC TR 24731 / SafeCRT", Signature: "errno_t strcat_s(char *dst, rsize_t dst_size, const char *src);"},
		},
	},
	{
		Unsafe:      "memcpy",
		UnsafeProto: "void *memcpy(void *dst, const void *src, size_t num);",
		Alternatives: []Alternative{
			{Name: "memcpy_s", Library: "ISO/IEC TR 24731", Signature: "errno_t memcpy_s(void *dst, size_t dst_size, const void *src, size_t num);"},
		},
	},
	{
		Unsafe:      "gets",
		UnsafeProto: "char *gets(char *dst);",
		Alternatives: []Alternative{
			{Name: "gets_s", Library: "ISO/IEC TR 24731 / SafeCRT", Signature: "char *gets_s(char *destination, size_t dest_size);"},
			{Name: "fgets", Library: "C99", Signature: "char *fgets(char *dst, int dst_size, FILE *stream);"},
			{Name: "afgets", Library: "libmib", Signature: "char *afgets(char **dst_address, FILE *stream);"},
		},
	},
	{
		Unsafe:      "getenv",
		UnsafeProto: "char *getenv(char *dst);",
		Alternatives: []Alternative{
			{Name: "getenv_s", Library: "ISO/IEC TR 24731", Signature: "errno_t getenv_s(size_t *return_value, char *dst, size_t dst_size, const char *name);"},
		},
	},
	{
		Unsafe:      "sprintf",
		UnsafeProto: "char *sprintf(char *str, const char *format, ...);",
		Alternatives: []Alternative{
			{Name: "g_snprintf", Library: "glib", Signature: "gint g_snprintf(gchar *string, gulong n, gchar const *format, ...);"},
			{Name: "asprintf", Library: "libmib", Signature: "int asprintf(char **ppsz, const char *format, ...);"},
			{Name: "sprintf_s", Library: "ISO/IEC TR 24731 / SafeCRT", Signature: "int sprintf_s(char *str, rsize_t str_size, const char *format, ...);"},
		},
	},
	{
		Unsafe:      "snprintf",
		UnsafeProto: "int snprintf(char *str, size_t size, const char *format, ...);",
		Alternatives: []Alternative{
			{Name: "g_snprintf", Library: "glib", Signature: "gint g_snprintf(gchar *string, gulong n, gchar const *format, ...);"},
		},
	},
}

// replaceKind selects the replacement mechanism (Section III-B splits the
// six functions into three mechanisms).
type replaceKind int

const (
	// kindRename: rename the call and append/insert the size parameter
	// (strcpy, strcat, sprintf, vsprintf).
	kindRename replaceKind = iota + 1
	// kindGets: replace gets with fgets + newline stripping.
	kindGets
	// kindMemcpy: clamp the existing length parameter.
	kindMemcpy
)

// replacement is the operational rule SLR applies for one unsafe function.
type replacement struct {
	unsafe string
	safe   string
	kind   replaceKind
	// sizeAfterArg is the 0-based argument index after which the size
	// parameter is inserted (strcpy appends after arg 1; sprintf inserts
	// after arg 0).
	sizeAfterArg int
}

// _replacements maps the six unsafe functions SLR handles (Section III-B)
// to their operational rules.
var _replacements = map[string]replacement{
	"strcpy":   {unsafe: "strcpy", safe: "g_strlcpy", kind: kindRename, sizeAfterArg: 1},
	"strcat":   {unsafe: "strcat", safe: "g_strlcat", kind: kindRename, sizeAfterArg: 1},
	"sprintf":  {unsafe: "sprintf", safe: "g_snprintf", kind: kindRename, sizeAfterArg: 0},
	"vsprintf": {unsafe: "vsprintf", safe: "g_vsnprintf", kind: kindRename, sizeAfterArg: 0},
	"memcpy":   {unsafe: "memcpy", safe: "memcpy", kind: kindMemcpy},
	"gets":     {unsafe: "gets", safe: "fgets", kind: kindGets},
}

// UnsafeFunctions returns the names of the unsafe functions SLR replaces,
// in a stable order.
func UnsafeFunctions() []string {
	return []string{"strcpy", "strcat", "sprintf", "vsprintf", "memcpy", "gets"}
}

// IsUnsafe reports whether SLR targets the named function.
func IsUnsafe(name string) bool {
	_, ok := _replacements[name]
	return ok
}

// SafeNameFor returns the replacement name for an unsafe function ("" when
// not targeted).
func SafeNameFor(name string) string {
	r, ok := _replacements[name]
	if !ok {
		return ""
	}
	return r.safe
}
