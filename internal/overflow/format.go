package overflow

import (
	"strconv"

	"repro/internal/cast"
)

// formatLength estimates the interval of bytes sprintf produces (excluding
// the terminating NUL) for a literal format string. args is the full call
// argument list; firstVarArg indexes the argument consumed by the first
// conversion. A non-literal format or an unrecognized conversion yields
// [0, +inf).
func formatLength(st state, fmtExpr cast.Expr, args []cast.Expr, firstVarArg int) Interval {
	lit, ok := cast.Unparen(fmtExpr).(*cast.StringLit)
	if !ok {
		return Range(0, PosInf)
	}
	total := Const(0)
	next := firstVarArg
	s := lit.Value
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			total = total.AddConst(1)
			continue
		}
		i++
		if i >= len(s) {
			return Range(0, PosInf)
		}
		if s[i] == '%' {
			total = total.AddConst(1)
			continue
		}
		spec, verb, adv := parseSpec(s[i:])
		if verb == 0 {
			return Range(0, PosInf)
		}
		i += adv
		var a cast.Expr
		if next < len(args) {
			a = args[next]
		}
		next++
		total = total.Add(convLength(st, spec, verb, a))
	}
	return total.ClampMin(0)
}

// spec carries the parsed width/precision of one conversion (-1 = absent).
type spec struct {
	width, prec int
}

// parseSpec parses flags, width, precision and the verb of a conversion,
// starting just past the '%'. It returns the consumed byte count minus one
// (the caller's loop increments past the verb). verb 0 means unsupported
// ('*' widths, length modifiers with unknown verbs, malformed specs).
func parseSpec(s string) (spec, byte, int) {
	sp := spec{width: -1, prec: -1}
	i := 0
	for i < len(s) && (s[i] == '-' || s[i] == '+' || s[i] == ' ' || s[i] == '#' || s[i] == '0') {
		i++
	}
	start := i
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i > start {
		if w, err := strconv.Atoi(s[start:i]); err == nil {
			sp.width = w
		}
	}
	if i < len(s) && s[i] == '.' {
		i++
		start = i
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
		pv := 0
		if i > start {
			pv, _ = strconv.Atoi(s[start:i])
		}
		sp.prec = pv
	}
	for i < len(s) && (s[i] == 'l' || s[i] == 'h' || s[i] == 'z') {
		i++
	}
	if i >= len(s) {
		return sp, 0, i
	}
	switch s[i] {
	case 's', 'c', 'd', 'i', 'u', 'x', 'X', 'o', 'p', 'f', 'g', 'e':
		return sp, s[i], i
	}
	return sp, 0, i
}

// convLength bounds the output of one conversion.
func convLength(st state, sp spec, verb byte, arg cast.Expr) Interval {
	pad := func(iv Interval) Interval {
		if sp.width > 0 {
			return iv.ClampMin(int64(sp.width))
		}
		return iv
	}
	switch verb {
	case 'c':
		return pad(Const(1))
	case 's':
		l := Range(0, PosInf)
		if arg != nil {
			l = strlenOf(st, arg)
		}
		if sp.prec >= 0 && int64(sp.prec) < l.Hi {
			l.Hi = int64(sp.prec)
			if l.Lo > l.Hi {
				l.Lo = l.Hi
			}
		}
		return pad(l)
	case 'd', 'i':
		return pad(digitLength(st, arg, 11, true)) // -2147483648
	case 'u':
		return pad(digitLength(st, arg, 10, false))
	case 'x', 'X':
		return pad(digitLength(st, arg, 8, false))
	case 'o':
		return pad(octalLength(st, arg, sp))
	case 'p':
		return pad(Range(1, 18)) // implementation-defined; glibc ≤ "0x" + 16
	case 'f', 'g', 'e':
		return Range(1, PosInf) // width/precision of floats not modeled
	}
	return Range(0, PosInf)
}

// digitLength bounds the decimal/hex digits of an integer argument: exact
// when the interval is, otherwise up to maxDigits (incl. sign when signed).
func digitLength(st state, arg cast.Expr, maxDigits int64, signed bool) Interval {
	if arg == nil {
		return Range(1, maxDigits)
	}
	iv := evalInt(st, arg)
	if iv.Lo > NegInf && iv.Hi < PosInf {
		lo := min64(decLen(iv.Lo), decLen(iv.Hi))
		hi := max64(decLen(iv.Lo), decLen(iv.Hi))
		if iv.Lo <= 0 && iv.Hi >= 0 {
			lo = 1
		}
		return Range(lo, hi)
	}
	lo := int64(1)
	if !signed && iv.Lo >= 0 {
		// cannot shrink below one digit anyway
		lo = 1
	}
	return Range(lo, maxDigits)
}

func decLen(v int64) int64 {
	n := int64(1)
	if v < 0 {
		n++ // sign
		v = -v
	}
	for v >= 10 {
		v /= 10
		n++
	}
	return n
}

// octalLength bounds %o output. A char-range argument [0,255] prints 1–3
// digits; precision gives the minimum.
func octalLength(st state, arg cast.Expr, sp spec) Interval {
	iv := Range(1, 11) // up to 0o37777777777 for 32-bit
	if arg != nil {
		a := evalInt(st, arg)
		if a.Lo >= 0 && a.Hi < PosInf {
			iv = Range(octLen(a.Lo), octLen(a.Hi))
		} else if a.Lo > NegInf && a.Hi < PosInf {
			// Negative values wrap to large unsigned: up to 11 digits.
			iv = Range(1, 11)
		}
	}
	if sp.prec >= 0 {
		iv = iv.ClampMin(int64(sp.prec))
	}
	return iv
}

func octLen(v int64) int64 {
	if v < 0 {
		return 11
	}
	n := int64(1)
	for v >= 8 {
		v /= 8
		n++
	}
	return n
}
