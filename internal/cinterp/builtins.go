package cinterp

import (
	"fmt"
	"strings"

	"repro/internal/cast"
	"repro/internal/ctoken"
)

// exitErr signals a call to exit(); Run converts it into a normal result.
type exitErr struct{ code int64 }

func (e exitErr) Error() string { return fmt.Sprintf("exit(%d)", e.code) }

// evalCall dispatches a call to a defined function or a builtin.
func (in *Interp) evalCall(call *cast.CallExpr) (Value, error) {
	name := call.Callee()
	if fn, ok := in.funcs[name]; ok {
		args := make([]Value, 0, len(call.Args))
		for _, a := range call.Args {
			v, err := in.evalExpr(a)
			if err != nil {
				return Value{}, err
			}
			args = append(args, v)
		}
		return in.call(fn, args, call.Extent())
	}
	if b, ok := _builtins[name]; ok {
		args := make([]Value, 0, len(call.Args))
		for _, a := range call.Args {
			v, err := in.evalExpr(a)
			if err != nil {
				return Value{}, err
			}
			args = append(args, v)
		}
		return b(in, args, call)
	}
	return Value{}, fmt.Errorf("cinterp: call to undefined function %q", name)
}

// builtin is a native library function.
type builtin func(in *Interp, args []Value, call *cast.CallExpr) (Value, error)

var _builtins = registerBuiltins()

// registerBuiltins wires the dispatch table (assigned at declaration; no
// init function).
func registerBuiltins() map[string]builtin {
	m := baseBuiltins()
	registerStrallocBuiltins(m)
	registerAnnexKBuiltins(m)
	return m
}

func baseBuiltins() map[string]builtin {
	return map[string]builtin{
		"memset":             biMemset,
		"memcpy":             biMemcpy,
		"memmove":            biMemcpy,
		"memcmp":             biMemcmp,
		"strcpy":             biStrcpy,
		"strncpy":            biStrncpy,
		"strcat":             biStrcat,
		"strncat":            biStrncat,
		"strlen":             biStrlen,
		"strcmp":             biStrcmp,
		"strncmp":            biStrncmp,
		"strchr":             biStrchr,
		"strrchr":            biStrrchr,
		"strstr":             biStrstr,
		"strdup":             biStrdup,
		"sprintf":            biSprintf,
		"snprintf":           biSnprintf,
		"vsprintf":           biSprintf,
		"vsnprintf":          biSnprintf,
		"printf":             biPrintf,
		"fprintf":            biFprintf,
		"puts":               biPuts,
		"putchar":            biPutchar,
		"gets":               biGets,
		"fgets":              biFgets,
		"malloc":             biMalloc,
		"calloc":             biCalloc,
		"realloc":            biRealloc,
		"free":               biFree,
		"alloca":             biMalloc,
		"malloc_usable_size": biMallocUsableSize,
		"g_strlcpy":          biStrlcpy,
		"strlcpy":            biStrlcpy,
		"g_strlcat":          biStrlcat,
		"strlcat":            biStrlcat,
		"g_snprintf":         biSnprintf,
		"g_vsnprintf":        biSnprintf,
		"exit":               biExit,
		"abort":              biAbort,
		"atoi":               biAtoi,
		"atol":               biAtoi,
		"rand":               biRand,
		"srand":              biSrand,
		"getenv":             biGetenv,
		"scanf":              biScanf,
		"fopen":              biFopen,
		"fclose":             biNop,
		"fwrite":             biNop,
		"fread":              biNop,
	}
}

// readCString reads a NUL-terminated string starting at p with checked
// accesses. Unterminated buffers record an overread and stop at the
// object boundary.
func (in *Interp) readCString(p Pointer, at ctoken.Extent) string {
	if p.IsNull() {
		in.checkAccess(p, 1, false, at)
		return ""
	}
	var sb strings.Builder
	for i := int64(0); ; i++ {
		q := p
		q.Off += i
		if q.Obj.Dead {
			in.violateUAF(q.Obj, false, at)
			return sb.String()
		}
		if q.Off < 0 || q.Off >= int64(len(q.Obj.Data)) {
			in.violate(q.Obj, q.Off, false, at)
			return sb.String()
		}
		c := q.Obj.Data[q.Off]
		if c == 0 {
			return sb.String()
		}
		sb.WriteByte(c)
	}
}

// writeCBytes writes data at p with checked accesses, clamping at the
// boundary and recording one violation when truncated.
func (in *Interp) writeCBytes(p Pointer, data []byte, at ctoken.Extent) {
	if p.IsNull() {
		in.checkAccess(p, 1, true, at)
		return
	}
	if p.Obj.Dead {
		in.violateUAF(p.Obj, true, at)
		return
	}
	if p.Off < 0 {
		in.violate(p.Obj, p.Off, true, at)
		return
	}
	room := int64(len(p.Obj.Data)) - p.Off
	n := int64(len(data))
	if n > room {
		in.violate(p.Obj, p.Off+room, true, at)
		n = room
	}
	if n > 0 && !p.Obj.ReadOnly {
		copy(p.Obj.Data[p.Off:p.Off+n], data[:n])
	}
}

func argPtr(args []Value, i int) Pointer {
	if i < len(args) && args[i].K == VPtr {
		return args[i].P
	}
	return Pointer{}
}

func argInt(args []Value, i int) int64 {
	if i < len(args) {
		return args[i].AsInt()
	}
	return 0
}

func biMemset(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	p := argPtr(args, 0)
	c := byte(argInt(args, 1))
	n := argInt(args, 2)
	data := make([]byte, n)
	for i := range data {
		data[i] = c
	}
	in.writeCBytes(p, data, call.Extent())
	return args[0], nil
}

func biMemcpy(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	src := argPtr(args, 1)
	n := argInt(args, 2)
	if n < 0 {
		n = 0
	}
	// Checked read: clamp to the source object.
	var data []byte
	if !src.IsNull() && !src.Obj.Dead && src.Off >= 0 {
		avail := int64(len(src.Obj.Data)) - src.Off
		take := n
		if take > avail {
			in.violate(src.Obj, src.Off+avail, false, call.Extent())
			take = avail
		}
		if take > 0 {
			data = append(data, src.Obj.Data[src.Off:src.Off+take]...)
		}
	} else {
		in.checkAccess(src, 1, false, call.Extent())
	}
	// Pad to the requested count so the write-side check still sees the
	// intended length.
	for int64(len(data)) < n {
		data = append(data, 0)
	}
	in.writeCBytes(dst, data, call.Extent())
	return args[0], nil
}

func biMemcmp(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	a := in.loadBytes(argPtr(args, 0), argInt(args, 2), call.Extent())
	b := in.loadBytes(argPtr(args, 1), argInt(args, 2), call.Extent())
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return IntV(-1), nil
			}
			return IntV(1), nil
		}
	}
	return IntV(0), nil
}

func biStrcpy(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	s := in.readCString(argPtr(args, 1), call.Extent())
	in.writeCBytes(argPtr(args, 0), append([]byte(s), 0), call.Extent())
	return args[0], nil
}

func biStrncpy(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	s := in.readCString(argPtr(args, 1), call.Extent())
	n := argInt(args, 2)
	buf := make([]byte, n)
	copy(buf, s)
	in.writeCBytes(argPtr(args, 0), buf, call.Extent())
	return args[0], nil
}

func biStrcat(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	cur := in.readCString(dst, call.Extent())
	s := in.readCString(argPtr(args, 1), call.Extent())
	p := dst
	p.Off += int64(len(cur))
	in.writeCBytes(p, append([]byte(s), 0), call.Extent())
	return args[0], nil
}

func biStrncat(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	cur := in.readCString(dst, call.Extent())
	s := in.readCString(argPtr(args, 1), call.Extent())
	n := argInt(args, 2)
	if int64(len(s)) > n {
		s = s[:n]
	}
	p := dst
	p.Off += int64(len(cur))
	in.writeCBytes(p, append([]byte(s), 0), call.Extent())
	return args[0], nil
}

func biStrlen(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	return IntV(int64(len(in.readCString(argPtr(args, 0), call.Extent())))), nil
}

func biStrcmp(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	a := in.readCString(argPtr(args, 0), call.Extent())
	b := in.readCString(argPtr(args, 1), call.Extent())
	return IntV(int64(strings.Compare(a, b))), nil
}

func biStrncmp(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	a := in.readCString(argPtr(args, 0), call.Extent())
	b := in.readCString(argPtr(args, 1), call.Extent())
	n := int(argInt(args, 2))
	if len(a) > n {
		a = a[:n]
	}
	if len(b) > n {
		b = b[:n]
	}
	return IntV(int64(strings.Compare(a, b))), nil
}

func biStrchr(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	p := argPtr(args, 0)
	s := in.readCString(p, call.Extent())
	c := byte(argInt(args, 1))
	idx := strings.IndexByte(s, c)
	if c == 0 {
		idx = len(s)
	}
	if idx < 0 {
		return NullV(), nil
	}
	p.Off += int64(idx)
	return PtrV(p), nil
}

func biStrrchr(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	p := argPtr(args, 0)
	s := in.readCString(p, call.Extent())
	idx := strings.LastIndexByte(s, byte(argInt(args, 1)))
	if idx < 0 {
		return NullV(), nil
	}
	p.Off += int64(idx)
	return PtrV(p), nil
}

func biStrstr(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	p := argPtr(args, 0)
	hay := in.readCString(p, call.Extent())
	needle := in.readCString(argPtr(args, 1), call.Extent())
	idx := strings.Index(hay, needle)
	if idx < 0 {
		return NullV(), nil
	}
	p.Off += int64(idx)
	return PtrV(p), nil
}

func biStrdup(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	s := in.readCString(argPtr(args, 0), call.Extent())
	obj, err := in.heapAlloc(int64(len(s)+1), call)
	if err != nil {
		return Value{}, err
	}
	copy(obj.Data, s)
	return PtrV(Pointer{Obj: obj}), nil
}

func biSprintf(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	fmtStr := in.readCString(argPtr(args, 1), call.Extent())
	out := in.formatC(fmtStr, args[2:], call.Extent())
	in.writeCBytes(argPtr(args, 0), append([]byte(out), 0), call.Extent())
	return IntV(int64(len(out))), nil
}

func biSnprintf(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	n := argInt(args, 1)
	fmtStr := in.readCString(argPtr(args, 2), call.Extent())
	out := in.formatC(fmtStr, args[3:], call.Extent())
	full := int64(len(out))
	if n > 0 {
		if full >= n {
			out = out[:n-1]
		}
		in.writeCBytes(argPtr(args, 0), append([]byte(out), 0), call.Extent())
	}
	return IntV(full), nil
}

func biPrintf(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	fmtStr := in.readCString(argPtr(args, 0), call.Extent())
	out := in.formatC(fmtStr, args[1:], call.Extent())
	in.out.WriteString(out)
	return IntV(int64(len(out))), nil
}

func biFprintf(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	fmtStr := in.readCString(argPtr(args, 1), call.Extent())
	out := in.formatC(fmtStr, args[2:], call.Extent())
	in.out.WriteString(out)
	return IntV(int64(len(out))), nil
}

func biPuts(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	s := in.readCString(argPtr(args, 0), call.Extent())
	in.out.WriteString(s)
	in.out.WriteByte('\n')
	return IntV(int64(len(s) + 1)), nil
}

func biPutchar(in *Interp, args []Value, _ *cast.CallExpr) (Value, error) {
	in.out.WriteByte(byte(argInt(args, 0)))
	return args[0], nil
}

func biGets(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	if len(in.stdin) == 0 {
		return NullV(), nil
	}
	line := in.stdin[0]
	in.stdin = in.stdin[1:]
	// gets writes unboundedly: the checked write detects the overflow.
	in.writeCBytes(argPtr(args, 0), append([]byte(line), 0), call.Extent())
	return args[0], nil
}

func biFgets(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	if len(in.stdin) == 0 {
		return NullV(), nil
	}
	line := in.stdin[0] + "\n" // fgets keeps the newline
	in.stdin = in.stdin[1:]
	n := argInt(args, 1)
	if n <= 0 {
		return NullV(), nil
	}
	if int64(len(line)) > n-1 {
		line = line[:n-1]
	}
	in.writeCBytes(argPtr(args, 0), append([]byte(line), 0), call.Extent())
	return args[0], nil
}

// heapAlloc creates a heap object, enforcing the heap budget.
func (in *Interp) heapAlloc(n int64, call *cast.CallExpr) (*Object, error) {
	if n < 1 {
		n = 1
	}
	if in.heapUsed+n > in.limits.MaxHeap {
		return nil, fmt.Errorf("cinterp: heap limit exceeded at %s",
			in.unit.File.Position(call.Extent().Pos))
	}
	in.heapUsed += n
	obj := in.newObject(fmt.Sprintf("heap@%s", in.unit.File.Position(call.Extent().Pos)), ObjHeap, int(n))
	return obj, nil
}

func biMalloc(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	obj, err := in.heapAlloc(argInt(args, 0), call)
	if err != nil {
		return Value{}, err
	}
	return PtrV(Pointer{Obj: obj}), nil
}

func biCalloc(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	obj, err := in.heapAlloc(argInt(args, 0)*argInt(args, 1), call)
	if err != nil {
		return Value{}, err
	}
	return PtrV(Pointer{Obj: obj}), nil
}

func biRealloc(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	old := argPtr(args, 0)
	obj, err := in.heapAlloc(argInt(args, 1), call)
	if err != nil {
		return Value{}, err
	}
	if !old.IsNull() && !old.Obj.Dead {
		copy(obj.Data, old.Obj.Data)
		old.Obj.Dead = true
	}
	return PtrV(Pointer{Obj: obj}), nil
}

func biFree(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	p := argPtr(args, 0)
	if p.IsNull() {
		return IntV(0), nil
	}
	if p.Obj.Dead {
		in.events = append(in.events, Violation{
			CWE: 415, Pos: in.unit.File.Position(call.Extent().Pos), Msg: "double free",
		})
		return IntV(0), nil
	}
	p.Obj.Dead = true
	return IntV(0), nil
}

func biMallocUsableSize(in *Interp, args []Value, _ *cast.CallExpr) (Value, error) {
	p := argPtr(args, 0)
	if p.IsNull() || p.Obj.Dead {
		return IntV(0), nil
	}
	return IntV(int64(len(p.Obj.Data))), nil
}

func biStrlcpy(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	src := in.readCString(argPtr(args, 1), call.Extent())
	size := argInt(args, 2)
	full := int64(len(src))
	if size > 0 {
		s := src
		if full >= size {
			s = s[:size-1]
		}
		in.writeCBytes(argPtr(args, 0), append([]byte(s), 0), call.Extent())
	}
	return IntV(full), nil
}

func biStrlcat(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	dst := argPtr(args, 0)
	cur := in.readCString(dst, call.Extent())
	src := in.readCString(argPtr(args, 1), call.Extent())
	size := argInt(args, 2)
	full := int64(len(cur) + len(src))
	room := size - int64(len(cur)) - 1
	if room > 0 {
		s := src
		if int64(len(s)) > room {
			s = s[:room]
		}
		p := dst
		p.Off += int64(len(cur))
		in.writeCBytes(p, append([]byte(s), 0), call.Extent())
	}
	return IntV(full), nil
}

func biExit(_ *Interp, args []Value, _ *cast.CallExpr) (Value, error) {
	return Value{}, exitErr{code: argInt(args, 0)}
}

func biAbort(_ *Interp, _ []Value, _ *cast.CallExpr) (Value, error) {
	return Value{}, exitErr{code: 134}
}

func biAtoi(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	s := in.readCString(argPtr(args, 0), call.Extent())
	var n int64
	neg := false
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t') {
		i++
	}
	if i < len(s) && (s[i] == '-' || s[i] == '+') {
		neg = s[i] == '-'
		i++
	}
	for ; i < len(s) && s[i] >= '0' && s[i] <= '9'; i++ {
		n = n*10 + int64(s[i]-'0')
	}
	if neg {
		n = -n
	}
	return IntV(n), nil
}

// Deterministic LCG so runs are reproducible.
func biRand(in *Interp, _ []Value, _ *cast.CallExpr) (Value, error) {
	in.randState = in.randState*6364136223846793005 + 1442695040888963407
	return IntV(int64((in.randState >> 33) & 0x7FFFFFFF)), nil
}

func biSrand(in *Interp, args []Value, _ *cast.CallExpr) (Value, error) {
	in.randState = uint64(argInt(args, 0))
	return IntV(0), nil
}

func biGetenv(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
	name := in.readCString(argPtr(args, 0), call.Extent())
	val, ok := in.env[name]
	if !ok {
		return NullV(), nil
	}
	obj := in.newObject("env:"+name, ObjGlobal, len(val)+1)
	copy(obj.Data, val)
	return PtrV(Pointer{Obj: obj}), nil
}

func biScanf(_ *Interp, _ []Value, _ *cast.CallExpr) (Value, error) {
	return IntV(0), nil
}

func biFopen(_ *Interp, _ []Value, _ *cast.CallExpr) (Value, error) {
	return NullV(), nil
}

func biNop(_ *Interp, _ []Value, _ *cast.CallExpr) (Value, error) {
	return IntV(0), nil
}
