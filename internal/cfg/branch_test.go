package cfg

import "testing"

// condNodes returns all KindCond nodes in build order.
func condNodes(g *Graph) []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindCond {
			out = append(out, n)
		}
	}
	return out
}

func TestIfBranchLabeled(t *testing.T) {
	g := buildFor(t, `
void f(int c) {
    int a;
    if (c) {
        a = 1;
    } else {
        a = 2;
    }
    a = 3;
}
`)
	conds := condNodes(g)
	if len(conds) != 1 {
		t.Fatalf("cond nodes: got %d, want 1\n%s", len(conds), g)
	}
	cond := conds[0]
	if !cond.Branching {
		t.Fatal("if condition not labeled Branching")
	}
	if len(cond.TrueSuccs) != 1 {
		t.Fatalf("TrueSuccs: got %d, want 1", len(cond.TrueSuccs))
	}
	if len(cond.Succs) != 2 {
		t.Fatalf("Succs: got %d, want 2", len(cond.Succs))
	}
	// The true successor must be a real successor, and the other edge must
	// not be marked true.
	if !cond.IsTrueSucc(cond.TrueSuccs[0]) {
		t.Fatal("IsTrueSucc rejects its own TrueSuccs entry")
	}
	falseEdges := 0
	for _, s := range cond.Succs {
		if !cond.IsTrueSucc(s) {
			falseEdges++
		}
	}
	if falseEdges != 1 {
		t.Fatalf("false edges: got %d, want 1", falseEdges)
	}
}

func TestEmptyThenStaysUnlabeled(t *testing.T) {
	g := buildFor(t, `
void f(int c) {
    int a;
    if (c) {
    }
    a = 3;
}
`)
	for _, cond := range condNodes(g) {
		if cond.Branching {
			t.Fatalf("empty then branch must not be labeled\n%s", g)
		}
	}
}

func TestWhileBranchLabeled(t *testing.T) {
	g := buildFor(t, `
void f(void) {
    int i;
    i = 0;
    while (i < 10) {
        i = i + 1;
    }
    i = 99;
}
`)
	conds := condNodes(g)
	if len(conds) != 1 {
		t.Fatalf("cond nodes: got %d, want 1\n%s", len(conds), g)
	}
	cond := conds[0]
	if !cond.Branching {
		t.Fatal("while condition not labeled")
	}
	if len(cond.TrueSuccs) != 1 {
		t.Fatalf("TrueSuccs: got %d, want 1", len(cond.TrueSuccs))
	}
	// True successor is the loop body (which eventually loops back to cond);
	// the false edge leaves the loop.
	body := cond.TrueSuccs[0]
	if body.Kind != KindStmt {
		t.Fatalf("true succ kind = %v, want body statement", body.Kind)
	}
}

func TestForBranchLabeled(t *testing.T) {
	g := buildFor(t, `
void f(void) {
    int i;
    int sum;
    sum = 0;
    for (i = 0; i < 4; i = i + 1) {
        sum = sum + i;
    }
}
`)
	conds := condNodes(g)
	if len(conds) != 1 {
		t.Fatalf("cond nodes: got %d, want 1\n%s", len(conds), g)
	}
	cond := conds[0]
	if !cond.Branching {
		t.Fatal("for condition not labeled")
	}
	if len(cond.TrueSuccs) != 1 {
		t.Fatalf("TrueSuccs: got %d, want 1", len(cond.TrueSuccs))
	}
}

func TestDoWhileAndSwitchStayUnlabeled(t *testing.T) {
	g := buildFor(t, `
void f(int c) {
    int i;
    i = 0;
    do {
        i = i + 1;
    } while (i < 3);
    switch (c) {
    case 1:
        i = 1;
        break;
    default:
        i = 2;
    }
}
`)
	for _, cond := range condNodes(g) {
		if cond.Branching {
			t.Fatalf("do-while/switch condition must stay unlabeled\n%s", g)
		}
	}
}
