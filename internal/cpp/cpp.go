// Package cpp is a C preprocessor that emits preprocessed text plus a
// source map. The map lets downstream tools (the rewriter, the LSP)
// translate every extent in the preprocessed text back to the file and
// offset the user actually wrote, and — crucially — tells them when an
// extent lies inside a macro expansion or an included header, where an
// in-place edit of the main file would be wrong.
//
// Design choice: output is produced by VERBATIM COPY. Bytes flow from
// the original files untouched except at "interesting points" (directive
// lines, macro invocations, line continuations), so a file with no
// directives and no macro invocations preprocesses to itself, byte for
// byte, under a single Direct map segment. That identity is what makes
// the SAMATE differential suite trivially exact.
package cpp

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ctoken"
)

// srcFile is one original file being preprocessed.
type srcFile struct {
	name string
	src  string
}

// Options configure one preprocessing run.
type Options struct {
	// IncludeDirs are searched (in order) for #include targets; a
	// quoted include first tries the including file's directory.
	IncludeDirs []string
	// Defines predefines object-like macros (as if by -D NAME=VALUE).
	// An empty value defines the macro to an empty replacement.
	Defines map[string]string
	// Open, when non-nil, replaces the filesystem: it returns the
	// content of path and whether it exists. Used by cfixd to serve
	// in-request virtual file sets.
	Open func(path string) (string, bool)
	// Strict makes Preprocess return an error when any diagnostic was
	// recorded; otherwise diagnostics are collected in Result.Errors
	// and preprocessing keeps the bytes it has.
	Strict bool
	// MaxDepth bounds #include nesting (default 64).
	MaxDepth int
	// MaxExpansions bounds the total number of macro replacements
	// (default 200000); exceeding it stops expansion with a diagnostic
	// rather than looping.
	MaxExpansions int
}

// Result is the outcome of preprocessing one translation unit.
type Result struct {
	// Text is the preprocessed output.
	Text string
	// Map translates extents in Text back to the original files.
	Map *SourceMap
	// Includes lists the resolved paths inlined, in first-seen order.
	Includes []string
	// Missing lists #include targets that could not be resolved; their
	// directive lines pass through verbatim (the downstream lexer
	// treats them as directives and the parser ignores them).
	Missing []string
	// Errors are diagnostics (file:line: message). Empty on a clean run.
	Errors []string
}

// cond is one entry of the conditional-inclusion stack.
type cond struct {
	parent  bool // the enclosing context was active at #if time
	taken   bool // this branch is currently emitting
	ever    bool // some branch of this #if already emitted
	sawElse bool
}

// preprocessor holds the state of one run.
type preprocessor struct {
	opts     Options
	macros   map[string]*macro
	out      output
	files    map[string]string // every original file read, name -> content
	lines    map[string]*ctoken.File
	once     map[string]bool // #pragma once
	includes []string
	included map[string]bool
	missing  []string
	errs     []string
	budget   int
	blown    bool
	cond     []cond
	condMin  int // stack floor for the file being processed
	depth    int
}

// Preprocess runs the preprocessor over source (named filename for
// include resolution and diagnostics). It never fails on malformed
// input unless opts.Strict is set: diagnostics land in Result.Errors
// and the output keeps as much of the original bytes as possible.
func Preprocess(filename, source string, opts Options) (*Result, error) {
	pp := newPreprocessor(opts)
	f := &srcFile{name: filename, src: source}
	pp.processFile(f)
	m := &SourceMap{
		main:  filename,
		segs:  pp.out.segs,
		files: pp.files,
		pos:   make(map[string]*ctoken.File),
	}
	res := &Result{
		Text:     string(pp.out.b),
		Map:      m,
		Includes: pp.includes,
		Missing:  pp.missing,
		Errors:   pp.errs,
	}
	if opts.Strict && len(pp.errs) > 0 {
		return res, fmt.Errorf("cpp: %s", pp.errs[0])
	}
	return res, nil
}

// PreprocessFile reads path (through opts.Open when set) and
// preprocesses it.
func PreprocessFile(path string, opts Options) (*Result, error) {
	src, ok := readThrough(opts.Open, path)
	if !ok {
		return nil, fmt.Errorf("cpp: cannot read %s", path)
	}
	return Preprocess(path, src, opts)
}

func readThrough(open func(string) (string, bool), path string) (string, bool) {
	if open != nil {
		return open(path)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return "", false
	}
	return string(b), true
}

func newPreprocessor(opts Options) *preprocessor {
	pp := &preprocessor{
		opts:     opts,
		macros:   make(map[string]*macro),
		files:    make(map[string]string),
		lines:    make(map[string]*ctoken.File),
		once:     make(map[string]bool),
		included: make(map[string]bool),
		budget:   opts.MaxExpansions,
	}
	if pp.budget <= 0 {
		pp.budget = 200000
	}
	pp.macros["__FILE__"] = &macro{name: "__FILE__", builtin: builtinFile}
	pp.macros["__LINE__"] = &macro{name: "__LINE__", builtin: builtinLine}
	// A minimal standard environment so real headers' guards behave.
	for _, d := range [...][2]string{{"__STDC__", "1"}, {"__STDC_HOSTED__", "1"}, {"__STDC_VERSION__", "201112L"}} {
		pp.defineFromString(d[0], d[1])
	}
	names := make([]string, 0, len(opts.Defines))
	for k := range opts.Defines {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		pp.defineFromString(k, opts.Defines[k])
	}
	return pp
}

// defineFromString installs NAME=VALUE as an object-like macro.
func (pp *preprocessor) defineFromString(name, value string) {
	repl := lexAll(value)
	for i := range repl {
		repl[i].file = nil
		repl[i].pos, repl[i].end = -1, -1
		if i == 0 {
			repl[i].ws = false
		}
	}
	pp.macros[name] = &macro{name: name, repl: repl}
}

func builtinFile(pp *preprocessor, at ptok) []ptok {
	name := "<synthesized>"
	if at.file != nil {
		name = at.file.name
	}
	return []ptok{{kind: tkStr, text: strconv.Quote(name), pos: -1, end: -1, ws: at.ws, hide: at.hide}}
}

func builtinLine(pp *preprocessor, at ptok) []ptok {
	return []ptok{{kind: tkNum, text: strconv.Itoa(pp.lineOf(at)), pos: -1, end: -1, ws: at.ws, hide: at.hide}}
}

// lineOf returns the 1-based line of a token in its file (0 when
// synthesized).
func (pp *preprocessor) lineOf(t ptok) int {
	if t.file == nil || t.pos < 0 {
		return 0
	}
	lt := pp.lines[t.file.name]
	if lt == nil {
		lt = ctoken.NewFile(t.file.name, t.file.src)
		pp.lines[t.file.name] = lt
	}
	return lt.Position(ctoken.Pos(t.pos)).Line
}

// errorAt records a diagnostic located at a token.
func (pp *preprocessor) errorAt(t ptok, msg string) {
	if len(pp.errs) >= 100 {
		return
	}
	file := "<synthesized>"
	if t.file != nil {
		file = t.file.name
	}
	pp.errs = append(pp.errs, fmt.Sprintf("%s:%d: %s", file, pp.lineOf(t), msg))
}

// spendExpansion debits the expansion budget; once it runs out every
// further expansion is declined (leaving text unexpanded) so runaway
// macro chains terminate.
func (pp *preprocessor) spendExpansion(t ptok) bool {
	if pp.budget <= 0 {
		if !pp.blown {
			pp.blown = true
			pp.errorAt(t, "macro expansion budget exhausted")
		}
		return false
	}
	pp.budget--
	return true
}

// active reports whether the current conditional context emits output.
// Each stack entry's taken already folds in its parent's state, so the
// top entry alone decides.
func (pp *preprocessor) active() bool {
	return len(pp.cond) == 0 || pp.cond[len(pp.cond)-1].taken
}

func (pp *preprocessor) maxDepth() int {
	if pp.opts.MaxDepth > 0 {
		return pp.opts.MaxDepth
	}
	return 64
}

// processFile runs the text processor over one file, appending to the
// shared output. Conditionals must balance within the file.
func (pp *preprocessor) processFile(f *srcFile) {
	if _, ok := pp.files[f.name]; !ok {
		pp.files[f.name] = f.src
	}
	s := newScanner(f, 0)
	copyStart := 0
	bol := true // '#' introduces a directive only at the start of a line
	flush := func(upto int) {
		if pp.active() {
			pp.out.copyDirect(f, copyStart, upto)
		}
	}
	for {
		t := s.next()
		if t.kind == tkEOF {
			flush(len(f.src))
			break
		}
		switch {
		case t.kind == tkNewline:
			bol = true
		case t.kind == tkComment:
			// A spliced line comment swallowed following physical lines;
			// its raw bytes would lex differently downstream, so replace
			// it with one space.
			if t.spliced && pp.active() {
				flush(t.pos)
				pp.out.emit(" ", SegSynth, f.name, t.pos, t.end, "")
				copyStart = t.end
			}
		case t.kind == tkSplice:
			// Scrub the backslash-newline; the surrounding bytes join.
			if pp.active() {
				flush(t.pos)
				copyStart = t.end
			}
		case t.kind == tkPunct && t.text == "#" && bol:
			pp.directive(f, s, t, flush, &copyStart)
			bol = true
		case !pp.active():
			bol = false
		case t.kind == tkIdent:
			bol = false
			if m := pp.macros[t.text]; m != nil && !t.hidden(t.text) {
				if pp.tryExpand(f, s, t, m, &copyStart) {
					continue
				}
			}
			if t.spliced {
				flush(t.pos)
				pp.emitSynthTok(f, t)
				copyStart = t.end
			}
		default:
			bol = false
			if t.spliced {
				flush(t.pos)
				pp.emitSynthTok(f, t)
				copyStart = t.end
			}
		}
	}
	for len(pp.cond) > pp.condMin {
		pp.errorAt(ptok{file: f, pos: len(f.src)}, "unterminated conditional")
		pp.cond = pp.cond[:len(pp.cond)-1]
	}
}

// emitSynthTok emits a token whose de-spliced spelling differs from its
// raw bytes.
func (pp *preprocessor) emitSynthTok(f *srcFile, t ptok) {
	pp.out.emit(t.text, SegSynth, f.name, t.pos, t.end, "")
	pp.maybeSpace(f, t.end)
}

// maybeSpace inserts a separating space when the last emitted byte and
// the next original byte would otherwise lex as one token (e.g. an
// expansion ending in an identifier followed immediately by another
// identifier character).
func (pp *preprocessor) maybeSpace(f *srcFile, next int) {
	last := pp.out.lastByte()
	if last == 0 || last <= ' ' || next >= len(f.src) {
		return
	}
	c := f.src[next]
	if c <= ' ' {
		return
	}
	// A closing quote self-terminates its literal: nothing after it can
	// merge backward into it.
	if last == '"' || last == '\'' {
		return
	}
	merge := false
	switch {
	case isIdentCont(last) && (isIdentCont(c) || c == '"' || c == '\''):
		// identifier run, or an encoding-prefix hazard like L"...".
		merge = true
	case c == '"' || c == '\'':
		// punctuation before a fresh literal never merges.
	case len(lexAll(string([]byte{last, c}))) != 2:
		merge = true
	}
	if merge {
		pp.out.emit(" ", SegSynth, f.name, next, next, "")
	}
}

// tryExpand expands a macro-candidate identifier in running text. It
// returns false for a function-like macro name not followed by '(',
// with the scanner repositioned just after the identifier.
func (pp *preprocessor) tryExpand(f *srcFile, s *scanner, t ptok, m *macro, copyStart *int) bool {
	invEnd := t.end
	toks := []ptok{t}
	if m.funcLike {
		// Look ahead (across newlines and comments) for the '('.
		found := false
		for {
			n := s.next()
			if n.kind == tkComment || n.kind == tkNewline || n.kind == tkSplice {
				continue
			}
			if n.kind == tkPunct && n.text == "(" {
				toks = append(toks, n)
				found = true
			}
			break
		}
		if !found {
			s.off = t.end
			return false
		}
		depth := 1
		for depth > 0 {
			x := s.next()
			if x.kind == tkEOF {
				pp.errorAt(t, fmt.Sprintf("unterminated invocation of macro %q", m.name))
				s.off = t.end
				return false
			}
			toks = append(toks, x)
			if x.kind == tkPunct {
				switch x.text {
				case "(":
					depth++
				case ")":
					depth--
				}
			}
		}
		invEnd = toks[len(toks)-1].end
	}
	text := renderTokens(pp.expandList(toks))
	pp.out.copyDirect(f, *copyStart, t.pos)
	pp.out.emit(text, SegMacro, f.name, t.pos, invEnd, m.name)
	*copyStart = invEnd
	pp.maybeSpace(f, invEnd)
	return true
}

// readDirectiveLine collects the tokens of a directive up to the
// end-of-line, honoring line continuations and treating comments as
// whitespace. It returns the offset just past the terminating newline.
func readDirectiveLine(s *scanner) (toks []ptok, lineEnd int) {
	pending := false
	for {
		t := s.next()
		switch t.kind {
		case tkEOF, tkNewline:
			return toks, t.end
		case tkComment, tkSplice:
			pending = true
		default:
			if pending {
				t.ws = true
				pending = false
			}
			toks = append(toks, t)
		}
	}
}

// directive parses and executes one directive line. On return the
// scanner sits just past the line and copyStart points there too: a
// directive line contributes no output bytes unless it explicitly
// passes itself through (unresolved #include, unknown #pragma).
func (pp *preprocessor) directive(f *srcFile, s *scanner, hash ptok, flush func(int), copyStart *int) {
	flush(hash.pos)
	toks, lineEnd := readDirectiveLine(s)
	defer func() { *copyStart = lineEnd }()

	if len(toks) == 0 {
		return // null directive
	}
	name := toks[0]
	if name.kind != tkIdent {
		return // '# 1 "file"' line markers and junk: ignored
	}

	switch name.text {
	case "ifdef", "ifndef":
		act := pp.active()
		taken := false
		if act {
			if len(toks) < 2 || toks[1].kind != tkIdent {
				pp.errorAt(name, "#"+name.text+" requires an identifier")
			} else {
				defined := pp.macros[toks[1].text] != nil
				taken = defined == (name.text == "ifdef")
			}
		}
		pp.cond = append(pp.cond, cond{parent: act, taken: act && taken, ever: !act || taken})
		return
	case "if":
		act := pp.active()
		taken := false
		if act {
			taken = pp.evalCond(toks[1:], name)
		}
		pp.cond = append(pp.cond, cond{parent: act, taken: act && taken, ever: !act || taken})
		return
	case "elif":
		if len(pp.cond) <= pp.condMin {
			pp.errorAt(name, "#elif without #if")
			return
		}
		c := &pp.cond[len(pp.cond)-1]
		if c.sawElse {
			pp.errorAt(name, "#elif after #else")
		}
		c.taken = false
		if c.parent && !c.ever && !c.sawElse {
			v := pp.evalCond(toks[1:], name)
			c.taken = v
			c.ever = v
		}
		return
	case "else":
		if len(pp.cond) <= pp.condMin {
			pp.errorAt(name, "#else without #if")
			return
		}
		c := &pp.cond[len(pp.cond)-1]
		if c.sawElse {
			pp.errorAt(name, "duplicate #else")
		}
		c.taken = c.parent && !c.ever
		c.ever = true
		c.sawElse = true
		return
	case "endif":
		if len(pp.cond) <= pp.condMin {
			pp.errorAt(name, "#endif without #if")
			return
		}
		pp.cond = pp.cond[:len(pp.cond)-1]
		return
	}

	if !pp.active() {
		return
	}

	switch name.text {
	case "define":
		pp.handleDefine(name, toks[1:])
	case "undef":
		if len(toks) >= 2 && toks[1].kind == tkIdent {
			delete(pp.macros, toks[1].text)
		} else {
			pp.errorAt(name, "#undef requires an identifier")
		}
	case "include", "include_next":
		pp.handleInclude(f, hash, toks[1:], lineEnd)
	case "pragma":
		if len(toks) >= 2 && toks[1].kind == tkIdent && toks[1].text == "once" {
			pp.once[filepath.Clean(f.name)] = true
			return
		}
		// Unknown pragmas pass through verbatim; the downstream lexer
		// files them as directive trivia.
		pp.out.copyDirect(f, hash.pos, lineEnd)
	case "error":
		pp.errorAt(name, "#error "+renderTokens(toks[1:]))
	case "warning", "line", "ident", "sccs", "assert", "unassert":
		// Accepted and dropped.
	default:
		pp.errorAt(name, "unknown directive #"+name.text)
	}
}

// handleDefine installs a macro definition.
func (pp *preprocessor) handleDefine(at ptok, toks []ptok) {
	if len(toks) == 0 || toks[0].kind != tkIdent {
		pp.errorAt(at, "#define requires an identifier")
		return
	}
	nameTok := toks[0]
	m := &macro{name: nameTok.text}
	rest := toks[1:]
	if len(rest) > 0 && rest[0].kind == tkPunct && rest[0].text == "(" && !rest[0].ws {
		// Function-like: '(' immediately after the name, no whitespace.
		m.funcLike = true
		i := 1
		for i < len(rest) {
			t := rest[i]
			if t.kind == tkPunct && t.text == ")" {
				i++
				break
			}
			if t.kind == tkIdent {
				m.params = append(m.params, t.text)
			} else if t.kind == tkPunct && t.text == "..." {
				m.params = append(m.params, "...")
				m.variadic = true
			} else if t.kind == tkPunct && t.text == "," {
				i++
				continue
			} else {
				pp.errorAt(t, "malformed macro parameter list")
			}
			i++
		}
		rest = rest[i:]
	}
	m.repl = make([]ptok, len(rest))
	copy(m.repl, rest)
	if len(m.repl) > 0 {
		m.repl[0].ws = false
		first, last := m.repl[0], m.repl[len(m.repl)-1]
		if (first.kind == tkPunct && first.text == "##") || (last.kind == tkPunct && last.text == "##") {
			pp.errorAt(at, "'##' cannot appear at either end of a macro")
		}
	}
	if old := pp.macros[m.name]; old != nil && !old.sameDef(m) {
		pp.errorAt(nameTok, fmt.Sprintf("macro %q redefined", m.name))
	}
	pp.macros[m.name] = m
}

// includeTarget parses the operand of #include from its token list.
func includeTarget(toks []ptok) (name string, local, ok bool) {
	if len(toks) == 0 {
		return "", false, false
	}
	if toks[0].kind == tkStr && len(toks[0].text) >= 2 {
		t := toks[0].text
		return t[1 : len(t)-1], true, true
	}
	if toks[0].kind == tkPunct && toks[0].text == "<" {
		var b strings.Builder
		for _, t := range toks[1:] {
			if t.kind == tkPunct && t.text == ">" {
				return b.String(), false, b.Len() > 0
			}
			b.WriteString(t.text)
		}
	}
	return "", false, false
}

// handleInclude resolves and inlines an include target. Unresolvable
// targets pass the directive line through verbatim (recorded in
// Missing) so system headers degrade to the pre-project behavior: the
// downstream parser ignores the directive line.
func (pp *preprocessor) handleInclude(f *srcFile, hash ptok, toks []ptok, lineEnd int) {
	name, local, ok := includeTarget(toks)
	if !ok {
		// The operand may be macro-spelled: #include MYHDR.
		name, local, ok = includeTarget(pp.expandList(toks))
	}
	if !ok {
		pp.errorAt(hash, "malformed #include")
		pp.out.copyDirect(f, hash.pos, lineEnd)
		return
	}
	path, src, found := pp.resolve(name, local, filepath.Dir(f.name))
	if !found {
		seen := false
		for _, m := range pp.missing {
			if m == name {
				seen = true
				break
			}
		}
		if !seen {
			pp.missing = append(pp.missing, name)
		}
		pp.out.copyDirect(f, hash.pos, lineEnd)
		return
	}
	if pp.once[path] {
		return
	}
	if pp.depth >= pp.maxDepth() {
		pp.errorAt(hash, fmt.Sprintf("#include nested too deeply (limit %d); cycle?", pp.maxDepth()))
		return
	}
	if !pp.included[path] {
		pp.included[path] = true
		pp.includes = append(pp.includes, path)
	}
	if n := len(pp.out.b); n > 0 && pp.out.lastByte() != '\n' {
		pp.out.emit("\n", SegSynth, f.name, hash.pos, hash.pos, "")
	}
	nf := &srcFile{name: path, src: src}
	savedMin := pp.condMin
	pp.condMin = len(pp.cond)
	pp.depth++
	pp.processFile(nf)
	pp.depth--
	pp.condMin = savedMin
	if pp.out.lastByte() != '\n' && len(pp.out.b) > 0 {
		pp.out.emit("\n", SegSynth, path, len(src), len(src), "")
	}
}

// resolve maps an include spelling to a path and its content.
func (pp *preprocessor) resolve(name string, local bool, fromDir string) (string, string, bool) {
	var cands []string
	if filepath.IsAbs(name) {
		cands = []string{name}
	} else {
		if local {
			cands = append(cands, filepath.Join(fromDir, name))
		}
		for _, d := range pp.opts.IncludeDirs {
			cands = append(cands, filepath.Join(d, name))
		}
	}
	for _, c := range cands {
		c = filepath.Clean(c)
		if src, ok := pp.files[c]; ok {
			return c, src, true
		}
		if src, ok := readThrough(pp.opts.Open, c); ok {
			return c, src, true
		}
	}
	return "", "", false
}
