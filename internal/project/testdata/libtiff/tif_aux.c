/* tif_aux.c: helpers. _TIFFmemset8 writes n bytes through p; nothing
 * here bounds n against p's real size — that contract lives (or fails)
 * at the call sites in other files. */
#include "tiffio.h"

void _TIFFmemset8(char *p, int v, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = 'x';
    }
}
