package cfix

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Client talks to a cfixd daemon or fleet router over the service's
// HTTP/JSON API. The zero value is not usable; create one with
// NewClient. All methods are safe for concurrent use.
//
// Retry discipline: the service tier answers 429 (admission control)
// and 503 (drain, breaker, overload) with a Retry-After header; the
// client honors it — it sleeps the advertised interval (clamped to
// MaxRetryAfter, jittered when absent) and retries up to MaxRetries
// times instead of failing a shed request immediately. Every other
// status is returned to the caller on the first attempt: a 422 parse
// error or 400 bad option will not get better by asking again.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8347".
	BaseURL string
	// HTTPClient issues the requests; nil means a dedicated client with
	// sane connection pooling. Its Timeout is left alone — per-request
	// deadlines come from RequestTimeout and the caller's context.
	HTTPClient *http.Client
	// MaxRetries bounds retries after 429/503 responses (0 means the
	// NewClient default of 4; negative disables retrying).
	MaxRetries int
	// MaxRetryAfter clamps how long a single Retry-After wait may be
	// (default 5s) so a misbehaving server cannot park the client.
	MaxRetryAfter time.Duration
	// RequestTimeout bounds one logical call including retries and
	// Retry-After sleeps (default 2m; <= 0 keeps the default). The
	// caller's context can always impose something shorter.
	RequestTimeout time.Duration

	randMu sync.Mutex
	rand   *rand.Rand
}

// NewClient builds a client for the service at baseURL with the default
// retry discipline.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:        strings.TrimRight(baseURL, "/"),
		MaxRetries:     4,
		MaxRetryAfter:  5 * time.Second,
		RequestTimeout: 2 * time.Minute,
	}
}

// StatusError is a non-2xx service answer that was not retried away:
// the HTTP status plus the error message from the JSON error body.
type StatusError struct {
	Status int
	// Msg is the server's "error" field (or raw body when not JSON).
	Msg string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cfix client: server answered %d: %s", e.Status, e.Msg)
}

// Fix transforms one translation unit through POST /v1/fix.
func (c *Client) Fix(ctx context.Context, req FixRequest) (*FixResponse, error) {
	var resp FixResponse
	if err := c.call(ctx, "/v1/fix", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Lint statically diagnoses one translation unit through POST /v1/lint.
func (c *Client) Lint(ctx context.Context, req LintRequest) (*LintResponse, error) {
	var resp LintResponse
	if err := c.call(ctx, "/v1/lint", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch processes many translation units through POST /v1/batch.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchResponse, error) {
	var resp BatchResponse
	if err := c.call(ctx, "/v1/batch", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Project processes a whole project (sources inline) through
// POST /v1/project: built-in preprocessing, cross-file seeding, and
// repairs remapped into the original text.
func (c *Client) Project(ctx context.Context, req ProjectRequest) (*ProjectResponse, error) {
	var resp ProjectResponse
	if err := c.call(ctx, "/v1/project", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Healthz reports whether the service answers its liveness probe.
func (c *Client) Healthz(ctx context.Context) error {
	return c.get(ctx, "/healthz", nil)
}

// Readyz reports whether the service is accepting work: nil when ready,
// a *StatusError with status 503 while draining.
func (c *Client) Readyz(ctx context.Context) error {
	return c.get(ctx, "/readyz", nil)
}

// MetricsRaw fetches GET /metrics decoded into a generic map — the
// shape differs between a single daemon and a fleet router, so callers
// pick the fields they need (cfixload reads retry/hedge/cache counters
// this way).
func (c *Client) MetricsRaw(ctx context.Context) (map[string]any, error) {
	var m map[string]any
	if err := c.get(ctx, "/metrics", &m); err != nil {
		return nil, err
	}
	return m, nil
}

// get issues one GET without the retry loop (probes answer immediately).
func (c *Client) get(ctx context.Context, path string, out any) error {
	ctx, cancel := c.callCtx(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("cfix client: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("cfix client: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return fmt.Errorf("cfix client: reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return &StatusError{Status: resp.StatusCode, Msg: errorMessage(body)}
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return fmt.Errorf("cfix client: decoding response: %w", err)
		}
	}
	return nil
}

// call POSTs one JSON request and decodes the JSON answer, retrying
// shed responses (429/503) per the Retry-After contract.
func (c *Client) call(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cfix client: encoding request: %w", err)
	}
	ctx, cancel := c.callCtx(ctx)
	defer cancel()

	maxRetries := c.MaxRetries
	if maxRetries == 0 {
		maxRetries = 4
	}
	for attempt := 0; ; attempt++ {
		status, after, respBody, err := c.post(ctx, path, body)
		switch {
		case err != nil:
			return fmt.Errorf("cfix client: %w", err)
		case status == http.StatusOK:
			if err := json.Unmarshal(respBody, out); err != nil {
				return fmt.Errorf("cfix client: decoding response: %w", err)
			}
			return nil
		case (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable) && attempt < maxRetries:
			if err := c.sleepRetryAfter(ctx, parseRetryAfter(after)); err != nil {
				return &StatusError{Status: status, Msg: errorMessage(respBody) +
					fmt.Sprintf(" (gave up waiting to retry: %v)", err)}
			}
		default:
			return &StatusError{Status: status, Msg: errorMessage(respBody)}
		}
	}
}

// post issues one POST attempt, returning the status, the Retry-After
// header (empty when absent) and the response body.
func (c *Client) post(ctx context.Context, path string, body []byte) (status int, retryAfter string, respBody []byte, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, "", nil, fmt.Errorf("reading response: %w", err)
	}
	return resp.StatusCode, resp.Header.Get("Retry-After"), data, nil
}

// parseRetryAfter understands both Retry-After encodings (delta-seconds
// and HTTP-date); anything else means "no advice" (0).
func parseRetryAfter(after string) time.Duration {
	if after == "" {
		return 0
	}
	if secs, err := strconv.Atoi(after); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(after); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// errorMessage extracts the server's JSON error field, falling back to
// the raw (first-line) body.
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(body))
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i]
	}
	if s == "" {
		s = "(empty response body)"
	}
	return s
}

// sleepRetryAfter waits out one shed response: the advertised interval
// clamped to MaxRetryAfter, or a small jittered default when the server
// named none. Context cancellation cuts the sleep short with an error.
func (c *Client) sleepRetryAfter(ctx context.Context, after time.Duration) error {
	maxWait := c.MaxRetryAfter
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	if after <= 0 {
		after = time.Duration(50+c.intn(150)) * time.Millisecond
	} else {
		// Jitter the advertised interval ±25% so a herd of shed clients
		// does not return in lockstep.
		quarter := int(after / 4)
		if quarter > 0 {
			after = after - time.Duration(quarter) + time.Duration(c.intn(2*quarter))
		}
	}
	if after > maxWait {
		after = maxWait
	}
	t := time.NewTimer(after)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// intn is rand.Intn behind the client's lock (clients are shared across
// goroutines; the global rand would be fine but keeps tests flakier).
func (c *Client) intn(n int) int {
	c.randMu.Lock()
	defer c.randMu.Unlock()
	if c.rand == nil {
		c.rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return c.rand.Intn(n)
}

// callCtx applies the client-side request timeout when the caller's
// context does not already impose a sooner deadline.
func (c *Client) callCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	timeout := c.RequestTimeout
	if timeout <= 0 {
		timeout = 2 * time.Minute
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) <= timeout {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

// defaultTransport is shared by every Client without an explicit
// HTTPClient: service traffic is many small requests to few hosts, so
// raise the per-host idle pool well above net/http's default of 2.
var defaultTransport = &http.Transport{
	MaxIdleConns:        256,
	MaxIdleConnsPerHost: 64,
	IdleConnTimeout:     90 * time.Second,
}

var defaultHTTPClient = &http.Client{Transport: defaultTransport}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}
