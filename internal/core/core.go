// Package core is the composition root for the paper's primary
// contribution: the two security-oriented program transformations that fix
// C buffer overflows at source level.
//
// It drives the full pipeline — parse, type analysis, the program analyses
// of Section III-A (control flow, reaching definitions, points-to, alias
// sets, interprocedural may-modify), then SAFE LIBRARY REPLACEMENT and
// SAFE TYPE REPLACEMENT — and returns the rewritten source together with
// per-site and per-variable reports. pkg/cfix re-exports this API for
// downstream users; cmd/cfix wraps it as a command-line tool.
package core

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ctoken"
	"repro/internal/overflow"
	"repro/internal/slr"
	"repro/internal/str"
	"repro/internal/stralloc"
)

// Options selects which transformations run and how.
type Options struct {
	// SLR / STR toggle the transformations (both default true via Fix;
	// the zero value of Options means "run everything").
	DisableSLR bool
	DisableSTR bool
	// SelectOffset, when >= 0, restricts SLR to the call expression
	// covering that byte offset (the case-by-case workflow of Section
	// II-A2). Negative means batch mode.
	SelectOffset int
	// EmitSupport prepends the stralloc header/implementation and the
	// glib prototypes the transformed file needs to build standalone.
	EmitSupport bool
	// Lint runs the static overflow oracle on the input before
	// transforming and attaches its verdicts to the SLR/STR candidate
	// reports (SiteResult.Risk / VarResult.Risk), so the summary can rank
	// and justify the repairs.
	Lint bool
}

// Report is the combined outcome.
type Report struct {
	// Source is the transformed text.
	Source string
	// SLR per-site outcomes (nil when SLR was disabled).
	SLR *slr.FileResult
	// STR per-variable outcomes (nil when STR was disabled).
	STR *str.FileResult
	// NeedsGlib / NeedsStralloc describe link-time requirements when
	// EmitSupport was false.
	NeedsGlib     bool
	NeedsStralloc bool
	// Findings holds the static overflow oracle's verdicts on the input
	// source (set when Options.Lint was true).
	Findings []overflow.Finding
}

// Changed reports whether any edit was applied.
func (r *Report) Changed() bool {
	return (r.SLR != nil && r.SLR.AppliedCount() > 0) ||
		(r.STR != nil && r.STR.AppliedCount() > 0)
}

// Summary renders a human-readable change log. When the overflow oracle
// ran (Options.Lint), candidate sites are ranked by static risk and each
// flagged site is justified with its verdict.
func (r *Report) Summary() string {
	var sb strings.Builder
	risk := func(f *overflow.Finding) string {
		if f == nil {
			return ""
		}
		return fmt.Sprintf(" [CWE-%d %s: %s]", f.CWE, f.Severity, f.Msg)
	}
	if r.SLR != nil {
		fmt.Fprintf(&sb, "SLR: %d/%d call sites transformed\n",
			r.SLR.AppliedCount(), r.SLR.Candidates())
		sites := r.SLR.Sites
		if len(r.Findings) > 0 {
			sites = r.SLR.RankedSites()
		}
		for _, s := range sites {
			if s.Applied {
				fmt.Fprintf(&sb, "  %s: %s -> %s (size: %s)%s\n",
					s.Pos, s.Function, slr.SafeNameFor(s.Function), s.Size.CText(), risk(s.Risk))
			} else {
				fmt.Fprintf(&sb, "  %s: %s not transformed: %v%s\n", s.Pos, s.Function, s.Failure, risk(s.Risk))
			}
		}
	}
	if r.STR != nil {
		fmt.Fprintf(&sb, "STR: %d/%d variables replaced\n",
			r.STR.AppliedCount(), r.STR.Candidates())
		vars := r.STR.Vars
		if len(r.Findings) > 0 {
			vars = r.STR.RankedVars()
		}
		for _, v := range vars {
			if v.Applied {
				fmt.Fprintf(&sb, "  %s: %s replaced with stralloc%s\n", v.Pos, v.Name, risk(v.Risk))
			} else {
				fmt.Fprintf(&sb, "  %s: %s not replaced: %s (%s)%s\n", v.Pos, v.Name, v.Reason, v.Detail, risk(v.Risk))
			}
		}
	}
	return sb.String()
}

// Analyze runs the static overflow oracle on one preprocessed C
// translation unit without transforming it, returning the CWE-classified
// findings in source order.
func Analyze(filename, source string) ([]overflow.Finding, error) {
	snap, err := analysis.Parse(filename, source)
	if err != nil {
		return nil, fmt.Errorf("core: parse for lint: %w", err)
	}
	return snap.Findings(), nil
}

// Fix applies the transformations to one preprocessed C translation unit.
//
// The input is parsed exactly once into a shared analysis-facts snapshot
// (internal/analysis); lint and SLR consume the same parse, typecheck and
// derived analyses. Only when SLR actually rewrites the text does STR
// re-parse — it must analyze the post-SLR source.
func Fix(filename, source string, opts Options) (*Report, error) {
	rep := &Report{Source: source}

	snap, err := analysis.Parse(filename, source)
	if err != nil {
		return nil, fmt.Errorf("core: parse for SLR: %w", err)
	}

	if opts.Lint {
		rep.Findings = snap.Findings()
	}

	if !opts.DisableSLR {
		tr := slr.NewTransformerSnap(snap)
		var res *slr.FileResult
		var err error
		if opts.SelectOffset >= 0 {
			res, err = tr.ApplyAt(ctoken.Pos(opts.SelectOffset))
		} else {
			res, err = tr.ApplyAll()
		}
		if err != nil {
			return nil, fmt.Errorf("core: SLR: %w", err)
		}
		rep.SLR = res
		rep.Source = res.NewSource
		rep.NeedsGlib = res.NeedsGlib
		// SLR analyzed the original text, so extents are comparable.
		res.AttachFindings(rep.Findings)
	}

	if !opts.DisableSTR && opts.SelectOffset < 0 {
		// STR reuses the snapshot when the text is unchanged; otherwise it
		// must analyze the post-SLR source, which requires a fresh parse.
		strSnap := snap
		if rep.Source != source {
			strSnap, err = analysis.Parse(filename, rep.Source)
			if err != nil {
				return nil, fmt.Errorf("core: parse for STR: %w", err)
			}
		}
		res, err := str.NewTransformerSnap(strSnap).ApplyAll()
		if err != nil {
			return nil, fmt.Errorf("core: STR: %w", err)
		}
		rep.STR = res
		rep.Source = res.NewSource
		rep.NeedsStralloc = res.NeedsStralloc
		// STR may have analyzed post-SLR text; AttachFindings matches by
		// (function, variable) name, which survives the rewrite.
		res.AttachFindings(rep.Findings)
	}

	if opts.EmitSupport {
		var support strings.Builder
		if rep.NeedsStralloc {
			support.WriteString(stralloc.FullSource())
			support.WriteString("\n")
		}
		if rep.NeedsGlib {
			support.WriteString(slr.GlibPrototypes())
			support.WriteString("\n")
		}
		if support.Len() > 0 {
			rep.Source = support.String() + rep.Source
		}
	}
	return rep, nil
}
