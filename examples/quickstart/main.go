// Quickstart: fix a buffer overflow in a C snippet and prove the fix.
//
// This walks the paper's motivating example (Section II-A4): a strcpy
// whose destination is a ten-byte stack buffer receiving fifty bytes.
// We (1) run the program under the checked interpreter and watch it
// overflow, (2) apply the transformations, (3) run it again and watch the
// overflow disappear.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/pkg/cfix"
)

const vulnerable = `
void example(void) {
    char buf[10];
    char src[100];
    memset(src, 'c', 50);
    src[50] = '\0';
    char *dst = buf;
    strcpy(dst, src);
    printf("copied: %s\n", buf);
}

int main(void) {
    example();
    return 0;
}
`

func main() { os.Exit(run()) }

func run() int {
	fmt.Println("--- original program ---")
	os.Stdout.WriteString(vulnerable)

	pre, err := cfix.Run("example.c", vulnerable, "main", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\n--- running it (checked) ---\n")
	fmt.Printf("output: %q\n", pre.Stdout)
	for _, v := range pre.Violations {
		fmt.Printf("violation: %s\n", v)
	}

	rep, err := cfix.Fix("example.c", vulnerable, cfix.Options{EmitSupport: true})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\n--- transformation report ---\n%s", rep.Summary())

	post, err := cfix.Run("example.c", rep.Source, "main", nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Printf("\n--- running the fixed program ---\n")
	fmt.Printf("output: %q\n", post.Stdout)
	if post.Safe() {
		fmt.Println("no memory-safety violations: the overflow is gone.")
		return 0
	}
	for _, v := range post.Violations {
		fmt.Printf("violation: %s\n", v)
	}
	return 1
}
