package cfix_test

import (
	"fmt"

	"repro/pkg/cfix"
)

// ExampleFix shows the paper's motivating transformation: an unbounded
// strcpy becomes a size-bounded g_strlcpy.
func ExampleFix() {
	source := `void f(void) {
    char buf[10];
    strcpy(buf, "this input is far too long");
}
`
	report, err := cfix.Fix("f.c", source, cfix.Options{DisableSTR: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Print(report.Source)
	// Output:
	// void f(void) {
	//     char buf[10];
	//     g_strlcpy(buf, "this input is far too long", sizeof(buf));
	// }
}

// ExampleRun executes a program under the checked interpreter; the
// overflow is reported with its CWE class.
func ExampleRun() {
	source := `int main(void) {
    char buf[4];
    strcpy(buf, "overflowing");
    return 0;
}
`
	result, err := cfix.Run("main.c", source, "main", nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("safe:", result.Safe())
	fmt.Println("class: CWE-", result.Violations[0].CWE)
	// Output:
	// safe: false
	// class: CWE- 121
}

// ExampleVerify runs the full protocol: detect, transform, prove.
func ExampleVerify() {
	source := `void prog_good(void) {
    char buf[32];
    strcpy(buf, "fits");
    printf("%s\n", buf);
}
void prog_bad(void) {
    char buf[4];
    strcpy(buf, "does not fit");
    printf("%s\n", buf);
}
`
	v, err := cfix.Verify("prog.c", source, "prog_good", "prog_bad", nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("vulnerability detected:", v.VulnDetected)
	fmt.Println("fixed:", v.Fixed)
	fmt.Println("behavior preserved:", v.Preserved)
	// Output:
	// vulnerability detected: true
	// fixed: true
	// behavior preserved: true
}
