package analysis

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapPreservesInputOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 3, 8, 1000} {
		got := Map(workers, items, func(i, v int) int { return v * v })
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

func TestMapEmptyAndNil(t *testing.T) {
	if got := Map(4, nil, func(i, v int) int { return v }); len(got) != 0 {
		t.Fatalf("nil input: got %d results", len(got))
	}
	if got := Map(4, []int{}, func(i, v int) int { return v }); len(got) != 0 {
		t.Fatalf("empty input: got %d results", len(got))
	}
}

func TestMapCallsEachItemOnce(t *testing.T) {
	const n = 257
	var calls [n]atomic.Int32
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	Map(7, items, func(i, v int) struct{} {
		calls[v].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Fatalf("item %d processed %d times", i, c)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	items := make([]int, 64)
	Map(workers, items, func(i, v int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return v
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}

func TestMapIndexMatchesItem(t *testing.T) {
	items := []string{"a", "b", "c", "d", "e"}
	got := Map(2, items, func(i int, v string) bool { return items[i] == v })
	for i, ok := range got {
		if !ok {
			t.Fatalf("callback index mismatch at %d", i)
		}
	}
}
