package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/fault"
)

// Problem describes a forward dataflow problem over an arbitrary lattice T.
// It generalizes the bitset gen/kill engine (Forward) so analyses whose
// facts are not finite sets — the buffer-size interval analysis of
// internal/overflow is the second client — can share the same worklist
// solver. The paper's base analyses (Section III-A) all fit this shape.
type Problem[T any] interface {
	// Bottom is the "no information / unreached" element. It is the
	// initial state of every node except the entry.
	Bottom() T
	// Entry is the state flowing into the function entry node (parameter
	// bindings, globals).
	Entry() T
	// Join combines states at control-flow merges. It must be monotone
	// and may reuse/mutate neither argument.
	Join(a, b T) T
	// Widen extrapolates at loop heads: given the previous and the newly
	// joined in-state it must return an upper bound of both, and repeated
	// widening must stabilize in finite time. Problems on finite-height
	// lattices can simply return the join.
	Widen(prev, next T) T
	// Equal reports lattice-element equality; the solver iterates until a
	// fixpoint under Equal.
	Equal(a, b T) bool
	// Transfer computes the out-state of node n from its in-state.
	Transfer(n *cfg.Node, in T) T
	// FlowEdge adapts an out-state while it flows along the specific CFG
	// edge from → to. Path-insensitive problems return the state
	// unchanged; the interval analysis refines it using branch-condition
	// labels (cfg.Node.TrueSuccs).
	FlowEdge(from, to *cfg.Node, state T) T
}

// Solution holds the solved states of a forward lattice problem.
type Solution[T any] struct {
	// In and Out are indexed by CFG node ID.
	In, Out []T
	// Reached marks nodes with at least one executed predecessor path;
	// unreached nodes hold Bottom.
	Reached []bool
	// Degraded marks a solve cut short by an exhausted step budget. The
	// recorded states are a valid under-approximation of the fixpoint
	// (some nodes may still hold Bottom); clients must not treat the
	// absence of facts in a degraded solution as proof of absence.
	Degraded bool
}

// SolveForward runs the worklist algorithm for p over g, applying Widen at
// loop heads (back-edge targets). The traversal order is reverse postorder,
// which reaches the fixpoint in near-minimal passes on reducible graphs.
func SolveForward[T any](g *cfg.Graph, p Problem[T]) *Solution[T] {
	return SolveForwardLimits[T](g, p, fault.Limits{})
}

// SolveForwardLimits is SolveForward under fault-containment limits: the
// context in lim is polled at every worklist iteration (cancellation
// aborts via the fault sentinel), and an exhausted step budget stops the
// solve early with Solution.Degraded set.
func SolveForwardLimits[T any](g *cfg.Graph, p Problem[T], lim fault.Limits) *Solution[T] {
	n := len(g.Nodes)
	sol := &Solution[T]{
		In:      make([]T, n),
		Out:     make([]T, n),
		Reached: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		sol.In[i] = p.Bottom()
		sol.Out[i] = p.Bottom()
	}

	order := postorder(g)
	rpoIndex := make([]int, n)
	for i := range rpoIndex {
		rpoIndex[i] = -1
	}
	// Reverse postorder position of each node.
	for i, id := range order {
		rpoIndex[id] = len(order) - 1 - i
	}
	heads := loopHeads(g)

	// Worklist ordered by RPO position (a simple priority bucket keeps the
	// implementation dependency-free; graphs here are function-sized).
	inWork := make([]bool, n)
	work := make([]int, 0, n)
	push := func(id int) {
		if !inWork[id] {
			inWork[id] = true
			work = append(work, id)
		}
	}
	pop := func() int {
		best := 0
		for i := 1; i < len(work); i++ {
			if rpoIndex[work[i]] < rpoIndex[work[best]] {
				best = i
			}
		}
		id := work[best]
		work[best] = work[len(work)-1]
		work = work[:len(work)-1]
		inWork[id] = false
		return id
	}

	entry := g.Entry.ID
	sol.In[entry] = p.Entry()
	sol.Reached[entry] = true
	sol.Out[entry] = p.Transfer(g.Entry, sol.In[entry])
	for _, s := range g.Entry.Succs {
		push(s.ID)
	}

	meter := lim.NewMeter()
	for len(work) > 0 {
		if !meter.Step() {
			sol.Degraded = true
			break
		}
		id := pop()
		node := g.Nodes[id]
		if node.Kind == cfg.KindEntry {
			continue
		}

		newIn := p.Bottom()
		reached := false
		for _, pred := range node.Preds {
			if !sol.Reached[pred.ID] {
				continue
			}
			edgeState := p.FlowEdge(pred, node, sol.Out[pred.ID])
			if !reached {
				newIn = edgeState
				reached = true
			} else {
				newIn = p.Join(newIn, edgeState)
			}
		}
		if !reached {
			continue
		}
		if heads[id] && sol.Reached[id] {
			newIn = p.Widen(sol.In[id], newIn)
		}
		if sol.Reached[id] && p.Equal(newIn, sol.In[id]) {
			continue
		}
		sol.Reached[id] = true
		sol.In[id] = newIn
		newOut := p.Transfer(node, newIn)
		if !p.Equal(newOut, sol.Out[id]) {
			sol.Out[id] = newOut
			for _, s := range node.Succs {
				push(s.ID)
			}
		}
	}
	return sol
}

// postorder returns node IDs in DFS postorder from the entry.
func postorder(g *cfg.Graph) []int {
	seen := make([]bool, len(g.Nodes))
	order := make([]int, 0, len(g.Nodes))
	var walk func(n *cfg.Node)
	walk = func(n *cfg.Node) {
		seen[n.ID] = true
		for _, s := range n.Succs {
			if !seen[s.ID] {
				walk(s)
			}
		}
		order = append(order, n.ID)
	}
	walk(g.Entry)
	return order
}

// loopHeads marks targets of back edges (an edge u→v where v is on the DFS
// stack when u is expanded). Widening is applied only at these nodes.
func loopHeads(g *cfg.Graph) []bool {
	heads := make([]bool, len(g.Nodes))
	color := make([]int, len(g.Nodes)) // 0 white, 1 grey, 2 black
	var walk func(n *cfg.Node)
	walk = func(n *cfg.Node) {
		color[n.ID] = 1
		for _, s := range n.Succs {
			switch color[s.ID] {
			case 0:
				walk(s)
			case 1:
				heads[s.ID] = true
			}
		}
		color[n.ID] = 2
	}
	walk(g.Entry)
	return heads
}
