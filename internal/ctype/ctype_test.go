package ctype

import (
	"testing"
	"testing/quick"
)

func TestBasicSizes(t *testing.T) {
	tests := []struct {
		typ  Type
		size int
	}{
		{CharType, 1}, {SCharType, 1}, {UCharType, 1}, {BoolType, 1},
		{ShortType, 2}, {UShortType, 2},
		{IntType, 4}, {UIntType, 4}, {FloatType, 4},
		{LongType, 8}, {ULongType, 8}, {LongLongType, 8}, {DoubleType, 8},
		{VoidType, -1},
		{PointerTo(CharType), 8},
		{ArrayOf(CharType, 10), 10},
		{ArrayOf(IntType, 10), 40},
		{ArrayOf(CharType, -1), -1},
	}
	for _, tt := range tests {
		if got := tt.typ.Size(); got != tt.size {
			t.Errorf("%s: size %d, want %d", tt.typ, got, tt.size)
		}
	}
}

func TestRecordLayout(t *testing.T) {
	// The stralloc struct: s@0, f@8, len@16, a@20, size 24.
	rec := &Record{Tag: "stralloc"}
	rec.SetFields([]Field{
		{Name: "s", Type: PointerTo(CharType)},
		{Name: "f", Type: PointerTo(CharType)},
		{Name: "len", Type: UIntType},
		{Name: "a", Type: UIntType},
	})
	wantOffsets := map[string]int{"s": 0, "f": 8, "len": 16, "a": 20}
	for name, want := range wantOffsets {
		f, ok := rec.FieldNamed(name)
		if !ok || f.Offset != want {
			t.Errorf("%s: offset %d, want %d", name, f.Offset, want)
		}
	}
	if rec.Size() != 24 {
		t.Fatalf("size: %d, want 24", rec.Size())
	}
}

func TestRecordPadding(t *testing.T) {
	rec := &Record{Tag: "padded"}
	rec.SetFields([]Field{
		{Name: "c", Type: CharType},
		{Name: "p", Type: PointerTo(VoidType)},
		{Name: "c2", Type: CharType},
	})
	f, _ := rec.FieldNamed("p")
	if f.Offset != 8 {
		t.Fatalf("p offset: %d, want 8 (alignment)", f.Offset)
	}
	if rec.Size() != 24 {
		t.Fatalf("size: %d, want 24 (trailing padding)", rec.Size())
	}
}

func TestUnionLayout(t *testing.T) {
	u := &Record{Tag: "u", IsUnion: true}
	u.SetFields([]Field{
		{Name: "i", Type: IntType},
		{Name: "d", Type: DoubleType},
		{Name: "c", Type: CharType},
	})
	for _, f := range u.Fields {
		if f.Offset != 0 {
			t.Fatalf("union member %s at offset %d", f.Name, f.Offset)
		}
	}
	if u.Size() != 8 {
		t.Fatalf("union size: %d, want 8", u.Size())
	}
}

func TestIncompleteRecord(t *testing.T) {
	rec := &Record{Tag: "fwd"}
	if rec.Size() != -1 {
		t.Fatal("incomplete record must have size -1")
	}
}

func TestCharPredicates(t *testing.T) {
	if !IsCharPointer(PointerTo(CharType)) {
		t.Fatal("char* is a char pointer")
	}
	if !IsCharPointer(PointerTo(UCharType)) {
		t.Fatal("unsigned char* counts as char pointer")
	}
	if IsCharPointer(PointerTo(IntType)) {
		t.Fatal("int* is not a char pointer")
	}
	if !IsCharArray(ArrayOf(CharType, 4)) {
		t.Fatal("char[4] is a char array")
	}
	if IsCharArray(ArrayOf(PointerTo(CharType), 4)) {
		t.Fatal("char*[4] is not a char array")
	}
	named := &Named{Name: "buf_t", Underlying: PointerTo(CharType)}
	if !IsCharPointer(named) {
		t.Fatal("typedefs must resolve in predicates")
	}
}

func TestDecay(t *testing.T) {
	d := Decay(ArrayOf(CharType, 8))
	p, ok := d.(*Pointer)
	if !ok || !IsCharLike(p.Elem) {
		t.Fatalf("array decay: %s", d)
	}
	f := &Func{Result: IntType}
	if _, ok := Decay(f).(*Pointer); !ok {
		t.Fatal("function decay to pointer")
	}
	if Decay(IntType) != IntType {
		t.Fatal("scalars pass through")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(PointerTo(CharType), PointerTo(CharType)) {
		t.Fatal("structurally equal pointers")
	}
	if Equal(PointerTo(CharType), PointerTo(IntType)) {
		t.Fatal("different pointee")
	}
	if !Equal(ArrayOf(IntType, 3), ArrayOf(IntType, 3)) {
		t.Fatal("equal arrays")
	}
	if Equal(ArrayOf(IntType, 3), ArrayOf(IntType, 4)) {
		t.Fatal("different lengths")
	}
	named := &Named{Name: "myint", Underlying: IntType}
	if !Equal(named, IntType) {
		t.Fatal("typedef resolves for equality")
	}
	r1 := &Record{Tag: "a", Complete: true}
	r2 := &Record{Tag: "a", Complete: true}
	if Equal(r1, r2) {
		t.Fatal("records compare by identity")
	}
	if !Equal(r1, r1) {
		t.Fatal("record self-equality")
	}
	fa := &Func{Result: IntType, Params: []Type{PointerTo(CharType)}}
	fb := &Func{Result: IntType, Params: []Type{PointerTo(CharType)}}
	if !Equal(fa, fb) {
		t.Fatal("equal function types")
	}
	fc := &Func{Result: IntType, Params: []Type{PointerTo(CharType)}, Variadic: true}
	if Equal(fa, fc) {
		t.Fatal("variadic differs")
	}
}

func TestElem(t *testing.T) {
	if Elem(PointerTo(IntType)) != IntType {
		t.Fatal("pointer elem")
	}
	if Elem(ArrayOf(IntType, 2)) != IntType {
		t.Fatal("array elem")
	}
	if Elem(IntType) != nil {
		t.Fatal("scalar has no elem")
	}
}

func TestPredicates(t *testing.T) {
	if !IsInteger(IntType) || !IsInteger(ULongType) || IsInteger(FloatType) {
		t.Fatal("IsInteger")
	}
	if !IsArithmetic(DoubleType) || IsArithmetic(PointerTo(IntType)) {
		t.Fatal("IsArithmetic")
	}
	if !IsScalar(PointerTo(IntType)) || !IsScalar(IntType) || IsScalar(ArrayOf(IntType, 1)) {
		t.Fatal("IsScalar")
	}
	e := &Enum{Tag: "e"}
	if !IsInteger(e) || e.Size() != 4 {
		t.Fatal("enums are int-like")
	}
}

// TestPropertyArraySizeLinear: sizeof(T[n]) == n * sizeof(T) for complete
// element types.
func TestPropertyArraySizeLinear(t *testing.T) {
	elems := []Type{CharType, ShortType, IntType, LongType, PointerTo(CharType)}
	f := func(rawN uint16, pick uint8) bool {
		n := int(rawN % 1000)
		elem := elems[int(pick)%len(elems)]
		return ArrayOf(elem, n).Size() == n*elem.Size()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNestedPointerSize: any pointer chain is 8 bytes.
func TestPropertyNestedPointerSize(t *testing.T) {
	f := func(depth uint8) bool {
		var typ Type = IntType
		for i := 0; i < int(depth%12)+1; i++ {
			typ = PointerTo(typ)
		}
		return typ.Size() == 8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUnqualifyIdempotent: Unqualify is a fixpoint after one
// application.
func TestPropertyUnqualifyIdempotent(t *testing.T) {
	f := func(depth uint8) bool {
		var typ Type = ArrayOf(CharType, 4)
		for i := 0; i < int(depth%6); i++ {
			typ = &Named{Name: "t", Underlying: typ}
		}
		once := Unqualify(typ)
		return Unqualify(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeStrings(t *testing.T) {
	tests := []struct {
		typ  Type
		want string
	}{
		{PointerTo(CharType), "char *"},
		{ArrayOf(IntType, 3), "int [3]"},
		{ArrayOf(IntType, -1), "int []"},
		{&Func{Result: IntType, Params: []Type{PointerTo(CharType)}}, "int (char *)"},
		{&Func{Result: VoidType, Variadic: true}, "void (...)"},
		{&Func{Result: IntType, Params: []Type{IntType}, Variadic: true}, "int (int, ...)"},
		{&Record{Tag: "s"}, "struct s"},
		{&Record{Tag: "u", IsUnion: true}, "union u"},
		{&Record{}, "struct <anonymous>"},
		{&Enum{Tag: "e"}, "enum e"},
		{&Enum{}, "enum <anonymous>"},
		{&Named{Name: "size_t", Underlying: ULongType}, "size_t"},
		{&Hole{}, "<hole>"},
		{&Basic{Kind: LongDouble}, "long double"},
	}
	for _, tt := range tests {
		if got := tt.typ.String(); got != tt.want {
			t.Errorf("String: got %q, want %q", got, tt.want)
		}
	}
	if (&Hole{}).Size() != -1 {
		t.Error("hole size")
	}
	if (&Named{Name: "n", Underlying: IntType}).Size() != 4 {
		t.Error("named size delegates")
	}
}

func TestBasicPredicates(t *testing.T) {
	for _, k := range []BasicKind{Bool, Char, SChar, UChar, Short, UShort, Int, UInt, Long, ULong, LongLong, ULongLong} {
		b := &Basic{Kind: k}
		if !b.IsInteger() || b.IsFloat() {
			t.Errorf("%s must be integer, not float", b)
		}
	}
	for _, k := range []BasicKind{Float, Double, LongDouble} {
		b := &Basic{Kind: k}
		if b.IsInteger() || !b.IsFloat() {
			t.Errorf("%s must be float", b)
		}
	}
	v := &Basic{Kind: Void}
	if v.IsInteger() || v.IsFloat() {
		t.Error("void is neither")
	}
}

func TestFieldNamedMissing(t *testing.T) {
	rec := &Record{Tag: "r"}
	rec.SetFields([]Field{{Name: "x", Type: IntType}})
	if _, ok := rec.FieldNamed("nope"); ok {
		t.Fatal("missing field must report false")
	}
}
