package cfix

import (
	"strings"
	"testing"
)

const vulnerable = `
void copy_input(void) {
    char buf[10];
    char src[100];
    memset(src, 'c', 50);
    src[50] = '\0';
    char *dst = buf;
    strcpy(dst, src);
    printf("%s\n", buf);
}

int main(void) {
    copy_input();
    return 0;
}
`

func TestFixAndRunEndToEnd(t *testing.T) {
	// 1. The original program overflows.
	pre, err := Run("v.c", vulnerable, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Safe() {
		t.Fatal("original program should overflow")
	}

	// 2. Fix it.
	rep, err := Fix("v.c", vulnerable, Options{EmitSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed() {
		t.Fatal("fix should change the program")
	}
	if !strings.Contains(rep.Source, "g_strlcpy") {
		t.Fatalf("expected SLR rewrite:\n%s", rep.Source)
	}

	// 3. The fixed program is clean.
	post, err := Run("v.c", rep.Source, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !post.Safe() {
		t.Fatalf("fixed program still has violations: %v", post.Violations)
	}
}

func TestFixSummaryReadable(t *testing.T) {
	rep, err := Fix("v.c", vulnerable, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	if !strings.Contains(s, "SLR") || !strings.Contains(s, "STR") {
		t.Fatalf("summary: %s", s)
	}
}

func TestFixSelectOffset(t *testing.T) {
	src := `
void f(void) {
    char a[8];
    char b[8];
    strcpy(a, "1");
    strcpy(b, "2");
}
`
	off := strings.Index(src, `strcpy(b`)
	rep, err := Fix("s.c", src, Options{SelectOffset: off, DisableSTR: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rep.Source, `g_strlcpy(a`) {
		t.Fatal("unselected site must stay")
	}
	if !strings.Contains(rep.Source, `g_strlcpy(b`) {
		t.Fatal("selected site must change")
	}
}

func TestRunReportsCWE(t *testing.T) {
	res, err := Run("v.c", vulnerable, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range res.Violations {
		if v.CWE == 121 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected CWE-121, got %v", res.Violations)
	}
	if res.Steps == 0 {
		t.Fatal("steps should be counted")
	}
}

func TestFixDisableBoth(t *testing.T) {
	rep, err := Fix("v.c", vulnerable, Options{DisableSLR: true, DisableSTR: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed() || rep.Source != vulnerable {
		t.Fatal("nothing should change with both transformations disabled")
	}
}

// FuzzFix: Fix must never panic on arbitrary input — it either transforms
// or returns an error, and any transformed output must re-parse.
func FuzzFix(f *testing.F) {
	f.Add(vulnerable)
	f.Add("void f(void){ char b[4]; gets(b); }")
	f.Add("char *p = \"x\"; int g(")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 || strings.Count(src, "(") > 100 {
			t.Skip()
		}
		rep, err := Fix("fuzz.c", src, Options{EmitSupport: true})
		if err != nil {
			return
		}
		if _, err := Run("fuzz.c", rep.Source, "no_entry_expected", nil); err == nil {
			// Fine: a function named no_entry_expected actually existed.
			return
		}
	})
}

func TestVerifyPublicAPI(t *testing.T) {
	src := `
void demo_good(void) {
    char buf[32];
    strcpy(buf, "fits");
    printf("%s\n", buf);
}
void demo_bad(void) {
    char buf[4];
    strcpy(buf, "does not fit at all");
    printf("%s\n", buf);
}
`
	v, err := Verify("demo.c", src, "demo_good", "demo_bad", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.VulnDetected || !v.Fixed || !v.Preserved {
		t.Fatalf("verdict: detected=%v fixed=%v preserved=%v",
			v.VulnDetected, v.Fixed, v.Preserved)
	}
}

func TestSupportSourceParses(t *testing.T) {
	sup := SupportSource()
	if !strings.Contains(sup, "stralloc_ready") || !strings.Contains(sup, "g_strlcpy") {
		t.Fatal("support source incomplete")
	}
	if _, err := Run("support.c", sup+"\nint main(void){ return 0; }", "main", nil); err != nil {
		t.Fatalf("support source must run standalone: %v", err)
	}
}

func TestAnalyzeStaticOracle(t *testing.T) {
	findings, err := Analyze("v.c", vulnerable)
	if err != nil {
		t.Fatal(err)
	}
	var hit *Finding
	for i := range findings {
		if findings[i].CWE == 121 && findings[i].Severity == SevDefinite {
			hit = &findings[i]
		}
	}
	if hit == nil {
		t.Fatalf("definite CWE-121 expected, got %v", findings)
	}
	if hit.Function != "copy_input" {
		t.Fatalf("finding in %s, want copy_input", hit.Function)
	}
	if !strings.Contains(hit.SuggestedFix, "g_strlcpy") {
		t.Fatalf("suggested fix should name the SLR replacement: %q", hit.SuggestedFix)
	}
	if CWEName(121) != "Stack-based Buffer Overflow" {
		t.Fatalf("CWEName: %q", CWEName(121))
	}
}

func TestFixLintOptionRanksSummary(t *testing.T) {
	rep, err := Fix("v.c", vulnerable, Options{Lint: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("findings expected with Lint")
	}
	if !strings.Contains(rep.Summary(), "[CWE-121 definite:") {
		t.Fatalf("summary should carry the verdict:\n%s", rep.Summary())
	}
}
