package cinterp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ctoken"
)

// formatC renders a printf-style format string against evaluated
// arguments, with C semantics for the conversions the paper's corpora use.
// Crucially, integer conversions go through the C default-argument
// promotions: a negative char passed to %o is sign-extended to int and
// then read as unsigned — the exact mechanism behind the LibTIFF
// vulnerability of Section IV-A2.
func (in *Interp) formatC(format string, args []Value, at ctoken.Extent) string {
	var sb strings.Builder
	argi := 0
	next := func() Value {
		if argi < len(args) {
			v := args[argi]
			argi++
			return v
		}
		return IntV(0)
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			sb.WriteByte(c)
			i++
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			sb.WriteByte('%')
			i++
			continue
		}
		spec := parseSpec(format, &i)
		if spec.conv == 0 {
			break
		}
		sb.WriteString(in.renderSpec(spec, next, at))
	}
	return sb.String()
}

// spec is one parsed conversion specification.
type spec struct {
	minus, zero, plus, space, hash bool
	width                          int // -1 when absent
	prec                           int // -1 when absent
	length                         string
	conv                           byte
}

// parseSpec parses flags/width/precision/length/conversion starting at
// *i (just past the '%'), advancing *i past the conversion.
func parseSpec(format string, i *int) spec {
	s := spec{width: -1, prec: -1}
	// Flags.
	for *i < len(format) {
		switch format[*i] {
		case '-':
			s.minus = true
		case '0':
			s.zero = true
		case '+':
			s.plus = true
		case ' ':
			s.space = true
		case '#':
			s.hash = true
		default:
			goto width
		}
		*i++
	}
width:
	for *i < len(format) && format[*i] >= '0' && format[*i] <= '9' {
		if s.width < 0 {
			s.width = 0
		}
		s.width = s.width*10 + int(format[*i]-'0')
		*i++
	}
	if *i < len(format) && format[*i] == '.' {
		*i++
		s.prec = 0
		for *i < len(format) && format[*i] >= '0' && format[*i] <= '9' {
			s.prec = s.prec*10 + int(format[*i]-'0')
			*i++
		}
	}
	for *i < len(format) {
		switch format[*i] {
		case 'l', 'h', 'z', 'j', 't':
			s.length += string(format[*i])
			*i++
			continue
		}
		break
	}
	if *i < len(format) {
		s.conv = format[*i]
		*i++
	}
	return s
}

// renderSpec renders one conversion.
func (in *Interp) renderSpec(s spec, next func() Value, at ctoken.Extent) string {
	pad := func(body string, negative bool) string {
		if s.prec >= 0 && isIntConv(s.conv) {
			// Precision = minimum digits for integer conversions.
			for len(body) < s.prec {
				body = "0" + body
			}
		}
		if negative {
			body = "-" + body
		} else if s.plus && isIntConv(s.conv) && s.conv != 'u' {
			body = "+" + body
		}
		if s.width > 0 {
			for len(body) < s.width {
				if s.minus {
					body += " "
				} else if s.zero && s.prec < 0 {
					if negative {
						// Keep the sign ahead of zero padding.
						body = "-0" + body[1:]
						continue
					}
					body = "0" + body
				} else {
					body = " " + body
				}
			}
		}
		return body
	}

	switch s.conv {
	case 'd', 'i':
		v := next().AsInt()
		v = promoteForLength(v, s.length, true)
		neg := v < 0
		body := strconv.FormatInt(abs64(v), 10)
		return pad(body, neg)
	case 'u':
		v := next().AsInt()
		return pad(strconv.FormatUint(toUnsigned(v, s.length), 10), false)
	case 'o':
		v := next().AsInt()
		body := strconv.FormatUint(toUnsigned(v, s.length), 8)
		if s.hash && !strings.HasPrefix(body, "0") {
			body = "0" + body
		}
		return pad(body, false)
	case 'x':
		v := next().AsInt()
		body := strconv.FormatUint(toUnsigned(v, s.length), 16)
		if s.hash {
			body = "0x" + body
		}
		return pad(body, false)
	case 'X':
		v := next().AsInt()
		body := strings.ToUpper(strconv.FormatUint(toUnsigned(v, s.length), 16))
		if s.hash {
			body = "0X" + body
		}
		return pad(body, false)
	case 'c':
		return pad(string([]byte{byte(next().AsInt())}), false)
	case 's':
		v := next()
		var str string
		if v.K == VPtr {
			str = in.readCString(v.P, at)
		}
		if s.prec >= 0 && len(str) > s.prec {
			str = str[:s.prec]
		}
		if s.width > 0 {
			for len(str) < s.width {
				if s.minus {
					str += " "
				} else {
					str = " " + str
				}
			}
		}
		return str
	case 'p':
		v := next()
		if v.K == VPtr && !v.P.IsNull() {
			return fmt.Sprintf("0x%x", uint64(v.P.Obj.ID)<<16+uint64(v.P.Off))
		}
		return "(nil)"
	case 'f', 'g', 'e':
		v := next().AsFloat()
		prec := s.prec
		if prec < 0 {
			prec = 6
		}
		var body string
		switch s.conv {
		case 'f':
			body = strconv.FormatFloat(v, 'f', prec, 64)
		case 'e':
			body = strconv.FormatFloat(v, 'e', prec, 64)
		default:
			body = strconv.FormatFloat(v, 'g', -1, 64)
		}
		return pad(body, false)
	default:
		// Unknown conversion: emit it literally (matches glibc's lenient
		// behavior closely enough for the corpora).
		return "%" + string(s.conv)
	}
}

func isIntConv(c byte) bool {
	switch c {
	case 'd', 'i', 'u', 'o', 'x', 'X':
		return true
	default:
		return false
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// promoteForLength truncates per the length modifier (h, hh) or keeps the
// promoted int/long value.
func promoteForLength(v int64, length string, _ bool) int64 {
	switch length {
	case "hh":
		return int64(int8(v))
	case "h":
		return int64(int16(v))
	default:
		return v
	}
}

// toUnsigned reads the promoted value as the unsigned type the conversion
// expects. Without an 'l' length modifier the C default promotion makes
// the argument an int, read as unsigned int (32 bits) — the
// sign-extension trap: (char)0x80 → int -128 → unsigned 0xFFFFFF80.
func toUnsigned(v int64, length string) uint64 {
	switch {
	case strings.Contains(length, "ll"):
		return uint64(v)
	case strings.Contains(length, "l"), strings.Contains(length, "z"), strings.Contains(length, "j"):
		return uint64(v)
	case length == "h":
		return uint64(uint16(v))
	case length == "hh":
		return uint64(uint8(v))
	default:
		return uint64(uint32(v))
	}
}
