// Package slr implements the SAFE LIBRARY REPLACEMENT transformation
// (Sections II-A and III-B): unsafe C library calls are replaced with safe,
// size-bounded alternatives, with the destination-buffer size computed by
// Algorithm 1 (internal/buflen). The safe-function dialect the rewrite
// targets is a pluggable internal/backend.Backend; the default is the
// paper's glib dialect.
package slr

import (
	"repro/internal/backend"
)

// Alternative describes one safe replacement option for an unsafe
// function, as catalogued in Table I of the paper.
type Alternative struct {
	Name      string
	Library   string // providing library
	Signature string // prototype as documented
}

// CatalogEntry is one row of Table I.
type CatalogEntry struct {
	Unsafe       string
	UnsafeProto  string
	Alternatives []Alternative
}

// TableI is the unsafe-function catalogue of the paper (Table I): the
// unsafe functions and the safer alternatives proposed by researchers and
// standards bodies. The default transformation uses the glib-style
// alternatives (backend.Glib) because they are syntactically closest
// to the originals, keeping per-instance changes minimal (Section II-A3);
// the BSD strlcpy column is backend.BSD and the ISO/IEC TR 24731 column
// is backend.C11K.
var TableI = []CatalogEntry{
	{
		Unsafe:      "strcpy",
		UnsafeProto: "char *strcpy(char *dst, const char *src);",
		Alternatives: []Alternative{
			{Name: "g_strlcpy", Library: "glib", Signature: "gsize g_strlcpy(gchar *dst, const gchar *src, gsize dst_size);"},
			{Name: "astrcpy", Library: "libmib", Signature: "char *astrcpy(char **dst_address, const char *src);"},
			{Name: "strcpy_s", Library: "ISO/IEC TR 24731 / SafeCRT", Signature: "errno_t strcpy_s(char *dst, rsize_t dst_size, const char *src);"},
			{Name: "StringCchCopy", Library: "StrSafe", Signature: "HRESULT StringCchCopy(LPTSTR dst, size_t dst_size, LPCTSTR src);"},
			{Name: "safestr_copy", Library: "Safestr", Signature: "safestr_t safestr_copy(safestr_t *dst, safestr_t src);"},
		},
	},
	{
		Unsafe:      "strncpy",
		UnsafeProto: "char *strncpy(char *dst, const char *src, size_t num);",
		Alternatives: []Alternative{
			{Name: "g_strlcpy", Library: "glib", Signature: "gsize g_strlcpy(gchar *dst, const gchar *src, gsize dst_size);"},
			{Name: "astrn0cpy", Library: "libmib", Signature: "char *astrn0cpy(char **dst_address, const char *src, size_t num);"},
			{Name: "strncpy_s", Library: "ISO/IEC TR 24731", Signature: "errno_t strncpy_s(char *dst, rsize_t dst_size, const char *src, rsize_t num);"},
			{Name: "StringCchCopyN", Library: "StrSafe", Signature: "HRESULT StringCchCopyN(LPTSTR dst, size_t dst_size, LPCTSTR src, size_t num);"},
			{Name: "safestr_ncopy", Library: "Safestr", Signature: "safestr_t safestr_ncopy(safestr_t *dst, safestr_t src, size_t num);"},
		},
	},
	{
		Unsafe:      "strcat",
		UnsafeProto: "char *strcat(char *dst, const char *src);",
		Alternatives: []Alternative{
			{Name: "g_strlcat", Library: "glib", Signature: "gsize g_strlcat(gchar *dst, const gchar *src, gsize dst_size);"},
			{Name: "strcat_s", Library: "ISO/IEC TR 24731 / SafeCRT", Signature: "errno_t strcat_s(char *dst, rsize_t dst_size, const char *src);"},
		},
	},
	{
		Unsafe:      "memcpy",
		UnsafeProto: "void *memcpy(void *dst, const void *src, size_t num);",
		Alternatives: []Alternative{
			{Name: "memcpy_s", Library: "ISO/IEC TR 24731", Signature: "errno_t memcpy_s(void *dst, size_t dst_size, const void *src, size_t num);"},
		},
	},
	{
		Unsafe:      "gets",
		UnsafeProto: "char *gets(char *dst);",
		Alternatives: []Alternative{
			{Name: "gets_s", Library: "ISO/IEC TR 24731 / SafeCRT", Signature: "char *gets_s(char *destination, size_t dest_size);"},
			{Name: "fgets", Library: "C99", Signature: "char *fgets(char *dst, int dst_size, FILE *stream);"},
			{Name: "afgets", Library: "libmib", Signature: "char *afgets(char **dst_address, FILE *stream);"},
		},
	},
	{
		Unsafe:      "getenv",
		UnsafeProto: "char *getenv(char *dst);",
		Alternatives: []Alternative{
			{Name: "getenv_s", Library: "ISO/IEC TR 24731", Signature: "errno_t getenv_s(size_t *return_value, char *dst, size_t dst_size, const char *name);"},
		},
	},
	{
		Unsafe:      "sprintf",
		UnsafeProto: "char *sprintf(char *str, const char *format, ...);",
		Alternatives: []Alternative{
			{Name: "g_snprintf", Library: "glib", Signature: "gint g_snprintf(gchar *string, gulong n, gchar const *format, ...);"},
			{Name: "asprintf", Library: "libmib", Signature: "int asprintf(char **ppsz, const char *format, ...);"},
			{Name: "sprintf_s", Library: "ISO/IEC TR 24731 / SafeCRT", Signature: "int sprintf_s(char *str, rsize_t str_size, const char *format, ...);"},
		},
	},
	{
		Unsafe:      "snprintf",
		UnsafeProto: "int snprintf(char *str, size_t size, const char *format, ...);",
		Alternatives: []Alternative{
			{Name: "g_snprintf", Library: "glib", Signature: "gint g_snprintf(gchar *string, gulong n, gchar const *format, ...);"},
		},
	},
}

// UnsafeFunctions returns the names of the unsafe functions SLR replaces,
// in a stable order. The set is dialect-independent; every backend
// replaces the same six functions.
func UnsafeFunctions() []string {
	return backend.Default().UnsafeFunctions()
}

// IsUnsafe reports whether SLR targets the named function.
func IsUnsafe(name string) bool {
	_, ok := backend.Default().Lookup(name)
	return ok
}

// SafeNameFor returns the default (glib) dialect's replacement name for
// an unsafe function ("" when not targeted). Per-site replacement names
// under a non-default backend are on SiteResult.SafeName.
func SafeNameFor(name string) string {
	r, ok := backend.Default().Lookup(name)
	if !ok {
		return ""
	}
	return r.Safe
}
