package core

import (
	"context"

	"repro/internal/analysis"
	"repro/internal/overflow"
)

// FileInput names one preprocessed C translation unit for batch
// processing.
type FileInput struct {
	// Filename is used in diagnostics and carried through to the output.
	Filename string
	// Source is the unit's text.
	Source string
}

// FileOutput pairs one batch input with its fix outcome. Exactly one of
// Report and Err is set. A panic inside the file's unit of work arrives
// here as a *fault.PanicError carrying the stack; a cancelled or timed
// out file carries the context error. Either way the rest of the batch
// is unaffected.
type FileOutput struct {
	Filename string
	Report   *Report
	Err      error
}

// FileFindings pairs one batch input with its lint outcome.
type FileFindings struct {
	Filename string
	Findings []overflow.Finding
	// Degraded lists the analyses that had to degrade to conservative
	// results for this file (budget exhaustion); empty for a
	// full-fidelity run. It rides alongside the findings so batch
	// consumers (cfix -lint -json, cfixd /v1/batch) can stream the
	// qualification with the verdicts.
	Degraded []string
	// Cached reports that this file's result came from the result cache
	// (Options.Cache).
	Cached bool
	Err    error
}

// FixAll applies Fix to every input through a bounded worker pool — the
// parse-once, analyze-once, fix-many pipeline. Each file is processed
// independently (its own snapshot and its own fault boundary), so
// per-file results are identical to sequential Fix calls and one file's
// crash or timeout cannot take down its batch-mates. ctx cancels the
// whole batch: files not yet started fail fast with the context error.
// workers <= 0 means one worker per CPU. Results come back in input
// order regardless of completion order.
func FixAll(ctx context.Context, files []FileInput, opts Options, workers int) []FileOutput {
	return analysis.MapCtx(ctx, workers, files, func(ctx context.Context, _ int, in FileInput) FileOutput {
		rep, err := Fix(ctx, in.Filename, in.Source, opts)
		return FileOutput{Filename: in.Filename, Report: rep, Err: err}
	})
}

// AnalyzeAll runs the static overflow oracle over every input through the
// same bounded worker pool and fault boundary. workers <= 0 means one
// worker per CPU. Results come back in input order.
func AnalyzeAll(ctx context.Context, files []FileInput, opts Options, workers int) []FileFindings {
	return analysis.MapCtx(ctx, workers, files, func(ctx context.Context, _ int, in FileInput) FileFindings {
		rep, err := AnalyzeReport(ctx, in.Filename, in.Source, opts)
		if err != nil {
			return FileFindings{Filename: in.Filename, Err: err}
		}
		return FileFindings{Filename: in.Filename, Findings: rep.Findings,
			Degraded: rep.Degraded, Cached: rep.Cached}
	})
}
