// JSON-RPC 2.0 framing and the minimal slice of the Language Server
// Protocol cfixlsp speaks. Zero dependencies: the framing is
// Content-Length header + JSON body over any io.Reader/Writer, and the
// types below are hand-rolled structs covering exactly the requests the
// server implements.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// rpcMessage is one incoming JSON-RPC request or notification. ID is
// kept raw: it must be echoed byte-for-byte (number or string) and a
// missing ID marks a notification.
type rpcMessage struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id,omitempty"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params,omitempty"`
}

// IsNotification reports a message without an id.
func (m *rpcMessage) IsNotification() bool { return len(m.ID) == 0 || string(m.ID) == "null" }

// rpcError is the JSON-RPC error object.
type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// JSON-RPC error codes the server uses.
const (
	codeParseError     = -32700
	codeMethodNotFound = -32601
	codeInvalidParams  = -32602
	codeInternalError  = -32603
)

// readMessage reads one Content-Length framed JSON-RPC body.
func readMessage(r *bufio.Reader) ([]byte, error) {
	length := -1
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("malformed header line %q", line)
		}
		if strings.EqualFold(strings.TrimSpace(name), "Content-Length") {
			n, err := strconv.Atoi(strings.TrimSpace(value))
			if err != nil || n < 0 {
				return nil, fmt.Errorf("bad Content-Length %q", strings.TrimSpace(value))
			}
			length = n
		}
	}
	if length < 0 {
		return nil, fmt.Errorf("missing Content-Length header")
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// writer serializes framed writes: responses from the dispatch loop and
// publishDiagnostics notifications must never interleave.
type writer struct {
	mu  sync.Mutex
	out io.Writer
}

// write frames and sends one JSON value.
func (w *writer) write(v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := fmt.Fprintf(w.out, "Content-Length: %d\r\n\r\n", len(body)); err != nil {
		return err
	}
	_, err = w.out.Write(body)
	return err
}

// respond answers a request.
func (w *writer) respond(id json.RawMessage, result any) error {
	return w.write(struct {
		JSONRPC string          `json:"jsonrpc"`
		ID      json.RawMessage `json:"id"`
		Result  any             `json:"result"`
	}{"2.0", id, result})
}

// respondError answers a request with an error.
func (w *writer) respondError(id json.RawMessage, code int, msg string) error {
	if len(id) == 0 {
		id = json.RawMessage("null")
	}
	return w.write(struct {
		JSONRPC string          `json:"jsonrpc"`
		ID      json.RawMessage `json:"id"`
		Error   rpcError        `json:"error"`
	}{"2.0", id, rpcError{code, msg}})
}

// notify sends a server-initiated notification.
func (w *writer) notify(method string, params any) error {
	return w.write(struct {
		JSONRPC string `json:"jsonrpc"`
		Method  string `json:"method"`
		Params  any    `json:"params"`
	}{"2.0", method, params})
}

// ---- LSP structures (the consumed subset) ----

// lspPosition is a zero-based line/character position; characters count
// UTF-16 code units, per the protocol default.
type lspPosition struct {
	Line      int `json:"line"`
	Character int `json:"character"`
}

// lspRange is a half-open [start, end) range.
type lspRange struct {
	Start lspPosition `json:"start"`
	End   lspPosition `json:"end"`
}

type textDocumentItem struct {
	URI     string `json:"uri"`
	Version int    `json:"version"`
	Text    string `json:"text"`
}

type textDocumentIdentifier struct {
	URI string `json:"uri"`
}

type versionedTextDocumentIdentifier struct {
	URI     string `json:"uri"`
	Version int    `json:"version"`
}

type didOpenParams struct {
	TextDocument textDocumentItem `json:"textDocument"`
}

// contentChange is one change in a didChange notification: a ranged
// incremental change, or a full-text replacement when Range is absent.
type contentChange struct {
	Range *lspRange `json:"range,omitempty"`
	Text  string    `json:"text"`
}

type didChangeParams struct {
	TextDocument   versionedTextDocumentIdentifier `json:"textDocument"`
	ContentChanges []contentChange                 `json:"contentChanges"`
}

type didCloseParams struct {
	TextDocument textDocumentIdentifier `json:"textDocument"`
}

type didSaveParams struct {
	TextDocument textDocumentIdentifier `json:"textDocument"`
	Text         string                 `json:"text,omitempty"`
}

// diagnostic is the published shape; severity 1 = error, 2 = warning.
type diagnostic struct {
	Range    lspRange `json:"range"`
	Severity int      `json:"severity"`
	Code     string   `json:"code,omitempty"`
	Source   string   `json:"source"`
	Message  string   `json:"message"`
}

type publishDiagnosticsParams struct {
	URI         string       `json:"uri"`
	Version     int          `json:"version,omitempty"`
	Diagnostics []diagnostic `json:"diagnostics"`
}

type codeActionContext struct {
	Diagnostics []diagnostic `json:"diagnostics,omitempty"`
	Only        []string     `json:"only,omitempty"`
}

type codeActionParams struct {
	TextDocument textDocumentIdentifier `json:"textDocument"`
	Range        lspRange               `json:"range"`
	Context      codeActionContext      `json:"context"`
}

type textEdit struct {
	Range   lspRange `json:"range"`
	NewText string   `json:"newText"`
}

type workspaceEdit struct {
	Changes map[string][]textEdit `json:"changes"`
}

type codeAction struct {
	Title string        `json:"title"`
	Kind  string        `json:"kind"`
	Edit  workspaceEdit `json:"edit"`
}

// initializeResult advertises the server's capabilities: incremental
// sync (2) with didSave, plus quick-fix code actions.
type initializeResult struct {
	Capabilities struct {
		TextDocumentSync struct {
			OpenClose bool `json:"openClose"`
			Change    int  `json:"change"`
			Save      bool `json:"save"`
		} `json:"textDocumentSync"`
		CodeActionProvider bool `json:"codeActionProvider"`
	} `json:"capabilities"`
	ServerInfo struct {
		Name    string `json:"name"`
		Version string `json:"version"`
	} `json:"serverInfo"`
}
