package str

import (
	"strings"
	"testing"

	"repro/internal/cparse"
)

func TestForInitDeclRefused(t *testing.T) {
	res := runAll(t, `
void f(void) {
    for (char *p = "x"; p[0]; p++) {}
}
`)
	if len(res.Vars) != 1 || res.Vars[0].Applied {
		t.Fatalf("for-init declarations are refused: %+v", res.Vars)
	}
	if res.Vars[0].Reason != FailUnsupportedUse {
		t.Fatalf("reason: %v", res.Vars[0].Reason)
	}
}

func TestValueUseOfIncrementRefused(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    char *q;
    p = "abc";
    q = p++;
}
`)
	for _, v := range res.Vars {
		if v.Name == "p" && v.Applied {
			t.Fatal("p++ used as a value must refuse p")
		}
	}
}

func TestCompoundElementAssignRefused(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    p = "abc";
    p[0] += 1;
}
`)
	if res.Vars[0].Applied {
		t.Fatal("compound assignment to an element is outside the patterns")
	}
}

func TestAssignmentAsValueRefused(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    char *q;
    q = (p = "abc");
}
`)
	for _, v := range res.Vars {
		if v.Name == "p" && v.Applied {
			t.Fatal("assignment-as-value must refuse p")
		}
	}
}

func TestIntegerAssignmentRefused(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    p = 42;
}
`)
	if res.Vars[0].Applied {
		t.Fatal("assigning a non-zero integer to the pointer is refused")
	}
}

func TestTernaryValueRefused(t *testing.T) {
	res := runAll(t, `
void f(int c) {
    char *p;
    p = c ? malloc(4) : malloc(8);
}
`)
	if res.Vars[0].Applied {
		t.Fatal("conditional pointer values are outside the patterns")
	}
}

func TestStrncatMapped(t *testing.T) {
	res := runAll(t, `
void f(char *src) {
    char *buf;
    buf = malloc(64);
    strncat(buf, src, 5);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: %d (%+v)", res.AppliedCount(), res.Vars)
	}
	if !strings.Contains(res.NewSource, "stralloc_catbuf(buf, src, 5)") {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res)
}

func TestTargetAsSourceOfMappedCall(t *testing.T) {
	// The target appears in a source position of strcpy; the destination
	// is a plain parameter.
	res := runAll(t, `
void f(char *out) {
    char *name;
    name = "fixture";
    strcpy(out, name);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: %d (%+v)", res.AppliedCount(), res.Vars)
	}
	if !strings.Contains(res.NewSource, "strcpy(out, name->s)") {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res)
}

func TestSizeofInDeclarationInitializer(t *testing.T) {
	// A later declaration's initializer references the target: the
	// DeclStmt path must still rewrite it.
	res := runAll(t, `
void f(void) {
    char *p;
    p = "abcdef";
    unsigned long n = sizeof(p) + strlen(p);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: %d (%+v)", res.AppliedCount(), res.Vars)
	}
	out := res.NewSource
	if !strings.Contains(out, "p->a + p->len") {
		t.Fatalf("initializer not rewritten:\n%s", out)
	}
	reparse(t, res)
}

func TestReturnOfTarget(t *testing.T) {
	res := runAll(t, `
char *f(void) {
    char *p;
    p = malloc(8);
    return p;
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: %d (%+v)", res.AppliedCount(), res.Vars)
	}
	if !strings.Contains(res.NewSource, "return p->s;") {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res)
}

func TestWhileAndForConditionsRewritten(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    int i;
    p = "abc";
    while (p[0] != '\0') { break; }
    for (i = 0; i < strlen(p); i++) {}
}
`)
	out := res.NewSource
	if !strings.Contains(out, "while (stralloc_get_dereferenced_char_at(p, 0) != '\\0')") {
		t.Fatalf("while condition:\n%s", out)
	}
	if !strings.Contains(out, "i < p->len") {
		t.Fatalf("for condition:\n%s", out)
	}
	reparse(t, res)
}

func TestSwitchTagRewritten(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    p = "x";
    switch (p[0]) {
    case 'x':
        break;
    default:
        break;
    }
}
`)
	if !strings.Contains(res.NewSource, "switch (stralloc_get_dereferenced_char_at(p, 0))") {
		t.Fatalf("switch tag:\n%s", res.NewSource)
	}
	reparse(t, res)
}

func TestDoWhileAndPostClause(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    int i;
    p = "abcdef";
    do { i = 0; } while (p[i]);
    for (i = 0; i < 3; p++) { i++; }
}
`)
	out := res.NewSource
	if !strings.Contains(out, "while (stralloc_get_dereferenced_char_at(p, i))") {
		t.Fatalf("do-while cond:\n%s", out)
	}
	if !strings.Contains(out, "stralloc_increment_by(p, 1)") {
		t.Fatalf("for post clause:\n%s", out)
	}
	reparse(t, res)
}

func TestApplyVarUnknownName(t *testing.T) {
	tu, err := cparse.Parse("t.c", `void f(void){ char *p; p = "x"; }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewTransformer(tu).ApplyVar("f", "does_not_exist")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 0 || res.NewSource != tu.File.Src() {
		t.Fatal("unknown selection must be a no-op")
	}
}

func TestLogMessagesDetailRefusals(t *testing.T) {
	res := runAll(t, `
void writes(char *s) { s[0] = 'w'; }
void f(void) {
    char *a;
    a = malloc(4);
    writes(a);
}
`)
	if len(res.Log) != 1 {
		t.Fatalf("log entries: %d", len(res.Log))
	}
	if !strings.Contains(res.Log[0], "writes") || !strings.Contains(res.Log[0], `"a"`) {
		t.Fatalf("log: %s", res.Log[0])
	}
}

func TestCastNullStaysAssignment(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    p = (char*)0;
    p = (void*)0;
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: %d (%+v)", res.AppliedCount(), res.Vars)
	}
	out := res.NewSource
	if !strings.Contains(out, "p = (char*)0;") || !strings.Contains(out, "p = (void*)0;") {
		t.Fatalf("null casts must stay (pattern 4):\n%s", out)
	}
	reparse(t, res)
}

func TestBracelessAllocationBraced(t *testing.T) {
	res := runAll(t, `
void f(int c) {
    char *buf;
    if (c)
        buf = malloc(16);
    else
        buf = 0;
    buf[0] = 'x';
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: %d (%+v)", res.AppliedCount(), res.Vars)
	}
	out := res.NewSource
	if !strings.Contains(out, "{ buf->s = malloc(16); buf->f = buf->s; buf->a = 16; }") {
		t.Fatalf("allocation not braced:\n%s", out)
	}
	if !strings.Contains(out, "buf = 0;") {
		t.Fatalf("null arm must stay:\n%s", out)
	}
	reparse(t, res)
}

func TestForPostAllocationRefused(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *buf;
    int i;
    for (i = 0; i < 3; buf = malloc(4)) { i++; }
}
`)
	if res.Vars[0].Applied {
		t.Fatal("allocation in for-post clause must refuse the variable")
	}
}

func TestSpliceCompositeExpressions(t *testing.T) {
	// Targets nested inside ternaries, commas, casts and calls must all
	// splice correctly in value position.
	res := runAll(t, `
int g(int v) { return v; }
void f(int c) {
    char *p;
    int n;
    p = "abcdef";
    n = c ? p[0] : p[1];
    n = (g(c), p[2]);
    n = (int)strlen(p) + (c ? 1 : 0);
    n = g(p[3] + 1);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: %d (%+v)", res.AppliedCount(), res.Vars)
	}
	out := res.NewSource
	for _, want := range []string{
		"n = c ? stralloc_get_dereferenced_char_at(p, 0) : stralloc_get_dereferenced_char_at(p, 1);",
		"n = (g(c), stralloc_get_dereferenced_char_at(p, 2));",
		"n = (int)p->len + (c ? 1 : 0);",
		"n = g(stralloc_get_dereferenced_char_at(p, 3) + 1);",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	reparse(t, res)
}

func TestNegativeDerefOffset(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    char c;
    p = "abcdef";
    stub_advance: ;
    c = *(p - 2);
    *(p - 1) = 'z';
}
`)
	out := res.NewSource
	if !strings.Contains(out, "stralloc_get_dereferenced_char_at(p, -(2))") {
		t.Fatalf("negative deref read:\n%s", out)
	}
	if !strings.Contains(out, "stralloc_dereference_replace_by(p, -(1), 'z')") {
		t.Fatalf("negative deref write:\n%s", out)
	}
	reparse(t, res)
}
