package cpp

import (
	"strings"
	"testing"
)

// run preprocesses source with the given virtual headers and returns
// the result, failing the test on hard errors.
func run(t *testing.T, source string, headers map[string]string, opts Options) *Result {
	t.Helper()
	if headers != nil {
		opts.Open = func(path string) (string, bool) {
			s, ok := headers[path]
			return s, ok
		}
	}
	res, err := Preprocess("main.c", source, opts)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	return res
}

// TestTorture pins the preprocessor against expected output for the
// classic hard cases: rescanning, stringize/paste, self-reference
// blocking, conditional nesting, and include cycles.
func TestTorture(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		headers map[string]string
		want    string // exact expected output
		errs    int    // expected diagnostic count (-1: any)
	}{
		{
			name: "identity/no directives",
			src:  "int main(void) {\n  char buf[10];\n  return 0;\n}\n",
			want: "int main(void) {\n  char buf[10];\n  return 0;\n}\n",
		},
		{
			name: "object macro",
			src:  "#define N 10\nchar buf[N];\n",
			want: "char buf[10];\n",
		},
		{
			name: "object macro rescanned",
			src:  "#define A B\n#define B C\n#define C 42\nint x = A;\n",
			want: "int x = 42;\n",
		},
		{
			name: "function macro",
			src:  "#define SQ(x) ((x)*(x))\nint y = SQ(3);\n",
			want: "int y = ((3)*(3));\n",
		},
		{
			name: "function macro args expand",
			src:  "#define N 8\n#define SQ(x) ((x)*(x))\nint y = SQ(N);\n",
			want: "int y = ((8)*(8));\n",
		},
		{
			name: "rescanning of expansion result",
			src:  "#define PLUS(a,b) ADD(a,b)\n#define ADD(a,b) ((a)+(b))\nint z = PLUS(1,2);\n",
			want: "int z = ((1)+(2));\n",
		},
		{
			name: "function macro without parens is not invoked",
			src:  "#define F(x) x\nint (*F)(int);\n",
			want: "int (*F)(int);\n",
		},
		{
			name: "invocation across newline",
			src:  "#define SQ(x) ((x)*(x))\nint y = SQ\n(4);\n",
			want: "int y = ((4)*(4));\n",
		},
		{
			name: "stringize",
			src:  "#define STR(x) #x\nconst char *s = STR(hello world);\n",
			want: "const char *s = \"hello world\";\n",
		},
		{
			name: "stringize preserves string escapes",
			src:  "#define STR(x) #x\nconst char *s = STR(\"a\\n\");\n",
			want: "const char *s = \"\\\"a\\\\n\\\"\";\n",
		},
		{
			name: "paste",
			src:  "#define GLUE(a,b) a##b\nint GLUE(foo,bar) = 1;\n",
			want: "int foobar = 1;\n",
		},
		{
			name: "paste then rescan",
			src:  "#define XY 99\n#define GLUE(a,b) a##b\nint v = GLUE(X,Y);\n",
			want: "int v = 99;\n",
		},
		{
			name: "paste numbers",
			src:  "#define CAT(a,b) a##b\nint n = CAT(1,2);\n",
			want: "int n = 12;\n",
		},
		{
			name: "stringize of macro arg is not pre-expanded",
			src:  "#define N 10\n#define STR(x) #x\nconst char *s = STR(N);\n",
			want: "const char *s = \"N\";\n",
		},
		{
			name: "recursive self-reference blocked",
			src:  "#define FOO FOO\nint FOO = 1;\n",
			want: "int FOO = 1;\n",
		},
		{
			name: "mutual recursion blocked",
			src:  "#define A B\n#define B A\nint A;\n",
			want: "int A;\n",
		},
		{
			name: "function-like self-reference blocked",
			src:  "#define F(x) F(x + 1)\nint y = F(0);\n",
			want: "int y = F(0 + 1);\n",
		},
		{
			name: "conditional taken",
			src:  "#define ON 1\n#if ON\nint a;\n#else\nint b;\n#endif\n",
			want: "int a;\n",
		},
		{
			name: "conditional not taken",
			src:  "#if 0\nint a;\n#else\nint b;\n#endif\n",
			want: "int b;\n",
		},
		{
			name: "elif chain",
			src:  "#define V 2\n#if V == 1\nint a;\n#elif V == 2\nint b;\n#elif V == 3\nint c;\n#else\nint d;\n#endif\n",
			want: "int b;\n",
		},
		{
			name: "nested conditionals",
			src: "#define A 1\n#define B 0\n#if A\n#if B\nint ab;\n#else\nint anb;\n#endif\n#else\n#if B\nint nab;\n#endif\nint nb;\n#endif\n",
			want: "int anb;\n",
		},
		{
			name: "inactive branch directives do not define",
			src:  "#if 0\n#define X 5\n#endif\n#ifdef X\nint bad;\n#else\nint good;\n#endif\n",
			want: "int good;\n",
		},
		{
			name: "ifdef and undef",
			src:  "#define X\n#ifdef X\nint a;\n#endif\n#undef X\n#ifdef X\nint b;\n#endif\n",
			want: "int a;\n",
		},
		{
			name: "ifndef",
			src:  "#ifndef X\nint a;\n#endif\n",
			want: "int a;\n",
		},
		{
			name: "defined operator both spellings",
			src:  "#define X\n#if defined X && defined(X)\nint a;\n#endif\n",
			want: "int a;\n",
		},
		{
			name: "if arithmetic",
			src:  "#if (1 + 2*3 == 7) && (10 % 3 == 1) && (1 << 4) == 16 && -1 < 0\nint a;\n#endif\n",
			want: "int a;\n",
		},
		{
			name: "if ternary and unknown identifiers are zero",
			src:  "#if UNKNOWN ? 0 : 1\nint a;\n#endif\n",
			want: "int a;\n",
		},
		{
			name: "if char constant",
			src:  "#if 'A' == 65\nint a;\n#endif\n",
			want: "int a;\n",
		},
		{
			name: "line continuation in define",
			src:  "#define LONG \\\n  42\nint x = LONG;\n",
			want: "int x = 42;\n",
		},
		{
			name: "line continuation in code",
			src:  "int foo\\\nbar = 1;\n",
			want: "int foobar = 1;\n",
		},
		{
			name: "line continuation between tokens",
			src:  "int a \\\n= 1;\n",
			want: "int a = 1;\n",
		},
		{
			name: "include searched in dir",
			src:  "#include \"h.h\"\nint y = M;\n",
			headers: map[string]string{
				"h.h": "#define M 5\n",
			},
			want: "int y = 5;\n",
		},
		{
			name: "include emits header text",
			src:  "#include \"decl.h\"\nint main(void) { return f(); }\n",
			headers: map[string]string{
				"decl.h": "int f(void);\n",
			},
			want: "int f(void);\nint main(void) { return f(); }\n",
		},
		{
			name: "include cycle broken by guard",
			src:  "#include \"a.h\"\nint m;\n",
			headers: map[string]string{
				"a.h": "#ifndef A_H\n#define A_H\n#include \"b.h\"\nint a;\n#endif\n",
				"b.h": "#ifndef B_H\n#define B_H\n#include \"a.h\"\nint b;\n#endif\n",
			},
			want: "int b;\nint a;\nint m;\n",
		},
		{
			name: "include cycle broken by pragma once",
			src:  "#include \"a.h\"\nint m;\n",
			headers: map[string]string{
				"a.h": "#pragma once\n#include \"b.h\"\nint a;\n",
				"b.h": "#pragma once\n#include \"a.h\"\nint b;\n",
			},
			want: "int b;\nint a;\nint m;\n",
		},
		{
			name: "double include with guard collapses",
			src:  "#include \"g.h\"\n#include \"g.h\"\nint m;\n",
			headers: map[string]string{
				"g.h": "#ifndef G_H\n#define G_H\nint g;\n#endif\n",
			},
			want: "int g;\nint m;\n",
		},
		{
			name: "unguarded include cycle hits depth limit",
			src:  "#include \"loop.h\"\n",
			headers: map[string]string{
				"loop.h": "#include \"loop.h\"\nint l;\n",
			},
			errs: -1,
		},
		{
			name: "missing include passes through",
			src:  "#include <stdio.h>\nint main(void) { return 0; }\n",
			want: "#include <stdio.h>\nint main(void) { return 0; }\n",
		},
		{
			name: "variadic macro",
			src:  "#define CALL(f, ...) f(__VA_ARGS__)\nint x = CALL(add, 1, 2);\n",
			want: "int x = add(1, 2);\n",
		},
		{
			name: "empty macro leaves no token merge",
			src:  "#define E\nint a = 1 E + 2;\n",
			want: "int a = 1  + 2;\n",
		},
		{
			name: "error directive reports",
			src:  "#if 1\n#error boom\n#endif\nint a;\n",
			want: "int a;\n",
			errs: 1,
		},
		{
			name: "error in dead branch is silent",
			src:  "#if 0\n#error boom\n#endif\nint a;\n",
			want: "int a;\n",
		},
		{
			name: "comments pass through",
			src:  "/* keep */\nint a; // tail\n",
			want: "/* keep */\nint a; // tail\n",
		},
		{
			name: "macro inside comment not expanded",
			src:  "#define N 10\n/* N stays */\nint a = N; // N too\n",
			want: "/* N stays */\nint a = 10; // N too\n",
		},
		{
			name: "macro inside string not expanded",
			src:  "#define N 10\nconst char *s = \"N\";\n",
			want: "const char *s = \"N\";\n",
		},
		{
			name: "predefine via options",
			src:  "int v = WIDTH;\n",
			want: "int v = 640;\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := Options{}
			if tc.name == "predefine via options" {
				opts.Defines = map[string]string{"WIDTH": "640"}
			}
			res := run(t, tc.src, tc.headers, opts)
			switch tc.errs {
			case -1:
				if len(res.Errors) == 0 {
					t.Fatalf("expected diagnostics, got none\noutput: %q", res.Text)
				}
			default:
				if len(res.Errors) != tc.errs {
					t.Fatalf("diagnostics = %v, want %d", res.Errors, tc.errs)
				}
			}
			if tc.want != "" || tc.errs == 0 {
				if res.Text != tc.want {
					t.Fatalf("output mismatch\n got: %q\nwant: %q", res.Text, tc.want)
				}
			}
		})
	}
}

// TestIdentityMap checks the core invariant behind the SAMATE
// differential: directive-free, macro-free input preprocesses to
// itself under one Direct segment covering the whole output.
func TestIdentityMap(t *testing.T) {
	src := "int main(void) {\n  char buf[16];\n  strcpy(buf, input); /* overflow */\n  return 0;\n}\n"
	res := run(t, src, nil, Options{})
	if res.Text != src {
		t.Fatalf("identity violated:\n got: %q\nwant: %q", res.Text, src)
	}
	segs := res.Map.Segments()
	if len(segs) != 1 {
		t.Fatalf("want a single Direct segment, got %d: %+v", len(segs), segs)
	}
	s := segs[0]
	if s.Kind != SegDirect || s.OutPos != 0 || s.OutEnd != len(src) || s.OrigPos != 0 || s.OrigEnd != len(src) {
		t.Fatalf("bad identity segment: %+v", s)
	}
}

// TestIncludesAndMissing checks bookkeeping of resolved and unresolved
// includes.
func TestIncludesAndMissing(t *testing.T) {
	res := run(t, "#include \"a.h\"\n#include <nope.h>\n#include \"a.h\"\n", map[string]string{
		"a.h": "#pragma once\nint a;\n",
	}, Options{})
	if len(res.Includes) != 1 || res.Includes[0] != "a.h" {
		t.Fatalf("Includes = %v", res.Includes)
	}
	if len(res.Missing) != 1 || res.Missing[0] != "nope.h" {
		t.Fatalf("Missing = %v", res.Missing)
	}
}

// TestIncludeDirSearch exercises the include-path order: quoted
// includes try the including file's directory before -I dirs.
func TestIncludeDirSearch(t *testing.T) {
	headers := map[string]string{
		"sys/dep.h": "int fromsys;\n",
		"dir/x.h":   "int fromdir;\n",
	}
	opts := Options{IncludeDirs: []string{"sys"}}
	opts.Open = func(p string) (string, bool) { s, ok := headers[p]; return s, ok }
	res, err := Preprocess("main.c", "#include <dep.h>\n#include \"dir/x.h\"\n", opts)
	if err != nil {
		t.Fatal(err)
	}
	want := "int fromsys;\nint fromdir;\n"
	if res.Text != want {
		t.Fatalf("got %q want %q", res.Text, want)
	}
}

// TestExpansionBudget ensures pathological macro chains terminate.
func TestExpansionBudget(t *testing.T) {
	var b strings.Builder
	b.WriteString("#define M0 x\n")
	for i := 1; i < 40; i++ {
		// Mi expands to two Mi-1: 2^40 tokens if unbounded.
		b.WriteString("#define M")
		b.WriteString(itoa(i))
		b.WriteString(" M")
		b.WriteString(itoa(i - 1))
		b.WriteString(" M")
		b.WriteString(itoa(i - 1))
		b.WriteString("\n")
	}
	b.WriteString("int v = M39;\n")
	res := run(t, b.String(), nil, Options{MaxExpansions: 1000})
	if len(res.Errors) == 0 {
		t.Fatal("expected a budget diagnostic")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var d []byte
	for i > 0 {
		d = append([]byte{byte('0' + i%10)}, d...)
		i /= 10
	}
	return string(d)
}

// TestBuiltinLineFile pins __LINE__ and __FILE__.
func TestBuiltinLineFile(t *testing.T) {
	res := run(t, "int l = __LINE__;\nconst char *f = __FILE__;\n", nil, Options{})
	want := "int l = 1;\nconst char *f = \"main.c\";\n"
	if res.Text != want {
		t.Fatalf("got %q want %q", res.Text, want)
	}
}

// TestRedefinition: identical redefinition is quiet, conflicting is
// diagnosed (and the newest wins).
func TestRedefinition(t *testing.T) {
	res := run(t, "#define N 10\n#define N 10\nint a[N];\n", nil, Options{})
	if len(res.Errors) != 0 {
		t.Fatalf("benign redefinition diagnosed: %v", res.Errors)
	}
	res = run(t, "#define N 10\n#define N 20\nint a[N];\n", nil, Options{})
	if len(res.Errors) != 1 {
		t.Fatalf("conflicting redefinition not diagnosed: %v", res.Errors)
	}
	if res.Text != "int a[20];\n" {
		t.Fatalf("got %q", res.Text)
	}
}
