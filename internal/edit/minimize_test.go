package edit

import (
	"reflect"
	"testing"

	"repro/internal/ctoken"
)

func TestMinimizeTrimsCommonAffixes(t *testing.T) {
	src := "char buf[16];"
	// Replace the whole declaration, changing only the size digits.
	got := Minimize(src, []Delta{Replace(ctoken.Extent{Pos: 0, End: 13}, "char buf[32];")})
	want := []Delta{Replace(ctoken.Extent{Pos: 9, End: 11}, "32")}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Minimize = %v, want %v", got, want)
	}
}

func TestMinimizeDropsNoOps(t *testing.T) {
	src := "abc"
	got := Minimize(src, []Delta{
		Replace(ctoken.Extent{Pos: 0, End: 3}, "abc"), // identity replace
		Insert(1, ""),                                 // empty insert
		Delete(ctoken.Extent{Pos: 2, End: 2}),         // empty delete
	})
	if len(got) != 0 {
		t.Fatalf("no-op deltas survived: %v", got)
	}
}

func TestMinimizePreservesApplyResult(t *testing.T) {
	src := "void f(void) { char b[8]; strcpy(b, \"x\"); }"
	cases := [][]Delta{
		{Replace(ctoken.Extent{Pos: 0, End: ctoken.Pos(len(src))}, src)},
		{Replace(ctoken.Extent{Pos: 0, End: ctoken.Pos(len(src))}, src[:20] + "X" + src[21:])},
		{Replace(ctoken.Extent{Pos: 5, End: 30}, src[5:30] + "/*tail*/")},
		{Insert(3, "yy"), Delete(ctoken.Extent{Pos: 10, End: 12})},
		{Replace(ctoken.Extent{Pos: 4, End: 10}, "aaaa")},
	}
	for _, deltas := range cases {
		want, err := NewScript(deltas...).Apply(src)
		if err != nil {
			t.Fatalf("reference apply: %v", err)
		}
		got, err := NewScript(Minimize(src, deltas)...).Apply(src)
		if err != nil {
			t.Fatalf("minimized apply: %v", err)
		}
		if got != want {
			t.Fatalf("Minimize changed Apply result:\nraw: %q\nmin: %q", want, got)
		}
	}
}

func TestMinimizeShrinksTouchedSpan(t *testing.T) {
	// A whole-file resend with a one-byte change must leave extents
	// outside the changed byte exactly remappable.
	src := "aaaa bbbb cccc"
	edited := "aaaa bXbb cccc"
	min := Minimize(src, []Delta{Replace(ctoken.Extent{Pos: 0, End: ctoken.Pos(len(src))}, edited)})
	if len(min) != 1 || min[0].Extent.Len() != 1 || min[0].Extent.Pos != 6 {
		t.Fatalf("resend not minimized to the changed byte: %v", min)
	}
	m := NewMapper(NewScript(min...))
	if ne, exact := m.MapExtent(ctoken.Extent{Pos: 10, End: 14}); !exact || ne.Pos != 10 {
		t.Fatalf("extent outside the change must remap exactly: %v exact=%v", ne, exact)
	}
}

func TestMinimizePassesThroughOutOfBounds(t *testing.T) {
	src := "abc"
	d := []Delta{Replace(ctoken.Extent{Pos: 1, End: 99}, "zzz")}
	got := Minimize(src, d)
	if !reflect.DeepEqual(got, d) {
		t.Fatalf("out-of-bounds delta rewritten: %v", got)
	}
	if err := NewScript(got...).Validate(len(src)); err == nil {
		t.Fatal("Validate must still reject the passed-through delta")
	}
}

func TestMinimizeDeleteOverlapCase(t *testing.T) {
	// Deleting one of two identical runs: trimming must keep a
	// well-formed single delta whose application matches.
	src := "xxxxyyyy"
	d := []Delta{Replace(ctoken.Extent{Pos: 0, End: 8}, "xxyy")}
	min := Minimize(src, d)
	got, err := NewScript(min...).Apply(src)
	if err != nil {
		t.Fatal(err)
	}
	if got != "xxyy" {
		t.Fatalf("minimized apply = %q", got)
	}
}
