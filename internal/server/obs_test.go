package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/pkg/cfix"
)

// stageCounts extracts the per-stage span counts from a snapshot.
func stageCounts(s Snapshot) map[string]int64 {
	out := make(map[string]int64, len(s.Stages))
	for name, st := range s.Stages {
		out[name] = st.Count
	}
	return out
}

// checkMonotonic reports an error if any counter in before exceeds its
// value in after — the monotonicity contract /metrics promises
// scrapers. It is goroutine-safe (no testing.T) so drain-time checkers
// can use it off the test goroutine.
func checkMonotonic(before, after Snapshot) error {
	if after.Requests.Fix < before.Requests.Fix ||
		after.Requests.Lint < before.Requests.Lint ||
		after.Requests.Batch < before.Requests.Batch ||
		after.PanicsRecovered < before.PanicsRecovered ||
		after.ServerErrors < before.ServerErrors ||
		after.DegradedResponses < before.DegradedResponses {
		return fmt.Errorf("request counters went backwards:\nbefore %+v\nafter  %+v", before, after)
	}
	bc, ac := stageCounts(before), stageCounts(after)
	for name, n := range bc {
		if ac[name] < n {
			return fmt.Errorf("stage %q count went backwards: %d -> %d", name, n, ac[name])
		}
	}
	return nil
}

func assertMonotonic(t *testing.T, before, after Snapshot) {
	t.Helper()
	if err := checkMonotonic(before, after); err != nil {
		t.Fatal(err)
	}
}

// TestStageHistogramsInMetrics: served requests populate one latency
// histogram per pipeline stage in /metrics, scraped over HTTP, and the
// counts only ever grow.
func TestStageHistogramsInMetrics(t *testing.T) {
	if !cfix.TracingEnabled() {
		t.Skip("tracing compiled out (cfix_notrace)")
	}
	_, ts, _ := newTestServer(t, Config{})

	var m0 Snapshot
	if status := getJSON(t, ts.URL+"/metrics", &m0); status != http.StatusOK {
		t.Fatalf("metrics before traffic: %d", status)
	}
	if len(m0.Stages) != 0 {
		t.Fatalf("stage histograms before any traffic: %+v", m0.Stages)
	}

	var fr cfix.FixResponse
	if status, raw := postJSON(t, ts.URL+"/v1/fix",
		cfix.FixRequest{Filename: "s.c", Source: overflowing}, &fr); status != http.StatusOK {
		t.Fatalf("fix: %d %s", status, raw)
	}
	var m1 Snapshot
	if status := getJSON(t, ts.URL+"/metrics", &m1); status != http.StatusOK {
		t.Fatalf("metrics after fix: %d", status)
	}
	for _, stage := range []string{"parse", "typecheck", "fix", "slr", "str"} {
		st, ok := m1.Stages[stage]
		if !ok || st.Count < 1 {
			t.Fatalf("stage %q missing from /metrics after a fix request: %+v", stage, m1.Stages)
		}
		var bucketSum int64
		for _, n := range st.Buckets {
			bucketSum += n
		}
		if bucketSum != st.Count {
			t.Fatalf("stage %q bucket sum %d != count %d", stage, bucketSum, st.Count)
		}
	}
	assertMonotonic(t, m0, m1)

	// A second request only grows the counters.
	if status, raw := postJSON(t, ts.URL+"/v1/fix",
		cfix.FixRequest{Filename: "s.c", Source: overflowing}, &fr); status != http.StatusOK {
		t.Fatalf("second fix: %d %s", status, raw)
	}
	var m2 Snapshot
	getJSON(t, ts.URL+"/metrics", &m2)
	assertMonotonic(t, m1, m2)
	if m2.Stages["parse"].Count <= m1.Stages["parse"].Count {
		t.Fatalf("parse stage count did not grow: %d -> %d",
			m1.Stages["parse"].Count, m2.Stages["parse"].Count)
	}
}

// TestStageMetricsDegradedCount: a budget-exhausted request marks its
// stage histogram entries as degraded.
func TestStageMetricsDegradedCount(t *testing.T) {
	if !cfix.TracingEnabled() {
		t.Skip("tracing compiled out (cfix_notrace)")
	}
	defer analysis.InjectFault("deg.c", analysis.Fault{Budget: 1})()
	s, ts, _ := newTestServer(t, Config{})

	var resp cfix.LintResponse
	if status, raw := postJSON(t, ts.URL+"/v1/lint",
		cfix.LintRequest{Filename: "deg.c", Source: overflowing}, &resp); status != http.StatusOK {
		t.Fatalf("degraded lint: %d %s", status, raw)
	}
	m := s.Metrics()
	var degraded int64
	for _, st := range m.Stages {
		degraded += st.Degraded
	}
	if degraded == 0 {
		t.Fatalf("no stage recorded as degraded after budget exhaustion: %+v", m.Stages)
	}
}

// TestMetricsDuringDrain: the metrics snapshot — the exact code path
// GET /metrics serves — stays monotonic and race-clean while the server
// drains an in-flight request after SIGTERM-style Shutdown. Direct
// snapshots run concurrently with the draining request's stage
// recording (the race detector covers the synchronization claim);
// opportunistic HTTP scrapes ride along but may be refused once
// Shutdown closes idle connections, which is not a failure.
func TestMetricsDuringDrain(t *testing.T) {
	defer analysis.InjectFault("drain.c", analysis.Fault{Delay: 300 * time.Millisecond})()
	s, ts, _ := newTestServer(t, Config{})

	scrape := func() (Snapshot, error) {
		var snap Snapshot
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			return snap, err
		}
		defer resp.Body.Close()
		return snap, json.NewDecoder(resp.Body).Decode(&snap)
	}
	pre, err := scrape()
	if err != nil {
		t.Fatalf("pre-drain scrape: %v", err)
	}

	fixDone := make(chan error, 1)
	go func() {
		b, _ := json.Marshal(cfix.FixRequest{Filename: "drain.c", Source: overflowing})
		resp, err := http.Post(ts.URL+"/v1/fix", "application/json", bytes.NewReader(b))
		if err != nil {
			fixDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			fixDone <- fmt.Errorf("fix during drain: %d %s", resp.StatusCode, body)
			return
		}
		fixDone <- nil
	}()
	waitFor(t, "request in flight", func() bool { return s.Metrics().InFlight == 1 })

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutDone := make(chan error, 1)
	go func() { shutDone <- ts.Config.Shutdown(shutCtx) }()

	last := pre
	var monoErr error
	var httpScrapes int
drainLoop:
	for {
		select {
		case err := <-shutDone:
			if err != nil {
				t.Fatalf("drain failed: %v", err)
			}
			break drainLoop
		default:
		}
		cur := s.Metrics()
		if err := checkMonotonic(last, cur); err != nil && monoErr == nil {
			monoErr = err
		}
		last = cur
		if snap, err := scrape(); err == nil {
			httpScrapes++
			if err := checkMonotonic(last, snap); err != nil && monoErr == nil {
				monoErr = err
			}
			last = snap
		}
		time.Sleep(2 * time.Millisecond)
	}
	if monoErr != nil {
		t.Fatalf("metrics during drain: %v", monoErr)
	}
	if err := <-fixDone; err != nil {
		t.Fatalf("in-flight request died during drain: %v", err)
	}
	final := s.Metrics()
	assertMonotonic(t, last, final)
	if final.Requests.Fix < 1 {
		t.Fatalf("drained request never counted: %+v", final)
	}
	_ = httpScrapes // success count is environment-dependent; monotonicity is the contract
}

// TestMetricsDuringPanic500: a request whose pipeline panics still
// contributes its stage spans (closed on the unwind path) to /metrics,
// and scraping around the panic stays monotonic.
func TestMetricsDuringPanic500(t *testing.T) {
	defer analysis.InjectFault("boom.c", analysis.Fault{Panic: true})()
	s, ts, _ := newTestServer(t, Config{})

	pre := s.Metrics()
	status, raw := postJSON(t, ts.URL+"/v1/fix",
		cfix.FixRequest{Filename: "boom.c", Source: clean}, nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking request: %d %s, want 500", status, raw)
	}
	var post Snapshot
	if status := getJSON(t, ts.URL+"/metrics", &post); status != http.StatusOK {
		t.Fatalf("metrics after panic: %d", status)
	}
	assertMonotonic(t, pre, post)
	if post.PanicsRecovered != 1 {
		t.Fatalf("panics_recovered = %d, want 1", post.PanicsRecovered)
	}
	if cfix.TracingEnabled() {
		// The fault fires inside parse, after its span opened: the defer
		// must have closed it so the histogram still sees the stage.
		if post.Stages["parse"].Count < 1 {
			t.Fatalf("parse span lost on the panic path: %+v", post.Stages)
		}
	}
	var reqTotal int64
	for _, n := range post.LatencyBuckets {
		reqTotal += n
	}
	if reqTotal < 1 {
		t.Fatalf("panicked request missing from latency histogram: %+v", post.LatencyBuckets)
	}
}

// TestSlowRequestLog: requests above SlowThreshold produce a log line
// with the per-stage breakdown; requests below it stay quiet.
func TestSlowRequestLog(t *testing.T) {
	defer analysis.InjectFault("slow.c", analysis.Fault{Delay: 60 * time.Millisecond})()
	_, ts, logbuf := newTestServer(t, Config{SlowThreshold: 25 * time.Millisecond})

	if status, raw := postJSON(t, ts.URL+"/v1/fix",
		cfix.FixRequest{Filename: "slow.c", Source: overflowing}, nil); status != http.StatusOK {
		t.Fatalf("slow fix: %d %s", status, raw)
	}
	logged := logbuf.String()
	if !strings.Contains(logged, "slow request /v1/fix slow.c") {
		t.Fatalf("missing slow-request log: %q", logged)
	}
	if cfix.TracingEnabled() && !strings.Contains(logged, "parse") {
		t.Fatalf("slow-request log missing stage breakdown: %q", logged)
	}
}
