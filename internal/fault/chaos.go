package fault

// This file extends the fault-containment toolkit upward, from the
// solver layer to the service layer: ChaosProxy is a fault-injecting
// HTTP proxy that sits between the fleet router and one cfixd backend
// and misbehaves on command — added latency, connection drops, bare
// 500s, truncated response bodies, and whole-backend kills — keyed by
// request count so a test script is deterministic. The chaos test
// suites (internal/fleet, CI's fleet smoke) drive it to prove that the
// routing tier's retries, hedging, circuit breaking and health ejection
// turn every injected fault into a served request, never a failed one.
//
// The proxy speaks plain HTTP/1.1 and forwards bodies verbatim; it
// never inspects payloads, so it stays below pkg/cfix and imports
// nothing from the analysis stack.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosAction names one injected fault.
type ChaosAction int

const (
	// ChaosNone forwards the request untouched.
	ChaosNone ChaosAction = iota
	// ChaosLatency sleeps Rule.Latency before forwarding — a tail-latency
	// spike the router should hedge around.
	ChaosLatency
	// ChaosDrop closes the client connection without writing a response —
	// the client sees a connection reset / unexpected EOF.
	ChaosDrop
	// ChaosError answers 500 without forwarding — an upstream crash the
	// router should retry on another replica.
	ChaosError
	// ChaosTruncate forwards the request but writes only half the
	// response body under the full Content-Length, then severs the
	// connection — a torn response the client must treat as a failure,
	// never as a short result.
	ChaosTruncate
	// ChaosKill closes the proxy's listener: this and every subsequent
	// connection is refused, exactly like a crashed backend process. The
	// router's health prober must eject the backend.
	ChaosKill
)

// String names the action for logs and test output.
func (a ChaosAction) String() string {
	switch a {
	case ChaosNone:
		return "none"
	case ChaosLatency:
		return "latency"
	case ChaosDrop:
		return "drop"
	case ChaosError:
		return "error"
	case ChaosTruncate:
		return "truncate"
	case ChaosKill:
		return "kill"
	}
	return fmt.Sprintf("ChaosAction(%d)", int(a))
}

// ChaosRule applies Action to proxied requests numbered [From, To]
// (1-based, counted in arrival order; To == 0 means "From and ever
// after"). Health-endpoint probes (GET /healthz, /readyz) are counted
// and faulted only when Rule.IncludeProbes is set — chaos scripts
// usually target the serving path and let the prober see the truth.
type ChaosRule struct {
	From, To      int
	Action        ChaosAction
	Latency       time.Duration // ChaosLatency only
	IncludeProbes bool
}

// matches reports whether the rule covers request number n.
func (r ChaosRule) matches(n int, probe bool) bool {
	if probe && !r.IncludeProbes {
		return false
	}
	return n >= r.From && (r.To == 0 || n <= r.To)
}

// ChaosProxy fronts one HTTP backend and injects faults per its rules.
// Create with NewChaosProxy, then Start; Addr gives the listen address
// to hand to the router. All methods are safe for concurrent use; the
// rule set is immutable after Start.
type ChaosProxy struct {
	target string // backend base URL, e.g. http://127.0.0.1:9001
	rules  []ChaosRule

	ln     net.Listener
	srv    *http.Server
	client *http.Client

	reqs     atomic.Int64 // proxied serving requests (probe requests counted separately)
	probes   atomic.Int64
	injected atomic.Int64 // faults actually injected
	killed   atomic.Bool

	mu     sync.Mutex
	closed bool
}

// NewChaosProxy builds a proxy for the backend at target ("http://host:port")
// with a fault script. Rules are evaluated in order; the first match wins.
func NewChaosProxy(target string, rules ...ChaosRule) *ChaosProxy {
	return &ChaosProxy{
		target: strings.TrimRight(target, "/"),
		rules:  rules,
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     30 * time.Second,
		}},
	}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// serves until Close or a ChaosKill rule fires.
func (p *ChaosProxy) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("chaos proxy: %w", err)
	}
	p.ln = ln
	p.srv = &http.Server{Handler: http.HandlerFunc(p.serve)}
	go func() {
		// Serve returns when the listener closes (Close or ChaosKill);
		// either way the proxy is done, not broken.
		_ = p.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the proxy's listen address (valid after Start).
func (p *ChaosProxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's base URL (valid after Start).
func (p *ChaosProxy) URL() string { return "http://" + p.Addr() }

// Requests reports proxied serving requests (excluding health probes).
func (p *ChaosProxy) Requests() int64 { return p.reqs.Load() }

// Injected reports how many faults actually fired.
func (p *ChaosProxy) Injected() int64 { return p.injected.Load() }

// Killed reports whether a ChaosKill rule has taken the backend down.
func (p *ChaosProxy) Killed() bool { return p.killed.Load() }

// Kill force-fires the whole-backend kill: the listener closes and
// every open proxy connection is severed, exactly as if the backend
// process died. Idempotent.
func (p *ChaosProxy) Kill() {
	if p.killed.Swap(true) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	// Close (not Shutdown): a dying process does not drain.
	_ = p.srv.Close()
}

// Close stops the proxy without simulating a crash (test cleanup).
func (p *ChaosProxy) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	_ = p.srv.Close()
}

// isProbe classifies health-check traffic.
func isProbe(r *http.Request) bool {
	return r.Method == http.MethodGet && (r.URL.Path == "/healthz" || r.URL.Path == "/readyz")
}

// serve handles one proxied request: pick the first matching rule,
// inject its fault, and otherwise forward verbatim.
func (p *ChaosProxy) serve(w http.ResponseWriter, r *http.Request) {
	probe := isProbe(r)
	var n int
	if probe {
		n = int(p.probes.Add(1))
	} else {
		n = int(p.reqs.Add(1))
	}
	action := ChaosNone
	var latency time.Duration
	for _, rule := range p.rules {
		if rule.matches(n, probe) {
			action, latency = rule.Action, rule.Latency
			break
		}
	}

	switch action {
	case ChaosKill:
		p.injected.Add(1)
		p.Kill()
		// The listener is gone; sever this connection too so the client
		// never gets a response from a "dead" process.
		abortConn()
	case ChaosDrop:
		p.injected.Add(1)
		abortConn()
	case ChaosError:
		p.injected.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"chaos: injected upstream failure"}`)
		return
	case ChaosLatency:
		p.injected.Add(1)
		time.Sleep(latency)
	}

	status, header, body, err := p.forward(r)
	if err != nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, `{"error":"chaos proxy: forwarding: %s"}`+"\n", strings.ReplaceAll(err.Error(), `"`, `'`))
		return
	}

	if action == ChaosTruncate {
		p.injected.Add(1)
		// Advertise the full length, deliver half, sever: the client
		// must see an unexpected EOF, not a plausible short body.
		copyHeader(w.Header(), header)
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(status)
		if len(body) > 1 {
			_, _ = w.Write(body[:len(body)/2])
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
		abortConn()
	}

	copyHeader(w.Header(), header)
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// forward relays the request to the target backend.
func (p *ChaosProxy) forward(r *http.Request) (status int, header http.Header, body []byte, err error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, p.target+r.URL.RequestURI(), r.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, body, nil
}

// copyHeader copies response headers, skipping hop-by-hop fields.
func copyHeader(dst, src http.Header) {
	for k, vs := range src {
		switch http.CanonicalHeaderKey(k) {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Content-Length":
			continue
		}
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
}

// abortConn severs the client connection mid-request by panicking with
// net/http's sanctioned sentinel: the server closes the connection
// without completing (or starting) the response and suppresses the
// panic log. Anything already flushed stays on the wire, which is
// exactly what a torn response looks like.
func abortConn() {
	panic(http.ErrAbortHandler)
}
