package dataflow

import (
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/ctype"
	"repro/internal/fault"
)

// AliasOracle answers may-alias queries for the reaching-definitions
// transfer functions. internal/pointsto provides the implementation; the
// interface lives here so the dataflow layer does not depend on the
// points-to engine (mirroring the paper's layering, where the alias sets
// feed the reaching-definition analysis).
type AliasOracle interface {
	// IsAliased reports whether the symbol's storage may be reachable
	// through some other name (its alias set has more than one member).
	IsAliased(sym *cast.Symbol) bool
	// PointeesOf returns the symbols that a pointer symbol may point to.
	PointeesOf(sym *cast.Symbol) []*cast.Symbol
}

// NoAliases is an AliasOracle for contexts with no points-to information:
// it reports every pointer as potentially aliased, which is the
// conservative answer.
type NoAliases struct{}

var _ AliasOracle = NoAliases{}

// IsAliased always reports true.
func (NoAliases) IsAliased(*cast.Symbol) bool { return true }

// PointeesOf always returns nil.
func (NoAliases) PointeesOf(*cast.Symbol) []*cast.Symbol { return nil }

// Def is a single definition site of a symbol.
type Def struct {
	// ID is the dense index of the definition within the function.
	ID int
	// Node is the CFG node that performs the definition.
	Node *cfg.Node
	// Sym is the defined symbol.
	Sym *cast.Symbol
	// Member is the field name for struct-member definitions ("" for
	// whole-object definitions). Structs are aggregates in the alias
	// analysis (Section III-A), but reaching definitions distinguish
	// member writes so that Algorithm 1's lines 42-46 can detect a
	// whole-struct redefinition between a member's definition and its use.
	Member string
	// Kind records what syntactic form performed the definition.
	Kind DefKind
	// Value is the defining expression: the initializer for declarations,
	// the full assignment expression for assignments (so compound
	// assignments keep their operator), nil otherwise.
	Value cast.Expr
	// Weak marks potential (may) definitions: writes through aliases,
	// writes to single elements of aggregates, and writes via calls. Weak
	// definitions do not kill.
	Weak bool
}

// DefKind classifies definition sites.
type DefKind int

// Definition kinds.
const (
	DefInvalid    DefKind = iota
	DefDecl               // declaration without initializer
	DefInit               // declaration with initializer
	DefAssign             // assignment expression
	DefIncDec             // ++/-- (prefix or postfix)
	DefCallOut            // address passed to a call; callee may write
	DefAliasWrite         // write through a dereferenced pointer that may alias
)

// ReachingDefs holds the solved reaching-definitions facts for one
// function.
type ReachingDefs struct {
	Graph *cfg.Graph
	Defs  []*Def
	// in[nodeID] is the set of definition IDs reaching the node's entry.
	in []BitSet
	// defsBySym groups definition IDs by symbol ID for fast queries.
	defsBySym map[int][]int
	// Degraded marks a solve whose step budget was exhausted. The IN
	// sets were widened to the conservative top (every definition
	// reaches every node), which is sound for this may-analysis:
	// UniqueReaching then answers nil, so size reasoning bails rather
	// than trusting partial facts.
	Degraded bool
	// Steps counts the worklist iterations the solve consumed — the
	// effort figure the observability layer reports per stage span.
	Steps int
}

// ComputeReaching builds and solves reaching definitions for g using the
// given alias oracle.
func ComputeReaching(g *cfg.Graph, aliases AliasOracle) *ReachingDefs {
	return ComputeReachingLimits(g, aliases, fault.Limits{})
}

// ComputeReachingLimits is ComputeReaching under fault-containment
// limits (cancellation and a step budget; see ForwardLimits).
func ComputeReachingLimits(g *cfg.Graph, aliases AliasOracle, lim fault.Limits) *ReachingDefs {
	rd := &ReachingDefs{
		Graph:     g,
		defsBySym: make(map[int][]int),
	}
	gen := make([][]*Def, len(g.Nodes))
	for _, n := range g.Nodes {
		defs := collectDefs(n, aliases)
		for _, d := range defs {
			d.ID = len(rd.Defs)
			rd.Defs = append(rd.Defs, d)
			rd.defsBySym[d.Sym.ID] = append(rd.defsBySym[d.Sym.ID], d.ID)
		}
		gen[n.ID] = defs
	}

	nDefs := len(rd.Defs)
	genBits := make([]BitSet, len(g.Nodes))
	killBits := make([]BitSet, len(g.Nodes))
	for _, n := range g.Nodes {
		genBits[n.ID] = NewBitSet(nDefs)
		killBits[n.ID] = NewBitSet(nDefs)
		for _, d := range gen[n.ID] {
			genBits[n.ID].Set(d.ID)
			if d.Weak {
				continue
			}
			// Strong definitions kill other defs of the same symbol:
			// whole-object defs kill everything (including member defs);
			// member defs kill only matching member defs.
			for _, otherID := range rd.defsBySym[d.Sym.ID] {
				other := rd.Defs[otherID]
				if otherID == d.ID {
					continue
				}
				if d.Member == "" || other.Member == d.Member {
					killBits[n.ID].Set(otherID)
				}
			}
		}
	}

	// Solve with the generic forward may-analysis engine.
	rd.in, rd.Degraded, rd.Steps = ForwardMetered(g, nDefs,
		func(id int) BitSet { return genBits[id] },
		func(id int) BitSet { return killBits[id] }, lim)
	return rd
}

// In returns the definitions reaching the entry of node n.
func (rd *ReachingDefs) In(n *cfg.Node) []*Def {
	var out []*Def
	rd.in[n.ID].ForEach(func(i int) {
		out = append(out, rd.Defs[i])
	})
	return out
}

// ReachingFor returns the definitions of sym that reach the entry of n.
func (rd *ReachingDefs) ReachingFor(n *cfg.Node, sym *cast.Symbol) []*Def {
	var out []*Def
	for _, id := range rd.defsBySym[sym.ID] {
		if rd.in[n.ID].Has(id) {
			out = append(out, rd.Defs[id])
		}
	}
	return out
}

// UniqueReaching returns the single definition of sym reaching n, or nil
// when zero or multiple definitions reach (Algorithm 1 requires a unique
// "definition reaching B"; merges make the size indeterminate).
func (rd *ReachingDefs) UniqueReaching(n *cfg.Node, sym *cast.Symbol) *Def {
	defs := rd.ReachingFor(n, sym)
	if len(defs) != 1 {
		return nil
	}
	return defs[0]
}

// collectDefs finds the definitions performed by one CFG node.
func collectDefs(n *cfg.Node, aliases AliasOracle) []*Def {
	var defs []*Def
	switch n.Kind {
	case cfg.KindDecl:
		d := n.Decl
		if d.Sym == nil {
			return nil
		}
		kind := DefDecl
		if d.Init != nil {
			kind = DefInit
		}
		defs = append(defs, &Def{Node: n, Sym: d.Sym, Kind: kind, Value: d.Init})
		return defs
	case cfg.KindStmt, cfg.KindCond, cfg.KindPost:
		var root cast.Node
		switch {
		case n.Expr != nil:
			root = n.Expr
		case n.Stmt != nil:
			root = n.Stmt
		default:
			return nil
		}
		cast.Inspect(root, func(node cast.Node) bool {
			switch x := node.(type) {
			case *cast.AssignExpr:
				defs = append(defs, defsForLValue(n, x.LHS, x, aliases)...)
			case *cast.UnaryExpr:
				if x.Op == cast.UnaryPreInc || x.Op == cast.UnaryPreDec {
					defs = append(defs, defsForIncDec(n, x.Operand, x)...)
				}
			case *cast.PostfixExpr:
				defs = append(defs, defsForIncDec(n, x.Operand, x)...)
			case *cast.CallExpr:
				defs = append(defs, defsForCall(n, x, aliases)...)
			}
			return true
		})
		return defs
	default:
		return nil
	}
}

// defsForLValue produces the definitions caused by assigning to lv.
func defsForLValue(n *cfg.Node, lv cast.Expr, assign *cast.AssignExpr, aliases AliasOracle) []*Def {
	switch x := cast.Unparen(lv).(type) {
	case *cast.Ident:
		if x.Sym == nil {
			return nil
		}
		return []*Def{{Node: n, Sym: x.Sym, Kind: DefAssign, Value: assign}}
	case *cast.MemberExpr:
		base := cast.Unparen(x.Base)
		if id, ok := base.(*cast.Ident); ok && id.Sym != nil {
			// Member writes are strong for the member, weak for nothing
			// else; writes through p->f also count as a member def keyed
			// on the pointer symbol (the aggregate-node simplification).
			return []*Def{{Node: n, Sym: id.Sym, Member: x.Member, Kind: DefAssign, Value: assign}}
		}
		return nil
	case *cast.IndexExpr:
		base := cast.Unparen(x.Base)
		if id, ok := base.(*cast.Ident); ok && id.Sym != nil && ctype.IsArray(id.Sym.Type) {
			// Writing one element of an aggregate array: weak definition
			// of the whole object (no shape analysis, Section III-A).
			// Index writes through a *pointer* base modify the pointee,
			// not the pointer value, so they are not definitions of the
			// pointer symbol — Algorithm 1 tracks pointer values.
			return []*Def{{Node: n, Sym: id.Sym, Kind: DefAssign, Value: assign, Weak: true}}
		}
		return nil
	case *cast.UnaryExpr:
		if x.Op != cast.UnaryDeref {
			return nil
		}
		// *p = v defines whatever p may point to.
		if id, ok := cast.Unparen(x.Operand).(*cast.Ident); ok && id.Sym != nil {
			var defs []*Def
			for _, pt := range aliases.PointeesOf(id.Sym) {
				defs = append(defs, &Def{Node: n, Sym: pt, Kind: DefAliasWrite, Weak: true})
			}
			return defs
		}
		return nil
	default:
		return nil
	}
}

// defsForIncDec records an increment/decrement definition. The full
// expression is stored in Value so Algorithm 1 can apply the ±1 size
// correction (lines 16-20 operate on the same syntax when it reaches a use
// through a definition).
func defsForIncDec(n *cfg.Node, operand cast.Expr, expr cast.Expr) []*Def {
	if id, ok := cast.Unparen(operand).(*cast.Ident); ok && id.Sym != nil {
		return []*Def{{Node: n, Sym: id.Sym, Kind: DefIncDec, Value: expr}}
	}
	return nil
}

// defsForCall produces weak definitions for out-parameters: &x arguments,
// and for char* arguments to functions known to write their destination.
func defsForCall(n *cfg.Node, call *cast.CallExpr, aliases AliasOracle) []*Def {
	var defs []*Def
	for _, a := range call.Args {
		u, ok := cast.Unparen(a).(*cast.UnaryExpr)
		if !ok || u.Op != cast.UnaryAddrOf {
			continue
		}
		if id, ok := cast.Unparen(u.Operand).(*cast.Ident); ok && id.Sym != nil {
			defs = append(defs, &Def{Node: n, Sym: id.Sym, Kind: DefCallOut, Weak: true})
		}
	}
	// Writes into a buffer through a char*/void* argument mutate the
	// pointed-to object, not the pointer value, so they do not define the
	// pointer symbol; pointer-value tracking is what Algorithm 1 needs.
	_ = aliases
	return defs
}

// IsBufferWrite reports whether t is a type whose object could be a buffer
// destination (char array or pointer), used by callers assembling
// diagnostics.
func IsBufferWrite(t ctype.Type) bool {
	return t != nil && (ctype.IsCharPointer(t) || ctype.IsCharArray(t))
}
