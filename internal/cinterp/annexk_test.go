package cinterp

import (
	"testing"
)

// The Annex K builtins back the c11k repair dialect: a repaired program
// must execute without checked-memory violations, with constraint
// violations surfacing as cleared destinations and nonzero errno_t
// returns rather than out-of-bounds writes.

func TestStrcpySFitsAndCopies(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    int r = strcpy_s(buf, sizeof(buf), "hello");
    printf("%d %s\n", r, buf);
    return 0;
}
`, "main")
	if res.Stdout != "0 hello\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestStrcpySTooLongClearsAndErrs(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[4];
    buf[0] = 'x';
    buf[1] = 0;
    int r = strcpy_s(buf, sizeof(buf), "overflowing");
    printf("%d %d\n", r, buf[0]);
    return 0;
}
`, "main")
	if res.Stdout != "22 0\n" {
		t.Fatalf("stdout: %q, want errno 22 and a cleared destination", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("strcpy_s must prevent the overflow, got %v", res.Violations)
	}
}

func TestStrncpySTruncatesByCount(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    int r = strncpy_s(buf, sizeof(buf), "abcdefghij", 3);
    printf("%d %s\n", r, buf);
    int bad = strncpy_s(buf, sizeof(buf), "abcdefghij", 9);
    printf("%d\n", bad);
    return 0;
}
`, "main")
	if res.Stdout != "0 abc\n22\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestStrcatSAppendsWithinRoom(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    strcpy_s(buf, sizeof(buf), "ab");
    int r = strcat_s(buf, sizeof(buf), "cde");
    printf("%d %s\n", r, buf);
    int bad = strcat_s(buf, sizeof(buf), "fgh");
    printf("%d %d\n", bad, buf[0]);
    return 0;
}
`, "main")
	// "abcde" leaves room for 2 more + NUL; "fgh" needs 3 → violation
	// clears the destination.
	if res.Stdout != "0 abcde\n22 0\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestMemcpySBoundsAndZeroFill(t *testing.T) {
	res := run(t, `
int main(void) {
    char dst[4];
    char src[8];
    strcpy_s(src, sizeof(src), "abcdefg");
    int r = memcpy_s(dst, sizeof(dst), src, 4);
    printf("%d %c%c%c%c\n", r, dst[0], dst[1], dst[2], dst[3]);
    int bad = memcpy_s(dst, sizeof(dst), src, 8);
    printf("%d %d\n", bad, dst[0]);
    return 0;
}
`, "main")
	if res.Stdout != "0 abcd\n22 0\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("memcpy_s must never write out of bounds, got %v", res.Violations)
	}
}

func TestSprintfSFitsOrRejects(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    int r = sprintf_s(buf, sizeof(buf), "%s-%d", "ok", 1);
    printf("%d %s\n", r, buf);
    int bad = sprintf_s(buf, sizeof(buf), "%s", "waytoolongoutput");
    printf("%d %d\n", bad, buf[0]);
    return 0;
}
`, "main")
	if res.Stdout != "4 ok-1\n-1 0\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestGetsSBoundedRead(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    if (gets_s(buf, sizeof(buf)) != 0) {
        printf("[%s]\n", buf);
    }
    return 0;
}
`, "main", "hi")
	if res.Stdout != "[hi]\n" {
		t.Fatalf("stdout: %q (gets_s discards the newline)", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestGetsSTooLongReturnsNull(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[4];
    buf[0] = 'x';
    buf[1] = 0;
    if (gets_s(buf, sizeof(buf)) == 0) {
        printf("null %d\n", buf[0]);
    }
    return 0;
}
`, "main", "overlong line")
	if res.Stdout != "null 0\n" {
		t.Fatalf("stdout: %q, want NULL return and a cleared destination", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("gets_s must prevent the overflow, got %v", res.Violations)
	}
}

func TestVsprintfSAliasesSprintfS(t *testing.T) {
	// The transformer rewrites vsprintf into vsprintf_s with the same
	// shape; at interpretation time the va_list argument evaluates like a
	// plain value, so the alias shares the sprintf_s handler.
	res := run(t, `
int main(void) {
    char buf[16];
    int r = vsprintf_s(buf, sizeof(buf), "%d", 42);
    printf("%d %s\n", r, buf);
    return 0;
}
`, "main")
	if res.Stdout != "2 42\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}
