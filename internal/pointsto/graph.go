// Package pointsto implements the points-to and alias analysis the paper
// builds for OpenRefactory/C (Section III-A, Figure 1): an
// intra-procedural, flow-insensitive, inclusion-based (Andersen-style)
// analysis following Hardekopf's formulation, performed at source level.
//
// The constraint generator traverses the AST and produces a graph whose
// nodes are program variables (plus heap-allocation sites and string
// literals); edges indicate that one variable may point to another. Arrays
// and structures are aggregate nodes — no shape analysis — exactly the
// simplification the paper makes and whose consequences its evaluation
// reports (two of the four SLR precondition-failure classes).
//
// The solver rewrites the graph to a fixpoint. Two modes are provided: a
// sequential worklist, and a parallel rewriting engine in the spirit of the
// Galois system used by the paper (Mendez-Lojo's approach) with a bounded
// goroutine pool. Both reach the same (unique) fixpoint; an ablation bench
// compares them.
package pointsto

import (
	"fmt"
	"sort"

	"repro/internal/cast"
	"repro/internal/dataflow"
)

// NodeKind classifies points-to graph nodes.
type NodeKind int

// Node kinds.
const (
	NodeInvalid NodeKind = iota
	NodeVar              // a named variable (object)
	NodeHeap             // a heap allocation site
	NodeString           // a string literal object
)

// Node is one vertex of the points-to graph.
type Node struct {
	ID   int
	Kind NodeKind
	// Sym is set for NodeVar nodes.
	Sym *cast.Symbol
	// Field names the struct member for field-sensitive member nodes
	// ("" for whole-object nodes; see Options.FieldSensitive).
	Field string
	// Site is the allocating call or literal for heap/string nodes.
	Site cast.Expr
	// Aggregate marks arrays and structs, which are single nodes without
	// shape analysis.
	Aggregate bool
}

// String renders the node for diagnostics.
func (n *Node) String() string {
	switch n.Kind {
	case NodeVar:
		if n.Sym == nil {
			return fmt.Sprintf("tmp#%d", n.ID)
		}
		if n.Field != "" {
			return n.Sym.Name + "." + n.Field
		}
		return n.Sym.Name
	case NodeHeap:
		return fmt.Sprintf("heap#%d", n.ID)
	case NodeString:
		return fmt.Sprintf("str#%d", n.ID)
	default:
		return fmt.Sprintf("node#%d", n.ID)
	}
}

// constraintKind enumerates Andersen constraint forms.
type constraintKind int

const (
	// addrOf: dst ⊇ {src}  (dst = &src)
	addrOf constraintKind = iota + 1
	// copyC: pts(dst) ⊇ pts(src)  (dst = src)
	copyC
	// load: ∀v ∈ pts(src): pts(dst) ⊇ pts(v)  (dst = *src)
	load
	// store: ∀v ∈ pts(dst): pts(v) ⊇ pts(src)  (*dst = src)
	store
)

// constraint is one inclusion constraint between graph nodes.
type constraint struct {
	kind constraintKind
	dst  int
	src  int
}

// Graph is the constraint graph plus its solved points-to sets.
type Graph struct {
	Nodes []*Node
	// varNode maps symbol IDs to their node.
	varNode map[int]*Node
	// fieldNode maps (symbol ID, member) to per-field nodes in
	// field-sensitive mode.
	fieldNode map[fieldKey]*Node
	// fieldSensitive records the mode the graph was generated under.
	fieldSensitive bool
	// constraints is the full generated constraint system.
	constraints []constraint
	// pts[i] is the solved points-to set of node i (as node IDs).
	pts []dataflow.BitSet
	// rep[i] is the union-find representative after cycle collapsing.
	rep []int
	// solved guards queries before solving.
	solved bool
	// Stats describes the solve for benchmarking.
	Stats SolveStats
}

// SolveStats records solver effort for the ablation benchmarks.
type SolveStats struct {
	Iterations      int
	CyclesCollapsed int
	Parallel        bool
	// Degraded marks a solve whose step budget ran out; the graph was
	// widened to the conservative top (see Options.Limits).
	Degraded bool
}

// fieldKey identifies one struct member of one symbol.
type fieldKey struct {
	symID  int
	member string
}

// newGraph returns an empty constraint graph.
func newGraph() *Graph {
	return &Graph{
		varNode:   make(map[int]*Node),
		fieldNode: make(map[fieldKey]*Node),
	}
}

// nodeForField returns (creating on demand) the per-field node for a
// record-typed symbol's member (field-sensitive mode only).
func (g *Graph) nodeForField(sym *cast.Symbol, member string) *Node {
	key := fieldKey{symID: sym.ID, member: member}
	if n, ok := g.fieldNode[key]; ok {
		return n
	}
	n := &Node{ID: len(g.Nodes), Kind: NodeVar, Sym: sym, Field: member}
	g.Nodes = append(g.Nodes, n)
	g.fieldNode[key] = n
	return n
}

// nodeForSym returns (creating on demand) the node for a symbol.
func (g *Graph) nodeForSym(sym *cast.Symbol, aggregate bool) *Node {
	if n, ok := g.varNode[sym.ID]; ok {
		return n
	}
	n := &Node{ID: len(g.Nodes), Kind: NodeVar, Sym: sym, Aggregate: aggregate}
	g.Nodes = append(g.Nodes, n)
	g.varNode[sym.ID] = n
	return n
}

// newHeapNode creates a node for a heap allocation site.
func (g *Graph) newHeapNode(site cast.Expr) *Node {
	n := &Node{ID: len(g.Nodes), Kind: NodeHeap, Site: site}
	g.Nodes = append(g.Nodes, n)
	return n
}

// newStringNode creates a node for a string literal.
func (g *Graph) newStringNode(site cast.Expr) *Node {
	n := &Node{ID: len(g.Nodes), Kind: NodeString, Site: site, Aggregate: true}
	g.Nodes = append(g.Nodes, n)
	return n
}

func (g *Graph) addConstraint(kind constraintKind, dst, src int) {
	g.constraints = append(g.constraints, constraint{kind: kind, dst: dst, src: src})
}

// find returns the union-find representative of node i.
func (g *Graph) find(i int) int {
	for g.rep[i] != i {
		g.rep[i] = g.rep[g.rep[i]]
		i = g.rep[i]
	}
	return i
}

// PointsTo returns the solved points-to set of a symbol as nodes, sorted
// by node ID for determinism.
func (g *Graph) PointsTo(sym *cast.Symbol) []*Node {
	if !g.solved {
		return nil
	}
	n, ok := g.varNode[sym.ID]
	if !ok {
		return nil
	}
	var out []*Node
	g.pts[g.find(n.ID)].ForEach(func(i int) {
		out = append(out, g.Nodes[i])
	})
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// PointsToIntersect reports whether the points-to sets of two symbols
// share a node.
func (g *Graph) PointsToIntersect(a, b *cast.Symbol) bool {
	if !g.solved {
		return false
	}
	na, ok1 := g.varNode[a.ID]
	nb, ok2 := g.varNode[b.ID]
	if !ok1 || !ok2 {
		return false
	}
	pa := g.pts[g.find(na.ID)]
	pb := g.pts[g.find(nb.ID)]
	for i := range pa {
		if i < len(pb) && pa[i]&pb[i] != 0 {
			return true
		}
	}
	return false
}
