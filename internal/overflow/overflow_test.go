package overflow

import (
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/cparse"
	"repro/internal/typecheck"
)

func analyzeSrc(t *testing.T, src string) []Finding {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typecheck.Check(tu)
	return Analyze(tu)
}

// one asserts exactly one finding with the given CWE and severity.
func one(t *testing.T, fs []Finding, cwe int, sev Severity) Finding {
	t.Helper()
	if len(fs) != 1 {
		t.Fatalf("want exactly 1 finding, got %d: %v", len(fs), fs)
	}
	f := fs[0]
	if f.CWE != cwe || f.Severity != sev {
		t.Fatalf("want CWE-%d %s, got CWE-%d %s (%s)", cwe, sev, f.CWE, f.Severity, f.Msg)
	}
	return f
}

func TestStackStrcpyDefinite(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char buf[10];
    char src[20];
    memset(src, 'A', 15);
    src[15] = '\0';
    strcpy(buf, src);
}`)
	one(t, fs, 121, SevDefinite)
}

func TestStackStrcpyBoundedIsQuiet(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char buf[10];
    char src[20];
    memset(src, 'A', 5);
    src[5] = '\0';
    strcpy(buf, src);
}`)
	if len(fs) != 0 {
		t.Fatalf("bounded strcpy flagged: %v", fs)
	}
}

func TestStrcpyUnknownSourcePossible(t *testing.T) {
	fs := analyzeSrc(t, `
void f(char *s) {
    char buf[8];
    strcpy(buf, s);
}`)
	one(t, fs, 121, SevPossible)
}

func TestHeapIndexWriteDefinite(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char *b;
    b = malloc(10);
    b[14] = 'Z';
}`)
	one(t, fs, 122, SevDefinite)
}

func TestPointerDecrementUnderwrite(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char buf[10];
    char *p;
    p = buf;
    p -= 8;
    *p = 'Z';
}`)
	one(t, fs, 124, SevDefinite)
}

func TestIndexOverread(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char buf[10];
    char c;
    c = buf[14];
    printf("%c", c);
}`)
	one(t, fs, 126, SevDefinite)
}

func TestNegativeIndexUnderread(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char buf[10];
    int i;
    char c;
    i = -2;
    c = buf[i];
    printf("%c", c);
}`)
	one(t, fs, 127, SevDefinite)
}

func TestGetsDangerous(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char buf[8];
    gets(buf);
}`)
	f := one(t, fs, 242, SevDefinite)
	if !strings.Contains(f.SuggestedFix, "fgets") {
		t.Fatalf("fix should suggest fgets: %q", f.SuggestedFix)
	}
}

func TestLoopFillWidensToDefinite(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char buf[10];
    int i;
    for (i = 0; i < 15; i++) {
        buf[i] = 'F';
    }
}`)
	one(t, fs, 121, SevDefinite)
}

func TestLoopFillInBoundsIsQuiet(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char buf[10];
    int i;
    for (i = 0; i < 10; i++) {
        buf[i] = 'F';
    }
}`)
	if len(fs) != 0 {
		t.Fatalf("in-bounds loop flagged: %v", fs)
	}
}

func TestBoundedStrncpySizeofIsQuiet(t *testing.T) {
	fs := analyzeSrc(t, `
void f(void) {
    char buf[10];
    char src[20];
    memset(src, 'A', 15);
    src[15] = '\0';
    strncpy(buf, src, sizeof(buf));
}`)
	if len(fs) != 0 {
		t.Fatalf("sizeof-bounded strncpy flagged: %v", fs)
	}
}

func TestInterproceduralContextFindsCalleeOverflow(t *testing.T) {
	fs := analyzeSrc(t, `
void sink(char *dst, char *s) {
    strcpy(dst, s);
}
void root(void) {
    char small[4];
    char big[20];
    memset(big, 'A', 9);
    big[9] = '\0';
    sink(small, big);
}`)
	f := one(t, fs, 121, SevDefinite)
	if f.Function != "sink" {
		t.Fatalf("finding should be in sink, got %s", f.Function)
	}
	if len(f.Contexts) == 0 || !strings.Contains(f.Contexts[0], "root -> sink") {
		t.Fatalf("finding should carry the root -> sink context, got %v", f.Contexts)
	}
}

func TestInterproceduralQuietWithoutBadCaller(t *testing.T) {
	// The callee alone is not diagnosable (unknown sizes), and the only
	// caller passes fitting buffers: nothing may be reported.
	fs := analyzeSrc(t, `
void sink(char *dst, char *s) {
    strcpy(dst, s);
}
void root(void) {
    char big[20];
    char msg[4];
    msg[0] = 'h';
    msg[1] = 'i';
    msg[2] = '\0';
    sink(big, msg);
}`)
	if len(fs) != 0 {
		t.Fatalf("fitting interprocedural strcpy flagged: %v", fs)
	}
}

func TestLibtiffCVEFlaggedCWE121Definite(t *testing.T) {
	tu, err := cparse.Parse("tiff2pdf.c", corpus.LibtiffCVESource)
	if err != nil {
		t.Fatalf("parse corpus: %v", err)
	}
	typecheck.Check(tu)
	fs := Analyze(tu)
	var hit *Finding
	for i := range fs {
		src := tu.File.Slice(fs[i].Extent)
		if strings.Contains(src, "sprintf") {
			hit = &fs[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("sprintf CVE site not flagged; findings: %v", fs)
	}
	if hit.CWE != 121 || hit.Severity != SevDefinite {
		t.Fatalf("CVE site should be CWE-121 definite, got CWE-%d %s", hit.CWE, hit.Severity)
	}
	// Noise control: the guarded t2p_emit writes and the param-sized reads
	// must not be reported — the sprintf is the only finding.
	if len(fs) != 1 {
		t.Fatalf("want exactly the CVE finding, got %d: %v", len(fs), fs)
	}
}

func TestStoreStrlTransfer(t *testing.T) {
	top := Range(0, PosInf)
	// A NUL store bounds the first NUL from above (one may exist earlier).
	if got := storeStrl(top, Const(5), Const(0)); got != Range(0, 5) {
		t.Fatalf("zero store over unknown: got %v", got)
	}
	// When the old first NUL was provably later, the store pins it exactly.
	if got := storeStrl(Range(9, PosInf), Const(5), Const(0)); got != Const(5) {
		t.Fatalf("zero store below known NUL: got %v", got)
	}
	// Non-zero store before the first NUL changes nothing.
	if got := storeStrl(Const(7), Const(3), Const(65)); got != Const(7) {
		t.Fatalf("store before NUL: got %v", got)
	}
	// Non-zero store exactly on the unique first NUL pushes it right.
	if got := storeStrl(Const(7), Const(7), Const(65)); got != Range(8, PosInf) {
		t.Fatalf("store on NUL: got %v", got)
	}
	// Unknown byte joins both outcomes.
	got := storeStrl(Const(7), Const(2), Top())
	if got.Lo != 2 || got.Hi != PosInf {
		t.Fatalf("unknown store: got %v", got)
	}
}

func TestIntervalWiden(t *testing.T) {
	a := Range(0, 4)
	if w := a.Widen(Range(0, 9)); w != Range(0, PosInf) {
		t.Fatalf("upper widen: got %v", w)
	}
	if w := a.Widen(Range(-3, 4)); w != Range(NegInf, 4) {
		t.Fatalf("lower widen: got %v", w)
	}
	if w := a.Widen(Range(1, 3)); w != a {
		t.Fatalf("contained widen should be stable: got %v", w)
	}
}

func TestFormatLengthEstimates(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
void f(void) {
    char out[16];
    sprintf(out, "ab%d", 123);
}`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typecheck.Check(tu)
	if fs := Analyze(tu); len(fs) != 0 {
		t.Fatalf("exact short sprintf flagged: %v", fs)
	}
}
