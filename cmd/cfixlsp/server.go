package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/ctoken"
	"repro/internal/edit"
	"repro/internal/incremental"
	"repro/internal/overflow"
)

// document is one open text document: the editor's authoritative text
// plus the incremental session analyzing it. The two can diverge when
// an intermediate editor state does not parse — the session then stays
// on the last good text and resynchronizes (via a minimized whole-file
// replace) on the next parseable state, while lastDiags keeps serving
// the last good diagnostics, the standard LSP behavior for broken
// intermediate states.
type document struct {
	uri     string
	version int
	text    string
	session *incremental.Session
	// lastDiags is what the server last published for this document.
	lastDiags []diagnostic
}

// inSync reports that the session has analyzed exactly the editor text.
func (d *document) inSync() bool {
	return d.session != nil && d.session.Text() == d.text
}

// lspServer is one stdio LSP connection.
type lspServer struct {
	out     *writer
	docs    map[string]*document
	backend string
	checks  string
	log     *log.Logger

	shutdown bool
	exited   bool
}

// newLSPServer builds a server writing to w.
func newLSPServer(w io.Writer, backendName, checks string, logger *log.Logger) *lspServer {
	if checks == "" {
		checks = "all"
	}
	return &lspServer{
		out:     &writer{out: w},
		docs:    make(map[string]*document),
		backend: backendName,
		checks:  checks,
		log:     logger,
	}
}

// run serves one connection until exit or EOF. The returned error is
// nil for an orderly exit.
func (s *lspServer) run(r io.Reader) error {
	in := bufio.NewReader(r)
	for !s.exited {
		body, err := readMessage(in)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		var msg rpcMessage
		if err := json.Unmarshal(body, &msg); err != nil {
			s.out.respondError(nil, codeParseError, err.Error())
			continue
		}
		s.dispatch(&msg)
	}
	return nil
}

// dispatch routes one message. Handler panics are contained per
// message: an editor keystroke must never kill the server.
func (s *lspServer) dispatch(msg *rpcMessage) {
	defer func() {
		if rec := recover(); rec != nil {
			s.log.Printf("cfixlsp: panic in %s: %v", msg.Method, rec)
			if !msg.IsNotification() {
				s.out.respondError(msg.ID, codeInternalError, "internal error (panic recovered)")
			}
		}
	}()
	switch msg.Method {
	case "initialize":
		var res initializeResult
		res.Capabilities.TextDocumentSync.OpenClose = true
		res.Capabilities.TextDocumentSync.Change = 2 // incremental
		res.Capabilities.TextDocumentSync.Save = true
		res.Capabilities.CodeActionProvider = true
		res.ServerInfo.Name = "cfixlsp"
		res.ServerInfo.Version = "0.1"
		s.out.respond(msg.ID, res)
	case "initialized", "$/cancelRequest", "workspace/didChangeConfiguration":
		// Notifications we accept and ignore.
	case "shutdown":
		s.shutdown = true
		s.out.respond(msg.ID, nil)
	case "exit":
		s.exited = true
	case "textDocument/didOpen":
		var p didOpenParams
		if s.params(msg, &p) {
			s.didOpen(p)
		}
	case "textDocument/didChange":
		var p didChangeParams
		if s.params(msg, &p) {
			s.didChange(p)
		}
	case "textDocument/didSave":
		var p didSaveParams
		if s.params(msg, &p) {
			s.didSave(p)
		}
	case "textDocument/didClose":
		var p didCloseParams
		if s.params(msg, &p) {
			s.didClose(p)
		}
	case "textDocument/codeAction":
		var p codeActionParams
		if s.params(msg, &p) {
			s.out.respond(msg.ID, s.codeActions(p))
		}
	default:
		if !msg.IsNotification() {
			s.out.respondError(msg.ID, codeMethodNotFound, "unhandled method "+msg.Method)
		}
	}
}

// params decodes a message's params, answering invalid-params on a
// request decode failure.
func (s *lspServer) params(msg *rpcMessage, into any) bool {
	if err := json.Unmarshal(msg.Params, into); err != nil {
		if !msg.IsNotification() {
			s.out.respondError(msg.ID, codeInvalidParams, err.Error())
		} else {
			s.log.Printf("cfixlsp: bad %s params: %v", msg.Method, err)
		}
		return false
	}
	return true
}

func (s *lspServer) didOpen(p didOpenParams) {
	doc := &document{uri: p.TextDocument.URI, version: p.TextDocument.Version, text: p.TextDocument.Text}
	s.docs[doc.uri] = doc
	sess, _, err := incremental.Open(context.Background(), fileOf(doc.uri), doc.text,
		incremental.Config{Checks: s.checks, Backend: s.backend})
	if err != nil {
		// Unparseable on open: no diagnostics yet; a later edit that
		// parses will open the session.
		s.log.Printf("cfixlsp: open %s: %v", doc.uri, err)
		s.publish(doc, nil)
		return
	}
	doc.session = sess
	s.publish(doc, diagnosticsOf(doc.text, sess.Findings()))
}

func (s *lspServer) didChange(p didChangeParams) {
	doc := s.docs[p.TextDocument.URI]
	if doc == nil {
		s.log.Printf("cfixlsp: change for unopened %s", p.TextDocument.URI)
		return
	}
	doc.version = p.TextDocument.Version

	// Content changes apply sequentially, each against the text the
	// previous one produced. A single ranged change against the session's
	// own text converts losslessly to one delta; anything else falls back
	// to a whole-file replace, which edit.Minimize shrinks back to the
	// touched bytes.
	var deltas []edit.Delta
	base := doc.text
	sessionBase := ""
	if doc.session != nil {
		sessionBase = doc.session.Text()
	}
	if len(p.ContentChanges) == 1 && p.ContentChanges[0].Range != nil && base == sessionBase {
		c := p.ContentChanges[0]
		start := byteOffset(base, c.Range.Start)
		end := byteOffset(base, c.Range.End)
		deltas = []edit.Delta{edit.Replace(ctoken.Extent{Pos: ctoken.Pos(start), End: ctoken.Pos(end)}, c.Text)}
		doc.text = base[:start] + c.Text + base[end:]
	} else {
		for _, c := range p.ContentChanges {
			if c.Range == nil {
				doc.text = c.Text
				continue
			}
			start := byteOffset(doc.text, c.Range.Start)
			end := byteOffset(doc.text, c.Range.End)
			doc.text = doc.text[:start] + c.Text + doc.text[end:]
		}
		deltas = []edit.Delta{edit.Replace(ctoken.Extent{Pos: 0, End: ctoken.Pos(len(sessionBase))}, doc.text)}
	}

	if doc.session == nil {
		// The open never parsed; try from scratch on the new text.
		sess, _, err := incremental.Open(context.Background(), fileOf(doc.uri), doc.text,
			incremental.Config{Checks: s.checks, Backend: s.backend})
		if err != nil {
			s.publish(doc, doc.lastDiags)
			return
		}
		doc.session = sess
		s.publish(doc, diagnosticsOf(doc.text, sess.Findings()))
		return
	}

	res, err := doc.session.Edit(context.Background(), deltas)
	if err != nil {
		// Broken intermediate state: keep the last good diagnostics; the
		// session stays on its previous text and resyncs later.
		s.publish(doc, doc.lastDiags)
		return
	}
	s.publish(doc, diagnosticsOf(res.Text, res.Findings))
}

func (s *lspServer) didSave(p didSaveParams) {
	doc := s.docs[p.TextDocument.URI]
	if doc == nil {
		return
	}
	if doc.inSync() {
		// Nothing changed since the last analysis; re-publish.
		s.publish(doc, diagnosticsOf(doc.text, doc.session.Findings()))
		return
	}
	// Out of sync (e.g. edits while broken): resynchronize now.
	s.resync(doc)
}

// resync forces the session onto doc.text via a minimized whole-file
// replace, publishing fresh diagnostics on success.
func (s *lspServer) resync(doc *document) {
	if doc.session == nil {
		sess, _, err := incremental.Open(context.Background(), fileOf(doc.uri), doc.text,
			incremental.Config{Checks: s.checks, Backend: s.backend})
		if err != nil {
			s.publish(doc, doc.lastDiags)
			return
		}
		doc.session = sess
		s.publish(doc, diagnosticsOf(doc.text, sess.Findings()))
		return
	}
	base := doc.session.Text()
	res, err := doc.session.Edit(context.Background(), []edit.Delta{
		edit.Replace(ctoken.Extent{Pos: 0, End: ctoken.Pos(len(base))}, doc.text),
	})
	if err != nil {
		s.publish(doc, doc.lastDiags)
		return
	}
	s.publish(doc, diagnosticsOf(res.Text, res.Findings))
}

func (s *lspServer) didClose(p didCloseParams) {
	doc := s.docs[p.TextDocument.URI]
	if doc == nil {
		return
	}
	delete(s.docs, p.TextDocument.URI)
	// Clear the document's diagnostics in the editor.
	s.out.notify("textDocument/publishDiagnostics",
		publishDiagnosticsParams{URI: p.TextDocument.URI, Diagnostics: []diagnostic{}})
}

// codeActions offers quick fixes for the repair sites overlapping the
// requested range: one per eligible SLR call site, plus one batch STR
// action when any variable is eligible. Each action's workspace edit is
// computed by the same core.Fix the CLI runs, minimized to the touched
// bytes.
func (s *lspServer) codeActions(p codeActionParams) []codeAction {
	doc := s.docs[p.TextDocument.URI]
	if doc == nil || !doc.inSync() {
		return []codeAction{}
	}
	start := byteOffset(doc.text, p.Range.Start)
	end := byteOffset(doc.text, p.Range.End)

	actions := []codeAction{}
	strOffered := false
	for _, site := range doc.session.Sites() {
		if !site.Eligible {
			continue
		}
		if int(site.Extent.End) < start || int(site.Extent.Pos) > end {
			continue
		}
		switch site.Kind {
		case incremental.SiteSLR:
			rep, err := core.Fix(context.Background(), fileOf(doc.uri), doc.text, core.Options{
				SelectOffset: int(site.Extent.Pos),
				Backend:      s.backend,
			})
			if err != nil || !rep.Changed() {
				continue
			}
			actions = append(actions, codeAction{
				Title: fmt.Sprintf("Replace %s with %s (safe library routine)", site.Name, site.SafeName),
				Kind:  "quickfix",
				Edit:  workspaceEditFor(doc.uri, doc.text, rep.Source),
			})
		case incremental.SiteSTR:
			if strOffered {
				continue
			}
			rep, err := core.Fix(context.Background(), fileOf(doc.uri), doc.text, core.Options{
				SelectOffset: -1,
				DisableSLR:   true,
				Backend:      s.backend,
			})
			if err != nil || !rep.Changed() {
				continue
			}
			strOffered = true
			actions = append(actions, codeAction{
				Title: "Replace unsafe char buffers with stralloc (safe type replacement)",
				Kind:  "quickfix",
				Edit:  workspaceEditFor(doc.uri, doc.text, rep.Source),
			})
		}
	}
	return actions
}

// workspaceEditFor renders old -> new as minimized LSP text edits.
func workspaceEditFor(uri, oldText, newText string) workspaceEdit {
	deltas := edit.Minimize(oldText, []edit.Delta{
		edit.Replace(ctoken.Extent{Pos: 0, End: ctoken.Pos(len(oldText))}, newText),
	})
	edits := make([]textEdit, len(deltas))
	for i, d := range deltas {
		edits[i] = textEdit{
			Range:   lspRangeOf(oldText, int(d.Extent.Pos), int(d.Extent.End)),
			NewText: d.Text,
		}
	}
	return workspaceEdit{Changes: map[string][]textEdit{uri: edits}}
}

// publish sends diagnostics and remembers them as the document's last
// published state.
func (s *lspServer) publish(doc *document, diags []diagnostic) {
	if diags == nil {
		diags = []diagnostic{}
	}
	doc.lastDiags = diags
	s.out.notify("textDocument/publishDiagnostics", publishDiagnosticsParams{
		URI:         doc.uri,
		Version:     doc.version,
		Diagnostics: diags,
	})
}

// diagnosticsOf renders oracle findings against text.
func diagnosticsOf(text string, findings []overflow.Finding) []diagnostic {
	out := make([]diagnostic, len(findings))
	for i, f := range findings {
		sev := 2 // warning
		if f.Severity == overflow.SevDefinite {
			sev = 1 // error
		}
		msg := f.Msg
		if f.SuggestedFix != "" {
			msg += " (fix: " + f.SuggestedFix + ")"
		}
		out[i] = diagnostic{
			Range:    lspRangeOf(text, int(f.Extent.Pos), int(f.Extent.End)),
			Severity: sev,
			Code:     fmt.Sprintf("CWE-%d", f.CWE),
			Source:   "cfix",
			Message:  msg,
		}
	}
	return out
}

// fileOf turns a document URI into the diagnostic filename.
func fileOf(uri string) string {
	name := strings.TrimPrefix(uri, "file://")
	if name == "" {
		return "input.c"
	}
	return name
}
