package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/pkg/cfix"
)

// readAll reads a whole body; split out so attempt and readBody share
// the buffer discipline.
func readAll(r io.Reader) ([]byte, error) { return io.ReadAll(r) }

// Config tunes the router; zero values get sane defaults.
type Config struct {
	// Backends are the cfixd base URLs the fleet routes over ("host:port"
	// or "http://host:port"). Required, at least one.
	Backends []string
	// Vnodes is the virtual-node count per backend on the hash ring
	// (<= 0 means 128).
	Vnodes int

	// MaxInFlight bounds concurrently admitted analysis requests, same
	// contract as the single daemon (429 + Retry-After beyond).
	// <= 0 means 8 per CPU — the router only shuffles bytes, so it
	// admits more than a computing backend would.
	MaxInFlight int
	// MaxRequestBytes caps a request body; larger bodies answer 413.
	// <= 0 means 16 MiB.
	MaxRequestBytes int64

	// Retries bounds upstream attempts after the first per request
	// (connect errors and retryable statuses only). < 0 disables
	// retrying; 0 means the default 2.
	Retries int
	// RetryBackoff is the base delay before a retry, doubled per attempt
	// and jittered ±50% (<= 0 means 25ms).
	RetryBackoff time.Duration
	// HedgeAfter launches a duplicate attempt on the next replica when
	// the current one has not answered within this duration — the
	// tail-latency insurance. <= 0 disables hedging; a hedge consumes
	// one attempt from the same budget as retries.
	HedgeAfter time.Duration
	// UpstreamTimeout bounds one upstream attempt (<= 0 means 2m).
	UpstreamTimeout time.Duration

	// ProbeInterval is the readiness-probe period per healthy backend
	// (<= 0 means 1s); ProbeTimeout bounds one probe (<= 0 means 1s,
	// deliberately independent of the interval: a tight probe cadence
	// must not imply a deadline so short that scheduling jitter on a
	// loaded host ejects healthy backends; probes are sequential per
	// backend, so a timeout above the interval only stretches that
	// backend's own cadence). ProbeFailLimit consecutive failures eject
	// (<= 0 means 2); while ejected the probe period backs off
	// exponentially up to ProbeMaxBackoff (<= 0 means 15s).
	ProbeInterval   time.Duration
	ProbeTimeout    time.Duration
	ProbeFailLimit  int
	ProbeMaxBackoff time.Duration

	// BreakerThreshold consecutive request failures open a backend's
	// circuit (<= 0 means 5) for BreakerCooldown (<= 0 means 1s),
	// doubling up to BreakerMaxCooldown (<= 0 means 30s).
	BreakerThreshold   int
	BreakerCooldown    time.Duration
	BreakerMaxCooldown time.Duration

	// Workers bounds the batch endpoint's fan-out concurrency
	// (<= 0 means 4 per CPU).
	Workers int

	// Log receives routing events (ejections, reinstatements, forced
	// drains); nil means the process default logger.
	Log *log.Logger
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.Vnodes <= 0 {
		c.Vnodes = defaultVnodes
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8 * runtime.NumCPU()
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 16 << 20
	}
	switch {
	case c.Retries < 0:
		c.Retries = 0
	case c.Retries == 0:
		c.Retries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 25 * time.Millisecond
	}
	if c.UpstreamTimeout <= 0 {
		c.UpstreamTimeout = 2 * time.Minute
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProbeFailLimit <= 0 {
		c.ProbeFailLimit = 2
	}
	if c.ProbeMaxBackoff <= 0 {
		c.ProbeMaxBackoff = 15 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.BreakerMaxCooldown <= 0 {
		c.BreakerMaxCooldown = 30 * time.Second
	}
	if c.Workers <= 0 {
		c.Workers = 4 * runtime.NumCPU()
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// Router fronts the fleet. Create with NewRouter, mount with Handler,
// drain with BeginDrain + http.Server.Shutdown, stop the probers with
// Close.
type Router struct {
	conf        Config
	ring        *Ring
	backends    map[string]*backendState
	backendList []*backendState
	gate        *server.Gate
	client      *http.Client
	mux         *http.ServeMux
	m           routerMetrics
	draining    atomic.Bool

	flightMu sync.Mutex
	flights  map[string]*flight

	randMu sync.Mutex
	rand   *rand.Rand

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewRouter builds the routing tier and starts its health probers.
func NewRouter(conf Config) (*Router, error) {
	conf = conf.withDefaults()
	if len(conf.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	urls := make([]string, 0, len(conf.Backends))
	seen := make(map[string]bool)
	for _, b := range conf.Backends {
		u := normalizeBackendURL(b)
		if u == "" {
			return nil, fmt.Errorf("fleet: empty backend in %q", strings.Join(conf.Backends, ","))
		}
		if seen[u] {
			return nil, fmt.Errorf("fleet: duplicate backend %s", u)
		}
		seen[u] = true
		urls = append(urls, u)
	}

	rt := &Router{
		conf:     conf,
		ring:     NewRing(urls, conf.Vnodes),
		backends: make(map[string]*backendState, len(urls)),
		gate:     server.NewGate(conf.MaxInFlight),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        32 * len(urls),
			MaxIdleConnsPerHost: 32,
			IdleConnTimeout:     90 * time.Second,
		}},
		mux:     http.NewServeMux(),
		m:       routerMetrics{start: time.Now()},
		flights: make(map[string]*flight),
		rand:    rand.New(rand.NewSource(time.Now().UnixNano())),
		done:    make(chan struct{}),
	}
	for _, u := range urls {
		be := &backendState{
			url:     u,
			breaker: NewBreaker(conf.BreakerThreshold, conf.BreakerCooldown, conf.BreakerMaxCooldown),
		}
		rt.backends[u] = be
		rt.backendList = append(rt.backendList, be)
	}
	rt.mux.HandleFunc("POST /v1/fix", func(w http.ResponseWriter, r *http.Request) {
		rt.handleSingle(w, r, "fix")
	})
	rt.mux.HandleFunc("POST /v1/lint", func(w http.ResponseWriter, r *http.Request) {
		rt.handleSingle(w, r, "lint")
	})
	rt.mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.probeBackends()
	return rt, nil
}

// Handler returns the mounted API with last-resort panic containment,
// mirroring the single daemon's contract.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				rt.m.panics.Add(1)
				rt.conf.Log.Printf("fleet: panic escaped router handler %s: %v", r.URL.Path, rec)
				rt.writeError(w, http.StatusInternalServerError, "internal error (panic recovered)")
			}
		}()
		rt.mux.ServeHTTP(w, r)
	})
}

// BeginDrain flips /readyz to 503 (an upstream balancer ejects this
// router) while in-flight routing finishes. Idempotent.
func (rt *Router) BeginDrain() { rt.draining.Store(true) }

// Close stops the health probers. Safe to call more than once.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() { close(rt.done) })
	rt.wg.Wait()
}

// Metrics returns the /metrics payload for embedding and tests.
func (rt *Router) Metrics() RouterSnapshot { return rt.snapshot() }

// Backends returns the normalized, deduplicated backend URLs on the ring.
func (rt *Router) Backends() []string { return rt.ring.Members() }

// --- single-request routing (fix, lint) ---

// handleSingle terminates one fix or lint request: decode enough to
// derive the shard key, then route the raw body through the fleet with
// singleflight collapsing.
func (rt *Router) handleSingle(w http.ResponseWriter, r *http.Request, kind string) {
	release, ok := rt.admit(w)
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	defer func() { rt.m.latency.Observe(time.Since(start)) }()
	if kind == "fix" {
		rt.m.fixRequests.Add(1)
	} else {
		rt.m.lintRequests.Add(1)
	}

	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	// Both wire shapes share the fields the key needs.
	var req cfix.FixRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if req.Source == "" {
		rt.writeError(w, http.StatusBadRequest, "missing source")
		return
	}
	key := cfix.RequestKey(kind, req.Filename, req.Source, req.Options)
	out := rt.routeShared(r.Context(), "/v1/"+kind, body, key)
	rt.writeOutcome(w, out)
}

// readBody reads one JSON request body under the size cap.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, rt.conf.MaxRequestBytes)
	body, err := readAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			rt.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return nil, false
		}
		rt.writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return nil, false
	}
	return body, true
}

// admit applies the shared admission gate.
func (rt *Router) admit(w http.ResponseWriter) (release func(), ok bool) {
	release, ok = rt.gate.Acquire()
	if !ok {
		w.Header().Set("Retry-After", "1")
		rt.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("over capacity: %d requests in flight", rt.conf.MaxInFlight))
	}
	return release, ok
}

// flight is one in-progress routed computation; concurrent identical
// requests wait for it instead of multiplying load on the shard.
type flight struct {
	done chan struct{}
	out  *outcome
}

// outcome is the routed result handed back to the HTTP layer: either an
// upstream response (any status) or a routing failure.
type outcome struct {
	status      int
	contentType string
	body        []byte
	err         error // routing failed entirely (no upstream response)
}

// routeShared collapses concurrent identical requests (same content
// fingerprint) into one upstream call — the fleet-wide singleflight
// that keeps a thundering herd on a hot file from computing on N
// shards, or N times on one.
func (rt *Router) routeShared(ctx context.Context, path string, body []byte, key string) *outcome {
	rt.flightMu.Lock()
	if f, ok := rt.flights[key]; ok {
		rt.m.collapsed.Add(1)
		rt.flightMu.Unlock()
		select {
		case <-f.done:
			return f.out
		case <-ctx.Done():
			return &outcome{err: ctx.Err()}
		}
	}
	f := &flight{done: make(chan struct{})}
	rt.flights[key] = f
	rt.flightMu.Unlock()

	// The upstream call runs on a context detached from this client:
	// collapsed followers must not lose the result because the leader
	// hung up first. UpstreamTimeout still bounds it.
	f.out = rt.route(context.WithoutCancel(ctx), path, body, key)

	rt.flightMu.Lock()
	delete(rt.flights, key)
	rt.flightMu.Unlock()
	close(f.done)
	return f.out
}

// attemptResult is one upstream attempt's report.
type attemptResult struct {
	out *outcome
	be  *backendState
}

// retryableStatus reports whether an upstream HTTP status should be
// tried on another replica: transient server-side trouble, yes;
// deterministic client-side rejections (400/413/422), no. 429 is
// retryable — another shard may have capacity. 500 is retryable — a
// chaos-injected or flaky failure heals elsewhere, and a deterministic
// panic just costs a bounded number of extra attempts.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout, http.StatusTooManyRequests:
		return true
	}
	return false
}

// route sends one request through the fleet: consistent-hash replica
// order, skipping ejected backends and open breakers, bounded retries
// with jittered exponential backoff on connect/5xx failures, and a
// hedged duplicate to the next replica when the tail is slow. The
// returned outcome is an upstream response or a routing error after the
// attempt budget is spent.
func (rt *Router) route(ctx context.Context, path string, body []byte, key string) *outcome {
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()

	replicas := rt.ring.Replicas(key)
	maxAttempts := rt.conf.Retries + 1
	// The candidate sequence cycles the replica preference order so a
	// single-backend fleet can still retry a transient failure.
	candidates := make([]*backendState, 0, maxAttempts)
	for i := 0; len(candidates) < maxAttempts; i++ {
		candidates = append(candidates, rt.backends[replicas[i%len(replicas)]])
	}

	results := make(chan attemptResult, maxAttempts)
	next := 0
	pending := 0
	launch := func(mode string) bool {
		for next < len(candidates) {
			be := candidates[next]
			next++
			if !be.available() {
				continue
			}
			if !be.breaker.Allow() {
				be.broken.Add(1)
				rt.m.brokenTotal.Add(1)
				continue
			}
			switch mode {
			case "retry":
				be.retried.Add(1)
				rt.m.retriedTotal.Add(1)
			case "hedge":
				be.hedged.Add(1)
				rt.m.hedgedTotal.Add(1)
			}
			be.routed.Add(1)
			rt.m.routedTotal.Add(1)
			pending++
			go func() {
				results <- attemptResult{out: rt.attempt(ctx, be, path, body), be: be}
			}()
			return true
		}
		return false
	}

	if !launch("primary") {
		rt.m.unroutable.Add(1)
		return &outcome{status: http.StatusServiceUnavailable, contentType: "application/json",
			body: []byte(`{"error":"fleet: no backend available (all ejected or circuit-broken)"}`)}
	}

	var hedgeC <-chan time.Time
	if rt.conf.HedgeAfter > 0 {
		t := time.NewTimer(rt.conf.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var backoffC <-chan time.Time
	var lastFail *outcome
	retryNo := 0

	for {
		select {
		case res := <-results:
			pending--
			terminal := res.out.err == nil && !retryableStatus(res.out.status)
			if terminal {
				res.be.breaker.Success()
				return res.out
			}
			res.be.breaker.Failure()
			rt.m.upstreamFailures.Add(1)
			lastFail = res.out
			if pending == 0 && backoffC == nil {
				if next >= len(candidates) {
					return failOutcome(lastFail)
				}
				d := rt.backoff(retryNo)
				retryNo++
				t := time.NewTimer(d)
				defer t.Stop()
				backoffC = t.C
			}
		case <-backoffC:
			backoffC = nil
			if !launch("retry") && pending == 0 {
				return failOutcome(lastFail)
			}
		case <-hedgeC:
			hedgeC = nil
			launch("hedge")
		case <-ctx.Done():
			return &outcome{err: ctx.Err()}
		}
	}
}

// failOutcome renders the final failure once the attempt budget is
// spent: the last upstream HTTP answer if there was one (a 429/503
// passes its shedding through to the client, Retry-After intact),
// otherwise a 502 describing the transport failure.
func failOutcome(last *outcome) *outcome {
	if last == nil {
		return &outcome{status: http.StatusServiceUnavailable, contentType: "application/json",
			body: []byte(`{"error":"fleet: no backend available"}`)}
	}
	if last.err == nil {
		return last
	}
	return &outcome{status: http.StatusBadGateway, contentType: "application/json",
		body: []byte(fmt.Sprintf(`{"error":"fleet: upstream failed: %s"}`,
			strings.ReplaceAll(firstLine(last.err.Error()), `"`, `'`)))}
}

// attempt issues one upstream request.
func (rt *Router) attempt(ctx context.Context, be *backendState, path string, body []byte) *outcome {
	ctx, cancel := context.WithTimeout(ctx, rt.conf.UpstreamTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, be.url+path, bytes.NewReader(body))
	if err != nil {
		return &outcome{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return &outcome{err: err}
	}
	defer resp.Body.Close()
	data, err := readAll(resp.Body)
	if err != nil {
		// A torn body (chaos truncation) is an attempt failure even
		// though headers arrived; the retry path recomputes it whole.
		return &outcome{err: fmt.Errorf("reading upstream response: %w", err)}
	}
	return &outcome{status: resp.StatusCode, contentType: resp.Header.Get("Content-Type"), body: data}
}

// backoff returns the jittered exponential delay before retry n.
func (rt *Router) backoff(n int) time.Duration {
	d := rt.conf.RetryBackoff << n
	if max := 2 * time.Second; d > max {
		d = max
	}
	// ±50% jitter so synchronized failures do not retry in lockstep.
	rt.randMu.Lock()
	j := rt.rand.Int63n(int64(d) + 1)
	rt.randMu.Unlock()
	return d/2 + time.Duration(j)/2
}

// --- batch fan-out ---

// handleBatch splits a batch into per-file subrequests, routes each by
// its own content fingerprint (so every file lands on its cache shard),
// and reassembles the responses in input order. One file's total
// routing failure becomes that file's Error — batch semantics match the
// single daemon's per-file fault containment.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := rt.admit(w)
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	defer func() { rt.m.latency.Observe(time.Since(start)) }()
	rt.m.batchRequests.Add(1)

	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req cfix.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Files) == 0 {
		rt.writeError(w, http.StatusBadRequest, "missing files")
		return
	}
	rt.m.batchFiles.Add(int64(len(req.Files)))

	kind := "fix"
	if req.Lint {
		kind = "lint"
	}
	results := make([]cfix.BatchResult, len(req.Files))
	sem := make(chan struct{}, rt.conf.Workers)
	var wg sync.WaitGroup
	for i, f := range req.Files {
		wg.Add(1)
		go func(i int, f cfix.BatchFile) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = rt.routeBatchFile(r.Context(), kind, f, req.Options)
		}(i, f)
	}
	wg.Wait()
	rt.writeJSON(w, http.StatusOK, cfix.BatchResponse{Results: results})
}

// routeBatchFile routes one batch member as a single fix/lint request.
func (rt *Router) routeBatchFile(ctx context.Context, kind string, f cfix.BatchFile, opts cfix.RequestOptions) cfix.BatchResult {
	filename := f.Filename
	if filename == "" {
		filename = "input.c"
	}
	res := cfix.BatchResult{Filename: filename}
	sub, err := json.Marshal(cfix.FixRequest{Filename: filename, Source: f.Source, Options: opts})
	if err != nil {
		res.Error = "encoding subrequest: " + err.Error()
		return res
	}
	key := cfix.RequestKey(kind, filename, f.Source, opts)
	out := rt.routeShared(ctx, "/v1/"+kind, sub, key)
	switch {
	case out.err != nil:
		res.Error = firstLine(out.err.Error())
	case out.status != http.StatusOK:
		res.Error = fmt.Sprintf("upstream status %d: %s", out.status, errorBody(out.body))
	case kind == "lint":
		var lr cfix.LintResponse
		if err := json.Unmarshal(out.body, &lr); err != nil {
			res.Error = "decoding upstream response: " + err.Error()
		} else {
			res.Lint = &lr
		}
	default:
		var fr cfix.FixResponse
		if err := json.Unmarshal(out.body, &fr); err != nil {
			res.Error = "decoding upstream response: " + err.Error()
		} else {
			res.Fix = &fr
		}
	}
	return res
}

// --- probes and metrics ---

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	rt.m.healthRequests.Add(1)
	healthy := 0
	for _, be := range rt.backendList {
		if be.available() {
			healthy++
		}
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"status":           "ok",
		"router":           true,
		"uptime_seconds":   time.Since(rt.m.start).Seconds(),
		"backends_total":   len(rt.backendList),
		"backends_healthy": healthy,
	})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	rt.m.readyRequests.Add(1)
	if rt.draining.Load() {
		w.Header().Set("Retry-After", "1")
		rt.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	rt.writeJSON(w, http.StatusOK, rt.snapshot())
}

// --- response helpers (same wire shape as internal/server) ---

func (rt *Router) writeOutcome(w http.ResponseWriter, out *outcome) {
	if out.err != nil {
		switch {
		case errors.Is(out.err, context.DeadlineExceeded):
			rt.writeError(w, http.StatusGatewayTimeout, "upstream deadline exceeded")
		case errors.Is(out.err, context.Canceled):
			rt.writeError(w, http.StatusServiceUnavailable, "request cancelled")
		default:
			rt.writeError(w, http.StatusBadGateway, "fleet: "+firstLine(out.err.Error()))
		}
		return
	}
	if out.status >= 500 {
		rt.m.serverErrors.Add(1)
	} else if out.status >= 400 && out.status != http.StatusTooManyRequests {
		rt.m.clientErrors.Add(1)
	}
	ct := out.contentType
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(out.status)
	_, _ = w.Write(out.body)
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		rt.conf.Log.Printf("fleet: writing response: %v", err)
	}
}

func (rt *Router) writeError(w http.ResponseWriter, status int, msg string) {
	if status >= 500 {
		rt.m.serverErrors.Add(1)
	} else if status >= 400 && status != http.StatusTooManyRequests {
		rt.m.clientErrors.Add(1)
	}
	rt.writeJSON(w, status, map[string]string{"error": msg})
}

// errorBody extracts an upstream JSON error message for batch Error
// fields; falls back to the first line of the raw body.
func errorBody(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err == nil && e.Error != "" {
		return e.Error
	}
	return firstLine(strings.TrimSpace(string(body)))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
