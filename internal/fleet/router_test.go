package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/cfix"
)

// stubBackend simulates one cfixd: it answers /readyz (drainable via
// the flag), counts /v1/fix hits, and responds with a payload naming
// itself so tests can see where a request landed. Behavior is scripted
// per request number via fail and delay callbacks.
type stubBackend struct {
	id string
	ts *httptest.Server

	draining atomic.Bool
	hits     atomic.Int64
	// failStatus, when non-zero for a request number, short-circuits
	// that request with the status. delay sleeps before answering.
	mu         sync.Mutex
	failStatus map[int64]int
	delay      map[int64]time.Duration
}

func newStubBackend(t *testing.T, id string) *stubBackend {
	t.Helper()
	b := &stubBackend{id: id, failStatus: map[int64]int{}, delay: map[int64]time.Duration{}}
	b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		case "/readyz":
			if b.draining.Load() {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"status":"draining"}`)
				return
			}
			fmt.Fprint(w, `{"status":"ready"}`)
			return
		}
		n := b.hits.Add(1)
		b.mu.Lock()
		status := b.failStatus[n]
		d := b.delay[n]
		b.mu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
		if status != 0 {
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error":"stub %s scripted failure"}`, b.id)
			return
		}
		var req cfix.FixRequest
		body, _ := io.ReadAll(r.Body)
		_ = json.Unmarshal(body, &req)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"filename":%q,"source":"served-by-%s","changed":true,"slr_applied":0,"slr_candidates":0,"str_applied":0,"str_candidates":0,"cached":false}`,
			req.Filename, b.id)
	}))
	t.Cleanup(b.ts.Close)
	return b
}

// failNext scripts the next n serving requests to answer status.
func (b *stubBackend) failRange(from, to int64, status int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for n := from; n <= to; n++ {
		b.failStatus[n] = status
	}
}

func (b *stubBackend) delayRange(from, to int64, d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for n := from; n <= to; n++ {
		b.delay[n] = d
	}
}

// fastConfig is a test router config with tight timings.
func fastConfig(backends ...*stubBackend) Config {
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.ts.URL
	}
	return Config{
		Backends:         urls,
		Retries:          2,
		RetryBackoff:     time.Millisecond,
		ProbeInterval:    20 * time.Millisecond,
		ProbeFailLimit:   2,
		ProbeMaxBackoff:  100 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		UpstreamTimeout:  10 * time.Second,
		Workers:          8,
	}
}

func startRouter(t *testing.T, conf Config) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := NewRouter(conf)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return rt, ts
}

func fixBody(filename, source string) []byte {
	b, _ := json.Marshal(cfix.FixRequest{Filename: filename, Source: source})
	return b
}

func postFix(t *testing.T, url string, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/fix", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/fix: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	return resp.StatusCode, string(b)
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRouterAffinity: identical requests land on the same backend;
// different keys spread over the fleet.
func TestRouterAffinity(t *testing.T) {
	b1, b2, b3 := newStubBackend(t, "b1"), newStubBackend(t, "b2"), newStubBackend(t, "b3")
	_, ts := startRouter(t, fastConfig(b1, b2, b3))

	body := fixBody("affine.c", "void f(void) {}")
	var first string
	for i := 0; i < 5; i++ {
		status, resp := postFix(t, ts.URL, body)
		if status != 200 {
			t.Fatalf("request %d: status %d: %s", i, status, resp)
		}
		if first == "" {
			first = resp
		} else if resp != first {
			t.Fatalf("identical request moved backends: %q vs %q", first, resp)
		}
	}
	total := b1.hits.Load() + b2.hits.Load() + b3.hits.Load()
	if total != 5 {
		t.Fatalf("want 5 upstream hits on one backend, got %d", total)
	}

	// Many distinct keys should touch more than one backend.
	for i := 0; i < 30; i++ {
		postFix(t, ts.URL, fixBody(fmt.Sprintf("spread%d.c", i), "void f(void) {}"))
	}
	busy := 0
	for _, b := range []*stubBackend{b1, b2, b3} {
		if b.hits.Load() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("30 distinct keys landed on %d backend(s); consistent hashing should spread them", busy)
	}
}

// TestRouterRetriesUpstreamFailure: a 500 from the owner is retried on
// the next replica and the client never sees it.
func TestRouterRetriesUpstreamFailure(t *testing.T) {
	b1, b2 := newStubBackend(t, "b1"), newStubBackend(t, "b2")
	rt, ts := startRouter(t, fastConfig(b1, b2))

	// Whichever backend owns the key, fail its first serving request.
	b1.failRange(1, 1, 500)
	b2.failRange(1, 1, 500)
	status, resp := postFix(t, ts.URL, fixBody("retry.c", "void f(void) {}"))
	if status != 200 {
		t.Fatalf("retry should have healed the 500: status %d: %s", status, resp)
	}
	m := rt.Metrics()
	if m.RetriedTotal == 0 {
		t.Errorf("want retried_total > 0, got %+v", m)
	}
	if m.UpstreamFailures == 0 {
		t.Errorf("want upstream_failures > 0")
	}
}

// TestRouterRetryExhaustionPropagates: when every replica keeps
// failing, the client sees the upstream failure after the bounded
// attempts, not a hang.
func TestRouterRetryExhaustionPropagates(t *testing.T) {
	b1, b2 := newStubBackend(t, "b1"), newStubBackend(t, "b2")
	_, ts := startRouter(t, fastConfig(b1, b2))
	b1.failRange(1, 100, 500)
	b2.failRange(1, 100, 500)
	status, _ := postFix(t, ts.URL, fixBody("doomed.c", "void f(void) {}"))
	if status != 500 {
		t.Fatalf("exhausted retries should surface the upstream status, got %d", status)
	}
	if hits := b1.hits.Load() + b2.hits.Load(); hits != 3 {
		t.Fatalf("retries must be bounded: want 3 attempts (1+2 retries), got %d", hits)
	}
}

// TestRouterHedgesSlowPrimary: a slow owner is hedged to the next
// replica; the client gets the fast answer well before the slow one.
func TestRouterHedgesSlowPrimary(t *testing.T) {
	b1, b2 := newStubBackend(t, "b1"), newStubBackend(t, "b2")
	conf := fastConfig(b1, b2)
	conf.HedgeAfter = 50 * time.Millisecond
	rt, ts := startRouter(t, conf)

	// Slow down only the owner's first serving request so the hedge
	// lands on the other (fast) replica.
	src := "void f(void) {}"
	owner := rt.ring.Owner(cfix.RequestKey("fix", "slow.c", src, cfix.RequestOptions{}))
	for _, b := range []*stubBackend{b1, b2} {
		if b.ts.URL == owner {
			b.delayRange(1, 1, 2*time.Second)
		}
	}
	start := time.Now()
	status, _ := postFix(t, ts.URL, fixBody("slow.c", src))
	elapsed := time.Since(start)
	if status != 200 {
		t.Fatalf("hedged request failed: %d", status)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("hedge did not cut the tail: took %s", elapsed)
	}
	if m := rt.Metrics(); m.HedgedTotal == 0 {
		t.Errorf("want hedged_total > 0, got %+v", m)
	}
}

// TestRouterBreakerOpensAndRecovers: a backend serving only 500s gets
// its circuit opened (requests skip it without an upstream attempt),
// then recovers through the half-open probe once it heals.
func TestRouterBreakerOpensAndRecovers(t *testing.T) {
	b1, b2 := newStubBackend(t, "b1"), newStubBackend(t, "b2")
	conf := fastConfig(b1, b2)
	conf.BreakerThreshold = 2
	conf.BreakerCooldown = 100 * time.Millisecond
	rt, ts := startRouter(t, conf)

	b1.failRange(1, 4, 500)
	b2.failRange(1, 4, 500)
	// Two failing requests trip both breakers (each request fails its
	// primary, retries the other, fails there too).
	for i := 0; i < 2; i++ {
		postFix(t, ts.URL, fixBody(fmt.Sprintf("trip%d.c", i), "void f(void) {}"))
	}
	m := rt.Metrics()
	opened := 0
	for _, bs := range m.Backends {
		if bs.BreakerState != "closed" {
			opened++
		}
	}
	if opened == 0 {
		t.Fatalf("want at least one open breaker, got %+v", m.Backends)
	}

	// While every circuit is open the router answers 503 without
	// touching a backend.
	hitsBefore := b1.hits.Load() + b2.hits.Load()
	status, _ := postFix(t, ts.URL, fixBody("shed.c", "void f(void) {}"))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("all circuits open: want 503, got %d", status)
	}
	if got := b1.hits.Load() + b2.hits.Load(); got != hitsBefore {
		t.Fatalf("open breaker must not forward: hits went %d -> %d", hitsBefore, got)
	}
	if m := rt.Metrics(); m.BrokenTotal == 0 || m.Unroutable == 0 {
		t.Errorf("want broken_total > 0 and unroutable > 0, got %+v", m)
	}

	// After the cooldown the half-open probe succeeds (the stubs are
	// healed: their scripted failures are spent) and traffic flows.
	time.Sleep(120 * time.Millisecond)
	waitUntil(t, "breaker recovery", func() bool {
		status, _ := postFix(t, ts.URL, fixBody("heal.c", "void f(void) {}"))
		return status == 200
	})
}

// TestRouterEjectsDeadBackendAndReinstates: a backend that stops
// answering probes is ejected (requests route around it with zero
// client-visible failures) and reinstated when it comes back.
func TestRouterEjectsDeadBackendAndReinstates(t *testing.T) {
	b1, b2 := newStubBackend(t, "b1"), newStubBackend(t, "b2")
	rt, ts := startRouter(t, fastConfig(b1, b2))

	b1.draining.Store(true) // readiness fails; the prober must eject
	waitUntil(t, "ejection", func() bool {
		m := rt.Metrics()
		return !m.Backends[b1.ts.URL].Healthy
	})
	if m := rt.Metrics(); m.Backends[b1.ts.URL].EjectedTotal != 1 {
		t.Fatalf("want ejected_total 1, got %+v", m.Backends[b1.ts.URL])
	}

	// Every request now lands on b2, no failures.
	for i := 0; i < 10; i++ {
		status, resp := postFix(t, ts.URL, fixBody(fmt.Sprintf("e%d.c", i), "void f(void) {}"))
		if status != 200 || !bytes.Contains([]byte(resp), []byte("served-by-b2")) {
			t.Fatalf("request %d should be served by b2: %d %s", i, status, resp)
		}
	}
	if b1.hits.Load() != 0 {
		t.Fatalf("ejected backend must receive no serving requests, got %d", b1.hits.Load())
	}

	b1.draining.Store(false) // back to ready; the prober must reinstate
	waitUntil(t, "reinstatement", func() bool {
		return rt.Metrics().Backends[b1.ts.URL].Healthy
	})
}

// TestRouterSingleflightCollapsesHerd: concurrent identical requests
// reach the backend once; everyone gets the same bytes.
func TestRouterSingleflightCollapsesHerd(t *testing.T) {
	b1, b2 := newStubBackend(t, "b1"), newStubBackend(t, "b2")
	conf := fastConfig(b1, b2)
	conf.MaxInFlight = 64 // admit the whole herd; collapse happens past the gate
	_, ts := startRouter(t, conf)

	// Slow down the first serving request so the herd piles onto the
	// in-flight computation.
	b1.delayRange(1, 1, 300*time.Millisecond)
	b2.delayRange(1, 1, 300*time.Millisecond)

	const herd = 16
	body := fixBody("hot.c", "void f(void) {}")
	var wg sync.WaitGroup
	statuses := make([]int, herd)
	responses := make([]string, herd)
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/fix", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("herd request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			statuses[i], responses[i] = resp.StatusCode, string(b)
		}(i)
	}
	wg.Wait()
	for i := range statuses {
		if statuses[i] != 200 {
			t.Fatalf("herd request %d failed: %d", i, statuses[i])
		}
		if responses[i] != responses[0] {
			t.Fatalf("herd answers diverged: %q vs %q", responses[i], responses[0])
		}
	}
	if hits := b1.hits.Load() + b2.hits.Load(); hits != 1 {
		t.Fatalf("fleet singleflight: want exactly 1 upstream computation, got %d", hits)
	}
}

// TestRouterBatchFanout: batch members route individually and
// reassemble in order; an unparseable member fails alone.
func TestRouterBatchFanout(t *testing.T) {
	b1, b2, b3 := newStubBackend(t, "b1"), newStubBackend(t, "b2"), newStubBackend(t, "b3")
	_, ts := startRouter(t, fastConfig(b1, b2, b3))

	var req cfix.BatchRequest
	for i := 0; i < 12; i++ {
		req.Files = append(req.Files, cfix.BatchFile{
			Filename: fmt.Sprintf("f%02d.c", i), Source: fmt.Sprintf("void f%d(void) {}", i)})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/batch: %v", err)
	}
	defer resp.Body.Close()
	var br cfix.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	if len(br.Results) != 12 {
		t.Fatalf("want 12 results, got %d", len(br.Results))
	}
	for i, r := range br.Results {
		if r.Filename != fmt.Sprintf("f%02d.c", i) {
			t.Fatalf("result %d out of order: %q", i, r.Filename)
		}
		if r.Error != "" || r.Fix == nil {
			t.Fatalf("result %d: unexpected failure %q", i, r.Error)
		}
	}
	// The fan-out should touch multiple shards.
	busy := 0
	for _, b := range []*stubBackend{b1, b2, b3} {
		if b.hits.Load() > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("batch fan-out landed on %d backend(s)", busy)
	}
}

// TestRouterValidationAndAdmission: bad bodies 400, oversized 413,
// admission overflow 429 with Retry-After.
func TestRouterValidationAndAdmission(t *testing.T) {
	b1 := newStubBackend(t, "b1")
	conf := fastConfig(b1)
	conf.MaxInFlight = 1
	conf.MaxRequestBytes = 1024
	rt, ts := startRouter(t, conf)

	if status, _ := postFix(t, ts.URL, []byte(`{not json`)); status != 400 {
		t.Errorf("bad JSON: want 400, got %d", status)
	}
	if status, _ := postFix(t, ts.URL, []byte(`{"source":""}`)); status != 400 {
		t.Errorf("missing source: want 400, got %d", status)
	}
	big := fixBody("big.c", string(bytes.Repeat([]byte("x"), 2048)))
	if status, _ := postFix(t, ts.URL, big); status != 413 {
		t.Errorf("oversized body: want 413, got %d", status)
	}

	// Fill the single admission slot with a slow request, then overflow.
	// The 400/413 probes above never reached the backend, so this is
	// b1's first serving request.
	b1.delayRange(1, 1, 500*time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		postFix(t, ts.URL, fixBody("slot.c", "void f(void) {}"))
	}()
	waitUntil(t, "slot occupied", func() bool { return rt.gate.InFlight() == 1 })
	resp, err := http.Post(ts.URL+"/v1/fix", "application/json", bytes.NewReader(fixBody("over.c", "void g(void) {}")))
	if err != nil {
		t.Fatalf("overflow request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("overflow: want 429, got %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 must carry Retry-After")
	}
	<-done
}

// TestRouterReadyzDrain: /readyz flips to 503 on BeginDrain while
// /healthz stays 200 — the ejection signal for an upstream balancer.
func TestRouterReadyzDrain(t *testing.T) {
	b1 := newStubBackend(t, "b1")
	rt, ts := startRouter(t, fastConfig(b1))
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("ready router: want 200, got %v %v", resp, err)
	}
	resp.Body.Close()
	rt.BeginDrain()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining router: want 503, got %v %v", resp, err)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("draining router is still alive: want 200, got %v %v", resp, err)
	}
	resp.Body.Close()
	if !rt.Metrics().Draining {
		t.Error("metrics should report draining")
	}
}
