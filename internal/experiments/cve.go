package experiments

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/harness"
)

// CVEResult reports the LibTIFF case study (Section IV-A2).
type CVEResult struct {
	VulnDetected bool
	CWE121       bool
	Fixed        bool
	Preserved    bool
	BenignOutput string
	AttackPre    string
	AttackPost   string
	FixLine      string
}

// RunCVE reproduces the tiff2pdf vulnerability and its SLR fix.
func RunCVE() (*CVEResult, error) {
	v, err := harness.Verify("tiff2pdf", corpus.LibtiffCVESource, "run_benign", "run_attack",
		harness.Options{SkipSTR: true})
	if err != nil {
		return nil, err
	}
	res := &CVEResult{
		VulnDetected: v.VulnDetected,
		Fixed:        v.Fixed,
		Preserved:    v.Preserved,
		BenignOutput: strings.TrimSpace(v.PreGood.Stdout),
		AttackPre:    strings.TrimSpace(v.PreBad.Stdout),
		AttackPost:   strings.TrimSpace(v.PostBad.Stdout),
	}
	for _, viol := range v.PreBad.Violations {
		if viol.CWE == 121 {
			res.CWE121 = true
		}
	}
	for _, line := range strings.Split(v.TransformedSource, "\n") {
		if strings.Contains(line, "g_snprintf") {
			res.FixLine = strings.TrimSpace(line)
			break
		}
	}
	return res, nil
}

// FormatCVE renders the case study.
func FormatCVE(r *CVEResult) string {
	var sb strings.Builder
	sb.WriteString("Case study: LibTIFF 3.8.2 tiff2pdf buffer overflow (Section IV-A2)\n\n")
	sb.WriteString(fmt.Sprintf("  vulnerability detected pre-transform:  %v (CWE-121: %v)\n",
		r.VulnDetected, r.CWE121))
	sb.WriteString(fmt.Sprintf("  fixed by SLR:                          %v\n", r.Fixed))
	sb.WriteString(fmt.Sprintf("  benign behavior preserved:             %v\n", r.Preserved))
	sb.WriteString(fmt.Sprintf("  benign output:                         %q\n", r.BenignOutput))
	sb.WriteString(fmt.Sprintf("  attack output before fix:              %q\n", r.AttackPre))
	sb.WriteString(fmt.Sprintf("  attack output after fix (truncated):   %q\n", r.AttackPost))
	sb.WriteString(fmt.Sprintf("  applied fix:                           %s\n", r.FixLine))
	sb.WriteString("\nPaper: SLR replaces the sprintf with g_snprintf and sizeof(buffer),\n")
	sb.WriteString("removing the overflow while normal TIFF files keep working.\n")
	return sb.String()
}
