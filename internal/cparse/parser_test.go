package cparse

import (
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/ctype"
)

func mustParse(t *testing.T, src string) *cast.TranslationUnit {
	t.Helper()
	tu, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return tu
}

func TestParseEmptyUnit(t *testing.T) {
	tu := mustParse(t, "")
	if len(tu.Decls) != 0 {
		t.Fatalf("expected no decls, got %d", len(tu.Decls))
	}
}

func TestParseSimpleFunction(t *testing.T) {
	tu := mustParse(t, `
int add(int a, int b) {
    return a + b;
}
`)
	f := tu.FuncNamed("add")
	if f == nil {
		t.Fatal("function add not found")
	}
	if len(f.Params) != 2 {
		t.Fatalf("expected 2 params, got %d", len(f.Params))
	}
	if f.Params[0].Name != "a" || f.Params[1].Name != "b" {
		t.Fatalf("unexpected params: %q %q", f.Params[0].Name, f.Params[1].Name)
	}
	if got := f.Type.Result.String(); got != "int" {
		t.Fatalf("result type: got %s", got)
	}
}

func TestParseDeclarations(t *testing.T) {
	tests := []struct {
		name string
		src  string
		typ  string
	}{
		{"int", "int x;", "int"},
		{"char pointer", "char *p;", "char *"},
		{"char array", "char buf[10];", "char [10]"},
		{"pointer to pointer", "char **pp;", "char * *"},
		{"2d array", "int m[2][3];", "int [3] [2]"},
		{"unsigned long", "unsigned long n;", "unsigned long"},
		{"array of pointers", "char *argv[4];", "char * [4]"},
		{"pointer to array", "char (*pa)[8];", "char [8] *"},
		{"sized by expr", "char buf[4*8];", "char [32]"},
		{"unsigned", "unsigned u;", "unsigned int"},
		{"long long", "long long ll;", "long long"},
		{"short", "short s;", "short"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tu := mustParse(t, tt.src)
			if len(tu.Decls) != 1 {
				t.Fatalf("expected 1 decl, got %d", len(tu.Decls))
			}
			vd, ok := tu.Decls[0].(*cast.VarDecl)
			if !ok {
				t.Fatalf("expected VarDecl, got %T", tu.Decls[0])
			}
			if got := vd.Type.String(); got != tt.typ {
				t.Fatalf("type: got %q, want %q", got, tt.typ)
			}
		})
	}
}

func TestParseMultiDeclarator(t *testing.T) {
	tu := mustParse(t, "int a, *b, c[3];")
	md, ok := tu.Decls[0].(*cast.MultiDecl)
	if !ok {
		t.Fatalf("expected MultiDecl, got %T", tu.Decls[0])
	}
	if len(md.Decls) != 3 {
		t.Fatalf("expected 3 declarators, got %d", len(md.Decls))
	}
	want := []string{"int", "int *", "int [3]"}
	for i, w := range want {
		if got := md.Decls[i].Type.String(); got != w {
			t.Errorf("decl %d: got %q, want %q", i, got, w)
		}
	}
}

func TestParseStruct(t *testing.T) {
	tu := mustParse(t, `
struct point { int x; int y; };
struct point origin;
`)
	vd := tu.Decls[1].(*cast.VarDecl)
	rec, ok := ctype.Unqualify(vd.Type).(*ctype.Record)
	if !ok {
		t.Fatalf("expected record type, got %T", vd.Type)
	}
	if rec.Tag != "point" || len(rec.Fields) != 2 {
		t.Fatalf("unexpected record: %v fields=%d", rec.Tag, len(rec.Fields))
	}
	if rec.Size() != 8 {
		t.Fatalf("struct point size: got %d, want 8", rec.Size())
	}
	f, ok := rec.FieldNamed("y")
	if !ok || f.Offset != 4 {
		t.Fatalf("field y offset: got %d, want 4", f.Offset)
	}
}

func TestParseTypedef(t *testing.T) {
	tu := mustParse(t, `
typedef struct stralloc { char* s; char* f; unsigned int len; unsigned int a; } stralloc;
stralloc sa;
stralloc *p;
`)
	vd := tu.Decls[1].(*cast.VarDecl)
	rec, ok := ctype.Unqualify(vd.Type).(*ctype.Record)
	if !ok {
		t.Fatalf("expected record, got %T", ctype.Unqualify(vd.Type))
	}
	if len(rec.Fields) != 4 {
		t.Fatalf("stralloc fields: got %d, want 4", len(rec.Fields))
	}
	pd := tu.Decls[2].(*cast.VarDecl)
	if !ctype.IsPointer(pd.Type) {
		t.Fatalf("expected pointer type, got %s", pd.Type)
	}
}

func TestParseEnum(t *testing.T) {
	tu := mustParse(t, `
enum color { RED, GREEN = 5, BLUE };
int f(void) { return BLUE; }
`)
	ed, ok := tu.Decls[0].(*cast.EnumDecl)
	if !ok {
		t.Fatalf("expected EnumDecl, got %T", tu.Decls[0])
	}
	if len(ed.Enum.Consts) != 3 {
		t.Fatalf("enum consts: got %d", len(ed.Enum.Consts))
	}
	if ed.Enum.Consts[2].Name != "BLUE" || ed.Enum.Consts[2].Value != 6 {
		t.Fatalf("BLUE: got %v", ed.Enum.Consts[2])
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	tu := mustParse(t, "int f(void){ return 1 + 2 * 3; }")
	ret := tu.Funcs[0].Body.Items[0].(*cast.ReturnStmt)
	bin := ret.Result.(*cast.BinaryExpr)
	if bin.Op != cast.BinaryAdd {
		t.Fatalf("top op: got %v, want +", bin.Op)
	}
	inner := bin.Y.(*cast.BinaryExpr)
	if inner.Op != cast.BinaryMul {
		t.Fatalf("inner op: got %v, want *", inner.Op)
	}
	if v, ok := ConstIntValue(ret.Result); !ok || v != 7 {
		t.Fatalf("const value: got %d ok=%v, want 7", v, ok)
	}
}

func TestParseExpressionForms(t *testing.T) {
	// Each expression should round-trip through the parser without error.
	exprs := []string{
		"a = b",
		"a += 1",
		"a ? b : c",
		"f(a, b, c)",
		"a[i]",
		"s.field",
		"p->field",
		"*p",
		"&x",
		"!x && ~y",
		"(char*)p",
		"sizeof(int)",
		"sizeof x",
		"sizeof(buf)",
		"x++ + ++y",
		"a << 2 | b >> 1",
		"a == b != c",
		"(a, b)",
		"- -x",
		"p - q",
		"\"abc\" \"def\"",
	}
	for _, e := range exprs {
		t.Run(e, func(t *testing.T) {
			src := "int a, b, c, i, x, y; char *p, *q, buf[4]; struct S { int field; } s; int f(int u, int v, int w);\nvoid g(void) { " + e + "; }"
			mustParse(t, src)
		})
	}
}

func TestParseStatements(t *testing.T) {
	src := `
void f(int n) {
    int i;
    if (n > 0) { n--; } else { n++; }
    while (n < 10) n++;
    do { n--; } while (n > 0);
    for (i = 0; i < 10; i++) { n += i; }
    for (;;) { break; }
    switch (n) {
    case 0:
        n = 1;
        break;
    case 1:
    case 2:
        n = 2;
        break;
    default:
        n = 3;
    }
    goto end;
end:
    return;
}
`
	tu := mustParse(t, src)
	if len(tu.Funcs) != 1 {
		t.Fatalf("funcs: got %d", len(tu.Funcs))
	}
}

func TestParsePaperExampleSLR(t *testing.T) {
	// The SLR motivating example from Section II-A4 of the paper.
	src := `
void example(void) {
    char buf[10];
    char src[100];
    memset(src, 'c', 50);
    src[50] = '\0';
    char *dst = buf;
    strcpy(dst, src);
}
`
	tu := mustParse(t, src)
	f := tu.Funcs[0]
	var calls []*cast.CallExpr
	cast.Inspect(f.Body, func(n cast.Node) bool {
		if c, ok := n.(*cast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	if len(calls) != 2 {
		t.Fatalf("calls: got %d, want 2", len(calls))
	}
	if calls[0].Callee() != "memset" || calls[1].Callee() != "strcpy" {
		t.Fatalf("callees: %s %s", calls[0].Callee(), calls[1].Callee())
	}
	// The strcpy callee must bind to the builtin symbol.
	id := cast.Unparen(calls[1].Fun).(*cast.Ident)
	if id.Sym == nil || id.Sym.Kind != cast.SymFunc {
		t.Fatal("strcpy not bound to a function symbol")
	}
}

func TestParseNameBinding(t *testing.T) {
	src := `
int g;
void f(int p) {
    int l;
    l = g + p;
    {
        int l2;
        l2 = l;
    }
}
`
	tu := mustParse(t, src)
	var idents []*cast.Ident
	cast.Inspect(tu.Funcs[0].Body, func(n cast.Node) bool {
		if id, ok := n.(*cast.Ident); ok {
			idents = append(idents, id)
		}
		return true
	})
	for _, id := range idents {
		if id.Sym == nil {
			t.Errorf("identifier %q unbound", id.Name)
		}
	}
	// g binds to a global.
	for _, id := range idents {
		if id.Name == "g" && !id.Sym.IsGlobal {
			t.Error("g should bind to the global symbol")
		}
		if id.Name == "p" && id.Sym.Kind != cast.SymParam {
			t.Error("p should bind to a parameter symbol")
		}
	}
}

func TestParseShadowing(t *testing.T) {
	src := `
int x;
void f(void) {
    int x;
    x = 1;
}
`
	tu := mustParse(t, src)
	var use *cast.Ident
	cast.Inspect(tu.Funcs[0].Body, func(n cast.Node) bool {
		if id, ok := n.(*cast.Ident); ok && id.Name == "x" {
			use = id
		}
		return true
	})
	if use == nil || use.Sym == nil {
		t.Fatal("x not bound")
	}
	if use.Sym.IsGlobal {
		t.Fatal("x should bind to the local, not the shadowed global")
	}
}

func TestParseStringEscapes(t *testing.T) {
	tu := mustParse(t, `char *s = "a\tb\n\x41\101";`)
	vd := tu.Decls[0].(*cast.VarDecl)
	lit := vd.Init.(*cast.StringLit)
	if lit.Value != "a\tb\nAA" {
		t.Fatalf("decoded: got %q", lit.Value)
	}
}

func TestParseCharLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want byte
	}{
		{`char c = 'a';`, 'a'},
		{`char c = '\n';`, '\n'},
		{`char c = '\0';`, 0},
		{`char c = '\\';`, '\\'},
		{`char c = '\'';`, '\''},
		{`char c = '\x41';`, 'A'},
	}
	for _, tt := range tests {
		tu := mustParse(t, tt.src)
		vd := tu.Decls[0].(*cast.VarDecl)
		lit := vd.Init.(*cast.CharLit)
		if lit.Value != tt.want {
			t.Errorf("%s: got %q, want %q", tt.src, lit.Value, tt.want)
		}
	}
}

func TestParseIntLiterals(t *testing.T) {
	tests := []struct {
		src  string
		want int64
	}{
		{"int x = 42;", 42},
		{"int x = 0x2A;", 42},
		{"int x = 052;", 42},
		{"int x = 0;", 0},
		{"long x = 42L;", 42},
		{"unsigned x = 42u;", 42},
		{"long long x = 42ULL;", 42},
	}
	for _, tt := range tests {
		tu := mustParse(t, tt.src)
		vd := tu.Decls[0].(*cast.VarDecl)
		lit := vd.Init.(*cast.IntLit)
		if lit.Value != tt.want {
			t.Errorf("%s: got %d, want %d", tt.src, lit.Value, tt.want)
		}
	}
}

func TestParseInitializerList(t *testing.T) {
	tu := mustParse(t, "int a[3] = {1, 2, 3};")
	vd := tu.Decls[0].(*cast.VarDecl)
	lst, ok := vd.Init.(*cast.InitListExpr)
	if !ok {
		t.Fatalf("expected InitListExpr, got %T", vd.Init)
	}
	if len(lst.Elems) != 3 {
		t.Fatalf("elems: got %d", len(lst.Elems))
	}
}

func TestParseStrallocInit(t *testing.T) {
	// The initializer form STR emits.
	src := `
typedef struct stralloc { char* s; char* f; unsigned int len; unsigned int a; } stralloc;
void f(void) {
    stralloc *buf;
    stralloc ssss_buf = {0,0,0,0};
    buf = &ssss_buf;
    buf->a = 1024;
}
`
	mustParse(t, src)
}

func TestParseErrorReportsPosition(t *testing.T) {
	_, err := Parse("bad.c", "int f( {")
	if err == nil {
		t.Fatal("expected parse error")
	}
	if !strings.Contains(err.Error(), "bad.c:1:") {
		t.Fatalf("error should carry position, got: %v", err)
	}
}

func TestParseFunctionPointerDeclarator(t *testing.T) {
	tu := mustParse(t, "int (*handler)(int, char*);")
	vd := tu.Decls[0].(*cast.VarDecl)
	p, ok := ctype.Unqualify(vd.Type).(*ctype.Pointer)
	if !ok {
		t.Fatalf("expected pointer, got %s", vd.Type)
	}
	if _, ok := p.Elem.(*ctype.Func); !ok {
		t.Fatalf("expected pointer to function, got %s", vd.Type)
	}
}

func TestParseExtents(t *testing.T) {
	src := "int main(void) { return 0; }"
	tu := mustParse(t, src)
	f := tu.Funcs[0]
	if got := tu.File.Slice(f.Extent()); got != src {
		t.Fatalf("func extent: got %q", got)
	}
	ret := f.Body.Items[0].(*cast.ReturnStmt)
	if got := tu.File.Slice(ret.Extent()); got != "return 0;" {
		t.Fatalf("return extent: got %q", got)
	}
}

func TestParseCommentsIgnored(t *testing.T) {
	src := `
// line comment
int /* inline */ x; /* trailing */
/* block
   spanning */
int y;
`
	tu := mustParse(t, src)
	if len(tu.Decls) != 2 {
		t.Fatalf("decls: got %d, want 2", len(tu.Decls))
	}
}

func TestParseVariadicFunction(t *testing.T) {
	tu := mustParse(t, "int my_printf(const char *fmt, ...);")
	vd := tu.Decls[0].(*cast.VarDecl)
	ft := ctype.Unqualify(vd.Type).(*ctype.Func)
	if !ft.Variadic {
		t.Fatal("expected variadic function type")
	}
}

func TestParseForWithDecl(t *testing.T) {
	tu := mustParse(t, "void f(void){ for (int i = 0; i < 4; i++) {} }")
	fs := tu.Funcs[0].Body.Items[0].(*cast.ForStmt)
	ds, ok := fs.Init.(*cast.DeclStmt)
	if !ok {
		t.Fatalf("expected DeclStmt init, got %T", fs.Init)
	}
	if len(ds.Decls) != 1 || ds.Decls[0].Name != "i" {
		t.Fatal("for-decl not parsed")
	}
}

func TestParseTernaryWithAllocation(t *testing.T) {
	// The SLR failure case: ternary with heap allocation in both branches.
	src := `
void f(int c) {
    char *p = c ? malloc(10) : malloc(20);
    strcpy(p, "x");
}
`
	mustParse(t, src)
}

func TestParseCastVsCall(t *testing.T) {
	// (f)(x) is a call when f is not a type; (T)(x) is a cast when T is a
	// typedef name.
	src := `
typedef int myint;
int f(int v);
void g(void) {
    int a = (f)(1);
    int b = (myint)(2);
}
`
	tu := mustParse(t, src)
	body := tu.FuncNamed("g").Body
	a := body.Items[0].(*cast.DeclStmt).Decls[0].Init
	if _, ok := cast.Unparen(a).(*cast.CallExpr); !ok {
		t.Fatalf("(f)(1) should parse as a call, got %T", a)
	}
	b := body.Items[1].(*cast.DeclStmt).Decls[0].Init
	if _, ok := cast.Unparen(b).(*cast.CastExpr); !ok {
		t.Fatalf("(myint)(2) should parse as a cast, got %T", b)
	}
}
