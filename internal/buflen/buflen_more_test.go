package buflen

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/typecheck"
)

func TestAddrOfWholeArray(t *testing.T) {
	wantSize(t, `
void f(void) {
    char buf[24];
    memcpy(&buf, "x", 1);
}
`, "memcpy", "sizeof(buf)")
}

func TestAddrOfStructArrayMember(t *testing.T) {
	wantSize(t, `
struct rec { char name[16]; };
void f(void) {
    struct rec r;
    strcpy(&r.name, "x");
}
`, "strcpy", "sizeof(r.name)")
}

func TestConstIndexWithArithmetic(t *testing.T) {
	// &buf[2*4] reduces through constant folding.
	wantSize(t, `
void f(void) {
    char buf[32];
    strcpy(&buf[2 * 4], "x");
}
`, "strcpy", "sizeof(buf) - 8")
}

func TestEnumConstantIndex(t *testing.T) {
	wantSize(t, `
enum { OFFSET = 3 };
void f(void) {
    char buf[16];
    strcpy(&buf[OFFSET], "x");
}
`, "strcpy", "sizeof(buf) - 3")
}

func TestCharLiteralAdjustment(t *testing.T) {
	// Constant folding handles char constants in pointer arithmetic.
	wantSize(t, `
void f(void) {
    char buf[100];
    char *p = buf;
    strcpy(p + 'A' - 'A' + 2, "x");
}
`, "strcpy", "sizeof(buf) - 2")
}

func TestNumericOnLeftOfPlus(t *testing.T) {
	wantSize(t, `
void f(void) {
    char buf[10];
    strcpy(2 + buf, "x");
}
`, "strcpy", "sizeof(buf) - 2")
}

func TestCompoundSubDefinition(t *testing.T) {
	wantSize(t, `
void f(void) {
    char buf[20];
    char *p = buf;
    p += 8;
    p -= 3;
    strcpy(p, "x");
}
`, "strcpy", "sizeof(buf) - 5")
}

func TestFailNonConstantArithmetic(t *testing.T) {
	wantFail(t, `
void f(int n) {
    char buf[10];
    char *p = buf;
    strcpy(p + n, "x");
}
`, "strcpy", FailUnsupportedForm)
}

func TestFailCompoundAssignNonConst(t *testing.T) {
	wantFail(t, `
void f(int n) {
    char buf[10];
    char *p = buf;
    p += n;
    strcpy(p, "x");
}
`, "strcpy", FailUnsupportedForm)
}

func TestFailMulDestination(t *testing.T) {
	wantFail(t, `
void f(int n) {
    char buf[10];
    strcpy(buf * 1, "x");
}
`, "strcpy", FailUnsupportedForm)
}

func TestFailDerefDestination(t *testing.T) {
	wantFail(t, `
void f(void) {
    char buf[10];
    char *p = buf;
    strcpy(*p, "x");
}
`, "strcpy", FailUnsupportedForm)
}

func TestTernaryOnlyOneAllocation(t *testing.T) {
	// Only one branch allocates: class is "conditional value", not the
	// double-allocation class.
	wantFail(t, `
void f(int c, char *other) {
    char *p;
    p = c ? malloc(10) : other;
    strcpy(p, "x");
}
`, "strcpy", FailUnsupportedForm)
}

func TestAssignmentExprDestination(t *testing.T) {
	// Lines 2-4: the destination is itself an assignment expression.
	wantSize(t, `
void f(void) {
    char buf[12];
    char *p;
    strcpy(p = buf, "x");
}
`, "strcpy", "sizeof(buf)")
}

func TestPostfixIncDestination(t *testing.T) {
	// strcpy(p++, ...) writes starting at the pre-increment value.
	wantSize(t, `
void f(void) {
    char buf[12];
    char *p = buf;
    strcpy(p++, "x");
}
`, "strcpy", "sizeof(buf)")
}

func TestDepthLimitTerminates(t *testing.T) {
	// A long definition chain must terminate (depth bound) rather than
	// hang; the chain is deliberately longer than _maxDepth.
	src := "void f(void) {\n    char buf[10];\n    char *p0 = buf;\n"
	for i := 1; i <= 40; i++ {
		src += "    char *p" + itoa(i) + " = p" + itoa(i-1) + ";\n"
	}
	src += "    strcpy(p40, \"x\");\n}\n"
	a, fn, dest := destOfFirst(t, src, "strcpy")
	_, fail := a.BufferLength(fn, dest)
	if fail == nil {
		t.Fatal("deep chains are aliased or depth-limited; either way they fail")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [4]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestAliasesAccessor(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
void f(void) {
    char buf[4];
    char *p = buf;
    char *q = buf;
    strcpy(p, "x");
}
`)
	if err != nil {
		t.Fatal(err)
	}
	typecheck.Check(tu)
	a := NewAnalyzer(tu)
	var p *cast.Symbol
	for _, s := range tu.Symbols {
		if s.Name == "p" {
			p = s
		}
	}
	if !a.Aliases().IsAliased(p) {
		t.Fatal("Aliases() must expose the alias oracle")
	}
}

func TestSizeofInArraysViaConstInt(t *testing.T) {
	// constIntOf resolves sizeof of complete types for index folding.
	wantSize(t, `
void f(void) {
    char buf[64];
    strcpy(&buf[sizeof(int)], "x");
}
`, "strcpy", "sizeof(buf) - 4")
}
