package analysis

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
)

// Fault is a test-only injected failure, keyed by filename and fired
// when ParseCtx processes that file. It exists so every containment
// path of the batch pipeline — panic isolation, deadline cut-off,
// budget degradation — can be exercised deterministically, including
// under the race detector. Production code never registers faults, and
// the hook costs one atomic load per parse while the registry is empty.
type Fault struct {
	// Panic makes the parse panic with a distinctive value, simulating
	// a crash inside the per-file unit of work.
	Panic bool
	// Delay blocks the parse for the given duration, simulating a
	// stalled solver. The wait is context-aware: a deadline or
	// cancellation interrupts it through the fault sentinel, exactly
	// like a real solver iteration would be interrupted.
	Delay time.Duration
	// Budget, when > 0, overrides the snapshot's step and context
	// budgets, simulating budget exhaustion (1 exhausts almost any
	// solve).
	Budget int
	// Skip lets this many ParseCtx calls for the file through before
	// firing — e.g. Skip: 1 spares the SLR parse and hits STR's
	// re-parse, exercising the partial-result path.
	Skip int
}

var (
	injectActive atomic.Int32
	injectMu     sync.Mutex
	injected     map[string]*injectedFault
)

type injectedFault struct {
	fault Fault
	seen  int
}

// InjectFault registers a test-only fault for filename and returns a
// function that removes it. Safe for concurrent use.
func InjectFault(filename string, f Fault) (remove func()) {
	injectMu.Lock()
	if injected == nil {
		injected = make(map[string]*injectedFault)
	}
	injected[filename] = &injectedFault{fault: f}
	injectMu.Unlock()
	injectActive.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			injectMu.Lock()
			delete(injected, filename)
			injectMu.Unlock()
			injectActive.Add(-1)
		})
	}
}

// applyInjectedFault fires a registered fault for filename, if any.
// Called by ParseCtx before parsing.
func applyInjectedFault(ctx context.Context, filename string, conf *Config) {
	if injectActive.Load() == 0 {
		return
	}
	injectMu.Lock()
	inj := injected[filename]
	var f Fault
	fire := false
	if inj != nil {
		fire = inj.seen >= inj.fault.Skip
		inj.seen++
		f = inj.fault
	}
	injectMu.Unlock()
	if !fire {
		return
	}
	if f.Delay > 0 {
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case <-t.C:
		case <-done:
			fault.CheckCtx(ctx) // panics with the cancellation sentinel
		}
	}
	if f.Budget > 0 {
		conf.Limits.Steps = f.Budget
		conf.Limits.Contexts = f.Budget
	}
	if f.Panic {
		panic(fmt.Sprintf("injected fault: %s", filename))
	}
}
