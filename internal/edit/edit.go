// Package edit models source modifications as position-stable deltas:
// insertions, deletions and replacements expressed against the byte
// offsets of one fixed original text. Because every delta is anchored in
// original coordinates, a producer never tracks offset drift — deltas
// collected in any order are sorted, validated against the original
// length, and spliced in one pass.
//
// The package is the single home of the splice and offset-remapping
// arithmetic: internal/rewrite (the transformation rewriter) delegates
// its extent splicing here, and internal/incremental consumes Script,
// Compose and Mapper to model editor traffic (LSP didChange batches)
// against live analysis sessions. It sits at the leaf of the dependency
// graph and imports only internal/ctoken.
package edit

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ctoken"
)

// Delta is one insertion, deletion or replacement against the original
// text. The extent is a half-open byte range in original coordinates; a
// zero-length extent inserts Text at Extent.Pos, an empty Text deletes
// the extent, and the general form replaces the extent's bytes with
// Text.
type Delta struct {
	Extent ctoken.Extent
	Text   string
}

// Insert builds a pure insertion at pos.
func Insert(pos ctoken.Pos, text string) Delta {
	return Delta{Extent: ctoken.Extent{Pos: pos, End: pos}, Text: text}
}

// Delete builds a pure deletion of ext.
func Delete(ext ctoken.Extent) Delta {
	return Delta{Extent: ext}
}

// Replace builds a replacement of ext with text.
func Replace(ext ctoken.Extent, text string) Delta {
	return Delta{Extent: ext, Text: text}
}

// IsInsert reports a zero-width delta.
func (d Delta) IsInsert() bool { return d.Extent.Len() == 0 }

// Shift returns the length change the delta contributes.
func (d Delta) Shift() int { return len(d.Text) - d.Extent.Len() }

// String renders the delta compactly for logs and error messages.
func (d Delta) String() string {
	switch {
	case d.IsInsert():
		return fmt.Sprintf("insert %q at %d", clip(d.Text), d.Extent.Pos)
	case d.Text == "":
		return fmt.Sprintf("delete [%d,%d)", d.Extent.Pos, d.Extent.End)
	default:
		return fmt.Sprintf("replace [%d,%d) with %q", d.Extent.Pos, d.Extent.End, clip(d.Text))
	}
}

func clip(s string) string {
	if len(s) > 24 {
		return s[:24] + "…"
	}
	return s
}

// BoundsError reports a delta that does not fit the original text. Index
// is the delta's position in the sorted order that was being applied.
type BoundsError struct {
	Index  int
	Delta  Delta
	SrcLen int
}

func (e *BoundsError) Error() string {
	return fmt.Sprintf("edit: delta %d (%s) has invalid extent [%d,%d) for source of %d bytes",
		e.Index, e.Delta, e.Delta.Extent.Pos, e.Delta.Extent.End, e.SrcLen)
}

// OverlapError reports two deltas that claim the same original bytes.
// Index is the later delta's position in the sorted order.
type OverlapError struct {
	Index int
	Delta Delta
	At    ctoken.Pos
}

func (e *OverlapError) Error() string {
	return fmt.Sprintf("edit: delta %d (%s) overlaps a previous delta at offset %d",
		e.Index, e.Delta, e.At)
}

// Sort orders deltas by start position, then end position, stably, so
// same-position insertions keep their queue order and an insertion at a
// replaced span's start lands before the replacement. It sorts in place
// and returns its argument for chaining.
func Sort(deltas []Delta) []Delta {
	sort.SliceStable(deltas, func(i, j int) bool {
		if deltas[i].Extent.Pos != deltas[j].Extent.Pos {
			return deltas[i].Extent.Pos < deltas[j].Extent.Pos
		}
		return deltas[i].Extent.End < deltas[j].Extent.End
	})
	return deltas
}

// Validate checks deltas against a source length: every extent must be
// valid and in bounds, and no two deltas may claim the same original
// byte. Multiple insertions at one position are legal and apply in queue
// order. The slice is not modified.
func Validate(srcLen int, deltas []Delta) error {
	return validateSorted(srcLen, Sort(append([]Delta(nil), deltas...)))
}

// validateSorted is Validate over already-sorted deltas.
func validateSorted(srcLen int, deltas []Delta) error {
	cursor := ctoken.Pos(0)
	for i, d := range deltas {
		if !d.Extent.IsValid() || int(d.Extent.End) > srcLen {
			return &BoundsError{Index: i, Delta: d, SrcLen: srcLen}
		}
		if d.Extent.Pos < cursor {
			return &OverlapError{Index: i, Delta: d, At: d.Extent.Pos}
		}
		if d.Extent.End > cursor {
			cursor = d.Extent.End
		}
	}
	return nil
}

// Splice applies sorted deltas to src in one pass, re-checking bounds
// and overlap as it goes. It is the single splice implementation shared
// by this package and internal/rewrite; callers sort first (Sort).
func Splice(src string, deltas []Delta) (string, error) {
	var sb strings.Builder
	grow := len(src)
	for _, d := range deltas {
		grow += len(d.Text)
	}
	sb.Grow(grow)
	cursor := 0
	for i, d := range deltas {
		if !d.Extent.IsValid() || int(d.Extent.End) > len(src) {
			return "", &BoundsError{Index: i, Delta: d, SrcLen: len(src)}
		}
		if int(d.Extent.Pos) < cursor {
			return "", &OverlapError{Index: i, Delta: d, At: d.Extent.Pos}
		}
		sb.WriteString(src[cursor:d.Extent.Pos])
		sb.WriteString(d.Text)
		cursor = int(d.Extent.End)
	}
	sb.WriteString(src[cursor:])
	return sb.String(), nil
}

// Script is an ordered batch of deltas against one original text.
type Script struct {
	deltas []Delta
}

// NewScript builds a script from deltas. The deltas are copied and kept
// in arrival order; sorting happens at application time so queue order
// of same-position inserts survives.
func NewScript(deltas ...Delta) *Script {
	return &Script{deltas: append([]Delta(nil), deltas...)}
}

// Add appends a delta and returns the script for chaining.
func (s *Script) Add(d Delta) *Script {
	s.deltas = append(s.deltas, d)
	return s
}

// Len returns the number of deltas.
func (s *Script) Len() int { return len(s.deltas) }

// Deltas returns a sorted copy of the script's deltas.
func (s *Script) Deltas() []Delta {
	return Sort(append([]Delta(nil), s.deltas...))
}

// Validate checks the script against a source length.
func (s *Script) Validate(srcLen int) error {
	return Validate(srcLen, s.deltas)
}

// Apply validates the script against src and splices the new text.
func (s *Script) Apply(src string) (string, error) {
	sorted := s.Deltas()
	if err := validateSorted(len(src), sorted); err != nil {
		return "", err
	}
	return Splice(src, sorted)
}

// NewLen returns the length of the text the script produces from a
// source of srcLen bytes.
func (s *Script) NewLen(srcLen int) int {
	n := srcLen
	for _, d := range s.deltas {
		n += d.Shift()
	}
	return n
}

// piece is one run of the edited text: either a retained span of the
// original (ins false) or synthetic text introduced by a delta (ins
// true). A piece table — retained spans always in increasing original
// order — is how Compose reasons about an applied script.
type piece struct {
	orig ctoken.Extent // retained original span (ins false)
	text string        // synthetic text (ins true)
	ins  bool
}

func (p piece) len() int {
	if p.ins {
		return len(p.text)
	}
	return p.orig.Len()
}

// pieceTable materializes the output of sorted deltas over a source of
// srcLen bytes as a piece sequence.
func pieceTable(srcLen int, deltas []Delta) []piece {
	var pieces []piece
	cursor := ctoken.Pos(0)
	for _, d := range deltas {
		if d.Extent.Pos > cursor {
			pieces = append(pieces, piece{orig: ctoken.Extent{Pos: cursor, End: d.Extent.Pos}})
		}
		if d.Text != "" {
			pieces = append(pieces, piece{text: d.Text, ins: true})
		}
		if d.Extent.End > cursor {
			cursor = d.Extent.End
		}
	}
	if int(cursor) < srcLen {
		pieces = append(pieces, piece{orig: ctoken.Extent{Pos: cursor, End: ctoken.Pos(srcLen)}})
	}
	return pieces
}

// splitAt splits the piece sequence so that output offset p (relative to
// the concatenation of pieces) is a piece boundary, and returns the new
// sequence plus the index of the piece starting at p (len(pieces) when p
// is the total length).
func splitAt(pieces []piece, p int) ([]piece, int) {
	off := 0
	for i := 0; i < len(pieces); i++ {
		if off == p {
			return pieces, i
		}
		n := pieces[i].len()
		if off+n <= p {
			off += n
			continue
		}
		// p falls strictly inside piece i: split it.
		k := p - off
		pc := pieces[i]
		var left, right piece
		if pc.ins {
			left = piece{text: pc.text[:k], ins: true}
			right = piece{text: pc.text[k:], ins: true}
		} else {
			mid := pc.orig.Pos + ctoken.Pos(k)
			left = piece{orig: ctoken.Extent{Pos: pc.orig.Pos, End: mid}}
			right = piece{orig: ctoken.Extent{Pos: mid, End: pc.orig.End}}
		}
		out := make([]piece, 0, len(pieces)+1)
		out = append(out, pieces[:i]...)
		out = append(out, left, right)
		out = append(out, pieces[i+1:]...)
		return out, i + 1
	}
	return pieces, len(pieces)
}

// Compose folds two sequential scripts into one: first rewrites the
// original text, second rewrites first's output, and the returned script
// applied to the original text produces exactly second's output. srcLen
// is the original text's length. Composition is how a batch of editor
// changes — each expressed against the document state its predecessor
// produced, as LSP didChange content changes are — becomes a single
// original-coordinate script and hence a single re-analysis.
func Compose(srcLen int, first, second *Script) (*Script, error) {
	fs := first.Deltas()
	if err := validateSorted(srcLen, fs); err != nil {
		return nil, fmt.Errorf("compose: first script: %w", err)
	}
	ss := second.Deltas()
	if err := validateSorted(first.NewLen(srcLen), ss); err != nil {
		return nil, fmt.Errorf("compose: second script: %w", err)
	}

	// Build first's output as a piece table, then apply second's deltas
	// to the table: split at each delta's boundaries, drop the covered
	// pieces, and put the delta's text in their place. Walking
	// back-to-front keeps earlier deltas' mid-text offsets stable.
	pieces := pieceTable(srcLen, fs)
	for i := len(ss) - 1; i >= 0; i-- {
		d := ss[i]
		var lo, hi int
		pieces, lo = splitAt(pieces, int(d.Extent.Pos))
		// Find hi by consuming the deleted length from lo, splitting the
		// final piece if the boundary lands inside it.
		rem := d.Extent.Len()
		hi = lo
		for rem > 0 {
			n := pieces[hi].len()
			if n <= rem {
				rem -= n
				hi++
				continue
			}
			pieces, _ = splitAt(pieces, int(d.Extent.Pos)+d.Extent.Len())
			// The split inserted one boundary exactly at the target; the
			// pieces [lo,hi] now end there after hi advances once more.
			hi++
			rem = 0
		}
		var repl []piece
		if d.Text != "" {
			repl = []piece{{text: d.Text, ins: true}}
		}
		tail := make([]piece, 0, len(repl)+len(pieces)-hi)
		tail = append(tail, repl...)
		tail = append(tail, pieces[hi:]...)
		pieces = append(pieces[:lo], tail...)
	}

	// Read the composed deltas off the final piece table: retained
	// original spans appear in increasing order; everything between two
	// consecutive retained spans (dropped original bytes plus synthetic
	// text) is one replacement.
	out := NewScript()
	cursor := ctoken.Pos(0)
	var pending strings.Builder
	flush := func(upto ctoken.Pos) {
		if pending.Len() > 0 || upto > cursor {
			out.Add(Delta{Extent: ctoken.Extent{Pos: cursor, End: upto}, Text: pending.String()})
			pending.Reset()
		}
		cursor = upto
	}
	for _, pc := range pieces {
		if pc.ins {
			pending.WriteString(pc.text)
			continue
		}
		flush(pc.orig.Pos)
		cursor = pc.orig.End
	}
	flush(ctoken.Pos(srcLen))
	return out, nil
}

// Mapper remaps byte offsets across one applied script: OldToNew carries
// positions of the original text into the edited text, NewToOld inverts.
// Positions inside a replaced or deleted span collapse to the span's
// (new) start; positions inside inserted text map back to the insertion
// point. This is the one offset-remapping implementation in the tree —
// consumers that need to know whether a range survived an edit intact
// use MapExtent, which additionally reports whether any delta touched
// the range.
type Mapper struct {
	deltas []Delta // sorted
}

// NewMapper builds a mapper for the script. The script must be valid for
// the text it was applied to; Mapper does not re-validate.
func NewMapper(s *Script) *Mapper {
	return &Mapper{deltas: s.Deltas()}
}

// mapPos maps an original position forward. With right affinity an
// insertion exactly at p shifts p past the inserted text; with left
// affinity it does not.
func (m *Mapper) mapPos(p ctoken.Pos, right bool) ctoken.Pos {
	shift := 0
	for _, d := range m.deltas {
		if d.Extent.Pos > p {
			break
		}
		if d.Extent.Pos == p && !(right && d.IsInsert()) {
			break
		}
		if !d.IsInsert() && d.Extent.End > p {
			// p lies inside a replaced/deleted span: collapse to the
			// span's new start.
			return ctoken.Pos(int(d.Extent.Pos) + shift)
		}
		shift += d.Shift()
	}
	return ctoken.Pos(int(p) + shift)
}

// OldToNew maps a position in the original text to the edited text with
// right affinity: an insertion exactly at the position lands before it.
func (m *Mapper) OldToNew(p ctoken.Pos) ctoken.Pos { return m.mapPos(p, true) }

// NewToOld maps a position in the edited text back to the original.
// Positions inside inserted or replacement text map to the delta's
// original start.
func (m *Mapper) NewToOld(p ctoken.Pos) ctoken.Pos {
	shift := 0 // running new-minus-old offset before the current delta
	for _, d := range m.deltas {
		newStart := int(d.Extent.Pos) + shift
		if ctoken.Pos(newStart) > p {
			break
		}
		newEnd := newStart + len(d.Text)
		if int(p) < newEnd {
			return d.Extent.Pos
		}
		shift += d.Shift()
	}
	return ctoken.Pos(int(p) - shift)
}

// MapExtent maps an original-coordinate extent into the edited text.
// The boolean reports exactness: true when no delta landed inside the
// extent, so the mapped extent covers byte-for-byte the same content;
// false when the extent was touched and the result is the collapsed
// approximation. Insertions exactly at either endpoint leave the extent
// exact: the mapped start uses right affinity and the mapped end left
// affinity, so endpoint insertions fall outside the mapped range.
func (m *Mapper) MapExtent(e ctoken.Extent) (ctoken.Extent, bool) {
	exact := true
	for _, d := range m.deltas {
		if d.Extent.Pos >= e.End {
			break
		}
		switch {
		case d.IsInsert():
			if d.Extent.Pos > e.Pos && d.Extent.Pos < e.End {
				exact = false
			}
		case d.Extent.Overlaps(e):
			exact = false
		}
	}
	mapped := ctoken.Extent{Pos: m.mapPos(e.Pos, true), End: m.mapPos(e.End, false)}
	if mapped.End < mapped.Pos {
		// A zero-width extent sitting exactly on an insertion point:
		// collapse consistently to the left-affinity position.
		mapped.Pos = mapped.End
	}
	return mapped, exact
}

// Minimize shrinks each delta to the bytes it actually changes against
// src, by trimming the common prefix and suffix between the replaced
// span and the replacement text, and drops deltas that change nothing.
// Out-of-bounds deltas pass through untouched so Validate can report
// them.
//
// Minimizing never changes what Apply produces; it changes what the
// Mapper considers touched. A client that re-sends a whole span (or the
// whole file) with a one-byte change would otherwise report every
// retained extent inside the span as edited, defeating incremental
// reuse — and, worse, a replace that covers bytes without changing them
// collapses extents that a fresh parse would keep, so downstream
// consumers that trust exact remaps (overflow.Memo) rely on scripts
// being minimized first.
func Minimize(src string, deltas []Delta) []Delta {
	out := make([]Delta, 0, len(deltas))
	for _, d := range deltas {
		if d.Extent.Pos < 0 || d.Extent.End < d.Extent.Pos || int(d.Extent.End) > len(src) {
			out = append(out, d)
			continue
		}
		old := src[d.Extent.Pos:d.Extent.End]
		rep := d.Text
		p := 0
		for p < len(old) && p < len(rep) && old[p] == rep[p] {
			p++
		}
		sfx := 0
		for sfx < len(old)-p && sfx < len(rep)-p && old[len(old)-1-sfx] == rep[len(rep)-1-sfx] {
			sfx++
		}
		if p == len(old) && p == len(rep) {
			continue // pure no-op
		}
		out = append(out, Delta{
			Extent: ctoken.Extent{Pos: d.Extent.Pos + ctoken.Pos(p), End: d.Extent.End - ctoken.Pos(sfx)},
			Text:   rep[p : len(rep)-sfx],
		})
	}
	return out
}
