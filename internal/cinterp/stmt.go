package cinterp

import (
	"fmt"

	"repro/internal/cast"
	"repro/internal/ctoken"
	"repro/internal/ctype"
)

// call executes a defined function with the given argument values.
func (in *Interp) call(fn *cast.FuncDef, args []Value, at ctoken.Extent) (Value, error) {
	if len(in.frames) >= in.limits.MaxFrames {
		return Value{}, fmt.Errorf("cinterp: call depth limit at %s", in.unit.File.Position(at.Pos))
	}
	fr := &frame{fn: fn, vars: make(map[*cast.Symbol]*Object, 8)}
	// Bind parameters by value.
	for i, p := range fn.Params {
		if p.Sym == nil {
			continue
		}
		size := p.Type.Size()
		if size < 0 {
			size = 8
		}
		obj := in.newObject(p.Name, ObjStack, size)
		fr.vars[p.Sym] = obj
		if i < len(args) {
			in.storeTyped(Pointer{Obj: obj}, p.Type, args[i], at)
		}
	}
	in.frames = append(in.frames, fr)
	fl, err := in.execStmt(fn.Body)
	// Stack objects die with the frame; dangling pointers become
	// use-after-free events.
	for _, obj := range fr.vars {
		obj.Dead = true
	}
	in.frames = in.frames[:len(in.frames)-1]
	if err != nil {
		return Value{}, err
	}
	if fl.c == ctrlGoto {
		return Value{}, fmt.Errorf("cinterp: unresolved goto %q in %s", fl.label, fn.Name)
	}
	return fr.retVal, nil
}

func (in *Interp) curFrame() *frame { return in.frames[len(in.frames)-1] }

// declareLocal allocates a local variable object.
func (in *Interp) declareLocal(d *cast.VarDecl) (*Object, error) {
	size := d.Type.Size()
	if size < 0 {
		size = 8
	}
	obj := in.newObject(d.Name, ObjStack, size)
	in.curFrame().vars[d.Sym] = obj
	if d.Init != nil {
		if err := in.initObject(obj, d.Type, d.Init); err != nil {
			return nil, err
		}
	}
	return obj, nil
}

// execStmt runs one statement, returning its control disposition.
func (in *Interp) execStmt(s cast.Stmt) (flow, error) {
	if s == nil {
		return _flowNormal, nil
	}
	if err := in.step(); err != nil {
		return _flowNormal, err
	}
	switch x := s.(type) {
	case *cast.CompoundStmt:
		return in.execBlock(x)

	case *cast.DeclStmt:
		for _, d := range x.Decls {
			if d.Sym == nil {
				continue
			}
			if _, err := in.declareLocal(d); err != nil {
				return _flowNormal, err
			}
		}
		return _flowNormal, nil

	case *cast.ExprStmt:
		_, err := in.evalExpr(x.X)
		return _flowNormal, err

	case *cast.NullStmt:
		return _flowNormal, nil

	case *cast.ReturnStmt:
		if x.Result != nil {
			v, err := in.evalExpr(x.Result)
			if err != nil {
				return _flowNormal, err
			}
			in.curFrame().retVal = v
		}
		return flow{c: ctrlReturn}, nil

	case *cast.IfStmt:
		cond, err := in.evalExpr(x.Cond)
		if err != nil {
			return _flowNormal, err
		}
		if cond.AsBool() {
			return in.execStmt(x.Then)
		}
		if x.Else != nil {
			return in.execStmt(x.Else)
		}
		return _flowNormal, nil

	case *cast.WhileStmt:
		for {
			cond, err := in.evalExpr(x.Cond)
			if err != nil {
				return _flowNormal, err
			}
			if !cond.AsBool() {
				return _flowNormal, nil
			}
			fl, err := in.execStmt(x.Body)
			if err != nil {
				return _flowNormal, err
			}
			switch fl.c {
			case ctrlBreak:
				return _flowNormal, nil
			case ctrlReturn, ctrlGoto:
				return fl, nil
			}
		}

	case *cast.DoWhileStmt:
		for {
			fl, err := in.execStmt(x.Body)
			if err != nil {
				return _flowNormal, err
			}
			switch fl.c {
			case ctrlBreak:
				return _flowNormal, nil
			case ctrlReturn, ctrlGoto:
				return fl, nil
			}
			cond, err := in.evalExpr(x.Cond)
			if err != nil {
				return _flowNormal, err
			}
			if !cond.AsBool() {
				return _flowNormal, nil
			}
		}

	case *cast.ForStmt:
		if x.Init != nil {
			if _, err := in.execStmt(x.Init); err != nil {
				return _flowNormal, err
			}
		}
		for {
			if x.Cond != nil {
				cond, err := in.evalExpr(x.Cond)
				if err != nil {
					return _flowNormal, err
				}
				if !cond.AsBool() {
					return _flowNormal, nil
				}
			}
			fl, err := in.execStmt(x.Body)
			if err != nil {
				return _flowNormal, err
			}
			switch fl.c {
			case ctrlBreak:
				return _flowNormal, nil
			case ctrlReturn, ctrlGoto:
				return fl, nil
			}
			if x.Post != nil {
				if _, err := in.evalExpr(x.Post); err != nil {
					return _flowNormal, err
				}
			}
		}

	case *cast.BreakStmt:
		return flow{c: ctrlBreak}, nil

	case *cast.ContinueStmt:
		return flow{c: ctrlContinue}, nil

	case *cast.GotoStmt:
		return flow{c: ctrlGoto, label: x.Label}, nil

	case *cast.LabeledStmt:
		return in.execStmt(x.Stmt)

	case *cast.SwitchStmt:
		return in.execSwitch(x)

	case *cast.CaseStmt:
		return in.execStmt(x.Stmt)

	default:
		return _flowNormal, fmt.Errorf("cinterp: unsupported statement %T", s)
	}
}

// execBlock runs a compound statement, resolving gotos whose labels live
// in this block (directly or nested under labeled statements at this
// level).
func (in *Interp) execBlock(b *cast.CompoundStmt) (flow, error) {
	i := 0
	for i < len(b.Items) {
		fl, err := in.execStmt(b.Items[i])
		if err != nil {
			return _flowNormal, err
		}
		switch fl.c {
		case ctrlNormal:
			i++
		case ctrlGoto:
			if idx, ok := findLabel(b.Items, fl.label); ok {
				i = idx
				continue
			}
			return fl, nil // propagate to an outer block
		default:
			return fl, nil
		}
	}
	return _flowNormal, nil
}

// findLabel locates the index of the item carrying the given label.
func findLabel(items []cast.Stmt, label string) (int, bool) {
	for i, s := range items {
		if ls, ok := s.(*cast.LabeledStmt); ok && ls.Label == label {
			return i, true
		}
	}
	return 0, false
}

// execSwitch evaluates the tag and runs the matching case with C
// fallthrough semantics.
func (in *Interp) execSwitch(sw *cast.SwitchStmt) (flow, error) {
	tag, err := in.evalExpr(sw.Tag)
	if err != nil {
		return _flowNormal, err
	}
	body, ok := sw.Body.(*cast.CompoundStmt)
	if !ok {
		return _flowNormal, nil
	}
	// Find the matching case (or default).
	start := -1
	defaultIdx := -1
	for i, item := range body.Items {
		cs, ok := item.(*cast.CaseStmt)
		if !ok {
			continue
		}
		if cs.Value == nil {
			defaultIdx = i
			continue
		}
		v, err := in.evalExpr(cs.Value)
		if err != nil {
			return _flowNormal, err
		}
		if v.AsInt() == tag.AsInt() {
			start = i
			break
		}
	}
	if start < 0 {
		start = defaultIdx
	}
	if start < 0 {
		return _flowNormal, nil
	}
	for i := start; i < len(body.Items); i++ {
		fl, err := in.execStmt(body.Items[i])
		if err != nil {
			return _flowNormal, err
		}
		switch fl.c {
		case ctrlBreak:
			return _flowNormal, nil
		case ctrlReturn, ctrlContinue, ctrlGoto:
			return fl, nil
		}
	}
	return _flowNormal, nil
}

// lookupVar finds the object backing a symbol (innermost frame first,
// then globals).
func (in *Interp) lookupVar(sym *cast.Symbol) (*Object, bool) {
	if len(in.frames) > 0 {
		if obj, ok := in.curFrame().vars[sym]; ok {
			return obj, true
		}
	}
	obj, ok := in.globals[sym]
	return obj, ok
}

// objectFor returns (allocating lazily for globals declared without
// reaching initGlobals, e.g. builtins like stdin) the object for a symbol.
func (in *Interp) objectFor(sym *cast.Symbol) *Object {
	if obj, ok := in.lookupVar(sym); ok {
		return obj
	}
	size := 8
	if sym.Type != nil && sym.Type.Size() > 0 {
		size = sym.Type.Size()
	}
	obj := in.newObject(sym.Name, ObjGlobal, size)
	in.globals[sym] = obj
	return obj
}

// sizeOfType returns the size for sizeof evaluation.
func sizeOfType(t ctype.Type) int64 {
	if t == nil {
		return 0
	}
	if s := t.Size(); s >= 0 {
		return int64(s)
	}
	return 8
}
