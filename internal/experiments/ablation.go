package experiments

import (
	"fmt"
	"strings"

	"repro/internal/buflen"
	"repro/internal/corpus"
	"repro/internal/cparse"
	"repro/internal/pointsto"
	"repro/internal/slr"
)

// AliasPrecisionResult compares SLR applicability under the paper's
// aggregate struct model against the field-sensitive ablation — the
// precision/overhead trade-off the paper discusses in Section IV-B:
// "Our alias analysis can be made more precise, but that adds to the
// runtime overhead of the transformations. In practice, this was
// happening in only one case and could be ignored."
type AliasPrecisionResult struct {
	AggregateTransformed int
	AggregateAliasFails  int
	FieldSensTransformed int
	FieldSensAliasFails  int
	Total                int
}

// RunAliasPrecisionAblation runs SLR over the corpus twice.
func RunAliasPrecisionAblation() (*AliasPrecisionResult, error) {
	res := &AliasPrecisionResult{}
	runMode := func(opts pointsto.Options) (transformed, aliasFails, total int, err error) {
		for _, p := range corpus.Generate(0) {
			for _, f := range p.Files {
				unit, err := cparse.Parse(f.Name, f.Source)
				if err != nil {
					return 0, 0, 0, fmt.Errorf("experiments: parse %s: %w", f.Name, err)
				}
				out, err := slr.NewTransformerOpts(unit, opts).ApplyAll()
				if err != nil {
					return 0, 0, 0, fmt.Errorf("experiments: SLR %s: %w", f.Name, err)
				}
				for _, s := range out.Sites {
					total++
					if s.Applied {
						transformed++
					} else if s.Failure != nil && s.Failure.Reason == buflen.FailAliased {
						aliasFails++
					}
				}
			}
		}
		return transformed, aliasFails, total, nil
	}
	var err error
	res.AggregateTransformed, res.AggregateAliasFails, res.Total, err = runMode(pointsto.Options{})
	if err != nil {
		return nil, err
	}
	res.FieldSensTransformed, res.FieldSensAliasFails, _, err = runMode(pointsto.Options{FieldSensitive: true})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// FormatAliasPrecision renders the ablation.
func FormatAliasPrecision(r *AliasPrecisionResult) string {
	var sb strings.Builder
	sb.WriteString("Ablation: alias precision (aggregate structs vs field-sensitive)\n")
	sb.WriteString(fmt.Sprintf("  %-28s %12s %14s\n", "mode", "transformed", "alias failures"))
	sb.WriteString(fmt.Sprintf("  %-28s %8d/%-3d %14d\n",
		"aggregate (paper default)", r.AggregateTransformed, r.Total, r.AggregateAliasFails))
	sb.WriteString(fmt.Sprintf("  %-28s %8d/%-3d %14d\n",
		"field-sensitive", r.FieldSensTransformed, r.Total, r.FieldSensAliasFails))
	sb.WriteString("\nPaper (Section IV-B): the aggregate model loses exactly one site to a\n")
	sb.WriteString("struct whose *other* member was aliased; more precise aliasing would\n")
	sb.WriteString("recover it at extra analysis cost.\n")
	return sb.String()
}
