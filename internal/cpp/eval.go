package cpp

import (
	"strconv"
	"strings"
)

// evalCond evaluates a #if / #elif controlling expression. Per the
// standard: `defined` is resolved before macro expansion, the rest is
// expanded, remaining identifiers become 0, and the expression is
// evaluated in (here) int64 arithmetic. Any malformation yields false
// with a diagnostic.
func (pp *preprocessor) evalCond(toks []ptok, at ptok) bool {
	if len(toks) == 0 {
		pp.errorAt(at, "#if with no expression")
		return false
	}
	resolved, ok := pp.resolveDefined(toks, at)
	if !ok {
		return false
	}
	ex := pp.expandList(resolved)
	ev := &evaluator{pp: pp, at: at}
	for _, t := range ex {
		if t.kind == tkComment || t.kind == tkNewline || t.kind == tkSplice {
			continue
		}
		ev.toks = append(ev.toks, t)
	}
	v := ev.cond()
	if !ev.failed && ev.i < len(ev.toks) {
		ev.fail("trailing tokens after expression")
	}
	if ev.failed {
		return false
	}
	return v != 0
}

// resolveDefined rewrites `defined X` and `defined(X)` into 1/0 before
// macro expansion touches the operand.
func (pp *preprocessor) resolveDefined(toks []ptok, at ptok) ([]ptok, bool) {
	var out []ptok
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.kind != tkIdent || t.text != "defined" {
			out = append(out, t)
			continue
		}
		var name string
		if i+1 < len(toks) && toks[i+1].kind == tkIdent {
			name = toks[i+1].text
			i++
		} else if i+3 < len(toks) &&
			toks[i+1].kind == tkPunct && toks[i+1].text == "(" &&
			toks[i+2].kind == tkIdent &&
			toks[i+3].kind == tkPunct && toks[i+3].text == ")" {
			name = toks[i+2].text
			i += 3
		} else {
			pp.errorAt(at, "malformed defined operator")
			return nil, false
		}
		val := "0"
		if pp.macros[name] != nil {
			val = "1"
		}
		out = append(out, ptok{kind: tkNum, text: val, pos: -1, end: -1, ws: t.ws})
	}
	return out, true
}

// evaluator is a recursive-descent parser over the expanded expression
// tokens, with C operator precedence.
type evaluator struct {
	pp     *preprocessor
	at     ptok
	toks   []ptok
	i      int
	failed bool
}

func (e *evaluator) fail(msg string) {
	if !e.failed {
		e.failed = true
		e.pp.errorAt(e.at, "#if: "+msg)
	}
}

func (e *evaluator) peek() (ptok, bool) {
	if e.i < len(e.toks) {
		return e.toks[e.i], true
	}
	return ptok{}, false
}

// eatPunct consumes the next token when it is the given punctuator.
func (e *evaluator) eatPunct(texts ...string) (string, bool) {
	t, ok := e.peek()
	if !ok || t.kind != tkPunct {
		return "", false
	}
	for _, s := range texts {
		if t.text == s {
			e.i++
			return s, true
		}
	}
	return "", false
}

// cond := logOr ('?' cond ':' cond)?
func (e *evaluator) cond() int64 {
	c := e.logOr()
	if _, ok := e.eatPunct("?"); !ok {
		return c
	}
	a := e.cond()
	if _, ok := e.eatPunct(":"); !ok {
		e.fail("expected ':' in conditional")
		return 0
	}
	b := e.cond()
	if c != 0 {
		return a
	}
	return b
}

func (e *evaluator) logOr() int64 {
	v := e.logAnd()
	for {
		if _, ok := e.eatPunct("||"); !ok {
			return v
		}
		r := e.logAnd()
		v = boolInt(v != 0 || r != 0)
	}
}

func (e *evaluator) logAnd() int64 {
	v := e.bitOr()
	for {
		if _, ok := e.eatPunct("&&"); !ok {
			return v
		}
		r := e.bitOr()
		v = boolInt(v != 0 && r != 0)
	}
}

func (e *evaluator) bitOr() int64 {
	v := e.bitXor()
	for {
		if _, ok := e.eatPunct("|"); !ok {
			return v
		}
		v |= e.bitXor()
	}
}

func (e *evaluator) bitXor() int64 {
	v := e.bitAnd()
	for {
		if _, ok := e.eatPunct("^"); !ok {
			return v
		}
		v ^= e.bitAnd()
	}
}

func (e *evaluator) bitAnd() int64 {
	v := e.equality()
	for {
		if _, ok := e.eatPunct("&"); !ok {
			return v
		}
		v &= e.equality()
	}
}

func (e *evaluator) equality() int64 {
	v := e.relational()
	for {
		op, ok := e.eatPunct("==", "!=")
		if !ok {
			return v
		}
		r := e.relational()
		if op == "==" {
			v = boolInt(v == r)
		} else {
			v = boolInt(v != r)
		}
	}
}

func (e *evaluator) relational() int64 {
	v := e.shift()
	for {
		op, ok := e.eatPunct("<=", ">=", "<", ">")
		if !ok {
			return v
		}
		r := e.shift()
		switch op {
		case "<":
			v = boolInt(v < r)
		case ">":
			v = boolInt(v > r)
		case "<=":
			v = boolInt(v <= r)
		case ">=":
			v = boolInt(v >= r)
		}
	}
}

func (e *evaluator) shift() int64 {
	v := e.additive()
	for {
		op, ok := e.eatPunct("<<", ">>")
		if !ok {
			return v
		}
		r := e.additive()
		if r < 0 || r > 63 {
			e.fail("shift amount out of range")
			return 0
		}
		if op == "<<" {
			v <<= uint(r)
		} else {
			v >>= uint(r)
		}
	}
}

func (e *evaluator) additive() int64 {
	v := e.multiplicative()
	for {
		op, ok := e.eatPunct("+", "-")
		if !ok {
			return v
		}
		r := e.multiplicative()
		if op == "+" {
			v += r
		} else {
			v -= r
		}
	}
}

func (e *evaluator) multiplicative() int64 {
	v := e.unary()
	for {
		op, ok := e.eatPunct("*", "/", "%")
		if !ok {
			return v
		}
		r := e.unary()
		switch op {
		case "*":
			v *= r
		case "/", "%":
			if r == 0 {
				e.fail("division by zero")
				return 0
			}
			if op == "/" {
				v /= r
			} else {
				v %= r
			}
		}
	}
}

func (e *evaluator) unary() int64 {
	if op, ok := e.eatPunct("!", "-", "+", "~"); ok {
		v := e.unary()
		switch op {
		case "!":
			return boolInt(v == 0)
		case "-":
			return -v
		case "~":
			return ^v
		}
		return v
	}
	return e.primary()
}

func (e *evaluator) primary() int64 {
	t, ok := e.peek()
	if !ok {
		e.fail("expression ended unexpectedly")
		return 0
	}
	switch t.kind {
	case tkNum:
		e.i++
		v, err := parsePPNumber(t.text)
		if err != nil {
			e.fail("bad integer constant " + strconv.Quote(t.text))
			return 0
		}
		return v
	case tkChar:
		e.i++
		return charValue(t.text)
	case tkIdent:
		// Undefined identifiers (and `true`/`false` spellings) are 0/1
		// per C23 leanings; classic C says 0 for everything.
		e.i++
		return 0
	case tkPunct:
		if t.text == "(" {
			e.i++
			v := e.cond()
			if _, ok := e.eatPunct(")"); !ok {
				e.fail("missing ')'")
			}
			return v
		}
	}
	e.fail("unexpected token " + strconv.Quote(t.text))
	return 0
}

// parsePPNumber converts a pp-number spelling (with optional u/U/l/L
// suffixes) to an int64.
func parsePPNumber(s string) (int64, error) {
	s = strings.TrimRight(s, "uUlL")
	if s == "" {
		return 0, strconv.ErrSyntax
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	// Large unsigned constants wrap into int64.
	u, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, err
	}
	return int64(u), nil
}

// charValue evaluates a character constant (common escapes only).
func charValue(text string) int64 {
	s := strings.TrimPrefix(text, "L")
	if len(s) < 3 || s[0] != '\'' {
		return 0
	}
	s = s[1 : len(s)-1]
	if s == "" {
		return 0
	}
	if s[0] != '\\' {
		return int64(s[0])
	}
	if len(s) < 2 {
		return 0
	}
	switch s[1] {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0', '1', '2', '3', '4', '5', '6', '7':
		v, _ := strconv.ParseInt(s[1:], 8, 64)
		return v
	case 'x':
		v, _ := strconv.ParseInt(s[2:], 16, 64)
		return v
	case 'a':
		return 7
	case 'b':
		return 8
	case 'f':
		return 12
	case 'v':
		return 11
	case '\\', '\'', '"', '?':
		return int64(s[1])
	}
	return 0
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
