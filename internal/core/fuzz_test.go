package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/cparse"
	"repro/internal/fault"
	"repro/internal/samate"
)

// FuzzFix asserts the pipeline's two end-to-end robustness contracts on
// arbitrary input: the full Fix pipeline (lint + SLR + STR) never leaks
// a panic — the fault boundary converts any crash to an error, and this
// fuzz target fails if even that boundary is hit — and whenever a
// transformation succeeds, its output is still parseable C (a rewrite
// must never corrupt the text beyond what the parser accepts).
func FuzzFix(f *testing.F) {
	// Seed with real SAMATE programs so the fuzzer starts from inputs
	// that exercise every transformation shape, then let it mutate.
	for _, cwe := range samate.CWEs {
		for _, p := range samate.Generate(cwe, 2) {
			f.Add(p.Source)
		}
	}
	f.Add("void f(void) { char b[4]; strcpy(b, \"overflowing literal\"); }")
	f.Add("void f(void) { char b[4]; gets(b); }")
	f.Add("int x;")
	f.Add("void broken( {")
	f.Add("")

	f.Fuzz(func(t *testing.T, src string) {
		// Bound pathological inputs; the analyses are super-linear on
		// deeply nested or call-heavy programs.
		if len(src) > 8192 || strings.Count(src, "(") > 200 {
			t.Skip()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// EmitSupport makes the output self-contained (the stralloc
		// typedef), so the re-parse below checks real parseability.
		rep, err := Fix(ctx, "fuzz.c", src, Options{SelectOffset: -1, Lint: true, EmitSupport: true})
		if err != nil {
			// Parse errors and timeouts are legitimate outcomes; a
			// contained panic is a bug the boundary merely stopped from
			// crashing the process.
			var pe *fault.PanicError
			if errors.As(err, &pe) {
				t.Fatalf("pipeline panicked on %q:\n%v", src, pe)
			}
			return
		}
		if rep == nil {
			t.Fatalf("nil report without error for %q", src)
		}
		if _, err := cparse.Parse("fuzz-out.c", rep.Source); err != nil {
			t.Fatalf("transformed output no longer parses: %v\ninput:\n%s\noutput:\n%s",
				err, src, rep.Source)
		}
	})
}
