package slr

import (
	"strings"
	"testing"

	"repro/internal/cparse"
	"repro/internal/ctoken"
)

// runAll parses src and applies SLR to every candidate.
func runAll(t *testing.T, src string) *FileResult {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := NewTransformer(tu).ApplyAll()
	if err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	return res
}

// reparse checks that the transformed output is still valid C.
func reparse(t *testing.T, src string) {
	t.Helper()
	if _, err := cparse.Parse("out.c", src); err != nil {
		t.Fatalf("transformed output does not parse: %v\n--- output ---\n%s", err, src)
	}
}

func TestStrcpyPaperExample(t *testing.T) {
	// Section II-A4.
	res := runAll(t, `
void example(void) {
    char buf[10];
    char src[100];
    memset(src, 'c', 50);
    src[50] = '\0';
    char *dst = buf;
    strcpy(dst, src);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d, want 1; sites: %+v", res.AppliedCount(), res.Sites)
	}
	if !strings.Contains(res.NewSource, "g_strlcpy(dst, src, sizeof(buf))") {
		t.Fatalf("output missing expected replacement:\n%s", res.NewSource)
	}
	if strings.Contains(res.NewSource, "strcpy(dst, src)") &&
		!strings.Contains(res.NewSource, "g_strlcpy(dst, src") {
		t.Fatal("unsafe call left in place")
	}
	if !res.NeedsGlib {
		t.Fatal("glib requirement not flagged")
	}
	reparse(t, res.NewSource)
}

func TestStrcatLibpngExample(t *testing.T) {
	// Section III-B1, libpng minigzip.c.
	res := runAll(t, `
void f(void) {
    char outfile[30];
    strcat(outfile, ".gz");
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d", res.AppliedCount())
	}
	if !strings.Contains(res.NewSource, `g_strlcat(outfile, ".gz", sizeof(outfile))`) {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res.NewSource)
}

func TestSprintfSizeInsertedSecond(t *testing.T) {
	// g_snprintf takes the size as its second parameter.
	res := runAll(t, `
void f(int n) {
    char buffer[5];
    sprintf(buffer, "%d", n);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Sites)
	}
	if !strings.Contains(res.NewSource, `g_snprintf(buffer, sizeof(buffer), "%d", n)`) {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res.NewSource)
}

func TestVsprintf(t *testing.T) {
	res := runAll(t, `
void f(const char *fmt, va_list ap) {
    char msg[128];
    vsprintf(msg, fmt, ap);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Sites)
	}
	if !strings.Contains(res.NewSource, "g_vsnprintf(msg, sizeof(msg), fmt, ap)") {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res.NewSource)
}

func TestGetsPaperExample(t *testing.T) {
	// Section III-B2: fgets plus newline stripping.
	res := runAll(t, `
void f(void) {
    char dest[64];
    char *result;
    result = gets(dest);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Sites)
	}
	out := res.NewSource
	if !strings.Contains(out, "fgets(dest, sizeof(dest), stdin)") {
		t.Fatalf("fgets rewrite missing:\n%s", out)
	}
	if !strings.Contains(out, `strchr(dest, '\n')`) {
		t.Fatalf("newline strip missing:\n%s", out)
	}
	if !strings.Contains(out, `*check = '\0';`) {
		t.Fatalf("newline null missing:\n%s", out)
	}
	reparse(t, out)
}

func TestGetsFreshCheckName(t *testing.T) {
	// A variable named check already exists: the generated one must not
	// collide.
	res := runAll(t, `
void f(void) {
    char dest[64];
    int check;
    check = 0;
    gets(dest);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d", res.AppliedCount())
	}
	if !strings.Contains(res.NewSource, "char *check_2 = strchr(dest") {
		t.Fatalf("expected fresh name check_2:\n%s", res.NewSource)
	}
	reparse(t, res.NewSource)
}

func TestMemcpyGmpExampleOption1(t *testing.T) {
	// Section III-B3: numlen is used later (null-termination), so the
	// clamp is assigned before the call.
	res := runAll(t, `
void f(char *str) {
    unsigned long numlen;
    char *num;
    numlen = strlen(str);
    num = malloc(numlen + 1);
    memcpy(num, str, numlen);
    num[numlen] = '\0';
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Sites)
	}
	out := res.NewSource
	if !strings.Contains(out, "numlen = malloc_usable_size(num) > numlen ? numlen : malloc_usable_size(num);") {
		t.Fatalf("clamp assignment missing:\n%s", out)
	}
	if !strings.Contains(out, "memcpy(num, str, numlen);") {
		t.Fatalf("memcpy call should stay intact:\n%s", out)
	}
	reparse(t, out)
}

func TestMemcpyOption2InPlace(t *testing.T) {
	// Length not reused: in-place ternary.
	res := runAll(t, `
void f(char *str, unsigned long n) {
    char dst[16];
    memcpy(dst, str, n);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Sites)
	}
	if !strings.Contains(res.NewSource, "memcpy(dst, str, sizeof(dst) > n ? n : sizeof(dst))") {
		t.Fatalf("in-place clamp missing:\n%s", res.NewSource)
	}
	reparse(t, res.NewSource)
}

func TestPreconditionFailureLeavesSourceUntouched(t *testing.T) {
	src := `
void f(char *dst, char *src) {
    strcpy(dst, src);
}
`
	res := runAll(t, src)
	if res.AppliedCount() != 0 {
		t.Fatalf("applied: got %d, want 0", res.AppliedCount())
	}
	if res.NewSource != src {
		t.Fatal("source must be unchanged when preconditions fail")
	}
	if len(res.Sites) != 1 || res.Sites[0].Failure == nil {
		t.Fatalf("failure not reported: %+v", res.Sites)
	}
}

func TestMultipleSitesMixedOutcome(t *testing.T) {
	res := runAll(t, `
void f(char *extern_buf) {
    char a[10];
    char b[20];
    strcpy(a, "one");
    strcpy(extern_buf, "two");
    strcat(b, "three");
}
`)
	if len(res.Sites) != 3 {
		t.Fatalf("sites: got %d, want 3", len(res.Sites))
	}
	if res.AppliedCount() != 2 {
		t.Fatalf("applied: got %d, want 2 (%+v)", res.AppliedCount(), res.Sites)
	}
	out := res.NewSource
	if !strings.Contains(out, `g_strlcpy(a, "one", sizeof(a))`) {
		t.Fatalf("first site not transformed:\n%s", out)
	}
	if !strings.Contains(out, `strcpy(extern_buf, "two")`) {
		t.Fatalf("failing site must stay:\n%s", out)
	}
	if !strings.Contains(out, `g_strlcat(b, "three", sizeof(b))`) {
		t.Fatalf("third site not transformed:\n%s", out)
	}
	reparse(t, out)
}

func TestApplyAtSelectsOneSite(t *testing.T) {
	src := `
void f(void) {
    char a[10];
    char b[10];
    strcpy(a, "one");
    strcpy(b, "two");
}
`
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	// Select the second call by offset.
	off := ctoken.Pos(strings.Index(src, `strcpy(b`))
	res, err := NewTransformer(tu).ApplyAt(off)
	if err != nil {
		t.Fatal(err)
	}
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d, want 1", res.AppliedCount())
	}
	if !strings.Contains(res.NewSource, `strcpy(a, "one")`) {
		t.Fatal("unselected site must stay untouched")
	}
	if !strings.Contains(res.NewSource, `g_strlcpy(b, "two", sizeof(b))`) {
		t.Fatal("selected site not transformed")
	}
}

func TestHeapDestination(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char *p;
    p = malloc(32);
    strcpy(p, "data");
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Sites)
	}
	if !strings.Contains(res.NewSource, `g_strlcpy(p, "data", malloc_usable_size(p))`) {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res.NewSource)
}

func TestSizePreservedThroughPointerArithmetic(t *testing.T) {
	res := runAll(t, `
void f(void) {
    char buf[32];
    char *p = buf;
    strcpy(p + 4, "data");
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Sites)
	}
	if !strings.Contains(res.NewSource, `g_strlcpy(p + 4, "data", sizeof(buf) - 4)`) {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res.NewSource)
}

func TestLibtiffCVEFix(t *testing.T) {
	// Section IV-A2: the LibTIFF tiff2pdf vulnerability. The sprintf can
	// emit more than 5 bytes when a byte is sign-extended; SLR bounds it.
	res := runAll(t, `
void t2p_write_pdf_string(char *pdfstr) {
    char buffer[5];
    int i;
    unsigned long len;
    len = strlen(pdfstr);
    for (i = 0; i < len; i++) {
        if ((pdfstr[i] & 0x80) || (pdfstr[i] == 127) || (pdfstr[i] < 32)) {
            sprintf(buffer, "\\%.3o", pdfstr[i]);
        }
    }
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: got %d (%+v)", res.AppliedCount(), res.Sites)
	}
	if !strings.Contains(res.NewSource, `g_snprintf(buffer, sizeof(buffer), "\\%.3o", pdfstr[i])`) {
		t.Fatalf("output:\n%s", res.NewSource)
	}
	reparse(t, res.NewSource)
}

func TestCatalogConsistency(t *testing.T) {
	if len(UnsafeFunctions()) != 6 {
		t.Fatalf("SLR must target exactly 6 functions, got %d", len(UnsafeFunctions()))
	}
	for _, name := range UnsafeFunctions() {
		if !IsUnsafe(name) {
			t.Errorf("%s not recognised as unsafe", name)
		}
		if SafeNameFor(name) == "" {
			t.Errorf("%s has no safe replacement", name)
		}
	}
	if IsUnsafe("printf") {
		t.Error("printf is not an SLR target")
	}
	// Every operational rule's unsafe function appears in Table I (gets,
	// strcpy, strcat, sprintf, memcpy directly; vsprintf shares sprintf's
	// row family).
	inTable := make(map[string]bool)
	for _, e := range TableI {
		inTable[e.Unsafe] = true
	}
	for _, name := range []string{"strcpy", "strcat", "sprintf", "memcpy", "gets"} {
		if !inTable[name] {
			t.Errorf("%s missing from Table I", name)
		}
	}
}

func TestGlibPrototypesParse(t *testing.T) {
	if _, err := cparse.Parse("glib.h", GlibPrototypes()); err != nil {
		t.Fatalf("prototypes must parse: %v", err)
	}
}

func TestSiteResultPositions(t *testing.T) {
	res := runAll(t, `void f(void) {
    char a[4];
    strcpy(a, "x");
}
`)
	if len(res.Sites) != 1 {
		t.Fatal("expected one site")
	}
	if res.Sites[0].Pos.Line != 3 {
		t.Fatalf("line: got %d, want 3", res.Sites[0].Pos.Line)
	}
}

func TestBracelessIfArmGetsBraced(t *testing.T) {
	res := runAll(t, `
void f(int c) {
    char buf[8];
    if (c)
        gets(buf);
    printf("%s\n", buf);
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: %d", res.AppliedCount())
	}
	out := res.NewSource
	// The newline-strip statements must stay under the if guard.
	if !strings.Contains(out, "{ fgets(buf, sizeof(buf), stdin);") {
		t.Fatalf("missing opening brace:\n%s", out)
	}
	// The closing brace follows the strip code on its own line.
	idx := strings.Index(out, "if (check) { *check = '\\0'; }")
	if idx < 0 || !strings.Contains(out[idx:], "\n        }") {
		t.Fatalf("missing closing brace:\n%s", out)
	}
	reparse(t, out)
}

func TestBracelessMemcpyClampBraced(t *testing.T) {
	res := runAll(t, `
void f(int c, char *src, unsigned long n) {
    char dst[8];
    unsigned long len = n;
    if (c)
        memcpy(dst, src, len);
    dst[len < 8 ? len : 7] = '\0';
}
`)
	if res.AppliedCount() != 1 {
		t.Fatalf("applied: %d (%+v)", res.AppliedCount(), res.Sites)
	}
	out := res.NewSource
	if !strings.Contains(out, "{ len = sizeof(dst) > len ? len : sizeof(dst);") {
		t.Fatalf("clamp not braced:\n%s", out)
	}
	if !strings.Contains(out, "memcpy(dst, src, len); }") {
		t.Fatalf("closing brace missing:\n%s", out)
	}
	reparse(t, out)
}

func TestNestedUnsafeCalls(t *testing.T) {
	// strcpy's source argument is itself a strcat call: both sites are
	// candidates and both rewrites must splice without overlapping.
	res := runAll(t, `
void f(void) {
    char a[32];
    char b[32];
    b[0] = '\0';
    strcpy(a, strcat(b, "suffix"));
}
`)
	if res.AppliedCount() != 2 {
		t.Fatalf("applied: %d (%+v)", res.AppliedCount(), res.Sites)
	}
	out := res.NewSource
	if !strings.Contains(out, `g_strlcpy(a, g_strlcat(b, "suffix", sizeof(b)), sizeof(a))`) {
		t.Fatalf("nested rewrite:\n%s", out)
	}
	reparse(t, out)
}
