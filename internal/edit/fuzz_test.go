package edit

import (
	"testing"

	"repro/internal/ctoken"
	"repro/internal/samate"
)

// decodeDeltas turns fuzzer bytes into a bounded delta list against a
// text of n bytes. Extents are always in bounds; overlap is left to the
// fuzzer so the validator's rejection path gets exercised too.
func decodeDeltas(data []byte, n int) []Delta {
	var out []Delta
	for len(data) >= 5 && len(out) < 16 {
		op := data[0] % 3
		pos := (int(data[1])<<8 | int(data[2])) % (n + 1)
		span := int(data[3]) % (n - pos + 1)
		tlen := int(data[4]) % 8
		if tlen > len(data)-5 {
			tlen = len(data) - 5
		}
		text := string(data[5 : 5+tlen])
		data = data[5+tlen:]
		e := ctoken.Extent{Pos: ctoken.Pos(pos), End: ctoken.Pos(pos + span)}
		switch op {
		case 0:
			out = append(out, Insert(ctoken.Pos(pos), text))
		case 1:
			out = append(out, Delete(e))
		default:
			out = append(out, Replace(e, text))
		}
	}
	return out
}

// validSubset greedily drops deltas that overlap an earlier kept one,
// yielding a script Validate must accept.
func validSubset(deltas []Delta, n int) []Delta {
	sorted := Sort(append([]Delta(nil), deltas...))
	var out []Delta
	cursor := ctoken.Pos(0)
	for _, d := range sorted {
		if !d.Extent.IsValid() || int(d.Extent.End) > n || d.Extent.Pos < cursor {
			continue
		}
		out = append(out, d)
		if d.Extent.End > cursor {
			cursor = d.Extent.End
		}
	}
	return out
}

// referenceApply is the naive quadratic oracle: apply sorted deltas
// back-to-front with string slicing, which trivially preserves queue
// order for same-position inserts.
func referenceApply(src string, sorted []Delta) string {
	for i := len(sorted) - 1; i >= 0; i-- {
		d := sorted[i]
		src = src[:d.Extent.Pos] + d.Text + src[d.Extent.End:]
	}
	return src
}

// FuzzApply drives the splice, validator, mapper and compose against a
// quadratic reference implementation. Seeded like FuzzFix: real SAMATE
// programs, so the extents the fuzzer mutates look like the extents the
// rewriter and the incremental session actually produce.
func FuzzApply(f *testing.F) {
	for _, cwe := range samate.CWEs {
		for _, p := range samate.Generate(cwe, 1) {
			f.Add(p.Source, []byte{2, 0, 10, 8, 4, 'x', 'y', 0, 0, 3, 2, 2, 'z'})
		}
	}
	f.Add("", []byte{0, 0, 0, 0, 1, 'a'})
	f.Add("int x;", []byte{1, 0, 0, 6, 0})
	f.Fuzz(func(t *testing.T, src string, prog []byte) {
		if len(src) > 8192 || len(prog) > 512 {
			t.Skip()
		}
		raw := decodeDeltas(prog, len(src))

		// The raw (possibly overlapping) script must never panic, and a
		// validation failure must surface from Apply identically.
		rawScript := NewScript(raw...)
		_, applyErr := rawScript.Apply(src)
		valErr := rawScript.Validate(len(src))
		if (applyErr == nil) != (valErr == nil) {
			t.Fatalf("Apply err %v vs Validate err %v", applyErr, valErr)
		}

		// A valid subset must apply, match the reference oracle, and
		// satisfy NewLen.
		valid := validSubset(raw, len(src))
		s := NewScript(valid...)
		if err := s.Validate(len(src)); err != nil {
			t.Fatalf("validSubset produced invalid script: %v\ndeltas=%v", err, valid)
		}
		out, err := s.Apply(src)
		if err != nil {
			t.Fatalf("valid script failed to apply: %v", err)
		}
		if want := referenceApply(src, s.Deltas()); out != want {
			t.Fatalf("splice mismatch:\n got %q\nwant %q\ndeltas=%v", out, want, valid)
		}
		if s.NewLen(len(src)) != len(out) {
			t.Fatalf("NewLen=%d, output %d bytes", s.NewLen(len(src)), len(out))
		}

		// Minimize invariant: trimming deltas to their changed bytes
		// must still validate and must not change what Apply produces.
		min := NewScript(Minimize(src, valid)...)
		if err := min.Validate(len(src)); err != nil {
			t.Fatalf("Minimize produced invalid script: %v\nraw=%v", err, valid)
		}
		if mout, err := min.Apply(src); err != nil || mout != out {
			t.Fatalf("Minimize changed Apply: err=%v\n got %q\nwant %q\nraw=%v\nmin=%v",
				err, mout, out, valid, min.Deltas())
		}

		// Mapper invariant: positions outside every replaced/deleted
		// span still address the same byte after mapping.
		m := NewMapper(s)
	pos:
		for p := 0; p < len(src); p++ {
			for _, d := range valid {
				if !d.IsInsert() && p >= int(d.Extent.Pos) && p < int(d.Extent.End) {
					continue pos
				}
			}
			np := m.OldToNew(ctoken.Pos(p))
			if int(np) >= len(out) || out[np] != src[p] {
				t.Fatalf("OldToNew(%d)=%d maps %q astray in %q\ndeltas=%v", p, np, src[p], out, valid)
			}
			if back := m.NewToOld(np); int(back) != p {
				t.Fatalf("round trip %d -> %d -> %d\ndeltas=%v", p, np, back, valid)
			}
		}

		// Compose invariant: splitting the program bytes in half and
		// running the halves sequentially equals the composed script.
		half := len(prog) / 2
		secondRaw := decodeDeltas(prog[half:], len(out))
		second := NewScript(validSubset(secondRaw, len(out))...)
		want, err := second.Apply(out)
		if err != nil {
			t.Fatalf("second valid script failed: %v", err)
		}
		composed, err := Compose(len(src), s, second)
		if err != nil {
			t.Fatalf("Compose: %v", err)
		}
		got, err := composed.Apply(src)
		if err != nil {
			t.Fatalf("composed script failed to apply: %v\nfirst=%v\nsecond=%v", err, valid, second.Deltas())
		}
		if got != want {
			t.Fatalf("compose mismatch:\n got %q\nwant %q\nfirst=%v\nsecond=%v", got, want, valid, second.Deltas())
		}
	})
}
