#ifndef TIFFIO_H
#define TIFFIO_H

/* Cut-down shape of libtiff's private header: the tag-name scratch
 * buffer is sized for the common case, the directory count is not. */
#define TIFF_TAGBUF 16
#define TIFF_DIRCNT 64

void _TIFFmemset8(char *p, int v, int n);
void TIFFReadDirectory(void);

char *strcpy(char *, const char *);
unsigned long strlen(const char *);

#endif
