package ctoken

import (
	"testing"
	"testing/quick"
)

func TestExtentBasics(t *testing.T) {
	e := Extent{Pos: 3, End: 8}
	if !e.IsValid() || e.Len() != 5 {
		t.Fatal("extent basics")
	}
	if NoExtent.IsValid() {
		t.Fatal("NoExtent must be invalid")
	}
	if NoExtent.Len() != 0 {
		t.Fatal("invalid extent has zero length")
	}
	if !NoPos.IsValid() == false {
		t.Fatal("NoPos is invalid")
	}
}

func TestExtentCoversOverlaps(t *testing.T) {
	outer := Extent{Pos: 0, End: 10}
	inner := Extent{Pos: 3, End: 7}
	disjoint := Extent{Pos: 10, End: 12}
	if !outer.Covers(inner) || inner.Covers(outer) {
		t.Fatal("covers")
	}
	if !outer.Overlaps(inner) || outer.Overlaps(disjoint) {
		t.Fatal("overlaps: adjacent extents share no byte")
	}
}

func TestExtentUnion(t *testing.T) {
	a := Extent{Pos: 2, End: 5}
	b := Extent{Pos: 8, End: 9}
	u := a.Union(b)
	if u.Pos != 2 || u.End != 9 {
		t.Fatalf("union: %+v", u)
	}
	if got := NoExtent.Union(a); got != a {
		t.Fatal("union with invalid")
	}
	if got := a.Union(NoExtent); got != a {
		t.Fatal("union with invalid rhs")
	}
}

func TestTokenHelpers(t *testing.T) {
	kw := Token{Kind: KindKeyword, Text: "while"}
	if !kw.IsKeyword("while") || kw.IsKeyword("if") {
		t.Fatal("IsKeyword")
	}
	p := Token{Kind: KindPunct, Text: "++"}
	if !p.Is("++") || p.Is("+") {
		t.Fatal("Is")
	}
	id := Token{Kind: KindIdent, Text: "while"}
	if id.Is("while") {
		t.Fatal("identifiers are not punct/keyword matches")
	}
	if (Token{Kind: KindEOF}).String() != "EOF" {
		t.Fatal("EOF string")
	}
}

func TestKeywordTable(t *testing.T) {
	for _, kw := range []string{"int", "char", "while", "sizeof", "struct", "_Bool"} {
		if !IsKeywordText(kw) {
			t.Errorf("%s should be a keyword", kw)
		}
	}
	for _, id := range []string{"main", "buf", "stralloc", "printf"} {
		if IsKeywordText(id) {
			t.Errorf("%s should not be a keyword", id)
		}
	}
}

func TestFilePositionEdges(t *testing.T) {
	f := NewFile("x.c", "a\n\nbc")
	if f.Name() != "x.c" || f.Size() != 5 {
		t.Fatal("file accessors")
	}
	tests := []struct {
		off       Pos
		line, col int
	}{
		{0, 1, 1}, {1, 1, 2}, {2, 2, 1}, {3, 3, 1}, {4, 3, 2}, {5, 3, 3},
	}
	for _, tt := range tests {
		p := f.Position(tt.off)
		if p.Line != tt.line || p.Col != tt.col {
			t.Errorf("pos %d: got %d:%d, want %d:%d", tt.off, p.Line, p.Col, tt.line, tt.col)
		}
	}
	if p := f.Position(NoPos); p.Line != 0 {
		t.Fatal("invalid positions map to line 0")
	}
	if s := f.Position(2).String(); s != "x.c:2:1" {
		t.Fatalf("position string: %s", s)
	}
	if s := f.Position(NoPos).String(); s != "x.c:?" {
		t.Fatalf("unknown position string: %s", s)
	}
}

func TestFileSlice(t *testing.T) {
	f := NewFile("x.c", "hello world")
	if got := f.Slice(Extent{Pos: 6, End: 11}); got != "world" {
		t.Fatalf("slice: %q", got)
	}
	if got := f.Slice(NoExtent); got != "" {
		t.Fatalf("invalid slice: %q", got)
	}
	if got := f.Slice(Extent{Pos: 6, End: 50}); got != "" {
		t.Fatalf("out-of-range slice: %q", got)
	}
}

// TestPropertyPositionRoundTrip: for any text, every byte offset maps to a
// (line, col) whose reconstruction points back at the same offset.
func TestPropertyPositionRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		src := string(raw)
		file := NewFile("p.c", src)
		lineStarts := []int{0}
		for i := 0; i < len(src); i++ {
			if src[i] == '\n' {
				lineStarts = append(lineStarts, i+1)
			}
		}
		for off := 0; off <= len(src); off++ {
			p := file.Position(Pos(off))
			if p.Line < 1 || p.Line > len(lineStarts) {
				return false
			}
			if lineStarts[p.Line-1]+p.Col-1 != off {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyUnionCoversBoth: the union of two valid extents covers both.
func TestPropertyUnionCoversBoth(t *testing.T) {
	f := func(a1, a2, b1, b2 uint16) bool {
		a := Extent{Pos: Pos(min16(a1, a2)), End: Pos(max16(a1, a2))}
		b := Extent{Pos: Pos(min16(b1, b2)), End: Pos(max16(b1, b2))}
		u := a.Union(b)
		return u.Covers(a) && u.Covers(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}
