// Package backend defines the pluggable repair-dialect layer: the safe
// library a fix targets is a RepairBackend value, not a constant baked
// into the transformation. The paper's Table I already catalogues the
// wider space of safe alternatives (glib, BSD strlcpy, ISO/IEC TR 24731
// "_s" functions, StrSafe); this package makes the choice among them a
// per-run option so one analysis can emit many fix dialects.
//
// Three backends ship:
//
//   - glib (the default): g_strlcpy/g_strlcat/g_snprintf/g_vsnprintf —
//     the dialect the paper uses, byte-identical to the historical
//     output and pinned by the differential suite.
//   - bsd: strlcpy/strlcat with C99 snprintf/vsnprintf and a clamped
//     memcpy where BSD has no analogue.
//   - c11k: C11 Annex K strcpy_s/strcat_s/sprintf_s/vsprintf_s/memcpy_s
//     /gets_s, whose size argument precedes the source, so argument
//     reordering and errno_t result conventions are exercised for real.
package backend

import (
	"fmt"
	"strings"

	"repro/internal/stralloc"
)

// Kind selects the replacement mechanism for one unsafe function
// (Section III-B splits the handled functions into three mechanisms).
type Kind int

const (
	// KindRename renames the callee and inserts the destination-size
	// argument (strcpy, strcat, sprintf, vsprintf; memcpy under c11k).
	KindRename Kind = iota + 1
	// KindGets replaces gets with a bounded line reader (fgets or
	// gets_s): the size argument is inserted and, when the reader keeps
	// the trailing newline, a stripping sequence follows the statement.
	KindGets
	// KindClamp keeps the callee and clamps its length argument in place
	// (memcpy where the dialect has no bounded analogue).
	KindClamp
)

// Result documents a replacement's return-value convention; the
// transformation never rewrites uses of the return value, so this is
// metadata for prototypes, docs, and the interpreter model.
type Result int

const (
	// ResultLength: the untruncated source length (g_strlcpy, strlcpy).
	ResultLength Result = iota + 1
	// ResultErrno: errno_t, zero on success (the Annex K _s functions).
	ResultErrno
	// ResultPointer: a pointer, like the original (fgets, gets_s).
	ResultPointer
	// ResultSame: unchanged from the original callee (clamped memcpy).
	ResultSame
)

// Replacement is the operational rule one dialect applies for one
// unsafe function: which callee to emit, where the destination-size
// argument goes, and what bookkeeping the rewrite needs.
type Replacement struct {
	// Unsafe / Safe name the original and replacement callees.
	Unsafe string
	Safe   string
	// Kind selects the rewrite mechanism.
	Kind Kind
	// SizeAfterArg is the 0-based index of the original argument after
	// which the destination-size argument is inserted (KindRename and
	// KindGets). glib and BSD string functions append it after the
	// source (index 1); the Annex K _s functions take it before the
	// source (index 0), which reorders the argument list.
	SizeAfterArg int
	// MinArgs is the least original-argument count the rewrite is
	// well-formed for; calls with fewer decline with an
	// unsupported-form failure instead of emitting garbage.
	MinArgs int
	// ExtraArgs are appended after the size argument (KindGets: fgets
	// needs the stream, so ExtraArgs is ["stdin"]; gets_s needs none).
	ExtraArgs []string
	// StripNewline marks a bounded reader that keeps the trailing
	// newline gets discards (fgets), so the transformer must append the
	// newline-stripping sequence. gets_s discards it itself.
	StripNewline bool
	// NeedsLib reports that the replacement callee lives outside the
	// hosted C standard library, so the output needs the backend's
	// prototypes (and its link requirement) to build.
	NeedsLib bool
	// Result documents the return-value convention.
	Result Result
}

// Backend is one complete safe-function dialect: a named, closed table
// of replacement rules plus the support declarations its output needs.
// Implementations are immutable and safe for concurrent use.
type Backend interface {
	// Name is the canonical backend name ("glib", "bsd", "c11k").
	Name() string
	// Description is a one-line human-readable summary for -h output
	// and docs.
	Description() string
	// Lookup returns the dialect's rule for an unsafe function.
	Lookup(unsafe string) (Replacement, bool)
	// UnsafeFunctions lists the unsafe functions the dialect replaces,
	// in a stable order.
	UnsafeFunctions() []string
	// Prototypes returns the C declarations a transformed file needs
	// when the dialect's headers are unavailable; emitted by
	// EmitSupport and `cfix -support`.
	Prototypes() string
	// LinkNote names the link-time requirement of the dialect's safe
	// functions ("" when plain libc suffices).
	LinkNote() string
}

// dialect is the table-driven Backend implementation all three shipped
// backends use.
type dialect struct {
	name, desc, protos, linkNote string
	order                        []string
	rules                        map[string]Replacement
}

func (d *dialect) Name() string        { return d.name }
func (d *dialect) Description() string { return d.desc }
func (d *dialect) Prototypes() string  { return d.protos }
func (d *dialect) LinkNote() string    { return d.linkNote }

func (d *dialect) Lookup(unsafe string) (Replacement, bool) {
	r, ok := d.rules[unsafe]
	return r, ok
}

func (d *dialect) UnsafeFunctions() []string {
	return append([]string(nil), d.order...)
}

// _order is the shared stable ordering of the unsafe functions every
// dialect replaces (the six functions of Section III-B).
var _order = []string{"strcpy", "strcat", "sprintf", "vsprintf", "memcpy", "gets"}

// Glib is the paper's dialect and the default: glib-style safe string
// functions, syntactically closest to the originals so per-instance
// changes stay minimal (Section II-A3). Its output is byte-identical
// to the historical hard-coded transformation.
var Glib Backend = &dialect{
	name:     "glib",
	desc:     "glib-style g_strlcpy/g_strlcat/g_snprintf (the paper's dialect; default)",
	linkNote: "-lglib-2.0",
	protos:   glibPrototypes(),
	order:    _order,
	rules: map[string]Replacement{
		"strcpy":   {Unsafe: "strcpy", Safe: "g_strlcpy", Kind: KindRename, SizeAfterArg: 1, MinArgs: 2, NeedsLib: true, Result: ResultLength},
		"strcat":   {Unsafe: "strcat", Safe: "g_strlcat", Kind: KindRename, SizeAfterArg: 1, MinArgs: 2, NeedsLib: true, Result: ResultLength},
		"sprintf":  {Unsafe: "sprintf", Safe: "g_snprintf", Kind: KindRename, SizeAfterArg: 0, MinArgs: 2, NeedsLib: true, Result: ResultLength},
		"vsprintf": {Unsafe: "vsprintf", Safe: "g_vsnprintf", Kind: KindRename, SizeAfterArg: 0, MinArgs: 2, NeedsLib: true, Result: ResultLength},
		"memcpy":   {Unsafe: "memcpy", Safe: "memcpy", Kind: KindClamp, MinArgs: 3, Result: ResultSame},
		"gets":     {Unsafe: "gets", Safe: "fgets", Kind: KindGets, SizeAfterArg: 0, MinArgs: 1, ExtraArgs: []string{"stdin"}, StripNewline: true, Result: ResultPointer},
	},
}

// BSD is the strlcpy/strlcat dialect (OpenBSD, libbsd on glibc
// systems). BSD has no bounded sprintf of its own beyond C99, so the
// printf family maps to snprintf/vsnprintf, and memcpy keeps the
// clamped form.
var BSD Backend = &dialect{
	name:     "bsd",
	desc:     "BSD strlcpy/strlcat with C99 snprintf/vsnprintf (libbsd on glibc)",
	linkNote: "-lbsd",
	protos:   bsdPrototypes(),
	order:    _order,
	rules: map[string]Replacement{
		"strcpy":   {Unsafe: "strcpy", Safe: "strlcpy", Kind: KindRename, SizeAfterArg: 1, MinArgs: 2, NeedsLib: true, Result: ResultLength},
		"strcat":   {Unsafe: "strcat", Safe: "strlcat", Kind: KindRename, SizeAfterArg: 1, MinArgs: 2, NeedsLib: true, Result: ResultLength},
		"sprintf":  {Unsafe: "sprintf", Safe: "snprintf", Kind: KindRename, SizeAfterArg: 0, MinArgs: 2, Result: ResultLength},
		"vsprintf": {Unsafe: "vsprintf", Safe: "vsnprintf", Kind: KindRename, SizeAfterArg: 0, MinArgs: 2, Result: ResultLength},
		"memcpy":   {Unsafe: "memcpy", Safe: "memcpy", Kind: KindClamp, MinArgs: 3, Result: ResultSame},
		"gets":     {Unsafe: "gets", Safe: "fgets", Kind: KindGets, SizeAfterArg: 0, MinArgs: 1, ExtraArgs: []string{"stdin"}, StripNewline: true, Result: ResultPointer},
	},
}

// C11K is the C11 Annex K (ISO/IEC TR 24731-1) dialect: the _s
// functions take the destination size immediately after the
// destination — before the source — so this backend exercises argument
// reordering, and their errno_t results and runtime constraints are
// modelled by the checked interpreter. gets_s discards the trailing
// newline itself, so no stripping sequence is emitted.
var C11K Backend = &dialect{
	name:     "c11k",
	desc:     "C11 Annex K strcpy_s/strcat_s/sprintf_s/memcpy_s/gets_s (size before source)",
	linkNote: "a TR 24731-1 implementation (define __STDC_WANT_LIB_EXT1__)",
	protos:   c11kPrototypes(),
	order:    _order,
	rules: map[string]Replacement{
		"strcpy":   {Unsafe: "strcpy", Safe: "strcpy_s", Kind: KindRename, SizeAfterArg: 0, MinArgs: 2, NeedsLib: true, Result: ResultErrno},
		"strcat":   {Unsafe: "strcat", Safe: "strcat_s", Kind: KindRename, SizeAfterArg: 0, MinArgs: 2, NeedsLib: true, Result: ResultErrno},
		"sprintf":  {Unsafe: "sprintf", Safe: "sprintf_s", Kind: KindRename, SizeAfterArg: 0, MinArgs: 2, NeedsLib: true, Result: ResultLength},
		"vsprintf": {Unsafe: "vsprintf", Safe: "vsprintf_s", Kind: KindRename, SizeAfterArg: 0, MinArgs: 2, NeedsLib: true, Result: ResultLength},
		"memcpy":   {Unsafe: "memcpy", Safe: "memcpy_s", Kind: KindRename, SizeAfterArg: 0, MinArgs: 3, NeedsLib: true, Result: ResultErrno},
		"gets":     {Unsafe: "gets", Safe: "gets_s", Kind: KindGets, SizeAfterArg: 0, MinArgs: 1, NeedsLib: true, Result: ResultPointer},
	},
}

// _registry maps canonical names to backends, in Names() order.
var _registry = []Backend{Glib, BSD, C11K}

// Default returns the default backend (glib, the paper's dialect).
func Default() Backend { return Glib }

// Names returns the canonical backend names in a stable order.
func Names() []string {
	out := make([]string, len(_registry))
	for i, b := range _registry {
		out[i] = b.Name()
	}
	return out
}

// Get resolves a backend name; "" selects the default. Unknown names
// error with the valid set listed, for flag validation and request
// rejection.
func Get(name string) (Backend, error) {
	s := strings.TrimSpace(name)
	if s == "" {
		return Default(), nil
	}
	for _, b := range _registry {
		if b.Name() == s {
			return b, nil
		}
	}
	return nil, fmt.Errorf("unknown repair backend %q (valid: %s)", s, strings.Join(Names(), ", "))
}

// Canonical validates a backend name and returns its canonical form
// ("" resolves to the default's name) — the form cache fingerprints
// and wire responses use.
func Canonical(name string) (string, error) {
	b, err := Get(name)
	if err != nil {
		return "", err
	}
	return b.Name(), nil
}

// SupportUnit is one block of C support code a transformed file may
// need prepended: the stralloc runtime (STR's safe type) or a
// backend's safe-function prototypes. Both are declared through this
// one mechanism so EmitSupport and `cfix -support` stay uniform
// across dialects.
type SupportUnit struct {
	// Name labels the unit ("stralloc", "<backend>-prototypes").
	Name string
	// Source is the C text, without a trailing separator; emitters join
	// units with a newline.
	Source string
}

// SupportUnits assembles the support blocks for one transformed file
// in emission order: the stralloc runtime first (STR may introduce
// calls the prototypes' functions never see), then the backend's
// prototypes.
func SupportUnits(needStralloc, needLib bool, be Backend) []SupportUnit {
	if be == nil {
		be = Default()
	}
	var units []SupportUnit
	if needStralloc {
		units = append(units, SupportUnit{Name: "stralloc", Source: stralloc.FullSource()})
	}
	if needLib {
		units = append(units, SupportUnit{Name: be.Name() + "-prototypes", Source: be.Prototypes()})
	}
	return units
}

// glibPrototypes matches the historical slr.GlibPrototypes output
// byte for byte: the glib dialect's emitted support text is pinned by
// the differential suite.
func glibPrototypes() string {
	var sb strings.Builder
	sb.WriteString("/* Prototypes for glib-style safe string functions (link with -lglib-2.0\n")
	sb.WriteString("   or provide the bundled implementations). */\n")
	sb.WriteString("unsigned long g_strlcpy(char *dst, const char *src, unsigned long dst_size);\n")
	sb.WriteString("unsigned long g_strlcat(char *dst, const char *src, unsigned long dst_size);\n")
	sb.WriteString("int g_snprintf(char *string, unsigned long n, const char *format, ...);\n")
	sb.WriteString("int g_vsnprintf(char *string, unsigned long n, const char *format, void *args);\n")
	sb.WriteString("unsigned long malloc_usable_size(void *ptr);\n")
	return sb.String()
}

func bsdPrototypes() string {
	var sb strings.Builder
	sb.WriteString("/* Prototypes for BSD safe string functions (native on the BSDs; link\n")
	sb.WriteString("   with -lbsd on glibc systems or provide the bundled implementations).\n")
	sb.WriteString("   snprintf/vsnprintf are C99 and need no declaration here. */\n")
	sb.WriteString("unsigned long strlcpy(char *dst, const char *src, unsigned long dst_size);\n")
	sb.WriteString("unsigned long strlcat(char *dst, const char *src, unsigned long dst_size);\n")
	sb.WriteString("unsigned long malloc_usable_size(void *ptr);\n")
	return sb.String()
}

func c11kPrototypes() string {
	var sb strings.Builder
	sb.WriteString("/* Prototypes for the C11 Annex K (ISO/IEC TR 24731-1) bounds-checked\n")
	sb.WriteString("   functions. On a conforming implementation, define\n")
	sb.WriteString("   __STDC_WANT_LIB_EXT1__ and include the standard headers instead. */\n")
	sb.WriteString("typedef int errno_t;\n")
	sb.WriteString("typedef unsigned long rsize_t;\n")
	sb.WriteString("errno_t strcpy_s(char *dst, rsize_t dst_size, const char *src);\n")
	sb.WriteString("errno_t strcat_s(char *dst, rsize_t dst_size, const char *src);\n")
	sb.WriteString("errno_t strncpy_s(char *dst, rsize_t dst_size, const char *src, rsize_t num);\n")
	sb.WriteString("errno_t memcpy_s(void *dst, rsize_t dst_size, const void *src, rsize_t num);\n")
	sb.WriteString("int sprintf_s(char *str, rsize_t str_size, const char *format, ...);\n")
	sb.WriteString("int vsprintf_s(char *str, rsize_t str_size, const char *format, void *args);\n")
	sb.WriteString("char *gets_s(char *dst, rsize_t dst_size);\n")
	sb.WriteString("unsigned long malloc_usable_size(void *ptr);\n")
	return sb.String()
}
