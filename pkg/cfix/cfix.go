// Package cfix is the public API of the buffer-overflow-fixing library —
// a reproduction of "Automatically Fixing C Buffer Overflows Using Program
// Transformations" (DSN 2014).
//
// The two entry points mirror the paper's workflow:
//
//   - Fix applies the SAFE LIBRARY REPLACEMENT and SAFE TYPE REPLACEMENT
//     transformations to a preprocessed C translation unit, either in
//     batch (all eligible sites/variables) or case-by-case (a selected
//     call expression), and reports every decision.
//
//   - Run executes a translation unit under the checked interpreter,
//     returning the program's output together with any memory-safety
//     violations (classified by CWE) — the oracle used to demonstrate
//     that a fix removed an overflow without changing normal behavior.
//
//   - Analyze runs the static overflow oracle — an interprocedural
//     interval analysis — and returns CWE-classified findings without
//     executing or transforming the program.
//
// A typical quickstart:
//
//	report, err := cfix.Fix("prog.c", source, cfix.Options{})
//	if err != nil { ... }
//	fmt.Println(report.Summary())
//	fmt.Println(report.Source) // the fixed C source
package cfix

import (
	"context"
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/cinterp"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/harness"
	"repro/internal/overflow"
	"repro/internal/slr"
	"repro/internal/stralloc"
	"repro/internal/typecheck"
)

// Options configures Fix. The zero value runs both transformations in
// batch mode without emitting support code.
type Options struct {
	// DisableSLR skips SAFE LIBRARY REPLACEMENT.
	DisableSLR bool
	// DisableSTR skips SAFE TYPE REPLACEMENT.
	DisableSTR bool
	// SelectOffset restricts SLR to the call expression covering this
	// byte offset; use -1 (or leave 0 with SelectAll) for batch mode.
	SelectOffset int
	// SelectAll forces batch mode (the default when SelectOffset is 0).
	SelectAll bool
	// EmitSupport prepends the stralloc library and glib prototypes so
	// the output is a self-contained translation unit.
	EmitSupport bool
	// Lint additionally runs the static overflow oracle on the input and
	// attaches its verdicts to the SLR/STR candidate reports, ranking the
	// summary by risk. The findings land in Report.Findings.
	Lint bool
	// Checks selects which static-analysis oracles lint runs: "buf" (the
	// buffer-overflow oracle), "int" (the integer-overflow oracle,
	// CWE-190/191/680 with suggested precondition guards), "all", or a
	// comma list. Empty means "buf", the historical behavior.
	Checks string
	// Backend names the safe-function dialect SLR rewrites to: "glib"
	// (g_strlcpy and friends, the paper's default), "bsd"
	// (strlcpy/strlcat), or "c11k" (C11 Annex K strcpy_s and friends,
	// with the destination size before the source). Empty means glib;
	// unknown names fail the request. See Backends.
	Backend string
	// Timeout bounds the processing of one file; 0 means none. On expiry
	// the in-flight analysis is interrupted at its next iteration
	// boundary and the file fails with context.DeadlineExceeded.
	Timeout time.Duration
	// Budget bounds every fixpoint solver's iterations and the number of
	// interprocedural contexts explored per file; 0 means unlimited.
	// Exhausted budgets degrade to conservative results recorded in
	// Report.Degraded — never a silently clean report.
	Budget int
	// KeepGoing returns partial results instead of an error when a later
	// pipeline stage fails: an SLR-only report if STR crashes, an
	// untransformed lint report if SLR crashes. The skipped stages are
	// explained in Report.Degraded. Cancellation and timeouts still fail
	// the file.
	KeepGoing bool
	// Cache, when non-nil, serves repeated identical requests from a
	// content-addressed result cache instead of re-running the pipeline
	// (Report.Cached marks a hit), and collapses concurrent identical
	// requests into one computation. Share one ResultCache across calls;
	// see NewResultCache.
	Cache *ResultCache
	// Tracer, when non-nil, records one span per pipeline stage with
	// monotonic timings and attributes (file, solver effort, degradation
	// reason) — the observability layer behind `cfix -trace` and
	// `-stage-stats`. Tracing never changes a result; see NewTracer.
	Tracer *Tracer
}

// Report is the outcome of Fix. See core.Report for field semantics.
type Report = core.Report

// coreOptions translates the public options to the composition root's.
func coreOptions(opts Options) core.Options {
	sel := -1
	if !opts.SelectAll && opts.SelectOffset > 0 {
		sel = opts.SelectOffset
	}
	return core.Options{
		DisableSLR:   opts.DisableSLR,
		DisableSTR:   opts.DisableSTR,
		SelectOffset: sel,
		EmitSupport:  opts.EmitSupport,
		Lint:         opts.Lint,
		Checks:       opts.Checks,
		Backend:      opts.Backend,
		Timeout:      opts.Timeout,
		Budget:       opts.Budget,
		KeepGoing:    opts.KeepGoing,
		Cache:        opts.Cache.internal(),
		Tracer:       opts.Tracer,
	}
}

// Fix applies the transformations to source (a preprocessed C translation
// unit). filename is used in diagnostics only. The input is parsed exactly
// once into a shared analysis-facts snapshot that lint, SLR and (when SLR
// leaves the text unchanged) STR all consume.
func Fix(filename, source string, opts Options) (*Report, error) {
	return FixContext(context.Background(), filename, source, opts)
}

// FixContext is Fix with cooperative cancellation: ctx is polled at
// every solver iteration boundary, so cancelling it (or exceeding
// Options.Timeout) interrupts even a pathological analysis promptly and
// returns the context's error.
func FixContext(ctx context.Context, filename, source string, opts Options) (*Report, error) {
	return core.Fix(ctx, filename, source, coreOptions(opts))
}

// FileInput names one translation unit for batch processing.
type FileInput = core.FileInput

// FileOutput pairs one batch input with its fix outcome.
type FileOutput = core.FileOutput

// FileFindings pairs one batch input with its lint outcome.
type FileFindings = core.FileFindings

// FixAll applies Fix to every input through a bounded worker pool and
// returns per-file outcomes in input order — the whole-project batch mode
// behind `cfix -j N file1.c file2.c ...`. Each file gets its own analysis
// snapshot, so outputs are byte-identical to sequential Fix calls.
// workers <= 0 means one worker per CPU.
func FixAll(files []FileInput, opts Options, workers int) []FileOutput {
	return FixAllContext(context.Background(), files, opts, workers)
}

// FixAllContext is FixAll with cooperative cancellation. Each file is
// its own fault boundary: one file's panic, timeout or budget
// exhaustion lands in that file's FileOutput.Err (or Report.Degraded)
// without disturbing its batch-mates; cancelling ctx fails the files
// not yet started with the context error.
func FixAllContext(ctx context.Context, files []FileInput, opts Options, workers int) []FileOutput {
	return core.FixAll(ctx, files, coreOptions(opts), workers)
}

// AnalyzeAll runs the static overflow oracle over every input through the
// same bounded worker pool, returning per-file findings in input order.
// workers <= 0 means one worker per CPU.
func AnalyzeAll(files []FileInput, workers int) []FileFindings {
	return AnalyzeAllContext(context.Background(), files, Options{}, workers)
}

// AnalyzeAllContext is AnalyzeAll with cooperative cancellation and
// per-file fault containment; Options.Timeout and Options.Budget apply
// per file.
func AnalyzeAllContext(ctx context.Context, files []FileInput, opts Options, workers int) []FileFindings {
	return core.AnalyzeAll(ctx, files, coreOptions(opts), workers)
}

// Finding is one statically diagnosed buffer overflow: a CWE class
// (121/122/124/126/127/242), a severity (definite when the access
// provably exceeds every size the object can have, possible when the
// computed intervals merely overlap), the source extent, and the
// would-be SLR/STR repair.
type Finding = overflow.Finding

// Severity re-exports the finding severity scale.
type Severity = overflow.Severity

// Severity levels.
const (
	SevPossible = overflow.SevPossible
	SevDefinite = overflow.SevDefinite
)

// CWEName returns the short official name of a supported CWE id.
func CWEName(cwe int) string { return overflow.CWEName(cwe) }

// Analyze statically diagnoses buffer overflows in source (a preprocessed
// C translation unit) without transforming or executing it. Findings come
// back deduplicated, in source order. filename is used in diagnostics
// only.
func Analyze(filename, source string) ([]Finding, error) {
	return AnalyzeContext(context.Background(), filename, source, Options{})
}

// AnalyzeContext is Analyze with cooperative cancellation;
// Options.Timeout and Options.Budget bound the analysis.
func AnalyzeContext(ctx context.Context, filename, source string, opts Options) ([]Finding, error) {
	fs, err := core.Analyze(ctx, filename, source, coreOptions(opts))
	if err != nil {
		return nil, fmt.Errorf("cfix: %w", err)
	}
	return fs, nil
}

// RunResult is the outcome of executing a program under the checked
// interpreter.
type RunResult struct {
	// Stdout is the program's printed output.
	Stdout string
	// Return is the entry function's return value.
	Return int64
	// Violations lists detected memory-safety events in order, each
	// carrying its CWE class (121/122/124/126/127 for the overflow
	// classes the paper evaluates, plus 416/476/...).
	Violations []cinterp.Violation
	// Steps counts interpreted evaluation steps (a machine-independent
	// cost measure).
	Steps int64
}

// Safe reports whether the run completed without memory-safety events.
func (r *RunResult) Safe() bool { return len(r.Violations) == 0 }

// Run executes entry() in source under the checked interpreter. stdin
// lines feed gets/fgets.
func Run(filename, source, entry string, stdin []string) (*RunResult, error) {
	unit, err := cparse.Parse(filename, source)
	if err != nil {
		return nil, fmt.Errorf("cfix: parse: %w", err)
	}
	typecheck.Check(unit)
	in, err := cinterp.New(unit, cinterp.Limits{})
	if err != nil {
		return nil, fmt.Errorf("cfix: %w", err)
	}
	in.SetStdin(stdin)
	res, err := in.Run(entry)
	if err != nil {
		return nil, fmt.Errorf("cfix: run: %w", err)
	}
	return &RunResult{
		Stdout:     res.Stdout,
		Return:     res.Return,
		Violations: res.Violations,
		Steps:      in.Steps(),
	}, nil
}

// Violation re-exports the checked interpreter's event type.
type Violation = cinterp.Violation

// Verdict re-exports the end-to-end verification outcome: pre/post
// execution results, per-transformation counts, and the three judgments
// (VulnDetected, Fixed, Preserved).
type Verdict = harness.Verdict

// Verify runs the paper's full evaluation protocol on one program: execute
// goodEntry and badEntry under the checked interpreter, apply SLR then STR
// in batch mode, re-execute, and judge whether the bad function's overflow
// was fixed and the good function's behavior preserved. stdin lines are
// re-queued before every run.
func Verify(filename, source, goodEntry, badEntry string, stdin []string) (*Verdict, error) {
	return harness.Verify(filename, source, goodEntry, badEntry, harness.Options{Stdin: stdin})
}

// SupportSource returns the C support code transformed programs may need:
// the stralloc header and implementation plus prototypes for the
// glib-style safe functions (the default backend).
func SupportSource() string {
	return stralloc.FullSource() + "\n" + slr.GlibPrototypes()
}

// SupportSourceFor is SupportSource for a named repair backend: the
// stralloc runtime plus that dialect's safe-function prototypes.
func SupportSourceFor(name string) (string, error) {
	be, err := backend.Get(name)
	if err != nil {
		return "", err
	}
	return stralloc.FullSource() + "\n" + be.Prototypes(), nil
}

// Backends lists the valid Options.Backend names in registry order:
// glib, bsd, c11k.
func Backends() []string { return backend.Names() }

// CanonicalBackend validates a backend name and returns its canonical
// form ("" canonicalizes to "glib"). The error names the valid set —
// CLIs surface it verbatim at flag-parse time.
func CanonicalBackend(name string) (string, error) { return backend.Canonical(name) }

// BackendDescription returns a one-line description of a named backend
// (for -h output and docs); unknown names return an error.
func BackendDescription(name string) (string, error) {
	be, err := backend.Get(name)
	if err != nil {
		return "", err
	}
	return be.Description(), nil
}
