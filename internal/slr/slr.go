package slr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/buflen"
	"repro/internal/cast"
	"repro/internal/ctoken"
	"repro/internal/overflow"
	"repro/internal/pointsto"
	"repro/internal/rewrite"
	"repro/internal/typecheck"
)

// SiteResult records the outcome of attempting SLR on one call site.
type SiteResult struct {
	// Function is the unsafe function at the site.
	Function string
	// SafeName is the replacement callee the active backend targets for
	// this site (recorded even when the site was not transformed, so
	// summaries can say what would have been emitted).
	SafeName string
	// Pos locates the call in the source.
	Pos ctoken.Position
	// Extent is the source range of the call expression.
	Extent ctoken.Extent
	// Applied reports whether the site was transformed.
	Applied bool
	// Size is the computed buffer size (valid when Applied).
	Size buflen.Size
	// Failure explains a precondition failure (set when !Applied).
	Failure *buflen.Failure
	// Risk is the static overflow verdict covering this call, if the
	// overflow oracle reported one (see FileResult.AttachFindings).
	Risk *overflow.Finding
}

// FileResult is the outcome of running SLR over a translation unit.
type FileResult struct {
	// NewSource is the transformed text (equal to the input when nothing
	// was applied).
	NewSource string
	// Sites lists every candidate call site in source order.
	Sites []SiteResult
	// NeedsGlib reports that the output calls safe functions outside the
	// hosted C standard library, so the build needs the backend's
	// library — -lglib-2.0 for the default glib dialect, -lbsd for BSD
	// strlcpy, a TR 24731-1 implementation for c11k (the paper edits the
	// Makefile; we surface the requirement to the caller). The field
	// name predates pluggable backends and is kept for compatibility.
	NeedsGlib bool
	// Edits are the raw textual edits behind NewSource, each tagged with
	// its owning site as "site:<index into Sites>". Project mode remaps
	// them through the preprocessor's source map instead of using
	// NewSource. Omitted from serialized reports.
	Edits []rewrite.Edit `json:"-"`
}

// Candidates returns the number of candidate call sites.
func (r *FileResult) Candidates() int { return len(r.Sites) }

// AppliedCount returns the number of transformed call sites.
func (r *FileResult) AppliedCount() int {
	n := 0
	for _, s := range r.Sites {
		if s.Applied {
			n++
		}
	}
	return n
}

// AttachFindings pairs each candidate site with the most severe overflow
// oracle finding whose extent overlaps the call expression. The findings
// must come from analyzing the same source text the transformer parsed,
// so that extents are comparable.
func (r *FileResult) AttachFindings(fs []overflow.Finding) {
	for i := range r.Sites {
		s := &r.Sites[i]
		for j := range fs {
			f := &fs[j]
			if f.Extent.Pos >= s.Extent.End || s.Extent.Pos >= f.Extent.End {
				continue
			}
			if s.Risk == nil || f.Severity > s.Risk.Severity {
				s.Risk = f
			}
		}
	}
}

// RankedSites returns the candidate sites ordered by static risk:
// definite overflows first, then possible, then unflagged sites, each
// group in source order. It does not modify r.Sites.
func (r *FileResult) RankedSites() []SiteResult {
	out := append([]SiteResult(nil), r.Sites...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := overflow.Severity(0), overflow.Severity(0)
		if out[i].Risk != nil {
			si = out[i].Risk.Severity
		}
		if out[j].Risk != nil {
			sj = out[j].Risk.Severity
		}
		if si != sj {
			return si > sj
		}
		return out[i].Extent.Pos < out[j].Extent.Pos
	})
	return out
}

// Transformer applies SLR to one translation unit.
type Transformer struct {
	unit     *cast.TranslationUnit
	analyzer *buflen.Analyzer
	// be is the safe-function dialect the rewrite targets.
	be backend.Backend
	// usedNames tracks identifiers in the unit so generated temporaries
	// are fresh.
	usedNames map[string]struct{}
}

// NewTransformer prepares a transformer for the unit with the default
// (glib) backend. The unit is type-checked here if callers have not done
// so already (repeated checking is harmless).
func NewTransformer(unit *cast.TranslationUnit) *Transformer {
	return NewTransformerOpts(unit, pointsto.Options{})
}

// NewTransformerBackend is NewTransformer targeting an explicit repair
// backend.
func NewTransformerBackend(unit *cast.TranslationUnit, be backend.Backend) *Transformer {
	typecheck.Check(unit)
	return newTransformer(unit, buflen.NewAnalyzerOpts(unit, pointsto.Options{}), be)
}

// NewTransformerOpts prepares a transformer with an explicit points-to
// configuration; the precision ablation passes FieldSensitive.
func NewTransformerOpts(unit *cast.TranslationUnit, ptOpts pointsto.Options) *Transformer {
	typecheck.Check(unit)
	return newTransformer(unit, buflen.NewAnalyzerOpts(unit, ptOpts), nil)
}

// NewTransformerSnap prepares a transformer on a shared analysis-facts
// snapshot: type analysis, points-to, alias sets, CFGs and reaching
// definitions are reused rather than re-derived from the bare unit.
func NewTransformerSnap(s *analysis.Snapshot) *Transformer {
	return NewTransformerSnapBackend(s, nil)
}

// NewTransformerSnapBackend is NewTransformerSnap targeting an explicit
// repair backend; nil selects the default (glib).
func NewTransformerSnapBackend(s *analysis.Snapshot, be backend.Backend) *Transformer {
	s.Typecheck()
	return newTransformer(s.Unit(), s.BufLenAnalyzer(), be)
}

func newTransformer(unit *cast.TranslationUnit, analyzer *buflen.Analyzer, be backend.Backend) *Transformer {
	if be == nil {
		be = backend.Default()
	}
	t := &Transformer{
		unit:      unit,
		analyzer:  analyzer,
		be:        be,
		usedNames: make(map[string]struct{}),
	}
	for _, s := range unit.Symbols {
		t.usedNames[s.Name] = struct{}{}
	}
	return t
}

// Analyzer exposes the underlying buffer-length analyzer.
func (t *Transformer) Analyzer() *buflen.Analyzer { return t.analyzer }

// Backend exposes the dialect the transformer targets.
func (t *Transformer) Backend() backend.Backend { return t.be }

// candidate is one unsafe call found in the unit.
type candidate struct {
	fn   *cast.FuncDef
	call *cast.CallExpr
	rule backend.Replacement
	// stmt is the smallest statement enclosing the call (for gets/memcpy
	// which insert neighbouring statements).
	stmt cast.Stmt
	// inBlock reports that stmt is a direct item of a compound statement.
	// When false (a brace-less if/while arm), multi-statement rewrites
	// must add braces or the inserted statements would escape the guard.
	inBlock bool
}

// findCandidates walks the unit for unsafe calls in source order.
func (t *Transformer) findCandidates() []candidate {
	var out []candidate
	for _, fn := range t.unit.Funcs {
		fn := fn
		var walkStmt func(s cast.Stmt, inBlock bool)
		walkExpr := func(e cast.Expr, enclosing cast.Stmt, inBlock bool) {
			cast.Inspect(e, func(n cast.Node) bool {
				call, ok := n.(*cast.CallExpr)
				if !ok {
					return true
				}
				rule, ok := t.be.Lookup(call.Callee())
				if !ok {
					return true
				}
				out = append(out, candidate{
					fn: fn, call: call, rule: rule, stmt: enclosing, inBlock: inBlock,
				})
				return true
			})
		}
		walkStmt = func(s cast.Stmt, inBlock bool) {
			if s == nil {
				return
			}
			switch x := s.(type) {
			case *cast.ExprStmt:
				walkExpr(x.X, x, inBlock)
			case *cast.DeclStmt:
				for _, d := range x.Decls {
					if d.Init != nil {
						walkExpr(d.Init, x, inBlock)
					}
				}
			case *cast.ReturnStmt:
				if x.Result != nil {
					walkExpr(x.Result, x, inBlock)
				}
			case *cast.IfStmt:
				walkExpr(x.Cond, x, inBlock)
				walkStmt(x.Then, false)
				walkStmt(x.Else, false)
			case *cast.WhileStmt:
				walkExpr(x.Cond, x, inBlock)
				walkStmt(x.Body, false)
			case *cast.DoWhileStmt:
				walkStmt(x.Body, false)
				walkExpr(x.Cond, x, inBlock)
			case *cast.ForStmt:
				walkStmt(x.Init, false)
				if x.Cond != nil {
					walkExpr(x.Cond, x, false)
				}
				if x.Post != nil {
					walkExpr(x.Post, x, false)
				}
				walkStmt(x.Body, false)
			case *cast.CompoundStmt:
				for _, item := range x.Items {
					walkStmt(item, true)
				}
			case *cast.LabeledStmt:
				walkStmt(x.Stmt, inBlock)
			case *cast.SwitchStmt:
				walkExpr(x.Tag, x, inBlock)
				walkStmt(x.Body, false)
			case *cast.CaseStmt:
				walkStmt(x.Stmt, true)
			}
		}
		walkStmt(fn.Body, true)
	}
	return out
}

// ApplyAll runs SLR on every candidate call site in the unit and returns
// the rewritten source plus per-site outcomes. This is the batch mode used
// by the evaluation (Section IV); ApplyAt transforms a single selected
// site.
func (t *Transformer) ApplyAll() (*FileResult, error) {
	return t.apply(nil)
}

// ApplyAt runs SLR only on the call site covering the given source offset
// (the "developer selects a function call expression" workflow of Section
// II-A2).
func (t *Transformer) ApplyAt(offset ctoken.Pos) (*FileResult, error) {
	return t.apply(func(c candidate) bool {
		e := c.call.Extent()
		return e.Pos <= offset && offset < e.End
	})
}

func (t *Transformer) apply(filter func(candidate) bool) (*FileResult, error) {
	res := &FileResult{}
	var edits rewrite.Set
	for _, c := range t.findCandidates() {
		if filter != nil && !filter(c) {
			continue
		}
		edits.SetOwner(fmt.Sprintf("site:%d", len(res.Sites)))
		site := SiteResult{
			Function: c.call.Callee(),
			SafeName: c.rule.Safe,
			Pos:      t.unit.File.Position(c.call.Extent().Pos),
			Extent:   c.call.Extent(),
		}
		size, fail := t.applyOne(c, &edits)
		if fail != nil {
			site.Failure = fail
		} else {
			site.Applied = true
			site.Size = size
			if c.rule.NeedsLib {
				res.NeedsGlib = true
			}
		}
		res.Sites = append(res.Sites, site)
	}
	res.Edits = edits.Edits()
	out, err := edits.Apply(t.unit.File.Src())
	if err != nil {
		return nil, fmt.Errorf("slr: apply edits: %w", err)
	}
	res.NewSource = out
	return res, nil
}

// applyOne attempts one site, queueing edits on success.
func (t *Transformer) applyOne(c candidate, edits *rewrite.Set) (buflen.Size, *buflen.Failure) {
	if len(c.call.Args) < c.rule.MinArgs {
		return buflen.Size{}, &buflen.Failure{
			Reason: buflen.FailUnsupportedForm,
			Detail: fmt.Sprintf("%s with fewer than %d arguments", c.rule.Unsafe, c.rule.MinArgs),
		}
	}
	dest := c.call.Args[0]
	size, fail := t.analyzer.BufferLength(c.fn, dest)
	if fail != nil {
		return buflen.Size{}, fail
	}
	switch c.rule.Kind {
	case backend.KindRename:
		t.editRename(c, size, edits)
	case backend.KindGets:
		t.editGets(c, size, edits)
	case backend.KindClamp:
		if f := t.editMemcpy(c, size, edits); f != nil {
			return buflen.Size{}, f
		}
	}
	return size, nil
}

// editRename renames the callee and inserts the size parameter where the
// dialect wants it: strcpy(dst, src) -> g_strlcpy(dst, src, sizeof(buf))
// under glib/bsd (size appended after the source), but
// strcpy_s(dst, sizeof(buf), src) under c11k (size before the source).
func (t *Transformer) editRename(c candidate, size buflen.Size, edits *rewrite.Set) {
	fun := cast.Unparen(c.call.Fun)
	edits.Replace(fun.Extent(), c.rule.Safe, "rename "+c.rule.Unsafe+" to "+c.rule.Safe)
	insertAfter := c.call.Args[c.rule.SizeAfterArg]
	edits.InsertAfter(insertAfter.Extent(), ", "+size.CText(), "insert size parameter")
}

// editGets rewrites gets(dst) to the dialect's bounded line reader —
// fgets(dst, size, stdin) for glib/bsd, gets_s(dst, size) for c11k —
// and, when the reader keeps the terminating newline gets discards
// (fgets; Section III-B2), appends the newline-stripping sequence after
// the enclosing statement.
func (t *Transformer) editGets(c candidate, size buflen.Size, edits *rewrite.Set) {
	fun := cast.Unparen(c.call.Fun)
	edits.Replace(fun.Extent(), c.rule.Safe, "replace gets with "+c.rule.Safe)
	dest := c.call.Args[c.rule.SizeAfterArg]
	ins := ", " + size.CText()
	for _, extra := range c.rule.ExtraArgs {
		ins += ", " + extra
	}
	edits.InsertAfter(dest.Extent(), ins, "bounded reader arguments")
	if !c.rule.StripNewline {
		return
	}

	destText := t.text(c.call.Args[0])
	checkVar := t.freshName("check")
	indent := t.indentOf(c.stmt.Extent())
	fix := fmt.Sprintf("\n%schar *%s = strchr(%s, '\\n');\n%sif (%s) { *%s = '\\0'; }",
		indent, checkVar, destText, indent, checkVar, checkVar)
	if !c.inBlock {
		// Brace-less branch arm: the stripping statements must stay under
		// the same guard as the call.
		edits.InsertBefore(c.stmt.Extent(), "{ ", "open brace for gets fix")
		fix += "\n" + indent + "}"
	}
	edits.InsertAfter(c.stmt.Extent(), fix, "strip fgets newline")
}

// editMemcpy clamps the length parameter (Section III-B3). Option 1
// (length reused later) assigns the clamped value before the call; option
// 2 replaces the parameter with a ternary in place.
func (t *Transformer) editMemcpy(c candidate, size buflen.Size, edits *rewrite.Set) *buflen.Failure {
	if len(c.call.Args) < 3 {
		return &buflen.Failure{Reason: buflen.FailUnsupportedForm, Detail: "memcpy with fewer than 3 arguments"}
	}
	lenArg := c.call.Args[2]
	sizeText := size.CText()
	lenText := t.text(lenArg)
	if clampedBy(lenText, sizeText) {
		// The length argument is already the clamp we would generate —
		// the input is a previous pass's output; wrapping it again would
		// nest the ternary. Decline so Fix stays idempotent.
		return &buflen.Failure{Reason: buflen.FailAlreadyClamped}
	}

	if id, ok := cast.Unparen(lenArg).(*cast.Ident); ok && id.Sym != nil && t.usedAfter(c, id) {
		// Option 1: length is used by later statements; assign the clamp
		// so subsequent uses (e.g. null-termination at dst[len]) see the
		// truncated count.
		clamp := fmt.Sprintf("%s = %s > %s ? %s : %s;",
			id.Name, sizeText, lenText, lenText, sizeText)
		if t.precededBy(c, clamp) {
			// A previous pass already inserted this exact clamp right
			// before the call.
			return &buflen.Failure{Reason: buflen.FailAlreadyClamped}
		}
		indent := t.indentOf(c.stmt.Extent())
		assign := clamp + "\n" + indent
		if !c.inBlock {
			// Brace-less branch arm: keep the clamp and the call under
			// the same guard.
			edits.InsertBefore(c.stmt.Extent(), "{ "+assign, "clamp memcpy length (braced)")
			edits.InsertAfter(c.stmt.Extent(), " }", "close brace for memcpy clamp")
			return nil
		}
		edits.InsertBefore(c.stmt.Extent(), assign, "clamp memcpy length (reused)")
		return nil
	}
	// Option 2: replace the parameter with the clamping ternary.
	tern := fmt.Sprintf("%s > %s ? %s : %s", sizeText, lenText, lenText, sizeText)
	edits.Replace(lenArg.Extent(), tern, "clamp memcpy length (in place)")
	return nil
}

// clampedBy reports whether expr is exactly the clamping ternary
// editMemcpy generates for size: "size > n ? n : size" for some n.
func clampedBy(expr, size string) bool {
	rest, ok := strings.CutPrefix(expr, size+" > ")
	if !ok {
		return false
	}
	rest, ok = strings.CutSuffix(rest, " : "+size)
	if !ok {
		return false
	}
	// What remains must be "n ? n" with both halves identical (n may
	// itself contain ternaries, so split at the middle, not the first
	// "?").
	if len(rest) < 5 || len(rest)%2 == 0 {
		return false
	}
	mid := (len(rest) - 3) / 2
	return rest[mid:mid+3] == " ? " && rest[:mid] == rest[mid+3:]
}

// precededBy reports whether the candidate's enclosing statement is
// immediately preceded (up to whitespace and an opening brace) by the
// given text — used to recognize a clamp assignment inserted by a
// previous pass.
func (t *Transformer) precededBy(c candidate, text string) bool {
	src := t.unit.File.Src()
	before := strings.TrimRight(string(src[:c.stmt.Extent().Pos]), " \t\n{")
	return strings.HasSuffix(before, text)
}

// usedAfter reports whether the identifier's symbol is referenced after
// the candidate's enclosing statement ("used in statements that are
// successors in control flow"; source order over the function body is the
// conservative approximation for the structured-control corpora).
func (t *Transformer) usedAfter(c candidate, id *cast.Ident) bool {
	after := c.stmt.Extent().End
	used := false
	cast.Inspect(c.fn.Body, func(n cast.Node) bool {
		if used {
			return false
		}
		if use, ok := n.(*cast.Ident); ok && use.Sym == id.Sym && use.Extent().Pos >= after {
			used = true
		}
		return true
	})
	return used
}

// text returns the source spelling of a node.
func (t *Transformer) text(n cast.Node) string {
	return t.unit.File.Slice(n.Extent())
}

// indentOf returns the whitespace prefix of the line the extent starts on.
func (t *Transformer) indentOf(e ctoken.Extent) string {
	src := t.unit.File.Src()
	lineStart := int(e.Pos)
	for lineStart > 0 && src[lineStart-1] != '\n' {
		lineStart--
	}
	end := lineStart
	for end < len(src) && (src[end] == ' ' || src[end] == '\t') {
		end++
	}
	return src[lineStart:end]
}

// freshName returns base if unused in the unit, otherwise base_2, base_3…
func (t *Transformer) freshName(base string) string {
	if _, taken := t.usedNames[base]; !taken {
		t.usedNames[base] = struct{}{}
		return base
	}
	for i := 2; ; i++ {
		name := fmt.Sprintf("%s_%d", base, i)
		if _, taken := t.usedNames[name]; !taken {
			t.usedNames[name] = struct{}{}
			return name
		}
	}
}

// GlibPrototypes returns the declarations a transformed file needs when
// glib headers are unavailable; cmd/cfix can prepend them. Kept as a
// convenience alias for the default backend's prototypes — other
// dialects' declarations come from backend.Get(name).Prototypes().
func GlibPrototypes() string {
	return backend.Glib.Prototypes()
}
