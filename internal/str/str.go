package str

import (
	"fmt"
	"sort"

	"repro/internal/analysis"
	"repro/internal/cast"
	"repro/internal/ctoken"
	"repro/internal/ctype"
	"repro/internal/interproc"
	"repro/internal/overflow"
	"repro/internal/pointsto"
	"repro/internal/rewrite"
	"repro/internal/typecheck"
)

// FailReason classifies why STR refused a candidate variable.
type FailReason int

// Failure reasons, mirroring the preconditions of Section II-B2 and the
// conservative interprocedural analysis of Section III-C.
const (
	FailNone FailReason = iota
	// FailNotLocal: the variable is a global, a parameter, or a struct
	// member (precondition 2).
	FailNotLocal
	// FailUnsupportedLib: the variable is used in an unsupported C
	// library function (precondition 3).
	FailUnsupportedLib
	// FailUserFnMayModify: a user-defined function receiving the pointer
	// may modify the buffer (Section III-C's conservative interprocedural
	// analysis).
	FailUserFnMayModify
	// FailUnsupportedUse: the variable appears in an expression shape the
	// replacement patterns do not cover (e.g. its address is taken).
	FailUnsupportedUse
	// FailMacroOrHeader: project mode only — a rewrite for this
	// variable's function maps into a macro expansion or an included
	// header, so the whole function's STR is declined rather than
	// miswriting the user's text. Appended after the paper-derived
	// reasons to keep their serialized values stable.
	FailMacroOrHeader
)

var _failNames = map[FailReason]string{
	FailNone:            "none",
	FailMacroOrHeader:   "rewrite target inside a macro expansion or included header",
	FailNotLocal:        "not a locally declared variable",
	FailUnsupportedLib:  "used in unsupported C library function",
	FailUserFnMayModify: "user-defined function may modify the buffer",
	FailUnsupportedUse:  "unsupported use of the variable",
}

// String returns the reason description.
func (r FailReason) String() string { return _failNames[r] }

// VarResult records the outcome for one candidate variable.
type VarResult struct {
	Name string
	// Func is the function the variable is declared in.
	Func    string
	Pos     ctoken.Position
	// Extent is the source range of the variable's declaration (the
	// anchor project mode remaps positions through).
	Extent  ctoken.Extent
	Applied bool
	Reason  FailReason
	Detail  string
	// IsPointer distinguishes char pointers from char arrays. The paper's
	// Table VI counts pointers ("STR was applied to all char pointers in
	// local scope"); arrays are also transformable (precondition 1 allows
	// both) but reported separately.
	IsPointer bool
	// Risk is the static overflow verdict involving this variable, if the
	// overflow oracle reported one (see FileResult.AttachFindings).
	Risk *overflow.Finding
}

// FileResult is the outcome of running STR over a translation unit.
type FileResult struct {
	NewSource string
	Vars      []VarResult
	// Edits are the raw textual edits behind NewSource, tagged with
	// their owning function as "func:<name>" (STR rewrites are
	// all-or-nothing per function: the inserted stralloc calls and
	// renames within one function depend on each other). Omitted from
	// serialized reports.
	Edits []rewrite.Edit `json:"-"`
	// NeedsStralloc reports that the output uses the stralloc library;
	// callers must make internal/stralloc's C header and implementation
	// available at build time.
	NeedsStralloc bool
	// Log carries the detailed refusal messages the paper prints for
	// variables that fail the interprocedural precondition.
	Log []string
}

// Candidates returns the number of candidate variables.
func (r *FileResult) Candidates() int { return len(r.Vars) }

// AppliedCount returns the number of replaced variables.
func (r *FileResult) AppliedCount() int {
	n := 0
	for _, v := range r.Vars {
		if v.Applied {
			n++
		}
	}
	return n
}

// AttachFindings pairs each candidate variable with the most severe
// overflow oracle finding that names it as the overflowed object in the
// same function. Matching is by (function, variable) name because STR
// may run on transformed text whose extents no longer line up with the
// source the oracle analyzed.
func (r *FileResult) AttachFindings(fs []overflow.Finding) {
	for i := range r.Vars {
		v := &r.Vars[i]
		for j := range fs {
			f := &fs[j]
			if f.Object == "" || f.Object != v.Name || f.Function != v.Func {
				continue
			}
			if v.Risk == nil || f.Severity > v.Risk.Severity {
				v.Risk = f
			}
		}
	}
}

// RankedVars returns the candidate variables ordered by static risk:
// definite overflows first, then possible, then unflagged variables,
// each group in source order. It does not modify r.Vars.
func (r *FileResult) RankedVars() []VarResult {
	out := append([]VarResult(nil), r.Vars...)
	sort.SliceStable(out, func(i, j int) bool {
		si, sj := overflow.Severity(0), overflow.Severity(0)
		if out[i].Risk != nil {
			si = out[i].Risk.Severity
		}
		if out[j].Risk != nil {
			sj = out[j].Risk.Severity
		}
		if si != sj {
			return si > sj
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Col < out[j].Pos.Col
	})
	return out
}

// candidate is one local char pointer/array declaration.
type candidate struct {
	fn    *cast.FuncDef
	decl  *cast.VarDecl
	stmt  *cast.DeclStmt
	inFor bool // declared in a for-init (single-statement position)
}

// Transformer applies STR to one translation unit.
type Transformer struct {
	unit    *cast.TranslationUnit
	inter   *interproc.Result
	parents map[cast.Node]cast.Node
	// targets is the final eligible symbol set (phase 1 output).
	targets map[*cast.Symbol]bool
	// declOf maps a target symbol to its candidate record.
	declOf map[*cast.Symbol]*candidate
	// usedNames for fresh temporaries.
	usedNames map[string]struct{}
}

// NewTransformer prepares STR for the unit.
func NewTransformer(unit *cast.TranslationUnit) *Transformer {
	typecheck.Check(unit)
	return newTransformer(unit, interproc.Analyze(unit))
}

// NewTransformerSnap prepares STR on a shared analysis-facts snapshot:
// type analysis, the call graph and the interprocedural may-modify facts
// are reused rather than re-derived from the bare unit.
func NewTransformerSnap(s *analysis.Snapshot) *Transformer {
	s.Typecheck()
	return newTransformer(s.Unit(), s.MayModify())
}

func newTransformer(unit *cast.TranslationUnit, inter *interproc.Result) *Transformer {
	t := &Transformer{
		unit:      unit,
		inter:     inter,
		parents:   buildParents(unit),
		targets:   make(map[*cast.Symbol]bool),
		declOf:    make(map[*cast.Symbol]*candidate),
		usedNames: make(map[string]struct{}),
	}
	for _, s := range unit.Symbols {
		t.usedNames[s.Name] = struct{}{}
	}
	return t
}

// buildParents records each node's parent for context classification.
func buildParents(unit *cast.TranslationUnit) map[cast.Node]cast.Node {
	parents := make(map[cast.Node]cast.Node)
	var walk func(n cast.Node)
	walk = func(n cast.Node) {
		for _, c := range cast.Children(n) {
			parents[c] = n
			walk(c)
		}
	}
	walk(unit)
	return parents
}

// findCandidates collects local char pointer/array declarations in source
// order.
func (t *Transformer) findCandidates() []*candidate {
	var out []*candidate
	for _, fn := range t.unit.Funcs {
		fn := fn
		cast.Inspect(fn.Body, func(n cast.Node) bool {
			ds, ok := n.(*cast.DeclStmt)
			if !ok {
				return true
			}
			_, inFor := t.parents[ds].(*cast.ForStmt)
			for _, d := range ds.Decls {
				// An unnamed declarator (e.g. a stray "char[];") has no
				// variable to replace; rewriting it would corrupt the text.
				if d.Sym == nil || d.Global || d.Name == "" {
					continue
				}
				if !ctype.IsCharPointer(d.Type) && !ctype.IsCharArray(d.Type) {
					continue
				}
				c := &candidate{fn: fn, decl: d, stmt: ds, inFor: inFor}
				out = append(out, c)
			}
			return true
		})
	}
	return out
}

// ApplyAll runs STR on every eligible local char pointer in the unit (the
// batch mode of Section IV). Ineligible candidates are reported with their
// failure reason and left untouched.
func (t *Transformer) ApplyAll() (*FileResult, error) {
	return t.apply(nil)
}

// ApplyVar runs STR on the single variable with the given name declared in
// the named function (the "developer selects a char pointer" workflow of
// Section II-B2).
func (t *Transformer) ApplyVar(funcName, varName string) (*FileResult, error) {
	return t.apply(func(c *candidate) bool {
		return c.fn.Name == funcName && c.decl.Name == varName
	})
}

func (t *Transformer) apply(filter func(*candidate) bool) (*FileResult, error) {
	res := &FileResult{}
	cands := t.findCandidates()

	// Phase 1: preconditions decide the target set. Eligibility is a
	// fixpoint: pointer-to-pointer assignments (pattern 5) are only safe
	// when both sides are transformed, so a variable's failure can cascade
	// to variables assigned from it.
	selected := make([]*candidate, 0, len(cands))
	failReason := make(map[*cast.Symbol]FailReason)
	failDetail := make(map[*cast.Symbol]string)
	for _, c := range cands {
		if filter != nil && !filter(c) {
			continue
		}
		selected = append(selected, c)
		t.targets[c.decl.Sym] = true
		t.declOf[c.decl.Sym] = c
	}
	for changed := true; changed; {
		changed = false
		for _, c := range selected {
			if !t.targets[c.decl.Sym] {
				continue
			}
			reason, detail := t.checkVar(c)
			if reason != FailNone {
				delete(t.targets, c.decl.Sym)
				failReason[c.decl.Sym] = reason
				failDetail[c.decl.Sym] = detail
				changed = true
			}
		}
	}
	for _, c := range selected {
		vr := VarResult{
			Name:      c.decl.Name,
			Func:      c.fn.Name,
			Pos:       t.unit.File.Position(c.decl.Extent().Pos),
			Extent:    c.decl.Extent(),
			IsPointer: ctype.IsCharPointer(c.decl.Type),
		}
		if t.targets[c.decl.Sym] {
			vr.Applied = true
		} else {
			vr.Reason = failReason[c.decl.Sym]
			vr.Detail = failDetail[c.decl.Sym]
			res.Log = append(res.Log, fmt.Sprintf("%s: STR not applied to %q: %s (%s)",
				vr.Pos, vr.Name, vr.Reason, vr.Detail))
		}
		res.Vars = append(res.Vars, vr)
	}

	if len(t.targets) == 0 {
		res.NewSource = t.unit.File.Src()
		return res, nil
	}
	res.NeedsStralloc = true

	// Phase 2: rewrite every statement that touches a target.
	var edits rewrite.Set
	for _, fn := range t.unit.Funcs {
		edits.SetOwner("func:" + fn.Name)
		t.renderFunc(fn, &edits)
	}
	res.Edits = edits.Edits()
	out, err := edits.Apply(t.unit.File.Src())
	if err != nil {
		return nil, fmt.Errorf("str: apply edits: %w", err)
	}
	res.NewSource = out
	return res, nil
}

// checkVar evaluates the preconditions for one candidate by classifying
// every use of the symbol (Section II-B2 plus the conservative
// interprocedural rule of Section III-C).
func (t *Transformer) checkVar(c *candidate) (FailReason, string) {
	if c.inFor {
		return FailUnsupportedUse, "declared in for-initializer"
	}
	sym := c.decl.Sym
	reason := FailNone
	detail := ""
	fail := func(r FailReason, d string) {
		if reason == FailNone {
			reason, detail = r, d
		}
	}
	if c.decl.Init != nil {
		t.checkPointerRHS(c.decl.Init, fail)
	}
	cast.Inspect(c.fn.Body, func(n cast.Node) bool {
		if reason != FailNone {
			return false
		}
		id, ok := n.(*cast.Ident)
		if !ok || id.Sym != sym {
			return true
		}
		t.checkUse(id, fail)
		return true
	})
	return reason, detail
}

// checkPointerRHS validates the value assigned to a target pointer
// variable (patterns 3-7). Values outside the patterns — notably interior
// pointers returned by library calls or foreign char pointers — would turn
// aliasing into copying, so the variable is refused.
func (t *Transformer) checkPointerRHS(rhs cast.Expr, fail func(FailReason, string)) {
	switch x := cast.Unparen(rhs).(type) {
	case *cast.IntLit:
		if x.Value != 0 {
			fail(FailUnsupportedUse, "pointer assigned integer value")
		}
	case *cast.StringLit:
		// Pattern 6.
	case *cast.CastExpr:
		// Pattern 7 (including null casts).
	case *cast.CallExpr:
		if !pointsto.IsHeapAllocator(x.Callee()) {
			fail(FailUnsupportedUse, "assigned result of "+x.Callee())
		}
	case *cast.Ident:
		if x.Name == "NULL" {
			return
		}
		if x.Sym == nil || !t.targets[x.Sym] {
			fail(FailUnsupportedUse, "assigned from foreign char pointer "+x.Name)
		}
	default:
		fail(FailUnsupportedUse, "unsupported pointer value")
	}
}

// checkUse classifies one identifier use by its parent context.
func (t *Transformer) checkUse(id *cast.Ident, fail func(FailReason, string)) {
	parent := t.parents[id]
	// Look through parentheses.
	for {
		p, ok := parent.(*cast.ParenExpr)
		if !ok {
			break
		}
		parent = t.parents[p]
	}
	switch p := parent.(type) {
	case *cast.AssignExpr:
		if cast.Unparen(p.LHS) == cast.Expr(id) {
			// Writes to the pointer variable itself: patterns 3-7 plus
			// compound arithmetic (patterns 8-9). Assignments used as
			// values (q = (buf = x)) are outside the patterns.
			if !t.isStatementLevel(p) {
				fail(FailUnsupportedUse, "assignment to buffer used as a value")
				return
			}
			switch p.Op {
			case cast.AssignPlain:
				// Pattern 3 expands allocations into several statements,
				// which a for-post clause cannot hold.
				if t.inForPost(p) {
					if c, ok := cast.Unparen(p.RHS).(*cast.CallExpr); ok && pointsto.IsHeapAllocator(c.Callee()) {
						fail(FailUnsupportedUse, "allocation in for-post clause")
						return
					}
				}
				t.checkPointerRHS(p.RHS, fail)
				return
			case cast.AssignAdd, cast.AssignSub:
				return
			default:
				fail(FailUnsupportedUse, "compound assignment "+p.Op.String())
				return
			}
		}
		// Value side: fine.
	case *cast.UnaryExpr:
		switch p.Op {
		case cast.UnaryAddrOf:
			fail(FailUnsupportedUse, "address of buffer taken")
		case cast.UnaryPreInc, cast.UnaryPreDec:
			if !t.isStatementLevel(p) {
				fail(FailUnsupportedUse, "increment used as a value")
			}
		case cast.UnaryDeref:
			// Reads are fine; writes are handled by the assignment case
			// that owns the deref.
		}
	case *cast.PostfixExpr:
		if !t.isStatementLevel(p) {
			fail(FailUnsupportedUse, "increment used as a value")
		}
	case *cast.IndexExpr:
		// buf[i] reads/writes: patterns 11-13. Compound assignment onto
		// elements is outside the patterns.
		if a, ok := t.parents[p].(*cast.AssignExpr); ok && cast.Unparen(a.LHS) == cast.Expr(p) {
			if a.Op != cast.AssignPlain {
				fail(FailUnsupportedUse, "compound assignment to element")
			}
		}
	case *cast.CallExpr:
		t.checkCallUse(p, id, fail)
	case *cast.SizeofExpr:
		// Pattern 10.
	case *cast.VarDecl:
		// Initializer use of another variable; value context.
	}
}

// checkCallUse applies precondition 3 and the interprocedural rule.
func (t *Transformer) checkCallUse(call *cast.CallExpr, id *cast.Ident, fail func(FailReason, string)) {
	// Find the argument position holding (an expression containing) id.
	argIdx := -1
	for i, a := range call.Args {
		found := false
		cast.Inspect(a, func(n cast.Node) bool {
			if n == cast.Node(id) {
				found = true
				return false
			}
			return true
		})
		if found {
			argIdx = i
			break
		}
	}
	if argIdx < 0 {
		// The identifier is the callee or inside it: calling through a
		// char pointer is nonsense; ignore.
		return
	}
	name := call.Callee()
	switch _libCalls[name] {
	case libMapped:
		if name != "strlen" && argIdx == 0 {
			// Destination position: the argument must be the plain
			// identifier for the mapped rewrite.
			if _, ok := cast.Unparen(call.Args[0]).(*cast.Ident); !ok {
				fail(FailUnsupportedUse, "destination expression too complex for "+name)
			}
		}
	case libReadOnly:
		// Fine: rewritten to buf->s.
	case libUnsupported:
		fail(FailUnsupportedLib, name)
	default:
		// User-defined or unknown function: the conservative
		// interprocedural may-modify analysis decides (Section III-C).
		if t.inter.MayModifyArg(call, argIdx) {
			fail(FailUserFnMayModify, name)
		}
	}
}

// inForPost reports whether the expression is a for statement's post
// clause.
func (t *Transformer) inForPost(e cast.Expr) bool {
	parent := t.parents[e]
	for {
		p, ok := parent.(*cast.ParenExpr)
		if !ok {
			break
		}
		parent = t.parents[p]
	}
	fs, ok := parent.(*cast.ForStmt)
	return ok && fs.Post == e
}

// isStatementLevel reports whether the expression is the full expression
// of an ExprStmt or a for-statement clause (so multi-statement or
// void-valued rewrites are safe).
func (t *Transformer) isStatementLevel(e cast.Expr) bool {
	parent := t.parents[e]
	for {
		p, ok := parent.(*cast.ParenExpr)
		if !ok {
			break
		}
		parent = t.parents[p]
	}
	switch p := parent.(type) {
	case *cast.ExprStmt:
		return true
	case *cast.ForStmt:
		return p.Post == e // the post clause may be void-valued; cond may not
	default:
		return false
	}
}

// text returns the source spelling of a node.
func (t *Transformer) text(n cast.Node) string {
	return t.unit.File.Slice(n.Extent())
}

// isTarget reports whether the expression is an identifier bound to a
// transformed symbol.
func (t *Transformer) isTarget(e cast.Expr) bool {
	id, ok := cast.Unparen(e).(*cast.Ident)
	return ok && id.Sym != nil && t.targets[id.Sym]
}

// targetName returns the identifier name for a target expression.
func (t *Transformer) targetName(e cast.Expr) string {
	return cast.Unparen(e).(*cast.Ident).Name
}

// containsTarget reports whether any target identifier occurs inside n.
func (t *Transformer) containsTarget(n cast.Node) bool {
	found := false
	cast.Inspect(n, func(m cast.Node) bool {
		if found {
			return false
		}
		if id, ok := m.(*cast.Ident); ok && id.Sym != nil && t.targets[id.Sym] {
			found = true
			return false
		}
		return true
	})
	return found
}

// freshName returns an unused identifier based on base.
func (t *Transformer) freshName(base string) string {
	if _, taken := t.usedNames[base]; !taken {
		t.usedNames[base] = struct{}{}
		return base
	}
	for i := 2; ; i++ {
		name := fmt.Sprintf("%s_%d", base, i)
		if _, taken := t.usedNames[name]; !taken {
			t.usedNames[name] = struct{}{}
			return name
		}
	}
}
