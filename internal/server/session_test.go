package server

import (
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repro/pkg/cfix"
)

// twoFn is two independent overflowing functions, so a one-function
// edit leaves the other's facts memoized.
const twoFn = `
void first(void) {
    char a[8];
    strcpy(a, "0123456789");
}

void second(void) {
    char b[8];
    strcpy(b, "abcdefghij");
}
`

func openSession(t *testing.T, url, src string) cfix.SessionResponse {
	t.Helper()
	var resp cfix.SessionResponse
	status, raw := postJSON(t, url+"/v1/session/open",
		cfix.SessionOpenRequest{Filename: "s.c", Source: src, Options: cfix.RequestOptions{Checks: "all"}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("open: %d %s", status, raw)
	}
	if resp.SessionID == "" {
		t.Fatal("open answered without a session id")
	}
	return resp
}

func TestSessionOpenEditClose(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})

	resp := openSession(t, ts.URL, twoFn)
	if len(resp.Findings) == 0 || len(resp.Sites) == 0 {
		t.Fatalf("open found nothing: %+v", resp)
	}

	// A comment-only edit must reuse every function.
	at := strings.Index(twoFn, "void second")
	var edited cfix.SessionResponse
	status, raw := postJSON(t, ts.URL+"/v1/session/edit", cfix.SessionEditRequest{
		SessionID: resp.SessionID,
		Deltas:    []cfix.SessionDelta{{Pos: at, End: at, Text: "/* note */\n"}},
	}, &edited)
	if status != http.StatusOK {
		t.Fatalf("edit: %d %s", status, raw)
	}
	if edited.FuncsReanalyzed != 0 || edited.FuncsReused != 2 {
		t.Fatalf("comment edit: reanalyzed=%d reused=%d", edited.FuncsReanalyzed, edited.FuncsReused)
	}

	// The session diagnostics must be byte-identical to /v1/lint on the
	// same text.
	newText := twoFn[:at] + "/* note */\n" + twoFn[at:]
	var lint cfix.LintResponse
	status, raw = postJSON(t, ts.URL+"/v1/lint",
		cfix.LintRequest{Filename: "s.c", Source: newText, Options: cfix.RequestOptions{Checks: "all"}}, &lint)
	if status != http.StatusOK {
		t.Fatalf("lint: %d %s", status, raw)
	}
	plain := make([]cfix.FindingJSON, len(edited.Findings))
	for i, f := range edited.Findings {
		plain[i] = f.FindingJSON
	}
	if !reflect.DeepEqual(plain, lint.Findings) {
		t.Fatalf("session findings diverge from /v1/lint:\nsession: %+v\nlint:    %+v", plain, lint.Findings)
	}

	var closed cfix.SessionCloseResponse
	status, raw = postJSON(t, ts.URL+"/v1/session/close",
		cfix.SessionCloseRequest{SessionID: resp.SessionID}, &closed)
	if status != http.StatusOK || !closed.Closed {
		t.Fatalf("close: %d %s", status, raw)
	}
	// Closing again is the client's mistake.
	status, _ = postJSON(t, ts.URL+"/v1/session/close",
		cfix.SessionCloseRequest{SessionID: resp.SessionID}, nil)
	if status != http.StatusNotFound {
		t.Fatalf("double close answered %d, want 404", status)
	}
}

func TestSessionEditUnknownID(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	status, _ := postJSON(t, ts.URL+"/v1/session/edit",
		cfix.SessionEditRequest{SessionID: "sess-none"}, nil)
	if status != http.StatusNotFound {
		t.Fatalf("unknown session answered %d, want 404", status)
	}
}

func TestSessionParseBreakingEditAnswers422AndKeepsSession(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	resp := openSession(t, ts.URL, twoFn)

	status, _ := postJSON(t, ts.URL+"/v1/session/edit", cfix.SessionEditRequest{
		SessionID: resp.SessionID,
		Deltas:    []cfix.SessionDelta{{Pos: 0, End: 0, Text: ")))"}},
	}, nil)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("parse-breaking edit answered %d, want 422", status)
	}

	// The session must still serve edits on its previous text.
	var edited cfix.SessionResponse
	status, raw := postJSON(t, ts.URL+"/v1/session/edit", cfix.SessionEditRequest{
		SessionID: resp.SessionID,
		Deltas:    []cfix.SessionDelta{{Pos: 0, End: 0, Text: "/* ok */"}},
	}, &edited)
	if status != http.StatusOK {
		t.Fatalf("edit after failure: %d %s", status, raw)
	}
}

func TestSessionTableCap(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{MaxSessions: 2})
	openSession(t, ts.URL, twoFn)
	openSession(t, ts.URL, twoFn)
	status, raw := postJSON(t, ts.URL+"/v1/session/open",
		cfix.SessionOpenRequest{Source: twoFn}, nil)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-cap open answered %d (%s), want 429", status, raw)
	}
}

func TestSessionMetricsCounters(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{})
	resp := openSession(t, ts.URL, twoFn)

	at := strings.Index(twoFn, "a[8]") + len("a[")
	status, raw := postJSON(t, ts.URL+"/v1/session/edit", cfix.SessionEditRequest{
		SessionID: resp.SessionID,
		Deltas:    []cfix.SessionDelta{{Pos: at, End: at + 1, Text: "9"}},
	}, nil)
	if status != http.StatusOK {
		t.Fatalf("edit: %d %s", status, raw)
	}

	m := srv.Metrics()
	if m.Sessions.Open != 1 || m.Sessions.Opens != 1 {
		t.Fatalf("session gauges: %+v", m.Sessions)
	}
	if m.Sessions.EditsApplied != 1 {
		t.Fatalf("edits_applied = %d", m.Sessions.EditsApplied)
	}
	if m.Sessions.FuncsReanalyzed != 1 || m.Sessions.FuncsReused != 1 {
		t.Fatalf("funcs counters: %+v", m.Sessions)
	}
	// The incremental re-analysis must surface as a stage histogram.
	if _, ok := m.Stages["incremental"]; !ok {
		t.Fatalf("no incremental stage in metrics: %v", mapsKeys(m.Stages))
	}

	postJSON(t, ts.URL+"/v1/session/close", cfix.SessionCloseRequest{SessionID: resp.SessionID}, nil)
	if got := srv.Metrics().Sessions.Open; got != 0 {
		t.Fatalf("sessions_open after close = %d", got)
	}
}

func mapsKeys(m map[string]StageSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
