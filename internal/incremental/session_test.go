package incremental

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ctoken"
	"repro/internal/edit"
	"repro/internal/intflow"
	"repro/internal/overflow"
)

// twoFuncs holds two overflowing functions with no call edges between
// them, so each is its own dependency-closure root: editing one must
// not re-derive the other.
const twoFuncs = `
void first(void) {
    char a[8];
    strcpy(a, "0123456789");
}

void second(void) {
    char b[8];
    strcpy(b, "abcdefghij");
}
`

// structUsers shares one struct between two functions; a third is
// independent of it.
const structUsers = `
struct pkt { char body[8]; };

void reader(struct pkt *p) {
    strcpy(p->body, "0123456789");
}

void writer(struct pkt *p) {
    memset(p->body, 0, 16);
}

void loner(void) {
    char c[4];
    strcpy(c, "xxxxxxxx");
}
`

func open(t *testing.T, src string) (*Session, *Result) {
	t.Helper()
	s, res, err := Open(context.Background(), "s.c", src, Config{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, res
}

// fresh is the equivalence baseline: a from-scratch core.Analyze plus a
// from-scratch session open for the site list.
func fresh(t *testing.T, src string) ([]overflow.Finding, []Site) {
	t.Helper()
	findings, err := core.Analyze(context.Background(), "s.c", src, core.Options{Checks: "all"})
	if err != nil {
		t.Fatalf("fresh Analyze: %v", err)
	}
	_, res, err := Open(context.Background(), "s.c", src, Config{})
	if err != nil {
		t.Fatalf("fresh Open: %v", err)
	}
	return findings, res.Sites
}

func requireEquivalent(t *testing.T, s *Session) {
	t.Helper()
	wantF, wantS := fresh(t, s.Text())
	if got := s.Findings(); !reflect.DeepEqual(got, wantF) {
		t.Fatalf("findings diverge from fresh analysis:\nsession: %+v\nfresh:   %+v", got, wantF)
	}
	if got := s.Sites(); !reflect.DeepEqual(got, wantS) {
		t.Fatalf("sites diverge from fresh discovery:\nsession: %+v\nfresh:   %+v", got, wantS)
	}
}

func TestOpenMatchesFreshAnalyze(t *testing.T) {
	s, res := open(t, twoFuncs)
	if len(res.Findings) == 0 {
		t.Fatal("expected findings in overflowing sample")
	}
	if len(res.Sites) == 0 {
		t.Fatal("expected SLR sites in overflowing sample")
	}
	requireEquivalent(t, s)
}

// TestCommentEditReusesEverything pins the satellite guarantee: an edit
// that only touches comments/whitespace invalidates nothing — zero
// functions re-analyzed, zero new fixpoint solves in either oracle, and
// the site list reused without re-running the transformers.
func TestCommentEditReusesEverything(t *testing.T) {
	s, _ := open(t, twoFuncs)

	at := ctoken.Pos(strings.Index(s.Text(), "    char b[8];"))
	ovf0, int0 := overflow.Solves(), intflow.Solves()
	res, err := s.Edit(context.Background(), []edit.Delta{
		edit.Insert(at, "/* a comment on its own line */\n"),
	})
	if err != nil {
		t.Fatalf("Edit: %v", err)
	}
	if res.FuncsReanalyzed != 0 || res.FuncsReused != 2 {
		t.Fatalf("comment edit: reanalyzed=%d reused=%d, want 0/2", res.FuncsReanalyzed, res.FuncsReused)
	}
	if d := overflow.Solves() - ovf0; d != 0 {
		t.Fatalf("comment edit ran %d overflow solves, want 0", d)
	}
	if d := intflow.Solves() - int0; d != 0 {
		t.Fatalf("comment edit ran %d intflow solves, want 0", d)
	}
	requireEquivalent(t, s)
}

// TestSingleFunctionEditSolvesOnlyDirty pins the counter proof from the
// acceptance criteria: after an edit inside one function, the fixpoint
// solver runs for that function alone.
func TestSingleFunctionEditSolvesOnlyDirty(t *testing.T) {
	s, _ := open(t, twoFuncs)

	// Grow first's buffer: first is dirty, second must replay.
	at := strings.Index(s.Text(), "a[8]") + len("a[")
	ovf0, int0 := overflow.Solves(), intflow.Solves()
	res, err := s.Edit(context.Background(), []edit.Delta{
		edit.Replace(ctoken.Extent{Pos: ctoken.Pos(at), End: ctoken.Pos(at + 1)}, "9"),
	})
	if err != nil {
		t.Fatalf("Edit: %v", err)
	}
	if res.FuncsReanalyzed != 1 || res.FuncsReused != 1 {
		t.Fatalf("single-function edit: reanalyzed=%d reused=%d, want 1/1", res.FuncsReanalyzed, res.FuncsReused)
	}
	if d := overflow.Solves() - ovf0; d != 1 {
		t.Fatalf("overflow solves after single-function edit: %d, want exactly 1 (the edited function)", d)
	}
	if d := intflow.Solves() - int0; d != 1 {
		t.Fatalf("intflow solves after single-function edit: %d, want exactly 1 (the edited function)", d)
	}
	requireEquivalent(t, s)
}

// TestSharedStructEditInvalidatesUsers pins dependency-hash propagation
// through file-scope declarations: shrinking a struct both reader and
// writer reference dirties exactly those two, never the loner.
func TestSharedStructEditInvalidatesUsers(t *testing.T) {
	s, _ := open(t, structUsers)

	at := strings.Index(s.Text(), "body[8]") + len("body[")
	res, err := s.Edit(context.Background(), []edit.Delta{
		edit.Replace(ctoken.Extent{Pos: ctoken.Pos(at), End: ctoken.Pos(at + 1)}, "4"),
	})
	if err != nil {
		t.Fatalf("Edit: %v", err)
	}
	if res.FuncsReanalyzed != 2 || res.FuncsReused != 1 {
		t.Fatalf("struct edit: reanalyzed=%d reused=%d, want 2 users dirty and 1 loner reused",
			res.FuncsReanalyzed, res.FuncsReused)
	}
	requireEquivalent(t, s)
}

// TestWholeFileResendIsIncremental pins the Minimize path used by
// full-text-sync LSP clients: re-sending the entire file with a
// one-byte change must count as that one byte, not as a whole-file
// replace that collapses every retained extent.
func TestWholeFileResendIsIncremental(t *testing.T) {
	s, _ := open(t, twoFuncs)

	// Identical resend: a pure no-op, nothing re-derived.
	ovf0 := overflow.Solves()
	whole := ctoken.Extent{Pos: 0, End: ctoken.Pos(len(s.Text()))}
	res, err := s.Edit(context.Background(), []edit.Delta{edit.Replace(whole, s.Text())})
	if err != nil {
		t.Fatalf("identity resend: %v", err)
	}
	if res.FuncsReanalyzed != 0 || overflow.Solves() != ovf0 {
		t.Fatalf("identity resend re-derived work: reanalyzed=%d solves=%d",
			res.FuncsReanalyzed, overflow.Solves()-ovf0)
	}

	// Whole-file resend with one byte changed inside second.
	edited := strings.Replace(s.Text(), "b[8]", "b[6]", 1)
	ovf0 = overflow.Solves()
	res, err = s.Edit(context.Background(), []edit.Delta{edit.Replace(whole, edited)})
	if err != nil {
		t.Fatalf("one-byte resend: %v", err)
	}
	if s.Text() != edited {
		t.Fatal("resend did not apply")
	}
	if res.FuncsReanalyzed != 1 || res.FuncsReused != 1 {
		t.Fatalf("one-byte resend: reanalyzed=%d reused=%d, want 1/1", res.FuncsReanalyzed, res.FuncsReused)
	}
	if d := overflow.Solves() - ovf0; d != 1 {
		t.Fatalf("one-byte resend ran %d overflow solves, want 1", d)
	}
	requireEquivalent(t, s)
}

// TestEditInsideFindingExtentStaysEquivalent exercises the remap
// exactness gate: a comment inserted inside a finding's call expression
// leaves the hash unchanged but must force re-derivation, because the
// fresh extent grows to cover the comment.
func TestEditInsideFindingExtentStaysEquivalent(t *testing.T) {
	s, _ := open(t, twoFuncs)

	// Inside the first strcpy's argument list.
	at := ctoken.Pos(strings.Index(s.Text(), `a, "0123456789"`))
	if _, err := s.Edit(context.Background(), []edit.Delta{
		edit.Insert(at, "/*in-call*/"),
	}); err != nil {
		t.Fatalf("Edit: %v", err)
	}
	requireEquivalent(t, s)
}

func TestEditThatBreaksParseLeavesSessionIntact(t *testing.T) {
	s, _ := open(t, twoFuncs)
	before := s.Text()
	wantF := s.Findings()

	at := ctoken.Pos(strings.Index(before, "strcpy"))
	if _, err := s.Edit(context.Background(), []edit.Delta{
		edit.Insert(at, ")))"),
	}); err == nil {
		t.Fatal("expected parse error")
	}
	if s.Text() != before {
		t.Fatal("failed edit mutated the session text")
	}
	if !reflect.DeepEqual(s.Findings(), wantF) {
		t.Fatal("failed edit mutated the session findings")
	}
	// The session must still accept edits afterwards.
	if _, err := s.Edit(context.Background(), []edit.Delta{
		edit.Insert(0, "/*ok*/"),
	}); err != nil {
		t.Fatalf("edit after failed edit: %v", err)
	}
	requireEquivalent(t, s)
}

func TestCountersAccumulate(t *testing.T) {
	s, _ := open(t, twoFuncs)
	for i := 0; i < 3; i++ {
		if _, err := s.Edit(context.Background(), []edit.Delta{
			edit.Insert(0, "/*x*/"),
		}); err != nil {
			t.Fatalf("edit %d: %v", i, err)
		}
	}
	c := s.Counters()
	if c.EditsApplied != 3 {
		t.Fatalf("EditsApplied = %d, want 3", c.EditsApplied)
	}
	if c.FuncsReused != 6 || c.FuncsReanalyzed != 0 {
		t.Fatalf("reused=%d reanalyzed=%d, want 6/0", c.FuncsReused, c.FuncsReanalyzed)
	}
}

func TestDeletedFunctionCountsDirty(t *testing.T) {
	s, _ := open(t, twoFuncs)
	// Delete second entirely.
	start := strings.Index(s.Text(), "void second")
	res, err := s.Edit(context.Background(), []edit.Delta{
		edit.Delete(ctoken.Extent{Pos: ctoken.Pos(start), End: ctoken.Pos(len(s.Text()))}),
	})
	if err != nil {
		t.Fatalf("Edit: %v", err)
	}
	if res.FuncsReanalyzed != 1 || res.FuncsReused != 1 {
		t.Fatalf("deletion: reanalyzed=%d reused=%d, want 1 (deleted) / 1 (kept)", res.FuncsReanalyzed, res.FuncsReused)
	}
	requireEquivalent(t, s)
}
