package pointsto

import (
	"testing"
	"testing/quick"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/typecheck"
)

func analyze(t *testing.T, src string, opts Options) (*cast.TranslationUnit, *Graph, *AliasSets) {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	typecheck.Check(tu)
	g := Analyze(tu, opts)
	return tu, g, ComputeAliases(g)
}

func symNamed(t *testing.T, tu *cast.TranslationUnit, name string) *cast.Symbol {
	t.Helper()
	for _, s := range tu.Symbols {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("symbol %q not found", name)
	return nil
}

// pointsToNames returns the names of var nodes in sym's points-to set.
func pointsToNames(g *Graph, sym *cast.Symbol) map[string]bool {
	out := make(map[string]bool)
	for _, n := range g.PointsTo(sym) {
		if n.Kind == NodeVar && n.Sym != nil {
			out[n.Sym.Name] = true
		} else if n.Kind == NodeHeap {
			out["<heap>"] = true
		} else if n.Kind == NodeString {
			out["<string>"] = true
		}
	}
	return out
}

func TestAddressOf(t *testing.T) {
	tu, g, _ := analyze(t, `
void f(void) {
    int x;
    int *p;
    p = &x;
}
`, Options{})
	p := symNamed(t, tu, "p")
	pts := pointsToNames(g, p)
	if !pts["x"] || len(pts) != 1 {
		t.Fatalf("pts(p): got %v, want {x}", pts)
	}
}

func TestCopyPropagation(t *testing.T) {
	tu, g, _ := analyze(t, `
void f(void) {
    int x;
    int *p, *q;
    p = &x;
    q = p;
}
`, Options{})
	q := symNamed(t, tu, "q")
	if pts := pointsToNames(g, q); !pts["x"] {
		t.Fatalf("pts(q): got %v, want x included", pts)
	}
}

func TestArrayDecay(t *testing.T) {
	tu, g, _ := analyze(t, `
void f(void) {
    char buf[10];
    char *dst;
    dst = buf;
}
`, Options{})
	dst := symNamed(t, tu, "dst")
	if pts := pointsToNames(g, dst); !pts["buf"] {
		t.Fatalf("pts(dst): got %v, want buf", pts)
	}
}

func TestHeapAllocation(t *testing.T) {
	tu, g, _ := analyze(t, `
void f(void) {
    char *p;
    p = malloc(10);
}
`, Options{})
	p := symNamed(t, tu, "p")
	if pts := pointsToNames(g, p); !pts["<heap>"] {
		t.Fatalf("pts(p): got %v, want heap node", pts)
	}
}

func TestStringLiteral(t *testing.T) {
	tu, g, _ := analyze(t, `void f(void){ char *p; p = "abc"; }`, Options{})
	p := symNamed(t, tu, "p")
	if pts := pointsToNames(g, p); !pts["<string>"] {
		t.Fatalf("pts(p): got %v, want string node", pts)
	}
}

func TestLoadConstraint(t *testing.T) {
	tu, g, _ := analyze(t, `
void f(void) {
    int x;
    int *p;
    int **pp;
    int *q;
    p = &x;
    pp = &p;
    q = *pp;
}
`, Options{})
	q := symNamed(t, tu, "q")
	if pts := pointsToNames(g, q); !pts["x"] {
		t.Fatalf("pts(q): got %v, want x (via load)", pts)
	}
}

func TestStoreConstraint(t *testing.T) {
	tu, g, _ := analyze(t, `
void f(void) {
    int x;
    int *p;
    int **pp;
    pp = &p;
    *pp = &x;
}
`, Options{})
	p := symNamed(t, tu, "p")
	if pts := pointsToNames(g, p); !pts["x"] {
		t.Fatalf("pts(p): got %v, want x (via store)", pts)
	}
}

func TestPointerArithmeticKeepsTarget(t *testing.T) {
	tu, g, _ := analyze(t, `
void f(void) {
    char buf[10];
    char *p, *q;
    p = buf;
    q = p + 3;
}
`, Options{})
	q := symNamed(t, tu, "q")
	if pts := pointsToNames(g, q); !pts["buf"] {
		t.Fatalf("pts(q): got %v, want buf", pts)
	}
}

func TestAliasViaSharedTarget(t *testing.T) {
	tu, _, aliases := analyze(t, `
void f(void) {
    char buf[10];
    char *p, *q;
    p = buf;
    q = buf;
}
`, Options{})
	p := symNamed(t, tu, "p")
	q := symNamed(t, tu, "q")
	if !aliases.IsAliased(p) {
		t.Fatal("p should be aliased (q points to the same buffer)")
	}
	if !aliases.IsAliased(q) {
		t.Fatal("q should be aliased")
	}
	set := aliases.AliasSetOf(p)
	names := make(map[string]bool)
	for _, s := range set {
		names[s.Name] = true
	}
	if !names["p"] || !names["q"] {
		t.Fatalf("alias set of p: got %v, want {p, q}", names)
	}
}

func TestUnaliasedSinglePointer(t *testing.T) {
	tu, _, aliases := analyze(t, `
void f(void) {
    char buf[10];
    char *dst;
    dst = buf;
}
`, Options{})
	dst := symNamed(t, tu, "dst")
	if aliases.IsAliased(dst) {
		t.Fatal("dst is the only pointer to buf; it must not be aliased")
	}
}

func TestDistinctTargetsNotAliased(t *testing.T) {
	tu, _, aliases := analyze(t, `
void f(void) {
    char a[10], b[10];
    char *p, *q;
    p = a;
    q = b;
}
`, Options{})
	p := symNamed(t, tu, "p")
	if aliases.IsAliased(p) {
		t.Fatal("p and q point to distinct buffers; no aliasing")
	}
}

func TestStructAggregateAliasing(t *testing.T) {
	// The paper's SLR failure case (2): a struct member aliased makes the
	// whole struct aliased because structs are aggregate nodes.
	tu, _, aliases := analyze(t, `
struct holder { char *buf; char *other; };
void f(void) {
    char a[10];
    struct holder h;
    char *p;
    h.buf = a;
    p = a;
}
`, Options{})
	h := symNamed(t, tu, "h")
	p := symNamed(t, tu, "p")
	if !aliases.IsAliased(h) || !aliases.IsAliased(p) {
		t.Fatal("h (aggregate) and p share the target a; both must be aliased")
	}
}

func TestCopyCycleCollapsed(t *testing.T) {
	tu, g, _ := analyze(t, `
void f(void) {
    int x;
    int *p, *q, *r;
    p = &x;
    q = p;
    r = q;
    p = r;
}
`, Options{})
	if g.Stats.CyclesCollapsed == 0 {
		t.Fatal("the p->q->r->p copy cycle should be collapsed")
	}
	for _, name := range []string{"p", "q", "r"} {
		s := symNamed(t, tu, name)
		if pts := pointsToNames(g, s); !pts["x"] {
			t.Fatalf("pts(%s): got %v, want x", name, pts)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	src := `
struct holder { char *buf; };
void f(int c) {
    char a[10], b[20];
    char *p, *q, *r;
    char **pp;
    struct holder h;
    p = a;
    q = b;
    pp = &p;
    *pp = b;
    r = c ? p : q;
    h.buf = r;
    p = h.buf;
}
`
	tuSeq, gSeq, _ := analyze(t, src, Options{})
	tuPar, gPar, _ := analyze(t, src, Options{Parallel: true, Workers: 4})
	for _, name := range []string{"p", "q", "r", "pp", "h"} {
		s1 := symNamed(t, tuSeq, name)
		s2 := symNamed(t, tuPar, name)
		m1 := pointsToNames(gSeq, s1)
		m2 := pointsToNames(gPar, s2)
		if len(m1) != len(m2) {
			t.Fatalf("%s: sequential %v vs parallel %v", name, m1, m2)
		}
		for k := range m1 {
			if !m2[k] {
				t.Fatalf("%s: sequential %v vs parallel %v", name, m1, m2)
			}
		}
	}
}

// TestPropertyChainPropagation checks, for generated copy chains of
// arbitrary length, that the points-to set of the last pointer includes
// the root target — an inclusion invariant of Andersen's analysis.
func TestPropertyChainPropagation(t *testing.T) {
	f := func(rawLen uint8) bool {
		chainLen := int(rawLen%20) + 1
		src := "void f(void) {\n    int x;\n    int *p0;\n    p0 = &x;\n"
		for i := 1; i <= chainLen; i++ {
			src += "    int *p" + itoa(i) + ";\n"
			src += "    p" + itoa(i) + " = p" + itoa(i-1) + ";\n"
		}
		src += "}\n"
		tu, err := cparse.Parse("t.c", src)
		if err != nil {
			return false
		}
		typecheck.Check(tu)
		g := Analyze(tu, Options{})
		var last *cast.Symbol
		for _, s := range tu.Symbols {
			if s.Name == "p"+itoa(chainLen) {
				last = s
			}
		}
		if last == nil {
			return false
		}
		return pointsToNames(g, last)["x"]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// TestPropertySequentialEqualsParallel generates random pointer programs
// and asserts the two solver modes (and the no-cycle-elimination
// configuration) reach identical fixpoints.
func TestPropertySequentialEqualsParallel(t *testing.T) {
	gen := func(seed uint32) string {
		r := seed
		next := func(n int) int {
			r = r*1664525 + 1013904223
			return int(r>>18) % n
		}
		nPtr := next(8) + 3
		nObj := next(4) + 2
		src := "void f(void) {\n"
		for i := 0; i < nObj; i++ {
			src += "    int o" + itoa(i) + ";\n"
		}
		for i := 0; i < nPtr; i++ {
			src += "    int *p" + itoa(i) + ";\n"
		}
		src += "    int **pp;\n"
		nStmt := next(12) + 4
		for s := 0; s < nStmt; s++ {
			switch next(4) {
			case 0:
				src += "    p" + itoa(next(nPtr)) + " = &o" + itoa(next(nObj)) + ";\n"
			case 1:
				src += "    p" + itoa(next(nPtr)) + " = p" + itoa(next(nPtr)) + ";\n"
			case 2:
				src += "    pp = &p" + itoa(next(nPtr)) + ";\n"
			default:
				src += "    *pp = &o" + itoa(next(nObj)) + ";\n"
			}
		}
		src += "}\n"
		return src
	}
	f := func(seed uint32) bool {
		src := gen(seed)
		tu1, err := cparse.Parse("t.c", src)
		if err != nil {
			return false
		}
		typecheck.Check(tu1)
		tu2, _ := cparse.Parse("t.c", src)
		typecheck.Check(tu2)
		tu3, _ := cparse.Parse("t.c", src)
		typecheck.Check(tu3)

		gSeq := Analyze(tu1, Options{})
		gPar := Analyze(tu2, Options{Parallel: true, Workers: 3})
		gNoCE := Analyze(tu3, Options{DisableCycleElimination: true})

		for i, s1 := range tu1.Symbols {
			m1 := pointsToNames(gSeq, s1)
			m2 := pointsToNames(gPar, tu2.Symbols[i])
			m3 := pointsToNames(gNoCE, tu3.Symbols[i])
			if len(m1) != len(m2) || len(m1) != len(m3) {
				t.Logf("mismatch for %s on:\n%s", s1.Name, src)
				return false
			}
			for k := range m1 {
				if !m2[k] || !m3[k] {
					t.Logf("mismatch for %s on:\n%s", s1.Name, src)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPointsToIntersect(t *testing.T) {
	tu, g, _ := analyze(t, `
void f(void) {
    char a[4], b[4];
    char *p, *q, *r;
    p = a;
    q = a;
    r = b;
}
`, Options{})
	p := symNamed(t, tu, "p")
	q := symNamed(t, tu, "q")
	r := symNamed(t, tu, "r")
	if !g.PointsToIntersect(p, q) {
		t.Fatal("p and q share target a")
	}
	if g.PointsToIntersect(p, r) {
		t.Fatal("p and r have disjoint targets")
	}
}

func TestFieldSensitiveSeparatesMembers(t *testing.T) {
	src := `
struct hdr { char *data; char *other; };
void f(void) {
    struct hdr h;
    char *cursor;
    h.other = malloc(16);
    cursor = h.other;
    h.data = malloc(64);
}
`
	// Aggregate model: the whole struct is aliased with cursor.
	tuA, _, aliasesA := analyze(t, src, Options{})
	h := symNamed(t, tuA, "h")
	if !aliasesA.IsAliasedMember(h, "data") {
		t.Fatal("aggregate model must report h.data aliased (contamination)")
	}
	// Field-sensitive: only h.other is aliased; h.data is clean.
	tuF, gF, aliasesF := analyze(t, src, Options{FieldSensitive: true})
	hF := symNamed(t, tuF, "h")
	if aliasesF.IsAliasedMember(hF, "data") {
		t.Fatal("field-sensitive model must keep h.data unaliased")
	}
	if !aliasesF.IsAliasedMember(hF, "other") {
		t.Fatal("h.other is genuinely aliased with cursor")
	}
	_ = gF
}

// TestParallelDeterministicUnderRace re-solves the same unit many times
// with the parallel engine and asserts every run reaches the sequential
// fixpoint. Run under -race, this doubles as the regression test for the
// unsynchronized path compression the parallel map phase used to do.
func TestParallelDeterministicUnderRace(t *testing.T) {
	src := `
struct holder { char *buf; };
void f(int c) {
    char a[10], b[20], d[30];
    char *p, *q, *r, *s;
    char **pp, **qq;
    struct holder h;
    p = a;
    q = b;
    s = d;
    pp = &p;
    qq = pp;
    *qq = b;
    r = c ? p : q;
    r = c ? r : s;
    h.buf = r;
    p = h.buf;
}
`
	names := []string{"p", "q", "r", "s", "pp", "qq", "h"}
	tuSeq, gSeq, _ := analyze(t, src, Options{})
	want := make(map[string]map[string]bool)
	for _, name := range names {
		want[name] = pointsToNames(gSeq, symNamed(t, tuSeq, name))
	}
	for round := 0; round < 20; round++ {
		tuPar, gPar, _ := analyze(t, src, Options{Parallel: true, Workers: 8})
		for _, name := range names {
			got := pointsToNames(gPar, symNamed(t, tuPar, name))
			if len(got) != len(want[name]) {
				t.Fatalf("round %d: %s: parallel %v vs sequential %v", round, name, got, want[name])
			}
			for k := range want[name] {
				if !got[k] {
					t.Fatalf("round %d: %s: parallel %v vs sequential %v", round, name, got, want[name])
				}
			}
		}
	}
}
