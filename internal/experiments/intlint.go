package experiments

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/samate"
)

// IntLintRow aggregates the integer-overflow oracle's verdicts on one CWE
// class of the synthetic integer-overflow corpus. There is no dynamic
// cross-validation column: integer wraparound is well-defined for the
// unsigned cases and the checked interpreter has no wrap oracle, so the
// ground truth is the corpus's good/bad construction itself.
type IntLintRow struct {
	CWE  int
	Name string
	// Programs actually processed.
	Programs int
	// TP / FN: programs whose bad() function was / was not flagged by the
	// integer-overflow oracle (any finding attributed to the bad call chain).
	TP int
	FN int
	// CWEMatch: flagged bad() programs where some finding also carries the
	// program's exact CWE class.
	CWEMatch int
	// Guarded: flagged bad() programs where some finding carries a
	// suggested precondition guard.
	Guarded int
	// FP: programs whose good() function was flagged.
	FP     int
	Errors int
}

// Precision is the program-level precision: flagged-bad over all flagged.
func (r IntLintRow) Precision() float64 {
	if r.TP+r.FP == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FP)
}

// Recall is the program-level recall over the seeded wraparounds.
func (r IntLintRow) Recall() float64 {
	if r.TP+r.FN == 0 {
		return 1
	}
	return float64(r.TP) / float64(r.TP+r.FN)
}

// RunIntLint generates the integer-overflow corpus and runs the
// integer-overflow oracle (`cfix -lint -checks=int`) on every program.
func RunIntLint(opts LintOptions) ([]IntLintRow, error) {
	if opts.Stride < 1 {
		opts.Stride = 1
	}

	var rows []IntLintRow
	for _, cwe := range samate.IntCWEs {
		progs := samate.IntGenerate(cwe, samate.IntTableCounts[cwe])
		row := IntLintRow{CWE: cwe, Name: samate.CWENames[cwe]}

		picked := make([]samate.Program, 0, len(progs)/opts.Stride+1)
		for i := 0; i < len(progs); i += opts.Stride {
			picked = append(picked, progs[i])
		}
		results := analysis.Map(opts.Workers, picked,
			func(_ int, p samate.Program) intLintOutcome { return intLintOne(p) })

		for _, o := range results {
			row.Programs++
			if o.err != nil {
				row.Errors++
				continue
			}
			if o.badFlag {
				row.TP++
			} else {
				row.FN++
			}
			if o.cweOK {
				row.CWEMatch++
			}
			if o.guarded {
				row.Guarded++
			}
			if o.goodFlag {
				row.FP++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// intLintOutcome is the per-program result of the integer-overflow oracle.
type intLintOutcome struct {
	err                               error
	badFlag, cweOK, guarded, goodFlag bool
}

// intLintOne runs the integer-overflow oracle on one program.
func intLintOne(p samate.Program) (o intLintOutcome) {
	snap, err := analysis.Parse(p.ID+".c", p.Source)
	if err != nil {
		o.err = err
		return o
	}
	for _, f := range snap.IntFindings() {
		if attributed(f, p.ID+"_bad") {
			o.badFlag = true
			if f.CWE == p.CWE {
				o.cweOK = true
			}
			if f.Guard != "" {
				o.guarded = true
			}
		}
		if attributed(f, p.ID+"_good") {
			o.goodFlag = true
		}
	}
	return o
}

// FormatIntLint renders the integer-overflow oracle table.
func FormatIntLint(rows []IntLintRow) string {
	var sb strings.Builder
	sb.WriteString("Integer-overflow oracle on the synthetic CWE-190/680 corpus (-checks=int)\n")
	sb.WriteString(fmt.Sprintf("%-46s %8s %6s %6s %8s %8s %6s %6s %6s\n",
		"CWE", "Programs", "TP", "FN", "CWEok", "Guarded", "FP", "Prec", "Rec"))
	var tot IntLintRow
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-46s %8d %6d %6d %8d %8d %6d %5.2f %6.2f\n",
			fmt.Sprintf("CWE %d: %s", r.CWE, r.Name),
			r.Programs, r.TP, r.FN, r.CWEMatch, r.Guarded, r.FP,
			r.Precision(), r.Recall()))
		tot.Programs += r.Programs
		tot.TP += r.TP
		tot.FN += r.FN
		tot.CWEMatch += r.CWEMatch
		tot.Guarded += r.Guarded
		tot.FP += r.FP
		tot.Errors += r.Errors
	}
	sb.WriteString(fmt.Sprintf("%-46s %8d %6d %6d %8d %8d %6d %5.2f %6.2f\n",
		"Total", tot.Programs, tot.TP, tot.FN, tot.CWEMatch, tot.Guarded, tot.FP,
		tot.Precision(), tot.Recall()))
	if tot.Errors > 0 {
		sb.WriteString(fmt.Sprintf("(%d programs failed to process)\n", tot.Errors))
	}
	sb.WriteString("\nTP/FN: bad() flagged / missed by the integer-overflow oracle; CWEok: flagged\n")
	sb.WriteString("with the program's exact CWE; Guarded: a suggested precondition guard was\n")
	sb.WriteString("attached; FP: good() flagged.\n")
	return sb.String()
}
