package cinterp

import (
	"repro/internal/cast"
	"repro/internal/ctoken"
)

// Native implementations of the stralloc library (internal/stralloc).
//
// The interpreter executes the library's C source whenever a program links
// it in (user-defined functions shadow builtins), which is how the
// correctness tests exercise the real implementation. These native
// versions carry identical semantics and serve two purposes: programs that
// only include the header still run, and the RQ3 overhead measurements
// compare native-against-native (libc builtins vs stralloc builtins), the
// analog of the paper's compiled-code timings.
//
// Struct layout (LP64): s @0, f @8, len @16, a @20; size 24.
const (
	_saOffS   = 0
	_saOffF   = 8
	_saOffLen = 16
	_saOffA   = 20
)

// saField reads a pointer-sized field.
func (in *Interp) saLoadPtr(sa Pointer, off int64, at ctoken.Extent) Pointer {
	v := in.loadScalar(Pointer{Obj: sa.Obj, Off: sa.Off + off}, 8, true, false, false, at)
	return v.P
}

func (in *Interp) saStorePtr(sa Pointer, off int64, p Pointer, at ctoken.Extent) {
	in.storeScalar(Pointer{Obj: sa.Obj, Off: sa.Off + off}, PtrV(p), 8, true, at)
}

func (in *Interp) saLoadU32(sa Pointer, off int64, at ctoken.Extent) int64 {
	return in.loadScalar(Pointer{Obj: sa.Obj, Off: sa.Off + off}, 4, false, false, false, at).I
}

func (in *Interp) saStoreU32(sa Pointer, off, v int64, at ctoken.Extent) {
	in.storeScalar(Pointer{Obj: sa.Obj, Off: sa.Off + off}, IntV(v), 4, false, at)
}

// saReady ensures capacity n, mirroring stralloc_ready.
func (in *Interp) saReady(sa Pointer, n int64, call *cast.CallExpr) (bool, error) {
	at := call.Extent()
	if n == 0 {
		n = 1
	}
	s := in.saLoadPtr(sa, _saOffS, at)
	a := in.saLoadU32(sa, _saOffA, at)
	if !s.IsNull() && a >= n {
		return true, nil
	}
	obj, err := in.heapAlloc(n, call)
	if err != nil {
		return false, err
	}
	length := in.saLoadU32(sa, _saOffLen, at)
	if !s.IsNull() && !s.Obj.Dead && length > 0 {
		limit := length
		if limit > n {
			limit = n
		}
		data := in.loadBytes(s, limit, at)
		copy(obj.Data, data)
	}
	f := in.saLoadPtr(sa, _saOffF, at)
	if !s.IsNull() && s == f && s.Obj.Kind == ObjHeap && !s.Obj.Dead {
		s.Obj.Dead = true // free the previous allocation
	}
	np := Pointer{Obj: obj}
	in.saStorePtr(sa, _saOffS, np, at)
	in.saStorePtr(sa, _saOffF, np, at)
	in.saStoreU32(sa, _saOffA, n, at)
	return true, nil
}

// saCopybuf copies n bytes from src into the stralloc.
func (in *Interp) saCopybuf(sa, src Pointer, n int64, call *cast.CallExpr) (Value, error) {
	at := call.Extent()
	ok, err := in.saReady(sa, n+1, call)
	if err != nil || !ok {
		return IntV(0), err
	}
	s := in.saLoadPtr(sa, _saOffS, at)
	data := in.loadBytes(src, n, at)
	in.storeBytes(s, data, at)
	in.storeBytes(Pointer{Obj: s.Obj, Off: s.Off + n}, []byte{0}, at)
	in.saStoreU32(sa, _saOffLen, n, at)
	return IntV(1), nil
}

// saCatbuf appends n bytes.
func (in *Interp) saCatbuf(sa, src Pointer, n int64, call *cast.CallExpr) (Value, error) {
	at := call.Extent()
	length := in.saLoadU32(sa, _saOffLen, at)
	ok, err := in.saReady(sa, length+n+1, call)
	if err != nil || !ok {
		return IntV(0), err
	}
	s := in.saLoadPtr(sa, _saOffS, at)
	data := in.loadBytes(src, n, at)
	in.storeBytes(Pointer{Obj: s.Obj, Off: s.Off + length}, data, at)
	in.storeBytes(Pointer{Obj: s.Obj, Off: s.Off + length + n}, []byte{0}, at)
	in.saStoreU32(sa, _saOffLen, length+n, at)
	return IntV(1), nil
}

// registerStrallocBuiltins adds the native stralloc functions to the
// dispatch table.
func registerStrallocBuiltins(m map[string]builtin) {
	m["stralloc_init"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		sa := argPtr(args, 0)
		in.saStorePtr(sa, _saOffS, Pointer{}, at)
		in.saStorePtr(sa, _saOffF, Pointer{}, at)
		in.saStoreU32(sa, _saOffLen, 0, at)
		in.saStoreU32(sa, _saOffA, 0, at)
		return IntV(0), nil
	}
	m["stralloc_ready"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		ok, err := in.saReady(argPtr(args, 0), argInt(args, 1), call)
		if err != nil {
			return Value{}, err
		}
		return boolV(ok), nil
	}
	m["stralloc_free"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		sa := argPtr(args, 0)
		s := in.saLoadPtr(sa, _saOffS, at)
		f := in.saLoadPtr(sa, _saOffF, at)
		if !s.IsNull() && s == f && s.Obj.Kind == ObjHeap {
			s.Obj.Dead = true
		}
		in.saStorePtr(sa, _saOffS, Pointer{}, at)
		in.saStorePtr(sa, _saOffF, Pointer{}, at)
		in.saStoreU32(sa, _saOffLen, 0, at)
		in.saStoreU32(sa, _saOffA, 0, at)
		return IntV(0), nil
	}
	m["stralloc_copybuf"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		return in.saCopybuf(argPtr(args, 0), argPtr(args, 1), argInt(args, 2), call)
	}
	m["stralloc_copys"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		s := in.readCString(argPtr(args, 1), call.Extent())
		obj := in.newObject("tmp", ObjString, len(s)+1)
		copy(obj.Data, s)
		return in.saCopybuf(argPtr(args, 0), Pointer{Obj: obj}, int64(len(s)), call)
	}
	m["stralloc_copy"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		src := argPtr(args, 1)
		s := in.saLoadPtr(src, _saOffS, at)
		n := in.saLoadU32(src, _saOffLen, at)
		return in.saCopybuf(argPtr(args, 0), s, n, call)
	}
	m["stralloc_catbuf"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		return in.saCatbuf(argPtr(args, 0), argPtr(args, 1), argInt(args, 2), call)
	}
	m["stralloc_cats"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		s := in.readCString(argPtr(args, 1), call.Extent())
		obj := in.newObject("tmp", ObjString, len(s)+1)
		copy(obj.Data, s)
		return in.saCatbuf(argPtr(args, 0), Pointer{Obj: obj}, int64(len(s)), call)
	}
	m["stralloc_cat"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		src := argPtr(args, 1)
		s := in.saLoadPtr(src, _saOffS, at)
		n := in.saLoadU32(src, _saOffLen, at)
		return in.saCatbuf(argPtr(args, 0), s, n, call)
	}
	m["stralloc_append"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		obj := in.newObject("tmp", ObjString, 1)
		obj.Data[0] = byte(argInt(args, 1))
		return in.saCatbuf(argPtr(args, 0), Pointer{Obj: obj}, 1, call)
	}
	m["stralloc_memset"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		sa := argPtr(args, 0)
		c := byte(argInt(args, 1))
		n := argInt(args, 2)
		limit := n
		if a := in.saLoadU32(sa, _saOffA, at); a != 0 && limit > a {
			limit = a // clamp to the declared capacity
		}
		ok, err := in.saReady(sa, limit+1, call)
		if err != nil || !ok {
			return IntV(0), err
		}
		s := in.saLoadPtr(sa, _saOffS, at)
		data := make([]byte, limit+1)
		for i := int64(0); i < limit; i++ {
			data[i] = c
		}
		in.storeBytes(s, data, at)
		if length := in.saLoadU32(sa, _saOffLen, at); limit > length {
			in.saStoreU32(sa, _saOffLen, limit, at)
		}
		return IntV(1), nil
	}
	m["stralloc_get_dereferenced_char_at"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		sa := argPtr(args, 0)
		i := argInt(args, 1)
		if i < 0 {
			return IntV(0), nil
		}
		s := in.saLoadPtr(sa, _saOffS, at)
		a := in.saLoadU32(sa, _saOffA, at)
		if s.IsNull() || i >= a {
			return IntV(0), nil
		}
		b := in.loadBytes(Pointer{Obj: s.Obj, Off: s.Off + i}, 1, at)
		return IntV(int64(int8(b[0]))), nil
	}
	m["stralloc_dereference_replace_by"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		sa := argPtr(args, 0)
		i := argInt(args, 1)
		c := byte(argInt(args, 2))
		if i < 0 {
			return IntV(0), nil
		}
		ok, err := in.saReady(sa, i+1, call)
		if err != nil || !ok {
			return IntV(0), err
		}
		s := in.saLoadPtr(sa, _saOffS, at)
		in.storeBytes(Pointer{Obj: s.Obj, Off: s.Off + i}, []byte{c}, at)
		length := in.saLoadU32(sa, _saOffLen, at)
		if c == 0 {
			// NUL terminates the string: len shrinks to i.
			if i < length {
				in.saStoreU32(sa, _saOffLen, i, at)
			}
		} else if i+1 > length {
			in.saStoreU32(sa, _saOffLen, i+1, at)
		}
		return IntV(1), nil
	}
	m["stralloc_increment_by"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		sa := argPtr(args, 0)
		n := argInt(args, 1)
		s := in.saLoadPtr(sa, _saOffS, at)
		f := in.saLoadPtr(sa, _saOffF, at)
		a := in.saLoadU32(sa, _saOffA, at)
		if s.IsNull() || s.Obj != f.Obj || (s.Off-f.Off)+n > a {
			return IntV(0), nil
		}
		in.saStorePtr(sa, _saOffS, Pointer{Obj: s.Obj, Off: s.Off + n}, at)
		length := in.saLoadU32(sa, _saOffLen, at)
		if length >= n {
			in.saStoreU32(sa, _saOffLen, length-n, at)
		} else {
			in.saStoreU32(sa, _saOffLen, 0, at)
		}
		return IntV(1), nil
	}
	m["stralloc_decrement_by"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		sa := argPtr(args, 0)
		n := argInt(args, 1)
		s := in.saLoadPtr(sa, _saOffS, at)
		f := in.saLoadPtr(sa, _saOffF, at)
		if s.IsNull() || s.Obj != f.Obj || s.Off-n < f.Off {
			return IntV(0), nil
		}
		in.saStorePtr(sa, _saOffS, Pointer{Obj: s.Obj, Off: s.Off - n}, at)
		length := in.saLoadU32(sa, _saOffLen, at)
		in.saStoreU32(sa, _saOffLen, length+n, at)
		return IntV(1), nil
	}
	m["stralloc_compare"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		a, b := argPtr(args, 0), argPtr(args, 1)
		as := in.saLoadPtr(a, _saOffS, at)
		bs := in.saLoadPtr(b, _saOffS, at)
		an := in.saLoadU32(a, _saOffLen, at)
		bn := in.saLoadU32(b, _saOffLen, at)
		ab := in.loadBytes(as, an, at)
		bb := in.loadBytes(bs, bn, at)
		for i := 0; i < len(ab) && i < len(bb); i++ {
			if ab[i] != bb[i] {
				if ab[i] < bb[i] {
					return IntV(-1), nil
				}
				return IntV(1), nil
			}
		}
		switch {
		case an < bn:
			return IntV(-1), nil
		case an > bn:
			return IntV(1), nil
		default:
			return IntV(0), nil
		}
	}
	m["stralloc_find_char"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		sa := argPtr(args, 0)
		c := byte(argInt(args, 1))
		s := in.saLoadPtr(sa, _saOffS, at)
		n := in.saLoadU32(sa, _saOffLen, at)
		data := in.loadBytes(s, n, at)
		for i, b := range data {
			if b == c {
				return IntV(int64(i)), nil
			}
		}
		return IntV(-1), nil
	}
	m["stralloc_substring_at"] = func(in *Interp, args []Value, call *cast.CallExpr) (Value, error) {
		at := call.Extent()
		sa := argPtr(args, 0)
		i := argInt(args, 1)
		s := in.saLoadPtr(sa, _saOffS, at)
		n := in.saLoadU32(sa, _saOffLen, at)
		if s.IsNull() || i >= n {
			return NullV(), nil
		}
		return PtrV(Pointer{Obj: s.Obj, Off: s.Off + i}), nil
	}
}
