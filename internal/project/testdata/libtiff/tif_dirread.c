/* tif_dirread.c: the directory reader clears a 16-byte tag buffer with
 * the 64-entry directory count — the overflow is only provable when the
 * analysis sees _TIFFmemset8's body in tif_aux.c. The strcpy below is a
 * conventional in-file SLR target. */
#include "tiffio.h"

void TIFFReadDirectory(void) {
    char tagbuf[TIFF_TAGBUF];
    strcpy(tagbuf, "II*");
    _TIFFmemset8(tagbuf, 0, TIFF_DIRCNT);
}
