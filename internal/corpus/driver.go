package corpus

import (
	"fmt"
	"strings"
)

// TestDriver returns a C main() exercising every planted function of the
// project with benign inputs — the analog of the paper's "we ran make
// test ... the results were the same for before and after programs"
// (Section IV-B). The driver is concatenated with all project files into
// one translation unit; outputs must match byte-for-byte across the
// original and transformed versions, with zero checked-interpreter
// violations on either side.
func (p *Project) TestDriver() string {
	var sb strings.Builder
	sb.WriteString("\n/* make-test driver (see internal/corpus/driver.go). */\n")
	sb.WriteString("int main(void) {\n")
	sb.WriteString("    char driver_buf[512];\n")
	sb.WriteString("    int driver_acc = 0;\n")
	sb.WriteString("    driver_buf[0] = '\\0';\n")
	for _, call := range p.DriverCalls {
		sb.WriteString("    " + call + "\n")
	}
	sb.WriteString("    printf(\"acc=%d\\n\", driver_acc);\n")
	sb.WriteString("    return 0;\n")
	sb.WriteString("}\n")
	return sb.String()
}

// ConcatenatedUnit joins every file of the project plus the test driver
// into a single translation unit.
func (p *Project) ConcatenatedUnit() string {
	var sb strings.Builder
	for _, f := range p.Files {
		sb.WriteString(f.Source)
		sb.WriteString("\n")
	}
	sb.WriteString(p.TestDriver())
	return sb.String()
}

// driverCallFor builds the benign invocation for one planted SLR site.
func driverCallFor(fn string, s siteSpec) string {
	switch {
	case s.ok:
		switch s.fn {
		case "strcpy":
			return fmt.Sprintf("%s(\"benign\");", fn)
		case "strcat":
			return fmt.Sprintf("%s(\"tail\");", fn)
		case "sprintf":
			return fmt.Sprintf("%s(7);", fn)
		case "vsprintf":
			return fmt.Sprintf("%s(\"plain text\", NULL);", fn)
		case "memcpy":
			return fmt.Sprintf("%s(\"0123456789abcdef\", 10);", fn)
		}
	case s.fail == "aliased":
		return fmt.Sprintf("%s(\"data\", 4);", fn)
	case s.fail == "arraybuf":
		return fmt.Sprintf("%s(\"data\");", fn)
	case s.fail == "ternary":
		return fmt.Sprintf("%s(\"data\", 1, 4);", fn)
	default: // noalloc
		switch s.fn {
		case "vsprintf":
			return fmt.Sprintf("%s(driver_buf, \"plain text\", NULL);", fn)
		case "memcpy":
			return fmt.Sprintf("%s(driver_buf, \"data\", 4);", fn)
		default:
			return fmt.Sprintf("%s(driver_buf, \"data\");", fn)
		}
	}
	return ""
}

// driverCallForVar builds the invocation for one planted STR variable
// function (they return ints; the driver accumulates them).
func driverCallForVar(fn string) string {
	return fmt.Sprintf("driver_acc += %s();", fn)
}
