package experiments

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/samate"
)

// TestFullCorpusRQ1 verifies the paper's headline RQ1 claim over the
// complete 4,505-program corpus: every bad function overflows before
// transformation, none does afterwards, and every good function's output
// is preserved. Takes ~8s; skipped under -short.
func TestFullCorpusRQ1(t *testing.T) {
	if testing.Short() {
		t.Skip("full 4,505-program corpus; run without -short")
	}
	total, failures := 0, 0
	for _, cwe := range samate.CWEs {
		progs := samate.Generate(cwe, samate.TableIIICounts[cwe])
		for _, p := range progs {
			total++
			v, err := harness.Verify(p.ID, p.Source, p.ID+"_good", p.ID+"_bad",
				harness.Options{Stdin: stdinFor(p)})
			if err != nil {
				failures++
				t.Errorf("%s sink=%s flow=%s: %v", p.ID, p.Sink, p.Flow, err)
				continue
			}
			if !v.VulnDetected || !v.Fixed || !v.Preserved {
				failures++
				t.Errorf("%s sink=%s flow=%s: detected=%v fixed=%v preserved=%v (postBad=%v)",
					p.ID, p.Sink, p.Flow, v.VulnDetected, v.Fixed, v.Preserved,
					v.PostBad.Violations)
			}
			if failures > 20 {
				t.Fatalf("too many failures; aborting after %d/%d programs", total, samate.TotalPrograms())
			}
		}
	}
	if total != samate.TotalPrograms() {
		t.Fatalf("processed %d programs, want %d", total, samate.TotalPrograms())
	}
}
