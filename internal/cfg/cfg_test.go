package cfg

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
)

func buildFor(t *testing.T, src string) *Graph {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(tu.Funcs) == 0 {
		t.Fatal("no function in source")
	}
	return Build(tu.Funcs[0])
}

// reachable returns the set of node IDs reachable from entry.
func reachable(g *Graph) map[int]bool {
	seen := make(map[int]bool, len(g.Nodes))
	var walk func(n *Node)
	walk = func(n *Node) {
		if seen[n.ID] {
			return
		}
		seen[n.ID] = true
		for _, s := range n.Succs {
			walk(s)
		}
	}
	walk(g.Entry)
	return seen
}

func TestStraightLine(t *testing.T) {
	g := buildFor(t, `
void f(void) {
    int a;
    a = 1;
    a = 2;
}
`)
	// entry -> decl -> stmt -> stmt -> exit
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes: got %d, want 5\n%s", len(g.Nodes), g)
	}
	r := reachable(g)
	if !r[g.Exit.ID] {
		t.Fatal("exit not reachable")
	}
	if len(r) != 5 {
		t.Fatalf("reachable: got %d, want 5", len(r))
	}
}

func TestIfElseJoins(t *testing.T) {
	g := buildFor(t, `
void f(int c) {
    int a;
    if (c) { a = 1; } else { a = 2; }
    a = 3;
}
`)
	// The join statement (a = 3) must have two predecessors.
	var join *Node
	for _, n := range g.Nodes {
		if n.Kind == KindStmt {
			if es, ok := n.Stmt.(*cast.ExprStmt); ok {
				if a, ok := es.X.(*cast.AssignExpr); ok {
					if lit, ok := a.RHS.(*cast.IntLit); ok && lit.Value == 3 {
						join = n
					}
				}
			}
		}
	}
	if join == nil {
		t.Fatal("join statement not found")
	}
	if len(join.Preds) != 2 {
		t.Fatalf("join preds: got %d, want 2\n%s", len(join.Preds), g)
	}
}

func TestIfWithoutElseFallsThrough(t *testing.T) {
	g := buildFor(t, `
void f(int c) {
    if (c) { c = 1; }
    c = 2;
}
`)
	var cond *Node
	for _, n := range g.Nodes {
		if n.Kind == KindCond {
			cond = n
		}
	}
	if cond == nil {
		t.Fatal("no condition node")
	}
	// Condition has 2 successors: then-branch and fall-through.
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs: got %d, want 2\n%s", len(cond.Succs), g)
	}
}

func TestWhileLoopBackEdge(t *testing.T) {
	g := buildFor(t, `
void f(int n) {
    while (n > 0) { n--; }
    n = 5;
}
`)
	var cond *Node
	for _, n := range g.Nodes {
		if n.Kind == KindCond {
			cond = n
		}
	}
	// The loop body statement must loop back to the condition.
	hasBack := false
	for _, n := range g.Nodes {
		if n.Kind == KindStmt {
			for _, s := range n.Succs {
				if s == cond {
					hasBack = true
				}
			}
		}
	}
	if !hasBack {
		t.Fatalf("missing back edge to loop condition\n%s", g)
	}
}

func TestForLoopStructure(t *testing.T) {
	g := buildFor(t, `
void f(void) {
    int i;
    int s;
    for (i = 0; i < 10; i++) { s += i; }
    s = 0;
}
`)
	var post *Node
	for _, n := range g.Nodes {
		if n.Kind == KindPost {
			post = n
		}
	}
	if post == nil {
		t.Fatalf("no post node\n%s", g)
	}
	// post must flow to the condition.
	found := false
	for _, s := range post.Succs {
		if s.Kind == KindCond {
			found = true
		}
	}
	if !found {
		t.Fatalf("post does not reach condition\n%s", g)
	}
}

func TestBreakLeavesLoop(t *testing.T) {
	g := buildFor(t, `
void f(int n) {
    for (;;) {
        if (n) { break; }
        n++;
    }
    n = 9;
}
`)
	r := reachable(g)
	if !r[g.Exit.ID] {
		t.Fatalf("exit unreachable despite break\n%s", g)
	}
	// The statement after the loop must be reachable.
	var after *Node
	for _, n := range g.Nodes {
		if es, ok := n.Stmt.(*cast.ExprStmt); ok {
			if a, ok := es.X.(*cast.AssignExpr); ok {
				if lit, ok := a.RHS.(*cast.IntLit); ok && lit.Value == 9 {
					after = n
				}
			}
		}
	}
	if after == nil || !r[after.ID] {
		t.Fatalf("statement after loop unreachable\n%s", g)
	}
}

func TestContinueTargetsCondition(t *testing.T) {
	g := buildFor(t, `
void f(int n) {
    while (n) {
        if (n == 1) { continue; }
        n--;
    }
}
`)
	var contNode *Node
	for _, n := range g.Nodes {
		if _, ok := n.Stmt.(*cast.ContinueStmt); ok {
			contNode = n
		}
	}
	if contNode == nil {
		t.Fatal("continue node not found")
	}
	if len(contNode.Succs) != 1 || contNode.Succs[0].Kind != KindCond {
		t.Fatalf("continue should target loop condition\n%s", g)
	}
}

func TestReturnGoesToExit(t *testing.T) {
	g := buildFor(t, `
int f(int c) {
    if (c) { return 1; }
    return 0;
}
`)
	nReturns := 0
	for _, n := range g.Nodes {
		if _, ok := n.Stmt.(*cast.ReturnStmt); ok {
			nReturns++
			if len(n.Succs) != 1 || n.Succs[0] != g.Exit {
				t.Fatalf("return should flow only to exit\n%s", g)
			}
		}
	}
	if nReturns != 2 {
		t.Fatalf("returns: got %d, want 2", nReturns)
	}
}

func TestSwitchDispatch(t *testing.T) {
	g := buildFor(t, `
void f(int n) {
    switch (n) {
    case 0:
        n = 1;
        break;
    case 1:
        n = 2;
        break;
    default:
        n = 3;
    }
    n = 4;
}
`)
	var tag *Node
	for _, n := range g.Nodes {
		if n.Kind == KindCond {
			tag = n
		}
	}
	// Tag dispatches to 3 case labels.
	nCases := 0
	for _, s := range tag.Succs {
		if _, ok := s.Stmt.(*cast.CaseStmt); ok {
			nCases++
		}
	}
	if nCases != 3 {
		t.Fatalf("case dispatch edges: got %d, want 3\n%s", nCases, g)
	}
	r := reachable(g)
	if !r[g.Exit.ID] {
		t.Fatal("exit unreachable")
	}
}

func TestSwitchWithoutDefaultFallsThrough(t *testing.T) {
	g := buildFor(t, `
void f(int n) {
    switch (n) {
    case 0:
        n = 1;
        break;
    }
    n = 4;
}
`)
	// With no default, the tag must have a fall-through edge past the
	// switch: the statement after must have >= 2 preds (break + tag path).
	var after *Node
	for _, n := range g.Nodes {
		if es, ok := n.Stmt.(*cast.ExprStmt); ok {
			if a, ok := es.X.(*cast.AssignExpr); ok {
				if lit, ok := a.RHS.(*cast.IntLit); ok && lit.Value == 4 {
					after = n
				}
			}
		}
	}
	if after == nil {
		t.Fatal("after-switch statement not found")
	}
	if len(after.Preds) < 2 {
		t.Fatalf("after-switch preds: got %d, want >= 2\n%s", len(after.Preds), g)
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	g := buildFor(t, `
void f(int n) {
top:
    n--;
    if (n > 5) { goto top; }
    if (n < 0) { goto end; }
    n = 1;
end:
    return;
}
`)
	r := reachable(g)
	if !r[g.Exit.ID] {
		t.Fatalf("exit unreachable\n%s", g)
	}
	// Both gotos must have exactly one successor (their label).
	for _, n := range g.Nodes {
		if _, ok := n.Stmt.(*cast.GotoStmt); ok {
			if len(n.Succs) != 1 {
				t.Fatalf("goto succs: got %d, want 1\n%s", len(n.Succs), g)
			}
		}
	}
}

func TestDoWhile(t *testing.T) {
	g := buildFor(t, `
void f(int n) {
    do { n--; } while (n > 0);
    n = 7;
}
`)
	r := reachable(g)
	if !r[g.Exit.ID] {
		t.Fatalf("exit unreachable\n%s", g)
	}
	// The condition must have a back edge into the body.
	var cond *Node
	for _, n := range g.Nodes {
		if n.Kind == KindCond {
			cond = n
		}
	}
	back := false
	for _, s := range cond.Succs {
		if s.Kind == KindStmt {
			back = true
		}
	}
	if !back {
		t.Fatalf("do-while condition lacks back edge\n%s", g)
	}
}

func TestEmptyFunction(t *testing.T) {
	g := buildFor(t, "void f(void) {}")
	if len(g.Nodes) != 2 {
		t.Fatalf("nodes: got %d, want 2 (entry, exit)", len(g.Nodes))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatal("entry should connect directly to exit")
	}
}

func TestInfiniteLoopNoExit(t *testing.T) {
	g := buildFor(t, "void f(void){ for(;;){} }")
	r := reachable(g)
	if r[g.Exit.ID] {
		t.Fatalf("exit should be unreachable for for(;;) with no break\n%s", g)
	}
}
