package cinterp

import (
	"strings"
	"testing"

	"repro/internal/stralloc"
)

// run executes src's entry function, failing the test on hard errors.
func run(t *testing.T, src, entry string, stdin ...string) *Result {
	t.Helper()
	res, err := LoadAndRun("t.c", src, entry, stdin, Limits{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestHelloWorld(t *testing.T) {
	res := run(t, `
int main(void) {
    printf("hello %s, %d\n", "world", 42);
    return 7;
}
`, "main")
	if res.Stdout != "hello world, 42\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
	if res.Return != 7 {
		t.Fatalf("return: %d", res.Return)
	}
	if res.HasViolations() {
		t.Fatalf("unexpected violations: %v", res.Violations)
	}
}

func TestArithmeticAndControlFlow(t *testing.T) {
	res := run(t, `
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
int main(void) {
    int i;
    int total = 0;
    for (i = 0; i < 10; i++) {
        total += fib(i);
    }
    printf("%d\n", total);
    return 0;
}
`, "main")
	if res.Stdout != "88\n" {
		t.Fatalf("stdout: %q (fib sum 0..9 = 88)", res.Stdout)
	}
}

func TestWhileDoWhileSwitch(t *testing.T) {
	res := run(t, `
int main(void) {
    int n = 0;
    int x = 3;
    while (n < 3) { n++; }
    do { n++; } while (n < 5);
    switch (x) {
    case 1:
        printf("one");
        break;
    case 3:
        printf("three ");
    case 4:
        printf("fall");
        break;
    default:
        printf("other");
    }
    printf(" n=%d\n", n);
    return 0;
}
`, "main")
	if res.Stdout != "three fall n=5\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestGotoFlow(t *testing.T) {
	res := run(t, `
int main(void) {
    int n = 0;
loop:
    n++;
    if (n < 3) { goto loop; }
    printf("%d\n", n);
    return 0;
}
`, "main")
	if res.Stdout != "3\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestPointersAndArrays(t *testing.T) {
	res := run(t, `
int main(void) {
    int a[4];
    int *p = a;
    int i;
    for (i = 0; i < 4; i++) { a[i] = i * 10; }
    p = p + 2;
    printf("%d %d %d\n", *p, p[1], p - a);
    return 0;
}
`, "main")
	if res.Stdout != "20 30 2\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestStructsAndMembers(t *testing.T) {
	res := run(t, `
struct point { int x; int y; };
struct rect { struct point min; struct point max; };
int main(void) {
    struct rect r;
    struct rect *pr = &r;
    r.min.x = 1;
    r.min.y = 2;
    pr->max.x = 3;
    pr->max.y = 4;
    printf("%d %d %d %d\n", r.min.x, r.min.y, r.max.x, r.max.y);
    return 0;
}
`, "main")
	if res.Stdout != "1 2 3 4\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestStructAssignmentCopies(t *testing.T) {
	res := run(t, `
struct pair { int a; int b; };
int main(void) {
    struct pair p1;
    struct pair p2;
    p1.a = 10;
    p1.b = 20;
    p2 = p1;
    p1.a = 99;
    printf("%d %d\n", p2.a, p2.b);
    return 0;
}
`, "main")
	if res.Stdout != "10 20\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestStringFunctions(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[32];
    strcpy(buf, "hello");
    strcat(buf, " world");
    printf("%s %d\n", buf, strlen(buf));
    printf("%d\n", strcmp(buf, "hello world"));
    char *p = strchr(buf, 'w');
    printf("%s\n", p);
    return 0;
}
`, "main")
	want := "hello world 11\n0\nworld\n"
	if res.Stdout != want {
		t.Fatalf("stdout: %q, want %q", res.Stdout, want)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestHeapAllocAndFree(t *testing.T) {
	res := run(t, `
int main(void) {
    char *p = malloc(16);
    strcpy(p, "heap");
    printf("%s %d\n", p, malloc_usable_size(p));
    free(p);
    return 0;
}
`, "main")
	if res.Stdout != "heap 16\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

// --- Violation detection: one test per CWE class of Table III ---

func TestDetectStackOverflowCWE121(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[10];
    strcpy(buf, "this string is much longer than ten bytes");
    return 0;
}
`, "main")
	if got := res.ViolationsByCWE()[121]; got == 0 {
		t.Fatalf("expected CWE-121, got %v", res.Violations)
	}
}

func TestDetectHeapOverflowCWE122(t *testing.T) {
	res := run(t, `
int main(void) {
    char *buf = malloc(8);
    memset(buf, 'A', 50);
    return 0;
}
`, "main")
	if got := res.ViolationsByCWE()[122]; got == 0 {
		t.Fatalf("expected CWE-122, got %v", res.Violations)
	}
}

func TestDetectUnderwriteCWE124(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[16];
    char *p = buf;
    p = p - 8;
    *p = 'x';
    return 0;
}
`, "main")
	if got := res.ViolationsByCWE()[124]; got == 0 {
		t.Fatalf("expected CWE-124, got %v", res.Violations)
	}
}

func TestDetectOverreadCWE126(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    char c;
    memset(buf, 'A', 8);
    c = buf[20];
    putchar(c);
    return 0;
}
`, "main")
	if got := res.ViolationsByCWE()[126]; got == 0 {
		t.Fatalf("expected CWE-126, got %v", res.Violations)
	}
}

func TestDetectUnderreadCWE127(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    char *p = buf;
    char c;
    p = p - 4;
    c = *p;
    putchar(c);
    return 0;
}
`, "main")
	if got := res.ViolationsByCWE()[127]; got == 0 {
		t.Fatalf("expected CWE-127, got %v", res.Violations)
	}
}

func TestDetectGetsOverflowCWE121(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    gets(buf);
    printf("%s\n", buf);
    return 0;
}
`, "main", "a very long line that overflows the small buffer")
	if got := res.ViolationsByCWE()[121]; got == 0 {
		t.Fatalf("expected CWE-121 from gets, got %v", res.Violations)
	}
}

func TestFgetsBounded(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    fgets(buf, sizeof(buf), stdin);
    printf("%s", buf);
    return 0;
}
`, "main", "a very long line")
	if res.HasViolations() {
		t.Fatalf("fgets must not overflow: %v", res.Violations)
	}
	if res.Stdout != "a very " {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestGStrlcpyTruncates(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    g_strlcpy(buf, "much longer than eight", sizeof(buf));
    printf("%s\n", buf);
    return 0;
}
`, "main")
	if res.HasViolations() {
		t.Fatalf("g_strlcpy must not overflow: %v", res.Violations)
	}
	if res.Stdout != "much lo\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestUseAfterFreeDetected(t *testing.T) {
	res := run(t, `
int main(void) {
    char *p = malloc(8);
    free(p);
    *p = 'x';
    return 0;
}
`, "main")
	if got := res.ViolationsByCWE()[416]; got == 0 {
		t.Fatalf("expected CWE-416, got %v", res.Violations)
	}
}

func TestNullDerefDetected(t *testing.T) {
	res := run(t, `
int main(void) {
    char *p = 0;
    *p = 'x';
    return 0;
}
`, "main")
	if got := res.ViolationsByCWE()[476]; got == 0 {
		t.Fatalf("expected CWE-476, got %v", res.Violations)
	}
}

func TestSignExtensionSprintfCVE(t *testing.T) {
	// The LibTIFF tiff2pdf mechanism: a char with the high bit set is
	// sign-extended, %o prints 11 digits, overflowing char buffer[5].
	res := run(t, `
int main(void) {
    char buffer[5];
    char c = 0xE9;
    sprintf(buffer, "\\%.3o", c);
    return 0;
}
`, "main")
	if got := res.ViolationsByCWE()[121]; got == 0 {
		t.Fatalf("expected CWE-121 from sign-extended %%o, got %v", res.Violations)
	}
	// And the SLR fix (g_snprintf with sizeof) removes it.
	res2 := run(t, `
int main(void) {
    char buffer[5];
    char c = 0xE9;
    g_snprintf(buffer, sizeof(buffer), "\\%.3o", c);
    return 0;
}
`, "main")
	if res2.HasViolations() {
		t.Fatalf("bounded snprintf must not overflow: %v", res2.Violations)
	}
}

func TestPrintfFormats(t *testing.T) {
	res := run(t, `
int main(void) {
    printf("[%5d][%-5d][%05d]", 42, 42, 42);
    printf("[%x][%X][%o]", 255, 255, 8);
    printf("[%c][%%]", 65);
    printf("[%.3o]", 7);
    printf("[%u]", 10);
    printf("[%.2s]", "abcdef");
    return 0;
}
`, "main")
	want := "[   42][42   ][00042][ff][FF][10][A][%][007][10][ab]"
	if res.Stdout != want {
		t.Fatalf("stdout: %q, want %q", res.Stdout, want)
	}
}

func TestUnsignedComparison(t *testing.T) {
	// size_t comparisons must be unsigned: (unsigned long)-1 > 10.
	res := run(t, `
int main(void) {
    unsigned long a = 0;
    a = a - 1;
    if (a > 10) { printf("big\n"); } else { printf("small\n"); }
    return 0;
}
`, "main")
	if res.Stdout != "big\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestCharSignExtension(t *testing.T) {
	res := run(t, `
int main(void) {
    char c = 0x80;
    int i = c;
    printf("%d\n", i);
    return 0;
}
`, "main")
	if res.Stdout != "-128\n" {
		t.Fatalf("stdout: %q (char must be signed)", res.Stdout)
	}
}

func TestGlobalVariables(t *testing.T) {
	res := run(t, `
int counter = 5;
char message[16] = "start";
void bump(void) { counter++; }
int main(void) {
    bump();
    bump();
    printf("%d %s\n", counter, message);
    return 0;
}
`, "main")
	if res.Stdout != "7 start\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestStrallocLibraryExecutes(t *testing.T) {
	// The interpreted stralloc library (internal/stralloc C source) must
	// behave correctly: copy, cat, bounds-checked access.
	src := stralloc.FullSource() + `
int main(void) {
    stralloc sa = {0,0,0};
    stralloc *buf = &sa;
    stralloc_copys(buf, "hello");
    stralloc_cats(buf, " world");
    printf("%s %d\n", buf->s, buf->len);
    printf("%d\n", stralloc_get_dereferenced_char_at(buf, 4));
    printf("%d\n", stralloc_get_dereferenced_char_at(buf, 1000));
    stralloc_dereference_replace_by(buf, 0, 'H');
    printf("%s\n", buf->s);
    return 0;
}
`
	res := run(t, src, "main")
	want := "hello world 11\n111\n0\nHello world\n"
	if res.Stdout != want {
		t.Fatalf("stdout: %q, want %q", res.Stdout, want)
	}
	if res.HasViolations() {
		t.Fatalf("stralloc library must be violation-free: %v", res.Violations)
	}
}

func TestStrallocPreventsOverflow(t *testing.T) {
	// A former CWE-121: memset of 100 bytes into a 10-byte buffer. After
	// STR-style conversion, stralloc_memset clamps to the capacity.
	src := stralloc.FullSource() + `
int main(void) {
    stralloc sa = {0,0,0};
    stralloc *buf = &sa;
    buf->a = 10;
    stralloc_memset(buf, 'A', 100);
    printf("%d\n", buf->len);
    return 0;
}
`
	res := run(t, src, "main")
	if res.HasViolations() {
		t.Fatalf("stralloc_memset must not overflow: %v", res.Violations)
	}
	if res.Stdout != "10\n" {
		t.Fatalf("stdout: %q (fill clamped to capacity)", res.Stdout)
	}
}

func TestStepLimitEnforced(t *testing.T) {
	_, err := LoadAndRun("t.c", `
int main(void) {
    for (;;) {}
    return 0;
}
`, "main", nil, Limits{MaxSteps: 1000})
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("expected step limit error, got %v", err)
	}
}

func TestExitStopsExecution(t *testing.T) {
	res := run(t, `
int main(void) {
    printf("before\n");
    exit(3);
    printf("after\n");
    return 0;
}
`, "main")
	if res.Stdout != "before\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
	if res.Return != 3 {
		t.Fatalf("return: %d", res.Return)
	}
}

func TestTernaryAndLogicalOps(t *testing.T) {
	res := run(t, `
int side_effect(int *p) { *p = *p + 1; return 0; }
int main(void) {
    int calls = 0;
    int x = 5;
    int y = x > 3 ? 10 : 20;
    // Short circuit: side_effect must not run.
    if (0 && side_effect(&calls)) { y = 0; }
    if (1 || side_effect(&calls)) { y += 1; }
    printf("%d %d\n", y, calls);
    return 0;
}
`, "main")
	if res.Stdout != "11 0\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestEnumValues(t *testing.T) {
	res := run(t, `
enum color { RED, GREEN = 5, BLUE };
int main(void) {
    printf("%d %d %d\n", RED, GREEN, BLUE);
    return 0;
}
`, "main")
	if res.Stdout != "0 5 6\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestTwoDimensionalArray(t *testing.T) {
	res := run(t, `
int main(void) {
    int m[2][3];
    int i;
    int j;
    for (i = 0; i < 2; i++) {
        for (j = 0; j < 3; j++) {
            m[i][j] = i * 3 + j;
        }
    }
    printf("%d %d\n", m[1][2], m[0][1]);
    return 0;
}
`, "main")
	if res.Stdout != "5 1\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestArrayParameterSharing(t *testing.T) {
	res := run(t, `
void fill(char *dst, char c) { dst[0] = c; }
int main(void) {
    char buf[4];
    buf[0] = 'a';
    fill(buf, 'z');
    printf("%c\n", buf[0]);
    return 0;
}
`, "main")
	if res.Stdout != "z\n" {
		t.Fatalf("stdout: %q (arrays decay to shared pointers)", res.Stdout)
	}
}

func TestViolationPositionsReported(t *testing.T) {
	res := run(t, `int main(void) {
    char buf[4];
    strcpy(buf, "overflowing content");
    return 0;
}
`, "main")
	if len(res.Violations) == 0 {
		t.Fatal("expected a violation")
	}
	v := res.Violations[0]
	if v.Pos.Line != 3 {
		t.Fatalf("violation line: got %d, want 3 (%s)", v.Pos.Line, v)
	}
}

func TestMemcpyClampTernaryPattern(t *testing.T) {
	// The SLR option-2 rewrite must be executable and safe.
	res := run(t, `
int main(void) {
    char dst[8];
    char src[32];
    memset(src, 'x', 31);
    src[31] = '\0';
    unsigned long n = 31;
    memcpy(dst, src, sizeof(dst) > n ? n : sizeof(dst));
    printf("%c\n", dst[7]);
    return 0;
}
`, "main")
	if res.HasViolations() {
		t.Fatalf("clamped memcpy must be safe: %v", res.Violations)
	}
	if res.Stdout != "x\n" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}
