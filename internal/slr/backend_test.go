package slr

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/cparse"
)

// runAllBackend parses src and applies SLR under the named dialect.
func runAllBackend(t *testing.T, name, src string) *FileResult {
	t.Helper()
	be, err := backend.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := NewTransformerBackend(tu, be).ApplyAll()
	if err != nil {
		t.Fatalf("ApplyAll(%s): %v", name, err)
	}
	return res
}

const renameInput = `
void example(void) {
    char buf[10];
    char src[100];
    strcpy(buf, src);
    strcat(buf, src);
    sprintf(buf, "%s", src);
}
`

// TestBackendRenameShapes pins each dialect's emitted call shape on the
// same input — including the Annex K argument reordering (destination
// size before the source).
func TestBackendRenameShapes(t *testing.T) {
	cases := []struct {
		backend string
		want    []string
	}{
		{"glib", []string{
			"g_strlcpy(buf, src, sizeof(buf))",
			"g_strlcat(buf, src, sizeof(buf))",
			`g_snprintf(buf, sizeof(buf), "%s", src)`,
		}},
		{"bsd", []string{
			"strlcpy(buf, src, sizeof(buf))",
			"strlcat(buf, src, sizeof(buf))",
			`snprintf(buf, sizeof(buf), "%s", src)`,
		}},
		{"c11k", []string{
			"strcpy_s(buf, sizeof(buf), src)",
			"strcat_s(buf, sizeof(buf), src)",
			`sprintf_s(buf, sizeof(buf), "%s", src)`,
		}},
	}
	for _, c := range cases {
		res := runAllBackend(t, c.backend, renameInput)
		if res.AppliedCount() != 3 {
			t.Fatalf("%s: applied %d/3; sites: %+v", c.backend, res.AppliedCount(), res.Sites)
		}
		for _, want := range c.want {
			if !strings.Contains(res.NewSource, want) {
				t.Fatalf("%s output missing %q:\n%s", c.backend, want, res.NewSource)
			}
		}
		for i, s := range res.Sites {
			safe := strings.SplitN(c.want[i], "(", 2)[0]
			if s.SafeName != safe {
				t.Fatalf("%s site %d SafeName = %q, want %q", c.backend, i, s.SafeName, safe)
			}
		}
		if !res.NeedsGlib {
			t.Fatalf("%s: library requirement not flagged", c.backend)
		}
		reparse(t, res.NewSource)
	}
}

// TestBackendGetsShapes: fgets dialects insert the stream argument and
// strip the kept newline; gets_s takes only the size and discards the
// newline itself, so no stripping sequence may appear.
func TestBackendGetsShapes(t *testing.T) {
	src := `
void read_line(void) {
    char buf[16];
    gets(buf);
}
`
	for _, name := range []string{"glib", "bsd"} {
		res := runAllBackend(t, name, src)
		if res.AppliedCount() != 1 {
			t.Fatalf("%s: applied %d/1", name, res.AppliedCount())
		}
		if !strings.Contains(res.NewSource, "fgets(buf, sizeof(buf), stdin)") {
			t.Fatalf("%s output:\n%s", name, res.NewSource)
		}
		if !strings.Contains(res.NewSource, "strchr(buf, '\\n')") {
			t.Fatalf("%s: newline strip missing:\n%s", name, res.NewSource)
		}
		if res.NeedsGlib {
			t.Fatalf("%s: fgets is libc, must not flag the dialect library", name)
		}
		reparse(t, res.NewSource)
	}
	res := runAllBackend(t, "c11k", src)
	if res.AppliedCount() != 1 {
		t.Fatalf("c11k: applied %d/1", res.AppliedCount())
	}
	if !strings.Contains(res.NewSource, "gets_s(buf, sizeof(buf))") {
		t.Fatalf("c11k output:\n%s", res.NewSource)
	}
	if strings.Contains(res.NewSource, "strchr") {
		t.Fatalf("c11k: gets_s discards the newline; no strip expected:\n%s", res.NewSource)
	}
	if !res.NeedsGlib {
		t.Fatal("c11k: gets_s needs the Annex K declarations")
	}
	reparse(t, res.NewSource)
}

// TestBackendMemcpyShapes: glib and bsd clamp the length in place;
// c11k renames to memcpy_s with the destination size inserted before
// the source.
func TestBackendMemcpyShapes(t *testing.T) {
	src := `
void copy(int n) {
    char buf[8];
    char data[64];
    memcpy(buf, data, n);
}
`
	for _, name := range []string{"glib", "bsd"} {
		res := runAllBackend(t, name, src)
		if res.AppliedCount() != 1 {
			t.Fatalf("%s: applied %d/1", name, res.AppliedCount())
		}
		if !strings.Contains(res.NewSource, "memcpy(buf, data, sizeof(buf) > n ? n : sizeof(buf))") {
			t.Fatalf("%s output:\n%s", name, res.NewSource)
		}
		reparse(t, res.NewSource)
	}
	res := runAllBackend(t, "c11k", src)
	if res.AppliedCount() != 1 {
		t.Fatalf("c11k: applied %d/1", res.AppliedCount())
	}
	if !strings.Contains(res.NewSource, "memcpy_s(buf, sizeof(buf), data, n)") {
		t.Fatalf("c11k output:\n%s", res.NewSource)
	}
	reparse(t, res.NewSource)
}

// TestBackendIdempotentPerDialect: a second pass over each dialect's
// output must change nothing — the emitted safe callees are not in the
// unsafe set, and re-clamped memcpy declines via FailAlreadyClamped.
func TestBackendIdempotentPerDialect(t *testing.T) {
	src := renameInput + `
void more(int n) {
    char buf[8];
    char data[64];
    memcpy(buf, data, n);
    gets(buf);
}
`
	for _, name := range []string{"glib", "bsd", "c11k"} {
		first := runAllBackend(t, name, src)
		second := runAllBackend(t, name, first.NewSource)
		if second.AppliedCount() != 0 {
			t.Fatalf("%s: second pass applied %d sites; sites: %+v",
				name, second.AppliedCount(), second.Sites)
		}
		if second.NewSource != first.NewSource {
			t.Fatalf("%s: second pass changed the text:\n--- first ---\n%s\n--- second ---\n%s",
				name, first.NewSource, second.NewSource)
		}
	}
}

// TestBackendGlibMatchesDefault: the explicit glib backend and the
// historical default constructor must be byte-identical.
func TestBackendGlibMatchesDefault(t *testing.T) {
	src := renameInput
	viaDefault := runAll(t, src)
	viaGlib := runAllBackend(t, "glib", src)
	if viaDefault.NewSource != viaGlib.NewSource {
		t.Fatal("explicit glib backend diverges from the default transformer")
	}
}

// TestBackendDegenerateCallDeclines: a malformed unsafe call with too
// few arguments declines with an unsupported-form failure instead of
// emitting garbage (or indexing out of range).
func TestBackendDegenerateCallDeclines(t *testing.T) {
	src := `
void f(void) {
    char buf[8];
    strcpy(buf);
}
`
	for _, name := range []string{"glib", "bsd", "c11k"} {
		res := runAllBackend(t, name, src)
		if res.AppliedCount() != 0 {
			t.Fatalf("%s: transformed a 1-argument strcpy", name)
		}
		if len(res.Sites) != 1 || res.Sites[0].Failure == nil {
			t.Fatalf("%s: expected one declined site, got %+v", name, res.Sites)
		}
	}
}
