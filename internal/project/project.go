// Package project drives the fixer across a whole C project: it loads a
// compile_commands.json database (or an in-memory file set), preprocesses
// every translation unit with internal/cpp, links the per-TU call graphs
// by symbol name, and runs the core pipeline per file with cross-TU call
// seeds — so an overflow provable only from a caller in another file is
// found and fixed, and every edit still lands in the text the user wrote.
//
// The link is a two-round protocol (DESIGN.md Section 16):
//
//  1. Scan: each TU is preprocessed and analyzed stand-alone; calls to
//     functions the TU does not define are evaluated under the caller's
//     interval state and exported as overflow.CallSeed values.
//  2. Fix: seeds are routed to the TU that defines their callee (by
//     symbol name — C has one flat namespace for external linkage) and
//     the per-file pipeline reruns with Options.ExternSeeds, exploring
//     the transported contexts exactly like local call edges.
//
// Everything stays deterministic: TUs process in database order, seeds
// sort before fingerprinting, and a file's cache key absorbs both its
// headers (IncludeHash) and its incoming seeds (SeedFingerprint).
package project

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cpp"
	"repro/internal/fault"
	"repro/internal/overflow"
)

// Command is one entry of a Clang-style compile_commands.json database.
// Exactly one of Command or Arguments is normally set.
type Command struct {
	Directory string   `json:"directory"`
	File      string   `json:"file"`
	Command   string   `json:"command,omitempty"`
	Arguments []string `json:"arguments,omitempty"`
	Output    string   `json:"output,omitempty"`
}

// TU is one translation unit resolved from the database: the main file
// plus the preprocessor configuration its compile command implies.
type TU struct {
	// File is the unit's path as the project addresses it (absolute for
	// database-loaded projects, verbatim for in-memory ones).
	File string
	// Source is the unit's original text.
	Source string
	// CppOpts carries the -I/-D flags translated for internal/cpp. The
	// Open hook is set for in-memory projects.
	CppOpts cpp.Options
}

// Project is a set of translation units processed together.
type Project struct {
	TUs []*TU
}

// LoadCompileCommands parses a compile_commands.json file into its raw
// entries, without reading any sources.
func LoadCompileCommands(path string) ([]Command, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("project: %w", err)
	}
	var cmds []Command
	if err := json.Unmarshal(b, &cmds); err != nil {
		return nil, fmt.Errorf("project: parse %s: %w", path, err)
	}
	return cmds, nil
}

// Load builds a Project from a compile_commands.json file: every .c
// entry is read from disk and its -I/-D flags are translated into
// cpp.Options (relative include dirs resolve against the entry's
// Directory). Non-C entries (assembly, C++) are skipped.
func Load(path string) (*Project, error) {
	cmds, err := LoadCompileCommands(path)
	if err != nil {
		return nil, err
	}
	p := &Project{}
	seen := make(map[string]bool)
	for _, cmd := range cmds {
		file := cmd.File
		if !filepath.IsAbs(file) {
			file = filepath.Join(cmd.Directory, file)
		}
		file = filepath.Clean(file)
		if seen[file] || !strings.HasSuffix(file, ".c") {
			continue
		}
		seen[file] = true
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("project: read %s: %w", cmd.File, err)
		}
		args := cmd.Arguments
		if len(args) == 0 {
			args = splitCommand(cmd.Command)
		}
		opts := argsToCppOptions(args, cmd.Directory)
		p.TUs = append(p.TUs, &TU{File: file, Source: string(src), CppOpts: opts})
	}
	if len(p.TUs) == 0 {
		return nil, fmt.Errorf("project: no C translation units in %s", path)
	}
	return p, nil
}

// InMemory builds a Project from in-memory sources: files maps unit
// names to C sources, headers maps include names to header text, and
// includeDirs seeds the include search path. This is the daemon's batch
// mode and the test harness — nothing touches the filesystem.
func InMemory(files map[string]string, headers map[string]string, includeDirs []string) *Project {
	open := func(path string) (string, bool) {
		if s, ok := headers[path]; ok {
			return s, true
		}
		// Headers may resolve through a join with the includer's
		// directory ("." for top-level names).
		if s, ok := headers[filepath.Clean(path)]; ok {
			return s, true
		}
		if s, ok := files[path]; ok {
			return s, true
		}
		return "", false
	}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	p := &Project{}
	for _, name := range names {
		p.TUs = append(p.TUs, &TU{
			File:    name,
			Source:  files[name],
			CppOpts: cpp.Options{IncludeDirs: includeDirs, Open: open},
		})
	}
	return p
}

// argsToCppOptions translates the flags internal/cpp understands:
// -I<dir> / -I <dir> (include path) and -D<name>[=<val>] / -D <name>
// (predefined macros). Everything else — optimization, warnings, the
// compiler name, the source file — is ignored.
func argsToCppOptions(args []string, dir string) cpp.Options {
	opts := cpp.Options{Defines: map[string]string{}}
	resolve := func(d string) string {
		if d != "" && !filepath.IsAbs(d) && dir != "" {
			return filepath.Join(dir, d)
		}
		return d
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-I" && i+1 < len(args):
			i++
			opts.IncludeDirs = append(opts.IncludeDirs, resolve(args[i]))
		case strings.HasPrefix(a, "-I"):
			opts.IncludeDirs = append(opts.IncludeDirs, resolve(a[2:]))
		case a == "-D" && i+1 < len(args):
			i++
			addDefine(opts.Defines, args[i])
		case strings.HasPrefix(a, "-D"):
			addDefine(opts.Defines, a[2:])
		}
	}
	return opts
}

func addDefine(m map[string]string, d string) {
	if d == "" {
		return
	}
	if eq := strings.IndexByte(d, '='); eq >= 0 {
		m[d[:eq]] = d[eq+1:]
		return
	}
	m[d] = "1"
}

// splitCommand tokenizes a shell command line the way build systems
// quote them: whitespace-separated, honoring single quotes, double
// quotes, and backslash escapes. It does not expand variables.
func splitCommand(s string) []string {
	var out []string
	var cur strings.Builder
	inField := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n':
			if inField {
				out = append(out, cur.String())
				cur.Reset()
				inField = false
			}
		case c == '\'':
			inField = true
			for i++; i < len(s) && s[i] != '\''; i++ {
				cur.WriteByte(s[i])
			}
		case c == '"':
			inField = true
			for i++; i < len(s) && s[i] != '"'; i++ {
				if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
					i++
				}
				cur.WriteByte(s[i])
			}
		case c == '\\' && i+1 < len(s):
			inField = true
			i++
			cur.WriteByte(s[i])
		default:
			inField = true
			cur.WriteByte(c)
		}
	}
	if inField {
		out = append(out, cur.String())
	}
	return out
}

// CrossEdge is one linked cross-TU call: a call in CallerFile to a
// function defined in CalleeFile.
type CrossEdge struct {
	CallerFile string `json:"caller_file"`
	Caller     string `json:"caller"`
	CalleeFile string `json:"callee_file"`
	Callee     string `json:"callee"`
}

// Link is the project-level symbol linkage computed by the scan round.
type Link struct {
	// DefinedBy maps every externally visible function definition to the
	// file that defines it. On duplicate definitions the first TU (in
	// project order) wins, matching the linker's first-object rule
	// closely enough for analysis.
	DefinedBy map[string]string
	// Edges lists the resolved cross-TU calls in scan order.
	Edges []CrossEdge
	// SeedsFor routes the transported call seeds: file -> seeds whose
	// callee that file defines.
	SeedsFor map[string][]overflow.CallSeed
}

// FileOutcome is one TU's result in a project run.
type FileOutcome struct {
	File string `json:"file"`
	// Fix is set for Fix runs, Lint for Analyze runs.
	Fix  *core.Report     `json:"fix,omitempty"`
	Lint *core.LintReport `json:"lint,omitempty"`
	// Includes lists the headers the preprocessor inlined, in first-use
	// order.
	Includes []string `json:"includes,omitempty"`
	// Err carries a per-file failure (the run continues; project mode is
	// keep-going across files by construction).
	Err string `json:"err,omitempty"`
}

// Report is the outcome of a project run.
type Report struct {
	Files []FileOutcome `json:"files"`
	// Edges lists the cross-TU calls the scan round linked.
	Edges []CrossEdge `json:"edges,omitempty"`
}

// scan is round 1: preprocess and analyze every TU stand-alone,
// exporting external-call seeds, and link them by defined symbol.
func (p *Project) scan(ctx context.Context, opts core.Options) (*Link, map[string]*cpp.Result, []string) {
	link := &Link{
		DefinedBy: make(map[string]string),
		SeedsFor:  make(map[string][]overflow.CallSeed),
	}
	pps := make(map[string]*cpp.Result, len(p.TUs))
	errs := make([]string, 0)
	type scanned struct {
		tu    *TU
		seeds []overflow.CallSeed
	}
	var all []scanned
	for _, tu := range p.TUs {
		pp, err := cpp.Preprocess(tu.File, tu.Source, tu.CppOpts)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: preprocess: %v", tu.File, err))
			continue
		}
		pps[tu.File] = pp
		snap, err := analysis.ParseCtx(ctx, tu.File, pp.Text, analysis.Config{
			Limits: fault.Limits{Ctx: ctx, Steps: opts.Budget, Contexts: opts.Budget},
			Tracer: opts.Tracer,
		})
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: parse: %v", tu.File, err))
			continue
		}
		for _, fn := range snap.Unit().Funcs {
			if _, dup := link.DefinedBy[fn.Name]; !dup {
				link.DefinedBy[fn.Name] = tu.File
			}
		}
		all = append(all, scanned{tu: tu, seeds: snap.ExternalCalls()})
	}
	for _, sc := range all {
		for _, seed := range sc.seeds {
			target, defined := link.DefinedBy[seed.Callee]
			if !defined || target == sc.tu.File {
				// Library calls and (degenerate) self-routing stay local.
				continue
			}
			link.Edges = append(link.Edges, CrossEdge{
				CallerFile: sc.tu.File, Caller: seed.Caller,
				CalleeFile: target, Callee: seed.Callee,
			})
			link.SeedsFor[target] = append(link.SeedsFor[target], seed)
		}
	}
	return link, pps, errs
}

// Fix runs the two-round project pipeline and returns per-file fix
// reports with edits applied to the original (pre-expansion) sources.
// Per-file failures are recorded in the outcome, not fatal; err is
// non-nil only for whole-project failures (context cancellation).
func (p *Project) Fix(ctx context.Context, opts core.Options) (*Report, error) {
	return p.run(ctx, opts, false)
}

// Analyze is the lint-only project run: same scan and seed routing,
// findings instead of fixes.
func (p *Project) Analyze(ctx context.Context, opts core.Options) (*Report, error) {
	return p.run(ctx, opts, true)
}

func (p *Project) run(ctx context.Context, opts core.Options, lintOnly bool) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	link, _, scanErrs := p.scan(ctx, opts)
	rep := &Report{Edges: link.Edges}
	scanFailed := make(map[string]string)
	for _, e := range scanErrs {
		if file, msg, ok := strings.Cut(e, ": "); ok {
			scanFailed[file] = msg
		}
	}
	for _, tu := range p.TUs {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		out := FileOutcome{File: tu.File}
		fopts := opts
		fopts.ExternSeeds = link.SeedsFor[tu.File]
		// Project mode is always batch: the case-by-case offset selector
		// addresses one file's original coordinates and has no meaning
		// across a database run.
		fopts.SelectOffset = -1
		if msg, failed := scanFailed[tu.File]; failed {
			out.Err = msg
			rep.Files = append(rep.Files, out)
			continue
		}
		if lintOnly {
			lint, pp, err := core.AnalyzePreprocessed(ctx, tu.File, tu.Source, tu.CppOpts, fopts)
			if err != nil {
				out.Err = err.Error()
			} else {
				out.Lint = lint
				out.Includes = pp.Includes
			}
		} else {
			fix, pp, err := core.FixPreprocessed(ctx, tu.File, tu.Source, tu.CppOpts, fopts)
			if err != nil {
				out.Err = err.Error()
			} else {
				out.Fix = fix
				if pp != nil {
					out.Includes = pp.Includes
				}
			}
		}
		rep.Files = append(rep.Files, out)
	}
	return rep, nil
}
