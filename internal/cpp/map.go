package cpp

import (
	"sort"

	"repro/internal/ctoken"
)

// SegKind classifies how a run of preprocessed output relates to the
// original sources.
type SegKind int

const (
	// SegDirect: the bytes were copied verbatim from one file; mapping
	// back is exact and offset-linear.
	SegDirect SegKind = iota
	// SegMacro: the bytes are the rendering of a macro expansion; they
	// map (inexactly) to the invocation's extent in the including file.
	SegMacro
	// SegSynth: synthesized glue (a de-spliced token, a separator
	// newline between files); maps inexactly to the nearest original
	// location.
	SegSynth
)

// Segment maps one contiguous run of preprocessed output back to the
// source it came from.
type Segment struct {
	// OutPos/OutEnd is the half-open range in the preprocessed text.
	OutPos, OutEnd int
	// Kind selects how the mapping works.
	Kind SegKind
	// File is the original file the bytes came from (for SegDirect) or
	// the file containing the macro invocation / synthesized point.
	File string
	// OrigPos is the original offset of OutPos for SegDirect segments;
	// for SegMacro/SegSynth it is the start of the invocation extent.
	OrigPos int
	// OrigEnd is OrigPos+len for SegDirect; the invocation end for
	// SegMacro (and OrigPos for SegSynth).
	OrigEnd int
	// Macro names the expanded macro for SegMacro segments.
	Macro string
}

// Origin is a preprocessed extent mapped back to original source.
type Origin struct {
	// File is the original file.
	File string
	// Extent is the corresponding byte range in File. For an exact
	// mapping it covers precisely the same bytes; for an inexact one it
	// is the tightest enclosing range the map knows (for macro
	// expansions, the invocation extent).
	Extent ctoken.Extent
	// Macro names the macro whose expansion covers the extent ("" when
	// the extent is not inside an expansion).
	Macro string
}

// SourceMap maps extents in preprocessed output back to the files the
// preprocessor read. It is immutable after preprocessing.
type SourceMap struct {
	main  string
	segs  []Segment
	files map[string]string            // file name -> content
	pos   map[string]*ctoken.File      // lazy line tables
}

// MainFile returns the name of the translation unit's root file.
func (m *SourceMap) MainFile() string { return m.main }

// Segments returns the mapping segments in output order (for tests and
// tooling; the slice is shared, do not mutate).
func (m *SourceMap) Segments() []Segment { return m.segs }

// FileContent returns the content of an original file the preprocessor
// read (the main file, or any header it inlined).
func (m *SourceMap) FileContent(name string) (string, bool) {
	s, ok := m.files[name]
	return s, ok
}

// Files lists every original file that contributed to the output,
// sorted by name.
func (m *SourceMap) Files() []string {
	out := make([]string, 0, len(m.files))
	for name := range m.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// segAt returns the segment containing output offset p (nil when p is
// outside every segment, which only happens for an empty output).
func (m *SourceMap) segAt(p int) *Segment {
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].OutEnd > p })
	if i >= len(m.segs) || m.segs[i].OutPos > p {
		return nil
	}
	return &m.segs[i]
}

// ToOriginal maps a preprocessed extent back to original source. exact
// reports that the extent corresponds byte-for-byte to Origin.Extent in
// Origin.File: it lies entirely within one verbatim-copied segment. An
// inexact origin still locates the extent (the macro invocation or the
// nearest enclosing range) but MUST NOT be edited in place — the bytes
// the rewriter saw do not exist contiguously in the original file.
func (m *SourceMap) ToOriginal(e ctoken.Extent) (Origin, bool) {
	if !e.IsValid() {
		return Origin{File: m.main, Extent: ctoken.NoExtent}, false
	}
	seg := m.segAt(int(e.Pos))
	if seg == nil && e.Len() == 0 && e.Pos > 0 {
		// Insertion point at end of output: anchor to the segment ending
		// there so appends (e.g. STR's stralloc trailer) remap exactly.
		seg = m.segAt(int(e.Pos) - 1)
		if seg != nil && seg.OutEnd != int(e.Pos) {
			seg = nil
		}
	}
	if seg == nil {
		return Origin{File: m.main, Extent: ctoken.NoExtent}, false
	}
	if seg.Kind == SegDirect {
		start := seg.OrigPos + (int(e.Pos) - seg.OutPos)
		if int(e.End) <= seg.OutEnd {
			return Origin{
				File:   seg.File,
				Extent: ctoken.Extent{Pos: ctoken.Pos(start), End: ctoken.Pos(start + e.Len())},
			}, true
		}
		// Spans past the segment: the covered original bytes are not
		// contiguous (something was removed or expanded in between).
		end := seg.OrigEnd
		if last := m.segAt(int(e.End) - 1); last != nil && last.Kind == SegDirect && last.File == seg.File {
			end = last.OrigPos + (int(e.End) - last.OutPos)
		}
		return Origin{
			File:   seg.File,
			Extent: ctoken.Extent{Pos: ctoken.Pos(start), End: ctoken.Pos(end)},
		}, false
	}
	return Origin{
		File:   seg.File,
		Extent: ctoken.Extent{Pos: ctoken.Pos(seg.OrigPos), End: ctoken.Pos(seg.OrigEnd)},
		Macro:  seg.Macro,
	}, false
}

// Position converts a preprocessed offset into a human-readable position
// in the original source (for macro expansions, the invocation site).
func (m *SourceMap) Position(p ctoken.Pos) ctoken.Position {
	org, _ := m.ToOriginal(ctoken.Extent{Pos: p, End: p})
	if !org.Extent.Pos.IsValid() {
		return ctoken.Position{File: m.main}
	}
	return m.filePos(org.File).Position(org.Extent.Pos)
}

// filePos returns the lazily built line table for an original file.
func (m *SourceMap) filePos(name string) *ctoken.File {
	if f, ok := m.pos[name]; ok {
		return f
	}
	f := ctoken.NewFile(name, m.files[name])
	m.pos[name] = f
	return f
}

// output accumulates preprocessed text and its mapping segments.
type output struct {
	b    []byte
	segs []Segment
}

// copyDirect appends file bytes [pos,end) verbatim, extending the last
// segment when it is contiguous in both coordinate spaces.
func (o *output) copyDirect(f *srcFile, pos, end int) {
	if pos >= end {
		return
	}
	outPos := len(o.b)
	o.b = append(o.b, f.src[pos:end]...)
	if n := len(o.segs); n > 0 {
		last := &o.segs[n-1]
		if last.Kind == SegDirect && last.File == f.name && last.OutEnd == outPos && last.OrigEnd == pos {
			last.OutEnd = len(o.b)
			last.OrigEnd = end
			return
		}
	}
	o.segs = append(o.segs, Segment{
		OutPos: outPos, OutEnd: len(o.b),
		Kind: SegDirect, File: f.name, OrigPos: pos, OrigEnd: end,
	})
}

// emit appends synthesized or expansion text mapped to an original
// extent.
func (o *output) emit(text string, kind SegKind, file string, origPos, origEnd int, macro string) {
	if text == "" {
		return
	}
	outPos := len(o.b)
	o.b = append(o.b, text...)
	o.segs = append(o.segs, Segment{
		OutPos: outPos, OutEnd: len(o.b),
		Kind: kind, File: file, OrigPos: origPos, OrigEnd: origEnd, Macro: macro,
	})
}

// lastByte returns the final output byte so far (0 when empty).
func (o *output) lastByte() byte {
	if len(o.b) == 0 {
		return 0
	}
	return o.b[len(o.b)-1]
}
