package overflow

import (
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/ctype"
)

// funcProblem adapts one function (under one calling context) to the
// generic dataflow solver. seed carries the parameter intervals of the
// context; globals holds the unit-wide seeds for global arrays, and
// globalIDs the symbol IDs of every file-scope object (they are havocked
// at unmodeled calls).
type funcProblem struct {
	fn        *cast.FuncDef
	seed      map[int]varState
	globals   map[int]varState
	globalIDs map[int]bool
}

func (p *funcProblem) Bottom() state { return unreached() }

func (p *funcProblem) Entry() state {
	st := state{reach: true, vars: make(map[int]varState, len(p.globals)+len(p.seed))}
	for id, vs := range p.globals {
		st.vars[id] = vs
	}
	for id, vs := range p.seed {
		if !vs.isTop() {
			st.vars[id] = vs
		}
	}
	return st
}

func (p *funcProblem) Join(a, b state) state        { return a.join(b) }
func (p *funcProblem) Widen(prev, next state) state { return prev.widenFrom(next) }
func (p *funcProblem) Equal(a, b state) bool        { return a.equal(b) }

func (p *funcProblem) Transfer(n *cfg.Node, in state) state {
	if !in.reach {
		return in
	}
	switch n.Kind {
	case cfg.KindDecl:
		return p.transferDecl(in, n.Decl)
	case cfg.KindStmt:
		switch s := n.Stmt.(type) {
		case *cast.ExprStmt:
			return p.transferExpr(in, s.X)
		case *cast.ReturnStmt:
			if s.Result != nil {
				return p.transferExpr(in, s.Result)
			}
		}
		return in
	case cfg.KindCond, cfg.KindPost:
		if n.Expr != nil {
			return p.transferExpr(in, n.Expr)
		}
	}
	return in
}

// FlowEdge refines the state along labeled branch edges using the
// condition expression.
func (p *funcProblem) FlowEdge(from, to *cfg.Node, st state) state {
	if !st.reach || from.Kind != cfg.KindCond || !from.Branching || from.Expr == nil {
		return st
	}
	return refine(st, from.Expr, from.IsTrueSucc(to))
}

// --- declarations -----------------------------------------------------------

func (p *funcProblem) transferDecl(st state, d *cast.VarDecl) state {
	if d == nil || d.Sym == nil {
		return st
	}
	t := d.Sym.Type
	switch {
	case ctype.IsArray(t):
		vs := topVar()
		if sz := t.Size(); sz >= 0 {
			vs.size = Const(int64(sz))
		}
		vs.off = Const(0)
		vs.reg = regStack
		if d.Init != nil {
			if lit, ok := cast.Unparen(d.Init).(*cast.StringLit); ok {
				vs.strl = Const(int64(len(lit.Value)))
			}
		}
		return st.set(d.Sym.ID, vs)
	case ctype.IsPointer(t):
		if d.Init == nil {
			return st.set(d.Sym.ID, topVar())
		}
		st = p.transferExpr(st, d.Init)
		if vs, ok := evalPtr(st, d.Init); ok {
			return st.set(d.Sym.ID, vs)
		}
		return st.set(d.Sym.ID, topVar())
	case ctype.IsInteger(t):
		if d.Init == nil {
			return st.set(d.Sym.ID, topVar())
		}
		st = p.transferExpr(st, d.Init)
		vs := topVar()
		vs.val = evalInt(st, d.Init)
		return st.set(d.Sym.ID, vs)
	}
	return st
}

// --- expression effects -----------------------------------------------------

// transferExpr applies the state effects of evaluating e (assignments,
// increments, library calls, havoc at user calls). Value computation is
// the separate, pure evalInt/evalPtr pair.
func (p *funcProblem) transferExpr(st state, e cast.Expr) state {
	if e == nil {
		return st
	}
	switch x := cast.Unparen(e).(type) {
	case *cast.AssignExpr:
		st = p.transferExpr(st, x.RHS)
		return p.transferAssign(st, x)
	case *cast.UnaryExpr:
		switch x.Op {
		case cast.UnaryPreInc:
			return p.applyIncDec(st, x.Operand, +1)
		case cast.UnaryPreDec:
			return p.applyIncDec(st, x.Operand, -1)
		}
		return p.transferExpr(st, x.Operand)
	case *cast.PostfixExpr:
		switch x.Op {
		case cast.PostfixInc:
			return p.applyIncDec(st, x.Operand, +1)
		case cast.PostfixDec:
			return p.applyIncDec(st, x.Operand, -1)
		}
		return st
	case *cast.CallExpr:
		for _, a := range x.Args {
			st = p.transferExpr(st, a)
		}
		return p.transferCall(st, x)
	case *cast.CommaExpr:
		st = p.transferExpr(st, x.X)
		return p.transferExpr(st, x.Y)
	case *cast.BinaryExpr:
		st = p.transferExpr(st, x.X)
		return p.transferExpr(st, x.Y)
	case *cast.CondExpr:
		st = p.transferExpr(st, x.Cond)
		a := p.transferExpr(st, x.Then)
		b := p.transferExpr(st, x.Else)
		return a.join(b)
	case *cast.CastExpr:
		return p.transferExpr(st, x.Operand)
	case *cast.IndexExpr:
		st = p.transferExpr(st, x.Base)
		return p.transferExpr(st, x.Index)
	case *cast.MemberExpr:
		return p.transferExpr(st, x.Base)
	}
	return st
}

func (p *funcProblem) transferAssign(st state, x *cast.AssignExpr) state {
	lhs := cast.Unparen(x.LHS)
	switch l := lhs.(type) {
	case *cast.Ident:
		if l.Sym == nil {
			return st
		}
		switch {
		case ctype.IsPointer(l.Sym.Type):
			return p.assignPtr(st, l.Sym, x)
		case isIntVar(l.Sym):
			return p.assignInt(st, l.Sym, x)
		}
		return st
	case *cast.IndexExpr:
		return p.storeThrough(st, l.Base, evalInt(st, l.Index), x)
	case *cast.UnaryExpr:
		if l.Op == cast.UnaryDeref {
			return p.storeThrough(st, l.Operand, Const(0), x)
		}
	}
	return st
}

func (p *funcProblem) assignPtr(st state, sym *cast.Symbol, x *cast.AssignExpr) state {
	old := st.get(sym.ID)
	switch x.Op {
	case cast.AssignPlain:
		if vs, ok := evalPtr(st, x.RHS); ok {
			return st.set(sym.ID, vs)
		}
		return st.set(sym.ID, topVar())
	case cast.AssignAdd, cast.AssignSub:
		delta := evalInt(st, x.RHS).MulConst(elemSize(sym.Type))
		if x.Op == cast.AssignSub {
			delta = delta.Neg()
		}
		old.off = old.off.Add(delta)
		return st.set(sym.ID, old)
	}
	return st.set(sym.ID, topVar())
}

func (p *funcProblem) assignInt(st state, sym *cast.Symbol, x *cast.AssignExpr) state {
	old := st.get(sym.ID)
	rhs := evalInt(st, x.RHS)
	vs := topVar()
	switch x.Op {
	case cast.AssignPlain:
		vs.val = rhs
	case cast.AssignAdd:
		vs.val = old.val.Add(rhs)
	case cast.AssignSub:
		vs.val = old.val.Sub(rhs)
	default:
		vs.val = Top()
	}
	return st.set(sym.ID, vs)
}

func (p *funcProblem) applyIncDec(st state, operand cast.Expr, delta int64) state {
	id, ok := cast.Unparen(operand).(*cast.Ident)
	if !ok || id.Sym == nil {
		return st
	}
	vs := st.get(id.Sym.ID)
	switch {
	case ctype.IsPointer(id.Sym.Type):
		vs.off = vs.off.AddConst(delta * elemSize(id.Sym.Type))
	case isIntVar(id.Sym):
		vs.val = vs.val.AddConst(delta)
	default:
		return st
	}
	return st.set(id.Sym.ID, vs)
}

// storeThrough models a store base[idx] = v (or *base = v with idx 0): it
// updates the first-NUL interval of the stored-through variable.
func (p *funcProblem) storeThrough(st state, base cast.Expr, idx Interval, x *cast.AssignExpr) state {
	sym, extra, ok := resolveVar(st, base)
	if !ok {
		return st
	}
	vs := st.get(sym.ID)
	scale := int64(1)
	if t := typeOf(cast.Unparen(base)); t != nil {
		scale = elemSize(ctype.Decay(t))
	}
	if scale != 1 {
		// Only byte stores move NUL terminators the analysis understands.
		vs.strl = Range(0, PosInf)
		return st.set(sym.ID, vs)
	}
	pos := vs.off.Add(extra).Add(idx)
	v := Top()
	if x.Op == cast.AssignPlain {
		v = evalInt(st, x.RHS)
	}
	vs.strl = storeStrl(vs.strl, pos, v)
	return st.set(sym.ID, vs)
}

// storeStrl applies the first-NUL transfer for a 1-byte store of value v
// at object-relative position pos over the old first-NUL interval s.
func storeStrl(s, pos, v Interval) Interval {
	if pos.IsEmpty() {
		return s
	}
	zero := false
	nonzero := false
	if n, ok := v.Exact(); ok {
		zero = n == 0
		nonzero = n != 0
	} else if v.Lo > 0 || v.Hi < 0 {
		nonzero = true
	}
	switch {
	case zero:
		// A NUL lands somewhere in [pos.Lo, pos.Hi]: the first NUL moves to
		// min(old, written position).
		return Interval{min64(s.Lo, pos.Lo), min64(s.Hi, pos.Hi)}.ClampMin(0)
	case nonzero:
		switch {
		case pos.Hi < s.Lo:
			return s // written strictly before the first NUL: unchanged
		case pos.Lo == pos.Hi && pos.Lo == s.Lo:
			// Definitely overwrites the earliest possible NUL position.
			return Range(satAdd(s.Lo, 1), PosInf)
		default:
			return Range(s.Lo, PosInf)
		}
	default:
		// Unknown byte: join of the zero and nonzero outcomes.
		z := Interval{min64(s.Lo, pos.Lo), min64(s.Hi, pos.Hi)}.ClampMin(0)
		return z.Join(Range(s.Lo, PosInf))
	}
}

// --- library call effects ---------------------------------------------------

func (p *funcProblem) transferCall(st state, call *cast.CallExpr) state {
	arg := func(i int) cast.Expr { return argAt(call, i) }
	switch call.Callee() {
	case "memset":
		return p.memsetEffect(st, arg(0), evalInt(st, arg(1)), evalInt(st, arg(2)))
	case "strcpy", "stpcpy":
		return p.setStrlFromCopy(st, arg(0), strlenOf(st, arg(1)))
	case "strcat":
		return p.strcatEffect(st, arg(0), strlenOf(st, arg(1)), Top())
	case "strncat":
		return p.strcatEffect(st, arg(0), strlenOf(st, arg(1)), evalInt(st, arg(2)))
	case "sprintf":
		return p.setStrlFromCopy(st, arg(0), formatLength(st, arg(1), call.Args, 2))
	case "snprintf", "vsprintf", "vsnprintf",
		"strncpy", "memcpy", "memmove", "gets", "fgets":
		return p.havocStrl(st, arg(0))
	case "strcmp", "strncmp", "strlen", "printf", "puts", "putchar",
		"free", "malloc", "calloc", "realloc", "exit", "abort",
		"getchar", "fopen", "fclose", "strchr", "strrchr", "rand", "srand":
		return st
	default:
		return p.havocUserCall(st, call)
	}
}

// setStrlFromCopy sets the destination's first NUL to off + len for a
// terminating copy of len bytes (strcpy/sprintf families).
func (p *funcProblem) setStrlFromCopy(st state, dst cast.Expr, length Interval) state {
	sym, extra, ok := resolveVar(st, dst)
	if !ok {
		return st
	}
	vs := st.get(sym.ID)
	base := vs.off.Add(extra)
	if length.Hi >= PosInf || base.IsTop() {
		vs.strl = Range(max64(0, base.Lo), PosInf)
	} else {
		vs.strl = base.Add(length.ClampMin(0)).ClampMin(0)
	}
	return st.set(sym.ID, vs)
}

// strcatEffect appends: the first NUL moves from strl to strl + len (or at
// most strl + n for strncat).
func (p *funcProblem) strcatEffect(st state, dst cast.Expr, srcLen, n Interval) state {
	sym, _, ok := resolveVar(st, dst)
	if !ok {
		return st
	}
	vs := st.get(sym.ID)
	add := srcLen
	if n.Hi < PosInf && (add.Hi >= PosInf || add.Hi > n.Hi) {
		add = Interval{max64(0, min64(add.Lo, n.Lo)), n.Hi}
	}
	if add.Hi >= PosInf || vs.strl.Hi >= PosInf {
		vs.strl = Range(vs.strl.Lo, PosInf)
	} else {
		vs.strl = vs.strl.Add(add.ClampMin(0)).ClampMin(0)
	}
	return st.set(sym.ID, vs)
}

func (p *funcProblem) memsetEffect(st state, dst cast.Expr, c, n Interval) state {
	sym, extra, ok := resolveVar(st, dst)
	if !ok {
		return st
	}
	vs := st.get(sym.ID)
	start := vs.off.Add(extra)
	cv, cExact := c.Exact()
	nv, nExact := n.Exact()
	sv, sExact := start.Exact()
	switch {
	case cExact && cv == 0:
		// The first written byte is a NUL.
		vs.strl = Interval{min64(vs.strl.Lo, start.Lo), min64(vs.strl.Hi, start.Hi)}.ClampMin(0)
	case cExact && cv != 0 && nExact && sExact:
		// Bytes [sv, sv+nv-1] are all nonzero: no first NUL among them.
		end := satAdd(sv, nv)
		switch {
		case vs.strl.Hi < sv:
			// NUL definitely before the region: unchanged.
		case vs.strl.Lo >= sv:
			vs.strl = Range(max64(vs.strl.Lo, end), PosInf)
		default:
			vs.strl = Range(vs.strl.Lo, PosInf)
		}
	default:
		vs.strl = Range(0, PosInf)
	}
	return st.set(sym.ID, vs)
}

func (p *funcProblem) havocStrl(st state, dst cast.Expr) state {
	sym, _, ok := resolveVar(st, dst)
	if !ok {
		return st
	}
	vs := st.get(sym.ID)
	vs.strl = Range(0, PosInf)
	return st.set(sym.ID, vs)
}

// havocUserCall conservatively forgets what a call to a user-defined (or
// unmodeled) function may change: the contents of every buffer reachable
// from a pointer argument, variables passed by address, and all globals'
// values and string lengths. Sizes, offsets and regions are preserved —
// the callee cannot re-allocate the caller's objects.
func (p *funcProblem) havocUserCall(st state, call *cast.CallExpr) state {
	for _, a := range call.Args {
		ua := cast.Unparen(a)
		if u, ok := ua.(*cast.UnaryExpr); ok && u.Op == cast.UnaryAddrOf {
			if id, ok := cast.Unparen(u.Operand).(*cast.Ident); ok && id.Sym != nil {
				vs := st.get(id.Sym.ID)
				vs.strl = Range(0, PosInf)
				vs.val = Top()
				st = st.set(id.Sym.ID, vs)
			}
			continue
		}
		if sym, _, ok := resolveVar(st, ua); ok {
			vs := st.get(sym.ID)
			vs.strl = Range(0, PosInf)
			st = st.set(sym.ID, vs)
		}
	}
	// Globals may be rewritten by any call.
	out := st.clone()
	for id, vs := range out.vars {
		if !p.globalIDs[id] {
			continue
		}
		vs.strl = Range(0, PosInf)
		vs.val = Top()
		if vs.isTop() {
			delete(out.vars, id)
		} else {
			out.vars[id] = vs
		}
	}
	return out
}

// --- pure evaluation --------------------------------------------------------

// resolveVar finds the variable a pointer expression is based on, plus any
// byte offset accumulated through arithmetic on the way. It looks through
// parens, casts, and ± of integer amounts.
func resolveVar(st state, e cast.Expr) (*cast.Symbol, Interval, bool) {
	switch x := cast.Unparen(e).(type) {
	case *cast.Ident:
		if x.Sym != nil && isPtrVar(x.Sym) {
			return x.Sym, Const(0), true
		}
	case *cast.CastExpr:
		return resolveVar(st, x.Operand)
	case *cast.BinaryExpr:
		if x.Op != cast.BinaryAdd && x.Op != cast.BinarySub {
			return nil, Interval{}, false
		}
		scale := elemSize(x.Type())
		if sym, extra, ok := resolveVar(st, x.X); ok {
			d := evalInt(st, x.Y).MulConst(scale)
			if x.Op == cast.BinarySub {
				d = d.Neg()
			}
			return sym, extra.Add(d), true
		}
		if x.Op == cast.BinaryAdd {
			if sym, extra, ok := resolveVar(st, x.Y); ok {
				return sym, extra.Add(evalInt(st, x.X).MulConst(scale)), true
			}
		}
	}
	return nil, Interval{}, false
}

// evalPtr computes the abstract pointer value of e: the size, offset,
// string length and region of the object it refers to.
func evalPtr(st state, e cast.Expr) (varState, bool) {
	if e == nil {
		return varState{}, false
	}
	switch x := cast.Unparen(e).(type) {
	case *cast.Ident:
		if x.Sym == nil || !isPtrVar(x.Sym) {
			return varState{}, false
		}
		vs := st.get(x.Sym.ID)
		if ctype.IsArray(x.Sym.Type) && vs.isTop() {
			// An array used before its CFG decl node is seen (e.g. via goto):
			// its size is still known from the type.
			if sz := x.Sym.Type.Size(); sz >= 0 {
				vs.size = Const(int64(sz))
				vs.off = Const(0)
				vs.reg = regStack
			}
		}
		return vs, true
	case *cast.StringLit:
		vs := topVar()
		vs.size = Const(int64(len(x.Value)) + 1)
		vs.off = Const(0)
		vs.strl = Const(int64(len(x.Value)))
		vs.reg = regStack
		return vs, true
	case *cast.CastExpr:
		return evalPtr(st, x.Operand)
	case *cast.AssignExpr:
		if x.Op == cast.AssignPlain {
			return evalPtr(st, x.RHS)
		}
	case *cast.BinaryExpr:
		if x.Op != cast.BinaryAdd && x.Op != cast.BinarySub {
			return varState{}, false
		}
		scale := elemSize(x.Type())
		if vs, ok := evalPtr(st, x.X); ok {
			d := evalInt(st, x.Y).MulConst(scale)
			if x.Op == cast.BinarySub {
				d = d.Neg()
			}
			vs.off = vs.off.Add(d)
			return vs, true
		}
		if x.Op == cast.BinaryAdd {
			if vs, ok := evalPtr(st, x.Y); ok {
				vs.off = vs.off.Add(evalInt(st, x.X).MulConst(scale))
				return vs, true
			}
		}
	case *cast.UnaryExpr:
		if x.Op == cast.UnaryAddrOf {
			switch inner := cast.Unparen(x.Operand).(type) {
			case *cast.IndexExpr:
				if vs, ok := evalPtr(st, inner.Base); ok {
					scale := elemSize(ctype.Decay(typeOf(cast.Unparen(inner.Base))))
					vs.off = vs.off.Add(evalInt(st, inner.Index).MulConst(scale))
					return vs, true
				}
			case *cast.Ident:
				return evalPtr(st, inner)
			}
		}
	case *cast.CallExpr:
		switch x.Callee() {
		case "malloc":
			return heapVar(evalInt(st, argAt(x, 0))), true
		case "calloc":
			return heapVar(evalInt(st, argAt(x, 0)).Mul(evalInt(st, argAt(x, 1)))), true
		case "realloc":
			return heapVar(evalInt(st, argAt(x, 1))), true
		}
	case *cast.CondExpr:
		a, okA := evalPtr(st, x.Then)
		b, okB := evalPtr(st, x.Else)
		if okA && okB {
			return a.join(b), true
		}
	}
	return varState{}, false
}

func heapVar(size Interval) varState {
	vs := topVar()
	vs.size = size.ClampMin(0)
	vs.off = Const(0)
	vs.reg = regHeap
	return vs
}

func argAt(call *cast.CallExpr, i int) cast.Expr {
	if i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

// evalInt computes the integer interval of e under st.
func evalInt(st state, e cast.Expr) Interval {
	if e == nil {
		return Top()
	}
	switch x := cast.Unparen(e).(type) {
	case *cast.IntLit:
		return Const(x.Value)
	case *cast.CharLit:
		return Const(int64(x.Value))
	case *cast.Ident:
		if x.Sym == nil {
			return Top()
		}
		if x.Sym.Kind == cast.SymEnumConst {
			if v, ok := constOf(x); ok {
				return Const(v)
			}
		}
		if isIntVar(x.Sym) {
			return st.get(x.Sym.ID).val
		}
		return Top()
	case *cast.UnaryExpr:
		switch x.Op {
		case cast.UnaryMinus:
			return evalInt(st, x.Operand).Neg()
		case cast.UnaryPlus:
			return evalInt(st, x.Operand)
		case cast.UnaryNot:
			return Range(0, 1)
		}
		return Top()
	case *cast.SizeofExpr:
		if v, ok := constOf(x); ok {
			return Const(v)
		}
		return Range(0, PosInf)
	case *cast.BinaryExpr:
		a, b := evalInt(st, x.X), evalInt(st, x.Y)
		switch x.Op {
		case cast.BinaryAdd:
			return a.Add(b)
		case cast.BinarySub:
			return a.Sub(b)
		case cast.BinaryMul:
			return a.Mul(b)
		case cast.BinaryLt, cast.BinaryGt, cast.BinaryLe, cast.BinaryGe,
			cast.BinaryEq, cast.BinaryNe, cast.BinaryLAnd, cast.BinaryLOr:
			return Range(0, 1)
		case cast.BinaryRem:
			if k, ok := b.Exact(); ok && k > 0 && a.Lo >= 0 {
				return Range(0, k-1)
			}
		}
		return Top()
	case *cast.CastExpr:
		return evalInt(st, x.Operand)
	case *cast.AssignExpr:
		return evalInt(st, x.RHS)
	case *cast.CommaExpr:
		return evalInt(st, x.Y)
	case *cast.CondExpr:
		return evalInt(st, x.Then).Join(evalInt(st, x.Else))
	case *cast.CallExpr:
		if x.Callee() == "strlen" {
			return strlenOf(st, argAt(x, 0))
		}
		return Top()
	}
	return Top()
}

// strlenOf returns the interval of strlen(p): the first NUL relative to
// the pointer, i.e. strl - off.
func strlenOf(st state, p cast.Expr) Interval {
	vs, ok := evalPtr(st, p)
	if !ok || vs.strl.Hi >= PosInf || vs.off.IsTop() {
		return Range(0, PosInf)
	}
	return vs.strl.Sub(vs.off).ClampMin(0)
}

// --- branch refinement ------------------------------------------------------

// refine narrows st under the assumption that cond evaluates to truth.
// Contradictory combinations return the unreached state.
func refine(st state, cond cast.Expr, truth bool) state {
	switch x := cast.Unparen(cond).(type) {
	case *cast.IntLit:
		if (x.Value != 0) != truth {
			return unreached()
		}
		return st
	case *cast.CharLit:
		if (x.Value != 0) != truth {
			return unreached()
		}
		return st
	case *cast.UnaryExpr:
		if x.Op == cast.UnaryNot {
			return refine(st, x.Operand, !truth)
		}
		return st
	case *cast.Ident:
		if x.Sym == nil {
			return st
		}
		if x.Sym.Kind == cast.SymEnumConst {
			if v, ok := constOf(x); ok && (v != 0) != truth {
				return unreached()
			}
			return st
		}
		if !isIntVar(x.Sym) {
			return st
		}
		vs := st.get(x.Sym.ID)
		if truth {
			if z, ok := vs.val.Exact(); ok && z == 0 {
				return unreached()
			}
			if vs.val.Lo == 0 {
				vs.val.Lo = 1 // nonzero, and no negatives were possible
				return st.set(x.Sym.ID, vs)
			}
			return st
		}
		nv := vs.val.Meet(Const(0))
		if nv.IsEmpty() {
			return unreached()
		}
		vs.val = nv
		return st.set(x.Sym.ID, vs)
	case *cast.BinaryExpr:
		switch x.Op {
		case cast.BinaryLAnd:
			if truth {
				return refine(refine(st, x.X, true), x.Y, true)
			}
			return st
		case cast.BinaryLOr:
			if !truth {
				return refine(refine(st, x.X, false), x.Y, false)
			}
			return st
		case cast.BinaryLt, cast.BinaryLe, cast.BinaryGt, cast.BinaryGe,
			cast.BinaryEq, cast.BinaryNe:
			return refineCompare(st, x, truth)
		}
	}
	return st
}

func refineCompare(st state, x *cast.BinaryExpr, truth bool) state {
	op := x.Op
	if !truth {
		op = negateCompare(op)
	}
	st = refineSide(st, x.X, op, evalInt(st, x.Y))
	if !st.reach {
		return st
	}
	return refineSide(st, x.Y, flipCompare(op), evalInt(st, x.X))
}

// refineSide narrows the integer variable e under "e op bound".
func refineSide(st state, e cast.Expr, op cast.BinaryOp, bound Interval) state {
	id, ok := cast.Unparen(e).(*cast.Ident)
	if !ok || id.Sym == nil || !isIntVar(id.Sym) || id.Sym.Kind == cast.SymEnumConst {
		return st
	}
	vs := st.get(id.Sym.ID)
	v := vs.val
	switch op {
	case cast.BinaryLt:
		v = v.Meet(Range(NegInf, satAdd(bound.Hi, -1)))
	case cast.BinaryLe:
		v = v.Meet(Range(NegInf, bound.Hi))
	case cast.BinaryGt:
		v = v.Meet(Range(satAdd(bound.Lo, 1), PosInf))
	case cast.BinaryGe:
		v = v.Meet(Range(bound.Lo, PosInf))
	case cast.BinaryEq:
		v = v.Meet(bound)
	case cast.BinaryNe:
		if z, exact := bound.Exact(); exact {
			if cur, curExact := v.Exact(); curExact && cur == z {
				return unreached()
			}
			if v.Lo == z {
				v.Lo = z + 1
			} else if v.Hi == z {
				v.Hi = z - 1
			}
		}
	default:
		return st
	}
	if v.IsEmpty() {
		return unreached()
	}
	vs.val = v
	return st.set(id.Sym.ID, vs)
}

func negateCompare(op cast.BinaryOp) cast.BinaryOp {
	switch op {
	case cast.BinaryLt:
		return cast.BinaryGe
	case cast.BinaryLe:
		return cast.BinaryGt
	case cast.BinaryGt:
		return cast.BinaryLe
	case cast.BinaryGe:
		return cast.BinaryLt
	case cast.BinaryEq:
		return cast.BinaryNe
	case cast.BinaryNe:
		return cast.BinaryEq
	}
	return op
}

func flipCompare(op cast.BinaryOp) cast.BinaryOp {
	switch op {
	case cast.BinaryLt:
		return cast.BinaryGt
	case cast.BinaryLe:
		return cast.BinaryGe
	case cast.BinaryGt:
		return cast.BinaryLt
	case cast.BinaryGe:
		return cast.BinaryLe
	}
	return op
}

// --- helpers ----------------------------------------------------------------

func elemSize(t ctype.Type) int64 {
	if el := ctype.Elem(t); el != nil {
		if s := el.Size(); s > 0 {
			return int64(s)
		}
	}
	return 1
}

func typeOf(e cast.Expr) ctype.Type {
	if e == nil {
		return nil
	}
	return e.Type()
}

// constOf evaluates compile-time integer constants (literals, sizeof, enum
// constants).
func constOf(e cast.Expr) (int64, bool) {
	switch x := cast.Unparen(e).(type) {
	case *cast.IntLit:
		return x.Value, true
	case *cast.CharLit:
		return int64(x.Value), true
	case *cast.SizeofExpr:
		if x.OfType != nil && x.OfType.Size() >= 0 {
			return int64(x.OfType.Size()), true
		}
		if x.Operand != nil && x.Operand.Type() != nil && x.Operand.Type().Size() >= 0 {
			return int64(x.Operand.Type().Size()), true
		}
	case *cast.Ident:
		if x.Sym != nil && x.Sym.Kind == cast.SymEnumConst {
			if en, ok := ctype.Unqualify(x.Sym.Type).(*ctype.Enum); ok {
				for _, c := range en.Consts {
					if c.Name == x.Name {
						return c.Value, true
					}
				}
			}
		}
	}
	return 0, false
}
