// Package ctoken defines the lexical tokens of the preprocessed C subset
// handled by this repository, together with source positions and extents.
//
// Every token and every AST node carries a byte-offset extent into the
// original source text. Source-to-source transformations (see internal/slr
// and internal/str) depend on these extents to produce minimal textual
// edits, following the paper's requirement that analyses and rewrites stay
// at source level rather than on a compiler IR.
package ctoken

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Enums start at one so that the zero Kind is invalid and
// accidental zero values are caught early.
const (
	// KindInvalid is the zero value and never produced by the lexer.
	KindInvalid Kind = iota

	// Literals and identifiers.
	KindIdent      // foo
	KindIntLit     // 123, 0x1F, 077
	KindFloatLit   // 1.5, 1e9
	KindCharLit    // 'a', '\n'
	KindStringLit  // "abc"
	KindKeyword    // int, char, if, while, ...
	KindPunct      // + - * / etc.
	KindEOF        // end of input
	KindComment    // /* ... */ or // ... (retained for source fidelity)
	KindDirective  // residual # line markers from preprocessing
	KindWhitespace // retained only by the raw scanner mode
)

var _kindNames = map[Kind]string{
	KindInvalid:    "invalid",
	KindIdent:      "identifier",
	KindIntLit:     "integer literal",
	KindFloatLit:   "float literal",
	KindCharLit:    "char literal",
	KindStringLit:  "string literal",
	KindKeyword:    "keyword",
	KindPunct:      "punctuator",
	KindEOF:        "EOF",
	KindComment:    "comment",
	KindDirective:  "directive",
	KindWhitespace: "whitespace",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := _kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a byte offset into the source text of a translation unit.
type Pos int

// NoPos is the canonical "position unknown" value.
const NoPos Pos = -1

// IsValid reports whether the position refers to a real source location.
func (p Pos) IsValid() bool { return p >= 0 }

// Extent is a half-open byte range [Pos, End) within the source text.
type Extent struct {
	Pos Pos // first byte
	End Pos // one past the last byte
}

// NoExtent is the canonical "extent unknown" value.
var NoExtent = Extent{Pos: NoPos, End: NoPos}

// IsValid reports whether both endpoints are valid and ordered.
func (e Extent) IsValid() bool { return e.Pos.IsValid() && e.End >= e.Pos }

// Len returns the number of bytes covered by the extent.
func (e Extent) Len() int {
	if !e.IsValid() {
		return 0
	}
	return int(e.End - e.Pos)
}

// Covers reports whether e fully contains other.
func (e Extent) Covers(other Extent) bool {
	return e.IsValid() && other.IsValid() && e.Pos <= other.Pos && other.End <= e.End
}

// Overlaps reports whether the two extents share at least one byte.
func (e Extent) Overlaps(other Extent) bool {
	return e.IsValid() && other.IsValid() && e.Pos < other.End && other.Pos < e.End
}

// Union returns the smallest extent covering both e and other.
func (e Extent) Union(other Extent) Extent {
	if !e.IsValid() {
		return other
	}
	if !other.IsValid() {
		return e
	}
	u := e
	if other.Pos < u.Pos {
		u.Pos = other.Pos
	}
	if other.End > u.End {
		u.End = other.End
	}
	return u
}

// Token is a single lexical token with its source extent.
type Token struct {
	Kind   Kind
	Text   string // exact source spelling
	Extent Extent
}

// Is reports whether the token is a punctuator or keyword with the given
// spelling.
func (t Token) Is(text string) bool {
	return (t.Kind == KindPunct || t.Kind == KindKeyword) && t.Text == text
}

// IsKeyword reports whether the token is the given keyword.
func (t Token) IsKeyword(kw string) bool { return t.Kind == KindKeyword && t.Text == kw }

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Kind == KindEOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// Keywords recognised by the lexer. This is the C89/C99 keyword set that the
// paper's target programs use, plus a handful of common extensions that
// appear in preprocessed sources (e.g. __restrict).
var _keywords = map[string]struct{}{
	"auto": {}, "break": {}, "case": {}, "char": {}, "const": {},
	"continue": {}, "default": {}, "do": {}, "double": {}, "else": {},
	"enum": {}, "extern": {}, "float": {}, "for": {}, "goto": {},
	"if": {}, "inline": {}, "int": {}, "long": {}, "register": {},
	"restrict": {}, "return": {}, "short": {}, "signed": {}, "sizeof": {},
	"static": {}, "struct": {}, "switch": {}, "typedef": {}, "union": {},
	"unsigned": {}, "void": {}, "volatile": {}, "while": {},
	"_Bool": {}, "__restrict": {}, "__inline": {}, "__extension__": {},
}

// IsKeywordText reports whether the identifier spelling is a reserved word.
func IsKeywordText(s string) bool {
	_, ok := _keywords[s]
	return ok
}

// File maps byte offsets to human line/column coordinates for one source
// file. It is immutable after construction.
type File struct {
	name      string
	src       string
	lineStart []int // byte offset of each line start, ascending
}

// NewFile indexes src for position translation. The name is used only for
// diagnostics.
func NewFile(name, src string) *File {
	starts := make([]int, 1, 64)
	starts[0] = 0
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			starts = append(starts, i+1)
		}
	}
	return &File{name: name, src: src, lineStart: starts}
}

// Name returns the file name given at construction.
func (f *File) Name() string { return f.name }

// Src returns the full source text.
func (f *File) Src() string { return f.src }

// Size returns the length of the source text in bytes.
func (f *File) Size() int { return len(f.src) }

// Position converts a byte offset into 1-based line/column coordinates.
func (f *File) Position(p Pos) Position {
	if !p.IsValid() || int(p) > len(f.src) {
		return Position{File: f.name, Line: 0, Col: 0}
	}
	// Binary search for the greatest line start <= p.
	lo, hi := 0, len(f.lineStart)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if f.lineStart[mid] <= int(p) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return Position{File: f.name, Line: lo + 1, Col: int(p) - f.lineStart[lo] + 1}
}

// Slice returns the source text covered by the extent.
func (f *File) Slice(e Extent) string {
	if !e.IsValid() || int(e.End) > len(f.src) {
		return ""
	}
	return f.src[e.Pos:e.End]
}

// Position is a human-readable source coordinate.
type Position struct {
	File string
	Line int // 1-based
	Col  int // 1-based
}

// String renders the position as file:line:col.
func (p Position) String() string {
	if p.Line == 0 {
		return p.File + ":?"
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}
