package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/corpus"
	"repro/internal/cparse"
	"repro/internal/slr"
	"repro/internal/str"
)

// TableIVRow describes one project of the test corpus.
type TableIVRow struct {
	Software     string
	CFiles       int
	MeasuredKLOC float64
	CalibKLOC    float64
	CalibPPKLOC  float64
}

// RunTableIV generates the corpus and measures it. fillerPerFile scales
// the synthetic bulk (see internal/corpus).
func RunTableIV(fillerPerFile int) []TableIVRow {
	var rows []TableIVRow
	for _, p := range corpus.Generate(fillerPerFile) {
		r := TableIVRow{
			Software:    p.Name,
			CFiles:      len(p.Files),
			CalibKLOC:   p.Calibration.KLOC,
			CalibPPKLOC: p.Calibration.PPKLOC,
		}
		for _, f := range p.Files {
			r.MeasuredKLOC += float64(f.LOC()) / 1000.0
		}
		rows = append(rows, r)
	}
	return rows
}

// FormatTableIV renders Table IV.
func FormatTableIV(rows []TableIVRow) string {
	var sb strings.Builder
	sb.WriteString("Table IV: Test Programs\n")
	sb.WriteString(fmt.Sprintf("%-10s %10s %14s %12s %12s\n",
		"Software", "# C Files", "measured KLOC", "KLOC(paper)", "PP KLOC(paper)"))
	var files int
	var mk, ck, cpp float64
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-10s %10d %14.1f %12.1f %12.1f\n",
			r.Software, r.CFiles, r.MeasuredKLOC, r.CalibKLOC, r.CalibPPKLOC))
		files += r.CFiles
		mk += r.MeasuredKLOC
		ck += r.CalibKLOC
		cpp += r.CalibPPKLOC
	}
	sb.WriteString(fmt.Sprintf("%-10s %10d %14.1f %12.1f %12.1f\n", "Total", files, mk, ck, cpp))
	sb.WriteString("\nPaper: 645 files, 1.7 MLOC preprocessed. The synthetic corpus plants the\n")
	sb.WriteString("paper's exact call-site and variable mixes; KLOC scales with -filler.\n")
	return sb.String()
}

// TableVRow is one project row of Table V.
type TableVRow struct {
	Software    string
	Unsafe      int
	Transformed int
}

// Pct returns the transformed percentage.
func (r TableVRow) Pct() float64 {
	if r.Unsafe == 0 {
		return 0
	}
	return 100 * float64(r.Transformed) / float64(r.Unsafe)
}

// Figure2Row is one bar of Figure 2.
type Figure2Row struct {
	Function    string
	Transformed int
	Total       int
}

// SLRCorpusResult aggregates the SLR run over the corpus.
type SLRCorpusResult struct {
	Rows    []TableVRow
	PerFunc []Figure2Row
	// FailureCounts maps the Section IV-B failure classes to occurrence
	// counts.
	FailureCounts map[string]int
}

// RunTableV applies SLR to every file of the corpus and aggregates
// Table V, Figure 2 and the failure taxonomy.
func RunTableV() (*SLRCorpusResult, error) {
	res := &SLRCorpusResult{FailureCounts: make(map[string]int)}
	perFn := make(map[string]*Figure2Row)
	for _, p := range corpus.Generate(0) {
		row := TableVRow{Software: p.Name}
		for _, f := range p.Files {
			unit, err := cparse.Parse(f.Name, f.Source)
			if err != nil {
				return nil, fmt.Errorf("experiments: parse %s: %w", f.Name, err)
			}
			out, err := slr.NewTransformer(unit).ApplyAll()
			if err != nil {
				return nil, fmt.Errorf("experiments: SLR %s: %w", f.Name, err)
			}
			for _, site := range out.Sites {
				row.Unsafe++
				e, ok := perFn[site.Function]
				if !ok {
					e = &Figure2Row{Function: site.Function}
					perFn[site.Function] = e
				}
				e.Total++
				if site.Applied {
					row.Transformed++
					e.Transformed++
				} else if site.Failure != nil {
					res.FailureCounts[site.Failure.Reason.String()]++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	order := []string{"strcpy", "strcat", "sprintf", "vsprintf", "memcpy", "gets"}
	for _, fn := range order {
		if e, ok := perFn[fn]; ok {
			res.PerFunc = append(res.PerFunc, *e)
		}
	}
	return res, nil
}

// FormatTableV renders Table V.
func FormatTableV(res *SLRCorpusResult) string {
	var sb strings.Builder
	sb.WriteString("Table V: Running SLR on Test Programs\n")
	sb.WriteString(fmt.Sprintf("%-10s %18s %14s %14s\n",
		"Software", "# Unsafe Functions", "# Transformed", "% Transformed"))
	var u, tr int
	for _, r := range res.Rows {
		sb.WriteString(fmt.Sprintf("%-10s %18d %14d %13.2f%%\n",
			r.Software, r.Unsafe, r.Transformed, r.Pct()))
		u += r.Unsafe
		tr += r.Transformed
	}
	sb.WriteString(fmt.Sprintf("%-10s %18d %14d %13.2f%%\n", "Total", u, tr,
		100*float64(tr)/float64(u)))
	sb.WriteString("\nPaper: 317 candidates, 259 replaced (81.7%).\n")
	return sb.String()
}

// FormatFigure2 renders Figure 2 as a text bar chart.
func FormatFigure2(res *SLRCorpusResult) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: Changes in Unsafe Functions by SLR\n")
	for _, r := range res.PerFunc {
		pct := 0.0
		if r.Total > 0 {
			pct = 100 * float64(r.Transformed) / float64(r.Total)
		}
		bar := strings.Repeat("#", int(pct/2.5))
		sb.WriteString(fmt.Sprintf("%-9s %4d/%-4d (%5.1f%%) %s\n",
			r.Function, r.Transformed, r.Total, pct, bar))
	}
	sb.WriteString("\nPaper: strcpy 28/39 (71.8%), strcat 8/8 (100%), sprintf 150/153 (98.0%),\n")
	sb.WriteString("vsprintf 1/2 (50%), memcpy 72/115 (62.6%).\n")
	return sb.String()
}

// FormatFailureTaxonomy renders the Section IV-B failure breakdown.
func FormatFailureTaxonomy(res *SLRCorpusResult) string {
	var sb strings.Builder
	sb.WriteString("SLR precondition failures (Section IV-B taxonomy)\n")
	keys := make([]string, 0, len(res.FailureCounts))
	for k := range res.FailureCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0
	for _, k := range keys {
		sb.WriteString(fmt.Sprintf("  %-55s %4d\n", k, res.FailureCounts[k]))
		total += res.FailureCounts[k]
	}
	sb.WriteString(fmt.Sprintf("  %-55s %4d\n", "total", total))
	sb.WriteString("\nPaper: 58 failures; most lacked a reaching heap allocation; one aliased\n")
	sb.WriteString("struct member; one array of buffers; one ternary allocation.\n")
	return sb.String()
}

// TableVIRow is one project row of Table VI.
type TableVIRow struct {
	Software   string
	Identified int // C1
	Replaced   int // C2
	FailedPre  int // C3
}

// RunTableVI applies STR to every file of the corpus.
func RunTableVI() ([]TableVIRow, error) {
	var rows []TableVIRow
	for _, p := range corpus.Generate(0) {
		row := TableVIRow{Software: p.Name}
		for _, f := range p.Files {
			unit, err := cparse.Parse(f.Name, f.Source)
			if err != nil {
				return nil, fmt.Errorf("experiments: parse %s: %w", f.Name, err)
			}
			out, err := str.NewTransformer(unit).ApplyAll()
			if err != nil {
				return nil, fmt.Errorf("experiments: STR %s: %w", f.Name, err)
			}
			for _, v := range out.Vars {
				if !v.IsPointer {
					continue
				}
				row.Identified++
				switch {
				case v.Applied:
					row.Replaced++
				default:
					row.FailedPre++
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTableVI renders Table VI.
func FormatTableVI(rows []TableVIRow) string {
	var sb strings.Builder
	sb.WriteString("Table VI: Running STR on Test Programs\n")
	sb.WriteString(fmt.Sprintf("%-10s %12s %10s %12s %12s %18s\n",
		"Software", "Identified", "Replaced", "FailedPre", "% Replaced", "% PassedPre Repl."))
	var c1, c2, c3 int
	for _, r := range rows {
		pctAll := 100 * float64(r.Replaced) / float64(r.Identified)
		pctPassed := 100.0
		if r.Identified-r.FailedPre > 0 {
			pctPassed = 100 * float64(r.Replaced) / float64(r.Identified-r.FailedPre)
		}
		sb.WriteString(fmt.Sprintf("%-10s %12d %10d %12d %11.2f%% %17.2f%%\n",
			r.Software, r.Identified, r.Replaced, r.FailedPre, pctAll, pctPassed))
		c1 += r.Identified
		c2 += r.Replaced
		c3 += r.FailedPre
	}
	sb.WriteString(fmt.Sprintf("%-10s %12d %10d %12d %11.2f%% %17.2f%%\n",
		"Total", c1, c2, c3,
		100*float64(c2)/float64(c1), 100*float64(c2)/float64(c1-c3)))
	sb.WriteString("\nPaper: 296 identified, 59 failed the interprocedural precondition,\n")
	sb.WriteString("237 replaced — 80.07% of all, 100% of those passing preconditions.\n")
	return sb.String()
}
