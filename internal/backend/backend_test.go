package backend_test

import (
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/cparse"
	"repro/internal/stralloc"
	"repro/internal/typecheck"
)

func TestRegistryNamesAndGet(t *testing.T) {
	names := backend.Names()
	want := []string{"glib", "bsd", "c11k"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("Names()[%d] = %q, want %q", i, names[i], n)
		}
		b, err := backend.Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if b.Name() != n {
			t.Fatalf("Get(%q).Name() = %q", n, b.Name())
		}
	}
}

func TestGetEmptyIsDefault(t *testing.T) {
	b, err := backend.Get("")
	if err != nil {
		t.Fatal(err)
	}
	if b != backend.Default() || b.Name() != "glib" {
		t.Fatalf("Get(\"\") = %q, want the glib default", b.Name())
	}
	c, err := backend.Canonical("")
	if err != nil || c != "glib" {
		t.Fatalf("Canonical(\"\") = %q, %v; want glib", c, err)
	}
	// Surrounding whitespace is tolerated, like Options.Checks names.
	if b, err := backend.Get(" bsd "); err != nil || b.Name() != "bsd" {
		t.Fatalf("Get(\" bsd \") = %v, %v", b, err)
	}
}

func TestGetUnknownListsValidSet(t *testing.T) {
	_, err := backend.Get("musl")
	if err == nil {
		t.Fatal("Get(musl) succeeded")
	}
	for _, want := range []string{"musl", "glib", "bsd", "c11k"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	if _, err := backend.Canonical("musl"); err == nil {
		t.Fatal("Canonical(musl) succeeded")
	}
}

// TestDialectTables pins the load-bearing rule fields of each dialect:
// the replacement callee and, critically, where the size argument goes
// (glib/bsd append after the source; Annex K inserts before it).
func TestDialectTables(t *testing.T) {
	cases := []struct {
		backend      backend.Backend
		unsafe, safe string
		kind         backend.Kind
		sizeAfterArg int
	}{
		{backend.Glib, "strcpy", "g_strlcpy", backend.KindRename, 1},
		{backend.Glib, "strcat", "g_strlcat", backend.KindRename, 1},
		{backend.Glib, "sprintf", "g_snprintf", backend.KindRename, 0},
		{backend.Glib, "vsprintf", "g_vsnprintf", backend.KindRename, 0},
		{backend.Glib, "memcpy", "memcpy", backend.KindClamp, 0},
		{backend.Glib, "gets", "fgets", backend.KindGets, 0},
		{backend.BSD, "strcpy", "strlcpy", backend.KindRename, 1},
		{backend.BSD, "strcat", "strlcat", backend.KindRename, 1},
		{backend.BSD, "sprintf", "snprintf", backend.KindRename, 0},
		{backend.BSD, "vsprintf", "vsnprintf", backend.KindRename, 0},
		{backend.BSD, "memcpy", "memcpy", backend.KindClamp, 0},
		{backend.BSD, "gets", "fgets", backend.KindGets, 0},
		{backend.C11K, "strcpy", "strcpy_s", backend.KindRename, 0},
		{backend.C11K, "strcat", "strcat_s", backend.KindRename, 0},
		{backend.C11K, "sprintf", "sprintf_s", backend.KindRename, 0},
		{backend.C11K, "vsprintf", "vsprintf_s", backend.KindRename, 0},
		{backend.C11K, "memcpy", "memcpy_s", backend.KindRename, 0},
		{backend.C11K, "gets", "gets_s", backend.KindGets, 0},
	}
	for _, c := range cases {
		r, ok := c.backend.Lookup(c.unsafe)
		if !ok {
			t.Fatalf("%s: no rule for %s", c.backend.Name(), c.unsafe)
		}
		if r.Safe != c.safe || r.Kind != c.kind || r.SizeAfterArg != c.sizeAfterArg {
			t.Fatalf("%s %s: got (%s, kind %d, sizeAfterArg %d), want (%s, kind %d, sizeAfterArg %d)",
				c.backend.Name(), c.unsafe, r.Safe, r.Kind, r.SizeAfterArg, c.safe, c.kind, c.sizeAfterArg)
		}
	}
}

// TestGetsRules pins the bounded-reader differences: fgets keeps the
// newline (strip) and reads from a stream; gets_s discards the newline
// itself and takes no stream argument.
func TestGetsRules(t *testing.T) {
	for _, b := range []backend.Backend{backend.Glib, backend.BSD} {
		r, _ := b.Lookup("gets")
		if !r.StripNewline || len(r.ExtraArgs) != 1 || r.ExtraArgs[0] != "stdin" {
			t.Fatalf("%s gets rule = %+v, want fgets with stdin and newline strip", b.Name(), r)
		}
		if r.NeedsLib {
			t.Fatalf("%s: fgets is hosted libc, must not require the dialect library", b.Name())
		}
	}
	r, _ := backend.C11K.Lookup("gets")
	if r.StripNewline || len(r.ExtraArgs) != 0 {
		t.Fatalf("c11k gets rule = %+v, want gets_s with no extra args and no strip", r)
	}
	if !r.NeedsLib {
		t.Fatal("c11k: gets_s needs the Annex K prototypes")
	}
}

func TestUnsafeFunctionsStableAcrossDialects(t *testing.T) {
	want := []string{"strcpy", "strcat", "sprintf", "vsprintf", "memcpy", "gets"}
	for _, name := range backend.Names() {
		b, _ := backend.Get(name)
		got := b.UnsafeFunctions()
		if len(got) != len(want) {
			t.Fatalf("%s: UnsafeFunctions() = %v", name, got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: UnsafeFunctions()[%d] = %q, want %q", name, i, got[i], want[i])
			}
			if _, ok := b.Lookup(want[i]); !ok {
				t.Fatalf("%s: listed %q has no rule", name, want[i])
			}
		}
	}
}

// TestPrototypesParseAndCheck: every backend's support declarations
// must be accepted by the repo's own C front end, because EmitSupport
// prepends them to transformed sources that are then re-parsed (the
// idempotence suite) and executed (the interpreter equivalence suite).
func TestPrototypesParseAndCheck(t *testing.T) {
	for _, name := range backend.Names() {
		b, _ := backend.Get(name)
		src := b.Prototypes() + "\nint main(void) { return 0; }\n"
		unit, err := cparse.Parse(name+"_protos.c", src)
		if err != nil {
			t.Fatalf("%s prototypes do not parse: %v", name, err)
		}
		typecheck.Check(unit)
		if b.LinkNote() == "" {
			t.Fatalf("%s: empty LinkNote", name)
		}
		if b.Description() == "" {
			t.Fatalf("%s: empty Description", name)
		}
	}
}

// TestGlibSupportMatchesSeed pins the glib dialect's emitted support
// text to the seed pipeline's exact bytes (stralloc runtime, newline,
// glib prototypes) — the byte-identity acceptance criterion reaches
// through EmitSupport too.
func TestGlibSupportMatchesSeed(t *testing.T) {
	units := backend.SupportUnits(true, true, backend.Glib)
	if len(units) != 2 || units[0].Name != "stralloc" || units[1].Name != "glib-prototypes" {
		t.Fatalf("SupportUnits = %+v", units)
	}
	var sb strings.Builder
	for _, u := range units {
		sb.WriteString(u.Source)
		sb.WriteString("\n")
	}
	want := stralloc.FullSource() + "\n" + units[1].Source + "\n"
	if sb.String() != want {
		t.Fatal("glib support assembly diverges from the seed emission order")
	}
	if got := backend.SupportUnits(false, false, backend.Glib); len(got) != 0 {
		t.Fatalf("SupportUnits(false, false) = %+v, want none", got)
	}
	if got := backend.SupportUnits(false, true, nil); len(got) != 1 || got[0].Name != "glib-prototypes" {
		t.Fatalf("SupportUnits with nil backend = %+v, want the default's prototypes", got)
	}
}
