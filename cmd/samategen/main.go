// Command samategen emits the synthetic Juliet-style benchmark corpus
// (Section IV-A / Table III) to a directory tree, one .c file per program:
//
//	samategen -out ./juliet [-cwe 121] [-n 50]
//
// With no -cwe, all six buffer-overflow CWEs are generated with their
// Table III counts, plus the integer-overflow extension (CWE-190/680)
// with its own counts. -cwe also accepts 190 and 680.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/samate"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		out = flag.String("out", "juliet", "output directory")
		cwe = flag.Int("cwe", 0, "generate only this CWE (0 = all)")
		n   = flag.Int("n", 0, "programs per CWE (0 = Table III counts)")
	)
	flag.Parse()

	cwes := append(append([]int{}, samate.CWEs...), samate.IntCWEs...)
	if *cwe != 0 {
		cwes = []int{*cwe}
	}
	total := 0
	for _, c := range cwes {
		count, generate := samate.TableIIICounts[c], samate.Generate
		if _, isInt := samate.IntTableCounts[c]; isInt {
			count, generate = samate.IntTableCounts[c], samate.IntGenerate
		}
		if *n > 0 {
			count = *n
		}
		dir := filepath.Join(*out, fmt.Sprintf("CWE%d", c))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "samategen: %v\n", err)
			return 1
		}
		for _, p := range generate(c, count) {
			path := filepath.Join(dir, p.ID+".c")
			if err := os.WriteFile(path, []byte(p.Source), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "samategen: %v\n", err)
				return 1
			}
			total++
		}
		fmt.Printf("CWE-%d: %d programs -> %s\n", c, count, dir)
	}
	fmt.Printf("total: %d programs\n", total)
	return 0
}
