package intflow

import (
	"repro/internal/cast"
	"repro/internal/ctype"
	"repro/internal/overflow"
)

// ival is the abstract value of one integer variable: the value interval
// (in unbounded mathematical integers, before any modular reduction),
// whether a wraparound may already have happened on the way to this
// value, whether that wrap was provable on every path, and the suggested
// precondition guard rendered at the wrap site (carried along so a later
// allocation sink can attach it to its CWE-680 finding).
type ival struct {
	v overflow.Interval
	// wrapped marks a value that may have been reduced modulo its type
	// width somewhere upstream; definite marks a wrap that happens on
	// every execution reaching this point.
	wrapped  bool
	definite bool
	// guard is the IntRepair-style precondition check suggested at the
	// wrap site ("" when none was rendered).
	guard string
}

// topIval is the unknown value (the implicit state of absent map keys).
func topIval() ival { return ival{v: overflow.Top()} }

func (x ival) isTop() bool { return x.v.IsTop() && !x.wrapped }

// join merges two path states. Wrap taint is may-information (either
// path suffices); definiteness is must-information (both paths needed).
func (x ival) join(o ival) ival {
	out := ival{
		v:        x.v.Join(o.v),
		wrapped:  x.wrapped || o.wrapped,
		definite: x.definite && o.definite,
		guard:    x.guard,
	}
	if out.guard == "" {
		out.guard = o.guard
	}
	return out
}

func (x ival) widen(next ival) ival {
	out := ival{
		v:        x.v.Widen(next.v),
		wrapped:  x.wrapped || next.wrapped,
		definite: x.definite && next.definite,
		guard:    x.guard,
	}
	if out.guard == "" {
		out.guard = next.guard
	}
	return out
}

// equal ignores the guard text: it is derived deterministically from the
// same sites that set the wrapped flag, so comparing it would only slow
// convergence without changing the fixpoint.
func (x ival) equal(o ival) bool {
	return x.v == o.v && x.wrapped == o.wrapped && x.definite == o.definite
}

// istate is the abstract integer memory at one program point:
// reachability plus a map from Symbol.ID to ival. Absent keys are top;
// maps are normalized so equality is map equality.
type istate struct {
	reach bool
	vars  map[int]ival
}

func unreached() istate { return istate{} }

func (s istate) get(id int) ival {
	if v, ok := s.vars[id]; ok {
		return v
	}
	return topIval()
}

func (s istate) set(id int, v ival) istate {
	out := s.clone()
	if v.isTop() {
		delete(out.vars, id)
	} else {
		out.vars[id] = v
	}
	return out
}

func (s istate) clone() istate {
	out := istate{reach: s.reach, vars: make(map[int]ival, len(s.vars))}
	for k, v := range s.vars {
		out.vars[k] = v
	}
	return out
}

func (s istate) equal(o istate) bool {
	if s.reach != o.reach || len(s.vars) != len(o.vars) {
		return false
	}
	for k, v := range s.vars {
		ov, ok := o.vars[k]
		if !ok || !ov.equal(v) {
			return false
		}
	}
	return true
}

func (s istate) join(o istate) istate {
	if !s.reach {
		return o
	}
	if !o.reach {
		return s
	}
	out := istate{reach: true, vars: make(map[int]ival)}
	// Absent keys are top; joining anything with top is top unless the
	// present side carries wrap taint (taint must survive the merge).
	for k, v := range s.vars {
		var j ival
		if ov, ok := o.vars[k]; ok {
			j = v.join(ov)
		} else {
			j = v.join(topIval())
		}
		if !j.isTop() {
			out.vars[k] = j
		}
	}
	for k, ov := range o.vars {
		if _, ok := s.vars[k]; ok {
			continue
		}
		if j := ov.join(topIval()); !j.isTop() {
			out.vars[k] = j
		}
	}
	return out
}

func (s istate) widenFrom(next istate) istate {
	if !s.reach {
		return next
	}
	if !next.reach {
		return s
	}
	out := istate{reach: true, vars: make(map[int]ival)}
	for k, v := range s.vars {
		nv, ok := next.vars[k]
		if !ok {
			nv = topIval()
		}
		if w := v.widen(nv); !w.isTop() {
			out.vars[k] = w
		}
	}
	for k, nv := range next.vars {
		if _, ok := s.vars[k]; ok {
			continue
		}
		// A variable that just became wrap-tainted must not be dropped.
		if nv.wrapped {
			out.vars[k] = topIval().widen(nv)
		}
	}
	return out
}

// isIntVar reports whether the symbol holds an integer value the
// analysis tracks.
func isIntVar(sym *cast.Symbol) bool {
	return sym != nil && ctype.IsInteger(sym.Type)
}

// typeBounds returns the representable range [lo, hi] of an integer
// type, with hi == overflow.PosInf standing for "no detectable upper
// bound" (64-bit unsigned types: their width exceeds the interval
// domain's sentinels, so only lower-bound underflow is checkable).
// ok is false for types the analysis does not wrap-check (floats,
// pointers, _Bool, and 64-bit signed types).
func typeBounds(t ctype.Type) (lo, hi int64, ok bool) {
	b, isBasic := ctype.Unqualify(t).(*ctype.Basic)
	if !isBasic {
		return 0, 0, false
	}
	switch b.Kind {
	case ctype.Char, ctype.SChar: // char is signed on LP64 Linux
		return -128, 127, true
	case ctype.UChar:
		return 0, 255, true
	case ctype.Short:
		return -32768, 32767, true
	case ctype.UShort:
		return 0, 65535, true
	case ctype.Int:
		return -2147483648, 2147483647, true
	case ctype.UInt:
		return 0, 4294967295, true
	case ctype.ULong, ctype.ULongLong:
		// 2^64-1 exceeds the sentinel range: underflow below zero is
		// still detectable, overflow above is not.
		return 0, overflow.PosInf, true
	default:
		return 0, 0, false
	}
}
