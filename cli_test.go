package repro_test

import (
	"bufio"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// buildTool compiles one command into a temp dir and returns its path.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestCfixCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")

	src := `
void work(void) {
    char buf[8];
    strcpy(buf, "a string that is clearly too long");
    printf("%s\n", buf);
}
int main(void) {
    work();
    return 0;
}
`
	dir := t.TempDir()
	in := filepath.Join(dir, "vuln.c")
	if err := os.WriteFile(in, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "fixed.c")

	cmd := exec.Command(bin, "-verify", "main", "-support", "-o", out, in)
	combined, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cfix: %v\n%s", err, combined)
	}
	text := string(combined)
	if !strings.Contains(text, "before: ") || !strings.Contains(text, "after:  0 violation(s)") {
		t.Fatalf("verify output unexpected:\n%s", text)
	}
	fixed, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "g_strlcpy") {
		t.Fatalf("fixed source missing rewrite:\n%s", fixed)
	}

	// Usage error path.
	if err := exec.Command(bin).Run(); err == nil {
		t.Fatal("no-args invocation must fail")
	}

	// Diff mode.
	diffOut, err := exec.Command(bin, "-summary=false", "-diff", in).Output()
	if err != nil {
		t.Fatalf("cfix -diff: %v", err)
	}
	if !strings.Contains(string(diffOut), "-    strcpy(buf") ||
		!strings.Contains(string(diffOut), "+    g_strlcpy(buf") {
		t.Fatalf("diff output unexpected:\n%s", diffOut)
	}
}

func TestSamategenCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/samategen")
	dir := t.TempDir()
	cmd := exec.Command(bin, "-out", dir, "-cwe", "242", "-n", "5")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("samategen: %v\n%s", err, out)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "CWE242"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("files: %d, want 5", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, "CWE242", entries[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "gets(") {
		t.Fatalf("CWE-242 program missing gets:\n%s", data)
	}
}

func TestExperimentsCLISampled(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/experiments")
	cmd := exec.Command(bin, "-table", "6")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("experiments: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "296") || !strings.Contains(string(out), "237") {
		t.Fatalf("Table VI output unexpected:\n%s", out)
	}
}

func TestCfixCLIBatchDirectory(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	src := t.TempDir()
	for i, body := range []string{
		"void a(void){ char b[4]; strcpy(b, \"toolongxxxx\"); }\n",
		"void c(void){ char d[4]; strcat(d, \"alsolong\"); }\n",
	} {
		name := filepath.Join(src, []string{"one.c", "two.c"}[i])
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	outdir := t.TempDir()
	out, err := exec.Command(bin, "-summary=false", "-outdir", outdir, src).CombinedOutput()
	if err != nil {
		t.Fatalf("batch: %v\n%s", err, out)
	}
	for _, name := range []string{"one.c", "two.c"} {
		data, err := os.ReadFile(filepath.Join(outdir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "g_strl") {
			t.Fatalf("%s not transformed:\n%s", name, data)
		}
	}
}

// TestCfixCLIParallelJobs checks the -j worker flag: parallel batch runs
// must produce exactly the files and bytes of a sequential run, and the
// stderr summaries must come out in input order.
func TestCfixCLIParallelJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	src := t.TempDir()
	var names []string
	for i := 0; i < 6; i++ {
		name := string(rune('a'+i)) + ".c"
		names = append(names, name)
		body := "void f" + string(rune('a'+i)) + "(void){ char b[4]; strcpy(b, \"much too long for four\"); }\n"
		if err := os.WriteFile(filepath.Join(src, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	run := func(jobs string) (map[string]string, string) {
		outdir := t.TempDir()
		cmd := exec.Command(bin, "-j", jobs, "-outdir", outdir, src)
		var stderr strings.Builder
		cmd.Stderr = &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("-j %s: %v\n%s", jobs, err, stderr.String())
		}
		got := map[string]string{}
		for _, name := range names {
			data, err := os.ReadFile(filepath.Join(outdir, name))
			if err != nil {
				t.Fatalf("-j %s: %v", jobs, err)
			}
			got[name] = string(data)
		}
		return got, stderr.String()
	}

	seq, seqLog := run("1")
	par, parLog := run("4")
	for _, name := range names {
		if seq[name] != par[name] {
			t.Fatalf("%s: -j 4 output differs from -j 1", name)
		}
		if !strings.Contains(seq[name], "g_strl") {
			t.Fatalf("%s not transformed:\n%s", name, seq[name])
		}
	}
	if seqLog != parLog {
		t.Fatalf("summaries diverge:\n-j 1:\n%s\n-j 4:\n%s", seqLog, parLog)
	}
	// Summaries must appear in input order even with parallel workers.
	last := -1
	for _, name := range names {
		idx := strings.Index(parLog, "== "+filepath.Join(src, name)+" ==")
		if idx < 0 {
			t.Fatalf("summary for %s missing:\n%s", name, parLog)
		}
		if idx < last {
			t.Fatalf("summaries out of input order:\n%s", parLog)
		}
		last = idx
	}
}

func TestCfixCLILintExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	dir := t.TempDir()

	vuln := filepath.Join(dir, "vuln.c")
	if err := os.WriteFile(vuln, []byte(`
void work(void) {
    char buf[8];
    char src[40];
    memset(src, 'A', 30);
    src[30] = '\0';
    strcpy(buf, src);
}
int main(void) { work(); return 0; }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	clean := filepath.Join(dir, "clean.c")
	if err := os.WriteFile(clean, []byte(`
void work(void) {
    char buf[8];
    strcpy(buf, "ok");
}
int main(void) { work(); return 0; }
`), 0o644); err != nil {
		t.Fatal(err)
	}

	// A definite overflow is the CI-gate signal: exit code 3.
	out, err := exec.Command(bin, "-lint", vuln).Output()
	if code := exitCode(err); code != 3 {
		t.Fatalf("lint vuln: exit %d, want 3 (%v)", code, err)
	}
	if !strings.Contains(string(out), "CWE-121") || !strings.Contains(string(out), "definite") {
		t.Fatalf("lint output missing verdict:\n%s", out)
	}

	// JSON mode keeps the exit contract and emits one object per line.
	out, err = exec.Command(bin, "-lint", "-json", vuln).Output()
	if code := exitCode(err); code != 3 {
		t.Fatalf("lint -json vuln: exit %d, want 3 (%v)", code, err)
	}
	if !strings.Contains(string(out), `"cwe":121`) || !strings.Contains(string(out), `"severity":"definite"`) {
		t.Fatalf("json output unexpected:\n%s", out)
	}

	// A clean file exits 0.
	if err := exec.Command(bin, "-lint", clean).Run(); err != nil {
		t.Fatalf("lint clean: %v, want exit 0", err)
	}

	// -json without -lint is a usage error.
	if code := exitCode(exec.Command(bin, "-json", clean).Run()); code != 2 {
		t.Fatalf("-json without -lint: exit %d, want 2", code)
	}

	// The help text documents the exit-code contract.
	helpOut, _ := exec.Command(bin).CombinedOutput()
	if !strings.Contains(string(helpOut), "exit codes:") {
		t.Fatalf("usage output missing exit-code contract:\n%s", helpOut)
	}
}

func TestCfixCLIKeepGoingAndBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	dir := t.TempDir()

	good1 := filepath.Join(dir, "a.c")
	good2 := filepath.Join(dir, "c.c")
	broken := filepath.Join(dir, "b.c")
	goodSrc := `
void work(void) {
    char buf[8];
    strcpy(buf, "a string that is clearly too long");
}
`
	for _, f := range []string{good1, good2} {
		if err := os.WriteFile(f, []byte(goodSrc), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(broken, []byte("void oops( {"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Without -keep-going the batch stops at the first failure: nothing
	// lands in the output directory for the files after it.
	outdir := filepath.Join(dir, "out-fail-fast")
	err := exec.Command(bin, "-summary=false", "-outdir", outdir, good1, broken, good2).Run()
	if code := exitCode(err); code != 1 {
		t.Fatalf("fail-fast batch: exit %d, want 1", code)
	}
	if _, err := os.Stat(filepath.Join(outdir, "c.c")); err == nil {
		t.Fatal("fail-fast batch wrote output past the failing file")
	}

	// With -keep-going every healthy file is transformed and written,
	// the broken one is reported, and the run still exits 1.
	outdir = filepath.Join(dir, "out-keep-going")
	cmd := exec.Command(bin, "-summary=false", "-keep-going", "-outdir", outdir, good1, broken, good2)
	combined, err := cmd.CombinedOutput()
	if code := exitCode(err); code != 1 {
		t.Fatalf("keep-going batch: exit %d, want 1\n%s", code, combined)
	}
	if !strings.Contains(string(combined), "b.c") {
		t.Fatalf("keep-going batch did not report the broken file:\n%s", combined)
	}
	for _, name := range []string{"a.c", "c.c"} {
		fixed, err := os.ReadFile(filepath.Join(outdir, name))
		if err != nil {
			t.Fatalf("keep-going batch lost a healthy file: %v", err)
		}
		if !strings.Contains(string(fixed), "g_strlcpy") {
			t.Fatalf("%s missing rewrite:\n%s", name, fixed)
		}
	}
	// Atomic writes must not leave temp files behind.
	entries, err := os.ReadDir(outdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stale temporary file in outdir: %s", e.Name())
		}
	}

	// Lint keep-going: the definite-overflow gate (3) dominates the
	// per-file error (1) so CI reads the security signal first.
	vuln := filepath.Join(dir, "vuln.c")
	if err := os.WriteFile(vuln, []byte(`
void work(void) {
    char buf[8];
    char src[40];
    memset(src, 'A', 30);
    src[30] = '\0';
    strcpy(buf, src);
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = exec.Command(bin, "-lint", "-keep-going", broken, vuln).Run()
	if code := exitCode(err); code != 3 {
		t.Fatalf("lint keep-going with definite: exit %d, want 3", code)
	}
	// Errors alone (no definite finding) exit 1.
	clean := filepath.Join(dir, "clean.c")
	if err := os.WriteFile(clean, []byte(`
void work(void) {
    char buf[8];
    strcpy(buf, "ok");
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	err = exec.Command(bin, "-lint", "-keep-going", broken, clean).Run()
	if code := exitCode(err); code != 1 {
		t.Fatalf("lint keep-going errors only: exit %d, want 1", code)
	}

	// An exhausted -budget degrades loudly: the oracle reports the
	// affected functions as unverified instead of passing them silently.
	out, err := exec.Command(bin, "-lint", "-budget", "1", vuln).Output()
	if code := exitCode(err); code != 0 && code != 3 {
		t.Fatalf("lint -budget: exit %d, want 0 or 3", code)
	}
	if !strings.Contains(string(out), "degraded") {
		t.Fatalf("budget-exhausted lint not marked degraded:\n%s", out)
	}

	// The timeout flags parse and a comfortable deadline changes nothing.
	if err := exec.Command(bin, "-summary=false", "-timeout", "30s", "-total-timeout", "1m",
		"-o", filepath.Join(dir, "t.c"), good1).Run(); err != nil {
		t.Fatalf("timeout flags: %v", err)
	}
}

// exitCode extracts the process exit status (0 when err is nil).
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// TestCfixCLIJobsValidation: negative -j is a usage error, and the help
// text documents the 0 = one-per-CPU convention.
func TestCfixCLIJobsValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	dir := t.TempDir()
	in := filepath.Join(dir, "x.c")
	if err := os.WriteFile(in, []byte("int x;\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(bin, "-j", "-1", in)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	err := cmd.Run()
	if code := exitCode(err); code != 2 {
		t.Fatalf("-j -1: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "-j must be >= 0") {
		t.Fatalf("-j -1 stderr missing explanation:\n%s", stderr.String())
	}

	helpOut, _ := exec.Command(bin).CombinedOutput()
	if !strings.Contains(string(helpOut), "one worker per CPU") {
		t.Fatalf("help text missing -j=0 semantics:\n%s", helpOut)
	}
}

// TestCfixCLIBackendFlag: -backend selects the repair dialect end to
// end, and an unknown name is a usage error (exit 2) naming the valid
// set — caught at flag validation, before any file is read.
func TestCfixCLIBackendFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	dir := t.TempDir()
	in := filepath.Join(dir, "vuln.c")
	if err := os.WriteFile(in, []byte(`
void work(void) {
    char buf[8];
    strcpy(buf, "a string that is clearly too long");
}
`), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []struct{ backend, want string }{
		{"glib", "g_strlcpy(buf"},
		{"bsd", "strlcpy(buf"},
		{"c11k", "strcpy_s(buf"},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.backend+".c")
		if err := exec.Command(bin, "-summary=false", "-str=false", "-backend", c.backend,
			"-support", "-o", out, in).Run(); err != nil {
			t.Fatalf("-backend %s: %v", c.backend, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), c.want) {
			t.Fatalf("-backend %s output missing %q:\n%s", c.backend, c.want, data)
		}
	}

	// The default is glib: no flag and -backend glib agree byte for byte.
	defOut := filepath.Join(dir, "default.c")
	if err := exec.Command(bin, "-summary=false", "-str=false", "-support", "-o", defOut, in).Run(); err != nil {
		t.Fatal(err)
	}
	defData, _ := os.ReadFile(defOut)
	glibData, _ := os.ReadFile(filepath.Join(dir, "glib.c"))
	if string(defData) != string(glibData) {
		t.Fatal("default output differs from -backend glib")
	}

	// Unknown backend: usage error before any processing.
	cmd := exec.Command(bin, "-backend", "musl", in)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if code := exitCode(cmd.Run()); code != 2 {
		t.Fatalf("-backend musl: exit %d, want 2", code)
	}
	for _, want := range []string{"musl", "glib", "bsd", "c11k"} {
		if !strings.Contains(stderr.String(), want) {
			t.Fatalf("-backend musl stderr missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestCfixdCLIBackendFlag: cfixd validates -backend at startup (exit 2
// on unknown names, before binding a port).
func TestCfixdCLIBackendFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfixd")
	cmd := exec.Command(bin, "-backend", "musl")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if code := exitCode(cmd.Run()); code != 2 {
		t.Fatalf("-backend musl: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "glib, bsd, c11k") {
		t.Fatalf("stderr missing valid set:\n%s", stderr.String())
	}
}

// TestCfixCLICacheDir: a second run over unchanged inputs with
// -cache-dir produces byte-identical output from the persisted cache.
func TestCfixCLICacheDir(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	dir := t.TempDir()
	in := filepath.Join(dir, "vuln.c")
	if err := os.WriteFile(in, []byte(`
void work(void) {
    char buf[8];
    strcpy(buf, "a string that is clearly too long");
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")

	run := func(out string) string {
		if err := exec.Command(bin, "-summary=false", "-cache-dir", cacheDir, "-o", out, in).Run(); err != nil {
			t.Fatalf("cfix -cache-dir: %v", err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	cold := run(filepath.Join(dir, "cold.c"))
	warm := run(filepath.Join(dir, "warm.c"))
	if cold != warm {
		t.Fatal("cached run output differs from cold run")
	}
	if !strings.Contains(cold, "g_strlcpy") {
		t.Fatalf("transformation missing:\n%s", cold)
	}
	// The persisted entries actually landed on disk.
	found := false
	filepath.WalkDir(cacheDir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".cfe") {
			found = true
		}
		return nil
	})
	if !found {
		t.Fatal("no cache entries persisted under -cache-dir")
	}
}

// TestCfixCLILintJSONDegradations: -lint -json surfaces per-file
// degradations as a machine-readable trailer line, so consumers can
// tell a full-fidelity clean verdict from a qualified one.
func TestCfixCLILintJSONDegradations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	dir := t.TempDir()
	in := filepath.Join(dir, "deep.c")
	if err := os.WriteFile(in, []byte(`
void work(void) {
    char buf[8];
    char src[40];
    memset(src, 'A', 30);
    src[30] = '\0';
    strcpy(buf, src);
}
`), 0o644); err != nil {
		t.Fatal(err)
	}

	// A starved solver budget must degrade loudly in JSON too.
	out, err := exec.Command(bin, "-lint", "-json", "-budget", "1", in).Output()
	if code := exitCode(err); code != 0 && code != 3 {
		t.Fatalf("lint -json -budget: exit %d, want 0 or 3", code)
	}
	var sawDegradations bool
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var trailer struct {
			File         string   `json:"file"`
			Degradations []string `json:"degradations"`
		}
		if err := json.Unmarshal([]byte(line), &trailer); err != nil {
			t.Fatalf("non-JSON line in -json output: %q (%v)", line, err)
		}
		if len(trailer.Degradations) > 0 {
			sawDegradations = true
			if trailer.File != in {
				t.Fatalf("degradations trailer names %q, want %q", trailer.File, in)
			}
		}
	}
	if !sawDegradations {
		t.Fatalf("budget-starved -lint -json missing degradations line:\n%s", out)
	}

	// A full-fidelity run emits no trailer.
	out, err = exec.Command(bin, "-lint", "-json", in).Output()
	if code := exitCode(err); code != 3 {
		t.Fatalf("lint -json: exit %d, want 3", code)
	}
	if strings.Contains(string(out), `"degradations"`) {
		t.Fatalf("full-fidelity run emitted a degradations trailer:\n%s", out)
	}
}

// TestCfixCLITraceAndStageStats: `cfix -trace out.json -stage-stats`
// writes a valid Chrome trace-event file covering at least 10 distinct
// pipeline stages (the observability acceptance bar) and prints the
// aggregated per-stage table to stderr; the trace also passes the CI
// checker (cmd/tracecheck), keeping the two validators in agreement.
func TestCfixCLITraceAndStageStats(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfix")
	dir := t.TempDir()
	in := filepath.Join(dir, "vuln.c")
	// Default -summary keeps the lint oracle on, so the trace covers the
	// full stage vocabulary: parse, typecheck, the derived analyses, the
	// overflow oracle, SLR, STR, rewrite, fix.
	if err := os.WriteFile(in, []byte(`
void work(void) {
    char buf[8];
    strcpy(buf, "a string that is clearly too long");
    printf("%s\n", buf);
}
int main(void) {
    work();
    return 0;
}
`), 0o644); err != nil {
		t.Fatal(err)
	}
	traceFile := filepath.Join(dir, "trace.json")

	cmd := exec.Command(bin, "-trace", traceFile, "-stage-stats",
		"-o", filepath.Join(dir, "fixed.c"), in)
	var stderrBuf strings.Builder
	cmd.Stderr = &stderrBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("cfix -trace: %v\n%s", err, stderrBuf.String())
	}

	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &trace); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	names := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph != "X" || ev.Ts < 0 || ev.Dur <= 0 || ev.Name == "" {
			t.Fatalf("malformed event: %+v", ev)
		}
		names[ev.Name] = true
	}
	if len(names) < 10 {
		t.Fatalf("trace covers %d distinct stages, want >= 10: %v", len(names), names)
	}
	for _, want := range []string{"parse", "typecheck", "slr", "str", "fix"} {
		if !names[want] {
			t.Fatalf("trace missing stage %q: %v", want, names)
		}
	}

	// The -stage-stats table landed on stderr with its header and totals.
	for _, want := range []string{"stage", "count", "self", "degraded", "parse", "total"} {
		if !strings.Contains(stderrBuf.String(), want) {
			t.Fatalf("-stage-stats output missing %q:\n%s", want, stderrBuf.String())
		}
	}

	// The CI trace validator accepts the same file.
	check := buildTool(t, "cmd/tracecheck")
	if out, err := exec.Command(check, "-min-stages", "10", traceFile).CombinedOutput(); err != nil {
		t.Fatalf("tracecheck rejected the trace: %v\n%s", err, out)
	}
	// And rejects a malformed one.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents":[{"name":"","ph":"B"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(check, bad).Run(); err == nil {
		t.Fatal("tracecheck accepted a malformed trace")
	}
}

// TestBenchguardCLI pins the observability-gate comparator: within
// threshold passes, past threshold fails, no common benchmarks fails.
func TestBenchguardCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/benchguard")
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.txt",
		"goos: linux\nBenchmarkObsOverhead-8 \t 100\t 1000000 ns/op\nBenchmarkObsOverhead-8 \t 100\t 1040000 ns/op\n")
	within := write("within.txt",
		"BenchmarkObsOverhead-8 \t 100\t 1015000 ns/op\nBenchmarkObsOverhead-8 \t 100\t 1300000 ns/op\n")
	past := write("past.txt",
		"BenchmarkObsOverhead-8 \t 100\t 1100000 ns/op\n")
	other := write("other.txt",
		"BenchmarkSomethingElse-8 \t 100\t 1000000 ns/op\n")

	// min(within)=1.015ms vs min(base)=1.0ms: +1.5%, inside the 2% gate.
	out, err := exec.Command(bin, within, base).CombinedOutput()
	if err != nil {
		t.Fatalf("within-threshold comparison failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "ok") {
		t.Fatalf("verdict missing:\n%s", out)
	}
	// +10% must fail with exit 1 and a FAIL verdict line.
	out, err = exec.Command(bin, past, base).CombinedOutput()
	if code := exitCode(err); code != 1 {
		t.Fatalf("past-threshold comparison: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(string(out), "FAIL") {
		t.Fatalf("FAIL verdict missing:\n%s", out)
	}
	// A custom threshold admits the same regression.
	if out, err := exec.Command(bin, "-max-pct", "15", past, base).CombinedOutput(); err != nil {
		t.Fatalf("-max-pct 15: %v\n%s", err, out)
	}
	// Disjoint benchmark sets are an error, not a silent pass.
	if code := exitCode(exec.Command(bin, other, base).Run()); code != 1 {
		t.Fatalf("disjoint sets: exit %d, want 1", code)
	}
}

// TestCfixdCLIEndToEnd boots the real daemon on an ephemeral port,
// drives it over HTTP, and checks the SIGTERM drain contract.
func TestCfixdCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bin := buildTool(t, "cmd/cfixd")

	// Usage errors first: positional args and negative -j are refused.
	if code := exitCode(exec.Command(bin, "stray.c").Run()); code != 2 {
		t.Fatalf("positional arg: exit %d, want 2", code)
	}
	if code := exitCode(exec.Command(bin, "-j", "-2").Run()); code != 2 {
		t.Fatalf("-j -2: exit %d, want 2", code)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-cache-dir", t.TempDir())
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The startup line carries the resolved address; scripts parse it.
	lines := bufio.NewScanner(stderr)
	var base string
	for lines.Scan() {
		if _, after, ok := strings.Cut(lines.Text(), "listening on "); ok {
			base = after
			break
		}
	}
	if base == "" {
		t.Fatal("daemon never printed its listen address")
	}
	go func() { // keep draining so the daemon never blocks on stderr
		for lines.Scan() {
		}
	}()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"filename":"vuln.c","source":"void f(void){ char b[4]; strcpy(b, \"far too long for four\"); }"}`
	fix := func() (cached bool, source string) {
		resp, err := http.Post(base+"/v1/fix", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("fix: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fix: %d", resp.StatusCode)
		}
		var out struct {
			Source string `json:"source"`
			Cached bool   `json:"cached"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Cached, out.Source
	}
	cached1, src1 := fix()
	cached2, src2 := fix()
	if cached1 {
		t.Fatal("cold request claims cached")
	}
	if !cached2 {
		t.Fatal("repeated request not served from cache")
	}
	if src1 != src2 || !strings.Contains(src1, "g_strlcpy") {
		t.Fatalf("daemon outputs diverge:\ncold: %s\nwarm: %s", src1, src2)
	}

	// SIGTERM drains and exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v", err)
	}
}
