package corpus

import (
	"testing"

	"repro/internal/cparse"
	"repro/internal/slr"
	"repro/internal/str"
	"repro/internal/stralloc"
)

func TestProjectFileCountsMatchCalibration(t *testing.T) {
	for _, p := range Generate(0) {
		if len(p.Files) != p.Calibration.CFiles {
			t.Errorf("%s: files %d, want %d", p.Name, len(p.Files), p.Calibration.CFiles)
		}
	}
}

func TestAllFilesParse(t *testing.T) {
	for _, p := range Generate(2) {
		for _, f := range p.Files {
			if _, err := cparse.Parse(f.Name, f.Source); err != nil {
				t.Fatalf("%s/%s: %v\n%s", p.Name, f.Name, err, f.Source)
			}
		}
	}
}

// aggregateSLR runs SLR over every file of a project.
func aggregateSLR(t *testing.T, p Project) (candidates, applied int, perFn map[string][2]int) {
	t.Helper()
	perFn = make(map[string][2]int)
	for _, f := range p.Files {
		unit, err := cparse.Parse(f.Name, f.Source)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		res, err := slr.NewTransformer(unit).ApplyAll()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		candidates += res.Candidates()
		applied += res.AppliedCount()
		for _, s := range res.Sites {
			e := perFn[s.Function]
			if s.Applied {
				e[0]++
			}
			e[1]++
			perFn[s.Function] = e
		}
		// Transformed output must still parse (the paper: "no cases where
		// a replacement caused a compilation error").
		if _, err := cparse.Parse(f.Name+".out", res.NewSource); err != nil {
			t.Fatalf("%s transformed output does not parse: %v", f.Name, err)
		}
	}
	return candidates, applied, perFn
}

func TestTableVPerProject(t *testing.T) {
	totalCand, totalApplied := 0, 0
	for _, p := range Generate(0) {
		cand, applied, _ := aggregateSLR(t, p)
		if cand != p.Calibration.UnsafeCalls {
			t.Errorf("%s: unsafe calls %d, want %d", p.Name, cand, p.Calibration.UnsafeCalls)
		}
		if applied != p.Calibration.SLRTransformed {
			t.Errorf("%s: transformed %d, want %d", p.Name, applied, p.Calibration.SLRTransformed)
		}
		totalCand += cand
		totalApplied += applied
	}
	// Table V bottom line: 317 candidates, 259 transformed (81.7%).
	if totalCand != 317 {
		t.Errorf("total unsafe calls: %d, want 317", totalCand)
	}
	if totalApplied != 259 {
		t.Errorf("total transformed: %d, want 259", totalApplied)
	}
}

func TestFigure2PerFunction(t *testing.T) {
	perFn := make(map[string][2]int)
	for _, p := range Generate(0) {
		_, _, fnStats := aggregateSLR(t, p)
		for fn, e := range fnStats {
			agg := perFn[fn]
			agg[0] += e[0]
			agg[1] += e[1]
			perFn[fn] = agg
		}
	}
	want := map[string][2]int{
		"strcpy":   {28, 39},
		"strcat":   {8, 8},
		"sprintf":  {150, 153},
		"vsprintf": {1, 2},
		"memcpy":   {72, 115},
	}
	for fn, w := range want {
		got := perFn[fn]
		if got != w {
			t.Errorf("%s: got %d/%d, want %d/%d", fn, got[0], got[1], w[0], w[1])
		}
	}
}

func TestTableVIPerProject(t *testing.T) {
	totalCand, totalFail, totalApplied := 0, 0, 0
	for _, p := range Generate(0) {
		cand, fail, applied := 0, 0, 0
		for _, f := range p.Files {
			unit, err := cparse.Parse(f.Name, f.Source)
			if err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			res, err := str.NewTransformer(unit).ApplyAll()
			if err != nil {
				t.Fatalf("%s: %v", f.Name, err)
			}
			for _, v := range res.Vars {
				if !v.IsPointer {
					continue // Table VI counts char pointers
				}
				cand++
				if v.Applied {
					applied++
				} else if v.Reason == str.FailUserFnMayModify {
					fail++
				} else {
					t.Errorf("%s/%s var %s failed with unexpected reason %v (%s)",
						p.Name, f.Name, v.Name, v.Reason, v.Detail)
				}
			}
			out := res.NewSource
			if res.NeedsStralloc {
				out = stralloc.Header() + "\n" + out
			}
			if _, err := cparse.Parse(f.Name+".out", out); err != nil {
				t.Fatalf("%s STR output does not parse: %v", f.Name, err)
			}
		}
		if cand != p.Calibration.STRCandidates {
			t.Errorf("%s: STR candidates %d, want %d", p.Name, cand, p.Calibration.STRCandidates)
		}
		if fail != p.Calibration.STRFailed {
			t.Errorf("%s: STR interproc failures %d, want %d", p.Name, fail, p.Calibration.STRFailed)
		}
		if applied != p.Calibration.STRReplaced {
			t.Errorf("%s: STR replaced %d, want %d", p.Name, applied, p.Calibration.STRReplaced)
		}
		totalCand += cand
		totalFail += fail
		totalApplied += applied
	}
	// Table VI bottom line: 296 candidates, 59 interproc failures, 237
	// replaced (100% of those passing preconditions).
	if totalCand != 296 || totalFail != 59 || totalApplied != 237 {
		t.Errorf("totals: cand=%d fail=%d replaced=%d, want 296/59/237",
			totalCand, totalFail, totalApplied)
	}
}

func TestSLRFailureTaxonomy(t *testing.T) {
	// Section IV-B: exactly one aliased-struct case, one array-of-buffers
	// case, one ternary case; the rest are unreachable allocations.
	counts := make(map[string]int)
	for _, p := range Generate(0) {
		for _, f := range p.Files {
			unit, err := cparse.Parse(f.Name, f.Source)
			if err != nil {
				t.Fatal(err)
			}
			res, err := slr.NewTransformer(unit).ApplyAll()
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range res.Sites {
				if s.Failure != nil {
					counts[s.Failure.Reason.String()]++
				}
			}
		}
	}
	if counts["buffer is aliased"] != 1 {
		t.Errorf("aliased failures: %d, want 1 (%v)", counts["buffer is aliased"], counts)
	}
	if counts["buffer is an element of an array of buffers"] != 1 {
		t.Errorf("array-of-buffers failures: %d, want 1", counts["buffer is an element of an array of buffers"])
	}
	if counts["definition is a ternary expression with allocations"] != 1 {
		t.Errorf("ternary failures: %d, want 1", counts["definition is a ternary expression with allocations"])
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 58 {
		t.Errorf("total failures: %d, want 58 (%v)", total, counts)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(1)
	b := Generate(1)
	for i := range a {
		if len(a[i].Files) != len(b[i].Files) {
			t.Fatal("nondeterministic file counts")
		}
		for j := range a[i].Files {
			if a[i].Files[j].Source != b[i].Files[j].Source {
				t.Fatalf("nondeterministic source: %s/%s", a[i].Name, a[i].Files[j].Name)
			}
		}
	}
}
