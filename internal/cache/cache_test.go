package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyInjective(t *testing.T) {
	if Key("ab", "c") == Key("a", "bc") {
		t.Fatal("length prefixing failed: concatenation-equivalent parts collided")
	}
	if Key("x") != Key("x") {
		t.Fatal("key is not deterministic")
	}
	if len(Key("x")) != 64 {
		t.Fatalf("key length = %d, want 64 hex chars", len(Key("x")))
	}
}

// TestLRUEvictionAtByteBound fills the cache past its byte bound and
// checks that the least-recently-used entries — and only those — are
// gone, and that the accounted size never exceeds the bound.
func TestLRUEvictionAtByteBound(t *testing.T) {
	val := bytes.Repeat([]byte("v"), 1000)
	// Each entry costs 64 (key) + 1000 (val) + overhead; bound to ~4 entries.
	perEntry := int64(64 + len(val) + entryOverhead)
	c, err := New(4*perEntry, "")
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 8)
	for i := range keys {
		keys[i] = Key(fmt.Sprintf("entry-%d", i))
		c.Put(keys[i], val)
		if st := c.Stats(); st.Bytes > st.MaxBytes {
			t.Fatalf("after put %d: bytes %d exceed bound %d", i, st.Bytes, st.MaxBytes)
		}
	}
	st := c.Stats()
	if st.Entries != 4 {
		t.Fatalf("entries = %d, want 4", st.Entries)
	}
	if st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", st.Evictions)
	}
	for i, k := range keys {
		_, ok := c.Get(k)
		if want := i >= 4; ok != want {
			t.Errorf("entry %d cached = %v, want %v (LRU order violated)", i, ok, want)
		}
	}
}

func TestLRURecencyOrder(t *testing.T) {
	c, err := New(3*(64+1+entryOverhead), "")
	if err != nil {
		t.Fatal(err)
	}
	a, b, d, e := Key("a"), Key("b"), Key("d"), Key("e")
	c.Put(a, []byte("1"))
	c.Put(b, []byte("1"))
	c.Put(d, []byte("1"))
	c.Get(a) // refresh a; b becomes LRU
	c.Put(e, []byte("1"))
	if _, ok := c.Get(b); ok {
		t.Error("b should have been evicted as least recently used")
	}
	for _, k := range []string{a, d, e} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s unexpectedly evicted", k[:8])
		}
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c, err := New(256, "")
	if err != nil {
		t.Fatal(err)
	}
	k := Key("huge")
	c.Put(k, bytes.Repeat([]byte("x"), 1024))
	if _, ok := c.Get(k); ok {
		t.Fatal("entry larger than the whole bound must not be cached")
	}
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("oversized put leaked accounting: %+v", st)
	}
}

// TestSingleflightCollapse hammers one key from many goroutines; the
// computation must run exactly once, everyone must see its payload, and
// all but the computing caller must report a hit. Run under -race this
// also exercises the flight table's synchronization.
func TestSingleflightCollapse(t *testing.T) {
	c, err := New(1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	release := make(chan struct{})
	const goroutines = 16
	var (
		wg     sync.WaitGroup
		hits   atomic.Int64
		misses atomic.Int64
	)
	key := Key("shared")
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, hit, err := c.Do(key, func() ([]byte, bool, error) {
				calls.Add(1)
				<-release // hold the flight open so everyone piles on
				return []byte("result"), true, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if string(val) != "result" {
				t.Errorf("val = %q", val)
			}
			if hit {
				hits.Add(1)
			} else {
				misses.Add(1)
			}
		}()
	}
	// Wait until every goroutine is either computing or parked on the
	// flight, then release the computation.
	for {
		c.mu.Lock()
		parked := c.collapsed
		c.mu.Unlock()
		if parked == goroutines-1 {
			break
		}
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want 1", got)
	}
	if misses.Load() != 1 || hits.Load() != goroutines-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", hits.Load(), misses.Load(), goroutines-1)
	}
	// A later call is a plain memory hit.
	if _, hit, _ := c.Do(key, func() ([]byte, bool, error) {
		t.Error("computation re-ran after a successful flight")
		return nil, false, nil
	}); !hit {
		t.Fatal("post-flight call missed")
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c, err := New(1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	key := Key("failing")
	var calls int
	for i := 0; i < 2; i++ {
		_, hit, err := c.Do(key, func() ([]byte, bool, error) {
			calls++
			return nil, false, fmt.Errorf("boom %d", calls)
		})
		if err == nil || hit {
			t.Fatalf("run %d: err=%v hit=%v, want error miss", i, err, hit)
		}
	}
	if calls != 2 {
		t.Fatalf("failed computation cached: calls = %d, want 2", calls)
	}
}

func TestDoStoreFalseNotCached(t *testing.T) {
	c, err := New(1<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	key := Key("degraded")
	var calls int
	for i := 0; i < 2; i++ {
		val, hit, err := c.Do(key, func() ([]byte, bool, error) {
			calls++
			return []byte("partial"), false, nil
		})
		if err != nil || hit || string(val) != "partial" {
			t.Fatalf("run %d: val=%q hit=%v err=%v", i, val, hit, err)
		}
	}
	if calls != 2 {
		t.Fatalf("store=false result was cached: calls = %d, want 2", calls)
	}
}

// TestDiskRoundTrip persists entries in one cache instance and reads
// them back from a fresh instance over the same directory — the restart
// scenario `cfix -cache-dir` exists for.
func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("persist-me")
	payload := []byte(`{"report":"full fidelity"}`)
	c1.Put(key, payload)

	c2, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("persisted entry not found by a fresh cache instance")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("disk round-trip corrupted payload: %q != %q", got, payload)
	}
	st := c2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 {
		t.Fatalf("stats after disk hit: %+v", st)
	}
	// The disk hit promoted the entry to memory: a second Get must not
	// touch the disk again.
	if _, ok := c2.Get(key); !ok {
		t.Fatal("promoted entry missing from memory")
	}
	if st := c2.Stats(); st.DiskHits != 1 {
		t.Fatalf("second Get re-read disk: %+v", st)
	}
}

// TestDiskCorruptionRejected flips bytes in persisted entries and
// checks every corruption is detected, deleted, and surfaced as a miss —
// never as a wrong payload.
func TestDiskCorruptionRejected(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"flipped payload byte": func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		},
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"wrong magic": func(b []byte) []byte { return append([]byte("notacache "), b...) },
		"empty":       func([]byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := New(1<<20, dir)
			if err != nil {
				t.Fatal(err)
			}
			key := Key("victim-" + name)
			c.Put(key, []byte("precious result"))
			path := c.diskPath(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			fresh, err := New(1<<20, dir)
			if err != nil {
				t.Fatal(err)
			}
			if val, ok := fresh.Get(key); ok {
				t.Fatalf("corrupted entry served: %q", val)
			}
			if st := fresh.Stats(); st.DiskRejects != 1 {
				t.Fatalf("corruption not counted: %+v", st)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("corrupted entry not deleted (err=%v)", err)
			}
		})
	}
}

// TestDiskCorruptionConcurrentReaders is the fleet-shaped version of
// the corruption test: many readers race onto one corrupted shard file
// at once (a warm-restart thundering herd over a bad disk block). Every
// reader must get the freshly recomputed, byte-exact payload — never
// the corrupt or partial disk bytes — the bad file must be deleted and
// replaced with a valid one, and the whole dance must be race-clean.
func TestDiskCorruptionConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	writer, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("herd-victim")
	good := []byte(`{"result":"the one true payload","n":12345}`)
	writer.Put(key, good)

	// Corrupt the persisted payload in place: valid header, bad bytes.
	path := writer.diskPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-4] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A cold cache (empty memory tier) sends every reader to disk.
	c, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	const readers = 32
	var computations atomic.Int64
	vals := make([][]byte, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			val, _, err := c.Do(key, func() ([]byte, bool, error) {
				computations.Add(1)
				return append([]byte(nil), good...), true, nil
			})
			if err != nil {
				t.Errorf("reader %d: %v", g, err)
				return
			}
			vals[g] = val
		}(g)
	}
	wg.Wait()

	for g, val := range vals {
		if !bytes.Equal(val, good) {
			t.Fatalf("reader %d got %q, want the recomputed payload %q", g, val, good)
		}
	}
	st := c.Stats()
	if st.DiskRejects == 0 {
		t.Fatalf("the corrupted shard was never rejected: %+v", st)
	}
	if computations.Load() == 0 {
		t.Fatal("no reader recomputed; someone served the corrupt entry")
	}

	// The recompute must have replaced the bad file with a valid one:
	// a third cold cache reads it back clean, without a reject.
	reread, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	val, ok := reread.Get(key)
	if !ok || !bytes.Equal(val, good) {
		t.Fatalf("disk entry not repaired: ok=%v val=%q", ok, val)
	}
	if st := reread.Stats(); st.DiskRejects != 0 || st.DiskHits != 1 {
		t.Fatalf("repaired entry should load cleanly from disk: %+v", st)
	}
}

// TestDiskCorruptionConcurrentGets races plain Gets (no computation to
// fall back on) over a corrupted shard: every one must miss — a
// checksum failure is a miss, never a short or corrupt payload.
func TestDiskCorruptionConcurrentGets(t *testing.T) {
	dir := t.TempDir()
	writer, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("get-victim")
	writer.Put(key, []byte("payload payload payload"))
	path := writer.diskPath(key)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if val, ok := c.Get(key); ok {
				t.Errorf("reader %d: truncated entry served: %q", g, val)
			}
		}(g)
	}
	wg.Wait()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("truncated entry not deleted (err=%v)", err)
	}
	if st := c.Stats(); st.DiskRejects == 0 {
		t.Errorf("no reject counted: %+v", st)
	}
}

func TestDiskLayoutSharded(t *testing.T) {
	dir := t.TempDir()
	c, err := New(1<<20, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("sharded")
	c.Put(key, []byte("x"))
	want := filepath.Join(dir, key[:2], key+".cfe")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at sharded path %s: %v", want, err)
	}
}

// TestConcurrentMixedUse drives puts, gets and flights from many
// goroutines to give the race detector surface area.
func TestConcurrentMixedUse(t *testing.T) {
	c, err := New(8<<10, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := Key(fmt.Sprintf("k%d", i%17))
				switch i % 3 {
				case 0:
					c.Put(key, []byte(strings.Repeat("v", i%97)))
				case 1:
					c.Get(key)
				default:
					c.Do(key, func() ([]byte, bool, error) {
						return []byte("computed"), true, nil
					})
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > st.MaxBytes {
		t.Fatalf("byte bound violated: %+v", st)
	}
}
