package cfix

import (
	"time"

	"repro/internal/core"
)

// This file defines the wire types of the cfixd HTTP/JSON API
// (internal/server, cmd/cfixd): client-friendly request and response
// shapes that downstream tools can import without touching internal
// packages. The field encodings are stable; additions are
// backwards-compatible.

// RequestOptions is the JSON shape of the per-request knobs, mirroring
// Options. The zero value requests the default full pipeline in batch
// mode.
type RequestOptions struct {
	// DisableSLR / DisableSTR switch off one transformation.
	DisableSLR bool `json:"disable_slr,omitempty"`
	DisableSTR bool `json:"disable_str,omitempty"`
	// SelectOffset, when present, restricts SLR to the call expression
	// covering this byte offset (the case-by-case workflow); absent
	// means batch mode.
	SelectOffset *int `json:"select_offset,omitempty"`
	// EmitSupport prepends the stralloc library and glib prototypes so
	// the response source is a self-contained translation unit.
	EmitSupport bool `json:"emit_support,omitempty"`
	// Lint additionally runs the static overflow oracle and attaches
	// findings to the fix response.
	Lint bool `json:"lint,omitempty"`
	// Checks selects which lint oracles run: "buf", "int", "all", or a
	// comma list. Empty means "buf".
	Checks string `json:"checks,omitempty"`
	// Backend names the safe-function dialect SLR rewrites to: "glib",
	// "bsd", or "c11k". Empty selects the server's configured default
	// (glib unless cfixd ran with -backend); unknown names fail the
	// request with 400.
	Backend string `json:"backend,omitempty"`
	// TimeoutMs bounds the request's processing in milliseconds. The
	// server clamps it to its configured maximum and applies its default
	// when absent.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Budget bounds every fixpoint solver's iterations; exhaustion
	// degrades conservatively and is reported in the response's
	// degraded list, never silently.
	Budget int `json:"budget,omitempty"`
	// KeepGoing returns partial results instead of an error when a
	// later pipeline stage fails.
	KeepGoing bool `json:"keep_going,omitempty"`
}

// ToOptions converts the wire options to library Options. The timeout
// is carried over verbatim; servers clamp it before calling.
func (o RequestOptions) ToOptions() Options {
	opts := Options{
		DisableSLR:  o.DisableSLR,
		DisableSTR:  o.DisableSTR,
		SelectAll:   o.SelectOffset == nil,
		EmitSupport: o.EmitSupport,
		Lint:        o.Lint,
		Checks:      o.Checks,
		Backend:     o.Backend,
		Timeout:     time.Duration(o.TimeoutMs) * time.Millisecond,
		Budget:      o.Budget,
		KeepGoing:   o.KeepGoing,
	}
	if o.SelectOffset != nil {
		opts.SelectOffset = *o.SelectOffset
	}
	return opts
}

// RequestKey derives the content-addressed fingerprint of one service
// request — the same key the result cache stores its outcome under
// (sha256 over source text, options fingerprint, diagnostic filename).
// kind is "fix" or "lint". The fleet router consistent-hashes by this
// key, so identical requests always land on the shard whose cache
// already holds (or is computing) their result.
func RequestKey(kind, filename, source string, o RequestOptions) string {
	return core.CacheKey(kind, filename, source, coreOptions(o.ToOptions()))
}

// FixRequest asks the service to transform one preprocessed C
// translation unit (POST /v1/fix).
type FixRequest struct {
	// Filename is used in diagnostics only; it defaults to "input.c".
	Filename string         `json:"filename,omitempty"`
	Source   string         `json:"source"`
	Options  RequestOptions `json:"options,omitempty"`
}

// FixResponse is the service's answer to a FixRequest. Source is
// byte-identical to what a one-shot `cfix` run over the same input and
// options would write.
type FixResponse struct {
	Filename string `json:"filename,omitempty"`
	// Source is the transformed translation unit.
	Source string `json:"source"`
	// Changed reports whether any edit was applied.
	Changed bool `json:"changed"`
	// Summary is the human-readable per-site/per-variable change log.
	Summary string `json:"summary,omitempty"`
	// SLRApplied/SLRCandidates and STRApplied/STRCandidates count the
	// transformed and candidate sites/variables.
	SLRApplied    int `json:"slr_applied"`
	SLRCandidates int `json:"slr_candidates"`
	STRApplied    int `json:"str_applied"`
	STRCandidates int `json:"str_candidates"`
	// Backend is the canonical name of the repair dialect the fix
	// targeted ("glib" for the default).
	Backend string `json:"backend,omitempty"`
	// NeedsGlib / NeedsStralloc describe link-time requirements when
	// support code was not emitted inline (NeedsGlib means "needs the
	// backend's library"; the field name predates pluggable backends).
	NeedsGlib     bool `json:"needs_glib,omitempty"`
	NeedsStralloc bool `json:"needs_stralloc,omitempty"`
	// Findings holds the static overflow oracle's verdicts (set when
	// Options.Lint was true).
	Findings []FindingJSON `json:"findings,omitempty"`
	// Degraded explains every way this result is weaker than a full
	// run; empty for a full-fidelity report.
	Degraded []string `json:"degraded,omitempty"`
	// Cached reports that the result was served from the
	// content-addressed result cache.
	Cached bool `json:"cached"`
}

// NewFixResponse renders a report in the service's wire shape.
func NewFixResponse(filename string, rep *Report) FixResponse {
	resp := FixResponse{
		Filename:      filename,
		Source:        rep.Source,
		Changed:       rep.Changed(),
		Summary:       rep.Summary(),
		Backend:       rep.Backend,
		NeedsGlib:     rep.NeedsGlib,
		NeedsStralloc: rep.NeedsStralloc,
		Findings:      NewFindingsJSON(rep.Findings),
		Degraded:      rep.Degraded,
		Cached:        rep.Cached,
	}
	if rep.SLR != nil {
		resp.SLRApplied, resp.SLRCandidates = rep.SLR.AppliedCount(), rep.SLR.Candidates()
	}
	if rep.STR != nil {
		resp.STRApplied, resp.STRCandidates = rep.STR.AppliedCount(), rep.STR.Candidates()
	}
	return resp
}

// LintRequest asks the service to statically diagnose one translation
// unit without transforming it (POST /v1/lint).
type LintRequest struct {
	Filename string         `json:"filename,omitempty"`
	Source   string         `json:"source"`
	Options  RequestOptions `json:"options,omitempty"`
}

// LintResponse is the service's answer to a LintRequest.
type LintResponse struct {
	Filename string        `json:"filename,omitempty"`
	Findings []FindingJSON `json:"findings"`
	// Definite reports whether any finding is a definite overflow — the
	// same signal as `cfix -lint`'s exit code 3.
	Definite bool `json:"definite"`
	// Degraded lists the analyses that had to degrade to conservative
	// results; a non-empty list qualifies the findings.
	Degraded []string `json:"degraded,omitempty"`
	Cached   bool     `json:"cached"`
}

// NewLintResponse renders a lint report in the service's wire shape.
func NewLintResponse(filename string, rep *LintReport) LintResponse {
	resp := LintResponse{
		Filename: filename,
		// A clean file answers with an explicit empty list, not null:
		// "no findings" is the result, not a missing field.
		Findings: []FindingJSON{},
		Degraded: rep.Degraded,
		Cached:   rep.Cached,
	}
	if fs := NewFindingsJSON(rep.Findings); fs != nil {
		resp.Findings = fs
	}
	for _, f := range rep.Findings {
		if f.Severity == SevDefinite {
			resp.Definite = true
		}
	}
	return resp
}

// BatchFile names one translation unit inside a batch request.
type BatchFile struct {
	Filename string `json:"filename"`
	Source   string `json:"source"`
}

// BatchRequest processes many translation units in one request through
// the server's worker pool (POST /v1/batch). With Lint true the files
// are statically analyzed instead of transformed.
type BatchRequest struct {
	Files   []BatchFile    `json:"files"`
	Options RequestOptions `json:"options,omitempty"`
	Lint    bool           `json:"lint,omitempty"`
}

// BatchResult is the per-file outcome inside a BatchResponse: exactly
// one of Error, Fix, or Lint is set.
type BatchResult struct {
	Filename string `json:"filename"`
	// Error carries the file's failure (parse error, timeout, contained
	// panic) without failing its batch-mates.
	Error string        `json:"error,omitempty"`
	Fix   *FixResponse  `json:"fix,omitempty"`
	Lint  *LintResponse `json:"lint,omitempty"`
}

// BatchResponse pairs every batch input with its outcome, in input
// order.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// FindingJSON is the stable JSON shape of one static overflow finding —
// the same lines `cfix -lint -json` streams.
type FindingJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	CWE      int    `json:"cwe"`
	CWEName  string `json:"cwe_name"`
	Severity string `json:"severity"`
	Function string `json:"function"`
	Object   string `json:"object,omitempty"`
	Message  string `json:"message"`
	Fix      string `json:"fix"`
	// Guard is the suggested (never applied) IntRepair-style
	// precondition check attached to integer-overflow findings.
	Guard    string   `json:"guard,omitempty"`
	Contexts []string `json:"contexts,omitempty"`
	Degraded bool     `json:"degraded,omitempty"`
}

// NewFindingJSON renders one finding in the wire shape.
func NewFindingJSON(f Finding) FindingJSON {
	return FindingJSON{
		File:     f.Pos.File,
		Line:     f.Pos.Line,
		Col:      f.Pos.Col,
		CWE:      f.CWE,
		CWEName:  CWEName(f.CWE),
		Severity: f.Severity.String(),
		Function: f.Function,
		Object:   f.Object,
		Message:  f.Msg,
		Fix:      f.SuggestedFix,
		Guard:    f.Guard,
		Contexts: f.Contexts,
		Degraded: f.Degraded,
	}
}

// NewFindingsJSON renders a finding slice in the wire shape (nil for
// an empty slice, keeping `"findings"` omitted rather than `[]` in
// responses that had none).
func NewFindingsJSON(fs []Finding) []FindingJSON {
	if len(fs) == 0 {
		return nil
	}
	out := make([]FindingJSON, len(fs))
	for i, f := range fs {
		out[i] = NewFindingJSON(f)
	}
	return out
}
