// Package repro_test hosts the benchmark harness: one benchmark per table
// and figure of the paper's evaluation (Section IV), plus component and
// ablation benchmarks for the design choices DESIGN.md calls out. Run:
//
//	go test -bench=. -benchmem
//
// The Table/Figure benchmarks re-execute the full experiment pipeline and
// report the headline quantities via b.ReportMetric, so a bench run is
// also a reproduction run (see EXPERIMENTS.md for the recorded numbers).
package repro_test

import (
	"fmt"
	"strings"
	"testing"

	"runtime"

	"repro/internal/analysis"
	"repro/internal/cinterp"
	"repro/internal/corpus"
	"repro/internal/cparse"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/pointsto"
	"repro/internal/samate"
	"repro/internal/typecheck"
	"repro/pkg/cfix"
)

// --- Table and figure benchmarks -------------------------------------------

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.FormatTableI(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.FormatTableII(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTableIII runs the SAMATE pipeline on a 1-in-20 sample per
// iteration (the full 4,505-program corpus is the -stride 1 run of
// cmd/experiments; it verifies in ~8s).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTableIII(experiments.TableIIIOptions{Stride: 20})
		if err != nil {
			b.Fatal(err)
		}
		var progs, fixed, preserved int
		for _, r := range rows {
			progs += r.Programs
			fixed += r.Fixed
			preserved += r.Preserved
		}
		if fixed != progs || preserved != progs {
			b.Fatalf("fixed %d / preserved %d of %d", fixed, preserved, progs)
		}
		b.ReportMetric(float64(progs), "programs/op")
	}
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.RunTableIV(0)
		files := 0
		for _, r := range rows {
			files += r.CFiles
		}
		if files != 645 {
			b.Fatalf("files: %d", files)
		}
	}
}

func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableV()
		if err != nil {
			b.Fatal(err)
		}
		var u, tr int
		for _, r := range res.Rows {
			u += r.Unsafe
			tr += r.Transformed
		}
		if u != 317 || tr != 259 {
			b.Fatalf("%d/%d", tr, u)
		}
		b.ReportMetric(100*float64(tr)/float64(u), "%transformed")
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTableV()
		if err != nil {
			b.Fatal(err)
		}
		if len(res.PerFunc) != 5 {
			b.Fatalf("functions: %d", len(res.PerFunc))
		}
		for _, f := range res.PerFunc {
			b.ReportMetric(float64(f.Transformed)/float64(f.Total)*100, f.Function+"%")
		}
	}
}

func BenchmarkTableVI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTableVI()
		if err != nil {
			b.Fatal(err)
		}
		var c1, c2 int
		for _, r := range rows {
			c1 += r.Identified
			c2 += r.Replaced
		}
		if c1 != 296 || c2 != 237 {
			b.Fatalf("%d/%d", c2, c1)
		}
		b.ReportMetric(100*float64(c2)/float64(c1), "%replaced")
	}
}

func BenchmarkRQ3Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunRQ3(50)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Variant != "original" {
				b.ReportMetric(r.OverheadPct, r.Workload+"_"+r.Variant+"_%over")
			}
		}
	}
}

func BenchmarkCVECaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunCVE()
		if err != nil {
			b.Fatal(err)
		}
		if !r.Fixed || !r.Preserved {
			b.Fatal("case study regressed")
		}
	}
}

// --- Component benchmarks ----------------------------------------------------

// corpusSource concatenates a few corpus files into one large unit for
// frontend benchmarks.
func corpusSource(files int) string {
	var sb strings.Builder
	p, _ := corpus.ProjectByName("gmp", 4)
	for i := 0; i < files && i < len(p.Files); i++ {
		sb.WriteString(p.Files[i].Source)
	}
	return sb.String()
}

func BenchmarkParse(b *testing.B) {
	src := corpusSource(12)
	lines := strings.Count(src, "\n")
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cparse.Parse("bench.c", src); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(lines), "lines/op")
}

func BenchmarkTypecheck(b *testing.B) {
	src := corpusSource(12)
	unit, err := cparse.Parse("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		typecheck.Check(unit)
	}
}

func BenchmarkSLRTransform(b *testing.B) {
	p, _ := corpus.ProjectByName("libtiff", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range p.Files[:10] {
			v := &harness.Verdict{}
			if _, err := harness.Transform(f.Name, f.Source, harness.Options{SkipSTR: true}, v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSTRTransform(b *testing.B) {
	p, _ := corpus.ProjectByName("libtiff", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range p.Files[:10] {
			v := &harness.Verdict{}
			if _, err := harness.Transform(f.Name, f.Source, harness.Options{SkipSLR: true}, v); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkInterpreter(b *testing.B) {
	src := `
int main(void) {
    char buf[64];
    int i;
    unsigned long acc = 0;
    for (i = 0; i < 1000; i++) {
        buf[i % 64] = i;
        acc = acc * 31 + buf[i % 64];
    }
    printf("%lu\n", acc);
    return 0;
}
`
	unit, err := cparse.Parse("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	typecheck.Check(unit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in, err := cinterp.New(unit, cinterp.Limits{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.Run("main"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks -------------------------------------------------------

// pointerChainSource builds a unit with long copy chains and cycles to
// stress the points-to solver.
func pointerChainSource(chains, length int) string {
	var sb strings.Builder
	sb.WriteString("void f(void) {\n    int x;\n")
	for c := 0; c < chains; c++ {
		for i := 0; i <= length; i++ {
			fmt.Fprintf(&sb, "    int *c%dp%d;\n", c, i)
		}
	}
	for c := 0; c < chains; c++ {
		fmt.Fprintf(&sb, "    c%dp0 = &x;\n", c)
		for i := 1; i <= length; i++ {
			fmt.Fprintf(&sb, "    c%dp%d = c%dp%d;\n", c, i, c, i-1)
		}
		// Close a cycle.
		fmt.Fprintf(&sb, "    c%dp0 = c%dp%d;\n", c, c, length)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func benchPointsTo(b *testing.B, opts pointsto.Options) {
	src := pointerChainSource(20, 40)
	unit, err := cparse.Parse("chains.c", src)
	if err != nil {
		b.Fatal(err)
	}
	typecheck.Check(unit)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := pointsto.Analyze(unit, opts)
		if len(g.Nodes) == 0 {
			b.Fatal("no nodes")
		}
	}
}

// BenchmarkAblationPointsToSequential vs Parallel vs NoCycleElim compare
// the solver configurations (DESIGN.md Section 6): the paper uses
// Hardekopf's algorithm with Galois-style parallel graph rewriting.
func BenchmarkAblationPointsToSequential(b *testing.B) {
	benchPointsTo(b, pointsto.Options{})
}

func BenchmarkAblationPointsToParallel(b *testing.B) {
	benchPointsTo(b, pointsto.Options{Parallel: true})
}

func BenchmarkAblationPointsToNoCycleElim(b *testing.B) {
	benchPointsTo(b, pointsto.Options{DisableCycleElimination: true})
}

// ablationFixRate measures how many sampled SAMATE programs each
// transformation fixes alone — quantifying the paper's claim that the two
// transformations are both necessary to cover all overflow classes.
func ablationFixRate(b *testing.B, opts harness.Options) float64 {
	fixed, total := 0, 0
	for _, cwe := range samate.CWEs {
		progs := samate.Generate(cwe, samate.TableIIICounts[cwe])
		for i := 0; i < len(progs); i += 40 {
			p := progs[i]
			var stdin []string
			if p.CWE == 242 {
				long := strings.Repeat("Q", 120)
				stdin = []string{long, long}
			}
			o := opts
			o.Stdin = stdin
			v, err := harness.Verify(p.ID, p.Source, p.ID+"_good", p.ID+"_bad", o)
			if err != nil {
				b.Fatal(err)
			}
			total++
			if v.Fixed {
				fixed++
			}
		}
	}
	return 100 * float64(fixed) / float64(total)
}

func BenchmarkAblationSLROnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rate := ablationFixRate(b, harness.Options{SkipSTR: true})
		b.ReportMetric(rate, "%fixed")
		if rate >= 100 {
			b.Fatal("SLR alone should not fix every class (pointer-arithmetic flaws need STR)")
		}
	}
}

func BenchmarkAblationSTROnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rate := ablationFixRate(b, harness.Options{SkipSLR: true})
		b.ReportMetric(rate, "%fixed")
	}
}

func BenchmarkAblationBothTransforms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rate := ablationFixRate(b, harness.Options{})
		b.ReportMetric(rate, "%fixed")
		if rate < 100 {
			b.Fatalf("both transformations must fix all sampled programs, got %.1f%%", rate)
		}
	}
}

// BenchmarkScaleTransform runs both transformations over the GMP-like
// project inflated with filler (~100+ KLOC total) and reports throughput —
// the scalability claim behind the paper's "2.3 MLOC processed".
func BenchmarkScaleTransform(b *testing.B) {
	p, ok := corpus.ProjectByName("gmp", 30)
	if !ok {
		b.Fatal("project missing")
	}
	totalLines := 0
	for _, f := range p.Files {
		totalLines += f.LOC()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range p.Files {
			if _, err := harness.Transform(f.Name, f.Source, harness.Options{}, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(totalLines)/1000, "KLOC/op")
}

// --- Batch pipeline benchmarks ----------------------------------------------

// samateInputs samples the SAMATE corpus into batch inputs for the
// snapshot/batch benchmarks (~200 programs at stride covering every CWE).
func samateInputs(n int) []cfix.FileInput {
	var inputs []cfix.FileInput
	per := n/len(samate.CWEs) + 1
	for _, cwe := range samate.CWEs {
		for _, p := range samate.Generate(cwe, per) {
			inputs = append(inputs, cfix.FileInput{Filename: p.ID + ".c", Source: p.Source})
		}
	}
	return inputs
}

// BenchmarkFixSingleVsSnapshot compares the historical lint-then-fix flow
// (two separate entry points, two parses) against the snapshot-backed Fix
// with Lint enabled (one parse, shared facts) on the same program.
func BenchmarkFixSingleVsSnapshot(b *testing.B) {
	p := samate.Generate(122, 1)[0]
	b.Run("separate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cfix.Analyze(p.ID+".c", p.Source); err != nil {
				b.Fatal(err)
			}
			if _, err := cfix.Fix(p.ID+".c", p.Source, cfix.Options{SelectAll: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := cfix.Fix(p.ID+".c", p.Source, cfix.Options{SelectAll: true, Lint: true})
			if err != nil {
				b.Fatal(err)
			}
			_ = rep.Findings
		}
	})
}

// BenchmarkFixAllParallel measures the batch pipeline over ~200 SAMATE
// programs: one worker (sequential baseline) vs one worker per CPU. The
// acceptance claim is >= 2x on >= 4 cores.
func BenchmarkFixAllParallel(b *testing.B) {
	inputs := samateInputs(200)
	opts := cfix.Options{SelectAll: true, Lint: true}
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				outs := cfix.FixAll(inputs, opts, workers)
				for _, out := range outs {
					if out.Err != nil {
						b.Fatal(out.Err)
					}
				}
			}
			b.ReportMetric(float64(len(inputs)), "programs/op")
		})
	}
}

// --- Per-stage and observability benchmarks ----------------------------------

// stageProgram returns one representative SAMATE heap-overflow program:
// it exercises every pipeline stage the tracer names — parse, the full
// analysis stack, the SLR clamp, and the STR rewrite.
func stageProgram() (string, string) {
	p := samate.Generate(122, 1)[0]
	return p.ID + ".c", p.Source
}

// BenchmarkPipelineStages isolates the stages the tracer measures, so a
// regression localized by `cfix -stage-stats` can be bisected against a
// stable per-stage baseline (`make bench` records 3 samples of each).
func BenchmarkPipelineStages(b *testing.B) {
	name, src := stageProgram()

	b.Run("parse-only", func(b *testing.B) {
		b.SetBytes(int64(len(src)))
		for i := 0; i < b.N; i++ {
			if _, err := cparse.Parse(name, src); err != nil {
				b.Fatal(err)
			}
		}
	})

	// snapshot-warm measures the memoization layer itself: every fact is
	// already computed, so an iteration costs only the accessor overhead
	// the snapshot adds on the hot (already-solved) path.
	b.Run("snapshot-warm", func(b *testing.B) {
		unit, err := cparse.Parse(name, src)
		if err != nil {
			b.Fatal(err)
		}
		snap := analysis.New(unit)
		if len(snap.Findings()) == 0 { // forces the whole analysis stack once
			b.Fatal("no findings on the overflow program")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			snap.PointsTo()
			snap.Aliases()
			snap.CallGraph()
			snap.MayModify()
			if len(snap.Findings()) == 0 {
				b.Fatal("warm findings lost")
			}
		}
	})

	b.Run("slr-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cfix.Fix(name, src, cfix.Options{SelectAll: true, DisableSTR: true}); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("str-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cfix.Fix(name, src, cfix.Options{SelectAll: true, DisableSLR: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkObsOverhead is the observability overhead gate: the full fix
// pipeline with NO tracer attached. CI runs it twice — default build and
// `-tags cfix_notrace` (tracing compiled out entirely) — and
// cmd/benchguard fails the build when the default build is more than 2%
// slower: the nil-tracer fast path must stay free.
func BenchmarkObsOverhead(b *testing.B) {
	name, src := stageProgram()
	opts := cfix.Options{SelectAll: true, Lint: true}
	for i := 0; i < b.N; i++ {
		if _, err := cfix.Fix(name, src, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTraceAttached measures the same pipeline with a live tracer
// (created per iteration, as one CLI run would), quantifying the opt-in
// cost of -trace/-stage-stats next to BenchmarkObsOverhead's baseline.
func BenchmarkTraceAttached(b *testing.B) {
	if !cfix.TracingEnabled() {
		b.Skip("tracing compiled out (cfix_notrace)")
	}
	name, src := stageProgram()
	for i := 0; i < b.N; i++ {
		opts := cfix.Options{SelectAll: true, Lint: true, Tracer: cfix.NewTracer()}
		if _, err := cfix.Fix(name, src, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAliasPrecision quantifies the paper's §IV-B precision
// speculation: field-sensitive aliasing recovers the one aggregate-model
// failure at extra analysis cost.
func BenchmarkAblationAliasPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAliasPrecisionAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.AggregateTransformed), "aggregate_sites")
		b.ReportMetric(float64(r.FieldSensTransformed), "fieldsens_sites")
	}
}
