package core

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cache"
)

func newTestCache(t *testing.T) *cache.Cache {
	t.Helper()
	c, err := cache.New(16<<20, "")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFixCachedHitSkipsParse is the acceptance property of the result
// cache: a repeated identical request is a hit that performs zero
// parses (and therefore zero solves), and its report is byte-identical
// to the computed one.
func TestFixCachedHitSkipsParse(t *testing.T) {
	c := newTestCache(t)
	opts := Options{SelectOffset: -1, Lint: true, Cache: c}

	cold, hit, err := FixCached(context.Background(), "cached.c", overflowing, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit || cold.Cached {
		t.Fatal("first request must be a miss")
	}

	var warm *Report
	delta := parseDelta(func() {
		var hit bool
		warm, hit, err = FixCached(context.Background(), "cached.c", overflowing, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !hit || !warm.Cached {
			t.Fatal("second identical request must be a cache hit")
		}
	})
	if delta != 0 {
		t.Fatalf("cache hit parsed %d times, want 0", delta)
	}
	if warm.Source != cold.Source {
		t.Fatalf("cached Source differs from computed Source:\n%s\n---\n%s", warm.Source, cold.Source)
	}
	if warm.Summary() != cold.Summary() {
		t.Fatalf("cached Summary differs:\n%s\n---\n%s", warm.Summary(), cold.Summary())
	}
	if !reflect.DeepEqual(warm.Findings, cold.Findings) {
		t.Fatal("cached findings differ from computed findings")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestFixViaOptionsCache checks the Options.Cache plumbing used by the
// batch pipeline and the CLI: plain Fix calls with a cache behave like
// FixCached.
func TestFixViaOptionsCache(t *testing.T) {
	opts := Options{SelectOffset: -1, Cache: newTestCache(t)}
	first, err := Fix(context.Background(), "p.c", overflowing, opts)
	if err != nil {
		t.Fatal(err)
	}
	var second *Report
	delta := parseDelta(func() {
		second, err = Fix(context.Background(), "p.c", overflowing, opts)
		if err != nil {
			t.Fatal(err)
		}
	})
	if delta != 0 {
		t.Fatalf("second Fix parsed %d times, want 0", delta)
	}
	if !second.Cached || second.Source != first.Source {
		t.Fatalf("second Fix: cached=%v, sources equal=%v", second.Cached, second.Source == first.Source)
	}
}

// TestFixCacheKeySeparatesRequests: changing the options, the filename,
// or the source must miss — the cache may never trade results between
// semantically different requests.
func TestFixCacheKeySeparatesRequests(t *testing.T) {
	c := newTestCache(t)
	base := Options{SelectOffset: -1, Cache: c}
	if _, hit, err := FixCached(context.Background(), "a.c", overflowing, base); err != nil || hit {
		t.Fatalf("seed request: hit=%v err=%v", hit, err)
	}
	variants := []struct {
		name     string
		filename string
		source   string
		opts     Options
	}{
		{"different options", "a.c", overflowing, Options{SelectOffset: -1, DisableSTR: true, Cache: c}},
		{"different filename", "b.c", overflowing, base},
		{"different source", "a.c", overflowing + "\n", base},
		{"different budget", "a.c", overflowing, Options{SelectOffset: -1, Budget: 1 << 20, Cache: c}},
	}
	for _, v := range variants {
		_, hit, err := FixCached(context.Background(), v.filename, v.source, v.opts)
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if hit {
			t.Errorf("%s: false cache hit", v.name)
		}
	}
}

// TestDegradedReportsNotCached: a budget-degraded report must be
// recomputed every time — the cache only remembers full-fidelity runs.
func TestDegradedReportsNotCached(t *testing.T) {
	defer analysis.InjectFault("deg.c", analysis.Fault{Budget: 1})()
	opts := Options{SelectOffset: -1, Lint: true, DisableSLR: true, DisableSTR: true,
		Cache: newTestCache(t)}
	for i := 0; i < 2; i++ {
		rep, hit, err := FixCached(context.Background(), "deg.c", overflowing, opts)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if len(rep.Degraded) == 0 {
			t.Fatalf("run %d: expected a degraded report", i)
		}
		if hit || rep.Cached {
			t.Fatalf("run %d: degraded report served from cache", i)
		}
	}
}

// TestAnalyzeReportDegradations: the lint path must surface snapshot
// degradations alongside the findings (they were previously dropped).
func TestAnalyzeReportDegradations(t *testing.T) {
	defer analysis.InjectFault("lintdeg.c", analysis.Fault{Budget: 1})()
	rep, err := AnalyzeReport(context.Background(), "lintdeg.c", overflowing, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Degraded) == 0 {
		t.Fatal("AnalyzeReport dropped the degradation notes")
	}
}

// TestAnalyzeCachedRoundTrip: lint results cache like fix results, and
// batch lint carries the cache marker.
func TestAnalyzeCachedRoundTrip(t *testing.T) {
	opts := Options{Cache: newTestCache(t)}
	cold, hit, err := AnalyzeCached(context.Background(), "l.c", overflowing, opts)
	if err != nil || hit {
		t.Fatalf("cold: hit=%v err=%v", hit, err)
	}
	var warm *LintReport
	delta := parseDelta(func() {
		warm, hit, err = AnalyzeCached(context.Background(), "l.c", overflowing, opts)
		if err != nil {
			t.Fatal(err)
		}
	})
	if !hit || !warm.Cached || delta != 0 {
		t.Fatalf("warm: hit=%v cached=%v parses=%d", hit, warm.Cached, delta)
	}
	if !reflect.DeepEqual(warm.Findings, cold.Findings) {
		t.Fatal("cached lint findings differ")
	}

	outs := AnalyzeAll(context.Background(), []FileInput{{Filename: "l.c", Source: overflowing}}, opts, 1)
	if !outs[0].Cached || outs[0].Err != nil {
		t.Fatalf("batch lint after warmup: cached=%v err=%v", outs[0].Cached, outs[0].Err)
	}
	if !reflect.DeepEqual(outs[0].Findings, cold.Findings) {
		t.Fatal("batch lint findings differ from direct analysis")
	}
}

// TestFixAllSharedCacheEquivalence: a batch re-run over an unchanged
// corpus is answered entirely from the cache with byte-identical
// outputs — the `cfix -cache-dir` maintenance scenario.
func TestFixAllSharedCacheEquivalence(t *testing.T) {
	files := []FileInput{
		{Filename: "one.c", Source: overflowing},
		{Filename: "two.c", Source: sample},
		{Filename: "three.c", Source: overflowing}, // same content, different name
	}
	opts := Options{SelectOffset: -1, Cache: newTestCache(t)}
	first := FixAll(context.Background(), files, opts, 2)
	var second []FileOutput
	delta := parseDelta(func() {
		second = FixAll(context.Background(), files, opts, 2)
	})
	if delta != 0 {
		t.Fatalf("warm batch re-run parsed %d times, want 0", delta)
	}
	for i := range files {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("file %d: errs %v / %v", i, first[i].Err, second[i].Err)
		}
		if !second[i].Report.Cached {
			t.Errorf("file %d not served from cache on re-run", i)
		}
		if first[i].Report.Source != second[i].Report.Source {
			t.Errorf("file %d: cached output differs from computed output", i)
		}
	}
}

// TestFixCachedConcurrentSingleflight: concurrent identical requests
// collapse into one computation and all observe the same bytes.
func TestFixCachedConcurrentSingleflight(t *testing.T) {
	opts := Options{SelectOffset: -1, Cache: newTestCache(t)}
	const goroutines = 8
	var wg sync.WaitGroup
	sources := make([]string, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, _, err := FixCached(context.Background(), "conc.c", overflowing, opts)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			sources[i] = rep.Source
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if sources[i] != sources[0] {
			t.Fatalf("goroutine %d saw a different transformed source", i)
		}
	}
	st := opts.Cache.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 computation", st.Misses)
	}
}
