package pointsto

import (
	"sort"

	"repro/internal/cast"
	"repro/internal/dataflow"
)

// AliasSets groups variables that may refer to the same storage. Following
// the paper (Section III-A), the alias generator walks the solved
// points-to graph (topological order over the collapsed DAG; recursive
// self-cycles on aggregates are ignored) and unions every pair of pointer
// variables whose points-to sets intersect. The resulting sets are cached
// in a hash map for efficient access.
type AliasSets struct {
	graph *Graph
	// class maps a (symbol, member) key to its alias class representative
	// (union-find, fully collapsed at construction). Whole-object nodes
	// use member "".
	class map[fieldKey]int
	// members maps a class representative to its member symbols.
	members map[int][]*cast.Symbol
	// pointees caches PointeesOf results.
	pointees map[int][]*cast.Symbol
}

var _ dataflow.AliasOracle = (*AliasSets)(nil)

// ComputeAliases builds alias sets from a solved points-to graph.
func ComputeAliases(g *Graph) *AliasSets {
	a := &AliasSets{
		graph:    g,
		class:    make(map[fieldKey]int),
		members:  make(map[int][]*cast.Symbol),
		pointees: make(map[int][]*cast.Symbol),
	}
	if !g.solved {
		return a
	}

	// Union-find over var nodes keyed by symbol ID.
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[ry] = rx
		}
	}

	// Invert the points-to relation: pointee node -> pointer nodes.
	// Self-cycles (an aggregate pointing to itself) are irrelevant to
	// aliasing and ignored, as the paper notes. Pointer nodes are
	// identified by (symbol, member) so field-sensitive graphs keep
	// members in distinct classes; aggregate graphs only have member "".
	idOf := make(map[fieldKey]int)
	keys := make([]fieldKey, 0, len(g.Nodes))
	keyID := func(k fieldKey) int {
		if id, ok := idOf[k]; ok {
			return id
		}
		id := len(idOf)*2 + 1_000_000 // distinct from symbol IDs
		idOf[k] = id
		keys = append(keys, k)
		return id
	}
	pointersAt := make(map[int][]fieldKey)
	for _, n := range g.Nodes {
		if n.Kind != NodeVar || n.Sym == nil {
			continue
		}
		key := fieldKey{symID: n.Sym.ID, member: n.Field}
		rep := g.find(n.ID)
		g.pts[rep].ForEach(func(pointee int) {
			if pointee == n.ID {
				return // recursive cycle: ignore
			}
			pointersAt[pointee] = append(pointersAt[pointee], key)
		})
		find(keyID(key)) // ensure singleton class exists
	}

	for _, ptrs := range pointersAt {
		for i := 1; i < len(ptrs); i++ {
			union(keyID(ptrs[0]), keyID(ptrs[i]))
		}
	}

	// Collapse and materialize member lists.
	symOf := make(map[int]*cast.Symbol)
	for _, n := range g.Nodes {
		if n.Kind == NodeVar && n.Sym != nil {
			symOf[n.Sym.ID] = n.Sym
		}
	}
	for _, k := range keys {
		root := find(keyID(k))
		a.class[k] = root
		if sym := symOf[k.symID]; sym != nil {
			a.members[root] = append(a.members[root], sym)
		}
	}
	for _, m := range a.members {
		sort.Slice(m, func(i, j int) bool { return m[i].ID < m[j].ID })
	}
	return a
}

// AliasSetOf returns the symbols that may alias sym (including sym itself
// when it participates in the graph). The slice is shared; callers must
// not mutate it.
func (a *AliasSets) AliasSetOf(sym *cast.Symbol) []*cast.Symbol {
	root, ok := a.class[fieldKey{symID: sym.ID}]
	if !ok {
		return nil
	}
	return a.members[root]
}

// IsAliased reports whether sym shares storage with another named pointer:
// its alias set has at least two members. This is the ISALIASED test of
// Algorithm 1 (lines 27, 39).
func (a *AliasSets) IsAliased(sym *cast.Symbol) bool {
	return len(a.AliasSetOf(sym)) > 1
}

// IsAliasedMember answers the line-39 test for a struct member access
// s.member. Under the aggregate model (the paper's default) this is the
// whole-struct answer; under the field-sensitive ablation the member's own
// node decides.
func (a *AliasSets) IsAliasedMember(sym *cast.Symbol, member string) bool {
	if root, ok := a.class[fieldKey{symID: sym.ID, member: member}]; ok {
		return len(a.members[root]) > 1
	}
	return a.IsAliased(sym)
}

// PointeesOf returns the variable symbols that sym may point to.
func (a *AliasSets) PointeesOf(sym *cast.Symbol) []*cast.Symbol {
	if cached, ok := a.pointees[sym.ID]; ok {
		return cached
	}
	var out []*cast.Symbol
	for _, n := range a.graph.PointsTo(sym) {
		if n.Kind == NodeVar && n.Sym != nil {
			out = append(out, n.Sym)
		}
	}
	a.pointees[sym.ID] = out
	return out
}
