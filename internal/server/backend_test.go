package server

import (
	"net/http"
	"strings"
	"testing"

	"repro/pkg/cfix"
)

// TestFixBackendSelection drives the backend request option end to end:
// a request naming "bsd" gets BSD-dialect output and is counted under
// its canonical name in /metrics, an unknown dialect is a 400 naming
// the valid set, and a request naming nothing inherits the server's
// configured default.
func TestFixBackendSelection(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{})

	var bsd cfix.FixResponse
	status, raw := postJSON(t, ts.URL+"/v1/fix", cfix.FixRequest{
		Filename: "vuln.c",
		Source:   overflowing,
		Options:  cfix.RequestOptions{Backend: "bsd"},
	}, &bsd)
	if status != http.StatusOK {
		t.Fatalf("bsd fix: %d %s", status, raw)
	}
	if !strings.Contains(bsd.Source, "strlcpy(") || strings.Contains(bsd.Source, "g_strlcpy(") {
		t.Fatalf("bsd dialect not applied:\n%s", bsd.Source)
	}
	if bsd.Backend != "bsd" {
		t.Fatalf("response backend = %q, want bsd", bsd.Backend)
	}

	// Unknown dialects are rejected before any analysis, naming the
	// valid set so the client can correct the request.
	status, raw = postJSON(t, ts.URL+"/v1/fix", cfix.FixRequest{
		Filename: "vuln.c",
		Source:   overflowing,
		Options:  cfix.RequestOptions{Backend: "musl"},
	}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown backend: %d %s, want 400", status, raw)
	}
	for _, name := range []string{"musl", "glib", "bsd", "c11k"} {
		if !strings.Contains(raw, name) {
			t.Fatalf("400 body %q does not mention %q", raw, name)
		}
	}

	// Only the transforming request was counted, under its canonical
	// dialect name; the rejected request never reached the counter.
	m := srv.Metrics()
	if m.BackendRequests["bsd"] != 1 {
		t.Fatalf("backend_requests = %v, want bsd:1", m.BackendRequests)
	}
	if _, ok := m.BackendRequests["musl"]; ok {
		t.Fatalf("rejected backend counted: %v", m.BackendRequests)
	}
}

// TestFixBackendServerDefault checks the -backend daemon flag's
// semantics: requests that name no dialect get the configured one.
func TestFixBackendServerDefault(t *testing.T) {
	srv, ts, _ := newTestServer(t, Config{Backend: "c11k"})

	var resp cfix.FixResponse
	status, raw := postJSON(t, ts.URL+"/v1/fix", cfix.FixRequest{
		Filename: "vuln.c",
		Source:   overflowing,
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("fix: %d %s", status, raw)
	}
	if resp.Backend != "c11k" {
		t.Fatalf("response backend = %q, want configured default c11k", resp.Backend)
	}
	if !strings.Contains(resp.Source, "strcpy_s(") {
		t.Fatalf("c11k dialect not applied:\n%s", resp.Source)
	}
	if m := srv.Metrics(); m.BackendRequests["c11k"] != 1 {
		t.Fatalf("backend_requests = %v, want c11k:1", m.BackendRequests)
	}

	// An explicit request still overrides the server default.
	var glib cfix.FixResponse
	if status, raw := postJSON(t, ts.URL+"/v1/fix", cfix.FixRequest{
		Filename: "vuln.c",
		Source:   overflowing,
		Options:  cfix.RequestOptions{Backend: "glib"},
	}, &glib); status != http.StatusOK {
		t.Fatalf("glib fix: %d %s", status, raw)
	}
	if glib.Backend != "glib" || !strings.Contains(glib.Source, "g_strlcpy(") {
		t.Fatalf("explicit glib did not override default: backend=%q", glib.Backend)
	}
}
