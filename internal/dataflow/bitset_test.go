package dataflow

import "testing"

// TestBitSetWordBoundaries exercises capacities straddling the 64-bit word
// boundary, where off-by-one errors in the word math would hide.
func TestBitSetWordBoundaries(t *testing.T) {
	for _, n := range []int{63, 64, 65} {
		b := NewBitSet(n)
		wantWords := (n + 63) / 64
		if len(b) != wantWords {
			t.Fatalf("NewBitSet(%d): %d words, want %d", n, len(b), wantWords)
		}
		for i := 0; i < n; i++ {
			if b.Has(i) {
				t.Fatalf("n=%d: fresh set has %d", n, i)
			}
			b.Set(i)
			if !b.Has(i) {
				t.Fatalf("n=%d: Set(%d) not visible", n, i)
			}
		}
		if got := b.Count(); got != n {
			t.Fatalf("n=%d: Count=%d after filling", n, got)
		}
		// Clear the last valid element (the boundary bit).
		b.Clear(n - 1)
		if b.Has(n-1) || b.Count() != n-1 {
			t.Fatalf("n=%d: Clear(%d) failed (count=%d)", n, n-1, b.Count())
		}
		// ForEach must enumerate exactly the present elements in order.
		prev := -1
		count := 0
		b.ForEach(func(i int) {
			if i <= prev || i >= n-1 {
				t.Fatalf("n=%d: ForEach yielded %d after %d", n, i, prev)
			}
			prev = i
			count++
		})
		if count != n-1 {
			t.Fatalf("n=%d: ForEach yielded %d elements, want %d", n, count, n-1)
		}
	}
}

// TestBitSetUnionNoChangeFastPath checks that UnionWith reports false when
// the receiver already contains the argument (the solver's convergence
// test depends on this).
func TestBitSetUnionNoChangeFastPath(t *testing.T) {
	a := NewBitSet(130)
	b := NewBitSet(130)
	for _, i := range []int{0, 63, 64, 65, 129} {
		a.Set(i)
	}
	b.Set(63)
	b.Set(129)

	// a already contains b: must report unchanged.
	if a.UnionWith(b) {
		t.Fatal("UnionWith(subset) reported change")
	}
	if changed := b.UnionWith(a); !changed {
		t.Fatal("UnionWith(superset) reported no change")
	}
	if !b.Equal(a) {
		t.Fatal("sets differ after union")
	}
	if b.UnionWith(a) {
		t.Fatal("second UnionWith reported change")
	}
}

// TestBitSetIntersectWith covers the intersect operation and its no-change
// fast path.
func TestBitSetIntersectWith(t *testing.T) {
	a := NewBitSet(128)
	b := NewBitSet(128)
	for _, i := range []int{1, 63, 64, 100, 127} {
		a.Set(i)
	}
	for _, i := range []int{1, 64, 127} {
		b.Set(i)
	}
	// a ⊇ b, so intersecting b with a must not change b.
	if b.IntersectWith(a) {
		t.Fatal("IntersectWith(superset) reported change")
	}
	if changed := a.IntersectWith(b); !changed {
		t.Fatal("IntersectWith(subset) reported no change")
	}
	if !a.Equal(b) {
		t.Fatalf("intersection wrong: %v vs %v", a, b)
	}
	if got := a.Count(); got != 3 {
		t.Fatalf("Count after intersect = %d, want 3", got)
	}
	// Intersect with empty clears everything.
	empty := NewBitSet(128)
	if changed := a.IntersectWith(empty); !changed {
		t.Fatal("IntersectWith(empty) reported no change")
	}
	if a.Count() != 0 {
		t.Fatal("intersect with empty left elements")
	}
	if a.IntersectWith(empty) {
		t.Fatal("empty ∩ empty reported change")
	}
}

// TestBitSetCloneAndDiff pins Clone independence and DiffWith semantics at
// word boundaries.
func TestBitSetCloneAndDiff(t *testing.T) {
	a := NewBitSet(65)
	a.Set(0)
	a.Set(64)
	c := a.Clone()
	c.Clear(64)
	if !a.Has(64) {
		t.Fatal("Clone aliases the original")
	}
	d := NewBitSet(65)
	d.Set(0)
	a.DiffWith(d)
	if a.Has(0) || !a.Has(64) {
		t.Fatal("DiffWith removed the wrong elements")
	}
}
