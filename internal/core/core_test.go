package core

import (
	"strings"
	"testing"

	"repro/internal/cparse"
)

const sample = `
void f(void) {
    char buf[16];
    char *p;
    strcpy(buf, "hello");
    p = malloc(8);
    p[0] = 'x';
}
`

func TestFixBoth(t *testing.T) {
	rep, err := Fix("s.c", sample, Options{SelectOffset: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLR == nil || rep.STR == nil {
		t.Fatal("both transformation reports expected")
	}
	if !rep.Changed() {
		t.Fatal("program should change")
	}
	if !rep.NeedsGlib || !rep.NeedsStralloc {
		t.Fatalf("support requirements: glib=%v stralloc=%v", rep.NeedsGlib, rep.NeedsStralloc)
	}
	if !strings.Contains(rep.Summary(), "SLR: 1/1") {
		t.Fatalf("summary:\n%s", rep.Summary())
	}
}

func TestFixEmitSupportSelfContained(t *testing.T) {
	rep, err := Fix("s.c", sample, Options{SelectOffset: -1, EmitSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Source, "typedef struct stralloc") {
		t.Fatal("stralloc support missing")
	}
	if !strings.Contains(rep.Source, "g_strlcpy") {
		t.Fatal("glib prototypes missing")
	}
	// The emitted unit must parse standalone.
	if _, err := cparse.Parse("out.c", rep.Source); err != nil {
		t.Fatalf("self-contained output must parse: %v", err)
	}
}

func TestFixDisableSLR(t *testing.T) {
	rep, err := Fix("s.c", sample, Options{DisableSLR: true, SelectOffset: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SLR != nil {
		t.Fatal("SLR report must be nil when disabled")
	}
	if strings.Contains(rep.Source, "g_strlcpy") {
		t.Fatal("SLR must not have run")
	}
}

func TestFixSelectedSiteSkipsSTR(t *testing.T) {
	off := strings.Index(sample, "strcpy")
	rep, err := Fix("s.c", sample, Options{SelectOffset: off})
	if err != nil {
		t.Fatal(err)
	}
	// Case-by-case mode is an SLR quick-fix; STR batch does not run.
	if rep.STR != nil {
		t.Fatal("STR must not run in single-site mode")
	}
	if !strings.Contains(rep.Source, "g_strlcpy(buf") {
		t.Fatalf("selected site not fixed:\n%s", rep.Source)
	}
}

func TestFixParseErrorWrapped(t *testing.T) {
	_, err := Fix("bad.c", "void f( {", Options{SelectOffset: -1})
	if err == nil || !strings.Contains(err.Error(), "core: parse") {
		t.Fatalf("error: %v", err)
	}
}
