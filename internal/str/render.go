package str

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cast"
	"repro/internal/ctoken"
	"repro/internal/ctype"
	"repro/internal/pointsto"
	"repro/internal/rewrite"
)

// renderFunc queues one edit per statement or clause that touches a
// target. Each edit's replacement text is produced by the recursive
// renderer, so nested uses (pattern 13's buf1[0] = buf2[0]) come out as a
// single spliced rewrite.
func (t *Transformer) renderFunc(fn *cast.FuncDef, edits *rewrite.Set) {
	var walkStmt func(s cast.Stmt, inBlock bool)
	handleExpr := func(e cast.Expr, stmtLevel bool) {
		if e == nil || !t.containsTarget(e) {
			return
		}
		var text string
		if stmtLevel {
			text = t.renderTop(e)
		} else {
			text = t.renderExpr(e)
		}
		edits.Replace(e.Extent(), text, "STR rewrite")
	}
	// handleExprStmt wraps multi-statement rewrites (pattern 3 expands an
	// allocation into several statements) in braces when the statement is
	// a brace-less branch arm, so every piece stays under the guard.
	handleExprStmt := func(es *cast.ExprStmt, inBlock bool) {
		if !t.containsTarget(es.X) {
			return
		}
		text := t.renderTop(es.X)
		if !inBlock && strings.Contains(text, ";") {
			edits.Replace(es.Extent(), "{ "+text+"; }", "STR rewrite (braced)")
			return
		}
		edits.Replace(es.X.Extent(), text, "STR rewrite")
	}
	walkStmt = func(s cast.Stmt, inBlock bool) {
		if s == nil {
			return
		}
		switch x := s.(type) {
		case *cast.DeclStmt:
			t.renderDeclStmt(x, edits)
		case *cast.ExprStmt:
			handleExprStmt(x, inBlock)
		case *cast.ReturnStmt:
			if x.Result != nil {
				handleExpr(x.Result, false)
			}
		case *cast.CompoundStmt:
			for _, item := range x.Items {
				walkStmt(item, true)
			}
		case *cast.IfStmt:
			handleExpr(x.Cond, false)
			walkStmt(x.Then, false)
			walkStmt(x.Else, false)
		case *cast.WhileStmt:
			handleExpr(x.Cond, false)
			walkStmt(x.Body, false)
		case *cast.DoWhileStmt:
			walkStmt(x.Body, false)
			handleExpr(x.Cond, false)
		case *cast.ForStmt:
			walkStmt(x.Init, false)
			handleExpr(x.Cond, false)
			handleExpr(x.Post, true)
			walkStmt(x.Body, false)
		case *cast.SwitchStmt:
			handleExpr(x.Tag, false)
			walkStmt(x.Body, false)
		case *cast.CaseStmt:
			walkStmt(x.Stmt, true)
		case *cast.LabeledStmt:
			walkStmt(x.Stmt, inBlock)
		}
	}
	walkStmt(fn.Body, true)
}

// renderDeclStmt rewrites a declaration statement containing targets into
// the pattern-2 sequence:
//
//	stralloc *buf;  stralloc ssss_buf = {0,0,0};  buf = &ssss_buf;
//
// followed by capacity/initializer statements.
func (t *Transformer) renderDeclStmt(ds *cast.DeclStmt, edits *rewrite.Set) {
	anyTarget := false
	for _, d := range ds.Decls {
		if d.Sym != nil && t.targets[d.Sym] {
			anyTarget = true
			break
		}
	}
	if !anyTarget {
		// Initializers may still mention targets declared earlier.
		for _, d := range ds.Decls {
			if d.Init != nil && t.containsTarget(d.Init) {
				edits.Replace(d.Init.Extent(), t.renderExpr(d.Init), "STR rewrite in initializer")
			}
		}
		return
	}

	indent := t.indentOf(ds.Extent())
	var (
		ptrDecls   []string // stralloc *a
		backDecls  []string // ssss_a = {0,0,0}
		inits      []string // a = &ssss_a;  a->a = N;  copy inits
		keepOthers []string // non-target declarators kept as-is
	)
	for _, d := range ds.Decls {
		if d.Sym == nil || !t.targets[d.Sym] {
			// Sibling declarators share the whole declaration's extent, so
			// synthesize the kept declarator from its type and name.
			keep := declText(d.Name, d.Type)
			if d.Init != nil {
				keep += " = " + t.renderExpr(d.Init)
			}
			keepOthers = append(keepOthers, keep+";")
			continue
		}
		back := t.freshName("ssss_" + d.Name)
		ptrDecls = append(ptrDecls, "*"+d.Name)
		backDecls = append(backDecls, back+" = {0,0,0}")
		inits = append(inits, fmt.Sprintf("%s = &%s;", d.Name, back))
		// Arrays carry their declared capacity. Section II-B3: "Upon
		// initialization, the stralloc library appropriately allocates
		// enough memory for the string being stored" — stralloc_ready
		// allocates the backing storage and records a (the zlib example
		// shows the capacity assignment).
		if arr, ok := ctype.Unqualify(d.Type).(*ctype.Array); ok && arr.Len >= 0 {
			es := 1
			if s := arr.Elem.Size(); s > 0 {
				es = s
			}
			inits = append(inits, fmt.Sprintf("stralloc_ready(%s, %d);", d.Name, arr.Len*es))
		}
		if d.Init != nil {
			if stmt := t.renderInit(d.Name, d.Init); stmt != "" {
				inits = append(inits, stmt)
			}
		}
	}

	var lines []string
	lines = append(lines, "stralloc "+strings.Join(ptrDecls, ", ")+";")
	lines = append(lines, "stralloc "+strings.Join(backDecls, ", ")+";")
	lines = append(lines, inits...)
	lines = append(lines, keepOthers...)
	edits.Replace(ds.Extent(), strings.Join(lines, "\n"+indent), "STR declaration rewrite")
}

// renderInit produces the initialization statement for a declared target
// with an initializer (patterns 3-7 in declaration position).
func (t *Transformer) renderInit(name string, init cast.Expr) string {
	text := t.renderAssignParts(name, cast.AssignPlain, init)
	if text == "" {
		return ""
	}
	return text + ";"
}

// declText renders a C declarator for the given name and type, covering
// the forms local char-adjacent declarations take.
func declText(name string, typ ctype.Type) string {
	switch x := ctype.Unqualify(typ).(type) {
	case *ctype.Pointer:
		return declText("*"+name, x.Elem)
	case *ctype.Array:
		if x.Len >= 0 {
			return declText(fmt.Sprintf("%s[%d]", name, x.Len), x.Elem)
		}
		return declText(name+"[]", x.Elem)
	default:
		return typ.String() + " " + name
	}
}

// renderTop renders an expression in statement position (may produce
// multiple statements, no trailing semicolon removed from interior).
func (t *Transformer) renderTop(e cast.Expr) string {
	switch x := cast.Unparen(e).(type) {
	case *cast.AssignExpr:
		if out := t.renderAssignTop(x); out != "" {
			return out
		}
	case *cast.UnaryExpr:
		if (x.Op == cast.UnaryPreInc || x.Op == cast.UnaryPreDec) && t.isTarget(x.Operand) {
			return t.incDecText(t.targetName(x.Operand), x.Op == cast.UnaryPreInc, "1")
		}
	case *cast.PostfixExpr:
		if t.isTarget(x.Operand) {
			return t.incDecText(t.targetName(x.Operand), x.Op == cast.PostfixInc, "1")
		}
	}
	return t.renderExpr(e)
}

// incDecText renders patterns 8-9 without the trailing semicolon (the
// statement keeps its own).
func (t *Transformer) incDecText(name string, inc bool, amount string) string {
	if inc {
		return fmt.Sprintf("stralloc_increment_by(%s, %s)", name, amount)
	}
	return fmt.Sprintf("stralloc_decrement_by(%s, %s)", name, amount)
}

// renderAssignTop renders an assignment in statement position, returning
// "" when the generic renderer should handle it.
func (t *Transformer) renderAssignTop(a *cast.AssignExpr) string {
	lhs := cast.Unparen(a.LHS)

	// Pointer-variable assignments: patterns 3-9.
	if t.isTarget(lhs) {
		name := t.targetName(lhs)
		switch a.Op {
		case cast.AssignPlain:
			return t.renderAssignParts(name, a.Op, a.RHS)
		case cast.AssignAdd:
			return t.incDecText(name, true, t.renderExpr(a.RHS))
		case cast.AssignSub:
			return t.incDecText(name, false, t.renderExpr(a.RHS))
		}
		return ""
	}

	// Element writes: patterns 12-15.
	if idx, ok := lhs.(*cast.IndexExpr); ok && t.isTarget(idx.Base) && a.Op == cast.AssignPlain {
		return fmt.Sprintf("stralloc_dereference_replace_by(%s, %s, %s)",
			t.targetName(idx.Base), t.renderExpr(idx.Index), t.renderExpr(a.RHS))
	}
	if de, ok := lhs.(*cast.UnaryExpr); ok && de.Op == cast.UnaryDeref && a.Op == cast.AssignPlain {
		if name, off, ok := t.derefTarget(de); ok {
			return fmt.Sprintf("stralloc_dereference_replace_by(%s, %s, %s)",
				name, off, t.renderExpr(a.RHS))
		}
	}
	return ""
}

// renderAssignParts renders "name = rhs" for a target pointer (patterns
// 3-7). The result omits the trailing semicolon except for the
// multi-statement allocation pattern, which embeds its own.
func (t *Transformer) renderAssignParts(name string, _ cast.AssignOp, rhs cast.Expr) string {
	r := cast.Unparen(rhs)
	switch x := r.(type) {
	case *cast.IntLit:
		if x.Value == 0 {
			// Pattern 4: assignment to null — no change necessary.
			return name + " = " + t.text(rhs)
		}
	case *cast.Ident:
		if x.Sym != nil && t.targets[x.Sym] {
			// Pattern 5: assignment to other buffer — no change.
			return name + " = " + x.Name
		}
		if x.Name == "NULL" {
			return name + " = NULL"
		}
		// Plain char* source: copy the string contents.
		return fmt.Sprintf("stralloc_copys(%s, %s)", name, x.Name)
	case *cast.StringLit:
		// Pattern 6.
		lit := t.text(x)
		return fmt.Sprintf("stralloc_copybuf(%s, %s, strlen(%s))", name, lit, lit)
	case *cast.CallExpr:
		if pointsto.IsHeapAllocator(x.Callee()) {
			// Pattern 3: allocation — assign member variables. f mirrors s
			// so pointer-arithmetic bounds checks have a base.
			sizeText := t.allocSizeText(x)
			return fmt.Sprintf("%s->s = %s; %s->f = %s->s; %s->a = %s",
				name, t.text(x), name, name, name, sizeText)
		}
		return fmt.Sprintf("stralloc_copys(%s, %s)", name, t.renderExpr(rhs))
	case *cast.CastExpr:
		// Pattern 7: analyze rhs, replace with library function. Null
		// casts ((void*)0, (char*)0) stay per pattern 4.
		if castOfZero(x) {
			return name + " = " + t.text(x)
		}
		castText := t.renderExpr(x)
		return fmt.Sprintf("stralloc_copybuf(%s, %s, sizeof(%s))", name, castText, castText)
	}
	return fmt.Sprintf("stralloc_copys(%s, %s)", name, t.renderExpr(rhs))
}

// allocSizeText extracts the byte count from an allocation call.
func (t *Transformer) allocSizeText(call *cast.CallExpr) string {
	switch call.Callee() {
	case "calloc":
		if len(call.Args) == 2 {
			return "(" + t.text(call.Args[0]) + ") * (" + t.text(call.Args[1]) + ")"
		}
	case "malloc", "alloca", "realloc":
		if n := len(call.Args); n > 0 {
			return t.text(call.Args[n-1])
		}
	case "strdup":
		if len(call.Args) == 1 {
			return "strlen(" + t.renderValue(call.Args[0]) + ") + 1"
		}
	}
	return "0"
}

// castOfZero matches (void*)0 / (char*)0 spellings of null.
func castOfZero(c *cast.CastExpr) bool {
	lit, ok := cast.Unparen(c.Operand).(*cast.IntLit)
	return ok && lit.Value == 0
}

// renderExpr renders an expression in value position, rewriting target
// uses per the read patterns (1, 10, 11, 16, 17) and splicing everything
// else from the original text.
func (t *Transformer) renderExpr(e cast.Expr) string {
	if !t.containsTarget(e) {
		return t.text(e)
	}
	switch x := e.(type) {
	case *cast.Ident:
		if t.targets[x.Sym] {
			// Bare identifier in value context: the char* value lives in
			// the s member.
			return x.Name + "->s"
		}
		return x.Name
	case *cast.ParenExpr:
		return "(" + t.renderExpr(x.Inner) + ")"
	case *cast.IndexExpr:
		if t.isTarget(x.Base) {
			// Pattern 11.
			return fmt.Sprintf("stralloc_get_dereferenced_char_at(%s, %s)",
				t.targetName(x.Base), t.renderExpr(x.Index))
		}
		return t.splice(x)
	case *cast.UnaryExpr:
		if x.Op == cast.UnaryDeref {
			if name, off, ok := t.derefTarget(x); ok {
				return fmt.Sprintf("stralloc_get_dereferenced_char_at(%s, %s)", name, off)
			}
		}
		return t.splice(x)
	case *cast.SizeofExpr:
		if x.Operand != nil && t.isTarget(x.Operand) {
			// Pattern 10: sizeof(buf) -> buf->a.
			return t.targetName(x.Operand) + "->a"
		}
		return t.splice(x)
	case *cast.CallExpr:
		return t.renderCall(x)
	case *cast.AssignExpr:
		if out := t.renderAssignTop(x); out != "" {
			return out
		}
		return t.splice(x)
	default:
		return t.splice(x)
	}
}

// renderCall rewrites calls per Table II rows 16-17.
func (t *Transformer) renderCall(call *cast.CallExpr) string {
	name := call.Callee()
	args := call.Args

	// strlen(buf) -> buf->len.
	if name == "strlen" && len(args) == 1 && t.isTarget(args[0]) {
		return t.targetName(args[0]) + "->len"
	}

	// Destination-mapped library functions.
	if len(args) > 0 && t.isTarget(args[0]) {
		dst := t.targetName(args[0])
		switch name {
		case "strcpy":
			return t.copyLike(dst, "copy", args[1])
		case "strcat":
			return t.copyLike(dst, "cat", args[1])
		case "strncpy":
			if len(args) == 3 {
				return fmt.Sprintf("stralloc_copybuf(%s, %s, %s)", dst, t.renderValue(args[1]), t.renderExpr(args[2]))
			}
		case "strncat":
			if len(args) == 3 {
				return fmt.Sprintf("stralloc_catbuf(%s, %s, %s)", dst, t.renderValue(args[1]), t.renderExpr(args[2]))
			}
		case "memcpy":
			if len(args) == 3 {
				return fmt.Sprintf("stralloc_copybuf(%s, %s, %s)", dst, t.renderValue(args[1]), t.renderExpr(args[2]))
			}
		case "memset":
			if len(args) == 3 {
				return fmt.Sprintf("stralloc_memset(%s, %s, %s)", dst, t.renderExpr(args[1]), t.renderExpr(args[2]))
			}
		}
	}

	// Everything else: arguments are values; target idents become ->s
	// (patterns 16 read-only and 17).
	var sb strings.Builder
	sb.WriteString(t.text(cast.Unparen(call.Fun)))
	sb.WriteString("(")
	for i, a := range args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.renderValue(a))
	}
	sb.WriteString(")")
	return sb.String()
}

// copyLike renders strcpy/strcat family onto stralloc_copy/cat variants
// depending on the source expression.
func (t *Transformer) copyLike(dst, op string, src cast.Expr) string {
	s := cast.Unparen(src)
	switch x := s.(type) {
	case *cast.Ident:
		if x.Sym != nil && t.targets[x.Sym] {
			return fmt.Sprintf("stralloc_%s(%s, %s)", op, dst, x.Name)
		}
		return fmt.Sprintf("stralloc_%ss(%s, %s)", op, dst, x.Name)
	case *cast.StringLit:
		lit := t.text(x)
		return fmt.Sprintf("stralloc_%sbuf(%s, %s, strlen(%s))", op, dst, lit, lit)
	default:
		return fmt.Sprintf("stralloc_%ss(%s, %s)", op, dst, t.renderValue(src))
	}
}

// renderValue renders an expression that must yield a char* value:
// target identifiers become name->s; everything else goes through
// renderExpr.
func (t *Transformer) renderValue(e cast.Expr) string {
	if t.isTarget(e) {
		return t.targetName(e) + "->s"
	}
	return t.renderExpr(e)
}

// derefTarget decomposes *(buf ± n) / *buf into (name, offsetText).
func (t *Transformer) derefTarget(de *cast.UnaryExpr) (name, offset string, ok bool) {
	inner := cast.Unparen(de.Operand)
	if t.isTarget(inner) {
		return t.targetName(inner), "0", true
	}
	if bin, isBin := inner.(*cast.BinaryExpr); isBin {
		if t.isTarget(bin.X) && (bin.Op == cast.BinaryAdd || bin.Op == cast.BinarySub) {
			off := t.renderExpr(bin.Y)
			if bin.Op == cast.BinarySub {
				off = "-(" + off + ")"
			}
			return t.targetName(bin.X), off, true
		}
		if t.isTarget(bin.Y) && bin.Op == cast.BinaryAdd {
			return t.targetName(bin.Y), t.renderExpr(bin.X), true
		}
	}
	return "", "", false
}

// splice reassembles a composite node from the original text with each
// target-containing child re-rendered.
func (t *Transformer) splice(n cast.Node) string {
	children := cast.Children(n)
	// Only children with valid extents inside n participate.
	type part struct {
		ext  ctoken.Extent
		text string
	}
	var parts []part
	for _, c := range children {
		ce := c.Extent()
		if !ce.IsValid() || !n.Extent().Covers(ce) {
			continue
		}
		if !t.containsTarget(c) {
			continue
		}
		expr, ok := c.(cast.Expr)
		if !ok {
			continue
		}
		parts = append(parts, part{ext: ce, text: t.renderExpr(expr)})
	}
	if len(parts) == 0 {
		return t.text(n)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].ext.Pos < parts[j].ext.Pos })
	src := t.unit.File.Src()
	base := n.Extent()
	var sb strings.Builder
	cursor := base.Pos
	for _, p := range parts {
		sb.WriteString(src[cursor:p.ext.Pos])
		sb.WriteString(p.text)
		cursor = p.ext.End
	}
	sb.WriteString(src[cursor:base.End])
	return sb.String()
}

// indentOf returns the whitespace prefix of the line the extent starts on.
func (t *Transformer) indentOf(e ctoken.Extent) string {
	src := t.unit.File.Src()
	lineStart := int(e.Pos)
	for lineStart > 0 && src[lineStart-1] != '\n' {
		lineStart--
	}
	end := lineStart
	for end < len(src) && (src[end] == ' ' || src[end] == '\t') {
		end++
	}
	return src[lineStart:end]
}
