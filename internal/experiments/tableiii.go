// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV): Table I (catalogue), Table II (patterns),
// Table III (SAMATE), Table IV (corpus), Table V + Figure 2 (SLR on real
// code), Table VI (STR on real code), the LibTIFF case study, and the RQ3
// overhead measurements. Each Run* function returns structured rows; each
// Format* function prints them in the paper's layout so results can be
// compared side by side (see EXPERIMENTS.md).
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/samate"
	"repro/internal/stralloc"
)

// CWEResult is one row of Table III plus the RQ1 verification columns.
type CWEResult struct {
	CWE  int
	Name string
	// Backend is the canonical repair dialect the run applied (the same
	// for every row of one run); FormatTableIII prints it so archived
	// tables from different dialects stay distinguishable.
	Backend string
	// Programs actually processed (equals Table III's count at stride 1).
	Programs int
	// SLRApplied / STRApplied count programs where the transformation
	// changed at least one site/variable (the Table III applicability
	// columns).
	SLRApplied int
	STRApplied int
	// KLOC is the corpus size in thousand lines; PPKLOC includes the
	// support headers a preprocessor would inline.
	KLOC   float64
	PPKLOC float64
	// RQ1 verification: the bad function overflowed before, is clean
	// after; the good function's output is preserved.
	VulnDetected int
	Fixed        int
	Preserved    int
	Errors       int
	// WallTime is the summed per-program processing time for this CWE
	// class (the RQ3 cost view: transformation plus the four
	// verification executions).
	WallTime time.Duration
	// Degraded counts programs whose transformation pipeline had to cut
	// an analysis short (budget exhaustion or a skipped stage); 0 on a
	// full-fidelity run.
	Degraded int
	// ColdFix / WarmFix are the summed core.Fix wall times of the
	// cache-warm measurement (TableIIIOptions.CacheWarm): a cold pass
	// that populates a shared content-addressed result cache, then an
	// identical re-run served from it. WarmHits counts the programs the
	// warm pass answered without re-analysis. All zero when the
	// measurement is off.
	ColdFix  time.Duration
	WarmFix  time.Duration
	WarmHits int
	// Stages is the per-stage breakdown of this CWE class's
	// transformation pipeline time (TableIIIOptions.Stages): every stage
	// span of every program's core.Fix, aggregated. The four *Time
	// fields group its self times into the columns FormatTableIII
	// prints: the front end (parse), the derived analyses plus pipeline
	// orchestration (typecheck through overflow, and the fix span's own
	// self time), and the two transformations (slr; str + rewrite).
	Stages      []obs.StageStat
	ParseTime   time.Duration
	AnalyzeTime time.Duration
	SLRTime     time.Duration
	STRTime     time.Duration
}

// TableIIIOptions configures the SAMATE run.
type TableIIIOptions struct {
	// Stride processes every Stride-th program (1 = the full 4,505).
	Stride int
	// Workers bounds the shared pool (internal/analysis); 0 = one per CPU.
	Workers int
	// CacheWarm additionally times a cold core.Fix pass against a warm
	// re-run over a shared content-addressed result cache — the
	// maintenance scenario of re-hardening a mostly-unchanged tree (and
	// cfixd's steady state).
	CacheWarm bool
	// Stages additionally traces every program's transformation pipeline
	// and aggregates a per-stage time breakdown per CWE (one tracer per
	// program, merged — each program's span family is laminar, so self
	// times stay exact even with parallel workers). No-op in a
	// cfix_notrace build.
	Stages bool
	// Backend names the repair dialect SLR rewrites into ("" = glib).
	// Unknown names fail the run up front rather than mid-corpus.
	Backend string
}

// RunTableIII generates the Juliet-style corpus, applies SLR and STR to
// every program, executes good/bad pre and post, and aggregates per CWE.
func RunTableIII(opts TableIIIOptions) ([]CWEResult, error) {
	if opts.Stride < 1 {
		opts.Stride = 1
	}
	dialect, err := backend.Canonical(opts.Backend)
	if err != nil {
		return nil, err
	}

	ppOverhead := strings.Count(stralloc.FullSource(), "\n") + 1

	// One cache for the whole run: content addressing keeps CWE classes
	// from colliding, and sharing it mirrors a real daemon's steady state.
	var warmCache *cache.Cache
	if opts.CacheWarm {
		var err error
		warmCache, err = cache.New(256<<20, "")
		if err != nil {
			return nil, err
		}
	}

	var rows []CWEResult
	for _, cwe := range samate.CWEs {
		progs := samate.Generate(cwe, samate.TableIIICounts[cwe])
		row := CWEResult{CWE: cwe, Name: samate.CWENames[cwe], Backend: dialect}

		type verdictOrErr struct {
			v     *harness.Verdict
			err   error
			loc   int
			wall  time.Duration
			stats []obs.StageStat
		}
		picked := make([]samate.Program, 0, len(progs)/opts.Stride+1)
		for i := 0; i < len(progs); i += opts.Stride {
			picked = append(picked, progs[i])
		}
		results := analysis.Map(opts.Workers, picked, func(_ int, p samate.Program) verdictOrErr {
			var tr *obs.Tracer
			if opts.Stages {
				tr = obs.NewTracer()
			}
			start := time.Now()
			v, err := harness.Verify(p.ID, p.Source, p.ID+"_good", p.ID+"_bad",
				harness.Options{Stdin: stdinFor(p), Backend: dialect, Tracer: tr})
			out := verdictOrErr{v: v, err: err, loc: p.LOC(), wall: time.Since(start)}
			if tr != nil {
				out.stats = tr.StageStats()
			}
			return out
		})

		for _, r := range results {
			row.Programs++
			row.WallTime += r.wall
			if len(r.stats) > 0 {
				row.Stages = obs.MergeStageStats(row.Stages, r.stats)
			}
			if r.err != nil {
				row.Errors++
				continue
			}
			if len(r.v.Degraded) > 0 {
				row.Degraded++
			}
			row.KLOC += float64(r.loc) / 1000.0
			row.PPKLOC += float64(r.loc+ppOverhead) / 1000.0
			if r.v.SLRApplied > 0 {
				row.SLRApplied++
			}
			if r.v.STRApplied > 0 {
				row.STRApplied++
			}
			if r.v.VulnDetected {
				row.VulnDetected++
			}
			if r.v.Fixed {
				row.Fixed++
			}
			if r.v.Preserved {
				row.Preserved++
			}
		}
		if opts.CacheWarm {
			measureCacheWarm(&row, picked, warmCache, dialect, opts.Workers)
		}
		row.ParseTime, row.AnalyzeTime, row.SLRTime, row.STRTime = groupStages(row.Stages)
		rows = append(rows, row)
	}
	return rows, nil
}

// measureCacheWarm times the row's programs through core.Fix twice over
// a shared result cache: the cold pass pays for parses and fixpoint
// solves and populates the cache, the warm pass replays the identical
// requests. The warm pass only starts after the cold pass has finished,
// so every full-fidelity result is already stored.
func measureCacheWarm(row *CWEResult, progs []samate.Program, c *cache.Cache, dialect string, workers int) {
	fixOpts := core.Options{Cache: c, Backend: dialect}
	type sample struct {
		wall time.Duration
		hit  bool
	}
	pass := func() []sample {
		return analysis.Map(workers, progs, func(_ int, p samate.Program) sample {
			start := time.Now()
			_, hit, err := core.FixCached(context.Background(), p.ID, p.Source, fixOpts)
			return sample{wall: time.Since(start), hit: hit && err == nil}
		})
	}
	for _, s := range pass() {
		row.ColdFix += s.wall
	}
	for _, s := range pass() {
		row.WarmFix += s.wall
		if s.hit {
			row.WarmHits++
		}
	}
}

// groupStages folds per-stage self times into the four Table III
// breakdown columns: the C front end, everything the shared snapshot
// derives from it (plus the fix span's own orchestration time), and
// the two transformations (rewrite assembly counts as STR, whose
// output it re-renders).
func groupStages(stats []obs.StageStat) (parse, analyze, slr, strt time.Duration) {
	for _, st := range stats {
		switch st.Name {
		case obs.StageParse:
			parse += st.Self
		case obs.StageSLR:
			slr += st.Self
		case obs.StageSTR, obs.StageRewrite:
			strt += st.Self
		default:
			analyze += st.Self
		}
	}
	return parse, analyze, slr, strt
}

// stdinFor supplies input for gets/fgets programs.
func stdinFor(p samate.Program) []string {
	if p.CWE != 242 {
		return nil
	}
	long := strings.Repeat("Q", 120)
	return []string{long, long}
}

// FormatTableIII renders the rows in the paper's Table III layout plus
// the RQ1 verification columns.
func FormatTableIII(rows []CWEResult) string {
	var sb strings.Builder
	sb.WriteString("Table III: CWEs Describing Buffer Overflows (synthetic Juliet corpus)\n")
	if len(rows) > 0 && rows[0].Backend != "" {
		sb.WriteString(fmt.Sprintf("Repair dialect: %s\n", rows[0].Backend))
	}
	sb.WriteString(fmt.Sprintf("%-42s %8s %8s %8s %9s %10s %8s %8s %9s %9s %8s\n",
		"CWE", "SLR", "STR", "Programs", "KLOC", "PP KLOC", "VulnDet", "Fixed", "Preserved", "Wall", "Degraded"))
	var tot CWEResult
	for _, r := range rows {
		slr := "-"
		if r.SLRApplied > 0 {
			slr = fmt.Sprintf("%d", r.SLRApplied)
		}
		strCol := "-"
		if r.STRApplied > 0 {
			strCol = fmt.Sprintf("%d", r.STRApplied)
		}
		sb.WriteString(fmt.Sprintf("%-42s %8s %8s %8d %9.1f %10.1f %8d %8d %9d %9s %8d\n",
			fmt.Sprintf("CWE %d: %s", r.CWE, r.Name), slr, strCol,
			r.Programs, r.KLOC, r.PPKLOC, r.VulnDetected, r.Fixed, r.Preserved,
			r.WallTime.Round(time.Millisecond), r.Degraded))
		tot.Programs += r.Programs
		tot.SLRApplied += r.SLRApplied
		tot.STRApplied += r.STRApplied
		tot.KLOC += r.KLOC
		tot.PPKLOC += r.PPKLOC
		tot.VulnDetected += r.VulnDetected
		tot.Fixed += r.Fixed
		tot.Preserved += r.Preserved
		tot.Errors += r.Errors
		tot.WallTime += r.WallTime
		tot.Degraded += r.Degraded
		tot.ColdFix += r.ColdFix
		tot.WarmFix += r.WarmFix
	}
	sb.WriteString(fmt.Sprintf("%-42s %8d %8d %8d %9.1f %10.1f %8d %8d %9d %9s %8d\n",
		"Total", tot.SLRApplied, tot.STRApplied, tot.Programs,
		tot.KLOC, tot.PPKLOC, tot.VulnDetected, tot.Fixed, tot.Preserved,
		tot.WallTime.Round(time.Millisecond), tot.Degraded))
	if tot.Errors > 0 {
		sb.WriteString(fmt.Sprintf("(%d programs failed to process)\n", tot.Errors))
	}
	if tot.Degraded > 0 {
		sb.WriteString(fmt.Sprintf("(%d programs transformed with degraded analyses)\n", tot.Degraded))
	}
	if tot.ColdFix > 0 {
		sb.WriteString("\nResult-cache timing (summed core.Fix wall time: cold pass populates a\nshared content-addressed cache, warm pass replays identical requests):\n")
		sb.WriteString(fmt.Sprintf("%-42s %10s %10s %9s %10s\n",
			"CWE", "Cold", "Warm", "Speedup", "Hits"))
		for _, r := range rows {
			sb.WriteString(fmt.Sprintf("%-42s %10s %10s %9s %10s\n",
				fmt.Sprintf("CWE %d: %s", r.CWE, r.Name),
				r.ColdFix.Round(time.Millisecond), r.WarmFix.Round(time.Millisecond),
				speedup(r.ColdFix, r.WarmFix),
				fmt.Sprintf("%d/%d", r.WarmHits, r.Programs)))
		}
		sb.WriteString(fmt.Sprintf("%-42s %10s %10s %9s %10s\n",
			"Total", tot.ColdFix.Round(time.Millisecond), tot.WarmFix.Round(time.Millisecond),
			speedup(tot.ColdFix, tot.WarmFix),
			fmt.Sprintf("%d/%d", sumWarmHits(rows), tot.Programs)))
	}
	if stages := totalStages(rows); len(stages) > 0 {
		sb.WriteString("\nPer-stage pipeline time (self time, summed across each CWE's programs):\n")
		sb.WriteString(fmt.Sprintf("%-42s %9s %9s %9s %9s %9s\n",
			"CWE", "Parse", "Analyze", "SLR", "STR", "Total"))
		var tp, ta, tslr, tstr time.Duration
		for _, r := range rows {
			sb.WriteString(fmt.Sprintf("%-42s %9s %9s %9s %9s %9s\n",
				fmt.Sprintf("CWE %d: %s", r.CWE, r.Name),
				r.ParseTime.Round(time.Millisecond), r.AnalyzeTime.Round(time.Millisecond),
				r.SLRTime.Round(time.Millisecond), r.STRTime.Round(time.Millisecond),
				(r.ParseTime + r.AnalyzeTime + r.SLRTime + r.STRTime).Round(time.Millisecond)))
			tp += r.ParseTime
			ta += r.AnalyzeTime
			tslr += r.SLRTime
			tstr += r.STRTime
		}
		sb.WriteString(fmt.Sprintf("%-42s %9s %9s %9s %9s %9s\n",
			"Total", tp.Round(time.Millisecond), ta.Round(time.Millisecond),
			tslr.Round(time.Millisecond), tstr.Round(time.Millisecond),
			(tp + ta + tslr + tstr).Round(time.Millisecond)))
		sb.WriteString("\nStage detail (all CWEs):\n")
		sb.WriteString(obs.FormatStageStats(stages, 0))
	}
	sb.WriteString(fmt.Sprintf("\nPaper: 4,505 programs; SLR applicable to 1,758 (1,096/644/18);\n"))
	sb.WriteString("vulnerability fixed in bad functions of all programs; normal behavior preserved.\n")
	return sb.String()
}

// totalStages merges every row's per-stage aggregate; empty when the
// run did not collect stages.
func totalStages(rows []CWEResult) []obs.StageStat {
	var out []obs.StageStat
	for _, r := range rows {
		out = obs.MergeStageStats(out, r.Stages)
	}
	return out
}

// speedup renders cold/warm as a ratio ("12.3x"); "-" when the warm
// pass was too fast to resolve.
func speedup(cold, warm time.Duration) string {
	if warm <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(cold)/float64(warm))
}

func sumWarmHits(rows []CWEResult) int {
	n := 0
	for _, r := range rows {
		n += r.WarmHits
	}
	return n
}
