// Package overflow implements a static buffer-overflow oracle: an
// interprocedural interval analysis over buffer sizes, pointer offsets and
// string lengths, plus a diagnostics pass that classifies unsafe accesses
// into the CWEs of Table III (121/122/124/126/127/242) with a
// definite/possible severity. It is the second client of the generic
// internal/dataflow solver (the first being reaching definitions) and
// complements the checked interpreter (internal/cinterp): the interpreter
// proves an overflow by executing it, this package predicts one without
// running the program.
package overflow

import (
	"fmt"
	"math"
)

// Interval bounds. Sentinels sit well inside the int64 range so saturating
// arithmetic cannot wrap.
const (
	NegInf = int64(math.MinInt64 / 4)
	PosInf = int64(math.MaxInt64 / 4)
)

// Interval is a closed integer interval [Lo, Hi] with infinities encoded
// as the NegInf/PosInf sentinels. Lo > Hi encodes the empty interval.
type Interval struct {
	Lo, Hi int64
}

// Top returns the unconstrained interval.
func Top() Interval { return Interval{NegInf, PosInf} }

// Const returns the singleton interval [n, n].
func Const(n int64) Interval { return Interval{clamp(n), clamp(n)} }

// Range returns [lo, hi] with sentinel clamping.
func Range(lo, hi int64) Interval { return Interval{clamp(lo), clamp(hi)} }

// IsTop reports whether the interval carries no information.
func (iv Interval) IsTop() bool { return iv.Lo <= NegInf && iv.Hi >= PosInf }

// IsEmpty reports an empty (contradictory) interval.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// Exact reports a finite singleton and returns its value.
func (iv Interval) Exact() (int64, bool) {
	if iv.Lo == iv.Hi && iv.Lo > NegInf && iv.Hi < PosInf {
		return iv.Lo, true
	}
	return 0, false
}

// String renders the interval for diagnostics.
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "[]"
	}
	lo, hi := "-inf", "+inf"
	if iv.Lo > NegInf {
		lo = fmt.Sprintf("%d", iv.Lo)
	}
	if iv.Hi < PosInf {
		hi = fmt.Sprintf("%d", iv.Hi)
	}
	return "[" + lo + "," + hi + "]"
}

func clamp(n int64) int64 {
	if n <= NegInf {
		return NegInf
	}
	if n >= PosInf {
		return PosInf
	}
	return n
}

// satAdd adds with saturation; +inf dominates a conflicting -inf, which is
// the conservative choice for the end-of-write computations it feeds.
func satAdd(a, b int64) int64 {
	if a >= PosInf || b >= PosInf {
		return PosInf
	}
	if a <= NegInf || b <= NegInf {
		return NegInf
	}
	return clamp(a + b)
}

// satNeg negates with saturation. Plain negation is wrong at both
// extremes: -math.MinInt64 wraps back to math.MinInt64, and a bound at or
// beyond a sentinel must flip to the opposite infinity, not keep its
// two's-complement image.
func satNeg(n int64) int64 {
	if n <= NegInf {
		return PosInf
	}
	if n >= PosInf {
		return NegInf
	}
	return -n
}

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval {
	return Interval{satAdd(iv.Lo, o.Lo), satAdd(iv.Hi, o.Hi)}
}

// AddConst shifts the interval by n.
func (iv Interval) AddConst(n int64) Interval { return iv.Add(Const(n)) }

// Sub returns the interval difference iv - o.
func (iv Interval) Sub(o Interval) Interval {
	return Interval{satAdd(iv.Lo, satNeg(o.Hi)), satAdd(iv.Hi, satNeg(o.Lo))}
}

// Neg returns the negated interval.
func (iv Interval) Neg() Interval {
	return Interval{satNeg(iv.Hi), satNeg(iv.Lo)}
}

// MulConst scales the interval by k.
func (iv Interval) MulConst(k int64) Interval {
	if k == 0 {
		return Const(0)
	}
	a, b := satMul(iv.Lo, k), satMul(iv.Hi, k)
	if k < 0 {
		a, b = b, a
	}
	return Interval{a, b}
}

func satMul(a, k int64) int64 {
	if a <= NegInf || a >= PosInf {
		if (a >= PosInf) == (k > 0) {
			return PosInf
		}
		return NegInf
	}
	if k <= NegInf || k >= PosInf {
		// An out-of-band multiplier saturates like an infinity. Deciding
		// here also keeps a == -1 away from the r/a overflow probe below,
		// where MinInt64 / -1 would trap.
		if a == 0 {
			return 0
		}
		if (a > 0) == (k > 0) {
			return PosInf
		}
		return NegInf
	}
	r := a * k
	if a != 0 && r/a != k {
		if (a > 0) == (k > 0) {
			return PosInf
		}
		return NegInf
	}
	return clamp(r)
}

// Mul returns the interval product, precise only when one side is exact.
func (iv Interval) Mul(o Interval) Interval {
	if k, ok := o.Exact(); ok {
		return iv.MulConst(k)
	}
	if k, ok := iv.Exact(); ok {
		return o.MulConst(k)
	}
	return Top()
}

// Join returns the smallest interval covering both. Bounds are clamped so
// an interval built with raw int64 extremes normalizes to the sentinels
// instead of leaking values the saturating arithmetic cannot classify.
func (iv Interval) Join(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{clamp(min64(iv.Lo, o.Lo)), clamp(max64(iv.Hi, o.Hi))}
}

// Meet intersects the intervals; the result may be empty. Bounds are
// clamped like Join's.
func (iv Interval) Meet(o Interval) Interval {
	lo, hi := max64(iv.Lo, o.Lo), min64(iv.Hi, o.Hi)
	if lo > hi {
		return Interval{lo, hi} // preserve emptiness even at raw extremes
	}
	return Interval{clamp(lo), clamp(hi)}
}

// Widen extrapolates: bounds that moved since prev jump to infinity, so
// ascending chains stabilize. The next state is joined in first.
func (iv Interval) Widen(next Interval) Interval {
	n := iv.Join(next)
	out := iv
	if n.Lo < iv.Lo {
		out.Lo = NegInf
	}
	if n.Hi > iv.Hi {
		out.Hi = PosInf
	}
	return out
}

// ClampMin raises the lower bound to at least n.
func (iv Interval) ClampMin(n int64) Interval {
	return Interval{max64(iv.Lo, n), iv.Hi}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
