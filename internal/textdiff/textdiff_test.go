package textdiff

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIdenticalTextsEmptyDiff(t *testing.T) {
	if d := Unified("a", "b", "same\ntext\n", "same\ntext\n"); d != "" {
		t.Fatalf("identical texts must produce no diff, got:\n%s", d)
	}
}

func TestSingleLineChange(t *testing.T) {
	a := "one\ntwo\nthree\nfour\nfive\nsix\nseven\neight\nnine\n"
	b := "one\ntwo\nthree\nFOUR\nfive\nsix\nseven\neight\nnine\n"
	d := Unified("old.c", "new.c", a, b)
	for _, want := range []string{
		"--- old.c", "+++ new.c", "-four", "+FOUR", " three", " seven",
	} {
		if !strings.Contains(d, want) {
			t.Fatalf("missing %q in:\n%s", want, d)
		}
	}
	// Lines beyond the 3-line context stay out of the hunk.
	if strings.Contains(d, "eight") || strings.Contains(d, "nine") {
		t.Fatalf("context too wide:\n%s", d)
	}
}

func TestInsertionAndDeletion(t *testing.T) {
	a := "a\nb\nc\n"
	b := "a\nX\nb\n"
	d := Unified("A", "B", a, b)
	if !strings.Contains(d, "+X") || !strings.Contains(d, "-c") {
		t.Fatalf("diff:\n%s", d)
	}
}

func TestHunkHeaders(t *testing.T) {
	a := "1\n2\n3\n4\n5\n6\n7\n8\n9\n10\n11\n12\n13\n14\n15\n"
	b := "1\n2\nX\n4\n5\n6\n7\n8\n9\n10\n11\n12\n13\nY\n15\n"
	d := Unified("a", "b", a, b)
	if strings.Count(d, "@@") != 4 { // two hunks, two markers each
		t.Fatalf("expected two hunks:\n%s", d)
	}
	if !strings.Contains(d, "@@ -1,6 +1,6 @@") {
		t.Fatalf("first hunk header wrong:\n%s", d)
	}
}

func TestSLRStyleDiff(t *testing.T) {
	a := "void f(void) {\n    char buf[10];\n    strcpy(buf, src);\n}\n"
	b := "void f(void) {\n    char buf[10];\n    g_strlcpy(buf, src, sizeof(buf));\n}\n"
	d := Unified("before", "after", a, b)
	if !strings.Contains(d, "-    strcpy(buf, src);") ||
		!strings.Contains(d, "+    g_strlcpy(buf, src, sizeof(buf));") {
		t.Fatalf("diff:\n%s", d)
	}
}

// TestPropertyDiffReconstructs: applying the diff's +/- lines over the
// original reconstructs the new text.
func TestPropertyDiffReconstructs(t *testing.T) {
	mk := func(seed uint32, n int) string {
		var sb strings.Builder
		r := seed
		for i := 0; i < n; i++ {
			r = r*1664525 + 1013904223
			sb.WriteString([]string{"alpha", "beta", "gamma", "delta"}[(r>>20)%4])
			sb.WriteString("\n")
		}
		return sb.String()
	}
	f := func(s1, s2 uint32, n1, n2 uint8) bool {
		a := mk(s1, int(n1%24))
		b := mk(s2, int(n2%24))
		d := Unified("a", "b", a, b)
		if a == b {
			return d == ""
		}
		// Reconstruct b by replaying the hunks.
		al := splitLines(a)
		var out []string
		ai := 0
		for _, line := range strings.Split(d, "\n") {
			switch {
			case strings.HasPrefix(line, "---") || strings.HasPrefix(line, "+++"):
			case strings.HasPrefix(line, "@@"):
				// Copy unchanged region before the hunk.
				aStart := parseAStart(line)
				for ai < aStart-1 {
					out = append(out, al[ai])
					ai++
				}
			case strings.HasPrefix(line, " "):
				out = append(out, line[1:])
				ai++
			case strings.HasPrefix(line, "-"):
				ai++
			case strings.HasPrefix(line, "+"):
				out = append(out, line[1:])
			}
		}
		for ai < len(al) {
			out = append(out, al[ai])
			ai++
		}
		rebuilt := strings.Join(out, "\n")
		if len(out) > 0 {
			rebuilt += "\n"
		}
		return rebuilt == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// parseAStart extracts the a-side start line from an "@@ -a,c +b,d @@"
// header.
func parseAStart(h string) int {
	h = strings.TrimPrefix(h, "@@ -")
	v := 0
	for i := 0; i < len(h) && h[i] >= '0' && h[i] <= '9'; i++ {
		v = v*10 + int(h[i]-'0')
	}
	return v
}
