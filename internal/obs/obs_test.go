package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(context.Background(), StageParse, "a.c")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// Every operation on the disabled path must be a no-op, not a panic.
	sp.Attr("k", "v").Attr("k2", "v2")
	sp.End()
	if tr.Len() != 0 || tr.Spans() != nil || tr.WallClock() != 0 {
		t.Fatal("nil tracer must observe nothing")
	}
	if got := tr.StageStats(); len(got) != 0 {
		t.Fatalf("nil tracer stats: %v", got)
	}
}

// skipIfNoTrace guards tests of the live recording path, which the
// cfix_notrace build compiles out (the aggregation tests below drive
// record() directly and run under both tags).
func skipIfNoTrace(t *testing.T) {
	t.Helper()
	if !Enabled() {
		t.Skip("tracing compiled out (cfix_notrace)")
	}
}

func TestSpanRecordingAndAttrs(t *testing.T) {
	skipIfNoTrace(t)
	tr := NewTracer()
	sp := tr.Start(context.Background(), StageParse, "a.c")
	sp.Attr("funcs", "3").Attr("degraded", "budget exhausted")
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans: %d", len(spans))
	}
	s := spans[0]
	if s.Name != StageParse || s.File != "a.c" || s.Lane != 0 {
		t.Fatalf("span: %+v", s)
	}
	if v, ok := s.AttrValue("funcs"); !ok || v != "3" {
		t.Fatalf("funcs attr: %q %v", v, ok)
	}
	if !s.Degraded() {
		t.Fatal("degraded attr not detected")
	}
	if s.Dur < 0 {
		t.Fatalf("negative duration: %v", s.Dur)
	}
}

func TestLaneFromContext(t *testing.T) {
	skipIfNoTrace(t)
	tr := NewTracer()
	ctx := WithLane(context.Background(), 7)
	tr.Start(ctx, StageSLR, "b.c").End()
	if got := tr.Spans()[0].Lane; got != 7 {
		t.Fatalf("lane: %d", got)
	}
	if LaneFrom(nil) != 0 || LaneFrom(context.Background()) != 0 {
		t.Fatal("untagged contexts must be lane 0")
	}
}

func TestConcurrentRecording(t *testing.T) {
	skipIfNoTrace(t)
	tr := NewTracer()
	var wg sync.WaitGroup
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := WithLane(context.Background(), w)
			for i := 0; i < per; i++ {
				tr.Start(ctx, StageCFG, "c.c").End()
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*per {
		t.Fatalf("spans: %d", tr.Len())
	}
}

// TestChromeTraceShape decodes the export and checks the trace-event
// contract the smoke checker (cmd/tracecheck) enforces.
func TestChromeTraceShape(t *testing.T) {
	skipIfNoTrace(t)
	tr := NewTracer()
	for _, name := range []string{StageParse, StageTypecheck, StageSLR} {
		tr.Start(WithLane(context.Background(), 2), name, "x.c").Attr("funcs", "1").End()
	}
	b, err := tr.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b)
	}
	if len(decoded.TraceEvents) != 3 {
		t.Fatalf("events: %d", len(decoded.TraceEvents))
	}
	for _, ev := range decoded.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("phase: %q", ev.Ph)
		}
		if ev.Dur <= 0 {
			t.Fatalf("non-positive dur: %v", ev.Dur)
		}
		if ev.Tid != 2 {
			t.Fatalf("tid: %d", ev.Tid)
		}
		if ev.Args["file"] != "x.c" {
			t.Fatalf("file arg: %v", ev.Args)
		}
	}
}

// makeSpan injects a synthetic span directly, for deterministic
// self-time arithmetic.
func makeSpan(tr *Tracer, name string, lane int, start, dur time.Duration) {
	tr.record(Span{Name: name, Lane: lane, Start: start, Dur: dur})
}

func TestStageStatsSelfTime(t *testing.T) {
	tr := NewTracer()
	// Lane 0: fix [0,100ms] containing slr [10,40] and str [50,90];
	// slr contains pointsto [15,35].
	makeSpan(tr, StageFix, 0, 0, 100*time.Millisecond)
	makeSpan(tr, StageSLR, 0, 10*time.Millisecond, 30*time.Millisecond)
	makeSpan(tr, StagePointsTo, 0, 15*time.Millisecond, 20*time.Millisecond)
	makeSpan(tr, StageSTR, 0, 50*time.Millisecond, 40*time.Millisecond)
	// Lane 1: an independent parse; nesting is per lane.
	makeSpan(tr, StageParse, 1, 5*time.Millisecond, 10*time.Millisecond)

	stats := tr.StageStats()
	byName := map[string]StageStat{}
	for _, st := range stats {
		byName[st.Name] = st
	}
	want := map[string]time.Duration{
		StageFix:      30 * time.Millisecond, // 100 - 30 - 40
		StageSLR:      10 * time.Millisecond, // 30 - 20
		StagePointsTo: 20 * time.Millisecond,
		StageSTR:      40 * time.Millisecond,
		StageParse:    10 * time.Millisecond,
	}
	for name, self := range want {
		if got := byName[name].Self; got != self {
			t.Errorf("%s self: got %v want %v", name, got, self)
		}
	}
	// Self times must sum to the per-lane traced wall clock: 100ms on
	// lane 0 plus 10ms on lane 1.
	if got := SelfTotal(stats); got != 110*time.Millisecond {
		t.Fatalf("self total: %v", got)
	}
	if got := tr.WallClock(); got != 100*time.Millisecond {
		t.Fatalf("wall: %v", got)
	}
}

func TestStageStatsDegradedCount(t *testing.T) {
	tr := NewTracer()
	tr.record(Span{Name: StageReaching, Dur: time.Millisecond,
		Attrs: []Attr{{Key: "degraded", Value: "budget exhausted"}}})
	tr.record(Span{Name: StageReaching, Start: 2 * time.Millisecond, Dur: time.Millisecond})
	stats := tr.StageStats()
	if len(stats) != 1 || stats[0].Count != 2 || stats[0].Degraded != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestMergeStageStats(t *testing.T) {
	a := []StageStat{
		{Name: StageParse, Count: 2, Total: 10 * time.Millisecond, Self: 10 * time.Millisecond,
			Min: 4 * time.Millisecond, Max: 6 * time.Millisecond},
		{Name: StageSLR, Count: 1, Total: 5 * time.Millisecond, Self: 3 * time.Millisecond,
			Min: 5 * time.Millisecond, Max: 5 * time.Millisecond, Degraded: 1},
	}
	b := []StageStat{
		{Name: StageParse, Count: 1, Total: 2 * time.Millisecond, Self: 2 * time.Millisecond,
			Min: 2 * time.Millisecond, Max: 2 * time.Millisecond},
		{Name: StageSTR, Count: 1, Total: 7 * time.Millisecond, Self: 7 * time.Millisecond,
			Min: 7 * time.Millisecond, Max: 7 * time.Millisecond},
	}
	got := MergeStageStats(nil, a)
	got = MergeStageStats(got, b)
	byName := map[string]StageStat{}
	for _, st := range got {
		byName[st.Name] = st
	}
	p := byName[StageParse]
	if p.Count != 3 || p.Total != 12*time.Millisecond || p.Self != 12*time.Millisecond ||
		p.Min != 2*time.Millisecond || p.Max != 6*time.Millisecond {
		t.Fatalf("merged parse: %+v", p)
	}
	if byName[StageSLR].Degraded != 1 || byName[StageSTR].Count != 1 {
		t.Fatalf("merged: %+v", got)
	}
	// Ordered by self descending: parse (12ms) before str (7ms) before slr (3ms).
	if got[0].Name != StageParse || got[1].Name != StageSTR || got[2].Name != StageSLR {
		t.Fatalf("order: %+v", got)
	}
}

func TestFormatStageStats(t *testing.T) {
	tr := NewTracer()
	makeSpan(tr, StageParse, 0, 0, 3*time.Millisecond)
	out := FormatStageStats(tr.StageStats(), tr.WallClock())
	for _, want := range []string{"stage", "parse", "total", "wall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
