package cpp

import (
	"strings"
	"testing"

	"repro/internal/clex"
	"repro/internal/ctoken"
)

// checkMapProperty tokenizes preprocessed output and asserts the
// source-map contract for every token extent:
//
//   - an exact mapping points at the same bytes in the original file;
//   - an inexact mapping is flagged (exact == false) and, when it names
//     a macro, the invocation extent it reports spells a use of that
//     macro in the original file.
//
// It returns the number of exact and inexact extents checked.
func checkMapProperty(t *testing.T, res *Result) (exact, inexact int) {
	t.Helper()
	toks, err := clex.Tokenize(res.Text)
	if err != nil {
		// Preprocessing hostile input can legally yield text the strict
		// lexer rejects (e.g. unterminated literals that were already in
		// the input); the map property is only claimed for lexable output.
		t.Skipf("output not lexable: %v", err)
	}
	for _, tok := range toks {
		if tok.Kind == ctoken.KindEOF || !tok.Extent.IsValid() || tok.Extent.Len() == 0 {
			continue
		}
		org, ok := res.Map.ToOriginal(tok.Extent)
		if !ok {
			inexact++
			continue
		}
		exact++
		content, have := res.Map.FileContent(org.File)
		if !have {
			t.Fatalf("exact mapping into unknown file %q for token %q", org.File, tok.Text)
		}
		if org.Extent.Pos < 0 || int(org.Extent.End) > len(content) {
			t.Fatalf("exact mapping out of range: %+v in %q (len %d)", org.Extent, org.File, len(content))
		}
		got := content[org.Extent.Pos:org.Extent.End]
		want := res.Text[tok.Extent.Pos:tok.Extent.End]
		if got != want {
			t.Fatalf("exact mapping lies: token %q at %v maps to %q at %v in %s",
				want, tok.Extent, got, org.Extent, org.File)
		}
	}
	return exact, inexact
}

// TestMapProperty runs the byte-exactness property over representative
// programs mixing verbatim text, macros, includes, and continuations.
func TestMapProperty(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		headers map[string]string
	}{
		{
			name: "plain",
			src:  "int main(void) {\n  char buf[10];\n  return 0;\n}\n",
		},
		{
			name: "macros",
			src:  "#define N 10\n#define SQ(x) ((x)*(x))\nchar buf[N];\nint y = SQ(N + 1);\n",
		},
		{
			name: "include",
			src:  "#include \"h.h\"\nint main(void) { return f(M); }\n",
			headers: map[string]string{
				"h.h": "#define M 3\nint f(int);\n",
			},
		},
		{
			name: "continuations",
			src:  "int fo\\\no = 1;\nchar s[] = \"a\\\nb\";\n",
		},
		{
			name: "conditionals",
			src:  "#if 1\nint a;\n#else\nint b;\n#endif\nint c;\n",
		},
		{
			name: "passthrough include",
			src:  "#include <string.h>\nint main(void) { return 0; }\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := run(t, tc.src, tc.headers, Options{})
			exact, inexact := checkMapProperty(t, res)
			if exact == 0 {
				t.Fatalf("no exact extents checked (inexact=%d); property vacuous", inexact)
			}
		})
	}
}

// TestMacroExtentFlagged pins the unrepairable-in-place contract: a
// token born from a macro expansion maps inexactly, to the invocation
// extent, with the macro named.
func TestMacroExtentFlagged(t *testing.T) {
	src := "#define LEN 16\nchar buf[LEN];\n"
	res := run(t, src, nil, Options{})
	if res.Text != "char buf[16];\n" {
		t.Fatalf("output %q", res.Text)
	}
	at := strings.Index(res.Text, "16")
	org, exact := res.Map.ToOriginal(ctoken.Extent{Pos: ctoken.Pos(at), End: ctoken.Pos(at + 2)})
	if exact {
		t.Fatal("macro-expanded extent reported exact")
	}
	if org.Macro != "LEN" {
		t.Fatalf("macro = %q, want LEN", org.Macro)
	}
	if org.File != "main.c" {
		t.Fatalf("file = %q", org.File)
	}
	inv := src[org.Extent.Pos:org.Extent.End]
	if inv != "LEN" {
		t.Fatalf("invocation extent spells %q, want LEN", inv)
	}
}

// TestHeaderExtentExactButElsewhere: tokens from an included header map
// exactly — into the header file, not the main file. Callers that only
// edit the main file must check Origin.File.
func TestHeaderExtentExactButElsewhere(t *testing.T) {
	res := run(t, "#include \"d.h\"\nint x;\n", map[string]string{"d.h": "int fromheader;\n"}, Options{})
	at := strings.Index(res.Text, "fromheader")
	org, exact := res.Map.ToOriginal(ctoken.Extent{Pos: ctoken.Pos(at), End: ctoken.Pos(at + len("fromheader"))})
	if !exact {
		t.Fatal("header token should map exactly")
	}
	if org.File != "d.h" {
		t.Fatalf("file = %q, want d.h", org.File)
	}
}

// TestSpanningExtentInexact: an extent spanning a macro boundary is not
// contiguous in the original and must be flagged.
func TestSpanningExtentInexact(t *testing.T) {
	src := "#define N 10\nchar buf[N];\n"
	res := run(t, src, nil, Options{})
	// Extent covering "buf[10" crosses Direct -> Macro.
	at := strings.Index(res.Text, "buf")
	_, exact := res.Map.ToOriginal(ctoken.Extent{Pos: ctoken.Pos(at), End: ctoken.Pos(at + 6)})
	if exact {
		t.Fatal("extent spanning a macro expansion reported exact")
	}
}

// TestPosition smoke-tests human-readable positions through the map.
func TestPosition(t *testing.T) {
	res := run(t, "#define N 1\nint a;\nint b = N;\n", nil, Options{})
	at := strings.Index(res.Text, "b")
	p := res.Map.Position(ctoken.Pos(at))
	if p.File != "main.c" || p.Line != 3 {
		t.Fatalf("Position = %+v, want main.c:3", p)
	}
}

// FuzzRoundTrip feeds arbitrary source through cpp and re-checks the
// map property plus structural invariants on the segments.
func FuzzRoundTrip(f *testing.F) {
	seeds := []string{
		"int main(void) { return 0; }\n",
		"#define N 10\nchar buf[N];\n",
		"#define SQ(x) ((x)*(x))\nint y = SQ(3);\n",
		"#define STR(x) #x\nconst char *s = STR(a b);\n",
		"#define GLUE(a,b) a##b\nint GLUE(x,y);\n",
		"#if 0\njunk\n#else\nint ok;\n#endif\n",
		"#include \"missing.h\"\nint z;\n",
		"int a \\\n= 1;\n",
		"#define A B\n#define B A\nint A;\n",
		"#define F(x) F(x)\nint q = F(2);\n",
		"#define E\nE E E int r; E\n",
		"#ifdef X\n#elif Y\n#else\n#endif\n",
		"#define V(...) f(__VA_ARGS__)\nV(1,2,3);\n",
		"'unterminated\n\"also\n#define\n#\n##\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<14 {
			return
		}
		res, err := Preprocess("fuzz.c", src, Options{MaxExpansions: 2000, MaxDepth: 8})
		if err != nil {
			t.Fatalf("non-strict Preprocess returned error: %v", err)
		}
		segs := res.Map.Segments()
		prev := 0
		for _, s := range segs {
			if s.OutPos != prev || s.OutEnd < s.OutPos {
				t.Fatalf("segments not contiguous: %+v (prev end %d)", s, prev)
			}
			if s.Kind == SegDirect && s.OrigEnd-s.OrigPos != s.OutEnd-s.OutPos {
				t.Fatalf("direct segment length mismatch: %+v", s)
			}
			if s.Kind == SegDirect {
				content, ok := res.Map.FileContent(s.File)
				if !ok || s.OrigPos < 0 || s.OrigEnd > len(content) {
					t.Fatalf("direct segment out of range: %+v", s)
				}
				if content[s.OrigPos:s.OrigEnd] != res.Text[s.OutPos:s.OutEnd] {
					t.Fatalf("direct segment bytes differ: %+v", s)
				}
			}
			prev = s.OutEnd
		}
		if prev != len(res.Text) {
			t.Fatalf("segments cover %d bytes of %d", prev, len(res.Text))
		}
		checkMapProperty(t, res)
	})
}
