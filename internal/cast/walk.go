package cast

// Inspect traverses the AST rooted at n in depth-first order, calling f for
// each node. If f returns false for a node, its children are skipped.
// Nil children are not visited.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	for _, c := range Children(n) {
		Inspect(c, f)
	}
}

// InspectExprs traverses the AST and calls f for every expression node.
func InspectExprs(n Node, f func(Expr) bool) {
	Inspect(n, func(node Node) bool {
		if e, ok := node.(Expr); ok {
			return f(e)
		}
		return true
	})
}

// Children returns the direct child nodes of n in source order. The slice
// is freshly allocated; callers may not mutate the tree through it.
func Children(n Node) []Node {
	var out []Node
	add := func(c Node) {
		// Typed nils arrive when optional fields (e.g. IfStmt.Else) are
		// absent; filter them so visitors never see nil interfaces with
		// non-nil types.
		if c == nil || isNilNode(c) {
			return
		}
		out = append(out, c)
	}
	switch x := n.(type) {
	case *Ident, *IntLit, *FloatLit, *CharLit, *StringLit,
		*BreakStmt, *ContinueStmt, *GotoStmt, *NullStmt,
		*RecordDecl, *TypedefDecl, *EnumDecl:
		// Leaves.
	case *ParenExpr:
		add(x.Inner)
	case *UnaryExpr:
		add(x.Operand)
	case *PostfixExpr:
		add(x.Operand)
	case *BinaryExpr:
		add(x.X)
		add(x.Y)
	case *AssignExpr:
		add(x.LHS)
		add(x.RHS)
	case *CondExpr:
		add(x.Cond)
		add(x.Then)
		add(x.Else)
	case *CallExpr:
		add(x.Fun)
		for _, a := range x.Args {
			add(a)
		}
	case *IndexExpr:
		add(x.Base)
		add(x.Index)
	case *MemberExpr:
		add(x.Base)
	case *CastExpr:
		add(x.Operand)
	case *SizeofExpr:
		if x.Operand != nil {
			add(x.Operand)
		}
	case *CommaExpr:
		add(x.X)
		add(x.Y)
	case *InitListExpr:
		for _, e := range x.Elems {
			add(e)
		}
	case *ExprStmt:
		add(x.X)
	case *DeclStmt:
		for _, d := range x.Decls {
			add(d)
		}
	case *CompoundStmt:
		for _, s := range x.Items {
			add(s)
		}
	case *IfStmt:
		add(x.Cond)
		add(x.Then)
		add(x.Else)
	case *WhileStmt:
		add(x.Cond)
		add(x.Body)
	case *DoWhileStmt:
		add(x.Body)
		add(x.Cond)
	case *ForStmt:
		add(x.Init)
		add(x.Cond)
		add(x.Post)
		add(x.Body)
	case *ReturnStmt:
		add(x.Result)
	case *LabeledStmt:
		add(x.Stmt)
	case *SwitchStmt:
		add(x.Tag)
		add(x.Body)
	case *CaseStmt:
		add(x.Value)
		add(x.Stmt)
	case *VarDecl:
		add(x.Init)
	case *MultiDecl:
		for _, d := range x.Decls {
			add(d)
		}
	case *ParamDecl:
		// Leaf.
	case *FuncDef:
		for _, p := range x.Params {
			add(p)
		}
		add(x.Body)
	case *TranslationUnit:
		for _, d := range x.Decls {
			add(d)
		}
	}
	return out
}

// isNilNode reports whether the interface holds a nil typed pointer.
func isNilNode(n Node) bool {
	switch x := n.(type) {
	case Expr:
		return isNilExpr(x)
	case *CompoundStmt:
		return x == nil
	case *VarDecl:
		return x == nil
	case *ParamDecl:
		return x == nil
	}
	return false
}

func isNilExpr(e Expr) bool {
	switch x := e.(type) {
	case *Ident:
		return x == nil
	case *IntLit:
		return x == nil
	case *FloatLit:
		return x == nil
	case *CharLit:
		return x == nil
	case *StringLit:
		return x == nil
	case *ParenExpr:
		return x == nil
	case *UnaryExpr:
		return x == nil
	case *PostfixExpr:
		return x == nil
	case *BinaryExpr:
		return x == nil
	case *AssignExpr:
		return x == nil
	case *CondExpr:
		return x == nil
	case *CallExpr:
		return x == nil
	case *IndexExpr:
		return x == nil
	case *MemberExpr:
		return x == nil
	case *CastExpr:
		return x == nil
	case *SizeofExpr:
		return x == nil
	case *CommaExpr:
		return x == nil
	case *InitListExpr:
		return x == nil
	}
	return e == nil
}
