package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"
)

// benchReport is the BENCH_incremental.json schema: end-to-end latency
// of warm incremental re-analysis measured through the real LSP loop
// (framed JSON-RPC over a pipe, didChange in, publishDiagnostics out).
// benchguard -incremental gates WarmP50Ms.
type benchReport struct {
	Funcs       int     `json:"funcs"`
	Edits       int     `json:"edits"`
	ColdOpenMs  float64 `json:"cold_open_ms"`
	WarmP50Ms   float64 `json:"warm_p50_ms"`
	WarmP99Ms   float64 `json:"warm_p99_ms"`
	WarmMaxMs   float64 `json:"warm_max_ms"`
	Reanalyzed  int64   `json:"funcs_reanalyzed"`
	Reused      int64   `json:"funcs_reused"`
	GoVersion   string  `json:"go_version,omitempty"`
	DurationSec float64 `json:"duration_sec"`
}

// benchProgram builds a C file with n independent overflowing
// functions, so a one-function edit leaves n-1 memoized.
func benchProgram(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "void fn%d(void) {\n    char buf%d[8];\n    strcpy(buf%d, \"0123456789\");\n}\n\n", i, i, i)
	}
	return sb.String()
}

// benchClient speaks framed JSON-RPC to an in-process server.
type benchClient struct {
	out *writer
	in  *bufio.Reader
}

func (c *benchClient) request(id int, method string, params any) {
	if err := c.out.write(struct {
		JSONRPC string `json:"jsonrpc"`
		ID      int    `json:"id"`
		Method  string `json:"method"`
		Params  any    `json:"params"`
	}{"2.0", id, method, params}); err != nil {
		panic(err)
	}
}

func (c *benchClient) notify(method string, params any) {
	if err := c.out.write(struct {
		JSONRPC string `json:"jsonrpc"`
		Method  string `json:"method"`
		Params  any    `json:"params"`
	}{"2.0", method, params}); err != nil {
		panic(err)
	}
}

// waitDiagnostics reads messages until the publishDiagnostics for the
// given document version arrives.
func (c *benchClient) waitDiagnostics(version int) publishDiagnosticsParams {
	for {
		body, err := readMessage(c.in)
		if err != nil {
			panic(err)
		}
		var msg struct {
			Method string          `json:"method"`
			Params json.RawMessage `json:"params"`
		}
		if err := json.Unmarshal(body, &msg); err != nil {
			panic(err)
		}
		if msg.Method != "textDocument/publishDiagnostics" {
			continue
		}
		var p publishDiagnosticsParams
		if err := json.Unmarshal(msg.Params, &p); err != nil {
			panic(err)
		}
		if p.Version == version || version < 0 {
			return p
		}
	}
}

// runBench measures cold open and warm per-edit latency through the
// full LSP loop and writes the report to outPath ("-" for stdout).
func runBench(funcs, edits int, backendName, checks, outPath string) error {
	start := time.Now()

	clientToServer := newPipe()
	serverToClient := newPipe()
	srv := newLSPServer(serverToClient, backendName, checks, log.New(io.Discard, "", 0))
	serverErr := make(chan error, 1)
	go func() { serverErr <- srv.run(clientToServer) }()

	client := &benchClient{out: &writer{out: clientToServer}, in: bufio.NewReader(serverToClient)}
	client.request(1, "initialize", map[string]any{})
	// Swallow the initialize response before timing anything.
	if _, err := readMessage(client.in); err != nil {
		return err
	}

	const uri = "file:///bench.c"
	text := benchProgram(funcs)

	coldStart := time.Now()
	client.notify("textDocument/didOpen", didOpenParams{
		TextDocument: textDocumentItem{URI: uri, Version: 1, Text: text},
	})
	if p := client.waitDiagnostics(1); len(p.Diagnostics) == 0 {
		return fmt.Errorf("bench: cold open published no diagnostics")
	}
	coldMs := float64(time.Since(coldStart).Microseconds()) / 1000

	// Warm edits: toggle one function's buffer size per edit, rotating
	// over the functions, so each edit dirties exactly one function.
	warm := make([]float64, 0, edits)
	version := 1
	for i := 0; i < edits; i++ {
		fn := i % funcs
		marker := fmt.Sprintf("buf%d[", fn)
		at := strings.Index(text, marker) + len(marker)
		old := text[at]
		repl := "9"
		if old == '9' {
			repl = "8"
		}
		version++
		change := contentChange{
			Range: &lspRange{Start: lspPos(text, at), End: lspPos(text, at+1)},
			Text:  repl,
		}
		text = text[:at] + repl + text[at+1:]

		t0 := time.Now()
		client.notify("textDocument/didChange", didChangeParams{
			TextDocument:   versionedTextDocumentIdentifier{URI: uri, Version: version},
			ContentChanges: []contentChange{change},
		})
		client.waitDiagnostics(version)
		warm = append(warm, float64(time.Since(t0).Microseconds())/1000)
	}

	// Pull the session counters straight off the server: it runs in
	// process, and the dispatch loop is idle once the diagnostics for
	// the last version arrived.
	var reanalyzed, reused int64
	if doc := srv.docs[uri]; doc != nil && doc.session != nil {
		c := doc.session.Counters()
		reanalyzed, reused = c.FuncsReanalyzed, c.FuncsReused
	}

	client.notify("exit", nil)
	clientToServer.Close()
	<-serverErr

	sort.Float64s(warm)
	rep := benchReport{
		Funcs:       funcs,
		Edits:       edits,
		ColdOpenMs:  coldMs,
		WarmP50Ms:   percentile(warm, 50),
		WarmP99Ms:   percentile(warm, 99),
		WarmMaxMs:   warm[len(warm)-1],
		Reanalyzed:  reanalyzed,
		Reused:      reused,
		DurationSec: time.Since(start).Seconds(),
	}

	body, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if outPath == "-" || outPath == "" {
		_, err = os.Stdout.Write(body)
		return err
	}
	return os.WriteFile(outPath, body, 0o644)
}

// percentile reads the p-th percentile from sorted samples
// (nearest-rank).
func percentile(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}

// pipe is an in-process byte stream: everything the bench writes to it
// is read back by the peer. io.Pipe gives the blocking semantics a
// JSON-RPC connection needs.
type pipe struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func newPipe() *pipe {
	r, w := io.Pipe()
	return &pipe{r: r, w: w}
}

func (p *pipe) Read(b []byte) (int, error)  { return p.r.Read(b) }
func (p *pipe) Write(b []byte) (int, error) { return p.w.Write(b) }
func (p *pipe) Close() error                { p.w.Close(); return p.r.Close() }
