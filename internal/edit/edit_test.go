package edit

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ctoken"
)

func ext(pos, end int) ctoken.Extent {
	return ctoken.Extent{Pos: ctoken.Pos(pos), End: ctoken.Pos(end)}
}

func mustApply(t *testing.T, s *Script, src string) string {
	t.Helper()
	out, err := s.Apply(src)
	if err != nil {
		t.Fatalf("Apply(%q): %v", src, err)
	}
	return out
}

func TestApplyBasics(t *testing.T) {
	src := "hello world"
	tests := []struct {
		name string
		s    *Script
		want string
	}{
		{"empty script", NewScript(), "hello world"},
		{"insert at start", NewScript(Insert(0, ">> ")), ">> hello world"},
		{"insert at EOF", NewScript(Insert(ctoken.Pos(len(src)), "!")), "hello world!"},
		{"delete word", NewScript(Delete(ext(5, 11))), "hello"},
		{"replace word", NewScript(Replace(ext(6, 11), "gopher")), "hello gopher"},
		{"delete everything", NewScript(Delete(ext(0, 11))), ""},
		{"replace everything", NewScript(Replace(ext(0, 11), "x")), "x"},
		{
			"unsorted deltas sort before applying",
			NewScript(Replace(ext(6, 11), "there"), Replace(ext(0, 5), "why")),
			"why there",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := mustApply(t, tc.s, src); got != tc.want {
				t.Fatalf("got %q, want %q", got, tc.want)
			}
		})
	}
}

// Adjacent deltas — one ending exactly where the next starts — must not
// be treated as overlapping, in either queue order.
func TestApplyAdjacentDeltas(t *testing.T) {
	src := "abcdef"
	s := NewScript(Delete(ext(0, 2)), Replace(ext(2, 4), "XY"), Delete(ext(4, 6)))
	if got := mustApply(t, s, src); got != "XY" {
		t.Fatalf("adjacent deltas: got %q, want %q", got, "XY")
	}
	// Insert exactly at a deletion's end boundary.
	s = NewScript(Delete(ext(0, 3)), Insert(3, "Z"))
	if got := mustApply(t, s, src); got != "Zdef" {
		t.Fatalf("insert at deletion end: got %q, want %q", got, "Zdef")
	}
	// Insert exactly at a replacement's start: the insert sorts first.
	s = NewScript(Replace(ext(3, 6), "!"), Insert(3, "Z"))
	if got := mustApply(t, s, src); got != "abcZ!" {
		t.Fatalf("insert at replacement start: got %q, want %q", got, "abcZ!")
	}
}

// Multiple zero-width inserts at one position apply in queue order.
func TestApplyZeroWidthInsertOrder(t *testing.T) {
	src := "ab"
	s := NewScript(Insert(1, "1"), Insert(1, "2"), Insert(1, "3"))
	if got := mustApply(t, s, src); got != "a123b" {
		t.Fatalf("queue order: got %q, want %q", got, "a123b")
	}
	// Same position, added in a different order.
	s = NewScript(Insert(1, "3"), Insert(1, "1"), Insert(1, "2"))
	if got := mustApply(t, s, src); got != "a312b" {
		t.Fatalf("queue order preserved: got %q, want %q", got, "a312b")
	}
}

func TestApplyAtEOF(t *testing.T) {
	src := "end"
	eof := ctoken.Pos(len(src))
	// Insert at EOF, delete ending at EOF, replace ending at EOF.
	if got := mustApply(t, NewScript(Insert(eof, ".")), src); got != "end." {
		t.Fatalf("insert at EOF: got %q", got)
	}
	if got := mustApply(t, NewScript(Delete(ext(1, 3))), src); got != "e" {
		t.Fatalf("delete to EOF: got %q", got)
	}
	if got := mustApply(t, NewScript(Replace(ext(2, 3), "ough")), src); got != "enough" {
		t.Fatalf("replace to EOF: got %q", got)
	}
	// Empty source: only inserts at 0 are legal.
	if got := mustApply(t, NewScript(Insert(0, "new")), ""); got != "new" {
		t.Fatalf("insert into empty: got %q", got)
	}
}

func TestValidateErrors(t *testing.T) {
	src := "0123456789"
	var be *BoundsError
	var oe *OverlapError

	_, err := NewScript(Delete(ext(5, 11))).Apply(src)
	if !errors.As(err, &be) {
		t.Fatalf("past-EOF delete: got %v, want BoundsError", err)
	}
	if be.SrcLen != 10 || be.Index != 0 {
		t.Fatalf("BoundsError fields: %+v", be)
	}

	_, err = NewScript(Delta{Extent: ext(7, 3)}).Apply(src)
	if !errors.As(err, &be) {
		t.Fatalf("inverted extent: got %v, want BoundsError", err)
	}

	_, err = NewScript(Delete(ext(0, 5)), Replace(ext(4, 8), "x")).Apply(src)
	if !errors.As(err, &oe) {
		t.Fatalf("overlap: got %v, want OverlapError", err)
	}
	if oe.At != 4 || oe.Index != 1 {
		t.Fatalf("OverlapError fields: %+v", oe)
	}

	// Insert strictly inside a deleted span is an overlap (ambiguous).
	_, err = NewScript(Delete(ext(0, 5)), Insert(3, "x")).Apply(src)
	if !errors.As(err, &oe) {
		t.Fatalf("insert inside deletion: got %v, want OverlapError", err)
	}

	// Validate alone agrees with Apply.
	if err := Validate(10, []Delta{Delete(ext(0, 5)), Replace(ext(4, 8), "x")}); err == nil {
		t.Fatal("Validate missed the overlap")
	}
	if err := Validate(10, []Delta{Delete(ext(0, 5)), Insert(5, "x"), Delete(ext(5, 7))}); err != nil {
		t.Fatalf("Validate rejected legal adjacency: %v", err)
	}
}

func TestNewLen(t *testing.T) {
	s := NewScript(Delete(ext(0, 3)), Insert(5, "abcd"), Replace(ext(7, 9), "x"))
	src := "0123456789"
	out := mustApply(t, s, src)
	if got := s.NewLen(len(src)); got != len(out) {
		t.Fatalf("NewLen = %d, actual output %d bytes (%q)", got, len(out), out)
	}
}

func TestComposeSequential(t *testing.T) {
	src := "the quick brown fox"
	first := NewScript(Replace(ext(4, 9), "slow"))    // "the slow brown fox"
	second := NewScript(Replace(ext(9, 14), "green")) // against first's output
	composed, err := Compose(len(src), first, second)
	if err != nil {
		t.Fatal(err)
	}
	mid := mustApply(t, first, src)
	want := mustApply(t, second, mid)
	got := mustApply(t, composed, src)
	if got != want {
		t.Fatalf("Compose: got %q, want %q", got, want)
	}
}

func TestComposeSecondEditsInsertedText(t *testing.T) {
	src := "ab"
	first := NewScript(Insert(1, "XYZ")) // "aXYZb"
	// Delete the middle of the inserted text plus the following original
	// byte.
	second := NewScript(Delete(ext(2, 5))) // "aX"
	composed, err := Compose(len(src), first, second)
	if err != nil {
		t.Fatal(err)
	}
	mid := mustApply(t, first, src)
	want := mustApply(t, second, mid)
	if got := mustApply(t, composed, src); got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestComposeEmptyScripts(t *testing.T) {
	src := "unchanged"
	composed, err := Compose(len(src), NewScript(), NewScript())
	if err != nil {
		t.Fatal(err)
	}
	if composed.Len() != 0 {
		t.Fatalf("empty∘empty has %d deltas", composed.Len())
	}
	first := NewScript(Replace(ext(0, 2), "ch"))
	composed, err = Compose(len(src), first, NewScript())
	if err != nil {
		t.Fatal(err)
	}
	if got := mustApply(t, composed, src); got != mustApply(t, first, src) {
		t.Fatalf("first∘empty: got %q", got)
	}
}

func TestComposeInvalid(t *testing.T) {
	if _, err := Compose(5, NewScript(Delete(ext(0, 9))), NewScript()); err == nil {
		t.Fatal("invalid first script accepted")
	}
	// Second script validated against first's output length (3), not the
	// original length (5).
	first := NewScript(Delete(ext(0, 2))) // 5 -> 3 bytes
	if _, err := Compose(5, first, NewScript(Delete(ext(2, 5)))); err == nil {
		t.Fatal("second script past mid-text EOF accepted")
	}
	if _, err := Compose(5, first, NewScript(Delete(ext(1, 3)))); err != nil {
		t.Fatalf("legal second script rejected: %v", err)
	}
}

// randScript builds a valid random script against a text of length n:
// non-overlapping spans, random insert/delete/replace mix.
func randScript(rng *rand.Rand, n int) *Script {
	s := NewScript()
	pos := 0
	for pos <= n {
		gap := rng.Intn(6)
		pos += gap
		if pos > n {
			break
		}
		switch rng.Intn(3) {
		case 0: // insert
			s.Add(Insert(ctoken.Pos(pos), randText(rng)))
			pos++ // keep subsequent spans clear of this boundary
		case 1: // delete
			end := pos + rng.Intn(4)
			if end > n {
				end = n
			}
			s.Add(Delete(ext(pos, end)))
			pos = end + 1
		default: // replace
			end := pos + rng.Intn(4)
			if end > n {
				end = n
			}
			s.Add(Replace(ext(pos, end), randText(rng)))
			pos = end + 1
		}
		if rng.Intn(3) == 0 {
			break
		}
	}
	return s
}

func randText(rng *rand.Rand) string {
	const alphabet = "xyz_AB"
	n := rng.Intn(5)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

// The compose property: Compose(a,b).Apply(src) == b.Apply(a.Apply(src))
// over randomized script pairs, including chained composition of three.
func TestComposeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	src := "int main(void) { char buf[16]; strcpy(buf, argv[1]); return 0; }"
	for i := 0; i < 500; i++ {
		a := randScript(rng, len(src))
		mid, err := a.Apply(src)
		if err != nil {
			t.Fatalf("iter %d: first script invalid: %v", i, err)
		}
		b := randScript(rng, len(mid))
		want, err := b.Apply(mid)
		if err != nil {
			t.Fatalf("iter %d: second script invalid: %v", i, err)
		}
		ab, err := Compose(len(src), a, b)
		if err != nil {
			t.Fatalf("iter %d: Compose: %v", i, err)
		}
		got, err := ab.Apply(src)
		if err != nil {
			t.Fatalf("iter %d: composed script invalid: %v\na=%v\nb=%v", i, err, a.Deltas(), b.Deltas())
		}
		if got != want {
			t.Fatalf("iter %d: composed output %q, want %q\na=%v\nb=%v", i, got, want, a.Deltas(), b.Deltas())
		}
		// Chain a third script to exercise composed∘composed.
		c := randScript(rng, len(want))
		final, err := c.Apply(want)
		if err != nil {
			t.Fatalf("iter %d: third script invalid: %v", i, err)
		}
		abc, err := Compose(len(src), ab, c)
		if err != nil {
			t.Fatalf("iter %d: Compose chained: %v", i, err)
		}
		got3, err := abc.Apply(src)
		if err != nil {
			t.Fatalf("iter %d: chained composed invalid: %v", i, err)
		}
		if got3 != final {
			t.Fatalf("iter %d: chained output %q, want %q", i, got3, final)
		}
	}
}

func TestMapperOldToNew(t *testing.T) {
	src := "0123456789"
	s := NewScript(Delete(ext(2, 4)), Insert(6, "ab")) // "01" + "45" + "ab" + "6789"
	out := mustApply(t, s, src)
	if out != "0145ab6789" {
		t.Fatalf("setup: %q", out)
	}
	m := NewMapper(s)
	cases := []struct{ old, new int }{
		{0, 0}, {1, 1},
		{2, 2}, {3, 2}, // inside deletion: collapse to its new start
		{4, 2}, {5, 3},
		{6, 6}, // right affinity: lands after "ab"
		{7, 7}, {9, 9}, {10, 10},
	}
	for _, c := range cases {
		if got := m.OldToNew(ctoken.Pos(c.old)); int(got) != c.new {
			t.Errorf("OldToNew(%d) = %d, want %d", c.old, got, c.new)
		}
	}
}

func TestMapperNewToOld(t *testing.T) {
	s := NewScript(Delete(ext(2, 4)), Insert(6, "ab"))
	m := NewMapper(s)
	// Output "0145ab6789": positions 4,5 are inserted text → map to 6.
	cases := []struct{ new, old int }{
		{0, 0}, {1, 1}, {2, 4}, {3, 5}, {4, 6}, {5, 6}, {6, 6}, {7, 7}, {9, 9},
	}
	for _, c := range cases {
		if got := m.NewToOld(ctoken.Pos(c.new)); int(got) != c.old {
			t.Errorf("NewToOld(%d) = %d, want %d", c.new, got, c.old)
		}
	}
}

// Round-trip property: for positions untouched by any delta,
// NewToOld(OldToNew(p)) == p.
func TestMapperRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := strings.Repeat("abcdefgh", 16)
	for i := 0; i < 200; i++ {
		s := randScript(rng, len(src))
		m := NewMapper(s)
		deltas := s.Deltas()
	pos:
		for p := 0; p <= len(src); p++ {
			for _, d := range deltas {
				// Skip positions a delta touches; their mapping is
				// deliberately lossy.
				if d.IsInsert() {
					if int(d.Extent.Pos) == p {
						continue pos
					}
				} else if p >= int(d.Extent.Pos) && p <= int(d.Extent.End) {
					continue pos
				}
			}
			if got := m.NewToOld(m.OldToNew(ctoken.Pos(p))); int(got) != p {
				t.Fatalf("iter %d: round trip %d -> %d -> %d\nscript=%v",
					i, p, m.OldToNew(ctoken.Pos(p)), got, deltas)
			}
		}
	}
}

func TestMapExtent(t *testing.T) {
	src := "0123456789abcdef"
	s := NewScript(Delete(ext(2, 4)), Insert(8, "XY"), Replace(ext(10, 12), "z"))
	out := mustApply(t, s, src)
	m := NewMapper(s)

	// Untouched extent after all the action shifts exactly.
	mapped, exact := m.MapExtent(ext(12, 16))
	if !exact {
		t.Fatal("untouched extent reported inexact")
	}
	if out[mapped.Pos:mapped.End] != src[12:16] {
		t.Fatalf("mapped text %q, want %q", out[mapped.Pos:mapped.End], src[12:16])
	}

	// Untouched extent between deltas.
	mapped, exact = m.MapExtent(ext(4, 8))
	if !exact || out[mapped.Pos:mapped.End] != src[4:8] {
		t.Fatalf("between deltas: exact=%v text=%q", exact, out[mapped.Pos:mapped.End])
	}

	// Extent with an insertion exactly at its end stays exact and does
	// not swallow the inserted text.
	mapped, exact = m.MapExtent(ext(6, 8))
	if !exact || out[mapped.Pos:mapped.End] != src[6:8] {
		t.Fatalf("insert at end: exact=%v text=%q", exact, out[mapped.Pos:mapped.End])
	}

	// Extent with an insertion exactly at its start stays exact; right
	// affinity keeps the inserted text out.
	mapped, exact = m.MapExtent(ext(8, 10))
	if !exact || out[mapped.Pos:mapped.End] != src[8:10] {
		t.Fatalf("insert at start: exact=%v text=%q", exact, out[mapped.Pos:mapped.End])
	}

	// Extent overlapping a replacement is inexact.
	if _, exact = m.MapExtent(ext(9, 11)); exact {
		t.Fatal("overlapping replacement reported exact")
	}
	// Extent containing an insertion strictly inside is inexact.
	if _, exact = m.MapExtent(ext(7, 9)); exact {
		t.Fatal("interior insertion reported exact")
	}
	// Extent inside a deleted span collapses.
	mapped, exact = m.MapExtent(ext(2, 3))
	if exact || mapped.Len() != 0 {
		t.Fatalf("deleted span: exact=%v mapped=%+v", exact, mapped)
	}
}

// Exactness property: whenever MapExtent reports exact, the mapped
// extent's bytes in the edited text equal the original extent's bytes.
func TestMapExtentExactnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	src := strings.Repeat("0123456789", 10)
	for i := 0; i < 300; i++ {
		s := randScript(rng, len(src))
		out := mustApply(t, s, src)
		m := NewMapper(s)
		for j := 0; j < 50; j++ {
			a := rng.Intn(len(src))
			b := a + rng.Intn(len(src)-a)
			e := ext(a, b)
			mapped, exact := m.MapExtent(e)
			if !exact {
				continue
			}
			if int(mapped.End) > len(out) || mapped.Pos > mapped.End {
				t.Fatalf("iter %d: exact extent out of bounds: %+v -> %+v (out %d bytes)\nscript=%v",
					i, e, mapped, len(out), s.Deltas())
			}
			if out[mapped.Pos:mapped.End] != src[e.Pos:e.End] {
				t.Fatalf("iter %d: exact extent changed: %+v(%q) -> %+v(%q)\nscript=%v",
					i, e, src[e.Pos:e.End], mapped, out[mapped.Pos:mapped.End], s.Deltas())
			}
		}
	}
}
