package cast_test

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/samate"
)

const walkSample = `
struct s { int a; char *name; };
int global = 3;
static int helper(int v) { return v * 2; }
void f(int n, char *p) {
    int i;
    struct s local;
    char buf[8];
    for (i = 0; i < n; i++) {
        if (i % 2 == 0) {
            buf[i % 8] = 'a' + i;
        } else {
            local.a = helper(i);
        }
    }
    switch (n) {
    case 1:
        p = buf;
        break;
    default:
        p = local.name ? local.name : buf;
    }
    while (n-- > 0) {
        global += *p;
    }
    do { global--; } while (0);
    goto out;
out:
    return;
}
`

func TestChildrenExtentsNested(t *testing.T) {
	tu, err := cparse.Parse("w.c", walkSample)
	if err != nil {
		t.Fatal(err)
	}
	checkExtents(t, tu)
}

// checkExtents asserts the structural invariant every transformation
// depends on: a parent's extent covers each child's extent.
func checkExtents(t *testing.T, root cast.Node) {
	t.Helper()
	cast.Inspect(root, func(n cast.Node) bool {
		pe := n.Extent()
		if !pe.IsValid() {
			t.Errorf("node %T has invalid extent", n)
			return false
		}
		for _, c := range cast.Children(n) {
			ce := c.Extent()
			if !ce.IsValid() {
				t.Errorf("child %T of %T has invalid extent", c, n)
				continue
			}
			if !pe.Covers(ce) {
				t.Errorf("%T extent [%d,%d) does not cover child %T [%d,%d)",
					n, pe.Pos, pe.End, c, ce.Pos, ce.End)
			}
		}
		return true
	})
}

// TestExtentInvariantOverGeneratedCorpus runs the same invariant over a
// slice of the generated benchmark programs — thousands of distinct ASTs.
func TestExtentInvariantOverGeneratedCorpus(t *testing.T) {
	for _, cwe := range samate.CWEs {
		n := samate.TableIIICounts[cwe]
		if n > 40 {
			n = 40
		}
		for _, p := range samate.Generate(cwe, n) {
			tu, err := cparse.Parse(p.ID+".c", p.Source)
			if err != nil {
				t.Fatalf("%s: %v", p.ID, err)
			}
			checkExtents(t, tu)
		}
	}
}

func TestInspectPrune(t *testing.T) {
	tu, err := cparse.Parse("w.c", walkSample)
	if err != nil {
		t.Fatal(err)
	}
	// Pruning at functions must prevent visiting their bodies.
	sawIdent := false
	cast.Inspect(tu, func(n cast.Node) bool {
		if _, ok := n.(*cast.FuncDef); ok {
			return false
		}
		if _, ok := n.(*cast.Ident); ok {
			sawIdent = true
		}
		return true
	})
	// Identifiers inside function bodies are pruned; only file-scope
	// initializers could contribute, and global's initializer is a literal.
	if sawIdent {
		t.Fatal("pruning FuncDef should hide body identifiers")
	}
}

func TestInspectExprs(t *testing.T) {
	tu, err := cparse.Parse("w.c", walkSample)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	cast.InspectExprs(tu, func(e cast.Expr) bool {
		count++
		return true
	})
	if count < 30 {
		t.Fatalf("expected many expressions, got %d", count)
	}
}

func TestUnparen(t *testing.T) {
	tu, err := cparse.Parse("p.c", "void f(void){ int x; x = (((x))); }")
	if err != nil {
		t.Fatal(err)
	}
	var rhs cast.Expr
	cast.Inspect(tu, func(n cast.Node) bool {
		if a, ok := n.(*cast.AssignExpr); ok {
			rhs = a.RHS
		}
		return true
	})
	inner := cast.Unparen(rhs)
	if _, ok := inner.(*cast.Ident); !ok {
		t.Fatalf("Unparen: got %T", inner)
	}
}

func TestCalleeHelper(t *testing.T) {
	tu, err := cparse.Parse("c.c", `
void f(void (*cb)(void)) {
    strlen("x");
    (strlen)("y");
    cb();
}
`)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	cast.Inspect(tu, func(n cast.Node) bool {
		if c, ok := n.(*cast.CallExpr); ok {
			names = append(names, c.Callee())
		}
		return true
	})
	if len(names) != 3 || names[0] != "strlen" || names[1] != "strlen" || names[2] != "cb" {
		t.Fatalf("callees: %v", names)
	}
}

func TestFuncNamed(t *testing.T) {
	tu, err := cparse.Parse("f.c", "void a(void){} void b(void){}")
	if err != nil {
		t.Fatal(err)
	}
	if tu.FuncNamed("b") == nil || tu.FuncNamed("missing") != nil {
		t.Fatal("FuncNamed lookup")
	}
}
