package analysis

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Map runs f over every item through a bounded pool of workers and
// returns the results in input order, regardless of completion order —
// the deterministic fan-out primitive behind core.FixAll, cfix -j, and
// the experiment harness. workers <= 0 means runtime.NumCPU(). f receives
// the item's index alongside the item.
func Map[T, R any](workers int, items []T, f func(int, T) R) []R {
	return MapCtx(context.Background(), workers, items,
		func(_ context.Context, i int, item T) R { return f(i, item) })
}

// MapCtx is Map with cooperative cancellation. f is invoked exactly once
// per item even after ctx is done — the result slice always has one
// entry per input, in input order — but implementations are expected to
// short-circuit on a done context (core.Fix returns the context error as
// the file's outcome), so a cancelled batch drains in microseconds
// instead of finishing every file.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, f func(context.Context, int, T) R) []R {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		// Lane 0 explicitly, so single-worker batch traces land in the
		// same lane scheme as parallel ones.
		ctx := obs.WithLane(ctx, 0)
		for i, item := range items {
			out[i] = f(ctx, i, item)
		}
		return out
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// Each worker is one trace lane: spans recorded under this
			// context render as one Chrome trace thread per worker.
			ctx := obs.WithLane(ctx, w)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				out[i] = f(ctx, i, items[i])
			}
		}(w)
	}
	wg.Wait()
	return out
}
