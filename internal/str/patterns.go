// Package str implements the SAFE TYPE REPLACEMENT transformation
// (Sections II-B and III-C): locally declared character pointers and
// arrays are replaced by the bounds-tracking stralloc data structure
// (adapted from qmail), and every use site is rewritten following the
// replacement patterns of Table II.
package str

// Pattern is one replacement pattern of Table II.
type Pattern struct {
	ID          int
	Group       string
	Description string
	Before      string
	After       string
}

// TableII lists the replacement patterns exactly as the paper's Table II
// presents them (18 rows across five groups). The operational renderer
// (render.go) implements each row; TestTableIIPatterns exercises every row
// end to end.
var TableII = []Pattern{
	{1, "Declaration and Reference", "Identifier expression", "buf", "buf"},
	{2, "Declaration and Reference", "Declaration statement", "char* buf;",
		"stralloc* buf; stralloc ssss_buf = {0,0,0}; buf = &ssss_buf;"},
	{3, "Assignment Expression", "Allocation of buffer", "buf = malloc(1024)",
		"buf->s = malloc(1024); buf->a = 1024"},
	{4, "Assignment Expression", "Assignment to null or (void*)0", "buf = null", "buf = null"},
	{5, "Assignment Expression", "Assignment to other buffer", "buf1 = buf2", "buf1 = buf2"},
	{6, "Assignment Expression", "Assignment to string literal", `buf = "text"`,
		`stralloc_copybuf(buf, "text", strlen("text"))`},
	{7, "Assignment Expression", "Assignment to cast expression", "buf = (char*)(exp)",
		"stralloc_copybuf(buf, (char*)(exp), sizeof((char*)(exp)))"},
	{8, "Arithmetic and Binary Expressions", "Increment expression", "buf++",
		"stralloc_increment_by(buf, 1)"},
	{9, "Arithmetic and Binary Expressions", "Decrement expression", "buf -= 3",
		"stralloc_decrement_by(buf, 3)"},
	{10, "Arithmetic and Binary Expressions", "Binary expression", "sizeof(buf) < 3",
		"buf->a < 3"},
	{11, "Array Access and Dereference Expressions", "Array access expression", "buf[1]",
		"stralloc_get_dereferenced_char_at(buf, 1)"},
	{12, "Array Access and Dereference Expressions", "Assignment to an array element",
		"buf[1] = 'b'", "stralloc_dereference_replace_by(buf, 1, 'b')"},
	{13, "Array Access and Dereference Expressions", "Assigning one array element to another",
		"buf1[0] = buf2[0]",
		"stralloc_dereference_replace_by(buf1, 0, stralloc_get_dereferenced_char_at(buf2, 0))"},
	{14, "Array Access and Dereference Expressions", "Dereference assignment statement",
		"*(buf+4) = 'a'", "stralloc_dereference_replace_by(buf, 4, 'a')"},
	{15, "Array Access and Dereference Expressions", "Dereferenced assignment to binary expression",
		"*(buf+1) = a + b", "stralloc_dereference_replace_by(buf, 1, a + b)"},
	{16, "Argument in Function Call Expression", "Argument in C library function",
		"strlen(buf)", "buf->len"},
	{17, "Argument in Function Call Expression", "Argument in user defined function",
		"foo(buf)", "foo(buf->s)"},
	{18, "Conditional or Iteration Statement", "Conditional/Iteration statement",
		"if(buf[0] == 'a')", "if(stralloc_get_dereferenced_char_at(buf, 0) == 'a')"},
}

// libCallKind describes how STR treats a C library call whose argument is
// a target buffer.
type libCallKind int

const (
	// libUnknown: not a modeled library function (treated as user-defined).
	libUnknown libCallKind = iota
	// libMapped: the call has a stralloc replacement (Table II row 16,
	// "function dependent").
	libMapped
	// libReadOnly: the call never writes the buffer; the argument is
	// rewritten to buf->s.
	libReadOnly
	// libUnsupported: STR's precondition 3 rejects variables used in
	// these functions (Section II-B2).
	libUnsupported
)

// _libCalls classifies the common C library functions for STR. The paper:
// "most common string functions in C library are supported".
var _libCalls = map[string]libCallKind{
	// Mapped to stralloc equivalents when the target is the destination.
	"strcpy":  libMapped,
	"strncpy": libMapped,
	"strcat":  libMapped,
	"strncat": libMapped,
	"memcpy":  libMapped,
	"memset":  libMapped,
	"strlen":  libMapped,

	// Read-only: pass buf->s.
	"strcmp":  libReadOnly,
	"strncmp": libReadOnly,
	"strchr":  libReadOnly,
	"strrchr": libReadOnly,
	"strstr":  libReadOnly,
	"printf":  libReadOnly,
	"fprintf": libReadOnly,
	"puts":    libReadOnly,
	"atoi":    libReadOnly,
	"atol":    libReadOnly,
	"strdup":  libReadOnly,
	"fwrite":  libReadOnly,
	"memcmp":  libReadOnly,

	// Unsupported: stralloc has no safe analog of unbounded or
	// format-driven writers at this layer.
	"gets":     libUnsupported,
	"fgets":    libUnsupported,
	"sprintf":  libUnsupported,
	"vsprintf": libUnsupported,
	"scanf":    libUnsupported,
	"fread":    libUnsupported,
	"realloc":  libUnsupported,
	"free":     libUnsupported,
}
