package corpus

import (
	"strings"
	"testing"

	"repro/internal/harness"
)

func TestLibtiffCVEFixedBySLR(t *testing.T) {
	// Pre-transformation: the attack input overflows buffer[5]
	// (CWE-121); the benign input is clean. Post-SLR: no violation, and
	// the benign output is preserved.
	v, err := harness.Verify("tiff2pdf", LibtiffCVESource, "run_benign", "run_attack",
		harness.Options{SkipSTR: true})
	if err != nil {
		t.Fatal(err)
	}
	if !v.VulnDetected {
		t.Fatalf("attack input must overflow pre-transformation; events: %v",
			v.PreBad.Violations)
	}
	cwe121 := false
	for _, viol := range v.PreBad.Violations {
		if viol.CWE == 121 {
			cwe121 = true
		}
	}
	if !cwe121 {
		t.Fatalf("expected a CWE-121 stack overflow, got %v", v.PreBad.Violations)
	}
	if !v.Fixed {
		t.Fatalf("SLR must remove the overflow; post events: %v\n%s",
			v.PostBad.Violations, v.TransformedSource)
	}
	if !v.Preserved {
		t.Fatalf("benign behavior must be preserved: pre=%q post=%q",
			v.PreGood.Stdout, v.PostGood.Stdout)
	}
	if !strings.Contains(v.TransformedSource, "g_snprintf(buffer, sizeof(buffer)") {
		t.Fatalf("expected the paper's exact fix (g_snprintf + sizeof(buffer)):\n%s",
			v.TransformedSource)
	}
	if v.PreGood.Stdout != "(Title 07)\n" {
		t.Fatalf("benign output: %q", v.PreGood.Stdout)
	}
}
