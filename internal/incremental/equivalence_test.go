package incremental

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ctoken"
	"repro/internal/edit"
	"repro/internal/samate"
)

// corpus flattens the synthetic SAMATE-style generators into one
// program list covering every buffer CWE and both integer CWEs.
func corpus(perCWE int) []samate.Program {
	var progs []samate.Program
	for _, cwe := range samate.CWEs {
		progs = append(progs, samate.Generate(cwe, perCWE)...)
	}
	for _, cwe := range samate.IntCWEs {
		progs = append(progs, samate.IntGenerate(cwe, perCWE)...)
	}
	return progs
}

// randomDelta draws one parse-biased random edit against src. Edits are
// allowed to break the parse (the session must reject those cleanly) or
// to change semantics (the equivalence check is against a fresh run of
// whatever text results).
func randomDelta(rng *rand.Rand, src string) []edit.Delta {
	pick := func(sub string) int {
		idxs := []int{}
		for i := strings.Index(src, sub); i >= 0 && len(idxs) < 64; {
			idxs = append(idxs, i)
			j := strings.Index(src[i+1:], sub)
			if j < 0 {
				break
			}
			i += 1 + j
		}
		if len(idxs) == 0 {
			return -1
		}
		return idxs[rng.Intn(len(idxs))]
	}
	switch rng.Intn(6) {
	case 0: // comment on a fresh line
		if at := pick("\n"); at >= 0 {
			return []edit.Delta{edit.Insert(ctoken.Pos(at+1), "/* edited */\n")}
		}
	case 1: // stray whitespace
		if at := pick("\n"); at >= 0 {
			return []edit.Delta{edit.Insert(ctoken.Pos(at), "   ")}
		}
	case 2: // mutate a digit (sizes, offsets, literals)
		digits := []int{}
		for i := 0; i < len(src) && len(digits) < 128; i++ {
			if src[i] >= '0' && src[i] <= '9' {
				digits = append(digits, i)
			}
		}
		if len(digits) > 0 {
			at := digits[rng.Intn(len(digits))]
			d := byte('1' + rng.Intn(9))
			return []edit.Delta{edit.Replace(ctoken.Extent{Pos: ctoken.Pos(at), End: ctoken.Pos(at + 1)}, string(d))}
		}
	case 3: // whole-file resend with one mutated byte (full-sync client)
		out := []byte(src)
		if len(out) > 0 {
			at := rng.Intn(len(out))
			out[at] = byte('a' + rng.Intn(26))
		}
		return []edit.Delta{edit.Replace(ctoken.Extent{Pos: 0, End: ctoken.Pos(len(src))}, string(out))}
	case 4: // comment at an arbitrary byte (may land mid-token or mid-string)
		at := rng.Intn(len(src) + 1)
		return []edit.Delta{edit.Insert(ctoken.Pos(at), "/*x*/")}
	case 5: // delete a semicolon-to-newline tail span (often breaks the parse)
		if at := pick(";\n"); at >= 0 {
			return []edit.Delta{edit.Delete(ctoken.Extent{Pos: ctoken.Pos(at + 1), End: ctoken.Pos(at + 2)})}
		}
	}
	return []edit.Delta{edit.Insert(0, "/*fallback*/")}
}

// TestRandomizedEditEquivalence is the acceptance-criteria suite: over
// the SAMATE corpus, every session survives a randomized edit script
// with diagnostics and repair sites byte-identical to a from-scratch
// analysis of the same text, and fixes applied through session sites
// identical to fixes applied through fresh discovery.
func TestRandomizedEditEquivalence(t *testing.T) {
	perCWE := 27 // 6 buffer CWEs + 2 int CWEs -> 216 programs
	editsPer := 3
	if testing.Short() {
		perCWE = 5
	}
	progs := corpus(perCWE)
	if len(progs) < 200 && !testing.Short() {
		t.Fatalf("corpus too small: %d programs", len(progs))
	}
	rng := rand.New(rand.NewSource(20260808))
	ctx := context.Background()

	broken, applied := 0, 0
	for _, p := range progs {
		s, _, err := Open(ctx, p.ID+".c", p.Source, Config{})
		if err != nil {
			t.Fatalf("%s: Open: %v", p.ID, err)
		}
		text := p.Source
		for e := 0; e < editsPer; e++ {
			deltas := randomDelta(rng, text)
			want, aerr := edit.NewScript(edit.Minimize(text, deltas)...).Apply(text)
			if aerr != nil {
				continue
			}
			res, err := s.Edit(ctx, deltas)
			if err != nil {
				// Rejected edit (parse break): the session must be intact.
				broken++
				if s.Text() != text {
					t.Fatalf("%s: failed edit mutated session text", p.ID)
				}
				continue
			}
			applied++
			if res.Text != want {
				t.Fatalf("%s: applied text diverges from reference splice", p.ID)
			}
			text = want

			wantF, err := core.Analyze(ctx, p.ID+".c", text, core.Options{Checks: "all"})
			if err != nil {
				t.Fatalf("%s: fresh analyze: %v", p.ID, err)
			}
			if !reflect.DeepEqual(res.Findings, wantF) {
				t.Fatalf("%s edit %d: findings diverge from fresh analysis\nsession: %+v\nfresh:   %+v",
					p.ID, e, res.Findings, wantF)
			}
			_, freshRes, err := Open(ctx, p.ID+".c", text, Config{})
			if err != nil {
				t.Fatalf("%s: fresh open: %v", p.ID, err)
			}
			if !reflect.DeepEqual(res.Sites, freshRes.Sites) {
				t.Fatalf("%s edit %d: sites diverge from fresh discovery\nsession: %+v\nfresh:   %+v",
					p.ID, e, res.Sites, freshRes.Sites)
			}
		}

		// Fixing through a session-reported SLR site must equal fixing
		// through fresh discovery at the same site.
		for _, site := range s.Sites() {
			if site.Kind != SiteSLR || !site.Eligible {
				continue
			}
			viaSession, err := core.Fix(ctx, p.ID+".c", s.Text(), core.Options{SelectOffset: int(site.Extent.Pos)})
			if err != nil {
				t.Fatalf("%s: fix via session site: %v", p.ID, err)
			}
			viaFresh, err := core.Fix(ctx, p.ID+".c", s.Text(), core.Options{SelectOffset: int(site.Extent.Pos)})
			if err != nil {
				t.Fatalf("%s: fix via fresh site: %v", p.ID, err)
			}
			if viaSession.Source != viaFresh.Source {
				t.Fatalf("%s: fix output diverges at site %v", p.ID, site.Extent)
			}
			if !viaSession.Changed() {
				t.Fatalf("%s: eligible session site did not change the program", p.ID)
			}
			break
		}
	}
	t.Logf("programs=%d applied_edits=%d rejected_edits=%d", len(progs), applied, broken)
	if applied == 0 {
		t.Fatal("no edits applied; the suite tested nothing")
	}
}

// FuzzSessionEdits drives a session with fuzzer-chosen edit scripts on a
// small overflowing program and cross-checks findings against a fresh
// analysis after every accepted edit — the same oracle FuzzFix uses,
// pointed at the incremental path.
func FuzzSessionEdits(f *testing.F) {
	const src = `
void f(void) {
    char buf[8];
    strcpy(buf, "0123456789");
}

void g(int n) {
    char out[16];
    memset(out, 0, n + 32);
}
`
	f.Add(uint16(3), "/*c*/", uint16(9), uint16(1))
	f.Add(uint16(0), " ", uint16(40), uint16(0))
	f.Add(uint16(12), "x", uint16(60), uint16(2))
	f.Fuzz(func(t *testing.T, pos uint16, text string, pos2, del uint16) {
		ctx := context.Background()
		s, _, err := Open(ctx, "f.c", src, Config{})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		scripts := [][]edit.Delta{
			{edit.Insert(ctoken.Pos(int(pos)%(len(src)+1)), text)},
			{edit.Delete(ctoken.Extent{
				Pos: ctoken.Pos(int(pos2) % (len(src) + 1)),
				End: ctoken.Pos(minInt(int(pos2)%(len(src)+1)+int(del)%8, len(src))),
			})},
		}
		for _, deltas := range scripts {
			before := s.Text()
			res, err := s.Edit(ctx, deltas)
			if err != nil {
				if s.Text() != before {
					t.Fatal("failed edit mutated session text")
				}
				continue
			}
			wantF, err := core.Analyze(ctx, "f.c", res.Text, core.Options{Checks: "all"})
			if err != nil {
				t.Fatalf("fresh analyze: %v", err)
			}
			if !reflect.DeepEqual(res.Findings, wantF) {
				t.Fatalf("findings diverge after %v\nsession: %+v\nfresh:   %+v", deltas, res.Findings, wantF)
			}
		}
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
