package fleet

import (
	"fmt"
	"testing"
)

// TestRingDeterministicAndOrderIndependent: the same member set yields
// the same routing regardless of configuration order.
func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	b := NewRing([]string{"http://c", "http://a", "http://b"}, 0)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner differs by member order: %s vs %s", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingReplicasDistinctAndComplete: every key's replica list is a
// permutation of the member set with the owner first.
func TestRingReplicasDistinctAndComplete(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c", "http://d"}
	r := NewRing(members, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		reps := r.Replicas(key)
		if len(reps) != len(members) {
			t.Fatalf("key %q: want %d replicas, got %v", key, len(members), reps)
		}
		seen := map[string]bool{}
		for _, m := range reps {
			if seen[m] {
				t.Fatalf("key %q: duplicate replica %s in %v", key, m, reps)
			}
			seen[m] = true
		}
		if reps[0] != r.Owner(key) {
			t.Fatalf("key %q: first replica %s is not the owner %s", key, reps[0], r.Owner(key))
		}
	}
}

// TestRingBalance: vnode placement spreads keys within a reasonable
// factor of uniform (no backend starves or drowns).
func TestRingBalance(t *testing.T) {
	members := []string{"http://a", "http://b", "http://c"}
	r := NewRing(members, 0)
	counts := map[string]int{}
	const n = 9000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("sha-like-key-%d", i))]++
	}
	want := n / len(members)
	for m, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("member %s owns %d of %d keys (uniform would be %d): unbalanced ring", m, c, n, want)
		}
	}
}

// TestRingMinimalMovement: adding one member moves only the keys it
// takes over — existing keys do not reshuffle among surviving members.
func TestRingMinimalMovement(t *testing.T) {
	three := NewRing([]string{"http://a", "http://b", "http://c"}, 0)
	four := NewRing([]string{"http://a", "http://b", "http://c", "http://d"}, 0)
	const n = 3000
	moved, movedElsewhere := 0, 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := three.Owner(key), four.Owner(key)
		if before != after {
			moved++
			if after != "http://d" {
				movedElsewhere++
			}
		}
	}
	if movedElsewhere != 0 {
		t.Errorf("%d keys moved between surviving members; consistent hashing must only move keys to the new member", movedElsewhere)
	}
	// Roughly 1/4 of keys should move to the new member.
	if moved < n/8 || moved > n/2 {
		t.Errorf("%d of %d keys moved to the new member; want about %d", moved, n, n/4)
	}
}

// TestRingSingleMember degenerates gracefully.
func TestRingSingleMember(t *testing.T) {
	r := NewRing([]string{"http://only"}, 0)
	if got := r.Replicas("anything"); len(got) != 1 || got[0] != "http://only" {
		t.Fatalf("single-member ring: got %v", got)
	}
}
