package server

import (
	"net/http"
	"strings"
	"testing"

	"repro/pkg/cfix"
)

// projectCaller/projectCallee form the canonical two-TU demo: the bug
// is only provable when the caller's arguments flow across the file
// boundary into the callee.
const projectCaller = `void fill(char *p, int n);
int main(void) {
    char buf[10];
    fill(buf, 100);
    return 0;
}
`

const projectCallee = `void fill(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = 'x';
    }
}
`

// TestProjectEndpointLint: POST /v1/project with lint_only surfaces the
// cross-file overflow and the linked edge.
func TestProjectEndpointLint(t *testing.T) {
	s, ts, _ := newTestServer(t, Config{})
	var resp cfix.ProjectResponse
	status, raw := postJSON(t, ts.URL+"/v1/project", cfix.ProjectRequest{
		Files:    map[string]string{"a.c": projectCaller, "b.c": projectCallee},
		LintOnly: true,
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if len(resp.Edges) != 1 || resp.Edges[0].Callee != "fill" {
		t.Fatalf("edges = %+v", resp.Edges)
	}
	var hit bool
	for _, f := range resp.Files {
		if f.Err != "" {
			t.Fatalf("%s failed: %s", f.File, f.Err)
		}
		if f.File != "b.c" {
			continue
		}
		for _, fd := range f.Findings {
			if fd.Function == "fill" && fd.Severity == "definite" {
				hit = true
			}
		}
	}
	if !hit {
		t.Fatalf("no definite cross-TU finding in b.c: %+v", resp.Files)
	}
	snap := s.Metrics()
	if snap.Requests.Project != 1 || snap.ProjectFiles != 2 {
		t.Fatalf("metrics: project=%d files=%d", snap.Requests.Project, snap.ProjectFiles)
	}
}

// TestProjectEndpointFix: a fixable unit with a header comes back with
// the repair in the ORIGINAL text (directives intact).
func TestProjectEndpointFix(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	var resp cfix.ProjectResponse
	status, raw := postJSON(t, ts.URL+"/v1/project", cfix.ProjectRequest{
		Files: map[string]string{
			"m.c": "#include \"n.h\"\nint main(void) {\n    char b[N];\n    strcpy(b, \"hi\");\n    return 0;\n}\n",
		},
		Headers: map[string]string{
			"n.h": "#define N 16\nchar *strcpy(char *, const char *);\nunsigned long strlen(const char *);\n",
		},
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if len(resp.Files) != 1 || resp.Files[0].Fix == nil {
		t.Fatalf("files = %+v", resp.Files)
	}
	src := resp.Files[0].Fix.Source
	if !strings.Contains(src, "#include \"n.h\"") || !strings.Contains(src, "char b[N];") {
		t.Fatalf("original shape lost:\n%s", src)
	}
	if !strings.Contains(src, "g_strlcpy") {
		t.Fatalf("no repair in output:\n%s", src)
	}
	if got := resp.Files[0].Includes; len(got) != 1 || got[0] != "n.h" {
		t.Fatalf("includes = %v", got)
	}
}

// TestProjectEndpointValidation: empty file set is the client's fault.
func TestProjectEndpointValidation(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{})
	status, raw := postJSON(t, ts.URL+"/v1/project", cfix.ProjectRequest{}, nil)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d: %s", status, raw)
	}
}
