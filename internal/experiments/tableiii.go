// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV): Table I (catalogue), Table II (patterns),
// Table III (SAMATE), Table IV (corpus), Table V + Figure 2 (SLR on real
// code), Table VI (STR on real code), the LibTIFF case study, and the RQ3
// overhead measurements. Each Run* function returns structured rows; each
// Format* function prints them in the paper's layout so results can be
// compared side by side (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/harness"
	"repro/internal/samate"
	"repro/internal/stralloc"
)

// CWEResult is one row of Table III plus the RQ1 verification columns.
type CWEResult struct {
	CWE  int
	Name string
	// Programs actually processed (equals Table III's count at stride 1).
	Programs int
	// SLRApplied / STRApplied count programs where the transformation
	// changed at least one site/variable (the Table III applicability
	// columns).
	SLRApplied int
	STRApplied int
	// KLOC is the corpus size in thousand lines; PPKLOC includes the
	// support headers a preprocessor would inline.
	KLOC   float64
	PPKLOC float64
	// RQ1 verification: the bad function overflowed before, is clean
	// after; the good function's output is preserved.
	VulnDetected int
	Fixed        int
	Preserved    int
	Errors       int
	// WallTime is the summed per-program processing time for this CWE
	// class (the RQ3 cost view: transformation plus the four
	// verification executions).
	WallTime time.Duration
	// Degraded counts programs whose transformation pipeline had to cut
	// an analysis short (budget exhaustion or a skipped stage); 0 on a
	// full-fidelity run.
	Degraded int
}

// TableIIIOptions configures the SAMATE run.
type TableIIIOptions struct {
	// Stride processes every Stride-th program (1 = the full 4,505).
	Stride int
	// Workers bounds the shared pool (internal/analysis); 0 = one per CPU.
	Workers int
}

// RunTableIII generates the Juliet-style corpus, applies SLR and STR to
// every program, executes good/bad pre and post, and aggregates per CWE.
func RunTableIII(opts TableIIIOptions) ([]CWEResult, error) {
	if opts.Stride < 1 {
		opts.Stride = 1
	}

	ppOverhead := strings.Count(stralloc.FullSource(), "\n") + 1

	var rows []CWEResult
	for _, cwe := range samate.CWEs {
		progs := samate.Generate(cwe, samate.TableIIICounts[cwe])
		row := CWEResult{CWE: cwe, Name: samate.CWENames[cwe]}

		type verdictOrErr struct {
			v    *harness.Verdict
			err  error
			loc  int
			wall time.Duration
		}
		picked := make([]samate.Program, 0, len(progs)/opts.Stride+1)
		for i := 0; i < len(progs); i += opts.Stride {
			picked = append(picked, progs[i])
		}
		results := analysis.Map(opts.Workers, picked, func(_ int, p samate.Program) verdictOrErr {
			start := time.Now()
			v, err := harness.Verify(p.ID, p.Source, p.ID+"_good", p.ID+"_bad",
				harness.Options{Stdin: stdinFor(p)})
			return verdictOrErr{v: v, err: err, loc: p.LOC(), wall: time.Since(start)}
		})

		for _, r := range results {
			row.Programs++
			row.WallTime += r.wall
			if r.err != nil {
				row.Errors++
				continue
			}
			if len(r.v.Degraded) > 0 {
				row.Degraded++
			}
			row.KLOC += float64(r.loc) / 1000.0
			row.PPKLOC += float64(r.loc+ppOverhead) / 1000.0
			if r.v.SLRApplied > 0 {
				row.SLRApplied++
			}
			if r.v.STRApplied > 0 {
				row.STRApplied++
			}
			if r.v.VulnDetected {
				row.VulnDetected++
			}
			if r.v.Fixed {
				row.Fixed++
			}
			if r.v.Preserved {
				row.Preserved++
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// stdinFor supplies input for gets/fgets programs.
func stdinFor(p samate.Program) []string {
	if p.CWE != 242 {
		return nil
	}
	long := strings.Repeat("Q", 120)
	return []string{long, long}
}

// FormatTableIII renders the rows in the paper's Table III layout plus
// the RQ1 verification columns.
func FormatTableIII(rows []CWEResult) string {
	var sb strings.Builder
	sb.WriteString("Table III: CWEs Describing Buffer Overflows (synthetic Juliet corpus)\n")
	sb.WriteString(fmt.Sprintf("%-42s %8s %8s %8s %9s %10s %8s %8s %9s %9s %8s\n",
		"CWE", "SLR", "STR", "Programs", "KLOC", "PP KLOC", "VulnDet", "Fixed", "Preserved", "Wall", "Degraded"))
	var tot CWEResult
	for _, r := range rows {
		slr := "-"
		if r.SLRApplied > 0 {
			slr = fmt.Sprintf("%d", r.SLRApplied)
		}
		strCol := "-"
		if r.STRApplied > 0 {
			strCol = fmt.Sprintf("%d", r.STRApplied)
		}
		sb.WriteString(fmt.Sprintf("%-42s %8s %8s %8d %9.1f %10.1f %8d %8d %9d %9s %8d\n",
			fmt.Sprintf("CWE %d: %s", r.CWE, r.Name), slr, strCol,
			r.Programs, r.KLOC, r.PPKLOC, r.VulnDetected, r.Fixed, r.Preserved,
			r.WallTime.Round(time.Millisecond), r.Degraded))
		tot.Programs += r.Programs
		tot.SLRApplied += r.SLRApplied
		tot.STRApplied += r.STRApplied
		tot.KLOC += r.KLOC
		tot.PPKLOC += r.PPKLOC
		tot.VulnDetected += r.VulnDetected
		tot.Fixed += r.Fixed
		tot.Preserved += r.Preserved
		tot.Errors += r.Errors
		tot.WallTime += r.WallTime
		tot.Degraded += r.Degraded
	}
	sb.WriteString(fmt.Sprintf("%-42s %8d %8d %8d %9.1f %10.1f %8d %8d %9d %9s %8d\n",
		"Total", tot.SLRApplied, tot.STRApplied, tot.Programs,
		tot.KLOC, tot.PPKLOC, tot.VulnDetected, tot.Fixed, tot.Preserved,
		tot.WallTime.Round(time.Millisecond), tot.Degraded))
	if tot.Errors > 0 {
		sb.WriteString(fmt.Sprintf("(%d programs failed to process)\n", tot.Errors))
	}
	if tot.Degraded > 0 {
		sb.WriteString(fmt.Sprintf("(%d programs transformed with degraded analyses)\n", tot.Degraded))
	}
	sb.WriteString(fmt.Sprintf("\nPaper: 4,505 programs; SLR applicable to 1,758 (1,096/644/18);\n"))
	sb.WriteString("vulnerability fixed in bad functions of all programs; normal behavior preserved.\n")
	return sb.String()
}
