package str

import (
	"testing"

	"repro/internal/cparse"
	"repro/internal/stralloc"
)

// TestIdempotent: STR output contains no char-pointer candidates, so a
// second application is a no-op.
func TestIdempotent(t *testing.T) {
	first := runAll(t, `
void f(void) {
    char *p;
    char buf[8];
    p = "abc";
    p[0] = 'x';
    buf[1] = 'y';
}
`)
	if first.AppliedCount() != 2 {
		t.Fatalf("first pass applied %d", first.AppliedCount())
	}
	src2 := stralloc.Header() + "\n" + first.NewSource
	tu, err := cparse.Parse("t2.c", src2)
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewTransformer(tu).ApplyAll()
	if err != nil {
		t.Fatal(err)
	}
	if second.Candidates() != 0 {
		t.Fatalf("second pass found %d candidates: %+v", second.Candidates(), second.Vars)
	}
	if second.NewSource != src2 {
		t.Fatal("second pass must be a no-op")
	}
}
