// Package rewrite applies textual edits to C source by byte extent.
//
// Transformations collect edits against the original text's coordinates;
// Apply sorts them, verifies they do not overlap, and splices the output.
// Because edits are expressed in original coordinates, a transformation
// never needs to track offset drift — the property that lets SLR and STR
// produce minimal diffs on large files (the paper's requirement that
// program analyses "keep track of source code").
package rewrite

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ctoken"
	"repro/internal/edit"
)

// Edit replaces the bytes of Extent with Text. A zero-length extent is an
// insertion at Extent.Pos.
type Edit struct {
	Extent ctoken.Extent
	Text   string
	// Note describes the edit for change logs.
	Note string
	// Owner groups edits that must apply (or be dropped) together — one
	// SLR call site, one STR function. Project mode uses it to decline a
	// whole repair when any of its edits fails to map back through the
	// preprocessor's source map. Empty for standalone edits.
	Owner string
}

// Set accumulates edits for one file.
type Set struct {
	edits []Edit
	owner string
}

// SetOwner stamps every subsequently queued edit with the given owner
// group (until the next SetOwner call). Transformations set it once per
// repair unit instead of threading an owner through every queue call.
func (s *Set) SetOwner(owner string) { s.owner = owner }

// Add queues a pre-built edit verbatim (the edit's own Owner is kept;
// the set's current owner is NOT applied). Used when re-queueing edits
// that were remapped through a source map.
func (s *Set) Add(e Edit) { s.edits = append(s.edits, e) }

// Replace queues a replacement of the extent's text.
func (s *Set) Replace(e ctoken.Extent, text, note string) {
	s.edits = append(s.edits, Edit{Extent: e, Text: text, Note: note, Owner: s.owner})
}

// InsertBefore queues an insertion at the start of the extent.
func (s *Set) InsertBefore(e ctoken.Extent, text, note string) {
	s.edits = append(s.edits, Edit{
		Extent: ctoken.Extent{Pos: e.Pos, End: e.Pos},
		Text:   text,
		Note:   note,
		Owner:  s.owner,
	})
}

// InsertAfter queues an insertion just past the end of the extent.
func (s *Set) InsertAfter(e ctoken.Extent, text, note string) {
	s.edits = append(s.edits, Edit{
		Extent: ctoken.Extent{Pos: e.End, End: e.End},
		Text:   text,
		Note:   note,
		Owner:  s.owner,
	})
}

// Len returns the number of queued edits.
func (s *Set) Len() int { return len(s.edits) }

// Edits returns the queued edits (sorted by position) for reporting.
func (s *Set) Edits() []Edit {
	out := make([]Edit, len(s.edits))
	copy(out, s.edits)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Extent.Pos != out[j].Extent.Pos {
			return out[i].Extent.Pos < out[j].Extent.Pos
		}
		return out[i].Extent.End < out[j].Extent.End
	})
	return out
}

// Apply splices the edits into src. Overlapping replacement edits are an
// error; multiple insertions at the same position apply in queue order.
// The splice itself is the shared internal/edit implementation — Edits()
// sorts with the same (Pos, End) stable order edit.Sort uses, so error
// indices line up with the sorted edit list.
func (s *Set) Apply(src string) (string, error) {
	edits := s.Edits()
	deltas := make([]edit.Delta, len(edits))
	for i, e := range edits {
		deltas[i] = edit.Delta{Extent: e.Extent, Text: e.Text}
	}
	out, err := edit.Splice(src, deltas)
	if err != nil {
		var be *edit.BoundsError
		var oe *edit.OverlapError
		switch {
		case errors.As(err, &be):
			return "", fmt.Errorf("edit %d has invalid extent [%d,%d) for source of %d bytes",
				be.Index, be.Delta.Extent.Pos, be.Delta.Extent.End, be.SrcLen)
		case errors.As(err, &oe):
			return "", fmt.Errorf("edit %d (%s) overlaps a previous edit at offset %d",
				oe.Index, edits[oe.Index].Note, oe.At)
		}
		return "", err
	}
	return out, nil
}
