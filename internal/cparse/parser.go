// Package cparse implements a recursive-descent parser for the preprocessed
// C subset used throughout this repository.
//
// The parser performs name binding as it goes (C's grammar requires typedef
// knowledge during parsing anyway), producing a cast.TranslationUnit whose
// identifiers are resolved to cast.Symbol values. Expression types are
// computed by a later pass (internal/typecheck).
package cparse

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctoken"
	"repro/internal/ctype"
)

// Error is a parse error with source position information.
type Error struct {
	Pos ctoken.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// bail is the internal control-flow panic used to unwind on a parse error.
// It never escapes the package: Parse recovers it.
type bail struct{ err *Error }

type scope struct {
	names map[string]*cast.Symbol
	tags  map[string]ctype.Type
}

// Parser holds the state for parsing one translation unit.
type Parser struct {
	file   *ctoken.File
	toks   []ctoken.Token
	pos    int
	scopes []*scope
	unit   *cast.TranslationUnit
	nextID int
}

// parses counts Parse calls process-wide. The batch pipeline's
// parse-once guarantee is asserted against this counter in tests.
var parses atomic.Int64

// Parses returns the number of Parse calls made since process start.
func Parses() int64 { return parses.Load() }

// Parse parses a complete translation unit from src. The name is used for
// diagnostics only. On error the partially built unit is returned alongside
// the error when possible.
func Parse(name, src string) (*cast.TranslationUnit, error) {
	parses.Add(1)
	toks, err := clex.TokenizeForParser(src)
	if err != nil {
		return nil, fmt.Errorf("tokenize %s: %w", name, err)
	}
	p := &Parser{
		file: ctoken.NewFile(name, src),
		toks: toks,
	}
	p.unit = &cast.TranslationUnit{File: p.file}
	p.unit.SetExtent(ctoken.Extent{Pos: 0, End: ctoken.Pos(len(src))})
	p.pushScope()
	declareBuiltins(p)
	p.pushScope() // file scope (keeps builtins separate)

	parseErr := p.recoverable(func() {
		for !p.at(ctoken.KindEOF) {
			d := p.parseExternalDecl()
			if d != nil {
				p.unit.Decls = append(p.unit.Decls, d)
				if f, ok := d.(*cast.FuncDef); ok {
					p.unit.Funcs = append(p.unit.Funcs, f)
				}
			}
		}
	})
	if parseErr != nil {
		return p.unit, parseErr
	}
	return p.unit, nil
}

// recoverable runs f, converting a bail panic into an error.
func (p *Parser) recoverable(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			b, ok := r.(bail)
			if !ok {
				panic(r) // not ours; propagate
			}
			err = b.err
		}
	}()
	f()
	return nil
}

func (p *Parser) errorf(pos ctoken.Pos, format string, args ...any) {
	panic(bail{err: &Error{
		Pos: p.file.Position(pos),
		Msg: fmt.Sprintf(format, args...),
	}})
}

// ---------------------------------------------------------------------------
// Token stream helpers
// ---------------------------------------------------------------------------

func (p *Parser) cur() ctoken.Token { return p.toks[p.pos] }

func (p *Parser) peekN(n int) ctoken.Token {
	i := p.pos + n
	if i >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[i]
}

func (p *Parser) at(kind ctoken.Kind) bool { return p.cur().Kind == kind }

func (p *Parser) atText(text string) bool { return p.cur().Is(text) }

func (p *Parser) advance() ctoken.Token {
	t := p.cur()
	if t.Kind != ctoken.KindEOF {
		p.pos++
	}
	return t
}

// accept consumes the token if it has the given spelling.
func (p *Parser) accept(text string) bool {
	if p.atText(text) {
		p.advance()
		return true
	}
	return false
}

// expect consumes a token with the given spelling or fails.
func (p *Parser) expect(text string) ctoken.Token {
	if !p.atText(text) {
		p.errorf(p.cur().Extent.Pos, "expected %q, found %s", text, p.cur())
	}
	return p.advance()
}

func (p *Parser) expectIdent() ctoken.Token {
	if !p.at(ctoken.KindIdent) {
		p.errorf(p.cur().Extent.Pos, "expected identifier, found %s", p.cur())
	}
	return p.advance()
}

// ---------------------------------------------------------------------------
// Scopes and symbols
// ---------------------------------------------------------------------------

func (p *Parser) pushScope() {
	p.scopes = append(p.scopes, &scope{
		names: make(map[string]*cast.Symbol),
		tags:  make(map[string]ctype.Type),
	})
}

func (p *Parser) popScope() { p.scopes = p.scopes[:len(p.scopes)-1] }

func (p *Parser) atFileScope() bool { return len(p.scopes) == 2 }

func (p *Parser) lookup(name string) *cast.Symbol {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if s, ok := p.scopes[i].names[name]; ok {
			return s
		}
	}
	return nil
}

func (p *Parser) lookupTag(name string) ctype.Type {
	for i := len(p.scopes) - 1; i >= 0; i-- {
		if t, ok := p.scopes[i].tags[name]; ok {
			return t
		}
	}
	return nil
}

func (p *Parser) declare(sym *cast.Symbol) *cast.Symbol {
	top := p.scopes[len(p.scopes)-1]
	// Redeclaration in the same scope: C allows repeated extern/function
	// declarations; keep the first symbol, refreshing its type when the
	// new declaration is more complete.
	if prev, ok := top.names[sym.Name]; ok {
		if prev.Kind == sym.Kind {
			if prev.Type == nil || (sym.Type != nil && prev.Type.Size() < 0) {
				prev.Type = sym.Type
			}
			if prev.Decl == nil {
				prev.Decl = sym.Decl
			}
			return prev
		}
	}
	sym.ID = p.nextID
	p.nextID++
	top.names[sym.Name] = sym
	p.unit.Symbols = append(p.unit.Symbols, sym)
	return sym
}

func (p *Parser) declareTag(name string, t ctype.Type) {
	p.scopes[len(p.scopes)-1].tags[name] = t
}

// isTypeName reports whether the identifier is a typedef name in scope.
func (p *Parser) isTypeName(name string) bool {
	s := p.lookup(name)
	return s != nil && s.Kind == cast.SymTypedef
}

// startsTypeName reports whether the token at offset n begins a type name.
func (p *Parser) startsTypeName(n int) bool {
	t := p.peekN(n)
	if t.Kind == ctoken.KindKeyword {
		switch t.Text {
		case "void", "char", "short", "int", "long", "float", "double",
			"signed", "unsigned", "_Bool", "struct", "union", "enum",
			"const", "volatile", "restrict", "__restrict":
			return true
		}
		return false
	}
	return t.Kind == ctoken.KindIdent && p.isTypeName(t.Text)
}

// ---------------------------------------------------------------------------
// External declarations
// ---------------------------------------------------------------------------

// parseExternalDecl parses a top-level declaration or function definition.
func (p *Parser) parseExternalDecl() cast.Decl {
	if p.accept(";") {
		return nil // stray semicolon
	}
	start := p.cur().Extent.Pos
	specs := p.parseDeclSpecs()

	// Tag-only declaration: struct S { ... }; or enum E { ... };
	if p.atText(";") {
		end := p.advance().Extent.End
		return p.tagOnlyDecl(specs, ctoken.Extent{Pos: start, End: end})
	}

	// First declarator.
	d := p.parseDeclarator(specs.base)

	// Function definition?
	if ft, ok := d.typ.(*ctype.Func); ok && p.atText("{") {
		return p.parseFuncDefBody(start, specs, d, ft)
	}

	return p.finishDeclaration(start, specs, d, true)
}

// tagOnlyDecl wraps a struct/union/enum definition that has no declarators.
func (p *Parser) tagOnlyDecl(specs declSpecs, ext ctoken.Extent) cast.Decl {
	switch t := ctype.Unqualify(specs.base).(type) {
	case *ctype.Record:
		rd := &cast.RecordDecl{Record: t}
		rd.SetExtent(ext)
		return rd
	case *ctype.Enum:
		ed := &cast.EnumDecl{Enum: t}
		ed.SetExtent(ext)
		return ed
	default:
		// e.g. "int;" — legal but useless; drop it.
		return nil
	}
}

// finishDeclaration parses the rest of a declarator list and returns a decl
// node. Used both at file scope (global=true by caller context) and in the
// DeclStmt path. The caller has already parsed the first declarator d.
func (p *Parser) finishDeclaration(start ctoken.Pos, specs declSpecs, d declarator, global bool) cast.Decl {
	if specs.storage == cast.StorageTypedef {
		return p.finishTypedef(start, specs, d)
	}
	decls := make([]*cast.VarDecl, 0, 1)
	for {
		vd := p.makeVarDecl(specs, d, global)
		if p.accept("=") {
			vd.Init = p.parseInitializer()
		}
		vd.SetExtent(ctoken.Extent{Pos: start, End: p.cur().Extent.Pos})
		decls = append(decls, vd)
		if !p.accept(",") {
			break
		}
		d = p.parseDeclarator(specs.base)
	}
	end := p.expect(";").Extent.End
	for _, vd := range decls {
		vd.SetExtent(ctoken.Extent{Pos: vd.Extent().Pos, End: end})
	}
	if len(decls) == 1 {
		return decls[0]
	}
	// Multiple declarators in one declaration: group them.
	md := &cast.MultiDecl{Decls: decls}
	md.SetExtent(ctoken.Extent{Pos: start, End: end})
	return md
}

func (p *Parser) finishTypedef(start ctoken.Pos, specs declSpecs, d declarator) cast.Decl {
	var decls []*cast.TypedefDecl
	for {
		named := &ctype.Named{Name: d.name, Underlying: d.typ}
		td := &cast.TypedefDecl{Name: d.name, Type: named}
		sym := p.declare(&cast.Symbol{
			Name: d.name,
			Kind: cast.SymTypedef,
			Type: named,
			Decl: td,
		})
		td.Sym = sym
		decls = append(decls, td)
		if !p.accept(",") {
			break
		}
		d = p.parseDeclarator(specs.base)
	}
	end := p.expect(";").Extent.End
	for _, td := range decls {
		td.SetExtent(ctoken.Extent{Pos: start, End: end})
	}
	if len(decls) == 1 {
		return decls[0]
	}
	// Rare; represent as the first and drop the rest from the tree (they
	// remain bound in scope).
	return decls[0]
}

func (p *Parser) makeVarDecl(specs declSpecs, d declarator, global bool) *cast.VarDecl {
	vd := &cast.VarDecl{
		Name:       d.name,
		Type:       d.typ,
		Storage:    specs.storage,
		NameExtent: d.nameExtent,
		Global:     global,
	}
	kind := cast.SymVar
	if _, ok := ctype.Unqualify(d.typ).(*ctype.Func); ok {
		kind = cast.SymFunc
	}
	sym := p.declare(&cast.Symbol{
		Name:     d.name,
		Kind:     kind,
		Type:     d.typ,
		Storage:  specs.storage,
		Decl:     vd,
		IsGlobal: global,
	})
	vd.Sym = sym
	return vd
}

func (p *Parser) parseFuncDefBody(start ctoken.Pos, specs declSpecs, d declarator, ft *ctype.Func) *cast.FuncDef {
	fd := &cast.FuncDef{
		Name:       d.name,
		Type:       ft,
		Storage:    specs.storage,
		NameExtent: d.nameExtent,
		Variadic:   ft.Variadic,
	}
	sym := p.declare(&cast.Symbol{
		Name:     d.name,
		Kind:     cast.SymFunc,
		Type:     ft,
		Storage:  specs.storage,
		Decl:     fd,
		IsGlobal: true,
	})
	fd.Sym = sym

	p.pushScope()
	for _, param := range d.params {
		if param.Name == "" {
			fd.Params = append(fd.Params, param)
			continue
		}
		psym := p.declare(&cast.Symbol{
			Name: param.Name,
			Kind: cast.SymParam,
			Type: param.Type,
			Decl: param,
		})
		param.Sym = psym
		fd.Params = append(fd.Params, param)
	}
	fd.Body = p.parseCompoundStmt()
	p.popScope()
	fd.SetExtent(ctoken.Extent{Pos: start, End: fd.Body.Extent().End})
	return fd
}
