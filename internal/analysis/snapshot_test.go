package analysis

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cparse"
	"repro/internal/overflow"
	"repro/internal/typecheck"
)

const snapSample = `
int strcpy_wrap(char *d, char *s) {
    strcpy(d, s);
    return 0;
}
void user(void) {
    char buf[8];
    char *p;
    strcpy_wrap(buf, "this string is longer than eight");
    p = malloc(4);
    p[0] = 'x';
    sprintf(buf, "%s", "overflowing again here");
}
`

func mustSnap(t *testing.T) *Snapshot {
	t.Helper()
	s, err := Parse("snap.c", snapSample)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotMemoizesFacts(t *testing.T) {
	s := mustSnap(t)
	if s.PointsTo() != s.PointsTo() {
		t.Fatal("PointsTo not memoized")
	}
	if s.Aliases() != s.Aliases() {
		t.Fatal("Aliases not memoized")
	}
	if s.CallGraph() != s.CallGraph() {
		t.Fatal("CallGraph not memoized")
	}
	if s.MayModify() != s.MayModify() {
		t.Fatal("MayModify not memoized")
	}
	if s.BufLenAnalyzer() != s.BufLenAnalyzer() {
		t.Fatal("BufLenAnalyzer not memoized")
	}
	for _, fn := range s.Unit().Funcs {
		if s.CFG(fn) != s.CFG(fn) {
			t.Fatalf("CFG(%s) not memoized", fn.Name)
		}
		if s.Reaching(fn) != s.Reaching(fn) {
			t.Fatalf("Reaching(%s) not memoized", fn.Name)
		}
	}
	f1, f2 := s.Findings(), s.Findings()
	if len(f1) == 0 {
		t.Fatal("oracle should flag the sample")
	}
	if &f1[0] != &f2[0] {
		t.Fatal("Findings not memoized")
	}
}

func TestSnapshotConcurrentAccess(t *testing.T) {
	// Hammer every accessor from many goroutines; -race is the judge.
	s := mustSnap(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Typecheck()
			s.PointsTo()
			s.Aliases()
			s.CallGraph()
			s.MayModify()
			s.BufLenAnalyzer()
			s.Findings()
			for _, fn := range s.Unit().Funcs {
				s.CFG(fn)
				s.Reaching(fn)
			}
		}()
	}
	wg.Wait()
}

func TestSnapshotFindingsMatchSeedOracle(t *testing.T) {
	// The snapshot-backed oracle must reproduce the seed pipeline
	// (typecheck then overflow.Analyze on a bare unit) exactly.
	s := mustSnap(t)
	unit, err := cparse.Parse("snap.c", snapSample)
	if err != nil {
		t.Fatal(err)
	}
	typecheck.Check(unit)
	want := overflow.Analyze(unit)
	got := s.Findings()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("findings diverge:\nsnapshot: %v\nseed:     %v", got, want)
	}
}

func TestSnapshotTypecheckOnce(t *testing.T) {
	s := mustSnap(t)
	errs1 := s.Typecheck()
	// Trigger the whole fact lattice, then confirm the diagnostics slice
	// is stable (typecheck ran exactly once).
	s.Findings()
	s.MayModify()
	errs2 := s.Typecheck()
	if len(errs1) != len(errs2) {
		t.Fatalf("typecheck diagnostics changed: %d vs %d", len(errs1), len(errs2))
	}
}
