package typecheck

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/ctype"
)

// checkUnit parses and type-checks src, failing the test on any error.
func checkUnit(t *testing.T, src string) *cast.TranslationUnit {
	t.Helper()
	tu, err := cparse.Parse("t.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if errs := Check(tu); len(errs) > 0 {
		t.Fatalf("typecheck: %v", errs[0])
	}
	return tu
}

// exprTypeIn finds the first expression whose source text matches want and
// returns its computed type string.
func exprTypeIn(t *testing.T, tu *cast.TranslationUnit, srcText string) string {
	t.Helper()
	var found cast.Expr
	cast.Inspect(tu, func(n cast.Node) bool {
		if e, ok := n.(cast.Expr); ok && found == nil {
			if tu.File.Slice(e.Extent()) == srcText {
				found = e
			}
		}
		return true
	})
	if found == nil {
		t.Fatalf("expression %q not found", srcText)
	}
	if found.Type() == nil {
		t.Fatalf("expression %q has no type", srcText)
	}
	return found.Type().String()
}

func TestExprTypes(t *testing.T) {
	src := `
struct pair { int a; char *name; };
void f(void) {
    char buf[10];
    char *p;
    int i;
    unsigned long ul;
    struct pair pr;
    struct pair *pp;
    p = buf;
    i = i + 1;
    ul = ul + i;
    p = p + i;
    i = *p;
    p = &buf[2];
    i = pr.a;
    p = pp->name;
    i = (int)ul;
    ul = sizeof(buf);
}
`
	tu := checkUnit(t, src)
	tests := []struct {
		expr string
		want string
	}{
		{"buf", "char [10]"},
		{"i + 1", "int"},
		{"ul + i", "unsigned long"},
		{"p + i", "char *"},
		{"*p", "char"},
		{"&buf[2]", "char *"},
		{"pr.a", "int"},
		{"pp->name", "char *"},
		{"(int)ul", "int"},
		{"sizeof(buf)", "unsigned long"},
	}
	for _, tt := range tests {
		if got := exprTypeIn(t, tu, tt.expr); got != tt.want {
			t.Errorf("%s: got %q, want %q", tt.expr, got, tt.want)
		}
	}
}

func TestArrayNotDecayedOnIdent(t *testing.T) {
	// Algorithm 1 relies on distinguishing ArrayType from PointerType for
	// identifier expressions, so the checker must not decay arrays there.
	tu := checkUnit(t, "void f(void){ char buf[10]; char *p; p = buf; }")
	var assign *cast.AssignExpr
	cast.Inspect(tu, func(n cast.Node) bool {
		if a, ok := n.(*cast.AssignExpr); ok {
			assign = a
		}
		return true
	})
	rhs := cast.Unparen(assign.RHS)
	if !ctype.IsArray(rhs.Type()) {
		t.Fatalf("buf should keep array type, got %s", rhs.Type())
	}
}

func TestCallResultTypes(t *testing.T) {
	src := `
void f(void) {
    char *p;
    unsigned long n;
    p = malloc(10);
    n = strlen(p);
    p = strcpy(p, "x");
}
`
	tu := checkUnit(t, src)
	if got := exprTypeIn(t, tu, "malloc(10)"); got != "void *" {
		t.Errorf("malloc: got %q", got)
	}
	if got := exprTypeIn(t, tu, "strlen(p)"); got != "unsigned long" {
		t.Errorf("strlen: got %q", got)
	}
	if got := exprTypeIn(t, tu, `strcpy(p, "x")`); got != "char *" {
		t.Errorf("strcpy: got %q", got)
	}
}

func TestPointerDifference(t *testing.T) {
	tu := checkUnit(t, "void f(void){ char *a, *b; long d; d = a - b; }")
	if got := exprTypeIn(t, tu, "a - b"); got != "long" {
		t.Errorf("pointer difference: got %q", got)
	}
}

func TestComparisonIsInt(t *testing.T) {
	tu := checkUnit(t, "void f(void){ int a, b, c; c = a < b; c = a && b; }")
	if got := exprTypeIn(t, tu, "a < b"); got != "int" {
		t.Errorf("comparison: got %q", got)
	}
	if got := exprTypeIn(t, tu, "a && b"); got != "int" {
		t.Errorf("logical and: got %q", got)
	}
}

func TestMemberErrors(t *testing.T) {
	tu, err := cparse.Parse("t.c", `
struct s { int a; };
void f(void) { struct s v; int i; i = v.b; }
`)
	if err != nil {
		t.Fatal(err)
	}
	errs := Check(tu)
	if len(errs) == 0 {
		t.Fatal("expected an error for unknown member")
	}
}

func TestCondExprDecays(t *testing.T) {
	tu := checkUnit(t, `void f(int c){ char a[4], b[4]; char *p; p = c ? a : b; }`)
	if got := exprTypeIn(t, tu, "c ? a : b"); got != "char *" {
		t.Errorf("ternary over arrays should decay: got %q", got)
	}
}

func TestTypedefResolution(t *testing.T) {
	src := `
typedef unsigned long size_type;
void f(void) { size_type n; n = n + 1; }
`
	tu := checkUnit(t, src)
	if got := exprTypeIn(t, tu, "n + 1"); got != "unsigned long" {
		t.Errorf("typedef arith: got %q", got)
	}
}

func TestStringLiteralType(t *testing.T) {
	tu := checkUnit(t, `void f(void){ char *p; p = "abc"; }`)
	if got := exprTypeIn(t, tu, `"abc"`); got != "char [4]" {
		t.Errorf("string literal: got %q", got)
	}
}

func TestIndexOnPointer(t *testing.T) {
	tu := checkUnit(t, "void f(char *p){ char c; c = p[3]; }")
	if got := exprTypeIn(t, tu, "p[3]"); got != "char" {
		t.Errorf("p[3]: got %q", got)
	}
}
