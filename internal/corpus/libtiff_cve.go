package corpus

// LibtiffCVESource is a faithful miniature of the LibTIFF 3.8.2
// vulnerability of Section IV-A2 (tools/tiff2pdf.c, t2p_write_pdf_string,
// line 3665): a char with the most significant bit set passes the
// (pdfstr[i] & 0x80) test, is sign-extended to int by the %o conversion,
// and sprintf writes far more than the five bytes buffer can hold. The
// exploit input is a "DocumentTag" containing UTF-8 (high-bit) bytes.
//
// The harness demonstrates the paper's claim: SLR replaces the sprintf
// with g_snprintf bounded by sizeof(buffer), removing the overflow; the
// benign input's output is unchanged, the attack input no longer smashes
// the stack (its PDF escape is truncated instead — "this modifies what was
// previously acceptable by the program to be unacceptable now, but such
// changes are beneficial").
const LibtiffCVESource = `/* Miniature of LibTIFF 3.8.2 tools/tiff2pdf.c t2p_write_pdf_string. */
static char t2p_output[256];
static int t2p_outlen = 0;

static void t2p_emit(char *s) {
    int i;
    for (i = 0; s[i] != '\0'; i++) {
        if (t2p_outlen < 255) {
            t2p_output[t2p_outlen] = s[i];
            t2p_outlen = t2p_outlen + 1;
        }
    }
    t2p_output[t2p_outlen] = '\0';
}

void t2p_write_pdf_string(char *pdfstr) {
    char buffer[5];
    int i;
    int len;
    len = strlen(pdfstr);
    t2p_emit("(");
    for (i = 0; i < len; i++) {
        if ((pdfstr[i] & 0x80) || (pdfstr[i] == 127) || (pdfstr[i] < 32)) {
            sprintf(buffer, "\\%.3o", pdfstr[i]);
            t2p_emit(buffer);
        } else {
            buffer[0] = pdfstr[i];
            buffer[1] = '\0';
            t2p_emit(buffer);
        }
    }
    t2p_emit(")");
}

void run_benign(void) {
    t2p_outlen = 0;
    t2p_write_pdf_string("Title 07");
    printf("%s\n", t2p_output);
}

void run_attack(void) {
    char doc[4];
    t2p_outlen = 0;
    doc[0] = 'A';
    doc[1] = 0xC3;  /* UTF-8 lead byte: high bit set */
    doc[2] = 0xA9;  /* UTF-8 continuation byte */
    doc[3] = '\0';
    t2p_write_pdf_string(doc);
    printf("%s\n", t2p_output);
}

int main(void) {
    run_benign();
    run_attack();
    return 0;
}
`
