package fleet

import (
	"sync"
	"time"
)

// breakerState is the classic three-state machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	}
	return "unknown"
}

// Breaker is a per-backend circuit breaker: after Threshold consecutive
// failures it opens and sheds every request for a cooldown, then lets
// exactly one probe request through (half-open). The probe's success
// closes the circuit; its failure reopens it with a doubled cooldown,
// up to MaxCooldown. A success at any point resets the failure count
// and the cooldown ladder.
//
// The breaker complements health ejection: ejection reacts to failed
// *probes* (the backend is unreachable or draining), the breaker reacts
// to failed *requests* (the backend answers probes but serves garbage —
// chaos-injected 500s, torn bodies). Either alone leaves a gap.
type Breaker struct {
	mu sync.Mutex

	threshold   int
	cooldown    time.Duration
	maxCooldown time.Duration

	state       breakerState
	consecFails int
	openedAt    time.Time
	curCooldown time.Duration
	opens       int64 // cumulative open transitions (metrics)

	// now is stubbed in tests.
	now func() time.Time
}

// NewBreaker builds a breaker opening after threshold consecutive
// failures (<= 0 means 5) with the given base cooldown (<= 0 means 1s),
// doubling per consecutive open up to maxCooldown (<= 0 means 30s).
func NewBreaker(threshold int, cooldown, maxCooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	if maxCooldown <= 0 {
		maxCooldown = 30 * time.Second
	}
	return &Breaker{
		threshold:   threshold,
		cooldown:    cooldown,
		maxCooldown: maxCooldown,
		curCooldown: cooldown,
		now:         time.Now,
	}
}

// Allow reports whether a request may proceed. In the open state it
// returns false until the cooldown expires, then transitions to
// half-open and admits exactly one probe request; further Allows answer
// false until that probe reports Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.curCooldown {
			b.state = breakerHalfOpen
			return true // the single half-open probe
		}
		return false
	case breakerHalfOpen:
		return false // a probe is already in flight
	}
	return false
}

// Success records a served request: the circuit closes and the failure
// count and cooldown ladder reset.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecFails = 0
	b.curCooldown = b.cooldown
}

// Failure records a failed request. In half-open it reopens immediately
// with a doubled cooldown; in closed it opens once the consecutive
// failure count reaches the threshold.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.curCooldown = min(2*b.curCooldown, b.maxCooldown)
		b.open()
	case breakerClosed:
		b.consecFails++
		if b.consecFails >= b.threshold {
			b.open()
		}
	case breakerOpen:
		// A straggler from before the open; nothing to update.
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.opens++
}

// Reset force-closes the circuit (health reinstatement gives a backend
// a clean slate).
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecFails = 0
	b.curCooldown = b.cooldown
}

// State names the current state for /metrics.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// Opens reports cumulative open transitions.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
