package stralloc

import (
	"strings"
	"testing"

	"repro/internal/cparse"
	"repro/internal/typecheck"
)

func TestHeaderParses(t *testing.T) {
	tu, err := cparse.Parse("stralloc.h", Header())
	if err != nil {
		t.Fatalf("header must parse: %v", err)
	}
	if errs := typecheck.Check(tu); len(errs) > 0 {
		t.Fatalf("header must typecheck: %v", errs[0])
	}
}

func TestFullSourceParsesAndChecks(t *testing.T) {
	tu, err := cparse.Parse("stralloc.c", FullSource())
	if err != nil {
		t.Fatalf("implementation must parse: %v", err)
	}
	if errs := typecheck.Check(tu); len(errs) > 0 {
		t.Fatalf("implementation must typecheck: %v", errs[0])
	}
	// All 18 functions must be defined.
	defined := make(map[string]bool, len(tu.Funcs))
	for _, f := range tu.Funcs {
		defined[f.Name] = true
	}
	for _, name := range FunctionNames {
		if !defined[name] {
			t.Errorf("function %s missing from implementation", name)
		}
	}
}

func TestEighteenFunctions(t *testing.T) {
	// Section III-C: "Our implementation contains 18 functions."
	if len(FunctionNames) != 18 {
		t.Fatalf("function count: got %d, want 18", len(FunctionNames))
	}
	seen := make(map[string]bool, len(FunctionNames))
	for _, n := range FunctionNames {
		if seen[n] {
			t.Errorf("duplicate function name %s", n)
		}
		seen[n] = true
		if !strings.HasPrefix(n, "stralloc_") {
			t.Errorf("function %s lacks the stralloc_ prefix", n)
		}
	}
}

func TestHeaderDeclaresStruct(t *testing.T) {
	h := Header()
	for _, field := range []string{"char* s;", "char* f;", "unsigned int len;", "unsigned int a;"} {
		if !strings.Contains(h, field) {
			t.Errorf("header missing field %q", field)
		}
	}
}
