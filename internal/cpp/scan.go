package cpp

import "strings"

// pkind classifies a preprocessing token. The set is the C standard's
// pp-token taxonomy collapsed to what expansion needs: identifiers are
// macro candidates, pp-numbers and literals are opaque, punctuators
// matter only for '(' ')' ',' '#' '##' recognition, and newlines are
// kept because directives are line-oriented.
type pkind int

const (
	tkEOF pkind = iota
	tkIdent
	tkNum
	tkStr
	tkChar
	tkPunct
	tkComment
	tkNewline
	tkSplice // a line continuation surrounded by whitespace
	tkOther  // any byte that fits nothing above (kept verbatim)
)

// ptok is one preprocessing token.
type ptok struct {
	kind pkind
	text string // de-spliced spelling
	// file/pos/end locate the raw bytes (including any splices) in the
	// originating file; file is nil and pos/end -1 for synthesized
	// tokens (paste and stringize results, builtin expansions).
	file *srcFile
	pos  int
	end  int
	// ws marks a token preceded by whitespace or a comment; rendering a
	// token list re-inserts a single space there.
	ws bool
	// spliced marks a token whose raw spelling contains a backslash-
	// newline; its de-spliced text differs from the raw bytes, so it can
	// never be copied verbatim.
	spliced bool
	// hide is the macro hide set: names whose expansion produced this
	// token (directly or transitively). A hidden name is never
	// re-expanded, which is what terminates recursive macros.
	hide map[string]bool
}

// hidden reports whether name is in the token's hide set.
func (t *ptok) hidden(name string) bool { return t.hide != nil && t.hide[name] }

// withHide returns a copy of hide with name added (shared maps are never
// mutated: tokens are copied freely during substitution).
func withHide(hide map[string]bool, name string) map[string]bool {
	out := make(map[string]bool, len(hide)+1)
	for k := range hide {
		out[k] = true
	}
	out[name] = true
	return out
}

// unionHide merges two hide sets (nil-tolerant).
func unionHide(a, b map[string]bool) map[string]bool {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// scanner produces preprocessing tokens from one file's raw text. It is
// splice-aware: a backslash-newline inside a token joins the halves and
// marks the token spliced; one between tokens is reported as a tkSplice
// token so the verbatim copier can scrub it from the output.
type scanner struct {
	f   *srcFile
	off int
}

func newScanner(f *srcFile, off int) *scanner { return &scanner{f: f, off: off} }

func (s *scanner) src() string { return s.f.src }

// peekByte returns the byte at off+n without consuming (0 at EOF).
func (s *scanner) peekByte(n int) byte {
	if s.off+n >= len(s.f.src) {
		return 0
	}
	return s.f.src[s.off+n]
}

// spliceAt reports whether a line continuation starts at off: a
// backslash followed by a newline (optionally \r\n).
func spliceAt(src string, off int) (int, bool) {
	if off >= len(src) || src[off] != '\\' {
		return 0, false
	}
	j := off + 1
	if j < len(src) && src[j] == '\r' {
		j++
	}
	if j < len(src) && src[j] == '\n' {
		return j + 1 - off, true
	}
	return 0, false
}

// next scans one token. Horizontal whitespace is consumed and folded
// into the next token's ws flag; newlines, comments and splices are
// returned as their own tokens so line structure stays visible.
func (s *scanner) next() ptok {
	src := s.f.src
	ws := false
	for s.off < len(src) {
		c := src[s.off]
		if c == ' ' || c == '\t' || c == '\v' || c == '\f' || c == '\r' {
			s.off++
			ws = true
			continue
		}
		break
	}
	start := s.off
	if s.off >= len(src) {
		return ptok{kind: tkEOF, file: s.f, pos: start, end: start, ws: ws}
	}
	c := src[s.off]
	if n, ok := spliceAt(src, s.off); ok {
		s.off += n
		return ptok{kind: tkSplice, file: s.f, pos: start, end: s.off, ws: ws}
	}
	switch {
	case c == '\n':
		s.off++
		return ptok{kind: tkNewline, text: "\n", file: s.f, pos: start, end: s.off, ws: ws}
	case c == '/' && s.peekByte(1) == '/':
		return s.scanLineComment(start, ws)
	case c == '/' && s.peekByte(1) == '*':
		return s.scanBlockComment(start, ws)
	case isIdentStart(c):
		return s.scanIdent(start, ws)
	case c >= '0' && c <= '9':
		return s.scanNumber(start, ws)
	case c == '.' && s.peekByte(1) >= '0' && s.peekByte(1) <= '9':
		return s.scanNumber(start, ws)
	case c == '"':
		return s.scanQuoted(start, ws, '"', tkStr)
	case c == '\'':
		return s.scanQuoted(start, ws, '\'', tkChar)
	default:
		return s.scanPunct(start, ws)
	}
}

// collect gathers the token's de-spliced text while advancing through
// splices. advance returns false when the byte at the current offset
// ends the token.
func (s *scanner) collect(b *strings.Builder, spliced *bool, more func(c byte) bool) {
	src := s.f.src
	for s.off < len(src) {
		if n, ok := spliceAt(src, s.off); ok {
			s.off += n
			*spliced = true
			continue
		}
		c := src[s.off]
		if !more(c) {
			return
		}
		b.WriteByte(c)
		s.off++
	}
}

func (s *scanner) scanIdent(start int, ws bool) ptok {
	var b strings.Builder
	spliced := false
	s.collect(&b, &spliced, func(c byte) bool { return isIdentCont(c) })
	return ptok{kind: tkIdent, text: b.String(), file: s.f, pos: start, end: s.off, ws: ws, spliced: spliced}
}

// scanNumber scans a C pp-number: it deliberately over-matches (letters,
// digits, dots, exponent signs) because the preprocessor never needs the
// value, only the spelling.
func (s *scanner) scanNumber(start int, ws bool) ptok {
	var b strings.Builder
	spliced := false
	prevExp := false
	s.collect(&b, &spliced, func(c byte) bool {
		if isIdentCont(c) || c == '.' {
			prevExp = c == 'e' || c == 'E' || c == 'p' || c == 'P'
			return true
		}
		if (c == '+' || c == '-') && prevExp {
			prevExp = false
			return true
		}
		return false
	})
	return ptok{kind: tkNum, text: b.String(), file: s.f, pos: start, end: s.off, ws: ws, spliced: spliced}
}

// scanQuoted scans a string or character literal. An unterminated
// literal ends at the newline (or EOF) without consuming it; the text
// scanned so far is returned as tkOther so downstream stages keep the
// bytes without mistaking them for a literal.
func (s *scanner) scanQuoted(start int, ws bool, quote byte, kind pkind) ptok {
	src := s.f.src
	var b strings.Builder
	spliced := false
	b.WriteByte(quote)
	s.off++
	for s.off < len(src) {
		if n, ok := spliceAt(src, s.off); ok {
			s.off += n
			spliced = true
			continue
		}
		c := src[s.off]
		if c == '\n' {
			return ptok{kind: tkOther, text: b.String(), file: s.f, pos: start, end: s.off, ws: ws, spliced: spliced}
		}
		if c == '\\' && s.off+1 < len(src) {
			b.WriteByte(c)
			b.WriteByte(src[s.off+1])
			s.off += 2
			continue
		}
		b.WriteByte(c)
		s.off++
		if c == quote {
			return ptok{kind: kind, text: b.String(), file: s.f, pos: start, end: s.off, ws: ws, spliced: spliced}
		}
	}
	return ptok{kind: tkOther, text: b.String(), file: s.f, pos: start, end: s.off, ws: ws, spliced: spliced}
}

func (s *scanner) scanLineComment(start int, ws bool) ptok {
	src := s.f.src
	spliced := false
	for s.off < len(src) {
		if n, ok := spliceAt(src, s.off); ok {
			// A line comment continued by a splice swallows the next
			// physical line too (the standard splices before comments are
			// recognized).
			s.off += n
			spliced = true
			continue
		}
		if src[s.off] == '\n' {
			break
		}
		s.off++
	}
	return ptok{kind: tkComment, text: " ", file: s.f, pos: start, end: s.off, ws: ws, spliced: spliced}
}

func (s *scanner) scanBlockComment(start int, ws bool) ptok {
	src := s.f.src
	s.off += 2
	for s.off < len(src) {
		if src[s.off] == '*' && s.off+1 < len(src) && src[s.off+1] == '/' {
			s.off += 2
			return ptok{kind: tkComment, text: " ", file: s.f, pos: start, end: s.off, ws: ws}
		}
		s.off++
	}
	// Unterminated: consume to EOF (an error the lexer downstream will
	// also report; the preprocessor stays quiet and keeps the bytes).
	return ptok{kind: tkComment, text: " ", file: s.f, pos: start, end: s.off, ws: ws}
}

// Multi-byte punctuators, longest first. The preprocessor set adds '#'
// and '##' to the C punctuators.
var _punct3 = []string{"<<=", ">>=", "..."}
var _punct2 = []string{
	"->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=", "##",
}

func (s *scanner) scanPunct(start int, ws bool) ptok {
	src := s.f.src
	rest := src[s.off:]
	for _, p := range _punct3 {
		if strings.HasPrefix(rest, p) {
			s.off += 3
			return ptok{kind: tkPunct, text: p, file: s.f, pos: start, end: s.off, ws: ws}
		}
	}
	// A splice may hide inside a multi-byte punctuator; handle the
	// common un-spliced case fast and fall back to byte-wise for '#'.
	for _, p := range _punct2 {
		if strings.HasPrefix(rest, p) {
			s.off += 2
			return ptok{kind: tkPunct, text: p, file: s.f, pos: start, end: s.off, ws: ws}
		}
	}
	c := src[s.off]
	s.off++
	if strings.IndexByte("[](){}.&*+-~!/%<>^|?:;=,#", c) >= 0 {
		return ptok{kind: tkPunct, text: string(c), file: s.f, pos: start, end: s.off, ws: ws}
	}
	return ptok{kind: tkOther, text: string(c), file: s.f, pos: start, end: s.off, ws: ws}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
