package cparse

import (
	"repro/internal/cast"
	"repro/internal/ctoken"
	"repro/internal/ctype"
)

// declSpecs is the result of parsing declaration specifiers.
type declSpecs struct {
	base    ctype.Type
	storage cast.StorageClass
}

// declarator is the result of parsing one declarator: a name and the full
// type built around the base type.
type declarator struct {
	name       string
	typ        ctype.Type
	nameExtent ctoken.Extent
	// params holds parameter declarations when the declarator declares a
	// function.
	params []*cast.ParamDecl
}

// parseDeclSpecs parses storage-class specifiers, type specifiers and
// qualifiers. It requires at least one type specifier (implicit int is not
// supported; the paper's corpora are C89/C99 with explicit types).
func (p *Parser) parseDeclSpecs() declSpecs {
	var (
		storage  = cast.StorageNone
		sawSign  = 0 // 0 none, 1 signed, 2 unsigned
		nLong    int
		sawShort bool
		baseKind = ctype.Invalid
		base     ctype.Type
	)
	setStorage := func(s cast.StorageClass) {
		if storage != cast.StorageNone {
			p.errorf(p.cur().Extent.Pos, "multiple storage classes")
		}
		storage = s
	}
	for {
		t := p.cur()
		switch {
		case t.IsKeyword("typedef"):
			setStorage(cast.StorageTypedef)
			p.advance()
		case t.IsKeyword("extern"):
			setStorage(cast.StorageExtern)
			p.advance()
		case t.IsKeyword("static"):
			setStorage(cast.StorageStatic)
			p.advance()
		case t.IsKeyword("auto"):
			setStorage(cast.StorageAuto)
			p.advance()
		case t.IsKeyword("register"):
			setStorage(cast.StorageRegister)
			p.advance()
		case t.IsKeyword("const"), t.IsKeyword("volatile"), t.IsKeyword("restrict"),
			t.IsKeyword("__restrict"), t.IsKeyword("inline"), t.IsKeyword("__inline"),
			t.IsKeyword("__extension__"):
			p.advance() // qualifiers don't affect our type model
		case t.IsKeyword("void"):
			baseKind = ctype.Void
			p.advance()
		case t.IsKeyword("char"):
			baseKind = ctype.Char
			p.advance()
		case t.IsKeyword("int"):
			if baseKind == ctype.Invalid {
				baseKind = ctype.Int
			}
			p.advance()
		case t.IsKeyword("short"):
			sawShort = true
			p.advance()
		case t.IsKeyword("long"):
			nLong++
			p.advance()
		case t.IsKeyword("float"):
			baseKind = ctype.Float
			p.advance()
		case t.IsKeyword("double"):
			baseKind = ctype.Double
			p.advance()
		case t.IsKeyword("_Bool"):
			baseKind = ctype.Bool
			p.advance()
		case t.IsKeyword("signed"):
			sawSign = 1
			p.advance()
		case t.IsKeyword("unsigned"):
			sawSign = 2
			p.advance()
		case t.IsKeyword("struct"), t.IsKeyword("union"):
			base = p.parseRecordSpec(t.Text == "union")
		case t.IsKeyword("enum"):
			base = p.parseEnumSpec()
		case t.Kind == ctoken.KindIdent && p.isTypeName(t.Text) &&
			base == nil && baseKind == ctype.Invalid && sawSign == 0 && nLong == 0 && !sawShort:
			sym := p.lookup(t.Text)
			base = sym.Type
			p.advance()
		default:
			goto done
		}
	}
done:
	if base == nil {
		base = resolveBasic(baseKind, sawSign, nLong, sawShort, p)
	}
	return declSpecs{base: base, storage: storage}
}

func resolveBasic(kind ctype.BasicKind, sign, nLong int, short bool, p *Parser) ctype.Type {
	unsigned := sign == 2
	switch {
	case short:
		if unsigned {
			return ctype.UShortType
		}
		return ctype.ShortType
	case nLong >= 2:
		if unsigned {
			return ctype.ULongLongType
		}
		return ctype.LongLongType
	case nLong == 1 && kind == ctype.Double:
		return &ctype.Basic{Kind: ctype.LongDouble}
	case nLong == 1:
		if unsigned {
			return ctype.ULongType
		}
		return ctype.LongType
	}
	switch kind {
	case ctype.Invalid:
		switch sign {
		case 1:
			return ctype.IntType
		case 2:
			return ctype.UIntType
		default:
			p.errorf(p.cur().Extent.Pos, "expected type specifier, found %s", p.cur())
			return nil // unreachable
		}
	case ctype.Char:
		switch sign {
		case 1:
			return ctype.SCharType
		case 2:
			return ctype.UCharType
		default:
			return ctype.CharType
		}
	case ctype.Int:
		if unsigned {
			return ctype.UIntType
		}
		return ctype.IntType
	case ctype.Void:
		return ctype.VoidType
	case ctype.Float:
		return ctype.FloatType
	case ctype.Double:
		return ctype.DoubleType
	case ctype.Bool:
		return ctype.BoolType
	default:
		return &ctype.Basic{Kind: kind}
	}
}

// parseRecordSpec parses struct/union specifiers: a tag reference, a
// definition, or an anonymous definition.
func (p *Parser) parseRecordSpec(isUnion bool) ctype.Type {
	p.advance() // struct / union
	tag := ""
	if p.at(ctoken.KindIdent) {
		tag = p.advance().Text
	}
	if !p.atText("{") {
		// Reference (or forward declaration). Find or create the tag.
		if tag == "" {
			p.errorf(p.cur().Extent.Pos, "anonymous %s requires a body", recordKw(isUnion))
		}
		if t := p.lookupTag(tagKey(isUnion, tag)); t != nil {
			return t
		}
		rec := &ctype.Record{Tag: tag, IsUnion: isUnion}
		p.declareTag(tagKey(isUnion, tag), rec)
		return rec
	}
	// Definition.
	var rec *ctype.Record
	if tag != "" {
		if t := p.lookupTag(tagKey(isUnion, tag)); t != nil {
			if r, ok := t.(*ctype.Record); ok && !r.Complete {
				rec = r // completing a forward declaration
			}
		}
	}
	if rec == nil {
		rec = &ctype.Record{Tag: tag, IsUnion: isUnion}
		if tag != "" {
			p.declareTag(tagKey(isUnion, tag), rec)
		}
	}
	p.expect("{")
	var fields []ctype.Field
	for !p.atText("}") {
		specs := p.parseDeclSpecs()
		if p.accept(";") {
			// Anonymous member (e.g. nested anonymous struct) — flatten its
			// fields if it is a record.
			if r, ok := ctype.Unqualify(specs.base).(*ctype.Record); ok {
				fields = append(fields, r.Fields...)
			}
			continue
		}
		for {
			d := p.parseDeclarator(specs.base)
			// Bitfields are consumed but width is ignored (not needed by
			// the paper's corpora).
			if p.accept(":") {
				p.parseConditionalExpr()
			}
			fields = append(fields, ctype.Field{Name: d.name, Type: d.typ})
			if !p.accept(",") {
				break
			}
		}
		p.expect(";")
	}
	p.expect("}")
	rec.SetFields(fields)
	return rec
}

func recordKw(isUnion bool) string {
	if isUnion {
		return "union"
	}
	return "struct"
}

func tagKey(isUnion bool, tag string) string {
	return recordKw(isUnion) + " " + tag
}

// parseEnumSpec parses enum specifiers.
func (p *Parser) parseEnumSpec() ctype.Type {
	p.advance() // enum
	tag := ""
	if p.at(ctoken.KindIdent) {
		tag = p.advance().Text
	}
	if !p.atText("{") {
		if tag == "" {
			p.errorf(p.cur().Extent.Pos, "anonymous enum requires a body")
		}
		if t := p.lookupTag("enum " + tag); t != nil {
			return t
		}
		e := &ctype.Enum{Tag: tag}
		p.declareTag("enum "+tag, e)
		return e
	}
	e := &ctype.Enum{Tag: tag}
	if tag != "" {
		p.declareTag("enum "+tag, e)
	}
	p.expect("{")
	var next int64
	for !p.atText("}") {
		nameTok := p.expectIdent()
		val := next
		if p.accept("=") {
			expr := p.parseConditionalExpr()
			if v, ok := ConstIntValue(expr); ok {
				val = v
			}
		}
		e.Consts = append(e.Consts, ctype.EnumConst{Name: nameTok.Text, Value: val})
		p.declare(&cast.Symbol{
			Name: nameTok.Text,
			Kind: cast.SymEnumConst,
			Type: e,
		})
		next = val + 1
		if !p.accept(",") {
			break
		}
	}
	p.expect("}")
	return e
}

// parseDeclarator parses a declarator (pointer stars, direct declarator,
// array/function suffixes) around the base type.
func (p *Parser) parseDeclarator(base ctype.Type) declarator {
	typ := p.parsePointerStars(base)
	return p.parseDirectDeclarator(typ)
}

func (p *Parser) parsePointerStars(typ ctype.Type) ctype.Type {
	for p.accept("*") {
		typ = ctype.PointerTo(typ)
		for p.cur().IsKeyword("const") || p.cur().IsKeyword("volatile") ||
			p.cur().IsKeyword("restrict") || p.cur().IsKeyword("__restrict") {
			p.advance()
		}
	}
	return typ
}

// parseDirectDeclarator handles the inner part: identifier or parenthesized
// declarator, followed by array/function suffixes. The C declarator grammar
// is inside-out: suffixes bind tighter than the pointer prefix, and a
// parenthesized declarator captures the type built from outside. We use the
// standard trick of parsing the inner declarator with a placeholder and
// patching it afterwards.
func (p *Parser) parseDirectDeclarator(typ ctype.Type) declarator {
	var d declarator
	if p.atText("(") && p.isParenDeclarator() {
		p.advance()
		inner := p.parseDeclarator(&ctype.Hole{})
		p.expect(")")
		suffixed := p.parseDeclaratorSuffixes(typ, &d)
		d.name = inner.name
		d.nameExtent = inner.nameExtent
		d.typ = substitutePlaceholder(inner.typ, suffixed)
		if inner.params != nil {
			d.params = inner.params
		}
		return d
	}
	if p.at(ctoken.KindIdent) {
		tok := p.advance()
		d.name = tok.Text
		d.nameExtent = tok.Extent
	}
	d.typ = p.parseDeclaratorSuffixes(typ, &d)
	return d
}

// isParenDeclarator disambiguates "(" starting a parenthesized declarator
// from "(" starting a parameter list (abstract declarators in casts/params
// can begin with "(" either way).
func (p *Parser) isParenDeclarator() bool {
	next := p.peekN(1)
	// (*...) or (ident...) where ident is not a type name → declarator.
	if next.Is("*") || next.Is("(") || next.Is("[") {
		return true
	}
	if next.Kind == ctoken.KindIdent && !p.isTypeName(next.Text) {
		return true
	}
	return false
}

// substitutePlaceholder replaces the ctype.Hole inside t with repl.
func substitutePlaceholder(t, repl ctype.Type) ctype.Type {
	switch x := t.(type) {
	case *ctype.Hole:
		_ = x
		return repl
	case *ctype.Pointer:
		return ctype.PointerTo(substitutePlaceholder(x.Elem, repl))
	case *ctype.Array:
		return &ctype.Array{Elem: substitutePlaceholder(x.Elem, repl), Len: x.Len}
	case *ctype.Func:
		return &ctype.Func{
			Result:   substitutePlaceholder(x.Result, repl),
			Params:   x.Params,
			Variadic: x.Variadic,
		}
	default:
		return t
	}
}

// parseDeclaratorSuffixes parses [len] and (params) suffixes. In C the
// suffixes apply left to right: a[2][3] is array 2 of array 3; f(void)[?]
// is invalid so ordering subtleties are minimal. We parse suffixes
// recursively so the leftmost binds outermost.
func (p *Parser) parseDeclaratorSuffixes(typ ctype.Type, d *declarator) ctype.Type {
	switch {
	case p.atText("["):
		p.advance()
		length := -1
		if !p.atText("]") {
			expr := p.parseAssignExpr()
			if v, ok := ConstIntValue(expr); ok {
				length = int(v)
			}
		}
		p.expect("]")
		inner := p.parseDeclaratorSuffixes(typ, d)
		return &ctype.Array{Elem: inner, Len: length}
	case p.atText("("):
		p.advance()
		ft := &ctype.Func{Result: typ}
		var params []*cast.ParamDecl
		if p.atText(")") {
			// Empty parameter list: unspecified parameters.
			ft.Variadic = true
		} else if p.cur().IsKeyword("void") && p.peekN(1).Is(")") {
			p.advance() // (void)
		} else {
			for {
				if p.accept("...") {
					ft.Variadic = true
					break
				}
				start := p.cur().Extent.Pos
				specs := p.parseDeclSpecs()
				pd := p.parseDeclarator(specs.base)
				paramType := ctype.Decay(pd.typ)
				ft.Params = append(ft.Params, paramType)
				param := &cast.ParamDecl{Name: pd.name, Type: paramType}
				param.SetExtent(ctoken.Extent{Pos: start, End: p.cur().Extent.Pos})
				params = append(params, param)
				if !p.accept(",") {
					break
				}
			}
		}
		p.expect(")")
		d.params = params
		// Function suffixes cannot nest further in our subset; array of
		// functions is invalid C anyway.
		return ft
	default:
		return typ
	}
}

// parseTypeName parses a type-name (for casts and sizeof): decl specs plus
// an abstract declarator.
func (p *Parser) parseTypeName() ctype.Type {
	specs := p.parseDeclSpecs()
	typ := p.parsePointerStars(specs.base)
	// Abstract declarator suffixes.
	var d declarator
	typ = p.parseDeclaratorSuffixes(typ, &d)
	return typ
}

// parseInitializer parses an initializer: assignment expression or brace
// list.
func (p *Parser) parseInitializer() cast.Expr {
	if !p.atText("{") {
		return p.parseAssignExpr()
	}
	start := p.advance().Extent.Pos
	lst := &cast.InitListExpr{}
	for !p.atText("}") {
		// Designators are consumed and ignored.
		for p.atText(".") || p.atText("[") {
			if p.accept(".") {
				p.expectIdent()
			} else {
				p.expect("[")
				p.parseConditionalExpr()
				p.expect("]")
			}
		}
		p.accept("=")
		lst.Elems = append(lst.Elems, p.parseInitializer())
		if !p.accept(",") {
			break
		}
	}
	end := p.expect("}").Extent.End
	lst.SetExtent(ctoken.Extent{Pos: start, End: end})
	return lst
}

// ConstIntValue evaluates a constant integer expression at parse time. It
// handles the operators that appear in array bounds and enum values in the
// paper's corpora.
func ConstIntValue(e cast.Expr) (int64, bool) {
	switch x := cast.Unparen(e).(type) {
	case *cast.IntLit:
		return x.Value, true
	case *cast.CharLit:
		return int64(x.Value), true
	case *cast.UnaryExpr:
		v, ok := ConstIntValue(x.Operand)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case cast.UnaryMinus:
			return -v, true
		case cast.UnaryPlus:
			return v, true
		case cast.UnaryBitNot:
			return ^v, true
		case cast.UnaryNot:
			if v == 0 {
				return 1, true
			}
			return 0, true
		default:
			return 0, false
		}
	case *cast.BinaryExpr:
		a, ok1 := ConstIntValue(x.X)
		b, ok2 := ConstIntValue(x.Y)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case cast.BinaryAdd:
			return a + b, true
		case cast.BinarySub:
			return a - b, true
		case cast.BinaryMul:
			return a * b, true
		case cast.BinaryDiv:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case cast.BinaryRem:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case cast.BinaryShl:
			return a << uint(b), true
		case cast.BinaryShr:
			return a >> uint(b), true
		case cast.BinaryAnd:
			return a & b, true
		case cast.BinaryOr:
			return a | b, true
		case cast.BinaryXor:
			return a ^ b, true
		default:
			return 0, false
		}
	case *cast.SizeofExpr:
		if x.OfType != nil {
			if s := x.OfType.Size(); s >= 0 {
				return int64(s), true
			}
		} else if x.Operand != nil && x.Operand.Type() != nil {
			if s := x.Operand.Type().Size(); s >= 0 {
				return int64(s), true
			}
		}
		return 0, false
	case *cast.Ident:
		// Enum constants resolve at parse time.
		if x.Sym != nil && x.Sym.Kind == cast.SymEnumConst {
			if e, ok := ctype.Unqualify(x.Sym.Type).(*ctype.Enum); ok {
				for _, c := range e.Consts {
					if c.Name == x.Name {
						return c.Value, true
					}
				}
			}
		}
		return 0, false
	default:
		return 0, false
	}
}
