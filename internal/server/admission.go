package server

import (
	"sync/atomic"
	"time"
)

// This file holds the service-tier building blocks shared by the single
// daemon (Server) and the fleet router (internal/fleet.Router): bounded
// admission control and the request latency histogram. Both tiers must
// shed load and report latency identically — a load balancer in front of
// either sees the same 429 + Retry-After contract and the same
// /metrics bucket labels.

// Gate is counting-semaphore admission control: it bounds concurrently
// admitted requests and sheds the excess instead of queueing it. All
// methods are safe for concurrent use.
type Gate struct {
	sem      chan struct{}
	inFlight atomic.Int64
	rejected atomic.Int64
}

// NewGate admits at most n concurrent requests; n must be positive.
func NewGate(n int) *Gate {
	return &Gate{sem: make(chan struct{}, n)}
}

// Capacity returns the admission bound.
func (g *Gate) Capacity() int { return cap(g.sem) }

// Acquire claims one in-flight slot. When it succeeds the caller must
// defer release; when it fails (the gate is full) the request has been
// counted as rejected and the caller should answer 429 + Retry-After.
func (g *Gate) Acquire() (release func(), ok bool) {
	select {
	case g.sem <- struct{}{}:
		g.inFlight.Add(1)
		return func() {
			<-g.sem
			g.inFlight.Add(-1)
		}, true
	default:
		g.rejected.Add(1)
		return nil, false
	}
}

// InFlight reports currently admitted requests.
func (g *Gate) InFlight() int64 { return g.inFlight.Load() }

// Rejected reports requests turned away since startup.
func (g *Gate) Rejected() int64 { return g.rejected.Load() }

// latencyBounds are the upper bounds of the latency histogram buckets,
// chosen to straddle the pipeline's dynamic range: a cache hit lands in
// the first bucket, a small-file solve in the middle, a pathological
// interprocedural solve at the top.
var latencyBounds = [...]time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// latencyLabels name the buckets in /metrics output, one per bound plus
// the overflow bucket.
var latencyLabels = [...]string{"le_1ms", "le_10ms", "le_100ms", "le_1s", "le_10s", "gt_10s"}

// LatencyHist is a fixed-bucket latency histogram whose bucket labels
// are shared by every service tier's /metrics payload. Observations and
// snapshots never block each other; counters are atomics.
type LatencyHist struct {
	buckets [len(latencyBounds) + 1]atomic.Int64
	total   atomic.Int64 // summed nanoseconds
	count   atomic.Int64
}

// Observe records one request latency.
func (h *LatencyHist) Observe(d time.Duration) {
	i := 0
	for i < len(latencyBounds) && d > latencyBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.total.Add(int64(d))
	h.count.Add(1)
}

// Count reports observed requests.
func (h *LatencyHist) Count() int64 { return h.count.Load() }

// TotalMs reports the summed observed latency in milliseconds.
func (h *LatencyHist) TotalMs() int64 { return h.total.Load() / int64(time.Millisecond) }

// Buckets snapshots the histogram as the /metrics bucket-label map.
func (h *LatencyHist) Buckets() map[string]int64 {
	out := make(map[string]int64, len(latencyLabels))
	for i, label := range latencyLabels {
		out[label] = h.buckets[i].Load()
	}
	return out
}
