package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// StageStat aggregates every span of one stage name.
type StageStat struct {
	Name  string
	Count int
	// Total sums span durations (inclusive of nested stages); Self sums
	// self time — duration minus directly nested spans — so summing
	// Self across all stages reproduces the traced wall clock of each
	// lane without double counting.
	Total time.Duration
	Self  time.Duration
	Min   time.Duration
	Max   time.Duration
	// Degraded counts spans carrying a "degraded" attribute.
	Degraded int
}

// StageStats aggregates the recorded spans per stage name, ordered by
// self time descending (ties by name for determinism).
//
// Self time relies on spans within one lane forming a properly nested
// (laminar) family, which the pipeline guarantees: each worker lane
// executes its files sequentially and every stage closes its span
// before its caller does.
func (t *Tracer) StageStats() []StageStat {
	spans := t.Spans()
	sortSpansForNesting(spans)

	// Stack-walk each lane to find every span's directly nested
	// children and charge their time against the parent's self time.
	self := make([]time.Duration, len(spans))
	type frame struct {
		idx int
		end time.Duration
	}
	var stack []frame
	lane := -1
	for i := range spans {
		s := &spans[i]
		self[i] = s.Dur
		if s.Lane != lane {
			stack = stack[:0]
			lane = s.Lane
		}
		for len(stack) > 0 && s.Start >= stack[len(stack)-1].end {
			stack = stack[:len(stack)-1]
		}
		if len(stack) > 0 {
			p := stack[len(stack)-1].idx
			self[p] -= s.Dur
			if self[p] < 0 {
				self[p] = 0
			}
		}
		stack = append(stack, frame{idx: i, end: s.Start + s.Dur})
	}

	byName := make(map[string]*StageStat)
	for i := range spans {
		s := &spans[i]
		st := byName[s.Name]
		if st == nil {
			st = &StageStat{Name: s.Name, Min: s.Dur, Max: s.Dur}
			byName[s.Name] = st
		}
		st.Count++
		st.Total += s.Dur
		st.Self += self[i]
		if s.Dur < st.Min {
			st.Min = s.Dur
		}
		if s.Dur > st.Max {
			st.Max = s.Dur
		}
		if s.Degraded() {
			st.Degraded++
		}
	}
	out := make([]StageStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// FormatStageStats renders the aggregated per-stage summary table. The
// Self column is exclusive time; its total reproduces the traced wall
// clock (per lane, summed), which the footer reports next to the
// tracer's observed extent for cross-checking.
func FormatStageStats(stats []StageStat, wall time.Duration) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-12s %8s %12s %12s %12s %12s %9s\n",
		"stage", "count", "self", "total", "min", "max", "degraded"))
	var selfSum time.Duration
	for _, st := range stats {
		selfSum += st.Self
		sb.WriteString(fmt.Sprintf("%-12s %8d %12s %12s %12s %12s %9d\n",
			st.Name, st.Count,
			roundDur(st.Self), roundDur(st.Total),
			roundDur(st.Min), roundDur(st.Max), st.Degraded))
	}
	sb.WriteString(fmt.Sprintf("%-12s %8s %12s\n", "total", "", roundDur(selfSum)))
	if wall > 0 {
		sb.WriteString(fmt.Sprintf("%-12s %8s %12s\n", "wall", "", roundDur(wall)))
	}
	return sb.String()
}

// MergeStageStats folds src into dst by stage name (summing counts and
// times, widening min/max) and returns the merged slice ordered by self
// time descending. It lets callers aggregate per-program tracers —
// each internally laminar, so each with correct self times — into one
// corpus-level breakdown without requiring cross-program span nesting.
func MergeStageStats(dst, src []StageStat) []StageStat {
	byName := make(map[string]StageStat, len(dst)+len(src))
	for _, sts := range [2][]StageStat{dst, src} {
		for _, st := range sts {
			prev, seen := byName[st.Name]
			if !seen {
				byName[st.Name] = st
				continue
			}
			prev.Count += st.Count
			prev.Total += st.Total
			prev.Self += st.Self
			prev.Degraded += st.Degraded
			if st.Min < prev.Min {
				prev.Min = st.Min
			}
			if st.Max > prev.Max {
				prev.Max = st.Max
			}
			byName[st.Name] = prev
		}
	}
	out := make([]StageStat, 0, len(byName))
	for _, st := range byName {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// SelfTotal sums the self time across stats — the traced work total the
// acceptance check compares against wall clock.
func SelfTotal(stats []StageStat) time.Duration {
	var sum time.Duration
	for _, st := range stats {
		sum += st.Self
	}
	return sum
}

// roundDur trims durations for table output.
func roundDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(100 * time.Nanosecond).String()
	}
}
