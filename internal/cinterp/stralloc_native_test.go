package cinterp

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/stralloc"
	"repro/internal/typecheck"
)

// strallocDriver exercises every library function and prints a trace.
const strallocDriver = `
int main(void) {
    stralloc sa = {0,0,0};
    stralloc sb = {0,0,0};
    stralloc *x = &sa;
    stralloc *y = &sb;
    stralloc_ready(x, 4);
    stralloc_copys(x, "hello");
    printf("%s|%d|", x->s, x->len);
    stralloc_cats(x, " world");
    printf("%s|%d|", x->s, x->len);
    stralloc_copy(y, x);
    printf("%d|", stralloc_compare(x, y));
    stralloc_append(y, '!');
    printf("%s|%d|", y->s, stralloc_compare(x, y));
    printf("%d|", stralloc_get_dereferenced_char_at(x, 4));
    printf("%d|", stralloc_get_dereferenced_char_at(x, -3));
    printf("%d|", stralloc_get_dereferenced_char_at(x, 900));
    stralloc_dereference_replace_by(x, 0, 'H');
    printf("%s|", x->s);
    printf("%d|", stralloc_dereference_replace_by(x, -1, 'z'));
    printf("%d|", stralloc_find_char(x, 'w'));
    printf("%d|", stralloc_find_char(x, 'z'));
    stralloc_memset(y, 'm', 3);
    printf("%s|%d|", y->s, y->len);
    stralloc_increment_by(x, 2);
    printf("%s|%d|", x->s, x->len);
    stralloc_decrement_by(x, 1);
    printf("%s|%d|", x->s, x->len);
    printf("%d|", stralloc_increment_by(x, 500));
    printf("%d|", stralloc_decrement_by(x, 500));
    char *sub = stralloc_substring_at(x, 3);
    printf("%s|", sub);
    stralloc_free(x);
    printf("%d", x->a);
    return 0;
}
`

// TestNativeMatchesInterpreted runs the same driver against the
// interpreted C implementation and the native builtins; the observable
// outputs must be identical.
func TestNativeMatchesInterpreted(t *testing.T) {
	interpreted, err := LoadAndRun("interp.c", stralloc.FullSource()+strallocDriver, "main", nil, Limits{})
	if err != nil {
		t.Fatalf("interpreted: %v", err)
	}
	native, err := LoadAndRun("native.c", stralloc.Header()+strallocDriver, "main", nil, Limits{})
	if err != nil {
		t.Fatalf("native: %v", err)
	}
	if interpreted.Stdout != native.Stdout {
		t.Fatalf("outputs differ:\ninterpreted: %q\nnative:      %q",
			interpreted.Stdout, native.Stdout)
	}
	if interpreted.HasViolations() {
		t.Fatalf("interpreted violations: %v", interpreted.Violations)
	}
	if native.HasViolations() {
		t.Fatalf("native violations: %v", native.Violations)
	}
	if interpreted.Stdout == "" {
		t.Fatal("driver produced no output")
	}
}

// TestNativeFasterThanInterpreted sanity-checks that the native library
// consumes fewer interpreter steps (the premise of the RQ3 measurement).
func TestNativeFasterThanInterpreted(t *testing.T) {
	steps := func(src string) int64 {
		unit, err := parseChecked(t, src)
		if err != nil {
			t.Fatal(err)
		}
		in, err := New(unit, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.Run("main"); err != nil {
			t.Fatal(err)
		}
		return in.Steps()
	}
	si := steps(stralloc.FullSource() + strallocDriver)
	sn := steps(stralloc.Header() + strallocDriver)
	if sn >= si {
		t.Fatalf("native (%d steps) should be cheaper than interpreted (%d steps)", sn, si)
	}
}

// parseChecked is a small helper shared by the step-count test.
func parseChecked(t *testing.T, src string) (*cast.TranslationUnit, error) {
	t.Helper()
	unit, err := cparse.Parse("t.c", src)
	if err != nil {
		return nil, err
	}
	typecheck.Check(unit)
	return unit, nil
}
