# Developer entry points. CI runs the same targets (.github/workflows/ci.yml),
# so a green `make check bench-guard trace-smoke` locally predicts a green CI.

GO ?= go

# Benchmarks settle with one iteration and a few samples; benchguard
# reduces the samples with min, so more -count buys stability, not time.
BENCH_COUNT ?= 3
BENCH_STRIDE ?= 20

TMP := $(shell mktemp -d 2>/dev/null || echo /tmp)

.PHONY: all build test race vet check staticgate bench bench-json bench-guard pipeline-guard incremental-bench incremental-guard trace-smoke clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test

# Static-analysis gate: vet everything, run staticcheck when the host
# has it (CI images without it skip, loudly), and race-test the
# integer-overflow oracle — the analysis pass most sensitive to shared
# snapshot state.
staticgate:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticgate: staticcheck not installed; skipping (go vet still ran)"; \
	fi
	$(GO) test -race ./internal/intflow/...

# Per-stage benchmark baseline: parse-only, snapshot-warm, SLR-only,
# STR-only, the no-tracer pipeline, and the traced pipeline. One
# iteration, $(BENCH_COUNT) samples each — fast enough to run on every
# change, stable enough to compare runs.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineStages|BenchmarkObsOverhead|BenchmarkTraceAttached' \
		-benchtime=1x -count=$(BENCH_COUNT) .

# Machine-readable per-stage pipeline report over the SAMATE corpus
# (BENCH_pipeline.json; uploaded as a CI artifact).
bench-json:
	$(GO) run ./cmd/experiments -bench-json BENCH_pipeline.json -stride $(BENCH_STRIDE)

# Observability overhead gate: the default build's no-tracer path may
# not cost more than 2% over a build with tracing compiled out
# (-tags cfix_notrace). benchguard compares per-benchmark minima.
bench-guard:
	$(GO) test -run '^$$' -bench '^BenchmarkObsOverhead$$' -benchtime=50x -count=7 . > $(TMP)/bench_default.txt
	$(GO) test -tags cfix_notrace -run '^$$' -bench '^BenchmarkObsOverhead$$' -benchtime=50x -count=7 . > $(TMP)/bench_notrace.txt
	$(GO) run ./cmd/benchguard -max-pct 2 $(TMP)/bench_default.txt $(TMP)/bench_notrace.txt

# Integer-oracle share gate: BENCH_pipeline.json (from bench-json) must
# carry a supplementary intflow measurement, and the disabled oracle may
# not cost the default pipeline more than 2% of its self time (it
# should cost exactly 0: the gate trips if the default fix path ever
# starts running it).
pipeline-guard:
	$(GO) run ./cmd/benchguard -pipeline BENCH_pipeline.json -stage intflow -max-share-pct 2 -require

# Incremental latency report: warm per-edit re-analysis percentiles
# measured through the real cfixlsp JSON-RPC loop
# (BENCH_incremental.json; uploaded as a CI artifact).
incremental-bench:
	$(GO) run ./cmd/cfixlsp -bench 200 -bench-funcs 24 -bench-out BENCH_incremental.json
	cat BENCH_incremental.json

# Incremental latency gate: the warm re-analysis median (one didChange
# to publishDiagnostics round trip) must stay under 10ms.
incremental-guard:
	$(GO) run ./cmd/benchguard -incremental BENCH_incremental.json -max-warm-p50-ms 10

# Trace smoke: harden a generated SAMATE sample with -trace/-stage-stats
# and validate the Chrome trace with the CI checker.
trace-smoke:
	$(GO) build -o $(TMP)/cfix ./cmd/cfix
	$(GO) build -o $(TMP)/tracecheck ./cmd/tracecheck
	$(GO) build -o $(TMP)/samategen ./cmd/samategen
	$(TMP)/samategen -out $(TMP)/corpus -cwe 121 -n 10
	$(TMP)/cfix -stage-stats -trace $(TMP)/trace.json -outdir $(TMP)/fixed $(TMP)/corpus/CWE121 2>$(TMP)/cfix.log
	$(TMP)/tracecheck -min-stages 10 -min-events 100 $(TMP)/trace.json

clean:
	rm -f BENCH_pipeline.json BENCH_incremental.json
