package cinterp

import (
	"strings"
	"testing"
)

func TestPutsAndFprintf(t *testing.T) {
	res := run(t, `
int main(void) {
    puts("line one");
    fprintf(stderr, "err %d\n", 2);
    fprintf(stdout, "out\n");
    return 0;
}
`, "main")
	if res.Stdout != "line one\nerr 2\nout\n" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestCallocZeroesAndGStrlcat(t *testing.T) {
	res := run(t, `
int main(void) {
    char *p = calloc(4, 4);
    printf("%d|%d|", p[15], malloc_usable_size(p));
    char buf[8];
    buf[0] = 'a';
    buf[1] = '\0';
    unsigned long full = g_strlcat(buf, "bcdefghij", sizeof(buf));
    printf("%s|%d", buf, full);
    return 0;
}
`, "main")
	if res.Stdout != "0|16|abcdefg|10" {
		t.Fatalf("got %q", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestAbortReturnsExitCode(t *testing.T) {
	res := run(t, `
int main(void) {
    abort();
    return 0;
}
`, "main")
	if res.Return != 134 {
		t.Fatalf("return: %d", res.Return)
	}
}

func TestScanfFopenStubs(t *testing.T) {
	res := run(t, `
int main(void) {
    int x = 5;
    int n = scanf("%d", &x);
    void *f = fopen("no.txt", "r");
    fclose(f);
    fwrite("x", 1, 1, f);
    printf("%d|%d|%d", n, x, f == 0);
    return 0;
}
`, "main")
	if res.Stdout != "0|5|1" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestSwitchDefaultFirst(t *testing.T) {
	res := run(t, `
int main(void) {
    switch (9) {
    default:
        printf("d");
        break;
    case 1:
        printf("1");
    }
    switch (1) {
    default:
        printf("d");
        break;
    case 1:
        printf("1");
    }
    return 0;
}
`, "main")
	if res.Stdout != "d1" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestNestedStructInitializer(t *testing.T) {
	res := run(t, `
struct inner { int a; int b; };
struct outer { struct inner in; int c; };
int main(void) {
    struct outer o = { { 1, 2 }, 3 };
    int arr2[2][2] = { {10, 20}, {30, 40} };
    printf("%d%d%d|%d%d", o.in.a, o.in.b, o.c, arr2[0][1], arr2[1][0]);
    return 0;
}
`, "main")
	if res.Stdout != "123|2030" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestGlobalArrayOfStrings(t *testing.T) {
	res := run(t, `
char greeting[8] = "hi";
int nums[3] = {7, 8, 9};
int main(void) {
    printf("%s|%d%d%d", greeting, nums[0], nums[1], nums[2]);
    return 0;
}
`, "main")
	if res.Stdout != "hi|789" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestMemcmpOrdering(t *testing.T) {
	res := run(t, `
int main(void) {
    printf("%d%d%d", memcmp("abc", "abd", 3) < 0, memcmp("abd", "abc", 3) > 0,
        memcmp("abc", "abc", 3) == 0);
    return 0;
}
`, "main")
	if res.Stdout != "111" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestUnsignedFormatsWithLengths(t *testing.T) {
	res := run(t, `
int main(void) {
    long big = -1;
    printf("[%lu]", big);
    printf("[%u]", -1);
    printf("[%hhu]", 300);
    printf("[%hu]", 70000);
    return 0;
}
`, "main")
	want := "[18446744073709551615][4294967295][44][4464]"
	if res.Stdout != want {
		t.Fatalf("got %q, want %q", res.Stdout, want)
	}
}

func TestAddressOfArrayElementThroughCast(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[8];
    char *p;
    buf[3] = 'q';
    p = (char*)&buf[3];
    printf("%c", *p);
    return 0;
}
`, "main")
	if res.Stdout != "q" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestNegativeModAndShift(t *testing.T) {
	res := run(t, `
int main(void) {
    int a = -7;
    printf("%d|%d|%d", a % 3, a >> 1, a / 2);
    return 0;
}
`, "main")
	if res.Stdout != "-1|-4|-3" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestFloatComparisonsAndMixed(t *testing.T) {
	res := run(t, `
int main(void) {
    double d = 1.5;
    printf("%d%d%d%d", d > 1, d < 2, d == 1.5, d != 1.5);
    printf("|%d", (int)(d * 4.0));
    return 0;
}
`, "main")
	if res.Stdout != "1110|6" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestViolationStringAndKinds(t *testing.T) {
	res := run(t, `
int main(void) {
    char buf[2];
    strcpy(buf, "toolong");
    return 0;
}
`, "main")
	if len(res.Violations) == 0 {
		t.Fatal("expected violation")
	}
	s := res.Violations[0].String()
	if !strings.Contains(s, "CWE-121") || !strings.Contains(s, "stack") {
		t.Fatalf("violation string: %s", s)
	}
	for _, k := range []ObjKind{ObjGlobal, ObjStack, ObjHeap, ObjString, ObjInvalid} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestStringIndexWithNegativeCheckClamped(t *testing.T) {
	// Reading below an object yields zero plus an event; output must stay
	// deterministic.
	res := run(t, `
int main(void) {
    char buf[4];
    int idx = -2;
    buf[0] = 'a';
    printf("%d", buf[idx]);
    return 0;
}
`, "main")
	if res.Stdout != "0" {
		t.Fatalf("got %q", res.Stdout)
	}
	if res.ViolationsByCWE()[127] == 0 {
		t.Fatalf("expected CWE-127: %v", res.Violations)
	}
}

func TestRunTwiceIndependent(t *testing.T) {
	unit, err := parseChecked(t, `
int counter = 0;
int main(void) {
    counter++;
    printf("%d", counter);
    return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(unit, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := in.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := in.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	// Globals persist across runs; output buffers reset.
	if r1.Stdout != "1" || r2.Stdout != "2" {
		t.Fatalf("got %q then %q", r1.Stdout, r2.Stdout)
	}
}

func TestMissingEntryError(t *testing.T) {
	unit, err := parseChecked(t, "int x;")
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(unit, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Run("main"); err == nil {
		t.Fatal("missing entry must error")
	}
}

func TestCallUndefinedFunctionErrors(t *testing.T) {
	_, err := LoadAndRun("t.c", `
int main(void) {
    totally_undefined();
    return 0;
}
`, "main", nil, Limits{})
	if err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("got %v", err)
	}
}

func TestArrayOfStructs(t *testing.T) {
	res := run(t, `
struct item { int id; char tag[4]; };
int main(void) {
    struct item items[3];
    int i;
    for (i = 0; i < 3; i++) {
        items[i].id = i * 10;
        items[i].tag[0] = 'a' + i;
        items[i].tag[1] = '\0';
    }
    struct item *p = &items[1];
    printf("%d %s %d %s", items[2].id, items[0].tag, p->id, p->tag);
    return 0;
}
`, "main")
	if res.Stdout != "20 a 10 b" {
		t.Fatalf("got %q", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestStructParamByValue(t *testing.T) {
	res := run(t, `
struct pair { int a; int b; };
int sum(struct pair p) {
    p.a = 99;
    return p.a + p.b;
}
int main(void) {
    struct pair v;
    v.a = 1;
    v.b = 2;
    int s = sum(v);
    printf("%d %d", s, v.a);
    return 0;
}
`, "main")
	if res.Stdout != "101 1" {
		t.Fatalf("struct params are by value: got %q", res.Stdout)
	}
}
