package overflow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cast"
	"repro/internal/fault"
)

// ArgSeed is one call argument's abstract value at an external call
// site, serialized for cross-translation-unit transport. A caller does
// not know the callee's parameter types, so both the pointer-shaped and
// the integer evaluation travel; the defining TU binds whichever matches
// the parameter. Zero-value fields mean "nothing known".
type ArgSeed struct {
	// HasPtr marks a non-top pointer evaluation: Size/Off/Strl describe
	// the pointed-to object (allocation size, pointer offset, first-NUL
	// index) and Reg its storage region (the region enum's numeric
	// value).
	HasPtr bool     `json:"has_ptr,omitempty"`
	Size   Interval `json:"size,omitempty"`
	Off    Interval `json:"off,omitempty"`
	Strl   Interval `json:"strl,omitempty"`
	Reg    uint8    `json:"reg,omitempty"`
	// HasInt marks a non-top integer evaluation of the argument.
	HasInt bool     `json:"has_int,omitempty"`
	Val    Interval `json:"val,omitempty"`
}

// CallSeed describes one call to a function the current TU does not
// define: who called, what they called, and what the caller's interval
// state proves about each argument. The project linker routes these to
// the TU that defines Callee, where they seed interprocedural contexts
// exactly like a local call edge would (the paper's context seeding,
// extended across file boundaries).
type CallSeed struct {
	Caller string    `json:"caller"`
	Callee string    `json:"callee"`
	Args   []ArgSeed `json:"args,omitempty"`
}

// ExternalCalls evaluates every call to an undefined callee under the
// caller's pass-1 (empty-seed) interval solution and returns the
// resulting seeds. Calls proving nothing about any argument are
// omitted. The result is deterministic: function order follows the
// translation unit, call order the call graph's edge order.
func (a *Analyzer) ExternalCalls() []CallSeed {
	a.ensure()
	var out []CallSeed
	for _, fn := range a.unit.Funcs {
		fault.CheckCtx(a.opts.Limits.Ctx)
		g, sol := a.solve(fn, nil)
		for _, e := range a.cg.CallsFrom(fn.Name) {
			if e.Callee != nil {
				continue
			}
			n := g.NodeContaining(e.Call)
			if n == nil || !sol.Reached[n.ID] {
				continue
			}
			st := sol.In[n.ID]
			cs := CallSeed{Caller: fn.Name, Callee: e.CalleeName}
			interesting := false
			for _, arg := range e.Call.Args {
				var as ArgSeed
				if vs, ok := evalPtr(st, arg); ok && !vs.isTop() {
					as.HasPtr = true
					as.Size, as.Off, as.Strl, as.Reg = vs.size, vs.off, vs.strl, uint8(vs.reg)
					interesting = true
				}
				if iv := evalInt(st, arg); !iv.IsTop() {
					as.HasInt = true
					as.Val = iv
					interesting = true
				}
				cs.Args = append(cs.Args, as)
			}
			if interesting {
				out = append(out, cs)
			}
		}
	}
	return out
}

// bindSeed maps transported argument seeds onto the callee's parameter
// symbols by position, keeping only the evaluation that matches the
// parameter's type.
func bindSeed(fn *cast.FuncDef, args []ArgSeed) map[int]varState {
	seed := make(map[int]varState)
	for i, p := range fn.Params {
		if p.Sym == nil || i >= len(args) {
			break
		}
		as := args[i]
		switch {
		case isPtrVar(p.Sym) && as.HasPtr:
			vs := topVar()
			vs.size, vs.off, vs.strl, vs.reg = as.Size, as.Off, as.Strl, region(as.Reg)
			seed[p.Sym.ID] = vs
		case isIntVar(p.Sym) && as.HasInt:
			vs := topVar()
			vs.val = as.Val
			seed[p.Sym.ID] = vs
		}
	}
	return seed
}

// externChainLabel tags cross-TU callers in context chains, so reports
// read "main [extern] -> vuln" and inChain never confuses an external
// caller with a same-named local function.
func externChainLabel(caller string) string { return caller + " [extern]" }

// seedFindings runs the externally seeded contexts (project mode): each
// CallSeed whose callee this TU defines becomes an interprocedural
// context rooted at that function, checked and propagated exactly like
// a pass-2 context.
func (a *Analyzer) seedFindings() []Finding {
	if len(a.opts.ExternSeeds) == 0 || a.opts.ContextDepth <= 0 {
		return nil
	}
	seeds := append([]CallSeed(nil), a.opts.ExternSeeds...)
	sort.SliceStable(seeds, func(i, j int) bool {
		if seeds[i].Callee != seeds[j].Callee {
			return seeds[i].Callee < seeds[j].Callee
		}
		return seeds[i].Caller < seeds[j].Caller
	})
	byName := make(map[string]*cast.FuncDef, len(a.unit.Funcs))
	for _, fn := range a.unit.Funcs {
		byName[fn.Name] = fn
	}
	var out []Finding
	for _, cs := range seeds {
		fn := byName[cs.Callee]
		if fn == nil {
			continue
		}
		seed := bindSeed(fn, cs.Args)
		if len(seed) == 0 {
			continue
		}
		chain := []string{externChainLabel(cs.Caller), fn.Name}
		out = append(out, a.propagate(fn, seed, chain, a.opts.ContextDepth-1)...)
	}
	return out
}

// SeedFingerprint renders a seed list into a stable key fragment for
// cache fingerprints and memo signatures. Empty input yields "".
func SeedFingerprint(seeds []CallSeed) string {
	if len(seeds) == 0 {
		return ""
	}
	lines := make([]string, 0, len(seeds))
	for _, cs := range seeds {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%s>%s", cs.Caller, cs.Callee)
		for _, as := range cs.Args {
			fmt.Fprintf(&sb, "|%t,%d,%d,%d,%d,%d,%d,%d,%t,%d,%d",
				as.HasPtr, as.Size.Lo, as.Size.Hi, as.Off.Lo, as.Off.Hi,
				as.Strl.Lo, as.Strl.Hi, as.Reg, as.HasInt, as.Val.Lo, as.Val.Hi)
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	h := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(h[:8])
}
