// Package harness runs the paper's end-to-end protocol on one program:
// execute the good and bad functions under the checked interpreter, apply
// SLR and then STR in batch mode, re-execute, and judge the two claims of
// Section IV-A — the bad function's overflow is fixed, and the good
// function's observable behavior is preserved.
package harness

import (
	"context"
	"fmt"

	"repro/internal/cinterp"
	"repro/internal/core"
	"repro/internal/cparse"
	"repro/internal/obs"
	"repro/internal/stralloc"
	"repro/internal/typecheck"
)

// Verdict is the outcome of verifying one program.
type Verdict struct {
	ID string

	// Pre/Post execution results for the good and bad entry points.
	PreGood, PreBad   *cinterp.Result
	PostGood, PostBad *cinterp.Result

	// SLRSites / SLRApplied count candidate and transformed call sites.
	SLRSites, SLRApplied int
	// STRVars / STRApplied count candidate and replaced variables.
	STRVars, STRApplied int

	// VulnDetected: the untransformed bad function produced at least one
	// memory-safety violation (sanity check on the benchmark program).
	VulnDetected bool
	// Fixed: the transformed bad function produced no violations.
	Fixed bool
	// Preserved: the transformed good function produced no violations and
	// byte-identical output to the original good function.
	Preserved bool

	// TransformedSource is the final program text (after SLR then STR).
	TransformedSource string

	// Degraded lists the analyses the transformation pipeline had to cut
	// short (budget exhaustion, skipped stages); empty for a full-fidelity
	// run. Mirrors core.Report.Degraded.
	Degraded []string
}

// Options configures verification.
type Options struct {
	// Stdin lines are re-queued before every run.
	Stdin []string
	// Limits bound each execution.
	Limits cinterp.Limits
	// SkipSLR / SkipSTR disable one transformation (for ablations).
	SkipSLR bool
	SkipSTR bool
	// Backend names the repair dialect SLR rewrites into ("" = glib).
	// The checked interpreter models every registered dialect's safe
	// functions, so verification runs the same protocol regardless.
	Backend string
	// Tracer, when non-nil, records the transformation pipeline's stage
	// spans (the experiment harness feeds them into Table III's
	// per-stage breakdown). The verification executions are not traced;
	// only Transform's core.Fix is.
	Tracer *obs.Tracer
}

// Verify runs the full protocol. goodEntry and badEntry name the two
// functions to execute.
func Verify(id, source, goodEntry, badEntry string, opts Options) (*Verdict, error) {
	v := &Verdict{ID: id}

	var err error
	v.PreGood, err = runOne(id+" (pre,good)", source, goodEntry, opts)
	if err != nil {
		return nil, err
	}
	v.PreBad, err = runOne(id+" (pre,bad)", source, badEntry, opts)
	if err != nil {
		return nil, err
	}
	v.VulnDetected = v.PreBad.HasViolations()

	transformed, err := Transform(id, source, opts, v)
	if err != nil {
		return nil, err
	}
	v.TransformedSource = transformed

	runSource := transformed
	if needsStralloc(transformed) {
		runSource = stralloc.FullSource() + "\n" + transformed
	}
	v.PostGood, err = runOne(id+" (post,good)", runSource, goodEntry, opts)
	if err != nil {
		return nil, fmt.Errorf("harness: post-transform good run: %w", err)
	}
	v.PostBad, err = runOne(id+" (post,bad)", runSource, badEntry, opts)
	if err != nil {
		return nil, fmt.Errorf("harness: post-transform bad run: %w", err)
	}

	v.Fixed = !v.PostBad.HasViolations()
	v.Preserved = !v.PostGood.HasViolations() && v.PostGood.Stdout == v.PreGood.Stdout
	return v, nil
}

// Transform applies SLR then STR in batch mode through the pipeline's
// composition root (core.Fix), recording counts and degradations in v
// (which may be nil). Running through core.Fix means the harness
// exercises the exact code path users get — fault boundary included —
// and the equivalence suite pins both to identical decisions.
func Transform(id, source string, opts Options, v *Verdict) (string, error) {
	rep, err := core.Fix(context.Background(), id+".c", source, core.Options{
		DisableSLR:   opts.SkipSLR,
		DisableSTR:   opts.SkipSTR,
		SelectOffset: -1,
		Backend:      opts.Backend,
		Tracer:       opts.Tracer,
	})
	if err != nil {
		return "", fmt.Errorf("harness: transform: %w", err)
	}
	if v != nil {
		if rep.SLR != nil {
			v.SLRSites = rep.SLR.Candidates()
			v.SLRApplied = rep.SLR.AppliedCount()
		}
		if rep.STR != nil {
			v.STRVars = rep.STR.Candidates()
			v.STRApplied = rep.STR.AppliedCount()
		}
		v.Degraded = append(v.Degraded, rep.Degraded...)
	}
	return rep.Source, nil
}

// needsStralloc detects STR output (the emitted type name).
func needsStralloc(src string) bool {
	return containsWord(src, "stralloc")
}

func containsWord(s, w string) bool {
	for i := 0; i+len(w) <= len(s); i++ {
		if s[i:i+len(w)] == w {
			return true
		}
	}
	return false
}

// runOne parses, checks and executes one entry point.
func runOne(label, source, entry string, opts Options) (*cinterp.Result, error) {
	unit, err := cparse.Parse(label+".c", source)
	if err != nil {
		return nil, fmt.Errorf("harness: parse %s: %w", label, err)
	}
	typecheck.Check(unit)
	in, err := cinterp.New(unit, opts.Limits)
	if err != nil {
		return nil, fmt.Errorf("harness: init %s: %w", label, err)
	}
	in.SetStdin(opts.Stdin)
	res, err := in.Run(entry)
	if err != nil {
		return nil, fmt.Errorf("harness: run %s: %w", label, err)
	}
	return res, nil
}
