package overflow

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/ctoken"
)

// solves counts interval/range fixpoint solves package-wide, the
// incremental layer's analogue of cparse.Parses: equivalence tests read
// it to prove that a memo-backed re-analysis did not re-derive facts for
// untouched functions.
var solves int64

// Solves returns the number of per-function fixpoint solves this package
// has run since process start.
func Solves() int64 { return atomic.LoadInt64(&solves) }

func countSolve() { atomic.AddInt64(&solves, 1) }

// Memo carries oracle results across runs of the same evolving
// translation unit — the incremental session's per-function fact store.
// Entries are keyed by dependency hashes (internal/analysis computes
// them: the function's comment-masked token text, the declarations it
// references, its alias environment, and its transitive callees), so a
// key can only match when every input that could change the function's
// findings is unchanged.
//
// Two levels mirror the oracle's two passes:
//
//   - pass 1 (one entry per function, empty seed): the findings of
//     solve(fn, nil) + check;
//   - pass 2 (one entry per interprocedural context subtree): the
//     findings of propagate(fn, seed, chain, depth) — fn's own findings
//     under the seed plus everything the recursion below it produced.
//
// A pass-2 hit therefore skips an entire propagation subtree. Seeds are
// serialized by callee parameter position, not symbol ID, because IDs
// are dense per-parse and do not survive a re-parse.
//
// Extents in stored findings are kept in CURRENT source coordinates: the
// session calls Remap with each applied edit's offset mapper, so entries
// for untouched functions stay byte-accurate while entries for edited
// functions miss on hash and age out. Pos (line/column) is always
// recomputed at load time against the live file.
//
// Budgeted runs (Limits.Steps or Limits.Contexts non-zero) bypass the
// memo entirely: degradation bookkeeping depends on visit order and
// cannot be reproduced from retained results.
//
// A Memo is not safe for concurrent use; the session serializes edits.
type Memo struct {
	entries map[string]*memoEntry
	gen     int64 // bumped by BeginRun; entries untouched for two runs are pruned
	hits    int64
	misses  int64
}

type memoEntry struct {
	findings []Finding
	gen      int64
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	return &Memo{entries: make(map[string]*memoEntry)}
}

// BeginRun starts a new analysis run: hit/miss accounting restarts and
// entries not used for two consecutive runs are pruned, keeping the memo
// at working-set size.
func (m *Memo) BeginRun() {
	if m == nil {
		return
	}
	m.gen++
	m.hits, m.misses = 0, 0
	for k, e := range m.entries {
		if m.gen-e.gen > 2 {
			delete(m.entries, k)
		}
	}
}

// Hits returns the number of memo hits since BeginRun.
func (m *Memo) Hits() int64 {
	if m == nil {
		return 0
	}
	return m.hits
}

// Misses returns the number of memo misses since BeginRun.
func (m *Memo) Misses() int64 {
	if m == nil {
		return 0
	}
	return m.misses
}

// Len returns the number of retained entries.
func (m *Memo) Len() int {
	if m == nil {
		return 0
	}
	return len(m.entries)
}

// Load returns the retained findings for key. The returned slice is a
// fresh copy with Pos recomputed against file.
func (m *Memo) Load(key string, file *ctoken.File) ([]Finding, bool) {
	e, ok := m.entries[key]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	e.gen = m.gen
	out := make([]Finding, len(e.findings))
	copy(out, e.findings)
	for i := range out {
		if file != nil {
			out[i].Pos = file.Position(out[i].Extent.Pos)
		}
		// Contexts is shared storage; callers of Analyze receive the
		// dedup'd copy, which unions Contexts in place.
		out[i].Contexts = append([]string(nil), out[i].Contexts...)
	}
	return out, true
}

// Store retains findings under key. The findings are copied.
func (m *Memo) Store(key string, findings []Finding) {
	cp := make([]Finding, len(findings))
	copy(cp, findings)
	for i := range cp {
		cp[i].Contexts = append([]string(nil), cp[i].Contexts...)
	}
	m.entries[key] = &memoEntry{findings: cp, gen: m.gen}
}

// Remap shifts every stored extent through an edit's offset mapping
// (old position -> new position, with an exactness bit as returned by
// edit.Mapper.MapExtent). The session calls this once per applied edit
// script, before the next analysis.
//
// Entries containing an extent the edit landed inside (inexact remap)
// are dropped rather than kept approximately: only rigidly-shifted
// extents are provably byte-identical to what a fresh parse of the new
// text yields. A comment inserted inside a finding's call expression
// leaves the function's dependency hash unchanged — comments are masked
// out — yet the fresh finding's extent grows to cover the comment,
// which no position arithmetic on the old extent can reproduce in
// general. Dropping costs one re-derivation of that function; keeping
// would cost equivalence.
func (m *Memo) Remap(mapExtent func(ctoken.Extent) (ctoken.Extent, bool)) {
	if m == nil {
		return
	}
	for k, e := range m.entries {
		exactAll := true
		for i := range e.findings {
			ne, exact := mapExtent(e.findings[i].Extent)
			if !exact {
				exactAll = false
				break
			}
			e.findings[i].Extent = ne
		}
		if !exactAll {
			delete(m.entries, k)
		}
	}
}

// Pass1Key builds the memo key for a function's empty-seed analysis.
func Pass1Key(oracle, optsSig, fnName, hash string) string {
	return oracle + "\x001\x00" + optsSig + "\x00" + fnName + "\x00" + hash
}

// Pass2Key builds the memo key for an interprocedural context subtree.
func Pass2Key(oracle, optsSig, hash string, chain []string, seed string, depth int) string {
	return oracle + "\x002\x00" + optsSig + "\x00" + hash + "\x00" +
		strings.Join(chain, "\x01") + "\x00" + seed + "\x00" + fmt.Sprint(depth)
}

// StableSeedKey serializes a per-parameter seed by parameter position so
// the key survives re-parses (symbol IDs do not). paramIndex maps the
// current parse's parameter symbol IDs to their positions; values must
// already be rendered deterministically by the caller.
func StableSeedKey(paramIndex map[int]int, values map[int]string) string {
	if len(values) == 0 {
		return ""
	}
	type kv struct {
		pos int
		val string
	}
	pairs := make([]kv, 0, len(values))
	for id, v := range values {
		pos, ok := paramIndex[id]
		if !ok {
			// A non-parameter symbol in a seed has no stable identity;
			// refuse to produce a reusable key.
			return "\x00unstable\x00" + fmt.Sprint(id)
		}
		pairs = append(pairs, kv{pos, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].pos < pairs[j].pos })
	var sb strings.Builder
	for _, p := range pairs {
		fmt.Fprintf(&sb, "%d=%s;", p.pos, p.val)
	}
	return sb.String()
}
