package core

import (
	"repro/internal/analysis"
	"repro/internal/overflow"
)

// FileInput names one preprocessed C translation unit for batch
// processing.
type FileInput struct {
	// Filename is used in diagnostics and carried through to the output.
	Filename string
	// Source is the unit's text.
	Source string
}

// FileOutput pairs one batch input with its fix outcome. Exactly one of
// Report and Err is set.
type FileOutput struct {
	Filename string
	Report   *Report
	Err      error
}

// FileFindings pairs one batch input with its lint outcome.
type FileFindings struct {
	Filename string
	Findings []overflow.Finding
	Err      error
}

// FixAll applies Fix to every input through a bounded worker pool — the
// parse-once, analyze-once, fix-many pipeline. Each file is processed
// independently (its own snapshot), so per-file results are identical to
// sequential Fix calls. workers <= 0 means one worker per CPU. Results
// come back in input order regardless of completion order.
func FixAll(files []FileInput, opts Options, workers int) []FileOutput {
	return analysis.Map(workers, files, func(_ int, in FileInput) FileOutput {
		rep, err := Fix(in.Filename, in.Source, opts)
		return FileOutput{Filename: in.Filename, Report: rep, Err: err}
	})
}

// AnalyzeAll runs the static overflow oracle over every input through the
// same bounded worker pool. workers <= 0 means one worker per CPU.
// Results come back in input order.
func AnalyzeAll(files []FileInput, workers int) []FileFindings {
	return analysis.Map(workers, files, func(_ int, in FileInput) FileFindings {
		fs, err := Analyze(in.Filename, in.Source)
		return FileFindings{Filename: in.Filename, Findings: fs, Err: err}
	})
}
