// Package dataflow provides a generic worklist dataflow solver and the
// reaching-definitions analysis the paper's Algorithm 1 depends on
// (Section III-A: "Reaching definition and control and data dependence
// analysis algorithms follow traditional worklist based algorithms").
package dataflow

import "math/bits"

// BitSet is a fixed-capacity bit vector used as the dataflow lattice
// element. The zero value of a BitSet created with NewBitSet(n) is the
// empty set.
type BitSet []uint64

// NewBitSet returns an empty set with capacity for n elements.
func NewBitSet(n int) BitSet {
	return make(BitSet, (n+63)/64)
}

// Set adds i to the set.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// SetFirstN adds every element in [0, n) to the set. n must not exceed
// the capacity the set was created with; slack bits in the last word
// stay clear so ForEach never yields an out-of-range element.
func (b BitSet) SetFirstN(n int) {
	full := n / 64
	for i := 0; i < full; i++ {
		b[i] = ^uint64(0)
	}
	if rem := uint(n % 64); rem != 0 {
		b[full] |= (uint64(1) << rem) - 1
	}
}

// Clear removes i from the set.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Has reports whether i is in the set.
func (b BitSet) Has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// UnionWith adds all elements of other to b, reporting whether b changed.
func (b BitSet) UnionWith(other BitSet) bool {
	changed := false
	for i := range b {
		old := b[i]
		b[i] |= other[i]
		if b[i] != old {
			changed = true
		}
	}
	return changed
}

// IntersectWith removes from b every element not in other, reporting
// whether b changed.
func (b BitSet) IntersectWith(other BitSet) bool {
	changed := false
	for i := range b {
		old := b[i]
		b[i] &= other[i]
		if b[i] != old {
			changed = true
		}
	}
	return changed
}

// DiffWith removes all elements of other from b.
func (b BitSet) DiffWith(other BitSet) {
	for i := range b {
		b[i] &^= other[i]
	}
}

// CopyFrom overwrites b with other.
func (b BitSet) CopyFrom(other BitSet) {
	copy(b, other)
}

// Equal reports set equality.
func (b BitSet) Equal(other BitSet) bool {
	if len(b) != len(other) {
		return false
	}
	for i := range b {
		if b[i] != other[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b BitSet) Clone() BitSet {
	out := make(BitSet, len(b))
	copy(out, b)
	return out
}

// Count returns the number of elements in the set.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f for every element in ascending order.
func (b BitSet) ForEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			f(wi*64 + bit)
			w &= w - 1
		}
	}
}
