// Package server implements cfixd's HTTP/JSON API: the long-running
// fix/lint service layered directly on the ctx-first pipeline
// (core.Fix / core.Analyze via pkg/cfix) and the bounded worker pool,
// with content-addressed result caching, admission control, per-request
// deadlines and solver budgets, and expvar-style metrics.
//
// Endpoints:
//
//	POST /v1/fix    transform one translation unit (cfix.FixRequest ->
//	                cfix.FixResponse; Source is byte-identical to a
//	                one-shot `cfix` run on the same input/options)
//	POST /v1/lint   statically diagnose one unit without transforming it
//	POST /v1/batch  process many units through the worker pool in one
//	                request; per-file fault containment, input order
//	POST /v1/project  process a whole project (sources inline): built-in
//	                preprocessing, cross-file seeding, repairs remapped
//	                into the original (pre-expansion) text
//	GET  /healthz   liveness (never queued behind analysis work)
//	GET  /metrics   counters: requests, cache hits/misses/evictions,
//	                degradations, panics recovered, in-flight, latency
//	                histogram
//
// Failure model: a panic inside a request's pipeline is contained by the
// per-file fault boundary and surfaces here as a *fault.PanicError — the
// daemon answers 500, logs the recovered stack, and keeps serving. A
// request that exceeds its deadline answers 504. Overload answers 429
// with Retry-After so load balancers shed instead of queueing. Oversized
// bodies answer 413 before any parsing happens.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/pkg/cfix"
)

// Config tunes the service; the zero value serves with sane defaults.
type Config struct {
	// Cache, when non-nil, answers repeated identical requests without
	// re-running the pipeline and collapses concurrent identical
	// requests into one computation.
	Cache *cfix.ResultCache
	// MaxInFlight bounds concurrently admitted analysis requests (fix,
	// lint, batch); further requests are rejected with 429 + Retry-After
	// instead of queueing unboundedly. <= 0 means 2 per CPU.
	MaxInFlight int
	// MaxRequestBytes caps a request body; larger bodies answer 413.
	// <= 0 means 16 MiB.
	MaxRequestBytes int64
	// DefaultTimeout applies when a request does not set one;
	// MaxTimeout clamps what a request may ask for. <= 0 means 30s and
	// 2m respectively.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Budget is the per-request solver budget applied when the request
	// does not set one; 0 means unlimited (the deadline still bounds
	// wall clock).
	Budget int
	// Backend is the repair dialect applied when a request names none
	// ("glib", "bsd", or "c11k"; empty means glib). Requests may still
	// select any registered backend explicitly; unknown names in either
	// place answer 400.
	Backend string
	// Workers bounds the batch endpoint's worker pool; <= 0 means one
	// per CPU.
	Workers int
	// MaxSessions bounds the incremental-session table (/v1/session/*);
	// opens beyond it answer 429 until a session closes. <= 0 means 64.
	MaxSessions int
	// SlowThreshold, when positive, logs every analysis request slower
	// than this with a per-stage time breakdown (cfixd -slow-threshold).
	SlowThreshold time.Duration
	// Log receives request errors and recovered panic stacks; nil means
	// the process default logger.
	Log *log.Logger
}

// withDefaults fills the zero values.
func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.NumCPU()
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 16 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 2 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.Log == nil {
		c.Log = log.Default()
	}
	return c
}

// Server is the cfixd request handler. Create with New, mount with
// Handler, drain with BeginDrain + http.Server.Shutdown.
type Server struct {
	conf     Config
	gate     *Gate
	m        metrics
	mux      *http.ServeMux
	sessions *sessionRegistry
	draining atomic.Bool
}

// New builds a server from the configuration.
func New(conf Config) *Server {
	conf = conf.withDefaults()
	s := &Server{
		conf:     conf,
		gate:     NewGate(conf.MaxInFlight),
		m:        metrics{start: time.Now()},
		mux:      http.NewServeMux(),
		sessions: newSessionRegistry(conf.MaxSessions),
	}
	s.mux.HandleFunc("POST /v1/fix", s.handleFix)
	s.mux.HandleFunc("POST /v1/lint", s.handleLint)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/project", s.handleProject)
	s.mux.HandleFunc("POST /v1/session/open", s.handleSessionOpen)
	s.mux.HandleFunc("POST /v1/session/edit", s.handleSessionEdit)
	s.mux.HandleFunc("POST /v1/session/close", s.handleSessionClose)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// BeginDrain flips /readyz to 503 so routing tiers eject this backend
// before its listener closes. Call it when graceful shutdown starts,
// then (optionally after a propagation grace) http.Server.Shutdown.
// Liveness (/healthz) and in-flight work are unaffected; idempotent.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the mounted API wrapped in the last-resort panic
// containment: a crash that somehow escapes the per-file fault boundary
// still answers 500 and keeps the daemon alive.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				err := fault.NewPanicError(rec)
				s.m.panics.Add(1)
				s.conf.Log.Printf("cfixd: panic escaped request handler %s: %v", r.URL.Path, err)
				s.writeError(w, http.StatusInternalServerError, "internal error (panic recovered)")
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Metrics returns a snapshot of the daemon's counters (the /metrics
// payload), for embedding and tests.
func (s *Server) Metrics() Snapshot {
	return s.m.snapshot(s.conf.Cache, s.gate, s.sessions, s.draining.Load())
}

// admit applies admission control: it claims one in-flight slot or
// answers 429 + Retry-After. The returned release must be deferred by
// the caller when ok.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	release, ok = s.gate.Acquire()
	if !ok {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("over capacity: %d requests in flight", s.conf.MaxInFlight))
	}
	return release, ok
}

// decode reads one JSON request body under the size cap. On failure it
// has already written the response and returns false.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.conf.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		s.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// effectiveOptions applies the server's deadline clamp, default budget,
// default backend, and cache to the request's options. Call
// resolveBackend first: by this point the backend name is known valid.
func (s *Server) effectiveOptions(ro cfix.RequestOptions) cfix.Options {
	opts := ro.ToOptions()
	switch {
	case opts.Timeout <= 0:
		opts.Timeout = s.conf.DefaultTimeout
	case opts.Timeout > s.conf.MaxTimeout:
		opts.Timeout = s.conf.MaxTimeout
	}
	if opts.Budget == 0 {
		opts.Budget = s.conf.Budget
	}
	if opts.Backend == "" {
		opts.Backend = s.conf.Backend
	}
	opts.Cache = s.conf.Cache
	return opts
}

// resolveBackend validates the request's backend selection against the
// registry, falling back to the server default for an empty name. An
// unknown name is the client's mistake: answer 400 before any parsing
// or solving happens, naming the valid set. The canonical name feeds
// the per-backend request counter.
func (s *Server) resolveBackend(w http.ResponseWriter, requested string) (string, bool) {
	name := requested
	if name == "" {
		name = s.conf.Backend
	}
	canon, err := cfix.CanonicalBackend(name)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err.Error())
		return "", false
	}
	return canon, true
}

// requestFilename defaults the diagnostic filename.
func requestFilename(name string) string {
	if name == "" {
		return "input.c"
	}
	return name
}

func (s *Server) handleFix(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	filename := "(undecoded)"
	tr := cfix.NewTracer()
	defer func(start time.Time) {
		s.observeRequest("/v1/fix", filename, tr, time.Since(start))
	}(time.Now())
	s.m.fixRequests.Add(1)

	var req cfix.FixRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "missing source")
		return
	}
	filename = requestFilename(req.Filename)
	be, ok := s.resolveBackend(w, req.Options.Backend)
	if !ok {
		return
	}
	s.m.observeBackend(be)
	opts := s.effectiveOptions(req.Options)
	opts.Backend = be
	opts.Tracer = tr
	rep, err := cfix.FixContext(r.Context(), filename, req.Source, opts)
	if err != nil {
		s.failRequest(w, filename, err)
		return
	}
	if len(rep.Degraded) > 0 {
		s.m.degraded.Add(1)
	}
	s.m.observeFindings(rep.Findings)
	s.writeJSON(w, http.StatusOK, cfix.NewFixResponse(filename, rep))
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	filename := "(undecoded)"
	tr := cfix.NewTracer()
	defer func(start time.Time) {
		s.observeRequest("/v1/lint", filename, tr, time.Since(start))
	}(time.Now())
	s.m.lintRequests.Add(1)

	var req cfix.LintRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Source == "" {
		s.writeError(w, http.StatusBadRequest, "missing source")
		return
	}
	filename = requestFilename(req.Filename)
	// Lint never rewrites, but an unknown backend is still the client's
	// mistake — reject it the same way the fix path does.
	be, ok := s.resolveBackend(w, req.Options.Backend)
	if !ok {
		return
	}
	opts := s.effectiveOptions(req.Options)
	opts.Backend = be
	opts.Tracer = tr
	rep, err := cfix.AnalyzeReport(r.Context(), filename, req.Source, opts)
	if err != nil {
		s.failRequest(w, filename, err)
		return
	}
	if len(rep.Degraded) > 0 {
		s.m.degraded.Add(1)
	}
	s.m.observeFindings(rep.Findings)
	s.writeJSON(w, http.StatusOK, cfix.NewLintResponse(filename, rep))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	label := "(undecoded)"
	tr := cfix.NewTracer()
	defer func(start time.Time) {
		s.observeRequest("/v1/batch", label, tr, time.Since(start))
	}(time.Now())
	s.m.batchRequests.Add(1)

	var req cfix.BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Files) == 0 {
		s.writeError(w, http.StatusBadRequest, "missing files")
		return
	}
	label = fmt.Sprintf("%d files", len(req.Files))
	be, ok := s.resolveBackend(w, req.Options.Backend)
	if !ok {
		return
	}
	if !req.Lint {
		s.m.observeBackend(be)
	}
	s.m.batchFiles.Add(int64(len(req.Files)))
	inputs := make([]cfix.FileInput, len(req.Files))
	for i, f := range req.Files {
		inputs[i] = cfix.FileInput{Filename: requestFilename(f.Filename), Source: f.Source}
	}
	opts := s.effectiveOptions(req.Options)
	opts.Backend = be
	opts.Tracer = tr
	resp := cfix.BatchResponse{Results: make([]cfix.BatchResult, len(inputs))}
	if req.Lint {
		outs := cfix.AnalyzeAllContext(r.Context(), inputs, opts, s.conf.Workers)
		for i, out := range outs {
			resp.Results[i] = s.batchResult(out.Filename, out.Err, func() cfix.BatchResult {
				lr := cfix.NewLintResponse(out.Filename,
					&cfix.LintReport{Findings: out.Findings, Degraded: out.Degraded, Cached: out.Cached})
				return cfix.BatchResult{Filename: out.Filename, Lint: &lr}
			})
			if len(out.Degraded) > 0 {
				s.m.degraded.Add(1)
			}
			s.m.observeFindings(out.Findings)
		}
	} else {
		outs := cfix.FixAllContext(r.Context(), inputs, opts, s.conf.Workers)
		for i, out := range outs {
			resp.Results[i] = s.batchResult(out.Filename, out.Err, func() cfix.BatchResult {
				fr := cfix.NewFixResponse(out.Filename, out.Report)
				return cfix.BatchResult{Filename: out.Filename, Fix: &fr}
			})
			if out.Report != nil && len(out.Report.Degraded) > 0 {
				s.m.degraded.Add(1)
			}
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleProject processes a whole project shipped inline: every unit is
// preprocessed by the built-in preprocessor, cross-file call facts are
// linked, and fixes land in the original (pre-expansion) text. Per-file
// failures are contained in the response; the endpoint only 4xx/5xxes
// for malformed requests and whole-project faults.
func (s *Server) handleProject(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	label := "(undecoded)"
	tr := cfix.NewTracer()
	defer func(start time.Time) {
		s.observeRequest("/v1/project", label, tr, time.Since(start))
	}(time.Now())
	s.m.projectRequests.Add(1)

	var req cfix.ProjectRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Files) == 0 {
		s.writeError(w, http.StatusBadRequest, "missing files")
		return
	}
	label = fmt.Sprintf("%d units", len(req.Files))
	be, ok := s.resolveBackend(w, req.Options.Backend)
	if !ok {
		return
	}
	if !req.LintOnly {
		s.m.observeBackend(be)
	}
	s.m.projectFiles.Add(int64(len(req.Files)))
	opts := s.effectiveOptions(req.Options)
	opts.Backend = be
	opts.Tracer = tr
	var rep *cfix.ProjectReport
	var err error
	if req.LintOnly {
		rep, err = cfix.AnalyzeProjectInMemory(r.Context(), req.Files, req.Headers, opts)
	} else {
		rep, err = cfix.FixProjectInMemory(r.Context(), req.Files, req.Headers, opts)
	}
	if err != nil {
		s.failRequest(w, label, err)
		return
	}
	for _, out := range rep.Files {
		switch {
		case out.Lint != nil:
			if len(out.Lint.Degraded) > 0 {
				s.m.degraded.Add(1)
			}
			s.m.observeFindings(out.Lint.Findings)
		case out.Fix != nil:
			if len(out.Fix.Degraded) > 0 {
				s.m.degraded.Add(1)
			}
			s.m.observeFindings(out.Fix.Findings)
		}
	}
	s.writeJSON(w, http.StatusOK, cfix.NewProjectResponse(rep))
}

// observeRequest folds one finished analysis request into the metrics:
// the request-level latency histogram, one per-stage histogram entry per
// recorded span, and — when the request ran longer than SlowThreshold —
// a slow-request log line with the per-stage breakdown. It runs in the
// handlers' deferred paths, so stage spans land in /metrics even when
// the request panicked or failed midway.
func (s *Server) observeRequest(endpoint, label string, tr *cfix.Tracer, elapsed time.Duration) {
	s.m.latency.Observe(elapsed)
	for _, sp := range tr.Spans() {
		s.m.observeStage(sp.Name, sp.Dur, sp.Degraded())
	}
	if thr := s.conf.SlowThreshold; thr > 0 && elapsed >= thr {
		s.conf.Log.Printf("cfixd: slow request %s %s took %s (threshold %s); stages: %s",
			endpoint, label, elapsed.Round(time.Microsecond), thr, slowBreakdown(tr.StageStats()))
	}
}

// slowBreakdown renders the dominant stages of a slow request compactly:
// "slr 12ms/1, pointsto 8ms/2, ..." (self time / span count), largest
// self time first, capped at five stages.
func slowBreakdown(stats []cfix.StageStat) string {
	if len(stats) == 0 {
		return "(no spans recorded)"
	}
	const maxStages = 5
	parts := make([]string, 0, maxStages+1)
	for i, st := range stats {
		if i == maxStages {
			parts = append(parts, fmt.Sprintf("+%d more", len(stats)-maxStages))
			break
		}
		parts = append(parts, fmt.Sprintf("%s %s/%d", st.Name, st.Self.Round(time.Microsecond), st.Count))
	}
	return strings.Join(parts, ", ")
}

// batchResult folds one per-file outcome: a contained failure becomes
// the file's Error field (panics logged and counted), a success is
// rendered by render.
func (s *Server) batchResult(filename string, err error, render func() cfix.BatchResult) cfix.BatchResult {
	if err == nil {
		return render()
	}
	var pe *fault.PanicError
	if errors.As(err, &pe) {
		s.m.panics.Add(1)
		s.conf.Log.Printf("cfixd: panic contained in batch file %s: %v", filename, pe)
		return cfix.BatchResult{Filename: filename, Error: "panic contained: " + firstLine(pe.Error())}
	}
	return cfix.BatchResult{Filename: filename, Error: err.Error()}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.m.healthRequests.Add(1)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.m.start).Seconds(),
	})
}

// handleReadyz is the routing tier's probe target: distinct from
// liveness, it answers 503 as soon as drain begins so a router ejects a
// draining backend before its listener closes — no request races the
// shutdown. A 503 here is not an error (the process is healthy, just
// leaving the pool), so it is not counted against serverErrors.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.m.readyRequests.Add(1)
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Metrics())
}

// failRequest maps a pipeline error to a response: contained panics are
// 500s with the stack logged (never echoed to the client), deadline
// expiry is 504, client disconnection 499-style 503, anything else —
// parse errors, unsupported constructs — is the client's 422.
func (s *Server) failRequest(w http.ResponseWriter, filename string, err error) {
	var pe *fault.PanicError
	switch {
	case errors.As(err, &pe):
		s.m.panics.Add(1)
		s.conf.Log.Printf("cfixd: panic recovered processing %s: %v", filename, pe)
		s.writeError(w, http.StatusInternalServerError, "internal error (panic recovered)")
	case errors.Is(err, context.DeadlineExceeded):
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		s.writeError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		s.writeError(w, http.StatusUnprocessableEntity, firstLine(err.Error()))
	}
}

// writeJSON writes one JSON response.
func (s *Server) writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		s.conf.Log.Printf("cfixd: writing response: %v", err)
	}
}

// writeError writes the uniform error shape and counts it.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	switch {
	case status >= 500:
		s.m.serverErrors.Add(1)
	case status >= 400 && status != http.StatusTooManyRequests:
		s.m.clientErrors.Add(1)
	}
	s.writeJSON(w, status, map[string]string{"error": msg})
}

// firstLine truncates multi-line error text (panic stacks) for client
// consumption; the full text goes to the log.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
