package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/overflow"
)

// TestFixAllPanicIsolation checks the batch pipeline's fault boundary:
// a panic inside one file's unit of work must surface as that file's
// error — carrying the stack — while the other files come out intact.
func TestFixAllPanicIsolation(t *testing.T) {
	const n = 10
	files := make([]FileInput, n)
	for i := range files {
		files[i] = FileInput{Filename: fmt.Sprintf("f%d.c", i), Source: sample}
	}
	defer analysis.InjectFault("f3.c", analysis.Fault{Panic: true})()

	want, err := Fix(context.Background(), "clean.c", sample, Options{SelectOffset: -1})
	if err != nil {
		t.Fatalf("clean Fix: %v", err)
	}

	outs := FixAll(context.Background(), files, Options{SelectOffset: -1}, 4)
	if len(outs) != n {
		t.Fatalf("got %d outputs, want %d", len(outs), n)
	}
	for i, out := range outs {
		if i == 3 {
			var pe *fault.PanicError
			if !errors.As(out.Err, &pe) {
				t.Fatalf("f3.c: got err %v, want *fault.PanicError", out.Err)
			}
			if !strings.Contains(pe.Error(), "injected fault: f3.c") {
				t.Errorf("panic error does not name the injected fault: %q", pe.Error())
			}
			if !strings.Contains(pe.Error(), "goroutine") {
				t.Errorf("panic error carries no stack: %q", pe.Error())
			}
			continue
		}
		if out.Err != nil {
			t.Fatalf("%s: unexpected error: %v", out.Filename, out.Err)
		}
		if out.Report.Source != want.Source {
			t.Errorf("%s: output differs from an uninjected run", out.Filename)
		}
	}
}

// TestFixTimeoutCutsStall checks that Options.Timeout interrupts a
// stalled unit of work with the context's error instead of hanging.
func TestFixTimeoutCutsStall(t *testing.T) {
	defer analysis.InjectFault("stall.c", analysis.Fault{Delay: 5 * time.Second})()

	start := time.Now()
	_, err := Fix(context.Background(), "stall.c", sample, Options{
		SelectOffset: -1,
		Timeout:      50 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got err %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout took %v to fire; the stall was not cut", elapsed)
	}
}

// TestFixAllCancellation checks that cancelling the batch context fails
// files fast with the context error instead of processing them.
func TestFixAllCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs := FixAll(ctx, []FileInput{
		{Filename: "a.c", Source: sample},
		{Filename: "b.c", Source: sample},
	}, Options{SelectOffset: -1}, 2)
	for _, out := range outs {
		if !errors.Is(out.Err, context.Canceled) {
			t.Errorf("%s: got err %v, want context.Canceled", out.Filename, out.Err)
		}
	}
}

// TestBudgetExhaustionDegradesNotSilences checks the acceptance property
// of budgets: an exhausted solver budget must produce a conservative
// possible-severity finding and a recorded degradation — never a clean
// report, and never an error.
func TestBudgetExhaustionDegradesNotSilences(t *testing.T) {
	defer analysis.InjectFault("budget.c", analysis.Fault{Budget: 1})()

	rep, err := Fix(context.Background(), "budget.c", overflowing, Options{
		SelectOffset: -1,
		Lint:         true,
		DisableSLR:   true,
		DisableSTR:   true,
	})
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v", err)
	}
	if len(rep.Degraded) == 0 {
		t.Fatal("Report.Degraded is empty after budget exhaustion")
	}
	var incomplete *overflow.Finding
	for i := range rep.Findings {
		if rep.Findings[i].CWE == overflow.CWEIncomplete {
			incomplete = &rep.Findings[i]
		}
	}
	if incomplete == nil {
		t.Fatalf("no CWEIncomplete finding; exhaustion was silent (findings: %v, degraded: %v)",
			rep.Findings, rep.Degraded)
	}
	if incomplete.Severity != overflow.SevPossible {
		t.Errorf("degraded finding severity = %v, want SevPossible", incomplete.Severity)
	}
	if !incomplete.Degraded {
		t.Error("degraded finding does not carry the Degraded flag")
	}
	if sum := rep.Summary(); !strings.Contains(sum, "degraded:") {
		t.Errorf("Summary does not surface the degradation:\n%s", sum)
	}
}

// TestKeepGoingPartialResult checks graceful partial results: when STR
// crashes after SLR succeeded, KeepGoing returns the SLR-only report
// with the failure explained, while the default mode fails the file.
func TestKeepGoingPartialResult(t *testing.T) {
	// Skip: 1 spares the SLR parse and fires on STR's re-parse of the
	// rewritten text.
	defer analysis.InjectFault("partial.c", analysis.Fault{Panic: true, Skip: 1})()

	_, err := Fix(context.Background(), "partial.c", sample, Options{SelectOffset: -1})
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("without KeepGoing: got err %v, want *fault.PanicError", err)
	}

	defer analysis.InjectFault("partial2.c", analysis.Fault{Panic: true, Skip: 1})()
	rep, err := Fix(context.Background(), "partial2.c", sample, Options{
		SelectOffset: -1,
		KeepGoing:    true,
	})
	if err != nil {
		t.Fatalf("with KeepGoing: %v", err)
	}
	if rep.SLR == nil || rep.SLR.AppliedCount() == 0 {
		t.Fatal("with KeepGoing: SLR result missing from the partial report")
	}
	if rep.STR != nil {
		t.Error("with KeepGoing: crashed STR stage left a result on the report")
	}
	found := false
	for _, d := range rep.Degraded {
		if strings.Contains(d, "STR skipped") {
			found = true
		}
	}
	if !found {
		t.Errorf("partial report does not explain the skipped stage: %v", rep.Degraded)
	}
	if !strings.Contains(rep.Source, "g_strlcpy") {
		t.Errorf("partial report lost the SLR rewrite:\n%s", rep.Source)
	}
}

// TestKeepGoingSLRFailure checks the other partial-result path: a crash
// in SLR flows the original text on to STR under KeepGoing.
func TestKeepGoingSLRFailure(t *testing.T) {
	// Skip: 0 fires on the first parse. That parse happens before the
	// SLR stage, so to crash SLR itself we inject a panic into its
	// snapshot consumption via a fresh filename and Skip tuned to the
	// parse count: sample changes under SLR, so Fix parses twice.
	defer analysis.InjectFault("slrfail.c", analysis.Fault{Panic: true})()

	rep, err := Fix(context.Background(), "slrfail.c", sample, Options{
		SelectOffset: -1,
		KeepGoing:    true,
	})
	// The injected panic fires in ParseCtx, before any stage — that is a
	// whole-file failure even under KeepGoing (there is nothing to
	// salvage without a parse).
	if err == nil {
		t.Fatalf("parse-time panic must fail the file; got report %+v", rep)
	}
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got err %v, want *fault.PanicError", err)
	}
}
