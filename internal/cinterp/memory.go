// Package cinterp executes the C subset under a checked memory model.
//
// Every object (global, stack local, heap allocation, string literal)
// carries its exact bounds; every load, store and string operation checks
// them. A violation is recorded with the CWE class the paper's evaluation
// uses (121 stack overflow, 122 heap overflow, 124 underwrite, 126
// overread, 127 underread), the access is clamped, and execution
// continues — so a run yields both the observable output and the complete
// list of memory-safety events. This is the oracle for RQ1/RQ2: a
// transformation "fixes" a program when the bad function's violations
// disappear, and "preserves behavior" when the good function's output is
// unchanged.
package cinterp

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ctoken"
)

// ObjKind classifies memory objects.
type ObjKind int

// Object kinds.
const (
	ObjInvalid ObjKind = iota
	ObjGlobal
	ObjStack
	ObjHeap
	ObjString
)

func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjStack:
		return "stack"
	case ObjHeap:
		return "heap"
	case ObjString:
		return "string literal"
	default:
		return "invalid"
	}
}

// Object is one allocated region.
type Object struct {
	ID       int
	Name     string
	Kind     ObjKind
	Data     []byte
	Dead     bool
	ReadOnly bool
}

// Pointer is a typed address: an object plus a byte offset. Offsets may
// run outside the object (C allows forming them); only access is checked.
type Pointer struct {
	Obj *Object
	Off int64
}

// IsNull reports the null pointer.
func (p Pointer) IsNull() bool { return p.Obj == nil }

// ValueKind tags interpreter values.
type ValueKind int

// Value kinds.
const (
	VInvalid ValueKind = iota
	VInt
	VFloat
	VPtr
)

// Value is a runtime value.
type Value struct {
	K ValueKind
	I int64
	F float64
	P Pointer
}

// IntV makes an integer value.
func IntV(i int64) Value { return Value{K: VInt, I: i} }

// FloatV makes a float value.
func FloatV(f float64) Value { return Value{K: VFloat, F: f} }

// PtrV makes a pointer value.
func PtrV(p Pointer) Value { return Value{K: VPtr, P: p} }

// NullV is the null pointer value.
func NullV() Value { return Value{K: VPtr} }

// AsBool interprets the value as a C truth value.
func (v Value) AsBool() bool {
	switch v.K {
	case VInt:
		return v.I != 0
	case VFloat:
		return v.F != 0
	case VPtr:
		return !v.P.IsNull()
	default:
		return false
	}
}

// AsInt converts to an integer (pointers convert via their handle; used
// only for comparisons and truthiness).
func (v Value) AsInt() int64 {
	switch v.K {
	case VInt:
		return v.I
	case VFloat:
		return int64(v.F)
	default:
		return 0
	}
}

// AsFloat converts to a float.
func (v Value) AsFloat() float64 {
	switch v.K {
	case VFloat:
		return v.F
	case VInt:
		return float64(v.I)
	default:
		return 0
	}
}

// Violation is one detected memory-safety event.
type Violation struct {
	CWE   int
	Write bool
	Pos   ctoken.Position
	Msg   string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s: CWE-%d: %s", v.Pos, v.CWE, v.Msg)
}

// classify maps an out-of-bounds access to the paper's CWE taxonomy.
func classify(obj *Object, off int64, write bool) (int, string) {
	dir := "read"
	if write {
		dir = "write"
	}
	switch {
	case off < 0 && write:
		return 124, fmt.Sprintf("buffer underwrite: %s at offset %d of %s %q", dir, off, obj.Kind, obj.Name)
	case off < 0:
		return 127, fmt.Sprintf("buffer underread: %s at offset %d of %s %q", dir, off, obj.Kind, obj.Name)
	case write && obj.Kind == ObjHeap:
		return 122, fmt.Sprintf("heap buffer overflow: %s at offset %d of %d-byte object %q", dir, off, len(obj.Data), obj.Name)
	case write:
		return 121, fmt.Sprintf("stack buffer overflow: %s at offset %d of %d-byte object %q", dir, off, len(obj.Data), obj.Name)
	default:
		return 126, fmt.Sprintf("buffer overread: %s at offset %d of %d-byte object %q", dir, off, len(obj.Data), obj.Name)
	}
}

// newObject registers a fresh object.
func (in *Interp) newObject(name string, kind ObjKind, size int) *Object {
	if size < 1 {
		size = 1
	}
	o := &Object{ID: len(in.objects), Name: name, Kind: kind, Data: make([]byte, size)}
	in.objects = append(in.objects, o)
	return o
}

// violate records a memory-safety event at the given source extent.
func (in *Interp) violate(obj *Object, off int64, write bool, at ctoken.Extent) {
	cwe, msg := classify(obj, off, write)
	in.events = append(in.events, Violation{
		CWE:   cwe,
		Write: write,
		Pos:   in.unit.File.Position(at.Pos),
		Msg:   msg,
	})
}

// violateUAF records a use-after-free event.
func (in *Interp) violateUAF(obj *Object, write bool, at ctoken.Extent) {
	in.events = append(in.events, Violation{
		CWE:   416,
		Write: write,
		Pos:   in.unit.File.Position(at.Pos),
		Msg:   fmt.Sprintf("use after free of %s %q", obj.Kind, obj.Name),
	})
}

// checkAccess validates an n-byte access; returns false (after recording
// the event) when out of bounds or dead.
func (in *Interp) checkAccess(p Pointer, n int64, write bool, at ctoken.Extent) bool {
	if p.IsNull() {
		in.events = append(in.events, Violation{
			CWE:   476,
			Write: write,
			Pos:   in.unit.File.Position(at.Pos),
			Msg:   "null pointer dereference",
		})
		return false
	}
	if p.Obj.Dead {
		in.violateUAF(p.Obj, write, at)
		return false
	}
	if p.Off < 0 || p.Off+n > int64(len(p.Obj.Data)) {
		in.violate(p.Obj, p.Off, write, at)
		return false
	}
	if write && p.Obj.ReadOnly {
		in.events = append(in.events, Violation{
			CWE:   0,
			Write: true,
			Pos:   in.unit.File.Position(at.Pos),
			Msg:   fmt.Sprintf("write to read-only object %q", p.Obj.Name),
		})
		return false
	}
	return true
}

// loadBytes reads n bytes, returning zeroes on violation.
func (in *Interp) loadBytes(p Pointer, n int64, at ctoken.Extent) []byte {
	if !in.checkAccess(p, n, false, at) {
		return make([]byte, n)
	}
	return p.Obj.Data[p.Off : p.Off+n]
}

// storeBytes writes b, dropping the write on violation.
func (in *Interp) storeBytes(p Pointer, b []byte, at ctoken.Extent) bool {
	if !in.checkAccess(p, int64(len(b)), true, at) {
		return false
	}
	copy(p.Obj.Data[p.Off:], b)
	return true
}

// Pointer handles: pointers stored into memory are interned and encoded as
// 8-byte little-endian handles so that byte-level copies (memcpy, struct
// assignment) transport them faithfully.
const _handleBase = int64(1) << 62

// encodePtr interns a pointer and returns its handle (0 for null).
func (in *Interp) encodePtr(p Pointer) int64 {
	if p.IsNull() && p.Off == 0 {
		return 0
	}
	if h, ok := in.ptrHandles[p]; ok {
		return h
	}
	h := _handleBase + int64(len(in.ptrTable))
	in.ptrHandles[p] = h
	in.ptrTable = append(in.ptrTable, p)
	return h
}

// decodePtr resolves a handle back to a pointer. Non-handle integers
// (e.g. a program storing 0 or an arbitrary int into a pointer) decode to
// null-ish pointers with the raw value preserved as offset.
func (in *Interp) decodePtr(h int64) Pointer {
	if h == 0 {
		return Pointer{}
	}
	idx := h - _handleBase
	if idx >= 0 && idx < int64(len(in.ptrTable)) {
		return in.ptrTable[idx]
	}
	return Pointer{Off: h}
}

// storeScalar writes a scalar value of the given byte size.
func (in *Interp) storeScalar(p Pointer, v Value, size int64, isPtr bool, at ctoken.Extent) {
	var raw int64
	switch {
	case isPtr || v.K == VPtr:
		raw = in.encodePtr(v.P)
		if v.K != VPtr {
			raw = v.I
		}
	case v.K == VFloat:
		if size == 4 {
			raw = int64(float32bits(float32(v.F)))
		} else {
			raw = int64(float64bits(v.F))
		}
	default:
		raw = v.I
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(raw))
	if size > 8 {
		size = 8
	}
	in.storeBytes(p, buf[:size], at)
}

// loadScalar reads a scalar value of the given byte size, sign-extending
// signed integer types.
func (in *Interp) loadScalar(p Pointer, size int64, isPtr, isFloat, signed bool, at ctoken.Extent) Value {
	if size > 8 {
		size = 8
	}
	b := in.loadBytes(p, size, at)
	var buf [8]byte
	copy(buf[:], b)
	raw := int64(binary.LittleEndian.Uint64(buf[:]))
	// Mask to size.
	if size < 8 {
		mask := (int64(1) << (8 * size)) - 1
		raw &= mask
		if signed {
			signBit := int64(1) << (8*size - 1)
			if raw&signBit != 0 {
				raw |= ^mask
			}
		}
	}
	switch {
	case isPtr:
		return PtrV(in.decodePtr(raw))
	case isFloat:
		if size == 4 {
			return FloatV(float64(float32frombits(uint32(raw))))
		}
		return FloatV(float64frombits(uint64(raw)))
	default:
		return IntV(raw)
	}
}
