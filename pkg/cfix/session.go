package cfix

import (
	"context"

	"repro/internal/ctoken"
	"repro/internal/edit"
	"repro/internal/incremental"
)

// SessionDelta is one position-stable edit in a session edit script:
// a half-open byte range [Pos, End) in the session's current text plus
// its replacement. Pos == End inserts, empty Text deletes. Offsets are
// original-text coordinates for every delta in one request — the server
// applies them as a single atomic script, exactly like edit.Script.
type SessionDelta struct {
	Pos  int    `json:"pos"`
	End  int    `json:"end"`
	Text string `json:"text"`
}

// ToDeltas converts wire deltas to the edit package's representation.
func ToDeltas(ds []SessionDelta) []edit.Delta {
	out := make([]edit.Delta, len(ds))
	for i, d := range ds {
		out[i] = edit.Delta{
			Extent: ctoken.Extent{Pos: ctoken.Pos(d.Pos), End: ctoken.Pos(d.End)},
			Text:   d.Text,
		}
	}
	return out
}

// SessionFindingJSON is a finding in a session response: the usual wire
// shape plus the byte extent in the session's current text, which an
// editor needs to place the diagnostic.
type SessionFindingJSON struct {
	FindingJSON
	ExtentPos int `json:"extent_pos"`
	ExtentEnd int `json:"extent_end"`
}

// SessionSiteJSON is one SLR/STR repair candidate in a session
// response. Byte offsets address the session's current text.
type SessionSiteJSON struct {
	// Kind is "slr" or "str".
	Kind string `json:"kind"`
	// Function is the enclosing function.
	Function string `json:"function"`
	// Name is the unsafe callee (SLR) or candidate variable (STR).
	Name string `json:"name"`
	// SafeName is the backend's replacement spelling.
	SafeName string `json:"safe_name"`
	// ExtentPos/ExtentEnd cover the call expression (SLR) or anchor the
	// variable declaration (STR, zero width).
	ExtentPos int `json:"extent_pos"`
	ExtentEnd int `json:"extent_end"`
	// Eligible reports that the transformation's preconditions hold; a
	// fix request at ExtentPos will apply.
	Eligible bool `json:"eligible"`
	// Reason classifies the refused precondition when !Eligible.
	Reason string `json:"reason,omitempty"`
}

// SessionOpenRequest opens an incremental analysis session on one
// translation unit. Only Options.Checks and Options.Backend are
// consulted: sessions always run unbudgeted (the memoized facts must be
// byte-identical to a fresh analysis, which degradation bookkeeping is
// not).
type SessionOpenRequest struct {
	Filename string         `json:"filename,omitempty"`
	Source   string         `json:"source"`
	Options  RequestOptions `json:"options,omitempty"`
}

// SessionEditRequest applies one edit script to an open session.
type SessionEditRequest struct {
	SessionID string         `json:"session_id"`
	Deltas    []SessionDelta `json:"deltas"`
}

// SessionCloseRequest closes an open session.
type SessionCloseRequest struct {
	SessionID string `json:"session_id"`
}

// SessionResponse is the service's answer to a session open or edit:
// the diagnostics and repair sites for the session's current text,
// byte-identical to what /v1/lint and a fresh discovery would produce
// on the same source.
type SessionResponse struct {
	SessionID string `json:"session_id"`
	Filename  string `json:"filename,omitempty"`
	// Findings lists the selected oracles' findings in source order; an
	// explicit empty list means a clean file.
	Findings []SessionFindingJSON `json:"findings"`
	// Sites lists the SLR/STR repair candidates in source order.
	Sites []SessionSiteJSON `json:"sites"`
	// FuncsReanalyzed / FuncsReused break down the incremental work of
	// this request (an open derives everything: reused is 0).
	FuncsReanalyzed int `json:"funcs_reanalyzed"`
	FuncsReused     int `json:"funcs_reused"`
}

// SessionCloseResponse acknowledges a close.
type SessionCloseResponse struct {
	SessionID string `json:"session_id"`
	Closed    bool   `json:"closed"`
}

// NewSessionFindingsJSON renders session findings in the wire shape.
func NewSessionFindingsJSON(fs []Finding) []SessionFindingJSON {
	out := make([]SessionFindingJSON, len(fs))
	for i, f := range fs {
		out[i] = SessionFindingJSON{
			FindingJSON: NewFindingJSON(f),
			ExtentPos:   int(f.Extent.Pos),
			ExtentEnd:   int(f.Extent.End),
		}
	}
	return out
}

// NewSessionSitesJSON renders session repair sites in the wire shape.
func NewSessionSitesJSON(sites []incremental.Site) []SessionSiteJSON {
	out := make([]SessionSiteJSON, len(sites))
	for i, st := range sites {
		out[i] = SessionSiteJSON{
			Kind:      string(st.Kind),
			Function:  st.Function,
			Name:      st.Name,
			SafeName:  st.SafeName,
			ExtentPos: int(st.Extent.Pos),
			ExtentEnd: int(st.Extent.End),
			Eligible:  st.Eligible,
			Reason:    st.Reason,
		}
	}
	return out
}

// SessionOpen opens an incremental session through POST /v1/session/open.
func (c *Client) SessionOpen(ctx context.Context, req SessionOpenRequest) (*SessionResponse, error) {
	var resp SessionResponse
	if err := c.call(ctx, "/v1/session/open", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SessionEdit applies an edit script through POST /v1/session/edit.
func (c *Client) SessionEdit(ctx context.Context, req SessionEditRequest) (*SessionResponse, error) {
	var resp SessionResponse
	if err := c.call(ctx, "/v1/session/edit", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SessionClose releases a session through POST /v1/session/close.
func (c *Client) SessionClose(ctx context.Context, req SessionCloseRequest) (*SessionCloseResponse, error) {
	var resp SessionCloseResponse
	if err := c.call(ctx, "/v1/session/close", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
