package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/fault"
)

// Forward solves a forward may-dataflow problem (union-meet, gen/kill
// transfer) over the CFG with the traditional worklist algorithm the
// paper's Section III-A prescribes. nBits is the fact-universe size;
// gen/kill give each node's transfer function. It returns the IN set of
// every node (indexed by node ID).
func Forward(g *cfg.Graph, nBits int, gen, kill func(nodeID int) BitSet) []BitSet {
	in, _ := ForwardLimits(g, nBits, gen, kill, fault.Limits{})
	return in
}

// ForwardLimits is Forward under fault-containment limits: the context
// in lim is polled at every worklist iteration (cancellation aborts via
// the fault sentinel), and when the step budget is exhausted the solver
// degrades to the conservative top — every fact reaches every node — and
// reports degraded=true. For a may-analysis, all-ones IN sets are always
// a sound (if imprecise) answer.
func ForwardLimits(g *cfg.Graph, nBits int, gen, kill func(nodeID int) BitSet, lim fault.Limits) (in []BitSet, degraded bool) {
	in, degraded, _ = ForwardMetered(g, nBits, gen, kill, lim)
	return in, degraded
}

// ForwardMetered is ForwardLimits exposing the solver effort: steps is
// the number of worklist iterations consumed (fault.Meter's count),
// which the observability layer attaches to the reaching-definitions
// stage span.
func ForwardMetered(g *cfg.Graph, nBits int, gen, kill func(nodeID int) BitSet, lim fault.Limits) (in []BitSet, degraded bool, steps int) {
	n := len(g.Nodes)
	in = make([]BitSet, n)
	out := make([]BitSet, n)
	for i := 0; i < n; i++ {
		in[i] = NewBitSet(nBits)
		out[i] = NewBitSet(nBits)
	}

	work := make([]*cfg.Node, 0, n)
	inWork := make([]bool, n)
	for _, node := range g.Nodes {
		work = append(work, node)
		inWork[node.ID] = true
	}
	meter := lim.NewMeter()
	for len(work) > 0 {
		if !meter.Step() {
			// Budget exhausted: degrade to the conservative top.
			for i := 0; i < n; i++ {
				in[i].SetFirstN(nBits)
			}
			return in, true, meter.Steps()
		}
		node := work[0]
		work = work[1:]
		inWork[node.ID] = false

		for _, p := range node.Preds {
			in[node.ID].UnionWith(out[p.ID])
		}
		newOut := in[node.ID].Clone()
		newOut.DiffWith(kill(node.ID))
		newOut.UnionWith(gen(node.ID))
		if !newOut.Equal(out[node.ID]) {
			out[node.ID].CopyFrom(newOut)
			for _, s := range node.Succs {
				if !inWork[s.ID] {
					work = append(work, s)
					inWork[s.ID] = true
				}
			}
		}
	}
	return in, false, meter.Steps()
}
