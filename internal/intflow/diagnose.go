package intflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/ctoken"
	"repro/internal/ctype"
	"repro/internal/overflow"
)

// Finding re-exports the shared finding type: intflow findings merge
// into the same lint report as the buffer oracle's, so they use the
// same shape (with the Guard field carrying the suggested precondition
// check for CWE-680 allocation sinks).
type Finding = overflow.Finding

// ichecker collects findings during the replay pass over a solved
// function. It is attached to a copy of the iproblem whose transfer
// functions did the solving, so findings come from exactly the
// arithmetic the fixpoint evaluated.
type ichecker struct {
	a     *Analyzer
	fn    *cast.FuncDef
	chain []string
	out   []Finding
}

// reportWrap records a CWE-190 (wraparound past the top of the type) or
// CWE-191 (underflow below its bottom) finding at site.
func (c *ichecker) reportWrap(site cast.Expr, cwe int, definite bool, raw overflow.Interval, t ctype.Type, lo, hi int64, opName, guard string) {
	sev := overflow.SevPossible
	if definite {
		sev = overflow.SevDefinite
	}
	var msg string
	if cwe == 190 {
		msg = fmt.Sprintf("%s result %s exceeds %s maximum %s", opName, raw, typeName(t), boundLit(hi, lo >= 0))
	} else {
		msg = fmt.Sprintf("%s result %s falls below %s minimum %d", opName, raw, typeName(t), lo)
	}
	f := Finding{
		CWE:          cwe,
		Severity:     sev,
		Msg:          msg,
		Guard:        guard,
		SuggestedFix: "compute in a wider type or add the suggested precondition guard",
	}
	c.add(f, site)
}

// report680 records an overflow-to-allocation finding: a possibly
// wrapped value reached an allocation-size sink argument.
func (c *ichecker) report680(call *cast.CallExpr, arg cast.Expr, av ival) {
	sev := overflow.SevPossible
	if av.definite {
		sev = overflow.SevDefinite
	}
	guard := av.guard
	if guard == "" {
		guard = c.fallbackSizeGuard(arg)
	}
	f := Finding{
		CWE:      680,
		Severity: sev,
		Msg: fmt.Sprintf("allocation size %q may have wrapped before reaching %s",
			c.srcText(arg), call.Callee()),
		Guard:        guard,
		SuggestedFix: "guard the size computation against wraparound before allocating",
	}
	if id, ok := cast.Unparen(arg).(*cast.Ident); ok && id.Sym != nil {
		f.Object = id.Sym.Name
	}
	c.add(f, call)
}

func (c *ichecker) add(f Finding, site cast.Expr) {
	f.Function = c.fn.Name
	f.Extent = site.Extent()
	if c.a.unit.File != nil {
		f.Pos = c.a.unit.File.Position(f.Extent.Pos)
	}
	if len(c.chain) > 1 {
		f.Contexts = []string{strings.Join(c.chain, " -> ")}
	}
	c.out = append(c.out, f)
}

// --- suggested precondition guards (IntRepair-style) ------------------------

// guardForBinop renders the precondition check that would prevent the
// wrap at a binary arithmetic site: `if (a > MAX / b)` for products,
// `if (a > MAX - b)` for sums, `if (a < b)` for unsigned differences.
func (c *ichecker) guardForBinop(site cast.Expr, op cast.BinaryOp) string {
	x, ok := site.(*cast.BinaryExpr)
	var ax, bx cast.Expr
	if ok {
		ax, bx = x.X, x.Y
	} else if as, isAssign := site.(*cast.AssignExpr); isAssign {
		ax, bx = as.LHS, as.RHS
	} else {
		return ""
	}
	lo, hi, okB := typeBounds(siteType(site))
	if !okB || hi >= overflow.PosInf {
		return ""
	}
	a, b := c.srcText(ax), c.srcText(bx)
	max := boundLit(hi, lo >= 0)
	switch op {
	case cast.BinaryMul:
		return fmt.Sprintf("if (%s != 0 && %s > %s / %s) { /* multiplication would wrap */ }", b, a, max, b)
	case cast.BinaryAdd:
		return fmt.Sprintf("if (%s > %s - %s) { /* addition would wrap */ }", a, max, b)
	case cast.BinarySub:
		if lo >= 0 {
			return fmt.Sprintf("if (%s < %s) { /* subtraction would wrap below zero */ }", a, b)
		}
		return ""
	case cast.BinaryShl:
		return fmt.Sprintf("if (%s > (%s >> %s)) { /* shift would wrap */ }", a, max, b)
	}
	return ""
}

// guardForConvert renders the range check that would catch a value
// truncated or sign-flipped by a conversion.
func (c *ichecker) guardForConvert(site cast.Expr, raw overflow.Interval, to ctype.Type) string {
	lo, hi, ok := typeBounds(to)
	if !ok {
		return ""
	}
	var operand cast.Expr
	switch x := site.(type) {
	case *cast.CastExpr:
		operand = x.Operand
	case *cast.AssignExpr:
		operand = x.RHS
	case cast.Expr:
		operand = x
	}
	v := c.srcText(operand)
	if v == "" {
		return ""
	}
	switch {
	case hi < overflow.PosInf && raw.Hi > hi:
		return fmt.Sprintf("if (%s > %s) { /* value would be truncated */ }", v, boundLit(hi, lo >= 0))
	case raw.Lo < lo:
		return fmt.Sprintf("if (%s < %d) { /* value would wrap below %d */ }", v, lo, lo)
	}
	return ""
}

// fallbackSizeGuard is the generic guard for a tainted allocation size
// whose wrap site produced no specific check.
func (c *ichecker) fallbackSizeGuard(arg cast.Expr) string {
	v := c.srcText(arg)
	if v == "" {
		return ""
	}
	return fmt.Sprintf("if (%s == 0 || %s > SIZE_MAX / 2) { /* size may have wrapped; recompute in a wider type */ }", v, v)
}

// srcText returns the whitespace-normalized source spelling of e, with
// comments masked out. Masking matters for incremental sessions: the
// dependency hash ignores comments, so a memoized finding survives a
// comment-only edit — quoted spellings must therefore not depend on
// comments either, or the memoized Msg/Guard would differ from a fresh
// run's.
func (c *ichecker) srcText(e cast.Expr) string {
	if e == nil || c.a.unit.File == nil {
		return ""
	}
	masked := clex.MaskComments(c.a.unit.File.Slice(e.Extent()))
	return strings.Join(strings.Fields(masked), " ")
}

// boundLit renders a type's maximum as a C literal (suffixed for the
// unsigned 32-bit maximum so the guard compiles without warnings).
func boundLit(hi int64, unsigned bool) string {
	if unsigned && hi > 2147483647 {
		return fmt.Sprintf("%dU", hi)
	}
	return fmt.Sprintf("%d", hi)
}

func typeName(t ctype.Type) string {
	if t == nil {
		return "integer"
	}
	return ctype.Unqualify(t).String()
}

// --- dedup ------------------------------------------------------------------

// dedup merges findings that name the same extent and CWE, keeping the
// maximum severity, the first non-empty guard, and the union of
// contexts, sorted by position then CWE.
func dedup(all []Finding) []Finding {
	type key struct {
		pos, end ctoken.Pos
		cwe      int
	}
	idx := make(map[key]int)
	var out []Finding
	for _, f := range all {
		k := key{f.Extent.Pos, f.Extent.End, f.CWE}
		if i, ok := idx[k]; ok {
			if f.Severity > out[i].Severity {
				out[i].Severity = f.Severity
				out[i].Msg = f.Msg
			}
			if out[i].Guard == "" {
				out[i].Guard = f.Guard
			}
			for _, ctx := range f.Contexts {
				if !inChain(out[i].Contexts, ctx) {
					out[i].Contexts = append(out[i].Contexts, ctx)
				}
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, f)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Extent.Pos != out[j].Extent.Pos {
			return out[i].Extent.Pos < out[j].Extent.Pos
		}
		return out[i].CWE < out[j].CWE
	})
	return out
}

func inChain(chain []string, name string) bool {
	for _, c := range chain {
		if c == name {
			return true
		}
	}
	return false
}
