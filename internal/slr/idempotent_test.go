package slr

import (
	"testing"

	"repro/internal/cparse"
)

// TestIdempotent: running SLR on already-transformed output changes
// nothing — the safe replacements are not themselves targets.
func TestIdempotent(t *testing.T) {
	first := runAll(t, `
void f(void) {
    char buf[16];
    char msg[32];
    strcpy(buf, "one");
    sprintf(msg, "%d", 5);
    strcat(buf, "two");
}
`)
	if first.AppliedCount() != 3 {
		t.Fatalf("first pass applied %d", first.AppliedCount())
	}
	tu, err := cparse.Parse("t2.c", first.NewSource)
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewTransformer(tu).ApplyAll()
	if err != nil {
		t.Fatal(err)
	}
	if second.Candidates() != 0 {
		t.Fatalf("second pass found %d candidates", second.Candidates())
	}
	if second.NewSource != first.NewSource {
		t.Fatal("second pass must be a no-op")
	}
}

// TestMemcpyIdempotence: the clamped memcpy is still a memcpy, so it is
// seen again — but the destination remains computable and the clamp is
// re-derivable. The second pass re-wraps the (already safe) length; this
// is the one deliberately non-idempotent rewrite, matching the paper's
// case-by-case intent for memcpy. Assert it at least keeps parsing and
// stays safe rather than silently corrupting.
func TestMemcpySecondPassStillParses(t *testing.T) {
	first := runAll(t, `
void f(char *src, unsigned long n) {
    char dst[16];
    memcpy(dst, src, n);
}
`)
	tu, err := cparse.Parse("t2.c", first.NewSource)
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewTransformer(tu).ApplyAll()
	if err != nil {
		t.Fatal(err)
	}
	reparse(t, second.NewSource)
}
