package experiments

import (
	"strings"
	"testing"
)

func TestIntLintFullCorpus(t *testing.T) {
	// The integer-overflow corpus is small (every sink crossed with every
	// flow variant once), so the test runs it whole: the acceptance bar is
	// zero false negatives AND zero false positives.
	rows, err := RunIntLint(LintOptions{Stride: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows: got %d, want 2 (CWE-190, CWE-680)", len(rows))
	}
	for _, r := range rows {
		if r.Errors > 0 {
			t.Errorf("CWE-%d: %d processing errors", r.CWE, r.Errors)
		}
		if r.Programs == 0 {
			t.Errorf("CWE-%d: no programs processed", r.CWE)
			continue
		}
		if r.FN != 0 {
			t.Errorf("CWE-%d: %d bad() functions missed", r.CWE, r.FN)
		}
		if r.FP != 0 {
			t.Errorf("CWE-%d: %d good() functions falsely flagged", r.CWE, r.FP)
		}
		if r.CWEMatch != r.TP {
			t.Errorf("CWE-%d: only %d/%d flagged programs carry the exact CWE",
				r.CWE, r.CWEMatch, r.TP)
		}
		// Every allocation-sink program must come with a suggested
		// precondition guard.
		if r.CWE == 680 && r.Guarded != r.TP {
			t.Errorf("CWE-680: only %d/%d flagged programs carry a suggested guard",
				r.Guarded, r.TP)
		}
	}
	out := FormatIntLint(rows)
	if !strings.Contains(out, "CWE 190") || !strings.Contains(out, "CWE 680") ||
		!strings.Contains(out, "Total") {
		t.Fatalf("format output incomplete:\n%s", out)
	}
}
