package cinterp

import (
	"strings"
	"testing"
)

func TestLibcStringSearch(t *testing.T) {
	res := run(t, `
int main(void) {
    char s[32];
    char *p;
    strcpy(s, "abcabc");
    p = strchr(s, 'b');
    printf("[%s]", p);
    p = strrchr(s, 'b');
    printf("[%s]", p);
    p = strstr(s, "cab");
    printf("[%s]", p);
    p = strchr(s, 'z');
    if (p == 0) { printf("[null]"); }
    return 0;
}
`, "main")
	want := "[bcabc][bc][cabc][null]"
	if res.Stdout != want {
		t.Fatalf("got %q, want %q", res.Stdout, want)
	}
}

func TestLibcStrncpyStrncat(t *testing.T) {
	res := run(t, `
int main(void) {
    char a[16];
    char b[16];
    strncpy(a, "hello world", 5);
    a[5] = '\0';
    strcpy(b, "x");
    strncat(b, "abcdef", 3);
    printf("%s|%s", a, b);
    return 0;
}
`, "main")
	if res.Stdout != "hello|xabc" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestLibcStrdupAndCompare(t *testing.T) {
	res := run(t, `
int main(void) {
    char *d = strdup("copy me");
    printf("%s|%d|%d", d, strcmp(d, "copy me"), strncmp("abc", "abd", 2));
    free(d);
    return 0;
}
`, "main")
	if res.Stdout != "copy me|0|0" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestLibcMemoryOps(t *testing.T) {
	res := run(t, `
int main(void) {
    char a[8];
    char b[8];
    memset(a, 'z', 7);
    a[7] = '\0';
    memmove(b, a, 8);
    printf("%s|%d", b, memcmp(a, b, 8));
    return 0;
}
`, "main")
	if res.Stdout != "zzzzzzz|0" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestLibcAtoiAndRand(t *testing.T) {
	res := run(t, `
int main(void) {
    int a = atoi("  -42abc");
    int b = atoi("17");
    srand(7);
    int r1 = rand();
    srand(7);
    int r2 = rand();
    printf("%d|%d|%d", a, b, r1 == r2);
    return 0;
}
`, "main")
	if res.Stdout != "-42|17|1" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestGetenv(t *testing.T) {
	unit, err := parseChecked(t, `
int main(void) {
    char *home = getenv("HOME");
    char *nope = getenv("NOPE");
    printf("%s|%d", home, nope == 0);
    return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	in, err := New(unit, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	in.SetEnv(map[string]string{"HOME": "/root"})
	res, err := in.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "/root|1" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestRealloc(t *testing.T) {
	res := run(t, `
int main(void) {
    char *p = malloc(4);
    strcpy(p, "abc");
    p = realloc(p, 16);
    strcat(p, "defgh");
    printf("%s|%d", p, malloc_usable_size(p));
    return 0;
}
`, "main")
	if res.Stdout != "abcdefgh|16" {
		t.Fatalf("got %q", res.Stdout)
	}
	if res.HasViolations() {
		t.Fatalf("violations: %v", res.Violations)
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	res := run(t, `
int main(void) {
    char *p = malloc(4);
    free(p);
    free(p);
    return 0;
}
`, "main")
	if res.ViolationsByCWE()[415] == 0 {
		t.Fatalf("expected CWE-415 double free, got %v", res.Violations)
	}
}

func TestWriteToStringLiteralDetected(t *testing.T) {
	res := run(t, `
int main(void) {
    char *p = "readonly";
    p[0] = 'X';
    return 0;
}
`, "main")
	if !res.HasViolations() {
		t.Fatal("write to string literal must be flagged")
	}
}

func TestFloatsEndToEnd(t *testing.T) {
	res := run(t, `
int main(void) {
    double d = 2.5;
    float f = 1.25;
    d = d * 2.0 + f;
    printf("%f|", d);
    printf("%.1f", 3.14159);
    return 0;
}
`, "main")
	if res.Stdout != "6.250000|3.1" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestCompoundAssignOperators(t *testing.T) {
	res := run(t, `
int main(void) {
    int x = 100;
    x += 5;
    x -= 1;
    x *= 2;
    x /= 4;
    x %= 45;
    x <<= 2;
    x >>= 1;
    x &= 0xFE;
    x |= 1;
    x ^= 2;
    printf("%d", x);
    return 0;
}
`, "main")
	// 100+5=105; -1=104; *2=208; /4=52; %45=7; <<2=28; >>1=14; &0xFE=14; |1=15; ^2=13
	if res.Stdout != "13" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestDivisionByZeroFlagged(t *testing.T) {
	res := run(t, `
int main(void) {
    int a = 5;
    int b = 0;
    int c = a / b;
    printf("%d", c);
    return 0;
}
`, "main")
	if res.ViolationsByCWE()[369] == 0 {
		t.Fatalf("expected CWE-369, got %v", res.Violations)
	}
	if res.Stdout != "0" {
		t.Fatalf("division by zero clamps to 0, got %q", res.Stdout)
	}
}

func TestFormatWidthPrecisionCorners(t *testing.T) {
	res := run(t, `
int main(void) {
    printf("[%8.3s]", "abcdef");
    printf("[%-6d]", -42);
    printf("[%+d]", 7);
    printf("[%#x][%#o]", 255, 9);
    printf("[%hd]", 70000);
    printf("[%p]", (void*)0);
    return 0;
}
`, "main")
	want := "[     abc][-42   ][+7][0xff][011][4464][(nil)]"
	if res.Stdout != want {
		t.Fatalf("got %q, want %q", res.Stdout, want)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	_, err := LoadAndRun("t.c", `
int down(int n) { return down(n + 1); }
int main(void) { return down(0); }
`, "main", nil, Limits{MaxFrames: 50})
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("expected depth limit error, got %v", err)
	}
}

func TestHeapLimit(t *testing.T) {
	_, err := LoadAndRun("t.c", `
int main(void) {
    for (;;) { malloc(1024); }
    return 0;
}
`, "main", nil, Limits{MaxHeap: 1 << 16})
	if err == nil || !strings.Contains(err.Error(), "heap limit") {
		t.Fatalf("expected heap limit error, got %v", err)
	}
}

func TestStringLiteralConcatSemantics(t *testing.T) {
	res := run(t, `
int main(void) {
    printf("abc" "def" "\n");
    return 0;
}
`, "main")
	if res.Stdout != "abcdef\n" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestPointerComparisonsAndNull(t *testing.T) {
	res := run(t, `
int main(void) {
    char a[4];
    char *p = a;
    char *q = a + 2;
    printf("%d%d%d%d", p < q, q > p, p == a, p != q);
    p = 0;
    printf("%d", p == 0);
    return 0;
}
`, "main")
	if res.Stdout != "11111" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestCastsTruncate(t *testing.T) {
	res := run(t, `
int main(void) {
    int big = 0x1234;
    char c = (char)big;
    unsigned char uc = (unsigned char)big;
    short s = (short)0x12345;
    printf("%d|%d|%d", c, uc, s);
    return 0;
}
`, "main")
	if res.Stdout != "52|52|9029" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestCommaOperatorEvaluation(t *testing.T) {
	res := run(t, `
int main(void) {
    int a = 0;
    int b;
    b = (a = 5, a + 2);
    printf("%d|%d", a, b);
    return 0;
}
`, "main")
	if res.Stdout != "5|7" {
		t.Fatalf("got %q", res.Stdout)
	}
}

func TestReturnValuePropagation(t *testing.T) {
	res := run(t, `
char *pick(char *a, char *b, int which) {
    if (which) { return a; }
    return b;
}
int main(void) {
    printf("%s", pick("first", "second", 0));
    return 0;
}
`, "main")
	if res.Stdout != "second" {
		t.Fatalf("got %q", res.Stdout)
	}
}
