package pointsto

import (
	"runtime"
	"sync"

	"repro/internal/cast"
	"repro/internal/dataflow"
	"repro/internal/fault"
)

// Options configures the solver.
type Options struct {
	// Parallel selects the Galois-style parallel rewriting engine instead
	// of the sequential worklist. Both reach the same fixpoint.
	Parallel bool
	// Workers bounds the goroutine pool in parallel mode. Zero means
	// GOMAXPROCS.
	Workers int
	// DisableCycleElimination skips the offline SCC collapse (Hardekopf's
	// optimization); used by the ablation benchmarks to quantify its
	// effect. The fixpoint is identical either way.
	DisableCycleElimination bool
	// FieldSensitive gives each struct member of a named record variable
	// its own points-to node instead of collapsing the struct into one
	// aggregate node. The paper deliberately keeps the aggregate model
	// ("our alias analysis can be made more precise, but that adds to the
	// runtime overhead", Section IV-B); this option exists for the
	// precision ablation (DESIGN.md Section 6).
	FieldSensitive bool
	// Limits bounds the solve (DESIGN.md Section 9): the context is
	// polled at iteration boundaries, and an exhausted step budget
	// degrades the graph to the conservative top — every node may point
	// to every object — with Stats.Degraded set. The zero value imposes
	// nothing.
	Limits fault.Limits
}

// Analyze generates constraints from the unit and solves them.
func Analyze(unit *cast.TranslationUnit, opts Options) *Graph {
	g := newGraph()
	g.fieldSensitive = opts.FieldSensitive
	g.generate(unit)
	g.solve(opts)
	return g
}

// solve runs constraint solving to a fixpoint.
func (g *Graph) solve(opts Options) {
	n := len(g.Nodes)
	g.pts = make([]dataflow.BitSet, n)
	g.rep = make([]int, n)
	for i := 0; i < n; i++ {
		g.pts[i] = dataflow.NewBitSet(n)
		g.rep[i] = i
	}

	succs := make([]map[int]struct{}, n)
	for i := range succs {
		succs[i] = make(map[int]struct{})
	}
	// loadsBySrc[p] = {d}: d = *p; storesByDst[p] = {s}: *p = s.
	loadsBySrc := make(map[int][]int)
	storesByDst := make(map[int][]int)

	for _, c := range g.constraints {
		switch c.kind {
		case addrOf:
			g.pts[c.dst].Set(c.src)
		case copyC:
			if c.src != c.dst {
				succs[c.src][c.dst] = struct{}{}
			}
		case load:
			loadsBySrc[c.src] = append(loadsBySrc[c.src], c.dst)
		case store:
			storesByDst[c.dst] = append(storesByDst[c.dst], c.src)
		}
	}

	// Offline cycle elimination on the initial copy graph (Hardekopf's
	// key optimization): nodes in a copy cycle share one points-to set.
	if !opts.DisableCycleElimination {
		g.collapseCycles(succs)
	}

	if opts.Parallel {
		g.Stats.Parallel = true
		g.solveParallel(succs, loadsBySrc, storesByDst, opts.Workers, opts.Limits)
		return
	}
	g.solveSequential(succs, loadsBySrc, storesByDst, opts.Limits)
}

// degradeToTop widens every representative's points-to set to the full
// object universe — the conservative answer when the solve could not
// finish within its budget. Alias queries then report everything
// aliased, which only makes downstream clients more careful.
func (g *Graph) degradeToTop() {
	n := len(g.Nodes)
	for i := 0; i < n; i++ {
		if g.find(i) == i {
			g.pts[i].SetFirstN(n)
		}
	}
	g.Stats.Degraded = true
	g.solved = true
}

// collapseCycles runs Tarjan's SCC over the copy edges and merges each
// multi-node component into its representative.
func (g *Graph) collapseCycles(succs []map[int]struct{}) {
	n := len(g.Nodes)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var (
		stack   []int
		counter int
	)
	// Iterative Tarjan to avoid deep recursion on long copy chains.
	type frame struct {
		v    int
		iter []int
		pos  int
	}
	neighbors := func(v int) []int {
		out := make([]int, 0, len(succs[v]))
		for s := range succs[v] {
			out = append(out, s)
		}
		return out
	}
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{v: start, iter: neighbors(start)}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.pos < len(f.iter) {
				w := f.iter[f.pos]
				f.pos++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, iter: neighbors(w)})
				} else if onStack[w] {
					if index[w] < low[f.v] {
						low[f.v] = index[w]
					}
				}
				continue
			}
			// Pop.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[v] < low[parent.v] {
					low[parent.v] = low[v]
				}
			}
			if low[v] == index[v] {
				// Root of an SCC: pop members.
				var members []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					members = append(members, w)
					if w == v {
						break
					}
				}
				if len(members) > 1 {
					g.Stats.CyclesCollapsed++
					root := members[0]
					for _, m := range members[1:] {
						g.merge(root, m, succs)
					}
				}
			}
		}
	}
}

// merge unions node b into node a (both must be current representatives).
func (g *Graph) merge(a, b int, succs []map[int]struct{}) {
	a, b = g.find(a), g.find(b)
	if a == b {
		return
	}
	g.rep[b] = a
	g.pts[a].UnionWith(g.pts[b])
	for s := range succs[b] {
		if g.find(s) != a {
			succs[a][s] = struct{}{}
		}
	}
	succs[b] = nil
}

// solveSequential is the classic worklist propagation.
func (g *Graph) solveSequential(succs []map[int]struct{}, loadsBySrc, storesByDst map[int][]int, lim fault.Limits) {
	work := make([]int, 0, len(g.Nodes))
	inWork := make([]bool, len(g.Nodes))
	push := func(i int) {
		i = g.find(i)
		if !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	for i := range g.Nodes {
		if g.find(i) == i && g.pts[i].Count() > 0 {
			push(i)
		}
	}
	addEdge := func(from, to int) bool {
		from, to = g.find(from), g.find(to)
		if from == to {
			return false
		}
		if _, ok := succs[from][to]; ok {
			return false
		}
		succs[from][to] = struct{}{}
		return true
	}

	meter := lim.NewMeter()
	for len(work) > 0 {
		if !meter.Step() {
			g.degradeToTop()
			return
		}
		g.Stats.Iterations++
		v := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[v] = false
		v = g.find(v)

		// Complex constraints: loads with src v and stores with dst v
		// materialize new copy edges for each pointee.
		var newEdges [][2]int
		g.pts[v].ForEach(func(pointee int) {
			for _, d := range loadsBySrc[v] {
				newEdges = append(newEdges, [2]int{pointee, d})
			}
			for _, s := range storesByDst[v] {
				newEdges = append(newEdges, [2]int{s, pointee})
			}
		})
		for _, e := range newEdges {
			if addEdge(e[0], e[1]) {
				push(e[0])
			}
		}

		// Propagate along copy edges.
		for sRaw := range succs[v] {
			s := g.find(sRaw)
			if s == v {
				continue
			}
			if g.pts[s].UnionWith(g.pts[v]) {
				push(s)
			}
		}
	}
	g.solved = true
}

// solveParallel runs round-based parallel propagation: each round
// partitions the frontier among workers which compute deltas; deltas are
// applied under a single lock, following the amorphous-data-parallel
// pattern of the Galois engine the paper uses for graph rewriting.
func (g *Graph) solveParallel(succs []map[int]struct{}, loadsBySrc, storesByDst map[int][]int, workers int, lim fault.Limits) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	frontier := make([]int, 0, len(g.Nodes))
	for i := range g.Nodes {
		if g.find(i) == i && g.pts[i].Count() > 0 {
			frontier = append(frontier, i)
		}
	}
	var mu sync.Mutex
	meter := lim.NewMeter()
	for len(frontier) > 0 {
		if !meter.Step() {
			g.degradeToTop()
			return
		}
		g.Stats.Iterations++
		next := make(map[int]struct{})

		type delta struct {
			edges [][2]int
		}
		deltas := make([]delta, len(frontier))
		// Resolve representatives before fanning out: find path-compresses
		// g.rep, so calling it from the workers would race.
		reps := make([]int, len(frontier))
		for idx, vRaw := range frontier {
			reps[idx] = g.find(vRaw)
		}
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for idx := range frontier {
			wg.Add(1)
			sem <- struct{}{}
			go func(idx int) {
				defer wg.Done()
				defer func() { <-sem }()
				v := reps[idx]
				var edges [][2]int
				mu.Lock()
				pts := g.pts[v].Clone()
				mu.Unlock()
				pts.ForEach(func(pointee int) {
					for _, d := range loadsBySrc[v] {
						edges = append(edges, [2]int{pointee, d})
					}
					for _, s := range storesByDst[v] {
						edges = append(edges, [2]int{s, pointee})
					}
				})
				deltas[idx] = delta{edges: edges}
			}(idx)
		}
		wg.Wait()

		// Apply phase (sequential, deterministic).
		apply := func(from, to int) {
			from, to = g.find(from), g.find(to)
			if from == to {
				return
			}
			if _, ok := succs[from][to]; !ok {
				succs[from][to] = struct{}{}
				next[from] = struct{}{}
			}
		}
		for _, d := range deltas {
			for _, e := range d.edges {
				apply(e[0], e[1])
			}
		}
		for _, vRaw := range frontier {
			v := g.find(vRaw)
			for sRaw := range succs[v] {
				s := g.find(sRaw)
				if s == v {
					continue
				}
				if g.pts[s].UnionWith(g.pts[v]) {
					next[s] = struct{}{}
				}
			}
		}
		frontier = frontier[:0]
		for v := range next {
			frontier = append(frontier, v)
		}
	}
	g.solved = true
}
