// Integer-overflow slice of the synthetic corpus: Juliet-style CWE-190
// (integer wraparound) and CWE-680 (wrapped size reaching an allocator)
// programs for evaluating the integer-overflow oracle (internal/intflow).
//
// The structure mirrors samate.go exactly — every program pairs a good
// function (in-range arithmetic) with a bad function (the same arithmetic
// wrapping), wrapped in the shared control-flow variants — but the counts
// are ours, not Table III's: the paper's benchmark has no integer-overflow
// slice, so this extension enumerates each sink across all twelve flow
// variants once.
package samate

import "fmt"

// IntCWEs lists the integer-overflow corpus CWEs in report order.
var IntCWEs = []int{190, 680}

// IntTableCounts gives the generated program count per CWE: every sink
// crossed with every control-flow variant.
var IntTableCounts = map[int]int{
	190: len(_sinks190) * len(_flows),
	680: len(_sinks680) * len(_flows),
}

func init() {
	CWENames[190] = "Integer Overflow or Wraparound"
	CWENames[680] = "Integer Overflow to Buffer Overflow"
}

// --- CWE-190: integer overflow or wraparound --------------------------------

var _sinks190 = []sink{
	{
		// A wider value truncated by an explicit cast: the classic
		// (short)big idiom. good keeps the value in short range.
		name: "trunc_cast",
		gen: func(_, _ int) (string, string, string, string) {
			decls := `    int big;
    short out;`
			good := "    big = 1200;\n    out = (short)big;"
			bad := "    big = 100000;\n    out = (short)big;"
			print := `    printf("%d\n", out);`
			return decls, good, bad, print
		},
	},
	{
		// An unsigned char loop counter tested against a bound it can
		// never reach: i++ wraps 255 -> 0. The total guard keeps the bad
		// loop dynamically terminating (the wrap still happens at
		// iteration 256, well before the break).
		name: "uchar_loop_bound",
		gen: func(_, _ int) (string, string, string, string) {
			decls := `    unsigned char i;
    int total;
    total = 0;`
			good := "    for (i = 0; i < 100; i++) { total = total + 1; }"
			bad := "    for (i = 0; i < 300; i++) { total = total + 1; if (total > 600) { break; } }"
			print := `    printf("%d\n", total);`
			return decls, good, bad, print
		},
	},
	{
		// Compound addition overflowing an unsigned short accumulator.
		name: "ushort_acc_add",
		gen: func(_, _ int) (string, string, string, string) {
			decls := "    unsigned short acc;"
			good := "    acc = 1000;\n    acc += 2000;"
			bad := "    acc = 60000;\n    acc += 60000;"
			print := `    printf("%d\n", acc);`
			return decls, good, bad, print
		},
	},
}

// --- CWE-680: integer overflow to buffer overflow ---------------------------

var _sinks680 = []sink{
	{
		// Multiplication before malloc: count * esize wraps unsigned int,
		// so the allocation is far smaller than intended.
		name: "mul_before_malloc",
		gen: func(_, _ int) (string, string, string, string) {
			decls := `    char *buf;
    unsigned int count;
    unsigned int esize;`
			good := "    count = 100;\n    esize = 8;\n    buf = malloc(count * esize);"
			bad := "    count = 70000;\n    esize = 70000;\n    buf = malloc(count * esize);"
			print := "    if (buf) { buf[0] = 'x'; free(buf); }\n    printf(\"ok\\n\");"
			return decls, good, bad, print
		},
	},
	{
		// A truncating assignment whose result is stored, then used as an
		// allocation size: the wrap taint travels through the variable.
		name: "trunc_to_alloc",
		gen: func(_, _ int) (string, string, string, string) {
			decls := `    char *buf;
    int want;
    short n;`
			good := "    want = 512;\n    n = (short)want;\n    buf = malloc(n);"
			bad := "    want = 100000;\n    n = (short)want;\n    buf = malloc(n);"
			print := "    if (buf) { buf[0] = 'y'; free(buf); }\n    printf(\"ok\\n\");"
			return decls, good, bad, print
		},
	},
	{
		// The size flows through a static allocation wrapper, exercising
		// the oracle's call-graph sink discovery: __HELPER__ forwards its
		// parameter into malloc, so it is a sink too.
		name: "wrapper_malloc",
		gen: func(_, _ int) (string, string, string, string) {
			decls := `    char *buf;
    unsigned int count;`
			good := "    count = 64;\n    buf = __HELPER__(count * 4);"
			bad := "    count = 1100000000;\n    buf = __HELPER__(count * 4);"
			print := "    if (buf) { buf[0] = 'z'; free(buf); }\n    printf(\"ok\\n\");"
			return decls, good, bad, print
		},
		support: func(_, _ int) string {
			return `static char *__HELPER__(unsigned int n) {
    return malloc(n);
}
`
		},
	},
}

var _intSinksByCWE = map[int][]sink{
	190: _sinks190,
	680: _sinks680,
}

// IntGenerate returns exactly n programs for the integer-overflow CWE,
// enumerated deterministically over (sink, flow) and cycling when n
// exceeds the combination space. Sizes and overflow reaches are
// irrelevant to these sinks; every program uses fixed in-source constants.
func IntGenerate(cwe, n int) []Program {
	sinks := _intSinksByCWE[cwe]
	if len(sinks) == 0 {
		return nil
	}
	out := make([]Program, 0, n)
	seq := 0
	for len(out) < n {
		before := len(out)
		for _, s := range sinks {
			for _, fl := range _flows {
				if len(out) >= n {
					return out
				}
				seq++
				id := fmt.Sprintf("CWE%d_v%04d", cwe, seq)
				out = append(out, buildProgram(id, cwe, s, fl, 16, 2))
			}
		}
		if len(out) == before {
			break
		}
	}
	return out
}

// IntGenerateAll produces the full integer-overflow corpus.
func IntGenerateAll() map[int][]Program {
	out := make(map[int][]Program, len(IntTableCounts))
	for cwe, n := range IntTableCounts {
		out[cwe] = IntGenerate(cwe, n)
	}
	return out
}
