package harness

import (
	"strings"
	"testing"

	"repro/internal/samate"
)

// TestVerifyBackendDialects runs the full protocol under each
// non-default dialect on the twin program: the bad function's overflow
// is fixed and the good function's behavior is preserved regardless of
// which safe library the rewrite targets — the checked interpreter
// models all of them.
func TestVerifyBackendDialects(t *testing.T) {
	cases := []struct {
		backend string
		call    string
	}{
		{"bsd", "strlcpy("},
		{"c11k", "strcpy_s("},
	}
	for _, c := range cases {
		t.Run(c.backend, func(t *testing.T) {
			v, err := Verify("prog", twinProgram, "prog_good", "prog_bad",
				Options{Backend: c.backend})
			if err != nil {
				t.Fatal(err)
			}
			if !v.VulnDetected {
				t.Fatal("bad function must overflow pre-transform")
			}
			if !v.Fixed {
				t.Fatalf("bad function must be clean post-transform: %v", v.PostBad.Violations)
			}
			if !v.Preserved {
				t.Fatalf("good output must be preserved: pre=%q post=%q",
					v.PreGood.Stdout, v.PostGood.Stdout)
			}
			if !strings.Contains(v.TransformedSource, c.call) {
				t.Fatalf("%s dialect not applied:\n%s", c.backend, v.TransformedSource)
			}
		})
	}
}

// TestVerifyBackendGetsDialects pins the stdin-consuming rewrites: both
// the fgets-based dialects and gets_s consume exactly one line and
// print the same bounded content, so Preserved holds across dialects.
func TestVerifyBackendGetsDialects(t *testing.T) {
	src := `
void g_good(void) {
    char buf[64];
    fgets(buf, sizeof(buf), stdin);
    printf("%s", buf);
}
void g_bad(void) {
    char buf[8];
    gets(buf);
    printf("%s\n", buf);
}
`
	for _, backend := range []string{"bsd", "c11k"} {
		t.Run(backend, func(t *testing.T) {
			v, err := Verify("g", src, "g_good", "g_bad", Options{
				Backend: backend,
				Stdin:   []string{"hello input", "a very long attacking line"},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !v.VulnDetected || !v.Fixed || !v.Preserved {
				t.Fatalf("verdict: fixed=%v preserved=%v (postBad=%v)",
					v.Fixed, v.Preserved, v.PostBad.Violations)
			}
		})
	}
}

// TestVerifyBackendSAMATESubset is the per-dialect interpreter
// equivalence sweep: over a strided SAMATE sample covering every CWE
// class, each dialect's transformed programs must fix every detected
// overflow and preserve every good function's output — the same claims
// Table III makes for glib.
func TestVerifyBackendSAMATESubset(t *testing.T) {
	if testing.Short() {
		t.Skip("SAMATE sweep skipped under -short")
	}
	for _, backend := range []string{"bsd", "c11k"} {
		t.Run(backend, func(t *testing.T) {
			var programs, vulnDetected, fixed, preserved int
			for _, cwe := range samate.CWEs {
				progs := samate.Generate(cwe, samate.TableIIICounts[cwe])
				for i := 0; i < len(progs); i += 10 {
					p := progs[i]
					var stdin []string
					if p.CWE == 242 {
						long := strings.Repeat("Q", 120)
						stdin = []string{long, long}
					}
					v, err := Verify(p.ID, p.Source, p.ID+"_good", p.ID+"_bad",
						Options{Backend: backend, Stdin: stdin})
					if err != nil {
						t.Fatalf("%s: %v", p.ID, err)
					}
					programs++
					if v.VulnDetected {
						vulnDetected++
						if !v.Fixed {
							t.Errorf("%s: overflow not fixed under %s: %v",
								p.ID, backend, v.PostBad.Violations)
						}
					}
					if v.Fixed {
						fixed++
					}
					if v.Preserved {
						preserved++
					} else {
						t.Errorf("%s: good behavior not preserved under %s: pre=%q post=%q",
							p.ID, backend, v.PreGood.Stdout, v.PostGood.Stdout)
					}
				}
			}
			if programs < 200 {
				t.Fatalf("sample too small: %d programs, want >= 200", programs)
			}
			if vulnDetected == 0 {
				t.Fatal("no program overflowed pre-transform; the sweep proves nothing")
			}
			t.Logf("%s: %d programs, %d vulnerable, %d fixed, %d preserved",
				backend, programs, vulnDetected, fixed, preserved)
		})
	}
}
