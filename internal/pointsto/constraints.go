package pointsto

import (
	"repro/internal/cast"
	"repro/internal/ctype"
)

// _heapAllocators is the set of library functions whose result is a fresh
// heap object.
var _heapAllocators = map[string]struct{}{
	"malloc": {}, "calloc": {}, "realloc": {}, "strdup": {}, "alloca": {},
}

// IsHeapAllocator reports whether the named function allocates heap
// memory. Exposed for Algorithm 1, which needs "def contains heap
// allocation" (lines 31, 47).
func IsHeapAllocator(name string) bool {
	_, ok := _heapAllocators[name]
	return ok
}

// generate walks the unit and emits inclusion constraints.
func (g *Graph) generate(unit *cast.TranslationUnit) {
	// Globals first so their nodes exist.
	for _, d := range unit.Decls {
		switch x := d.(type) {
		case *cast.VarDecl:
			g.genDecl(x)
		case *cast.MultiDecl:
			for _, vd := range x.Decls {
				g.genDecl(vd)
			}
		}
	}
	for _, f := range unit.Funcs {
		cast.Inspect(f.Body, func(n cast.Node) bool {
			switch x := n.(type) {
			case *cast.VarDecl:
				g.genDecl(x)
			case *cast.AssignExpr:
				if x.Op == cast.AssignPlain || x.Op == cast.AssignAdd || x.Op == cast.AssignSub {
					g.genAssign(x.LHS, x.RHS)
				}
			}
			return true
		})
	}
}

func (g *Graph) genDecl(d *cast.VarDecl) {
	if d.Sym == nil {
		return
	}
	agg := ctype.IsArray(d.Type) || isRecordType(d.Type)
	node := g.nodeForSym(d.Sym, agg)
	_ = node
	if d.Init != nil {
		g.genAssignToNode(node.ID, false, d.Init)
	}
}

func isRecordType(t ctype.Type) bool {
	_, ok := ctype.Unqualify(t).(*ctype.Record)
	return ok
}

// genAssign emits constraints for lhs = rhs.
func (g *Graph) genAssign(lhs, rhs cast.Expr) {
	target, indirect, ok := g.lvalueNode(lhs)
	if !ok {
		return
	}
	g.genAssignToNode(target, indirect, rhs)
}

// lvalueNode resolves an lvalue expression to a target node. indirect
// reports that the assignment stores through the node's pointees (*p = ...)
// rather than into the node itself.
func (g *Graph) lvalueNode(lv cast.Expr) (nodeID int, indirect bool, ok bool) {
	switch x := cast.Unparen(lv).(type) {
	case *cast.Ident:
		if x.Sym == nil {
			return 0, false, false
		}
		agg := ctype.IsArray(x.Sym.Type) || isRecordType(x.Sym.Type)
		return g.nodeForSym(x.Sym, agg).ID, false, true
	case *cast.UnaryExpr:
		if x.Op != cast.UnaryDeref {
			return 0, false, false
		}
		if id, okc := cast.Unparen(x.Operand).(*cast.Ident); okc && id.Sym != nil {
			return g.nodeForSym(id.Sym, false).ID, true, true
		}
		return 0, false, false
	case *cast.IndexExpr:
		// a[i] = v: writing into the aggregate a (or through pointer a).
		if id, okc := cast.Unparen(x.Base).(*cast.Ident); okc && id.Sym != nil {
			if ctype.IsArray(id.Sym.Type) {
				return g.nodeForSym(id.Sym, true).ID, false, true
			}
			return g.nodeForSym(id.Sym, false).ID, true, true
		}
		return 0, false, false
	case *cast.MemberExpr:
		base := cast.Unparen(x.Base)
		id, okc := base.(*cast.Ident)
		if !okc || id.Sym == nil {
			return 0, false, false
		}
		if x.Arrow {
			// p->f = v stores through p into its (aggregate) pointee.
			return g.nodeForSym(id.Sym, false).ID, true, true
		}
		if g.fieldSensitive && isRecordType(id.Sym.Type) {
			// s.f = v writes into the member's own node.
			return g.nodeForField(id.Sym, x.Member).ID, false, true
		}
		// s.f = v writes into the aggregate s.
		return g.nodeForSym(id.Sym, true).ID, false, true
	default:
		return 0, false, false
	}
}

// genAssignToNode emits constraints flowing rhs into the target node.
func (g *Graph) genAssignToNode(target int, indirect bool, rhs cast.Expr) {
	for _, v := range g.rhsValues(rhs) {
		switch {
		case v.isAddr && !indirect:
			g.addConstraint(addrOf, target, v.node)
		case v.isAddr && indirect:
			// *p = &x: every pointee of p gains x. Model via a synthetic
			// copy through a fresh node holding {x}.
			tmp := g.newHeapNode(nil) // reuse node machinery as a temp
			tmp.Kind = NodeVar
			g.addConstraint(addrOf, tmp.ID, v.node)
			g.addConstraint(store, target, tmp.ID)
		case v.isLoad && !indirect:
			g.addConstraint(load, target, v.node)
		case v.isLoad && indirect:
			tmp := g.newHeapNode(nil)
			tmp.Kind = NodeVar
			g.addConstraint(load, tmp.ID, v.node)
			g.addConstraint(store, target, tmp.ID)
		case indirect:
			g.addConstraint(store, target, v.node)
		default:
			g.addConstraint(copyC, target, v.node)
		}
	}
}

// rhsValue describes one pointer-valued contribution of an RHS expression.
type rhsValue struct {
	node   int
	isAddr bool // the node itself is the pointee (dst = &node)
	isLoad bool // the value is *node
}

// rhsValues decomposes an expression into its pointer-valued contributions.
func (g *Graph) rhsValues(e cast.Expr) []rhsValue {
	switch x := cast.Unparen(e).(type) {
	case *cast.Ident:
		if x.Sym == nil {
			return nil
		}
		t := x.Sym.Type
		switch {
		case ctype.IsArray(t):
			// Array names decay to the address of the aggregate.
			return []rhsValue{{node: g.nodeForSym(x.Sym, true).ID, isAddr: true}}
		case ctype.IsPointer(t) || isRecordType(t):
			agg := isRecordType(t)
			return []rhsValue{{node: g.nodeForSym(x.Sym, agg).ID}}
		default:
			return nil
		}
	case *cast.UnaryExpr:
		switch x.Op {
		case cast.UnaryAddrOf:
			inner := cast.Unparen(x.Operand)
			switch iv := inner.(type) {
			case *cast.Ident:
				if iv.Sym == nil {
					return nil
				}
				agg := ctype.IsArray(iv.Sym.Type) || isRecordType(iv.Sym.Type)
				return []rhsValue{{node: g.nodeForSym(iv.Sym, agg).ID, isAddr: true}}
			case *cast.IndexExpr:
				// &a[i] ≈ a (+ i)
				return g.rhsValues(iv.Base)
			case *cast.MemberExpr:
				// &s.f ≈ &s under the aggregate model.
				if id, ok := cast.Unparen(iv.Base).(*cast.Ident); ok && id.Sym != nil {
					if iv.Arrow {
						return []rhsValue{{node: g.nodeForSym(id.Sym, false).ID}}
					}
					return []rhsValue{{node: g.nodeForSym(id.Sym, true).ID, isAddr: true}}
				}
				return nil
			default:
				return nil
			}
		case cast.UnaryDeref:
			if id, ok := cast.Unparen(x.Operand).(*cast.Ident); ok && id.Sym != nil {
				return []rhsValue{{node: g.nodeForSym(id.Sym, false).ID, isLoad: true}}
			}
			return nil
		default:
			return nil
		}
	case *cast.StringLit:
		return []rhsValue{{node: g.newStringNode(x).ID, isAddr: true}}
	case *cast.CallExpr:
		if IsHeapAllocator(x.Callee()) {
			return []rhsValue{{node: g.newHeapNode(x).ID, isAddr: true}}
		}
		return nil
	case *cast.BinaryExpr:
		// Pointer arithmetic: the pointer operand carries the value.
		if x.Op == cast.BinaryAdd || x.Op == cast.BinarySub {
			var out []rhsValue
			out = append(out, g.rhsValues(x.X)...)
			out = append(out, g.rhsValues(x.Y)...)
			return out
		}
		return nil
	case *cast.CastExpr:
		return g.rhsValues(x.Operand)
	case *cast.CondExpr:
		out := g.rhsValues(x.Then)
		return append(out, g.rhsValues(x.Else)...)
	case *cast.CommaExpr:
		return g.rhsValues(x.Y)
	case *cast.AssignExpr:
		// p = (q = r): the value is q's new value; also generate the inner
		// assignment.
		g.genAssign(x.LHS, x.RHS)
		return g.rhsValues(x.LHS)
	case *cast.IndexExpr:
		// v = a[i] loads an element; under the aggregate model this is a
		// load from the aggregate when elements are pointers.
		if id, ok := cast.Unparen(x.Base).(*cast.Ident); ok && id.Sym != nil {
			if ctype.IsArray(id.Sym.Type) {
				return []rhsValue{{node: g.nodeForSym(id.Sym, true).ID}}
			}
			return []rhsValue{{node: g.nodeForSym(id.Sym, false).ID, isLoad: true}}
		}
		return nil
	case *cast.MemberExpr:
		if id, ok := cast.Unparen(x.Base).(*cast.Ident); ok && id.Sym != nil {
			if x.Arrow {
				return []rhsValue{{node: g.nodeForSym(id.Sym, false).ID, isLoad: true}}
			}
			if g.fieldSensitive && isRecordType(id.Sym.Type) {
				return []rhsValue{{node: g.nodeForField(id.Sym, x.Member).ID}}
			}
			return []rhsValue{{node: g.nodeForSym(id.Sym, true).ID}}
		}
		return nil
	case *cast.PostfixExpr:
		return g.rhsValues(x.Operand)
	default:
		return nil
	}
}
