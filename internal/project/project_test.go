package project

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/overflow"
)

// callerC passes a 10-byte stack buffer and a count of 100 to a function
// defined in another file. Nothing in this file is wrong by itself.
const callerC = `void fill(char *p, int n);
int main(void) {
    char buf[10];
    fill(buf, 100);
    return 0;
}
`

// calleeC writes n bytes through p. Analyzed alone, p's target size is
// unknown, so the oracle proves nothing. With the caller's seed (size
// 10, n = 100) the write overflows.
const calleeC = `void fill(char *p, int n) {
    int i;
    for (i = 0; i < n; i = i + 1) {
        p[i] = 'x';
    }
}
`

func lintOpts() core.Options {
	return core.Options{DisableSLR: true, DisableSTR: true, Lint: true}
}

// TestCrossTUFinding is the acceptance demo: a two-TU project exhibits
// an interprocedural overflow that single-TU analysis misses, and
// project mode finds it via transported call seeds.
func TestCrossTUFinding(t *testing.T) {
	// Single-TU baseline: the callee alone is unprovable.
	solo, err := core.Analyze(context.Background(), "b.c", calleeC, lintOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range solo {
		if f.Function == "fill" && f.Severity >= overflow.SevPossible && f.CWE == 121 {
			t.Fatalf("single-TU analysis already flags fill: %v", f)
		}
	}

	p := InMemory(map[string]string{"a.c": callerC, "b.c": calleeC}, nil, nil)
	rep, err := p.Analyze(context.Background(), lintOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Edges) != 1 {
		t.Fatalf("edges = %+v, want one a.c->b.c link", rep.Edges)
	}
	e := rep.Edges[0]
	if e.CallerFile != "a.c" || e.CalleeFile != "b.c" || e.Callee != "fill" {
		t.Fatalf("edge = %+v", e)
	}
	var hit *overflow.Finding
	for i := range rep.Files {
		out := rep.Files[i]
		if out.Err != "" {
			t.Fatalf("%s failed: %s", out.File, out.Err)
		}
		if out.File != "b.c" {
			continue
		}
		for j := range out.Lint.Findings {
			f := &out.Lint.Findings[j]
			if f.Function == "fill" && !f.Degraded {
				hit = f
			}
		}
	}
	if hit == nil {
		t.Fatal("project mode did not surface the cross-TU overflow in b.c")
	}
	found := false
	for _, c := range hit.Contexts {
		if strings.Contains(c, "[extern]") {
			found = true
		}
	}
	if !found {
		t.Fatalf("finding lacks an extern-seeded context: %+v", hit)
	}
}

// TestProjectFixEditsOriginal: a repair computed on preprocessed text
// lands in the user's original file — the macro stays a macro.
func TestProjectFixEditsOriginal(t *testing.T) {
	files := map[string]string{
		"m.c": "#include \"n.h\"\n" +
			"int main(void) {\n" +
			"    char b[N];\n" +
			"    strcpy(b, \"hi\");\n" +
			"    return 0;\n" +
			"}\n",
	}
	headers := map[string]string{
		"n.h": "#define N 16\nchar *strcpy(char *, const char *);\nunsigned long strlen(const char *);\n",
	}
	p := InMemory(files, headers, nil)
	rep, err := p.Fix(context.Background(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Files[0]
	if out.Err != "" {
		t.Fatalf("fix failed: %s", out.Err)
	}
	src := out.Fix.Source
	if !strings.Contains(src, "#include \"n.h\"") {
		t.Fatalf("include directive lost:\n%s", src)
	}
	if !strings.Contains(src, "char b[N];") {
		t.Fatalf("macro use in declaration was expanded away:\n%s", src)
	}
	if strings.Contains(src, "strcpy(b, \"hi\")") {
		t.Fatalf("unsafe call not repaired:\n%s", src)
	}
	if !strings.Contains(src, "g_strlcpy") {
		t.Fatalf("expected glib repair in output:\n%s", src)
	}
}

// TestProjectFixDeclinesMacroBody: when the unsafe call itself lives
// inside a macro expansion, the repair is declined with an explicit
// reason and the original text survives byte-for-byte.
func TestProjectFixDeclinesMacroBody(t *testing.T) {
	src := "#define COPY(d, s) strcpy(d, s)\n" +
		"char *strcpy(char *, const char *);\n" +
		"int main(void) {\n" +
		"    char b[8];\n" +
		"    COPY(b, \"hi\");\n" +
		"    return 0;\n" +
		"}\n"
	p := InMemory(map[string]string{"c.c": src}, nil, nil)
	rep, err := p.Fix(context.Background(), core.Options{DisableSTR: true})
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Files[0]
	if out.Err != "" {
		t.Fatalf("fix failed: %s", out.Err)
	}
	if out.Fix.Source != src {
		t.Fatalf("macro-expanded site was edited anyway:\n%s", out.Fix.Source)
	}
	declined := false
	for _, s := range out.Fix.SLR.Sites {
		if s.Applied {
			t.Fatalf("site reported applied: %+v", s)
		}
		if s.Failure != nil && strings.Contains(s.Failure.Detail, "COPY") {
			declined = true
		}
	}
	if !declined {
		t.Fatalf("no site declined with the macro named: %+v", out.Fix.SLR.Sites)
	}
}

// TestCompileCommandsParsing covers the flag translation and shell
// splitting used by database loading.
func TestCompileCommandsParsing(t *testing.T) {
	args := splitCommand(`cc -I include -DN=4 -D'F(x)' -I"sub dir" -c a.c -o a.o`)
	opts := argsToCppOptions(args, "/proj")
	if len(opts.IncludeDirs) != 2 || opts.IncludeDirs[0] != "/proj/include" || opts.IncludeDirs[1] != "/proj/sub dir" {
		t.Fatalf("include dirs = %+v", opts.IncludeDirs)
	}
	if opts.Defines["N"] != "4" {
		t.Fatalf("defines = %+v", opts.Defines)
	}
	if _, ok := opts.Defines["F(x)"]; !ok {
		t.Fatalf("quoted define lost: %+v", opts.Defines)
	}
}
