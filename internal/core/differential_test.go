package core

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/samate"
	"repro/internal/stralloc"
)

// samateCorpus returns the SAMATE corpus as batch inputs: the full
// 4,505 programs normally, a stride-10 sample under -short.
func samateCorpus(t testing.TB) []FileInput {
	t.Helper()
	stride := 1
	if testing.Short() {
		stride = 10
	}
	var inputs []FileInput
	for _, cwe := range samate.CWEs {
		progs := samate.Generate(cwe, samate.TableIIICounts[cwe])
		for i := 0; i < len(progs); i += stride {
			inputs = append(inputs, FileInput{Filename: progs[i].ID + ".c", Source: progs[i].Source})
		}
	}
	return inputs
}

// refixInput prepares a fixed program for a second Fix pass: STR output
// references the stralloc typedef that normally arrives with the
// support code, so re-parsing needs the declarations prepended. The
// header is declarations only — no function bodies, no char arrays —
// so it adds nothing either transformation could touch.
func refixInput(fixed string) string {
	if strings.Contains(fixed, "stralloc") {
		return stralloc.Header() + "\n" + fixed
	}
	return fixed
}

// TestFixIdempotentOnSAMATE is the differential fixpoint suite: over
// the full SAMATE corpus, Fix(Fix(x)) == Fix(x) — a second pass over
// already-hardened output must change nothing (no re-rewritten calls,
// no re-replaced variables, byte for byte).
func TestFixIdempotentOnSAMATE(t *testing.T) {
	inputs := samateCorpus(t)
	opts := Options{SelectOffset: -1}

	first := FixAll(context.Background(), inputs, opts, 0)
	second := make([]FileInput, len(first))
	for i, out := range first {
		if out.Err != nil {
			t.Fatalf("%s: first pass: %v", out.Filename, out.Err)
		}
		second[i] = FileInput{Filename: out.Filename, Source: refixInput(out.Report.Source)}
	}
	reouts := FixAll(context.Background(), second, opts, 0)
	violations := 0
	for i, out := range reouts {
		if out.Err != nil {
			t.Fatalf("%s: second pass: %v", out.Filename, out.Err)
		}
		if out.Report.Source != second[i].Source {
			violations++
			if violations <= 3 {
				t.Errorf("%s: not a fixpoint — second Fix changed the output", out.Filename)
			}
		}
	}
	if violations > 0 {
		t.Fatalf("%d/%d programs are not fixpoints", violations, len(inputs))
	}
	t.Logf("fixpoint holds on %d programs", len(inputs))
}

// TestIntflowFixDifferentialOnSAMATE: the integer-overflow oracle is an
// annotation-only pass — running Fix with `-lint -checks=buf,int` must
// leave every transformed source byte-identical to a default Fix run,
// over the SAMATE corpus plus the integer-overflow corpus (where the
// oracle actually fires).
func TestIntflowFixDifferentialOnSAMATE(t *testing.T) {
	inputs := samateCorpus(t)
	for _, cwe := range samate.IntCWEs {
		for _, p := range samate.IntGenerate(cwe, samate.IntTableCounts[cwe]) {
			inputs = append(inputs, FileInput{Filename: p.ID + ".c", Source: p.Source})
		}
	}

	base := FixAll(context.Background(), inputs, Options{SelectOffset: -1}, 0)
	withInt := FixAll(context.Background(), inputs,
		Options{SelectOffset: -1, Lint: true, Checks: "buf,int"}, 0)

	intFindings := 0
	for i := range inputs {
		if base[i].Err != nil || withInt[i].Err != nil {
			t.Fatalf("%s: errs %v / %v", inputs[i].Filename, base[i].Err, withInt[i].Err)
		}
		if base[i].Report.Source != withInt[i].Report.Source {
			t.Fatalf("%s: enabling the integer-overflow oracle changed the fix output",
				inputs[i].Filename)
		}
		for _, f := range withInt[i].Report.Findings {
			switch f.CWE {
			case 190, 191, 680:
				intFindings++
			}
		}
	}
	// The differential is only meaningful if the oracle ran: the
	// integer-overflow corpus must have produced findings.
	if intFindings == 0 {
		t.Fatal("the integer-overflow oracle produced no findings on the int corpus")
	}
	t.Logf("fix outputs identical on %d programs (%d integer findings attached)",
		len(inputs), intFindings)
}

// TestTracingDoesNotChangeOutput: attaching a Tracer is observation
// only — traced and untraced runs are byte-identical on every SAMATE
// program, and the traced run covers the pipeline's stage vocabulary.
func TestTracingDoesNotChangeOutput(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("tracing compiled out (cfix_notrace)")
	}
	inputs := equivCorpus(t, 200)
	plain := Options{SelectOffset: -1, Lint: true}
	tr := obs.NewTracer()
	traced := plain
	traced.Tracer = tr

	for _, in := range inputs {
		want, err := Fix(context.Background(), in.Filename, in.Source, plain)
		if err != nil {
			t.Fatalf("%s: untraced: %v", in.Filename, err)
		}
		got, err := Fix(context.Background(), in.Filename, in.Source, traced)
		if err != nil {
			t.Fatalf("%s: traced: %v", in.Filename, err)
		}
		if got.Source != want.Source {
			t.Fatalf("%s: tracing changed the output", in.Filename)
		}
		if len(got.Findings) != len(want.Findings) || len(got.Degraded) != len(want.Degraded) {
			t.Fatalf("%s: tracing changed findings/degradations", in.Filename)
		}
	}

	names := map[string]bool{}
	for _, sp := range tr.Spans() {
		names[sp.Name] = true
	}
	if len(names) < 10 {
		t.Fatalf("traced corpus run covered %d distinct stages, want >= 10: %v", len(names), names)
	}
}

// TestTracedBatchJ1vsJN: the batch pipeline under tracing stays
// equivalent across worker counts — byte-identical outputs, and the
// per-stage span counts agree (the work is the same, only its lane
// assignment differs). Run with -race this also pins the tracer's
// thread safety under the real worker pool.
func TestTracedBatchJ1vsJN(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("tracing compiled out (cfix_notrace)")
	}
	inputs := equivCorpus(t, 200)

	seqTr := obs.NewTracer()
	seqOpts := Options{SelectOffset: -1, Lint: true, Tracer: seqTr}
	seq := FixAll(context.Background(), inputs, seqOpts, 1)

	parTr := obs.NewTracer()
	parOpts := Options{SelectOffset: -1, Lint: true, Tracer: parTr}
	par := FixAll(context.Background(), inputs, parOpts, runtime.NumCPU())

	for i := range inputs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("%s: errs %v / %v", inputs[i].Filename, seq[i].Err, par[i].Err)
		}
		if seq[i].Report.Source != par[i].Report.Source {
			t.Fatalf("%s: -j1 and -jN outputs diverge under tracing", inputs[i].Filename)
		}
	}

	count := func(tr *obs.Tracer) map[string]int {
		m := map[string]int{}
		for _, st := range tr.StageStats() {
			m[st.Name] = st.Count
		}
		return m
	}
	seqCounts, parCounts := count(seqTr), count(parTr)
	if len(seqCounts) != len(parCounts) {
		t.Fatalf("stage vocabularies diverge: %v vs %v", seqCounts, parCounts)
	}
	for name, n := range seqCounts {
		if parCounts[name] != n {
			t.Fatalf("stage %q span count diverges: j1=%d jN=%d", name, n, parCounts[name])
		}
	}
	if runtime.NumCPU() > 1 {
		lanes := map[int]bool{}
		for _, sp := range parTr.Spans() {
			lanes[sp.Lane] = true
		}
		if len(lanes) < 2 {
			t.Errorf("parallel run used %d lane(s); worker lanes not propagated", len(lanes))
		}
	}
}

// TestSpansClosedOnInjectedPanic: a panic in the pipeline (fired inside
// parse, after its span opened) must not leak open spans — the parse
// and fix spans close on the unwind path and are visible in the trace.
func TestSpansClosedOnInjectedPanic(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("tracing compiled out (cfix_notrace)")
	}
	defer analysis.InjectFault("spanboom.c", analysis.Fault{Panic: true})()
	tr := obs.NewTracer()
	_, err := Fix(context.Background(), "spanboom.c", sample, Options{SelectOffset: -1, Tracer: tr})
	var pe *fault.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got err %v, want *fault.PanicError", err)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans() {
		names[sp.Name] = true
		if sp.Dur < 0 {
			t.Fatalf("span %q recorded negative duration", sp.Name)
		}
	}
	// A span only appears in Spans() once End ran: presence proves the
	// deferred close survived the panic.
	for _, want := range []string{obs.StageParse, obs.StageFix} {
		if !names[want] {
			t.Fatalf("span %q lost on the panic path (got %v)", want, names)
		}
	}
}

// TestBudgetExhaustionSpanAttr: a file whose solver budget runs out
// carries degraded=<reason> on the affected stage span, and the
// aggregated stage stats surface it (the -stage-stats degraded column).
func TestBudgetExhaustionSpanAttr(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("tracing compiled out (cfix_notrace)")
	}
	defer analysis.InjectFault("spanbudget.c", analysis.Fault{Budget: 1})()
	tr := obs.NewTracer()
	rep, err := Fix(context.Background(), "spanbudget.c", overflowing, Options{
		SelectOffset: -1,
		Lint:         true,
		DisableSLR:   true,
		DisableSTR:   true,
		Tracer:       tr,
	})
	if err != nil {
		t.Fatalf("budget exhaustion must degrade, not fail: %v", err)
	}
	if len(rep.Degraded) == 0 {
		t.Fatal("report not degraded")
	}
	var reasons []string
	for _, sp := range tr.Spans() {
		if v, ok := sp.AttrValue("degraded"); ok {
			if v == "" {
				t.Fatalf("span %q has an empty degradation reason", sp.Name)
			}
			reasons = append(reasons, sp.Name+"="+v)
		}
	}
	if len(reasons) == 0 {
		t.Fatalf("no span carries degraded=<reason>; spans: %d, report degraded: %v",
			tr.Len(), rep.Degraded)
	}
	var degradedTotal int
	for _, st := range tr.StageStats() {
		degradedTotal += st.Degraded
	}
	if degradedTotal == 0 {
		t.Fatalf("stage stats lost the degradations: %v", reasons)
	}
	if out := obs.FormatStageStats(tr.StageStats(), tr.WallClock()); !strings.Contains(out, "degraded") {
		t.Fatalf("stats table missing the degraded column:\n%s", out)
	}
}

// TestSpanClosedOnTimeout: a deadline firing mid-stage (injected delay
// inside parse) still closes the open spans, and the recorded duration
// reflects the stall.
func TestSpanClosedOnTimeout(t *testing.T) {
	if !obs.Enabled() {
		t.Skip("tracing compiled out (cfix_notrace)")
	}
	defer analysis.InjectFault("spanstall.c", analysis.Fault{Delay: 5 * time.Second})()
	tr := obs.NewTracer()
	_, err := Fix(context.Background(), "spanstall.c", sample, Options{
		SelectOffset: -1,
		Timeout:      50 * time.Millisecond,
		Tracer:       tr,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got err %v, want context.DeadlineExceeded", err)
	}
	var parse *obs.Span
	spans := tr.Spans()
	for i := range spans {
		if spans[i].Name == obs.StageParse {
			parse = &spans[i]
		}
	}
	if parse == nil {
		t.Fatalf("parse span lost on the timeout path; spans: %d", len(spans))
	}
	if parse.Dur < 40*time.Millisecond {
		t.Errorf("parse span duration %v does not reflect the stall", parse.Dur)
	}
}
