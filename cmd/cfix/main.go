// Command cfix applies the paper's two buffer-overflow-fixing
// transformations to preprocessed C files.
//
// Usage:
//
//	cfix [flags] file.c [more.c ...]
//
//	-o out.c        write the transformed source here (single input only;
//	                default: stdout)
//	-outdir dir     write each transformed file to dir (batch mode)
//	-slr=false      disable SAFE LIBRARY REPLACEMENT
//	-str=false      disable SAFE TYPE REPLACEMENT
//	-at offset      apply SLR only to the call expression at this byte offset
//	-support        prepend the stralloc library and glib prototypes
//	-verify entry   additionally run <entry> under the checked interpreter
//	                before and after, reporting violations
//	-summary        print the per-site/per-variable change log to stderr
//	-diff           print a unified diff of the changes (the didactic view)
//	-lint           do not transform; run the static overflow oracle and
//	                print CWE-classified findings
//	-json           with -lint, print findings as JSON lines
//
// A directory argument expands to every .c file directly inside it — the
// paper's maintenance scenario of batch-hardening a legacy tree.
//
// Exit codes:
//
//	0  success; with -lint, no definite overflow was found
//	1  a file could not be read, parsed, or transformed
//	2  usage error
//	3  -lint found at least one definite overflow (CI gate signal)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/textdiff"
	"repro/pkg/cfix"
)

func main() { os.Exit(run()) }

// options collects the parsed flags.
type options struct {
	out     string
	outdir  string
	doSLR   bool
	doSTR   bool
	at      int
	support bool
	verify  string
	summary bool
	diff    bool
	lint    bool
	json    bool
	jobs    int
}

func run() int {
	var opts options
	flag.StringVar(&opts.out, "o", "", "output file (single input; default stdout)")
	flag.StringVar(&opts.outdir, "outdir", "", "output directory (batch mode)")
	flag.BoolVar(&opts.doSLR, "slr", true, "apply SAFE LIBRARY REPLACEMENT")
	flag.BoolVar(&opts.doSTR, "str", true, "apply SAFE TYPE REPLACEMENT")
	flag.IntVar(&opts.at, "at", -1, "apply SLR only at this byte offset")
	flag.BoolVar(&opts.support, "support", false, "prepend stralloc/glib support code")
	flag.StringVar(&opts.verify, "verify", "", "entry function to execute pre/post")
	flag.BoolVar(&opts.summary, "summary", true, "print change summary to stderr")
	flag.BoolVar(&opts.diff, "diff", false, "print a unified diff instead of the full source")
	flag.BoolVar(&opts.lint, "lint", false, "run the static overflow oracle only; exit 3 on a definite overflow")
	flag.BoolVar(&opts.json, "json", false, "with -lint, print findings as JSON lines")
	flag.IntVar(&opts.jobs, "j", 0, "parallel workers for batch mode (0 = one per CPU)")
	flag.Parse()

	paths, err := expandArgs(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
		return 1
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "usage: cfix [flags] file.c [more.c ...]")
		fmt.Fprintln(os.Stderr, "exit codes: 0 success/clean, 1 error, 2 usage, 3 definite overflow found by -lint")
		flag.PrintDefaults()
		return 2
	}
	if opts.json && !opts.lint {
		fmt.Fprintln(os.Stderr, "cfix: -json requires -lint")
		return 2
	}
	if opts.lint {
		return lintFiles(paths, opts)
	}
	if len(paths) > 1 && opts.out != "" {
		fmt.Fprintln(os.Stderr, "cfix: -o needs a single input; use -outdir for batches")
		return 2
	}
	if len(paths) > 1 && opts.at >= 0 {
		fmt.Fprintln(os.Stderr, "cfix: -at needs a single input")
		return 2
	}
	return fixFiles(paths, opts)
}

// fixFiles reads every input, fixes them through the parallel batch
// pipeline (cfix.FixAll), and emits the results in input order.
func fixFiles(paths []string, opts options) int {
	inputs := make([]cfix.FileInput, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
		inputs[i] = cfix.FileInput{Filename: path, Source: string(data)}
	}
	outs := cfix.FixAll(inputs, cfix.Options{
		DisableSLR:   !opts.doSLR,
		DisableSTR:   !opts.doSTR,
		SelectOffset: opts.at,
		SelectAll:    opts.at < 0,
		EmitSupport:  opts.support,
		// The summary ranks and justifies candidate sites with the static
		// oracle's verdicts when they are available.
		Lint: opts.summary,
	}, opts.jobs)
	for i, out := range outs {
		if out.Err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %s: %v\n", out.Filename, out.Err)
			return 1
		}
		if code := emitOne(paths[i], inputs[i].Source, out.Report, opts, len(paths) > 1); code != 0 {
			return code
		}
	}
	return 0
}

// lintFinding is the JSON shape of one -lint -json output line.
type lintFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	CWE      int      `json:"cwe"`
	CWEName  string   `json:"cwe_name"`
	Severity string   `json:"severity"`
	Function string   `json:"function"`
	Object   string   `json:"object,omitempty"`
	Message  string   `json:"message"`
	Fix      string   `json:"fix"`
	Contexts []string `json:"contexts,omitempty"`
}

// lintFiles runs the static overflow oracle over every input — through
// the parallel batch pipeline — and prints the findings in input order.
// It returns 3 when any finding is definite, 0 when all files are clean
// or merely possible, 1 on processing errors.
func lintFiles(paths []string, opts options) int {
	inputs := make([]cfix.FileInput, len(paths))
	for i, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
		inputs[i] = cfix.FileInput{Filename: path, Source: string(data)}
	}
	results := cfix.AnalyzeAll(inputs, opts.jobs)

	enc := json.NewEncoder(os.Stdout)
	definite := false
	for _, res := range results {
		path, findings := res.Filename, res.Findings
		if res.Err != nil {
			// Parse errors already carry file:line:col.
			fmt.Fprintf(os.Stderr, "%v\n", res.Err)
			return 1
		}
		for _, f := range findings {
			if f.Severity == cfix.SevDefinite {
				definite = true
			}
			if opts.json {
				if err := enc.Encode(lintFinding{
					File:     f.Pos.File,
					Line:     f.Pos.Line,
					Col:      f.Pos.Col,
					CWE:      f.CWE,
					CWEName:  cfix.CWEName(f.CWE),
					Severity: f.Severity.String(),
					Function: f.Function,
					Object:   f.Object,
					Message:  f.Msg,
					Fix:      f.SuggestedFix,
					Contexts: f.Contexts,
				}); err != nil {
					fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
					return 1
				}
			} else {
				fmt.Println(f)
			}
		}
		if !opts.json && len(findings) == 0 {
			fmt.Fprintf(os.Stderr, "%s: no overflows found\n", path)
		}
	}
	if definite {
		return 3
	}
	return 0
}

// expandArgs resolves directory arguments to the .c files inside them.
func expandArgs(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		entries, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		var files []string
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".c") {
				files = append(files, filepath.Join(a, e.Name()))
			}
		}
		sort.Strings(files)
		out = append(out, files...)
	}
	return out, nil
}

// emitOne reports and writes the fix outcome for a single file: pre/post
// verification runs, the change summary, the diff view, and the output
// file. Output ordering matches the historical sequential pipeline.
func emitOne(path, source string, rep *cfix.Report, opts options, batch bool) int {
	if opts.verify != "" {
		res, err := cfix.Run(path, source, opts.verify, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: pre-run: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "%s before: %d violation(s)\n", path, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
	}

	if opts.summary {
		if batch {
			fmt.Fprintf(os.Stderr, "== %s ==\n", path)
		}
		fmt.Fprint(os.Stderr, rep.Summary())
	}

	if opts.verify != "" {
		res, err := cfix.Run(path, rep.Source, opts.verify, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfix: post-run: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "%s after:  %d violation(s)\n", path, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
	}

	if opts.diff {
		// The didactic view (Section I): show exactly what changed.
		d := textdiff.Unified(path, path+" (fixed)", source, rep.Source)
		if d == "" {
			fmt.Fprintf(os.Stderr, "%s: no changes\n", path)
		}
		os.Stdout.WriteString(d)
		if opts.out == "" && opts.outdir == "" {
			return 0
		}
	}
	switch {
	case opts.outdir != "":
		if err := os.MkdirAll(opts.outdir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
		dst := filepath.Join(opts.outdir, filepath.Base(path))
		if err := os.WriteFile(dst, []byte(rep.Source), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
	case opts.out != "":
		if err := os.WriteFile(opts.out, []byte(rep.Source), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "cfix: %v\n", err)
			return 1
		}
	default:
		os.Stdout.WriteString(rep.Source)
	}
	return 0
}
