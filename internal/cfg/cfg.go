// Package cfg builds per-function control-flow graphs at statement
// granularity.
//
// Each graph node corresponds to one source-level evaluation point: a
// simple statement, a single declarator, a branch condition, or a loop
// post-expression. Keeping nodes at statement granularity (rather than
// compiler-style basic blocks over an IR) lets every dataflow fact map
// directly back to source extents, which the paper identifies as the
// requirement that rules out SSA-based infrastructure (Section I).
package cfg

import (
	"fmt"
	"strings"

	"repro/internal/cast"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	KindInvalid NodeKind = iota
	KindEntry            // function entry
	KindExit             // function exit
	KindStmt             // simple statement (ExprStmt, ReturnStmt, ...)
	KindDecl             // one declarator of a declaration
	KindCond             // branch or loop condition expression
	KindPost             // for-loop post expression
)

// Node is a single CFG node.
type Node struct {
	ID   int
	Kind NodeKind
	// Stmt is set for KindStmt nodes (and KindDecl points at the VarDecl's
	// enclosing DeclStmt when available).
	Stmt cast.Stmt
	// Decl is set for KindDecl nodes.
	Decl *cast.VarDecl
	// Expr is set for KindCond and KindPost nodes.
	Expr cast.Expr

	Succs []*Node
	Preds []*Node

	// Branching marks a KindCond node whose outgoing edges carry branch
	// labels: edges to TrueSuccs are taken when Expr evaluates nonzero,
	// every other edge in Succs when it evaluates zero. Only if/while/for
	// conditions are labeled (do-while and switch tags are not), and only
	// when the true branch could be attributed unambiguously; analyses
	// must treat unlabeled conditions as flowing the same state both ways.
	Branching bool
	// TrueSuccs is the subset of Succs reached on a true condition.
	// Meaningful only when Branching is set.
	TrueSuccs []*Node
}

// IsTrueSucc reports whether the edge n→s is a labeled true-branch edge.
func (n *Node) IsTrueSucc(s *Node) bool {
	for _, t := range n.TrueSuccs {
		if t == s {
			return true
		}
	}
	return false
}

// label renders the node for debugging.
func (n *Node) label() string {
	switch n.Kind {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindDecl:
		return fmt.Sprintf("decl %s", n.Decl.Name)
	case KindCond:
		return "cond"
	case KindPost:
		return "post"
	default:
		return fmt.Sprintf("stmt %T", n.Stmt)
	}
}

// Graph is the CFG for one function.
type Graph struct {
	Func  *cast.FuncDef
	Entry *Node
	Exit  *Node
	Nodes []*Node
}

// String renders the graph in a compact adjacency format for debugging.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&sb, "%d[%s] ->", n.ID, n.label())
		for _, s := range n.Succs {
			fmt.Fprintf(&sb, " %d", s.ID)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// builder carries loop/switch context during construction.
type builder struct {
	g *Graph
	// contTgt is a stack of continue targets, one per enclosing loop.
	contTgt []*Node
	// pendingBreaks stacks the break statements seen inside each enclosing
	// breakable construct (loop or switch); they become fall-out edges when
	// the construct closes.
	pendingBreaks [][]*Node
	labels        map[string]*Node
	gotoFixups    map[string][]*Node
	// switchCtx tracks the innermost switch being built so case labels can
	// attach themselves.
	switchCtx []*switchFrame
}

// pushLoop opens a loop context with the given continue target.
func (b *builder) pushLoop(cont *Node) {
	b.contTgt = append(b.contTgt, cont)
	b.pendingBreaks = append(b.pendingBreaks, nil)
}

// popLoop closes the innermost loop and returns its break statements.
func (b *builder) popLoop() []*Node {
	b.contTgt = b.contTgt[:len(b.contTgt)-1]
	return b.popBreaks()
}

// pushSwitch opens a switch context (breakable, not continuable).
func (b *builder) pushSwitch() {
	b.pendingBreaks = append(b.pendingBreaks, nil)
}

// popBreaks pops and returns the innermost pending break list.
func (b *builder) popBreaks() []*Node {
	top := len(b.pendingBreaks) - 1
	brks := b.pendingBreaks[top]
	b.pendingBreaks = b.pendingBreaks[:top]
	return brks
}

// registerBreak records a break statement against the innermost breakable
// construct.
func (b *builder) registerBreak(n *Node) {
	if len(b.pendingBreaks) == 0 {
		return // break outside loop/switch: malformed C; drop the edge
	}
	top := len(b.pendingBreaks) - 1
	b.pendingBreaks[top] = append(b.pendingBreaks[top], n)
}

// labelBranch marks cond as Branching with the successors it gained while
// its true branch was built (Succs[mark:]). out is the branch's fall-out
// set: if it still contains cond (empty branch) or no successor was
// created, the true edges cannot be attributed and cond stays unlabeled.
func (b *builder) labelBranch(cond *Node, mark int, out []*Node) {
	trueSuccs := cond.Succs[mark:]
	if len(trueSuccs) == 0 {
		return
	}
	for _, n := range out {
		if n == cond {
			return
		}
	}
	cond.Branching = true
	cond.TrueSuccs = append([]*Node(nil), trueSuccs...)
}

type switchFrame struct {
	tag        *Node
	hasDefault bool
}

// Build constructs the CFG for fn.
func Build(fn *cast.FuncDef) *Graph {
	g := &Graph{Func: fn}
	b := &builder{
		g:          g,
		labels:     make(map[string]*Node),
		gotoFixups: make(map[string][]*Node),
	}
	g.Entry = b.newNode(KindEntry)
	g.Exit = b.newNode(KindExit)
	last := b.buildStmt(fn.Body, []*Node{g.Entry})
	b.connectAll(last, g.Exit)
	// Resolve pending gotos (forward references).
	for label, srcs := range b.gotoFixups {
		if tgt, ok := b.labels[label]; ok {
			for _, s := range srcs {
				b.connect(s, tgt)
			}
		}
		// Unresolved labels leave the goto dangling toward exit; the
		// function is malformed C but analyses must not crash.
	}
	return g
}

func (b *builder) newNode(kind NodeKind) *Node {
	n := &Node{ID: len(b.g.Nodes), Kind: kind}
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

func (b *builder) connect(from, to *Node) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *builder) connectAll(froms []*Node, to *Node) {
	for _, f := range froms {
		b.connect(f, to)
	}
}

// buildStmt threads the statement into the graph. preds are the nodes whose
// control falls into s; the return value is the set of nodes whose control
// falls out of s (empty when control cannot continue, e.g. after return).
func (b *builder) buildStmt(s cast.Stmt, preds []*Node) []*Node {
	if s == nil {
		return preds
	}
	switch x := s.(type) {
	case *cast.CompoundStmt:
		cur := preds
		for _, item := range x.Items {
			cur = b.buildStmt(item, cur)
		}
		return cur

	case *cast.DeclStmt:
		cur := preds
		for _, d := range x.Decls {
			n := b.newNode(KindDecl)
			n.Decl = d
			n.Stmt = x
			b.connectAll(cur, n)
			cur = []*Node{n}
		}
		return cur

	case *cast.ExprStmt:
		n := b.newNode(KindStmt)
		n.Stmt = x
		b.connectAll(preds, n)
		return []*Node{n}

	case *cast.NullStmt:
		return preds

	case *cast.ReturnStmt:
		n := b.newNode(KindStmt)
		n.Stmt = x
		b.connectAll(preds, n)
		b.connect(n, b.g.Exit)
		return nil

	case *cast.IfStmt:
		cond := b.newNode(KindCond)
		cond.Expr = x.Cond
		b.connectAll(preds, cond)
		mark := len(cond.Succs)
		thenOut := b.buildStmt(x.Then, []*Node{cond})
		b.labelBranch(cond, mark, thenOut)
		if x.Else == nil {
			return append(thenOut, cond)
		}
		elseOut := b.buildStmt(x.Else, []*Node{cond})
		return append(thenOut, elseOut...)

	case *cast.WhileStmt:
		cond := b.newNode(KindCond)
		cond.Expr = x.Cond
		b.connectAll(preds, cond)
		b.pushLoop(cond)
		mark := len(cond.Succs)
		bodyOut := b.buildStmt(x.Body, []*Node{cond})
		b.labelBranch(cond, mark, bodyOut)
		brk := b.popLoop()
		b.connectAll(bodyOut, cond)
		return append(brk, cond)

	case *cast.DoWhileStmt:
		cond := b.newNode(KindCond)
		cond.Expr = x.Cond
		// Body executes first; continue targets the condition.
		b.pushLoop(cond)
		bodyHeadMark := len(b.g.Nodes)
		bodyOut := b.buildStmt(x.Body, preds)
		brk := b.popLoop()
		b.connectAll(bodyOut, cond)
		// Back edge: the body is re-entered from the condition. The body's
		// first created node (if any) is its head.
		for _, n := range b.g.Nodes[bodyHeadMark:] {
			if n != cond {
				b.connect(cond, n)
				break
			}
		}
		return append(brk, cond)

	case *cast.ForStmt:
		cur := preds
		if x.Init != nil {
			cur = b.buildStmt(x.Init, cur)
		}
		var cond *Node
		if x.Cond != nil {
			cond = b.newNode(KindCond)
			cond.Expr = x.Cond
			b.connectAll(cur, cond)
			cur = []*Node{cond}
		}
		var post *Node
		if x.Post != nil {
			post = b.newNode(KindPost)
			post.Expr = x.Post
		}
		contTarget := cond
		if post != nil {
			contTarget = post
		}
		if contTarget == nil {
			// for(;;) with no post: continue jumps to the body head, which
			// equals looping through a synthetic join; use the body's own
			// first node via a placeholder cond-less node.
			contTarget = b.newNode(KindStmt)
			b.connectAll(cur, contTarget)
			cur = []*Node{contTarget}
		}
		b.pushLoop(contTarget)
		mark := 0
		if cond != nil {
			mark = len(cond.Succs)
		}
		bodyOut := b.buildStmt(x.Body, cur)
		if cond != nil {
			b.labelBranch(cond, mark, bodyOut)
		}
		brk := b.popLoop()
		if post != nil {
			b.connectAll(bodyOut, post)
			if cond != nil {
				b.connect(post, cond)
			} else {
				b.connect(post, contTarget)
			}
			bodyOut = nil
		}
		if cond != nil {
			b.connectAll(bodyOut, cond)
			return append(brk, cond)
		}
		b.connectAll(bodyOut, contTarget)
		// No condition: the only way out is break.
		return brk

	case *cast.BreakStmt:
		n := b.newNode(KindStmt)
		n.Stmt = x
		b.connectAll(preds, n)
		b.registerBreak(n)
		return nil

	case *cast.ContinueStmt:
		n := b.newNode(KindStmt)
		n.Stmt = x
		b.connectAll(preds, n)
		if len(b.contTgt) > 0 && b.contTgt[len(b.contTgt)-1] != nil {
			b.connect(n, b.contTgt[len(b.contTgt)-1])
		}
		return nil

	case *cast.GotoStmt:
		n := b.newNode(KindStmt)
		n.Stmt = x
		b.connectAll(preds, n)
		if tgt, ok := b.labels[x.Label]; ok {
			b.connect(n, tgt)
		} else {
			b.gotoFixups[x.Label] = append(b.gotoFixups[x.Label], n)
		}
		return nil

	case *cast.LabeledStmt:
		// A label is a join point: create a pass-through node so gotos have
		// a stable target.
		n := b.newNode(KindStmt)
		n.Stmt = x
		b.connectAll(preds, n)
		b.labels[x.Label] = n
		return b.buildStmt(x.Stmt, []*Node{n})

	case *cast.SwitchStmt:
		tag := b.newNode(KindCond)
		tag.Expr = x.Tag
		b.connectAll(preds, tag)
		frame := &switchFrame{tag: tag}
		b.switchCtx = append(b.switchCtx, frame)
		b.pushSwitch()
		out := b.buildStmt(x.Body, nil)
		brk := b.popBreaks()
		b.switchCtx = b.switchCtx[:len(b.switchCtx)-1]
		out = append(out, brk...)
		if !frame.hasDefault {
			out = append(out, tag)
		}
		return out

	case *cast.CaseStmt:
		n := b.newNode(KindStmt)
		n.Stmt = x
		// Fallthrough from the previous case...
		b.connectAll(preds, n)
		// ...and dispatch edge from the switch tag.
		if len(b.switchCtx) > 0 {
			frame := b.switchCtx[len(b.switchCtx)-1]
			b.connect(frame.tag, n)
			if x.Value == nil {
				frame.hasDefault = true
			}
		}
		return b.buildStmt(x.Stmt, []*Node{n})

	default:
		n := b.newNode(KindStmt)
		n.Stmt = s
		b.connectAll(preds, n)
		return []*Node{n}
	}
}
