package core

import (
	"context"
	"strings"
	"testing"
)

// TestFixBackendGlibIsDefault: an explicit Backend: "glib" must be
// byte-identical to the zero value — the default dialect is pinned.
func TestFixBackendGlibIsDefault(t *testing.T) {
	def, err := Fix(context.Background(), "d.c", overflowing, Options{SelectOffset: -1, EmitSupport: true})
	if err != nil {
		t.Fatal(err)
	}
	glib, err := Fix(context.Background(), "d.c", overflowing, Options{SelectOffset: -1, EmitSupport: true, Backend: "glib"})
	if err != nil {
		t.Fatal(err)
	}
	if def.Source != glib.Source {
		t.Fatal("Backend: \"glib\" diverges from the default output")
	}
	if def.Backend != "glib" || glib.Backend != "glib" {
		t.Fatalf("Report.Backend = %q / %q, want glib", def.Backend, glib.Backend)
	}
}

// TestFixBackendDialectOutputs: each dialect's fix of the same source
// carries its own safe callees and support declarations end to end.
func TestFixBackendDialectOutputs(t *testing.T) {
	src := `
void f(void) {
    char buf[8];
    char in[64];
    strcpy(buf, in);
}
`
	cases := []struct {
		backend string
		call    string
		proto   string
	}{
		{"glib", "g_strlcpy(buf, in, sizeof(buf))", "g_strlcpy"},
		{"bsd", "strlcpy(buf, in, sizeof(buf))", "strlcpy"},
		{"c11k", "strcpy_s(buf, sizeof(buf), in)", "errno_t strcpy_s"},
	}
	for _, c := range cases {
		rep, err := Fix(context.Background(), "f.c", src,
			Options{SelectOffset: -1, EmitSupport: true, DisableSTR: true, Backend: c.backend})
		if err != nil {
			t.Fatalf("%s: %v", c.backend, err)
		}
		if rep.Backend != c.backend {
			t.Fatalf("Report.Backend = %q, want %q", rep.Backend, c.backend)
		}
		if !strings.Contains(rep.Source, c.call) {
			t.Fatalf("%s output missing %q:\n%s", c.backend, c.call, rep.Source)
		}
		if !strings.Contains(rep.Source, c.proto) {
			t.Fatalf("%s support missing %q:\n%s", c.backend, c.proto, rep.Source)
		}
		if !strings.Contains(rep.Summary(), "-> "+strings.SplitN(c.call, "(", 2)[0]) {
			t.Fatalf("%s summary does not name the dialect callee:\n%s", c.backend, rep.Summary())
		}
	}
}

// TestFixBackendUnknownErrors: Fix and Analyze reject an unknown dialect
// before doing any work, naming the valid set.
func TestFixBackendUnknownErrors(t *testing.T) {
	opts := Options{SelectOffset: -1, Backend: "musl"}
	if _, err := Fix(context.Background(), "u.c", overflowing, opts); err == nil ||
		!strings.Contains(err.Error(), "glib, bsd, c11k") {
		t.Fatalf("Fix with unknown backend: %v", err)
	}
	if _, err := Analyze(context.Background(), "u.c", overflowing, opts); err == nil {
		t.Fatal("Analyze accepted an unknown backend")
	}
}

// TestFixIdempotentPerBackend: Fix(Fix(x)) == Fix(x) holds for every
// non-default dialect over >= 200 SAMATE programs — the safe callees a
// dialect introduces are never in its own unsafe set, so a second pass
// over hardened output changes nothing. (The glib dialect is covered by
// TestFixIdempotentOnSAMATE over the full corpus.)
func TestFixIdempotentPerBackend(t *testing.T) {
	inputs := equivCorpus(t, 200)
	for _, dialect := range []string{"bsd", "c11k"} {
		t.Run(dialect, func(t *testing.T) {
			opts := Options{SelectOffset: -1, Backend: dialect}
			first := FixAll(context.Background(), inputs, opts, 0)
			second := make([]FileInput, len(first))
			for i, out := range first {
				if out.Err != nil {
					t.Fatalf("%s: first pass: %v", out.Filename, out.Err)
				}
				second[i] = FileInput{Filename: out.Filename, Source: refixInput(out.Report.Source)}
			}
			reouts := FixAll(context.Background(), second, opts, 0)
			violations := 0
			for i, out := range reouts {
				if out.Err != nil {
					t.Fatalf("%s: second pass: %v", out.Filename, out.Err)
				}
				if out.Report.Source != second[i].Source {
					violations++
					if violations <= 3 {
						t.Errorf("%s: not a fixpoint under %s", out.Filename, dialect)
					}
				}
			}
			if violations > 0 {
				t.Fatalf("%d/%d programs are not fixpoints under %s", violations, len(inputs), dialect)
			}
			t.Logf("fixpoint holds on %d programs under %s", len(inputs), dialect)
		})
	}
}

// TestFixCachedBackendSeparation is the satellite acceptance property:
// warming the cache under one dialect must not serve another dialect's
// request — each backend gets its own cache entries, and "" and "glib"
// share one.
func TestFixCachedBackendSeparation(t *testing.T) {
	c := newTestCache(t)
	warm := Options{SelectOffset: -1, Cache: c}
	if _, hit, err := FixCached(context.Background(), "b.c", overflowing, warm); err != nil || hit {
		t.Fatalf("seed: hit=%v err=%v", hit, err)
	}

	// "" and "glib" are the same canonical selection: hit.
	glib := Options{SelectOffset: -1, Cache: c, Backend: "glib"}
	rep, hit, err := FixCached(context.Background(), "b.c", overflowing, glib)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("explicit glib missed the entry warmed by the default")
	}
	if !strings.Contains(rep.Source, "g_strlcpy") {
		t.Fatalf("glib hit lacks glib callees:\n%s", rep.Source)
	}

	// Other dialects must miss the glib entry and compute their own text.
	for _, want := range []struct{ backend, call string }{
		{"bsd", "strlcpy("},
		{"c11k", "strcpy_s("},
	} {
		opts := Options{SelectOffset: -1, Cache: c, Backend: want.backend}
		var cold *Report
		delta := parseDelta(func() {
			cold, hit, err = FixCached(context.Background(), "b.c", overflowing, opts)
			if err != nil {
				t.Fatal(err)
			}
		})
		if hit || delta == 0 {
			t.Fatalf("%s request served from the glib cache entry (hit=%v parses=%d)", want.backend, hit, delta)
		}
		if !strings.Contains(cold.Source, want.call) {
			t.Fatalf("%s output missing %q:\n%s", want.backend, want.call, cold.Source)
		}
		// And its own repeat is a hit with the dialect's text intact.
		warmRep, hit2, err := FixCached(context.Background(), "b.c", overflowing, opts)
		if err != nil || !hit2 {
			t.Fatalf("%s warm repeat: hit=%v err=%v", want.backend, hit2, err)
		}
		if warmRep.Source != cold.Source || warmRep.Backend != want.backend {
			t.Fatalf("%s cached report mutated: backend=%q", want.backend, warmRep.Backend)
		}
	}
}
